// Proofcheck: certify an UNSAT answer end-to-end — solve with RUP proof
// logging, then verify the refutation with the independent checker (the
// role zChaff's companion zVerify played). The checker shares no code
// with the engine's search machinery, so a passing check certifies the
// answer rather than echoing a potential solver bug.
package main

import (
	"bytes"
	"fmt"
	"log"

	"gridsat/internal/gen"
	"gridsat/internal/proof"
	"gridsat/internal/solver"
)

func main() {
	problem := gen.Pigeonhole(8)
	fmt.Printf("problem: %s (%d vars, %d clauses)\n",
		problem.Comment, problem.NumVars, problem.NumClauses())

	// Solve with the proof hook installed.
	var buf bytes.Buffer
	pw := proof.NewWriter(&buf)
	opts := solver.DefaultOptions()
	opts.OnLemma = pw.Hook()
	s := solver.New(problem, opts)
	res := s.Solve(solver.Limits{})
	if err := pw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solver answer: %v (%d lemmas, %d proof bytes)\n",
		res.Status, pw.Lemmas(), buf.Len())
	if res.Status != solver.StatusUNSAT {
		log.Fatal("the pigeonhole principle must be unsatisfiable")
	}

	// Re-parse the textual proof, as an external checker would.
	lemmas, err := proof.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}

	// Verify: each lemma must follow by reverse unit propagation from the
	// original clauses plus the preceding lemmas, and the whole stream
	// must end in a propagation-level contradiction.
	if err := proof.Check(problem, lemmas); err != nil {
		log.Fatal("refutation REJECTED: ", err)
	}
	fmt.Println("refutation verified: UNSATISFIABLE is certified")

	// Tampering is caught: drop the first half of the proof.
	if err := proof.Check(problem, lemmas[len(lemmas)/2:]); err != nil {
		fmt.Println("tampered proof correctly rejected:", err)
	} else {
		log.Fatal("tampered proof accepted!")
	}
}
