// Distributed: run the live GridSAT runtime — one master and six clients
// in this process, connected by the in-process transport — on a hard
// unsatisfiable instance. The same Master/Client code deploys over TCP via
// cmd/gridsat; this example shows the full paper protocol in action:
// registration, initial assignment, split requests, peer-to-peer
// subproblem transfers (Figure 3) and global clause sharing.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"gridsat/internal/comm"
	"gridsat/internal/core"
	"gridsat/internal/gen"
	"gridsat/internal/solver"
)

func main() {
	problem := gen.Pigeonhole(9) // UNSAT: 10 pigeons into 9 holes
	fmt.Printf("problem: %s (%d vars, %d clauses)\n",
		problem.Comment, problem.NumVars, problem.NumClauses())

	tr := comm.NewInprocTransport()
	master, err := core.NewMaster(core.MasterConfig{
		Transport:       tr,
		ListenAddr:      "master",
		Formula:         problem,
		Timeout:         5 * time.Minute,
		ExpectedClients: 6,
	})
	if err != nil {
		log.Fatal(err)
	}

	type outcome struct {
		res core.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := master.Run()
		done <- outcome{res, err}
	}()

	// Launch six clients, as if the scheduler had started them on six
	// grid hosts of differing capability.
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		cl, err := core.NewClient(core.ClientConfig{
			Transport:      tr,
			MasterAddr:     "master",
			HostName:       fmt.Sprintf("host-%02d", i),
			FreeMemBytes:   int64(64+32*i) << 20,
			SpeedHint:      1.0 + 0.1*float64(i),
			ShareMaxLen:    10, // the paper's first-experiment setting
			SliceConflicts: 500,
			MinRunTime:     20 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client %d registered (p2p %s)\n", cl.ID(), cl.Addr())
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cl.Run(); err != nil {
				log.Println("client:", err)
			}
		}()
	}

	o := <-done
	wg.Wait()
	if o.err != nil {
		log.Fatal(o.err)
	}
	fmt.Printf("\nresult: %v in %.2fs wall time\n", o.res.Status, o.res.Wall.Seconds())
	fmt.Printf("max simultaneous clients: %d\n", o.res.MaxClients)
	fmt.Printf("completed subproblem splits: %d\n", o.res.Splits)
	fmt.Printf("learned clauses shared globally: %d\n", o.res.SharedClauses)
	if o.res.Status != solver.StatusUNSAT {
		log.Fatal("expected UNSAT for the pigeonhole principle")
	}
}
