// Quickstart: build a CNF formula, solve it with the Chaff-style engine,
// and inspect models and statistics — the smallest useful tour of the
// public pieces of this repository.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"gridsat/internal/cnf"
	"gridsat/internal/gen"
	"gridsat/internal/solver"
)

func main() {
	// 1. Build a formula by hand: (x1 ∨ x2) ∧ (¬x1 ∨ x3) ∧ (¬x2 ∨ ¬x3).
	f := cnf.NewFormula(3)
	f.Add(1, 2).Add(-1, 3).Add(-2, -3)

	s := solver.New(f, solver.DefaultOptions())
	res := s.Solve(solver.Limits{})
	fmt.Println("hand-built formula:", res.Status)
	if res.Status == solver.StatusSAT {
		if err := f.Verify(res.Model); err != nil {
			log.Fatal("model verification failed: ", err)
		}
		fmt.Println("model:", modelString(res.Model))
	}

	// 2. Parse DIMACS (the format the paper's benchmark suite uses).
	dimacs := `c tiny example
p cnf 2 2
1 -2 0
-1 2 0
`
	g, err := cnf.ParseDIMACS(strings.NewReader(dimacs))
	if err != nil {
		log.Fatal(err)
	}
	res2 := solver.New(g, solver.DefaultOptions()).Solve(solver.Limits{})
	fmt.Println("DIMACS formula:", res2.Status)

	// 3. A generated instance with engine statistics: the pigeonhole
	// principle PHP(9,8) is unsatisfiable and takes real search.
	php := gen.Pigeonhole(8)
	s3 := solver.New(php, solver.DefaultOptions())
	res3 := s3.Solve(solver.Limits{})
	st := s3.Stats()
	fmt.Printf("%s: %v after %d decisions, %d conflicts, %d learned clauses, %d restarts\n",
		php.Comment, res3.Status, st.Decisions, st.Conflicts, st.Learned, st.Restarts)

	// 4. Budgeted solving: give up after 100 conflicts, then resume.
	s4 := solver.New(gen.Pigeonhole(9), solver.DefaultOptions())
	partial := s4.Solve(solver.Limits{MaxConflicts: 100})
	fmt.Printf("budgeted run paused: status=%v reason=%v\n", partial.Status, partial.Reason)
	full := s4.Solve(solver.Limits{})
	fmt.Printf("resumed to completion: %v\n", full.Status)

	// 5. Write an instance to DIMACS for use with cmd/zchaff or
	// cmd/gridsat.
	if err := cnf.WriteDIMACS(os.Stdout, g); err != nil {
		log.Fatal(err)
	}
}

func modelString(m cnf.Assignment) string {
	var b strings.Builder
	for v := 0; v < len(m); v++ {
		if v > 0 {
			b.WriteByte(' ')
		}
		if m[v] == cnf.True {
			fmt.Fprintf(&b, "x%d=true", v+1)
		} else {
			fmt.Fprintf(&b, "x%d=false", v+1)
		}
	}
	return b.String()
}
