// Checkpointing: demonstrate the paper's §3.4 fault-tolerance machinery —
// run a hard instance under a budget, capture a heavy checkpoint (level-0
// assignments plus learned clauses), serialize it to disk, and resume in a
// fresh solver that reconstructs the initial clauses from the problem
// itself, exactly as the paper prescribes.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gridsat/internal/gen"
	"gridsat/internal/solver"
)

func main() {
	problem := gen.Pigeonhole(9)
	fmt.Printf("problem: %s\n", problem.Comment)

	// Phase 1: a budgeted run that will not finish.
	s := solver.New(problem, solver.DefaultOptions())
	res := s.Solve(solver.Limits{MaxConflicts: 2000})
	fmt.Printf("phase 1: status=%v reason=%v after %d conflicts (%d learned clauses)\n",
		res.Status, res.Reason, s.Stats().Conflicts, s.NumLearnts())
	if res.Status != solver.StatusUnknown {
		log.Fatal("expected the budget to expire first")
	}

	// Capture both checkpoint flavors.
	light := s.Checkpoint(solver.LightCheckpoint, 0)
	heavy := s.Checkpoint(solver.HeavyCheckpoint, 0)
	fmt.Printf("light checkpoint: %d level-0 facts\n", len(light.Level0))
	fmt.Printf("heavy checkpoint: %d level-0 facts + %d learned clauses\n",
		len(heavy.Level0), len(heavy.Learnts))

	// Serialize the heavy checkpoint to disk and read it back — this is
	// what a failure-recovery master would hand to a replacement client.
	path := filepath.Join(os.TempDir(), "gridsat-example.ckpt")
	fd, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := heavy.Save(fd); err != nil {
		log.Fatal(err)
	}
	fd.Close()
	info, _ := os.Stat(path)
	fmt.Printf("checkpoint on disk: %s (%d bytes)\n", path, info.Size())

	fd, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	restoredCp, err := solver.LoadCheckpoint(fd)
	fd.Close()
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)

	// Phase 2: a fresh solver resumes. Note the initial clauses come from
	// the problem, not from the checkpoint (§3.4).
	restored, err := solver.Restore(problem, restoredCp, solver.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	final := restored.Solve(solver.Limits{})
	fmt.Printf("phase 2 (resumed): %v after %d more conflicts\n",
		final.Status, restored.Stats().Conflicts)
	if final.Status != solver.StatusUNSAT {
		log.Fatal("pigeonhole must be unsatisfiable")
	}

	// For comparison: solving from scratch costs the full conflict count.
	fresh := solver.New(problem, solver.DefaultOptions())
	fresh.Solve(solver.Limits{})
	fmt.Printf("from scratch: %d conflicts (resume saved the checkpointed learning)\n",
		fresh.Stats().Conflicts)
}
