// Gridsim: reproduce the paper's Table-2 scenario on the deterministic
// simulated grid — a 27-host interactive testbed starts solving while a
// Blue Horizon batch request waits in queue; the batch nodes join when the
// allocation arrives, and the job is canceled if the problem is solved
// first. Times are virtual seconds (1 vsec ≈ 10 paper seconds), so this
// runs in moments on a laptop while modeling a multi-hour grid run.
package main

import (
	"fmt"

	"gridsat/internal/cnf"
	"gridsat/internal/core"
	"gridsat/internal/gen"
	"gridsat/internal/grid"
)

func main() {
	// Scenario A: an instance the interactive testbed solves before the
	// batch allocation arrives — GridSAT cancels the Blue Horizon job,
	// exactly like rand-net70-25-5 and glassybp in the paper.
	runScenario("A: solved before the batch allocation (job canceled)",
		gen.Pigeonhole(9), 2000)

	// Scenario B: a short queue wait on a harder instance; the batch
	// nodes arrive in time to help (the paper's par32-1-c needed 33
	// interactive hours plus 8 more once Blue Horizon joined).
	runScenario("B: batch nodes join the computation",
		gen.Pigeonhole(10), 30)
}

func runScenario(title string, f *cnf.Formula, queueWaitVSec float64) {
	fmt.Printf("--- scenario %s ---\n", title)
	fmt.Printf("problem: %s (%d vars, %d clauses)\n", f.Comment, f.NumVars, f.NumClauses())

	g := grid.TestbedTable2(1)
	g.AddBlueHorizon(64)
	res := core.RunDistributed(core.RunnerConfig{
		Grid:             g,
		Formula:          f,
		TimeoutVSec:      100_000,
		ShareMaxLen:      3, // the paper's second-experiment setting
		SplitTimeoutVSec: 5,
		MasterHostID:     -1,
		Seed:             1,
		Batch: &core.BatchPlan{
			Nodes:             64,
			WalltimeVSec:      720, // the 12-hour job at 1/60 scale
			MeanQueueWaitVSec: queueWaitVSec,
			TerminateOnEnd:    false,
		},
	})

	fmt.Printf("outcome: %v (%v) after %.1f virtual seconds\n", res.Outcome, res.Status, res.VSec)
	if res.BatchCanceled {
		fmt.Println("blue horizon: job canceled — solved before the allocation arrived")
	} else if res.BatchStartVSec > 0 {
		fmt.Printf("blue horizon: allocation started at %.1f vsec and joined the pool\n", res.BatchStartVSec)
	}
	fmt.Printf("peak clients: %d, splits: %d, clauses shared: %d, work: %d propagations\n\n",
		res.MaxClients, res.Splits, res.Shared, res.TotalProps)
}
