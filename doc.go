// Package gridsat is a from-scratch Go reproduction of "GridSAT: A
// Chaff-based Distributed SAT Solver for the Grid" (Chrabakh & Wolski,
// SC 2003).
//
// The implementation lives under internal/:
//
//   - internal/cnf     — variables, literals, clauses, DIMACS I/O
//   - internal/gen     — synthetic stand-ins for the SAT2002 suite
//   - internal/brute   — the naive DPLL baseline (§2.1) and test oracle
//   - internal/solver  — the zChaff-style CDCL engine (§2) with the
//     distributed hooks of §3 (splits, clause sharing, checkpoints)
//   - internal/nws     — Network Weather Service forecasting
//   - internal/grid    — the simulated Grid substrate and DES kernel
//   - internal/comm    — the EveryWare-style messaging layer
//   - internal/core    — GridSAT itself: master, client, scheduler, and
//     the deterministic simulated runtime behind the benchmarks
//   - internal/bench   — Table-1/Table-2 regeneration and ablations
//
// Executables: cmd/gridsat (solve/run/master/client/sim), cmd/zchaff,
// cmd/satgen, cmd/benchtab. Runnable walkthroughs are in examples/.
// See DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results.
package gridsat
