#!/usr/bin/env bash
# End-to-end smoke test of the multi-job scheduling service: boots
# `gridsat serve` with three TCP clients, drives the HTTP job API
# (submit a SAT and an UNSAT instance, cancel a long one mid-run),
# asserts every verdict, and shuts the service down cleanly with
# SIGINT. Artifacts (job list JSON, flight log, server log) land in
# $SMOKE_DIR (default /tmp/gridsat-serve-smoke) for CI upload.
set -euo pipefail

SMOKE_DIR="${SMOKE_DIR:-/tmp/gridsat-serve-smoke}"
API="127.0.0.1:18082"
LISTEN="127.0.0.1:17072"
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"

go build -o "$SMOKE_DIR/gridsat" ./cmd/gridsat
go run ./cmd/satgen -family random3sat -n 20 -m 70 -seed 11 -o "$SMOKE_DIR/sat.cnf"
go run ./cmd/satgen -family pigeonhole -n 7 -o "$SMOKE_DIR/php7.cnf"
# PHP(13,12) runs for minutes even distributed — the cancel a second
# after submit provably lands mid-run, never after a verdict.
go run ./cmd/satgen -family pigeonhole -n 12 -o "$SMOKE_DIR/php12.cnf"

"$SMOKE_DIR/gridsat" serve -listen "$LISTEN" -api-addr "$API" \
  -sched fair-share -log info -trace "$SMOKE_DIR/flight.jsonl" \
  >"$SMOKE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
cleanup() {
  kill "$SERVE_PID" ${CLIENT_PIDS:-} 2>/dev/null || true
}
trap cleanup EXIT

# Wait for the API to come up.
for _ in $(seq 50); do
  curl -sf "http://$API/jobs" >/dev/null 2>&1 && break
  sleep 0.2
done

CLIENT_PIDS=""
for i in 1 2 3; do
  "$SMOKE_DIR/gridsat" client -master "$LISTEN" -threads 1 \
    >"$SMOKE_DIR/client$i.log" 2>&1 &
  CLIENT_PIDS="$CLIENT_PIDS $!"
done
sleep 1

submit() { # file name extra-query -> job id
  curl -sf -X POST --data-binary @"$SMOKE_DIR/$1" \
    "http://$API/jobs?name=$2$3" | sed -n 's/.*"id": *\([0-9]*\).*/\1/p'
}
SAT_ID=$(submit sat.cnf sat "&priority=2")
UNSAT_ID=$(submit php7.cnf php7 "")
LONG_ID=$(submit php12.cnf php12 "")
echo "submitted: sat=$SAT_ID unsat=$UNSAT_ID long=$LONG_ID"

verdict() { # id -> verdict string ("" while running)
  curl -sf "http://$API/jobs/$1" | sed -n 's/.*"verdict": *"\([A-Z]*\)".*/\1/p'
}

# Give the long job a moment to absorb clients, then cancel it mid-run.
sleep 1
curl -sf -X POST "http://$API/jobs/$LONG_ID/cancel" >/dev/null
echo "cancelled job $LONG_ID"

# Poll until the short jobs report their verdicts.
for _ in $(seq 120); do
  [ "$(verdict "$SAT_ID")" = "SAT" ] && [ "$(verdict "$UNSAT_ID")" = "UNSAT" ] && break
  sleep 1
done

curl -sf "http://$API/jobs" >"$SMOKE_DIR/jobs.json"
cat "$SMOKE_DIR/jobs.json"

[ "$(verdict "$SAT_ID")" = "SAT" ] || { echo "FAIL: job $SAT_ID verdict $(verdict "$SAT_ID"), want SAT"; exit 1; }
[ "$(verdict "$UNSAT_ID")" = "UNSAT" ] || { echo "FAIL: job $UNSAT_ID verdict $(verdict "$UNSAT_ID"), want UNSAT"; exit 1; }
[ "$(verdict "$LONG_ID")" = "CANCELLED" ] || { echo "FAIL: job $LONG_ID verdict $(verdict "$LONG_ID"), want CANCELLED"; exit 1; }

# A SAT result must ship a model that round-trips through /result.
curl -sf "http://$API/jobs/$SAT_ID/result" | grep -q '"model"' \
  || { echo "FAIL: SAT result has no model"; exit 1; }

# Clean shutdown: SIGINT must stop the server (and its clients) promptly.
kill -INT "$SERVE_PID"
for _ in $(seq 50); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "FAIL: serve did not exit after SIGINT"
  exit 1
fi

echo "serve smoke OK: SAT=$SAT_ID UNSAT=$UNSAT_ID CANCELLED=$LONG_ID, clean shutdown"
