#!/usr/bin/env bash
# End-to-end smoke test of the observability surface: boots `gridsat
# serve` with -bundle-dir and one client, checks /healthz, /history and
# /alerts respond, asserts a malformed DIMACS submit returns a
# structured 400 with the parse line, then captures a bundle via POST
# /debug/bundle and another by cancelling a long job mid-run — and
# asserts every bundle carries all five sections (flight log, pprof,
# metrics+history, state, config) plus its manifest. Artifacts land in
# $SMOKE_DIR (default /tmp/gridsat-bundle-smoke) for CI upload.
set -euo pipefail

SMOKE_DIR="${SMOKE_DIR:-/tmp/gridsat-bundle-smoke}"
API="127.0.0.1:18084"
LISTEN="127.0.0.1:17074"
BUNDLES="$SMOKE_DIR/bundles"
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"

go build -o "$SMOKE_DIR/gridsat" ./cmd/gridsat
# PHP(13,12) runs for minutes even distributed, so both captures land
# provably mid-run.
go run ./cmd/satgen -family pigeonhole -n 12 -o "$SMOKE_DIR/php12.cnf"

# -trace keeps the flight recorder on so bundles carry a non-empty
# control-plane event tail.
"$SMOKE_DIR/gridsat" serve -listen "$LISTEN" -api-addr "$API" \
  -bundle-dir "$BUNDLES" -log info -trace "$SMOKE_DIR/flight.jsonl" \
  >"$SMOKE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
cleanup() {
  kill "$SERVE_PID" ${CLIENT_PID:-} 2>/dev/null || true
}
trap cleanup EXIT

# Wait for the API to come up; /healthz needs no event-loop round-trip,
# so it is the liveness probe.
for _ in $(seq 50); do
  curl -sf "http://$API/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$API/healthz" | grep -q '"status"' \
  || { echo "FAIL: /healthz has no status"; exit 1; }

"$SMOKE_DIR/gridsat" client -master "$LISTEN" -threads 1 \
  >"$SMOKE_DIR/client.log" 2>&1 &
CLIENT_PID=$!
sleep 1

# Structured parse errors: a malformed body must 400 with the line.
ERR=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  --data-binary 'p cnf zero 3' "http://$API/jobs?name=broken")
[ "$ERR" = "400" ] || { echo "FAIL: malformed submit returned HTTP $ERR, want 400"; exit 1; }
curl -s -X POST --data-binary 'p cnf zero 3' "http://$API/jobs?name=broken" \
  | grep -q '"line": *1' || { echo "FAIL: parse error lacks line position"; exit 1; }
# Unknown jobs must 404 with a JSON error.
NF=$(curl -s -o /dev/null -w '%{http_code}' "http://$API/jobs/999")
[ "$NF" = "404" ] || { echo "FAIL: unknown job returned HTTP $NF, want 404"; exit 1; }

JOB_ID=$(curl -sf -X POST --data-binary @"$SMOKE_DIR/php12.cnf" \
  "http://$API/jobs?name=php12" | sed -n 's/.*"id": *\([0-9]*\).*/\1/p')
echo "submitted long job $JOB_ID"
sleep 2

# The sampler has ticked by now: /history serves series, /alerts the
# (empty, healthy) watchdog feed.
curl -sf "http://$API/history" | grep -q '"series"' \
  || { echo "FAIL: /history has no series"; exit 1; }
curl -sf "http://$API/alerts" | grep -q '"alerts"' \
  || { echo "FAIL: /alerts has no feed"; exit 1; }
# (buffered to a file: grep -q's early exit would SIGPIPE curl under
# pipefail on the large metrics page)
curl -sf "http://$API/metrics" >"$SMOKE_DIR/metrics.txt"
grep -q 'gridsat_build_info' "$SMOKE_DIR/metrics.txt" \
  || { echo "FAIL: /metrics lacks gridsat_build_info"; exit 1; }
grep -q 'gridsat_http_request_seconds' "$SMOKE_DIR/metrics.txt" \
  || { echo "FAIL: /metrics lacks endpoint latency histograms"; exit 1; }

# Capture 1: operator-requested bundle.
MANUAL=$(curl -sf -X POST "http://$API/debug/bundle?reason=smoke" \
  | sed -n 's/.*"bundle": *"\([^"]*\)".*/\1/p')
[ -n "$MANUAL" ] || { echo "FAIL: POST /debug/bundle returned no path"; exit 1; }
echo "manual bundle: $MANUAL"

# Capture 2: cancelling the job mid-run triggers the failure path.
curl -sf -X POST "http://$API/jobs/$JOB_ID/cancel" >/dev/null
echo "cancelled job $JOB_ID"

# Bundles are written off the event loop, MANIFEST.json last; wait for
# the cancel bundle to finish.
for _ in $(seq 50); do
  ls "$BUNDLES"/*cancelled*/MANIFEST.json >/dev/null 2>&1 && break
  sleep 0.2
done

check_bundle() { # dir
  local dir="$1"
  for f in flight.jsonl pprof/heap.pprof metrics.json history.json \
    state.json config.json MANIFEST.json; do
    [ -s "$dir/$f" ] || { echo "FAIL: bundle $dir missing section $f"; exit 1; }
  done
  grep -q '"sections"' "$dir/MANIFEST.json" \
    || { echo "FAIL: bundle $dir manifest lists no sections"; exit 1; }
}

FOUND=0
for dir in "$BUNDLES"/*/; do
  check_bundle "${dir%/}"
  FOUND=$((FOUND + 1))
done
[ "$FOUND" -ge 2 ] || { echo "FAIL: expected manual + cancel bundles, found $FOUND"; exit 1; }

kill -INT "$SERVE_PID"
for _ in $(seq 50); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "FAIL: serve did not exit after SIGINT"
  exit 1
fi

echo "bundle smoke OK: $FOUND bundles, all sections present"
