// Command gridsat is the GridSAT distributed SAT solver.
//
// Modes:
//
//	gridsat solve  problem.cnf            sequential solve (zChaff role)
//	gridsat run    problem.cnf            master + N clients in one process
//	gridsat master -listen :7070 p.cnf    TCP master for a real deployment
//	gridsat serve  -listen :7070          long-lived multi-job scheduling
//	                                      service (submit/cancel over HTTP)
//	gridsat client -master host:7070      TCP client joining a deployment
//	gridsat sim    problem.cnf            deterministic simulated-grid run
//	gridsat top    -addr host:8080        live cluster dashboard (polls a
//	                                      master's -metrics-addr endpoint)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gridsat/internal/cnf"
	"gridsat/internal/comm"
	"gridsat/internal/core"
	"gridsat/internal/grid"
	"gridsat/internal/obs"
	"gridsat/internal/obs/history"
	"gridsat/internal/proof"
	"gridsat/internal/solver"
	"gridsat/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "solve":
		err = cmdSolve(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "master":
		err = cmdMaster(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "client":
		err = cmdClient(os.Args[2:])
	case "sim":
		err = cmdSim(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "checkproof":
		err = cmdCheckProof(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridsat:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gridsat <solve|run|master|serve|client|sim|top|checkproof> [flags] [problem.cnf]
run "gridsat <mode> -h" for mode flags`)
}

func loadCNF(path string) (*cnf.Formula, error) {
	if path == "" || path == "-" {
		return cnf.ParseDIMACS(os.Stdin)
	}
	return cnf.ParseDIMACSFile(path)
}

func report(status solver.Status, model cnf.Assignment, f *cnf.Formula) {
	switch status {
	case solver.StatusSAT:
		fmt.Println("s SATISFIABLE")
		if err := f.Verify(model); err != nil {
			fmt.Fprintln(os.Stderr, "gridsat: model verification FAILED:", err)
			os.Exit(1)
		}
		fmt.Print("v")
		for v := 0; v < len(model); v++ {
			lit := v + 1
			if model[v] == cnf.False {
				lit = -lit
			}
			fmt.Printf(" %d", lit)
		}
		fmt.Println(" 0")
	case solver.StatusUNSAT:
		fmt.Println("s UNSATISFIABLE")
	default:
		fmt.Println("s UNKNOWN")
	}
}

func cmdSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	timeout := fs.Duration("timeout", 0, "wall-clock budget")
	mem := fs.Int64("mem", 0, "memory budget in bytes")
	ckptIn := fs.String("resume", "", "resume from a checkpoint file")
	ckptOut := fs.String("checkpoint", "", "write a heavy checkpoint here when the budget runs out")
	fs.Parse(args)
	f, err := loadCNF(fs.Arg(0))
	if err != nil {
		return err
	}
	var s *solver.Solver
	if *ckptIn != "" {
		fd, err := os.Open(*ckptIn)
		if err != nil {
			return err
		}
		cp, err := solver.LoadCheckpoint(fd)
		fd.Close()
		if err != nil {
			return err
		}
		if s, err = solver.Restore(f, cp, solver.DefaultOptions()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "gridsat: resumed from %s (%d level-0 facts, %d learned clauses)\n",
			*ckptIn, len(cp.Level0), len(cp.Learnts))
	} else {
		s = solver.New(f, solver.DefaultOptions())
	}
	res := s.Solve(solver.Limits{MaxTime: *timeout, MaxMemoryBytes: *mem})
	if res.Status == solver.StatusUnknown && *ckptOut != "" {
		// Paper §3.4: the heavy checkpoint records level 0 plus the learned
		// clauses; the initial clauses come from the problem file on resume.
		cp := s.Checkpoint(solver.HeavyCheckpoint, 0)
		fd, err := os.Create(*ckptOut)
		if err != nil {
			return err
		}
		if err := cp.Save(fd); err != nil {
			fd.Close()
			return err
		}
		if err := fd.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "gridsat: checkpoint written to %s\n", *ckptOut)
	}
	report(res.Status, res.Model, f)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	clients := fs.Int("clients", 4, "number of in-process clients")
	threads := fs.Int("threads", runtime.NumCPU(), "portfolio workers per client (1 = classic single-solver clients)")
	shareLen := fs.Int("share-len", 10, "maximum shared clause length")
	splitStrategy := fs.String("split-strategy", "", "split engine: "+solver.StrategyNames)
	timeout := fs.Duration("timeout", 10*time.Minute, "overall budget")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /status and pprof here during the run")
	reportPath := fs.String("report", "", "write a machine-readable JSON run report here")
	logLevel := fs.String("log", "", "structured log level (debug|info|warn|error; empty = off)")
	tracePath := fs.String("trace", "", "record the control-plane flight log as JSONL here")
	perfettoPath := fs.String("trace-perfetto", "", "also render the flight log as a Perfetto trace here")
	dotPath := fs.String("trace-dot", "", "also render the split-lineage tree as Graphviz DOT here")
	fs.Parse(args)
	f, err := loadCNF(fs.Arg(0))
	if err != nil {
		return err
	}
	logger, err := runLogger(*logLevel)
	if err != nil {
		return err
	}
	fl, closeFlight, err := flightRecorder(*tracePath)
	if err != nil {
		return err
	}
	res, err := core.Solve(f, core.JobConfig{
		Clients:       *clients,
		Threads:       *threads,
		ShareMaxLen:   *shareLen,
		SplitStrategy: *splitStrategy,
		Timeout:       *timeout,
		MetricsAddr:   *metricsAddr,
		Logger:        logger,
		Flight:        fl,
	})
	if err != nil {
		return err
	}
	if err := closeFlight(); err != nil {
		return err
	}
	if err := writeTraceViews(fl, *perfettoPath, *dotPath); err != nil {
		return err
	}
	report(res.Status, res.Model, f)
	fmt.Printf("c wall=%.3fs max-clients=%d threads=%d splits=%d shared-clauses=%d msgs=%d bytes=%d\n",
		res.Wall.Seconds(), res.MaxClients, res.Threads, res.Splits, res.SharedClauses,
		res.Comm.MsgsSent, res.Comm.BytesSent)
	return writeReport(*reportPath, fs.Arg(0), res, fl)
}

// runLogger builds the stderr structured logger for -log; "" disables.
func runLogger(level string) (*obs.Logger, error) {
	if level == "" {
		return nil, nil
	}
	return obs.NewLogger(os.Stderr, obs.ParseLevel(level)), nil
}

// flightRecorder opens the -trace flight recorder streaming JSONL to path;
// "" disables tracing. The returned closer flushes and closes the sink.
func flightRecorder(path string) (*trace.Flight, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	fd, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	fl := trace.NewFlight(fd)
	closer := func() error {
		if err := fl.Flush(); err != nil {
			fd.Close()
			return err
		}
		fmt.Fprintf(os.Stderr, "gridsat: flight log (%d events) written to %s\n", fl.Len(), path)
		return fd.Close()
	}
	return fl, closer, nil
}

// writeTraceViews renders the two derived views of a flight log: a
// Perfetto/chrome-tracing timeline and a split-lineage DOT graph.
func writeTraceViews(fl *trace.Flight, perfettoPath, dotPath string) error {
	if fl == nil {
		return nil
	}
	if perfettoPath != "" {
		fd, err := os.Create(perfettoPath)
		if err != nil {
			return err
		}
		if err := trace.WritePerfetto(fd, fl.Events()); err != nil {
			fd.Close()
			return err
		}
		if err := fd.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "gridsat: perfetto trace written to %s (open in ui.perfetto.dev)\n", perfettoPath)
	}
	if dotPath != "" {
		fd, err := os.Create(dotPath)
		if err != nil {
			return err
		}
		tree := trace.BuildLineage(fl.Events())
		if err := tree.WriteDOT(fd); err != nil {
			fd.Close()
			return err
		}
		if err := fd.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "gridsat: lineage tree (%d leaves) written to %s\n", len(tree.Leaves()), dotPath)
	}
	return nil
}

// writeReport writes the -report JSON file; "" is a no-op. A non-nil
// flight recorder contributes its per-kind event summary.
func writeReport(path, instance string, res core.Result, fl *trace.Flight) error {
	if path == "" {
		return nil
	}
	if instance == "" {
		instance = "-"
	}
	rep := core.BuildReport(instance, res)
	if fl != nil {
		s := trace.Summarize(fl.Events())
		rep.Flight = &s
	}
	if err := rep.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gridsat: report written to %s\n", path)
	return nil
}

func cmdMaster(args []string) error {
	fs := flag.NewFlagSet("master", flag.ExitOnError)
	listen := fs.String("listen", ":7070", "TCP listen address")
	minMem := fs.Int64("min-mem", 128<<20, "minimum client free memory (bytes)")
	timeout := fs.Duration("timeout", 0, "overall budget (0 = none)")
	expected := fs.Int("expect-clients", 0, "wait for this many registrations before starting")
	splitStrategy := fs.String("split-strategy", "", "split engine: "+solver.StrategyNames)
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /status and pprof here during the run")
	reportPath := fs.String("report", "", "write a machine-readable JSON run report here")
	logLevel := fs.String("log", "", "structured log level (debug|info|warn|error; empty = off)")
	tracePath := fs.String("trace", "", "record the control-plane flight log as JSONL here")
	perfettoPath := fs.String("trace-perfetto", "", "also render the flight log as a Perfetto trace here")
	dotPath := fs.String("trace-dot", "", "also render the split-lineage tree as Graphviz DOT here")
	fs.Parse(args)
	f, err := loadCNF(fs.Arg(0))
	if err != nil {
		return err
	}
	logger, err := runLogger(*logLevel)
	if err != nil {
		return err
	}
	fl, closeFlight, err := flightRecorder(*tracePath)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	cm := comm.NewMetrics(reg)
	m, err := core.NewMaster(core.MasterConfig{
		Transport:       comm.Instrument(comm.TCPTransport{}, cm),
		ListenAddr:      *listen,
		Formula:         f,
		MinMemBytes:     *minMem,
		Timeout:         *timeout,
		ExpectedClients: *expected,
		SplitStrategy:   *splitStrategy,
		Metrics:         reg,
		MetricsAddr:     *metricsAddr,
		Logger:          logger,
		Flight:          fl,
		CommMetrics:     cm,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "gridsat master listening on", m.Addr())
	if a := m.MetricsAddr(); a != "" {
		fmt.Fprintln(os.Stderr, "gridsat metrics on http://"+a+"/metrics")
	}
	res, err := m.Run()
	if err != nil {
		return err
	}
	res.Comm = cm.Totals()
	if err := closeFlight(); err != nil {
		return err
	}
	if err := writeTraceViews(fl, *perfettoPath, *dotPath); err != nil {
		return err
	}
	report(res.Status, res.Model, f)
	fmt.Printf("c wall=%.3fs max-clients=%d splits=%d shared-clauses=%d msgs=%d bytes=%d\n",
		res.Wall.Seconds(), res.MaxClients, res.Splits, res.SharedClauses,
		res.Comm.MsgsSent, res.Comm.BytesSent)
	return writeReport(*reportPath, fs.Arg(0), res, fl)
}

// cmdServe boots the long-lived multi-job scheduling service: a serve-mode
// master whose /jobs HTTP API (submit, status, cancel, result) rides the
// introspection server. Ctrl-C shuts the pool down cleanly.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", ":7070", "TCP listen address for solver clients")
	apiAddr := fs.String("api-addr", ":8080", "HTTP address for the /jobs API (also serves /metrics, /status, /progress)")
	policy := fs.String("sched", "fifo", "allocation policy: fifo | fair-share | priority")
	maxJobs := fs.Int("max-jobs", 0, "admission cap on active jobs (0 = derive from client count)")
	memBudget := fs.Int64("mem-budget", 0, "admission cap on summed active formula bytes (0 = unbounded)")
	minMem := fs.Int64("min-mem", 128<<20, "minimum client free memory (bytes)")
	rebalance := fs.Duration("rebalance", 0, "allocation review period (0 = 250ms)")
	timeout := fs.Duration("timeout", 0, "shut the service down after this long (0 = run until interrupted)")
	splitStrategy := fs.String("split-strategy", "", "split engine: "+solver.StrategyNames)
	logLevel := fs.String("log", "info", "structured log level (debug|info|warn|error; empty = off)")
	tracePath := fs.String("trace", "", "record the control-plane flight log as JSONL here")
	perfettoPath := fs.String("trace-perfetto", "", "also render the flight log as a Perfetto trace here")
	bundleDir := fs.String("bundle-dir", "", "write postmortem black-box bundles here on job failure/cancel, watchdog alerts, and POST /debug/bundle (empty = off)")
	fs.Parse(args)
	if *apiAddr == "" {
		return fmt.Errorf("serve needs -api-addr: the /jobs API rides the introspection server")
	}
	if _, err := core.ParseSchedPolicy(*policy); err != nil {
		return err
	}
	logger, err := runLogger(*logLevel)
	if err != nil {
		return err
	}
	fl, closeFlight, err := flightRecorder(*tracePath)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	cm := comm.NewMetrics(reg)
	// The API endpoints are consumed by NewMaster, so the service is built
	// unbound and attached once the master exists (requests in the gap
	// get 503).
	svc := core.NewService(nil)
	m, err := core.NewMaster(core.MasterConfig{
		Transport:       comm.Instrument(comm.TCPTransport{}, cm),
		ListenAddr:      *listen,
		MinMemBytes:     *minMem,
		Timeout:         *timeout,
		SplitStrategy:   *splitStrategy,
		Metrics:         reg,
		MetricsAddr:     *apiAddr,
		Logger:          logger,
		Flight:          fl,
		CommMetrics:     cm,
		Serve:           true,
		SchedPolicy:     *policy,
		Admission:       core.Admission{MaxActive: *maxJobs, MemBudgetBytes: *memBudget},
		RebalancePeriod: *rebalance,
		ExtraEndpoints:  svc.Endpoints(),
		BundleDir:       *bundleDir,
	})
	if err != nil {
		return err
	}
	svc.Attach(m)
	fmt.Fprintln(os.Stderr, "gridsat serve: clients on", m.Addr())
	fmt.Fprintln(os.Stderr, "gridsat serve: job API on http://"+m.MetricsAddr()+"/jobs (policy "+*policy+")")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "gridsat serve: shutting down")
		m.Shutdown()
	}()

	_, err = m.Run()
	signal.Stop(sig)
	if err != nil {
		return err
	}
	if err := closeFlight(); err != nil {
		return err
	}
	return writeTraceViews(fl, *perfettoPath, "")
}

func cmdClient(args []string) error {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	master := fs.String("master", "localhost:7070", "master address")
	listen := fs.String("listen", ":0", "P2P listen address")
	mem := fs.Int64("mem", 512<<20, "free memory to report and budget from")
	speed := fs.Float64("speed", 1.0, "relative CPU speed hint")
	threads := fs.Int("threads", runtime.NumCPU(), "portfolio workers on this host (1 = classic single-solver client)")
	shareLen := fs.Int("share-len", 10, "maximum shared clause length")
	splitStrategy := fs.String("split-strategy", "", "split engine: "+solver.StrategyNames)
	fs.Parse(args)
	host, _ := os.Hostname()
	cl, err := core.NewClient(core.ClientConfig{
		Transport:     comm.TCPTransport{},
		MasterAddr:    *master,
		ListenAddr:    *listen,
		HostName:      host,
		FreeMemBytes:  *mem,
		SpeedHint:     *speed,
		Threads:       *threads,
		ShareMaxLen:   *shareLen,
		SplitStrategy: *splitStrategy,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gridsat client %d registered (p2p %s)\n", cl.ID(), cl.Addr())
	return cl.Run()
}

// cmdCheckProof independently certifies an UNSAT answer from a RUP proof
// (the zVerify role): gridsat checkproof problem.cnf proof.rup
func cmdCheckProof(args []string) error {
	fs := flag.NewFlagSet("checkproof", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: gridsat checkproof problem.cnf proof.rup")
	}
	f, err := loadCNF(fs.Arg(0))
	if err != nil {
		return err
	}
	fd, err := os.Open(fs.Arg(1))
	if err != nil {
		return err
	}
	defer fd.Close()
	lemmas, err := proof.Parse(fd)
	if err != nil {
		return err
	}
	if err := proof.Check(f, lemmas); err != nil {
		return fmt.Errorf("proof REJECTED: %w", err)
	}
	fmt.Printf("proof OK: %d lemmas certify UNSATISFIABLE\n", len(lemmas))
	return nil
}

// cmdTop is the live cluster dashboard: it polls a running master's
// /progress and /status endpoints (served on -metrics-addr) and repaints a
// fixed-width terminal frame until the run reaches a verdict.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "master introspection address (its -metrics-addr)")
	interval := fs.Duration("interval", 2*time.Second, "refresh period")
	once := fs.Bool("once", false, "print a single frame and exit")
	width := fs.Int("width", core.TopWidth, "frame width in columns")
	fs.Parse(args)
	base := "http://" + strings.TrimPrefix(*addr, "http://")
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		var p core.ProgressSnapshot
		if err := fetchJSON(client, base+"/progress", &p); err != nil {
			return fmt.Errorf("fetch %s/progress: %w", base, err)
		}
		// /status and /history are best-effort: the frame degrades
		// gracefully (missing backlog/split totals, no sparklines) when
		// either is unavailable.
		var s core.StatusSnapshot
		_ = fetchJSON(client, base+"/status", &s)
		frame := core.RenderTopSparks(p, s, fetchSparks(client, base), *width)
		if *once {
			fmt.Print(frame)
			return nil
		}
		// Home the cursor and clear below: the fixed-width frame overwrites
		// the previous one without flicker.
		fmt.Print("\x1b[H\x1b[2J" + frame)
		if p.Verdict != "" {
			return nil
		}
		time.Sleep(*interval)
	}
}

// fetchSparks pulls the master's GET /history window and extracts the
// series the dashboard sparklines render. Best-effort: any failure (old
// master, sampler disabled) returns nil and the frame stays spark-free.
func fetchSparks(c *http.Client, base string) *core.TopSparks {
	var h struct {
		Series []history.SeriesDump `json:"series"`
	}
	if err := fetchJSON(c, base+"/history", &h); err != nil {
		return nil
	}
	vals := func(d history.SeriesDump) []float64 {
		if len(d.Tiers) == 0 {
			return nil
		}
		pts := d.Tiers[0].Points // finest tier: the newest window
		out := make([]float64, len(pts))
		for i, p := range pts {
			out[i] = p.V
		}
		return out
	}
	sp := &core.TopSparks{ClientRate: map[int][]float64{}}
	for _, d := range h.Series {
		switch {
		case d.Name == "cluster.coverage":
			sp.Coverage = vals(d)
		case d.Name == "cluster.conflict_rate":
			sp.Rate = vals(d)
		case strings.HasPrefix(d.Name, "client.") && strings.HasSuffix(d.Name, ".conflict_rate"):
			id, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(d.Name, "client."), ".conflict_rate"))
			if err == nil {
				sp.ClientRate[id] = vals(d)
			}
		}
	}
	if len(sp.Coverage) == 0 && len(sp.Rate) == 0 && len(sp.ClientRate) == 0 {
		return nil
	}
	return sp
}

// fetchJSON GETs url and decodes the JSON body into out.
func fetchJSON(c *http.Client, url string, out any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	testbed := fs.String("testbed", "grads", "grads (34 hosts) or table2 (27 hosts)")
	timeout := fs.Float64("timeout-vsec", 6000, "virtual-second budget")
	threads := fs.Int("threads", runtime.NumCPU(), "simulated portfolio workers per client (1 = classic single-solver clients; pin for cross-machine reproducibility)")
	shareLen := fs.Int("share-len", 10, "maximum shared clause length")
	splitStrategy := fs.String("split-strategy", "", "split engine: "+solver.StrategyNames)
	seed := fs.Int64("seed", 1, "contention/jitter seed")
	sequential := fs.Bool("sequential", false, "run the dedicated sequential baseline instead")
	batch := fs.Bool("batch", false, "submit a Blue Horizon batch job (table2 testbed)")
	timeline := fs.String("timeline", "", "write the active-clients-over-time curve as CSV")
	tracePath := fs.String("trace", "", "record the control-plane flight log as JSONL here")
	perfettoPath := fs.String("trace-perfetto", "", "also render the flight log as a Perfetto trace here")
	dotPath := fs.String("trace-dot", "", "also render the split-lineage tree as Graphviz DOT here")
	replay := fs.Bool("replay", false, "re-run the simulation and verify it reproduces the flight log exactly")
	watchdog := fs.Bool("watchdog", false, "run the anomaly watchdog over the simulated cluster (virtual-time thresholds)")
	bundleDir := fs.String("bundle-dir", "", "write deterministic postmortem bundles here on anomalies and job failure/cancel (implies -watchdog)")
	fs.Parse(args)
	f, err := loadCNF(fs.Arg(0))
	if err != nil {
		return err
	}
	// The DES degrades unknown strategies to first-decision; reject them
	// loudly at the flag boundary instead.
	if _, err := solver.ParseStrategy(*splitStrategy); err != nil {
		return err
	}
	// The grid is mutated during a run, so replay verification needs a
	// fresh, identically-seeded config per run — hence a constructor.
	mkCfg := func() (core.RunnerConfig, error) {
		var g *grid.Grid
		switch *testbed {
		case "grads":
			g = grid.TestbedGrADS(*seed)
		case "table2":
			g = grid.TestbedTable2(*seed)
		default:
			return core.RunnerConfig{}, fmt.Errorf("unknown testbed %q", *testbed)
		}
		cfg := core.RunnerConfig{
			Grid:          g,
			Formula:       f,
			TimeoutVSec:   *timeout,
			Threads:       *threads,
			ShareMaxLen:   *shareLen,
			SplitStrategy: *splitStrategy,
			MasterHostID:  -1,
			Seed:          *seed,
		}
		if *watchdog || *bundleDir != "" {
			cfg.Watchdog = &core.WatchdogConfig{}
			cfg.BundleDir = *bundleDir
		}
		if *batch {
			g.AddBlueHorizon(64)
			cfg.Batch = &core.BatchPlan{
				Nodes: 64, WalltimeVSec: 720, MeanQueueWaitVSec: 1980, TerminateOnEnd: true,
			}
		}
		return cfg, nil
	}
	if *sequential && (*tracePath != "" || *replay) {
		return fmt.Errorf("-trace/-replay need the distributed runner (drop -sequential)")
	}
	fl, closeFlight, err := flightRecorder(*tracePath)
	if err != nil {
		return err
	}
	// -replay needs the events in memory even without a -trace file.
	if *replay && fl == nil {
		fl = trace.NewFlight(nil)
	}
	cfg, err := mkCfg()
	if err != nil {
		return err
	}
	cfg.Flight = fl
	var res core.SimResult
	if *sequential {
		res = core.RunSequential(cfg)
	} else {
		res = core.RunDistributed(cfg)
	}
	if err := closeFlight(); err != nil {
		return err
	}
	if err := writeTraceViews(fl, *perfettoPath, *dotPath); err != nil {
		return err
	}
	if *replay {
		err := trace.ReplayVerify(fl.Events(), func(f2 *trace.Flight) error {
			cfg2, err := mkCfg()
			if err != nil {
				return err
			}
			cfg2.Flight = f2
			core.RunDistributed(cfg2)
			return nil
		})
		if err != nil {
			return fmt.Errorf("replay verification FAILED: %w", err)
		}
		fmt.Fprintf(os.Stderr, "gridsat: replay verified — re-run reproduced all %d flight events\n", fl.Len())
	}
	report(res.Status, res.Model, f)
	fmt.Printf("c outcome=%s vsec=%.1f max-clients=%d threads=%d splits=%d shared=%d work=%d-props msgs=%d bytes=%d\n",
		res.Outcome, res.VSec, res.MaxClients, res.Threads, res.Splits, res.Shared, res.TotalProps,
		res.Msgs, res.Bytes)
	for _, a := range res.Alerts {
		fmt.Printf("c alert rule=%s subject=%q vsec=%.1f detail=%q\n", a.Rule, a.Subject, a.TSec, a.Detail)
	}
	for _, b := range res.Bundles {
		fmt.Fprintln(os.Stderr, "gridsat: postmortem bundle written to", b)
	}
	if *timeline != "" && !*sequential {
		fd, err := os.Create(*timeline)
		if err != nil {
			return err
		}
		defer fd.Close()
		fmt.Fprintln(fd, "vsec,busy_clients")
		for _, p := range res.Timeline {
			fmt.Fprintf(fd, "%.3f,%d\n", p.VSec, p.Busy)
		}
		fmt.Fprintf(os.Stderr, "gridsat: timeline (%d samples) written to %s\n", len(res.Timeline), *timeline)
	}
	return nil
}
