// Command benchtab regenerates the GridSAT paper's evaluation tables and
// ablation studies on the simulated grid.
//
//	benchtab -table 1              regenerate Table 1 (all 42 rows)
//	benchtab -table 2              regenerate Table 2 (9 rows + batch)
//	benchtab -table 1 -rows 6pipe,dp12s12
//	benchtab -ablation sharelen    clause-share-length sweep
//	benchtab -ablation sched       scheduling-policy sweep (Poisson workload)
//	benchtab -bhonly               par32-1-c Blue-Horizon-only rerun
//	benchtab -snapshot BENCH_6.json   machine-readable CI perf snapshot
//
// Times are virtual seconds at the fixed scale (1 vsec ≈ 10 paper
// seconds); runs are deterministic.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gridsat/internal/bench"
	"gridsat/internal/gen"
)

func main() {
	var (
		table       = flag.Int("table", 0, "regenerate table 1 or 2")
		rows        = flag.String("rows", "", "comma-separated row filter")
		scale       = flag.Float64("scale", 1.0, "budget scale factor (1.0 = paper-faithful)")
		seed        = flag.Int64("seed", 1, "grid contention seed")
		ablation    = flag.String("ablation", "", "sharelen | splittimeout | pruning | ranking | minimize | topology | split | hybrid | sched")
		schedJobs   = flag.Int("sched-jobs", 8, "job count for the sched ablation's Poisson workload")
		schedGap    = flag.Float64("sched-gap", 8, "mean inter-arrival gap (vsec) for the sched ablation")
		ablationOut = flag.String("ablation-out", "", "also write the ablation's machine-readable JSON here (split and hybrid)")
		threads     = flag.Int("threads", 0, "portfolio workers per simulated client (0/1 = single-solver)")
		bhOnly      = flag.Bool("bhonly", false, "rerun par32-1-c on Blue Horizon alone")
		snapshot    = flag.String("snapshot", "", "write a machine-readable perf snapshot (JSON) to this path")
		quiet       = flag.Bool("q", false, "suppress per-row progress")
	)
	flag.Parse()

	opts := bench.Options{Scale: *scale, Seed: *seed, Threads: *threads}
	if *rows != "" {
		opts.Rows = strings.Split(*rows, ",")
	}
	if !*quiet {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	did := false
	if *table == 1 {
		did = true
		out := bench.Table1(opts)
		fmt.Println(bench.RenderTable1(out))
		if issues := bench.Shape(out); len(issues) > 0 {
			fmt.Println("shape deviations from the paper:")
			for _, i := range issues {
				fmt.Println("  -", i)
			}
		} else {
			fmt.Println("shape: all qualitative Table-1 claims reproduced")
		}
	}
	if *table == 2 {
		did = true
		out := bench.Table2(opts)
		fmt.Println(bench.RenderTable2(out))
		if issues := bench.Shape2(out); len(issues) > 0 {
			fmt.Println("shape deviations from the paper:")
			for _, i := range issues {
				fmt.Println("  -", i)
			}
		} else {
			fmt.Println("shape: all qualitative Table-2 claims reproduced")
		}
	}
	if *ablation != "" {
		did = true
		if *ablation == "sched" {
			jobs := bench.PoissonWorkload(*schedJobs, *schedGap, *seed)
			fmt.Printf("ablation: scheduling policy over a %d-job Poisson workload (mean gap %gvs, %d clients)\n",
				*schedJobs, *schedGap, bench.SchedWorkloadClients)
			fmt.Print(bench.RenderSchedAblation(bench.AblationSched(jobs, opts)))
		} else {
			runAblation(*ablation, *ablationOut, opts)
		}
	}
	if *bhOnly {
		did = true
		inst, _ := gen.ByName("par32-1-c")
		res := bench.BlueHorizonOnly(inst, opts)
		fmt.Printf("par32-1-c on Blue Horizon alone: outcome=%v vsec=%.0f batch-start=%.0f batch-time=%.0f\n",
			res.Outcome, res.VSec, res.BatchStartVSec, res.VSec-res.BatchStartVSec)
	}
	if *snapshot != "" {
		did = true
		snap := bench.BuildSnapshot(opts)
		if err := bench.WriteSnapshot(*snapshot, snap); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows, scale %g, seed %d)\n",
			*snapshot, len(snap.Rows), snap.Scale, snap.Seed)
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}

func runAblation(kind, outPath string, opts bench.Options) {
	// The hybrid ablation sweeps its own multi-family row set (or -rows).
	if kind == "hybrid" {
		results := bench.AblationHybridSuite(opts.Rows, opts)
		fmt.Println("ablation: split-only vs portfolio-only vs hybrid (splits × in-host portfolio)")
		fmt.Print(bench.RenderHybridAblation(results))
		if outPath != "" {
			if err := bench.WriteHybridAblation(outPath, results); err != nil {
				fmt.Fprintln(os.Stderr, "benchtab:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "benchtab: hybrid ablation JSON written to %s\n", outPath)
		}
		return
	}
	inst, ok := gen.ByName("homer12") // a large both-solved row
	if !ok {
		fmt.Fprintln(os.Stderr, "benchtab: ablation instance missing")
		os.Exit(1)
	}
	f := inst.Build()
	switch kind {
	case "sharelen":
		fmt.Print(bench.RenderAblation("clause-share length (paper §3.2)",
			bench.AblationShareLen(f, []int{0, 3, 10, 50}, opts)))
	case "splittimeout":
		fmt.Print(bench.RenderAblation("split timeout (paper §3.3, ping-pong guard)",
			bench.AblationSplitTimeout(f, []float64{1, 5, 10, 40}, opts)))
	case "pruning":
		fmt.Print(bench.RenderAblation("level-0 clause pruning (paper §3.1)",
			bench.AblationPruning(f, opts)))
	case "ranking":
		fmt.Print(bench.RenderAblation("NWS scheduler ranking vs flat placement",
			bench.AblationRanking(f, opts)))
	case "minimize":
		fmt.Print(bench.RenderAblation("learned-clause minimization (post-Chaff refinement)",
			bench.AblationMinimization(f, opts)))
	case "topology":
		fmt.Print(bench.RenderAblation("clause-sharing topology (master relay vs P2P)",
			bench.AblationSharingTopology(f, opts)))
	case "split":
		results := bench.AblationSplitStrategy(f, opts)
		fmt.Println("ablation: split strategy (first-decision vs dilemma fan-out)")
		fmt.Print(bench.RenderStrategyAblation(results))
		if outPath != "" {
			if err := bench.WriteStrategyAblation(outPath, results); err != nil {
				fmt.Fprintln(os.Stderr, "benchtab:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "benchtab: strategy ablation JSON written to %s\n", outPath)
		}
	default:
		fmt.Fprintf(os.Stderr, "benchtab: unknown ablation %q\n", kind)
		os.Exit(2)
	}
}
