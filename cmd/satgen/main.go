// Command satgen writes synthetic SAT instances in DIMACS format — the
// generator families standing in for the paper's SAT2002 benchmark suite.
//
// Usage examples:
//
//	satgen -family pigeonhole -n 10 -o php10.cnf
//	satgen -family random3sat -n 200 -ratio 4.26 -seed 7
//	satgen -family suite -name 6pipe -o 6pipe.cnf
package main

import (
	"flag"
	"fmt"
	"os"

	"gridsat/internal/cnf"
	"gridsat/internal/gen"
)

func main() {
	var (
		family = flag.String("family", "random3sat", "one of: random3sat, pigeonhole, pigeonhole-shuffled, xor, parity, coloring, miter, miterbug, counter, hanoi, factor, latin, suite")
		n      = flag.Int("n", 100, "primary size parameter (variables / holes / width / nodes)")
		m      = flag.Int("m", 0, "secondary size (clauses / equations / edges / steps); 0 derives from -ratio")
		k      = flag.Int("k", 3, "clause width (random3sat) or colors (coloring)")
		ratio  = flag.Float64("ratio", 4.26, "clause-to-variable ratio when -m is 0")
		seed   = flag.Int64("seed", 1, "generator seed")
		sat    = flag.Bool("sat", true, "generate the satisfiable variant where the family has one")
		value  = flag.Uint64("value", 15, "target value (counter, factor)")
		name   = flag.String("name", "", "suite row name (family=suite)")
		out    = flag.String("o", "", "output file (default stdout)")
		list   = flag.Bool("list", false, "list the 42 suite row names and exit")
	)
	flag.Parse()

	if *list {
		for _, inst := range gen.Suite() {
			fmt.Printf("%-30s %-8s section=%d challenge=%v table2=%v\n",
				inst.Name, inst.Expected, inst.Section, inst.Challenge, inst.Table2)
		}
		return
	}

	f, err := build(*family, *n, *m, *k, *ratio, *seed, *sat, *value, *name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "satgen:", err)
		os.Exit(2)
	}
	w := os.Stdout
	if *out != "" {
		fd, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "satgen:", err)
			os.Exit(2)
		}
		defer fd.Close()
		w = fd
	}
	if err := cnf.WriteDIMACS(w, f); err != nil {
		fmt.Fprintln(os.Stderr, "satgen:", err)
		os.Exit(2)
	}
}

func build(family string, n, m, k int, ratio float64, seed int64, sat bool, value uint64, name string) (*cnf.Formula, error) {
	derive := func(def float64) int {
		if m > 0 {
			return m
		}
		return int(def * float64(n))
	}
	switch family {
	case "random3sat":
		return gen.RandomKSAT(n, derive(ratio), k, seed), nil
	case "pigeonhole":
		return gen.Pigeonhole(n), nil
	case "pigeonhole-shuffled":
		return gen.PigeonholeShuffled(n, seed), nil
	case "xor":
		return gen.XORSystem(n, derive(0.96), sat, seed), nil
	case "parity":
		return gen.ParityChain(n, derive(0.5), sat, seed), nil
	case "coloring":
		return gen.GraphColoring(n, derive(2.3), k, seed), nil
	case "miter":
		return gen.AdderMiter(n), nil
	case "miterbug":
		return gen.AdderMiterBug(n), nil
	case "counter":
		return gen.Counter(n, derive(2), value), nil
	case "hanoi":
		return gen.Hanoi(n, derive(1.5)), nil
	case "factor":
		return gen.FactoringLike(n, value), nil
	case "latin":
		return gen.LatinSquare(n, derive(0.5), seed), nil
	case "suite":
		inst, ok := gen.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown suite row %q (see DESIGN.md for the 42 names)", name)
		}
		return inst.Build(), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}
