// Command zchaff is the sequential baseline solver in the role the
// original zChaff plays in the paper: a single-machine Chaff-style CDCL
// engine reading DIMACS CNF and reporting SAT/UNSAT with a model.
//
// Usage:
//
//	zchaff [flags] problem.cnf
//	zchaff [flags] < problem.cnf
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gridsat/internal/cnf"
	"gridsat/internal/proof"
	"gridsat/internal/simplify"
	"gridsat/internal/solver"
)

func main() {
	var (
		maxConflicts = flag.Int64("max-conflicts", 0, "conflict budget (0 = unlimited)")
		timeout      = flag.Duration("timeout", 0, "wall-clock budget (0 = unlimited)")
		memBytes     = flag.Int64("mem", 0, "clause-database memory budget in bytes (0 = unlimited)")
		noPrune      = flag.Bool("no-prune", false, "disable level-0 clause pruning")
		noRestart    = flag.Bool("no-restart", false, "disable restarts")
		quiet        = flag.Bool("q", false, "suppress the model and statistics")
		seed         = flag.Int64("seed", 0, "heuristic tie-break seed")
		proofPath    = flag.String("proof", "", "write a DRUP/RUP refutation proof here (checkable with gridsat checkproof)")
		presimplify  = flag.Bool("presimplify", false, "run the SatELite-style preprocessor first (disables -proof)")
	)
	flag.Parse()

	f, err := readProblem(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "zchaff:", err)
		os.Exit(2)
	}

	var pre *simplify.Simplified
	if *presimplify {
		pre = simplify.Simplify(f, simplify.DefaultOptions())
		fmt.Fprintf(os.Stderr, "c presimplify: %v (clauses %d -> %d, %d vars eliminated)\n",
			pre.Stats, f.NumClauses(), pre.F.NumClauses(), pre.NumEliminated())
		if pre.Unsat {
			fmt.Println("s UNSATISFIABLE")
			return
		}
		if *proofPath != "" {
			fmt.Fprintln(os.Stderr, "zchaff: -proof is unavailable with -presimplify (the trace would not refute the original formula)")
			os.Exit(2)
		}
	}

	opts := solver.DefaultOptions()
	opts.PruneLevel0 = !*noPrune
	opts.Seed = *seed
	if *noRestart {
		opts.RestartBase = 0
	}
	var proofFile *os.File
	var pw *proof.Writer
	if *proofPath != "" {
		var err error
		proofFile, err = os.Create(*proofPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zchaff:", err)
			os.Exit(2)
		}
		pw = proof.NewWriter(proofFile)
		opts.OnLemma = pw.Hook()
	}
	target := f
	if pre != nil {
		target = pre.F
	}
	s := solver.New(target, opts)
	start := time.Now()
	res := s.Solve(solver.Limits{
		MaxConflicts:   *maxConflicts,
		MaxTime:        *timeout,
		MaxMemoryBytes: *memBytes,
	})
	elapsed := time.Since(start)

	if pw != nil {
		if err := pw.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "zchaff: writing proof:", err)
			os.Exit(2)
		}
		proofFile.Close()
		if res.Status == solver.StatusUNSAT {
			fmt.Fprintf(os.Stderr, "c proof: %d lemmas written to %s\n", pw.Lemmas(), *proofPath)
		}
	}
	switch res.Status {
	case solver.StatusSAT:
		fmt.Println("s SATISFIABLE")
		model := res.Model
		if pre != nil {
			model = pre.ExtendModel(model)
			if err := f.Verify(model); err != nil {
				fmt.Fprintln(os.Stderr, "zchaff: extended model verification FAILED:", err)
				os.Exit(1)
			}
		}
		if !*quiet {
			printModel(model)
		}
	case solver.StatusUNSAT:
		fmt.Println("s UNSATISFIABLE")
	default:
		fmt.Printf("s UNKNOWN (%s)\n", res.Reason)
	}
	if !*quiet {
		st := s.Stats()
		fmt.Printf("c time=%.3fs decisions=%d conflicts=%d propagations=%d learned=%d deleted=%d restarts=%d mem=%dKB\n",
			elapsed.Seconds(), st.Decisions, st.Conflicts, st.Propagations,
			st.Learned, st.Deleted, st.Restarts, s.MemoryBytes()/1024)
	}
	if res.Status == solver.StatusUnknown {
		os.Exit(1)
	}
}

func readProblem(path string) (*cnf.Formula, error) {
	if path == "" || path == "-" {
		return cnf.ParseDIMACS(os.Stdin)
	}
	return cnf.ParseDIMACSFile(path)
}

func printModel(m cnf.Assignment) {
	fmt.Print("v")
	for v := 0; v < len(m); v++ {
		lit := v + 1
		if m[v] == cnf.False {
			lit = -lit
		}
		fmt.Printf(" %d", lit)
	}
	fmt.Println(" 0")
}
