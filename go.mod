module gridsat

go 1.24
