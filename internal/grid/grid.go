package grid

import (
	"fmt"
	"math"
)

// Host is one simulated machine.
type Host struct {
	ID   int
	Name string
	Site string
	// Speed is relative CPU power; 1.0 is the baseline ("fastest UTK
	// cluster node" class in the paper's first testbed).
	Speed float64
	// MemBytes is physical memory. GridSAT clients use at most 60% of the
	// free portion (paper §3.3).
	MemBytes int64
	// BaseAvail is the long-run fraction of the CPU left by background
	// users of the shared machine; 1.0 means dedicated.
	BaseAvail float64
	// Jitter is the amplitude of availability fluctuation.
	Jitter float64
	// Batch marks hosts that are only reachable through the batch system
	// (Blue Horizon nodes).
	Batch bool
}

// Grid is a set of hosts plus the network connecting their sites.
type Grid struct {
	Hosts   []*Host
	Network *Network
	// Seed drives the deterministic contention noise.
	Seed int64
}

// HostByID returns the host with the given ID, or nil.
func (g *Grid) HostByID(id int) *Host {
	for _, h := range g.Hosts {
		if h.ID == id {
			return h
		}
	}
	return nil
}

// splitmix64 provides cheap deterministic pseudo-random bits for the
// contention model without any mutable state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (g *Grid) noise(h *Host, bucket int64, salt uint64) float64 {
	x := splitmix64(uint64(g.Seed)*0x9e37 ^ uint64(h.ID)<<32 ^ uint64(bucket) ^ salt<<17)
	return float64(x>>11) / float64(1<<53) // uniform [0,1)
}

// Availability returns the fraction of h's CPU available to GridSAT at
// virtual time t. Deterministic in (grid seed, host, ⌊t/30⌋): contention
// shifts every 30 virtual seconds, like the shared GrADS machines.
func (g *Grid) Availability(h *Host, t float64) float64 {
	if h.BaseAvail >= 1 && h.Jitter == 0 {
		return 1
	}
	bucket := int64(math.Floor(t / 30))
	n := g.noise(h, bucket, 1)
	avail := h.BaseAvail + h.Jitter*(2*n-1)
	if avail < 0.05 {
		avail = 0.05
	}
	if avail > 1 {
		avail = 1
	}
	return avail
}

// FreeMem returns h's free memory at virtual time t: other users' resident
// sets fluctuate between 0 and 40% of the machine.
func (g *Grid) FreeMem(h *Host, t float64) int64 {
	bucket := int64(math.Floor(t / 60))
	n := g.noise(h, bucket, 2)
	used := 0.4 * n * (1 - h.BaseAvail + 0.2)
	if used > 0.5 {
		used = 0.5
	}
	return int64(float64(h.MemBytes) * (1 - used))
}

// Network models per-site latency and bandwidth. Transfers within a site
// use the local parameters; transfers across sites use the WAN parameters.
type Network struct {
	// LocalLatency and LocalBandwidth apply within a site.
	LocalLatency   float64 // virtual seconds
	LocalBandwidth float64 // bytes per virtual second
	// WANLatency and WANBandwidth apply between sites.
	WANLatency   float64
	WANBandwidth float64
}

// Transfer returns the virtual seconds needed to move `bytes` from a to b.
// Same-host transfers are free.
func (n *Network) Transfer(a, b *Host, bytes int64) float64 {
	if a == nil || b == nil || a.ID == b.ID {
		return 0
	}
	if a.Site == b.Site {
		return n.LocalLatency + float64(bytes)/n.LocalBandwidth
	}
	return n.WANLatency + float64(bytes)/n.WANBandwidth
}

// DefaultNetwork mirrors a 2003-era campus LAN / Internet2 WAN:
// 1 ms / 10 MB/s locally, 60 ms / 1.5 MB/s across sites (virtual units).
func DefaultNetwork() *Network {
	return &Network{
		LocalLatency:   0.001,
		LocalBandwidth: 10e6,
		WANLatency:     0.060,
		WANBandwidth:   1.5e6,
	}
}

// TestbedGrADS builds the paper's first experimental setup: 34 machines in
// three sites — two UTK clusters (one with the best hardware), two UIUC
// clusters (including slow 250 MHz/128 MB nodes), and 8 UCSD desktops.
// Host 0 in the returned grid is the best UTK node, the machine the
// dedicated zChaff baseline runs on.
func TestbedGrADS(seed int64) *Grid {
	g := &Grid{Network: DefaultNetwork(), Seed: seed}
	id := 0
	add := func(n int, site string, speed float64, memMB int64, avail, jitter float64) {
		for i := 0; i < n; i++ {
			g.Hosts = append(g.Hosts, &Host{
				ID:        id,
				Name:      fmt.Sprintf("%s-%02d", site, i),
				Site:      site,
				Speed:     speed,
				MemBytes:  memMB << 20,
				BaseAvail: avail,
				Jitter:    jitter,
			})
			id++
		}
	}
	add(8, "utk-a", 1.00, 1024, 0.85, 0.15) // best cluster
	add(8, "utk-b", 0.80, 512, 0.80, 0.20)
	add(6, "uiuc-a", 0.70, 512, 0.80, 0.20)
	add(4, "uiuc-b", 0.25, 128, 0.70, 0.25) // 250 MHz PII, 128 MB
	add(8, "ucsd", 0.60, 256, 0.75, 0.25)   // desktops
	return g
}

// TestbedTable2 builds the paper's second setup: a 16-node UIUC cluster,
// 3 UCSD desktops and 8 UCSB desktops (27 hosts), with the slow machines
// removed from consideration.
func TestbedTable2(seed int64) *Grid {
	g := &Grid{Network: DefaultNetwork(), Seed: seed}
	id := 0
	add := func(n int, site string, speed float64, memMB int64, avail, jitter float64) {
		for i := 0; i < n; i++ {
			g.Hosts = append(g.Hosts, &Host{
				ID:        id,
				Name:      fmt.Sprintf("%s-%02d", site, i),
				Site:      site,
				Speed:     speed,
				MemBytes:  memMB << 20,
				BaseAvail: avail,
				Jitter:    jitter,
			})
			id++
		}
	}
	add(16, "uiuc", 1.00, 1024, 0.85, 0.15)
	add(3, "ucsd", 0.80, 512, 0.80, 0.20)
	add(8, "ucsb", 0.90, 512, 0.85, 0.15)
	return g
}

// AddBlueHorizon appends n batch-only nodes (the paper's Blue Horizon had
// 8 CPUs and 4 GB per node; we model each allocated CPU as a host). They
// are dedicated while allocated.
func (g *Grid) AddBlueHorizon(n int) []*Host {
	start := 0
	for _, h := range g.Hosts {
		if h.ID >= start {
			start = h.ID + 1
		}
	}
	var out []*Host
	for i := 0; i < n; i++ {
		h := &Host{
			ID:        start + i,
			Name:      fmt.Sprintf("bluehorizon-%03d", i),
			Site:      "sdsc",
			Speed:     1.1,
			MemBytes:  512 << 20,
			BaseAvail: 1.0, // dedicated during the batch allocation
			Jitter:    0,
			Batch:     true,
		}
		g.Hosts = append(g.Hosts, h)
		out = append(out, h)
	}
	return out
}
