package grid

import (
	"errors"
	"math"
)

// BatchJobState tracks a batch submission through its life cycle.
type BatchJobState int

// Batch job states.
const (
	JobQueued BatchJobState = iota
	JobRunning
	JobFinished
	JobCanceled
)

// String implements fmt.Stringer.
func (s BatchJobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobFinished:
		return "finished"
	case JobCanceled:
		return "canceled"
	}
	return "unknown"
}

// BatchJob is one submission to the batch system.
type BatchJob struct {
	ID       int
	Nodes    []*Host
	State    BatchJobState
	SubmitAt float64
	StartAt  float64 // valid once running
	EndAt    float64 // valid once running (start + walltime)
}

// BatchSystem simulates a space-shared machine like the IBM Blue Horizon:
// jobs wait in queue for a long, variable time (the paper reports ~33 h
// average for a 100-node/12-hour request), then run with dedicated nodes
// for at most their requested walltime. Jobs can be canceled while queued
// or running (GridSAT cancels the request when the problem is solved
// before the allocation arrives).
type BatchSystem struct {
	sim   *Sim
	nodes []*Host
	// MeanQueueWait is the average queue delay in virtual seconds.
	MeanQueueWait float64
	seed          int64
	nextID        int
	jobs          map[int]*BatchJob
}

// NewBatchSystem wires a batch system over the given (Batch=true) hosts.
func NewBatchSystem(sim *Sim, nodes []*Host, meanQueueWait float64, seed int64) *BatchSystem {
	return &BatchSystem{
		sim:           sim,
		nodes:         nodes,
		MeanQueueWait: meanQueueWait,
		seed:          seed,
		jobs:          map[int]*BatchJob{},
	}
}

// Submit queues a job for n nodes and the given walltime. onStart fires
// with the allocated hosts when the job launches; onEnd fires when the
// walltime expires (not when canceled). The returned job can be canceled.
func (b *BatchSystem) Submit(n int, walltime float64, onStart func(*BatchJob), onEnd func(*BatchJob)) (*BatchJob, error) {
	if n > len(b.nodes) {
		return nil, errors.New("grid: batch request exceeds machine size")
	}
	b.nextID++
	job := &BatchJob{
		ID:       b.nextID,
		State:    JobQueued,
		SubmitAt: b.sim.Now(),
	}
	b.jobs[job.ID] = job
	wait := b.queueWait(job.ID)
	b.sim.After(wait, func() {
		if job.State != JobQueued {
			return // canceled while waiting
		}
		job.State = JobRunning
		job.StartAt = b.sim.Now()
		job.EndAt = job.StartAt + walltime
		job.Nodes = b.nodes[:n]
		if onStart != nil {
			onStart(job)
		}
		b.sim.After(walltime, func() {
			if job.State != JobRunning {
				return
			}
			job.State = JobFinished
			if onEnd != nil {
				onEnd(job)
			}
		})
	})
	return job, nil
}

// Cancel withdraws a queued job or kills a running one.
func (b *BatchSystem) Cancel(job *BatchJob) {
	if job.State == JobQueued || job.State == JobRunning {
		job.State = JobCanceled
	}
}

// queueWait draws a deterministic wait around the configured mean: the
// paper's queue waits were "highly variable", modeled as mean × [0.6, 1.8).
func (b *BatchSystem) queueWait(jobID int) float64 {
	u := float64(splitmix64(uint64(b.seed)<<8^uint64(jobID))>>11) / float64(1<<53)
	w := b.MeanQueueWait * (0.6 + 1.2*u)
	return math.Max(w, 0)
}
