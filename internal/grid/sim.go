// Package grid simulates the Computational Grid substrate the paper ran
// on: heterogeneous hosts grouped into sites (the GrADS testbed at UTK,
// UIUC and UCSD, plus UCSB desktops), a wide-area network with per-site
// latency and bandwidth, background contention on the shared machines, an
// MDS-like information service fed by NWS forecasters, and a Blue
// Horizon-style batch system with long queue waits.
//
// Time is virtual: the package provides a deterministic discrete-event
// simulation kernel (Sim). GridSAT's benchmark harness advances client
// computation in work units (solver propagations) that convert to virtual
// seconds through each host's speed and current availability, so a 34-host
// distributed run can be reproduced exactly on a single physical core.
package grid

import "container/heap"

// Sim is a deterministic discrete-event simulation kernel. Events with
// equal timestamps run in scheduling order.
type Sim struct {
	now float64
	seq int64
	pq  eventHeap
}

// NewSim returns a kernel at virtual time 0.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pq, &event{t: t, seq: s.seq, fn: fn})
}

// After schedules fn d virtual seconds from now.
func (s *Sim) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Step runs the earliest pending event; false when none remain.
func (s *Sim) Step() bool {
	if s.pq.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.pq).(*event)
	s.now = ev.t
	ev.fn()
	return true
}

// Run executes events until the queue drains or the next event would pass
// the `until` horizon (which then becomes the current time). Events at
// exactly `until` still run.
func (s *Sim) Run(until float64) {
	for s.pq.Len() > 0 {
		if s.pq[0].t > until {
			s.now = until
			return
		}
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.pq.Len() }

// NextAt returns the timestamp of the earliest pending event.
func (s *Sim) NextAt() (float64, bool) {
	if s.pq.Len() == 0 {
		return 0, false
	}
	return s.pq[0].t, true
}

type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
