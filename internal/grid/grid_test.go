package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.After(2, func() { order = append(order, 2) })
	s.After(1, func() { order = append(order, 1) })
	s.After(3, func() { order = append(order, 3) })
	s.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 10 {
		t.Fatalf("now = %v, want horizon 10", s.Now())
	}
}

func TestSimEqualTimesFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(1, func() { order = append(order, i) })
	}
	s.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events out of scheduling order: %v", order)
		}
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim()
	var times []float64
	s.After(1, func() {
		times = append(times, s.Now())
		s.After(1, func() { times = append(times, s.Now()) })
	})
	s.Run(5)
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("times = %v", times)
	}
}

func TestSimHorizonStopsEarly(t *testing.T) {
	s := NewSim()
	ran := false
	s.After(10, func() { ran = true })
	s.Run(5)
	if ran {
		t.Fatal("event past horizon ran")
	}
	if s.Now() != 5 {
		t.Fatalf("now = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Run(20) // resume past the event
	if !ran {
		t.Fatal("event never ran after horizon extension")
	}
}

func TestSimPastSchedulingClamps(t *testing.T) {
	s := NewSim()
	s.After(5, func() {
		s.At(1, func() {
			if s.Now() != 5 {
				t.Errorf("past event ran at %v, want clamped to 5", s.Now())
			}
		})
	})
	s.Run(10)
}

func TestSimNegativeDelayClamps(t *testing.T) {
	s := NewSim()
	ran := false
	s.After(-3, func() { ran = true })
	s.Run(1)
	if !ran {
		t.Fatal("negative-delay event dropped")
	}
}

func TestAvailabilityBounds(t *testing.T) {
	g := TestbedGrADS(1)
	prop := func(hostIdx uint8, tRaw uint16) bool {
		h := g.Hosts[int(hostIdx)%len(g.Hosts)]
		a := g.Availability(h, float64(tRaw))
		return a >= 0.05 && a <= 1.0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAvailabilityDeterministic(t *testing.T) {
	g1 := TestbedGrADS(7)
	g2 := TestbedGrADS(7)
	for _, tt := range []float64{0, 10, 100, 5000} {
		if g1.Availability(g1.Hosts[3], tt) != g2.Availability(g2.Hosts[3], tt) {
			t.Fatal("availability not deterministic in seed")
		}
	}
	g3 := TestbedGrADS(8)
	same := true
	for _, tt := range []float64{0, 31, 61, 91, 121} {
		if g1.Availability(g1.Hosts[3], tt) != g3.Availability(g3.Hosts[3], tt) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical availability traces")
	}
}

func TestDedicatedHostFullyAvailable(t *testing.T) {
	g := &Grid{Seed: 1, Network: DefaultNetwork()}
	h := &Host{ID: 0, BaseAvail: 1, Jitter: 0}
	g.Hosts = append(g.Hosts, h)
	for _, tt := range []float64{0, 100, 10000} {
		if g.Availability(h, tt) != 1 {
			t.Fatal("dedicated host not fully available")
		}
	}
}

func TestFreeMemBounds(t *testing.T) {
	g := TestbedGrADS(3)
	for _, h := range g.Hosts {
		for _, tt := range []float64{0, 61, 500} {
			fm := g.FreeMem(h, tt)
			if fm <= 0 || fm > h.MemBytes {
				t.Fatalf("free mem %d outside (0, %d]", fm, h.MemBytes)
			}
			if fm < h.MemBytes/2 {
				t.Fatalf("free mem %d below half of %d", fm, h.MemBytes)
			}
		}
	}
}

func TestNetworkTransfer(t *testing.T) {
	n := DefaultNetwork()
	a := &Host{ID: 1, Site: "x"}
	b := &Host{ID: 2, Site: "x"}
	c := &Host{ID: 3, Site: "y"}
	if n.Transfer(a, a, 1000) != 0 {
		t.Error("same-host transfer should be free")
	}
	local := n.Transfer(a, b, 1_000_000)
	wan := n.Transfer(a, c, 1_000_000)
	if local >= wan {
		t.Errorf("local %v not faster than wan %v", local, wan)
	}
	small := n.Transfer(a, c, 1000)
	if small >= wan {
		t.Error("transfer time not monotone in size")
	}
	if math.Abs(n.Transfer(a, b, 10_000_000)-(0.001+1.0)) > 1e-9 {
		t.Errorf("local 10MB = %v, want ~1.001", n.Transfer(a, b, 10_000_000))
	}
}

func TestTestbedShapes(t *testing.T) {
	g := TestbedGrADS(1)
	if len(g.Hosts) != 34 {
		t.Fatalf("GrADS testbed has %d hosts, want 34", len(g.Hosts))
	}
	sites := map[string]int{}
	for _, h := range g.Hosts {
		sites[h.Site]++
	}
	if len(sites) != 5 {
		t.Fatalf("site groups = %v, want 5 clusters", sites)
	}
	if g.Hosts[0].Speed != 1.0 {
		t.Fatal("host 0 must be the best (baseline) node")
	}
	if g.HostByID(g.Hosts[5].ID) != g.Hosts[5] {
		t.Fatal("HostByID broken")
	}
	if g.HostByID(-1) != nil {
		t.Fatal("HostByID(-1) should be nil")
	}

	t2 := TestbedTable2(1)
	if len(t2.Hosts) != 27 {
		t.Fatalf("Table-2 testbed has %d hosts, want 27", len(t2.Hosts))
	}
	for _, h := range t2.Hosts {
		if h.Speed < 0.5 {
			t.Fatal("Table-2 testbed should have no slow machines")
		}
	}
}

func TestAddBlueHorizon(t *testing.T) {
	g := TestbedTable2(1)
	nodes := g.AddBlueHorizon(16)
	if len(nodes) != 16 || len(g.Hosts) != 27+16 {
		t.Fatalf("blue horizon sizing wrong: %d/%d", len(nodes), len(g.Hosts))
	}
	ids := map[int]bool{}
	for _, h := range g.Hosts {
		if ids[h.ID] {
			t.Fatalf("duplicate host ID %d", h.ID)
		}
		ids[h.ID] = true
	}
	for _, h := range nodes {
		if !h.Batch {
			t.Fatal("blue horizon node not marked Batch")
		}
		if g.Availability(h, 123) != 1 {
			t.Fatal("allocated batch node should be dedicated")
		}
	}
}

func TestBatchSystemLifecycle(t *testing.T) {
	sim := NewSim()
	g := TestbedTable2(1)
	nodes := g.AddBlueHorizon(8)
	bs := NewBatchSystem(sim, nodes, 1000, 42)

	var started, ended *BatchJob
	job, err := bs.Submit(4, 500, func(j *BatchJob) { started = j }, func(j *BatchJob) { ended = j })
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobQueued {
		t.Fatalf("state = %v", job.State)
	}
	sim.Run(600) // mean wait 1000×[0.6,1.8): earliest possible start at 600
	sim.Run(1800 + 500)
	if started == nil {
		t.Fatal("job never started")
	}
	if len(started.Nodes) != 4 {
		t.Fatalf("allocated %d nodes, want 4", len(started.Nodes))
	}
	if started.StartAt < 600 || started.StartAt > 1800 {
		t.Fatalf("start %v outside queue-wait envelope [600,1800)", started.StartAt)
	}
	sim.Run(started.EndAt + 1)
	if ended == nil || ended.State != JobFinished {
		t.Fatal("job did not finish after walltime")
	}
}

func TestBatchCancelWhileQueued(t *testing.T) {
	sim := NewSim()
	g := TestbedTable2(1)
	nodes := g.AddBlueHorizon(8)
	bs := NewBatchSystem(sim, nodes, 100, 1)
	started := false
	job, err := bs.Submit(2, 100, func(*BatchJob) { started = true }, nil)
	if err != nil {
		t.Fatal(err)
	}
	bs.Cancel(job)
	sim.Run(10_000)
	if started {
		t.Fatal("canceled job started anyway")
	}
	if job.State != JobCanceled {
		t.Fatalf("state = %v", job.State)
	}
}

func TestBatchOversizedRequest(t *testing.T) {
	sim := NewSim()
	g := TestbedTable2(1)
	nodes := g.AddBlueHorizon(4)
	bs := NewBatchSystem(sim, nodes, 100, 1)
	if _, err := bs.Submit(10, 100, nil, nil); err == nil {
		t.Fatal("oversized batch request accepted")
	}
}

func TestBatchQueueWaitDeterministic(t *testing.T) {
	mk := func() float64 {
		sim := NewSim()
		g := TestbedTable2(1)
		bs := NewBatchSystem(sim, g.AddBlueHorizon(4), 1000, 9)
		var start float64
		job, _ := bs.Submit(1, 10, func(j *BatchJob) { start = j.StartAt }, nil)
		_ = job
		sim.Run(10_000)
		return start
	}
	if mk() != mk() {
		t.Fatal("queue wait not deterministic")
	}
}

func TestBatchStateString(t *testing.T) {
	for s, want := range map[BatchJobState]string{
		JobQueued: "queued", JobRunning: "running", JobFinished: "finished", JobCanceled: "canceled",
	} {
		if s.String() != want {
			t.Errorf("%v", s)
		}
	}
	if BatchJobState(9).String() != "unknown" {
		t.Error("unknown state should render")
	}
}

func TestInfoServiceRanking(t *testing.T) {
	g := TestbedGrADS(5)
	is := NewInfoService(g)
	for i := 0; i < 30; i++ {
		is.Observe(float64(i) * 30)
	}
	snap := is.Snapshot()
	if len(snap) != len(g.Hosts) {
		t.Fatalf("snapshot size %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Rank < snap[i].Rank {
			t.Fatal("snapshot not sorted by rank")
		}
	}
	// The slow 128 MB UIUC nodes must rank at the bottom; a best-cluster
	// node should rank in the upper half.
	bottom := snap[len(snap)-1].Host
	if bottom.Site != "uiuc-b" {
		t.Errorf("bottom-ranked host from %s, expected uiuc-b", bottom.Site)
	}
	for i, info := range snap {
		if info.Host.Site == "utk-a" && i > len(snap)/2 {
			t.Errorf("best-cluster host ranked %d of %d", i, len(snap))
		}
	}
}

func TestInfoServiceFallbackWithoutObservations(t *testing.T) {
	g := TestbedGrADS(5)
	is := NewInfoService(g)
	snap := is.Snapshot()
	for _, info := range snap {
		if info.Rank <= 0 {
			t.Fatalf("static fallback rank = %v for %s", info.Rank, info.Host.Name)
		}
		if info.Measurements != 0 {
			t.Fatal("phantom measurements")
		}
	}
}

func TestInfoServiceForecastSingleHost(t *testing.T) {
	g := TestbedGrADS(2)
	is := NewInfoService(g)
	is.Observe(0)
	info := is.Forecast(g.Hosts[2])
	if info.Host.ID != g.Hosts[2].ID {
		t.Fatal("Forecast returned wrong host")
	}
	if info.Measurements != 1 {
		t.Fatalf("measurements = %d", info.Measurements)
	}
}
