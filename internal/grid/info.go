package grid

import (
	"sort"

	"gridsat/internal/nws"
)

// HostInfo is one entry of an information-service snapshot: the static
// attributes plus NWS forecasts the GridSAT master ranks hosts with.
type HostInfo struct {
	Host         *Host
	CPUForecast  float64 // predicted availability fraction
	MemForecast  int64   // predicted free memory in bytes
	Rank         float64
	Measurements int
}

// InfoService simulates the Grid information system (Globus MDS + NWS):
// it periodically samples every host's availability and free memory into
// per-host NWS forecasters and serves ranked snapshots.
type InfoService struct {
	grid      *Grid
	forecasts map[int]*nws.ResourceForecast
}

// NewInfoService creates a service over g with empty forecast history.
func NewInfoService(g *Grid) *InfoService {
	return &InfoService{grid: g, forecasts: map[int]*nws.ResourceForecast{}}
}

// Observe samples every host at virtual time t, feeding the forecasters.
// The DES harness calls this on a fixed monitoring period (NWS sensors
// measured every few tens of seconds).
func (is *InfoService) Observe(t float64) {
	for _, h := range is.grid.Hosts {
		f := is.forecasts[h.ID]
		if f == nil {
			f = nws.NewResourceForecast()
			is.forecasts[h.ID] = f
		}
		f.Observe(is.grid.Availability(h, t), float64(is.grid.FreeMem(h, t)))
	}
}

// Snapshot returns forecasts for all hosts, best rank first. Hosts never
// observed rank by their static attributes alone (the paper's fallback to
// "static information" when NWS data is unavailable).
func (is *InfoService) Snapshot() []HostInfo {
	out := make([]HostInfo, 0, len(is.grid.Hosts))
	for _, h := range is.grid.Hosts {
		info := HostInfo{Host: h}
		if f, ok := is.forecasts[h.ID]; ok && f.CPU.Samples() > 0 {
			info.CPUForecast = f.CPU.Forecast()
			info.MemForecast = int64(f.Memory.Forecast())
			info.Rank = f.Rank(h.Speed)
			info.Measurements = f.CPU.Samples()
		} else {
			info.CPUForecast = h.BaseAvail
			info.MemForecast = h.MemBytes
			info.Rank = h.Speed * h.BaseAvail * float64(h.MemBytes>>20)
		}
		out = append(out, info)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rank > out[j].Rank })
	return out
}

// Forecast returns the current forecast entry for one host.
func (is *InfoService) Forecast(h *Host) HostInfo {
	for _, info := range is.Snapshot() {
		if info.Host.ID == h.ID {
			return info
		}
	}
	return HostInfo{Host: h}
}
