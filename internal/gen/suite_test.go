package gen

import (
	"testing"
	"time"

	"gridsat/internal/solver"
)

func TestSuiteComplete(t *testing.T) {
	suite := Suite()
	if len(suite) != 42 {
		t.Fatalf("suite has %d rows, paper has 42", len(suite))
	}
	sections := map[Section]int{}
	names := map[string]bool{}
	for _, inst := range suite {
		if names[inst.Name] {
			t.Errorf("duplicate row %q", inst.Name)
		}
		names[inst.Name] = true
		sections[inst.Section]++
		if inst.Build == nil {
			t.Errorf("%s: nil Build", inst.Name)
		}
	}
	// Paper: 23 both-solved rows, 10 GridSAT-only, 9 unsolved.
	if sections[SecBothSolved] != 23 {
		t.Errorf("both-solved rows = %d, want 23", sections[SecBothSolved])
	}
	if sections[SecGridSATOnly] != 10 {
		t.Errorf("gridsat-only rows = %d, want 10", sections[SecGridSATOnly])
	}
	if sections[SecUnsolved] != 9 {
		t.Errorf("unsolved rows = %d, want 9", sections[SecUnsolved])
	}
}

func TestSuitePaperOutcomes(t *testing.T) {
	for _, inst := range Suite() {
		switch inst.Section {
		case SecBothSolved:
			if !inst.PaperZChaff.Finished() || !inst.PaperGridSAT.Finished() {
				t.Errorf("%s: both-solved row with unfinished outcome", inst.Name)
			}
		case SecGridSATOnly:
			if inst.PaperZChaff.Finished() {
				t.Errorf("%s: gridsat-only row but zChaff finished", inst.Name)
			}
			if !inst.PaperGridSAT.Finished() {
				t.Errorf("%s: gridsat-only row but GridSAT did not finish", inst.Name)
			}
		case SecUnsolved:
			if inst.PaperZChaff.Finished() || inst.PaperGridSAT.Finished() {
				t.Errorf("%s: unsolved row with finished outcome", inst.Name)
			}
			if !inst.Table2 {
				t.Errorf("%s: unsolved row missing from Table 2", inst.Name)
			}
		}
	}
}

func TestSuiteTable2(t *testing.T) {
	rows := Table2Rows()
	if len(rows) != 9 {
		t.Fatalf("Table 2 has %d rows, paper has 9", len(rows))
	}
	solved := 0
	for _, r := range rows {
		if r.Table2Result > 0 {
			solved++
		}
	}
	if solved != 3 {
		t.Errorf("Table 2 solved rows = %d, paper solved 3 (par32-1-c, rand-net70-25-5, glassybp)", solved)
	}
}

func TestSuiteBuildsAreDeterministic(t *testing.T) {
	for _, inst := range Suite()[:6] {
		a, b := inst.Build(), inst.Build()
		if a.NumVars != b.NumVars || a.NumClauses() != b.NumClauses() {
			t.Fatalf("%s: nondeterministic shape", inst.Name)
		}
		for i := range a.Clauses {
			for j := range a.Clauses[i] {
				if a.Clauses[i][j] != b.Clauses[i][j] {
					t.Fatalf("%s: nondeterministic clause %d", inst.Name, i)
				}
			}
		}
	}
}

func TestSuiteBuildsNonEmpty(t *testing.T) {
	for _, inst := range Suite() {
		f := inst.Build()
		if f.NumVars == 0 || f.NumClauses() == 0 {
			t.Errorf("%s: empty formula", inst.Name)
		}
		if f.NumVars > 100000 || f.NumClauses() > 2000000 {
			t.Errorf("%s: implausibly large stand-in (%d vars, %d clauses)",
				inst.Name, f.NumVars, f.NumClauses())
		}
	}
}

func TestByName(t *testing.T) {
	inst, ok := ByName("6pipe")
	if !ok || inst.Name != "6pipe" {
		t.Fatal("ByName failed for 6pipe")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName found nonexistent row")
	}
}

func TestStatusString(t *testing.T) {
	if StatusSAT.String() != "SAT" || StatusUNSAT.String() != "UNSAT" || StatusUnknown.String() != "UNKNOWN" {
		t.Error("Status.String wrong")
	}
}

func TestPaperOutcomeString(t *testing.T) {
	if PaperTimeOut.String() != "TIME_OUT" {
		t.Errorf("got %q", PaperTimeOut.String())
	}
	if PaperMemOut.String() != "MEM_OUT" {
		t.Errorf("got %q", PaperMemOut.String())
	}
	if PaperOutcome(6322).String() != "6322" {
		t.Errorf("got %q", PaperOutcome(6322).String())
	}
	if PaperOutcome(12.5).String() != "12.5" {
		t.Errorf("got %q", PaperOutcome(12.5).String())
	}
	if PaperOutcome(1.25).String() != "1.25" {
		t.Errorf("got %q", PaperOutcome(1.25).String())
	}
	if PaperTimeOut.Finished() || !PaperOutcome(3).Finished() {
		t.Error("Finished wrong")
	}
}

// TestSuiteSmallRowStatuses solves every stand-in whose paper baseline
// time is under 600 s with the brute-force oracle-checked CDCL engine and
// confirms the expected SAT/UNSAT status. Larger rows are covered by the
// benchmark harness itself.
func TestSuiteSmallRowStatuses(t *testing.T) {
	if testing.Short() {
		t.Skip("solving a dozen instances is not -short material")
	}
	for _, inst := range Suite() {
		if !inst.PaperZChaff.Finished() || inst.PaperZChaff.Seconds() >= 600 {
			continue
		}
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			f := inst.Build()
			s := solver.New(f, solver.DefaultOptions())
			r := s.Solve(solver.Limits{MaxTime: 30 * time.Second})
			if r.Status == solver.StatusUnknown {
				t.Skipf("budget too small for this machine")
			}
			want := solver.StatusUNSAT
			if inst.Expected == StatusSAT {
				want = solver.StatusSAT
			}
			if r.Status != want {
				t.Fatalf("stand-in decides %v, paper row is %v", r.Status, inst.Expected)
			}
			if r.Status == solver.StatusSAT {
				if err := f.Verify(r.Model); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
