package gen

import (
	"fmt"
	"math/rand"

	"gridsat/internal/cnf"
)

// RandomKSAT generates a uniform random k-SAT formula with nVars variables
// and nClauses clauses (no duplicate variables within a clause). At clause
// ratio ~4.26 for k=3 the instances sit at the phase transition, standing in
// for the paper's hand-made/random category.
func RandomKSAT(nVars, nClauses, k int, seed int64) *cnf.Formula {
	if k > nVars {
		panic("gen: RandomKSAT needs k <= nVars")
	}
	rng := rand.New(rand.NewSource(seed))
	f := cnf.NewFormula(nVars)
	f.Comment = fmt.Sprintf("random %d-SAT n=%d m=%d seed=%d", k, nVars, nClauses, seed)
	used := make([]bool, nVars)
	for i := 0; i < nClauses; i++ {
		c := make(cnf.Clause, 0, k)
		var picked []int
		for len(c) < k {
			v := rng.Intn(nVars)
			if used[v] {
				continue
			}
			used[v] = true
			picked = append(picked, v)
			c = append(c, cnf.MkLit(cnf.Var(v), rng.Intn(2) == 1))
		}
		for _, v := range picked {
			used[v] = false
		}
		f.AddClause(c)
	}
	return f
}

// Pigeonhole generates PHP(holes+1, holes): holes+1 pigeons into holes
// holes, one pigeon per hole. Unsatisfiable, and famously hard for
// resolution-based solvers — the paper's hand-made UNSAT stand-in.
func Pigeonhole(holes int) *cnf.Formula {
	pigeons := holes + 1
	v := func(p, h int) int { return p*holes + h + 1 }
	f := cnf.NewFormula(pigeons * holes)
	f.Comment = fmt.Sprintf("pigeonhole PHP(%d,%d) UNSAT", pigeons, holes)
	// Every pigeon sits somewhere.
	for p := 0; p < pigeons; p++ {
		c := make(cnf.Clause, holes)
		for h := 0; h < holes; h++ {
			c[h] = cnf.LitFromDIMACS(v(p, h))
		}
		f.AddClause(c)
	}
	// No two pigeons share a hole.
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.Add(-v(p1, h), -v(p2, h))
			}
		}
	}
	return f
}

// PlantedKSAT generates a guaranteed-satisfiable random k-SAT instance
// that stays hard for CDCL: every clause is drawn uniformly subject to
// being satisfied under BOTH a hidden assignment and its complement
// ("doubly planted"). Ordinary planting is easy for clause-driven
// heuristics because clause polarities leak the hidden assignment; the
// double constraint removes that bias, so difficulty grows like unplanted
// random k-SAT while satisfiability is certain. Used for the suite's
// hard-SAT rows (par32-like), where natural hard-SAT seeds are rare.
func PlantedKSAT(nVars, nClauses, k int, seed int64) *cnf.Formula {
	if k > nVars || k < 2 {
		panic("gen: PlantedKSAT needs 2 <= k <= nVars")
	}
	rng := rand.New(rand.NewSource(seed))
	hidden := make([]bool, nVars)
	for i := range hidden {
		hidden[i] = rng.Intn(2) == 1
	}
	f := cnf.NewFormula(nVars)
	f.Comment = fmt.Sprintf("doubly-planted %d-SAT n=%d m=%d seed=%d", k, nVars, nClauses, seed)
	used := make([]bool, nVars)
	for len(f.Clauses) < nClauses {
		c := make(cnf.Clause, 0, k)
		var picked []int
		for len(c) < k {
			v := rng.Intn(nVars)
			if used[v] {
				continue
			}
			used[v] = true
			picked = append(picked, v)
			c = append(c, cnf.MkLit(cnf.Var(v), rng.Intn(2) == 1))
		}
		for _, v := range picked {
			used[v] = false
		}
		satA, satNotA := false, false
		for _, l := range c {
			if hidden[l.Var()] != l.Neg() { // literal true under the plant
				satA = true
			} else {
				satNotA = true
			}
		}
		if satA && satNotA {
			f.AddClause(c)
		}
	}
	return f
}

// PigeonholeShuffled is Pigeonhole with variables renamed by a seeded
// permutation and clauses shuffled. Same proof complexity, different
// solver trace — used to derive several distinct rows of the benchmark
// suite from the pigeonhole family.
func PigeonholeShuffled(holes int, seed int64) *cnf.Formula {
	base := Pigeonhole(holes)
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(base.NumVars)
	f := cnf.NewFormula(base.NumVars)
	f.Comment = fmt.Sprintf("%s shuffled seed=%d", base.Comment, seed)
	order := rng.Perm(len(base.Clauses))
	for _, ci := range order {
		c := base.Clauses[ci]
		out := make(cnf.Clause, len(c))
		for i, l := range c {
			out[i] = cnf.MkLit(cnf.Var(perm[l.Var()]), l.Neg())
		}
		f.AddClause(out)
	}
	return f
}

// xorClause adds CNF clauses for l1 ^ l2 ^ ... ^ ln = rhs over DIMACS
// literals, by enumerating the 2^(n-1) odd/even sign patterns. Only suitable
// for small n (we use n <= 4).
func xorClauses(f *cnf.Formula, vars []int, rhs bool) {
	n := len(vars)
	if n == 0 {
		if rhs {
			f.AddClause(cnf.Clause{}) // 0 = 1: empty (false) clause
		}
		return
	}
	for mask := 0; mask < 1<<n; mask++ {
		// A clause (with signs = mask) excludes the assignment where every
		// literal is false; that assignment has parity = number of negated
		// vars. Exclude exactly the assignments with parity != rhs.
		neg := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				neg++ // literal appears positive => excluded point has var=false
			}
		}
		parity := (n - neg) % 2 // number of true vars in the excluded point
		want := 0
		if rhs {
			want = 1
		}
		if parity%2 == want {
			continue // excluded point satisfies the XOR; don't exclude it
		}
		c := make(cnf.Clause, n)
		for i, v := range vars {
			c[i] = cnf.LitFromDIMACS(v)
			if mask&(1<<i) != 0 {
				c[i] = cnf.LitFromDIMACS(-v)
			}
		}
		f.AddClause(c)
	}
}

// xorEq is one GF(2) linear equation: XOR of vars (1-based) = rhs.
type xorEq struct {
	vars []int
	rhs  bool
}

// xorConsistent checks by Gaussian elimination over GF(2) whether the
// system has a solution over n variables.
func xorConsistent(n int, eqs []xorEq) bool {
	words := (n + 64) / 64 // last bit column holds the rhs
	rows := make([][]uint64, len(eqs))
	for i, e := range eqs {
		row := make([]uint64, words+1)
		for _, v := range e.vars {
			row[(v-1)/64] ^= 1 << uint((v-1)%64)
		}
		if e.rhs {
			row[words] = 1
		}
		rows[i] = row
	}
	r := 0
	for col := 0; col < n && r < len(rows); col++ {
		w, b := col/64, uint(col%64)
		pivot := -1
		for i := r; i < len(rows); i++ {
			if rows[i][w]&(1<<b) != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[r], rows[pivot] = rows[pivot], rows[r]
		for i := 0; i < len(rows); i++ {
			if i != r && rows[i][w]&(1<<b) != 0 {
				for j := range rows[i] {
					rows[i][j] ^= rows[r][j]
				}
			}
		}
		r++
	}
	// Inconsistent iff some row reduced to 0 = 1.
	for _, row := range rows {
		zero := true
		for j := 0; j < words; j++ {
			if row[j] != 0 {
				zero = false
				break
			}
		}
		if zero && row[words] == 1 {
			return false
		}
	}
	return true
}

// buildXORFormula encodes a checked XOR system as CNF. When consistent is
// false, it flips equation RHS values (verified by Gaussian elimination)
// until the system is inconsistent, so the UNSAT status is guaranteed while
// the contradiction still requires chaining many equations.
func buildXORFormula(n int, eqs []xorEq, consistent bool, comment string) *cnf.Formula {
	if !consistent {
		made := false
		for i := range eqs {
			eqs[i].rhs = !eqs[i].rhs
			if !xorConsistent(n, eqs) {
				made = true
				break
			}
			eqs[i].rhs = !eqs[i].rhs // undo, try next
		}
		if !made {
			// Full row rank: append the XOR of the first two equations with
			// flipped RHS, which is inconsistent by construction.
			mask := map[int]bool{}
			rhs := true // flipped
			for _, e := range eqs[:2] {
				for _, v := range e.vars {
					mask[v] = !mask[v]
				}
				if e.rhs {
					rhs = !rhs
				}
			}
			var vars []int
			for v, on := range mask {
				if on {
					vars = append(vars, v)
				}
			}
			eqs = append(eqs, xorEq{vars: vars, rhs: rhs})
		}
	}
	f := cnf.NewFormula(n)
	f.Comment = comment
	for _, e := range eqs {
		xorClauses(f, e.vars, e.rhs)
	}
	return f
}

// ParityChain builds a chained parity problem in the style of the par32
// family: a backbone of overlapping 3-variable XOR equations over x1..xn
// plus nChains random cross-links. With consistent=true the system has a
// planted solution; with consistent=false a verified RHS flip makes it
// unsatisfiable only through long parity-reasoning chains.
func ParityChain(n, nChains int, consistent bool, seed int64) *cnf.Formula {
	rng := rand.New(rand.NewSource(seed))
	hidden := make([]bool, n+1)
	for i := range hidden {
		hidden[i] = rng.Intn(2) == 1
	}
	plant := func(vars []int) xorEq {
		rhs := false
		for _, v := range vars {
			if hidden[v] {
				rhs = !rhs
			}
		}
		return xorEq{vars: vars, rhs: rhs}
	}
	var eqs []xorEq
	// Backbone chain x_i ^ x_{i+1} ^ x_{i+2}, stepping by 2 so adjacent
	// equations share one variable.
	for i := 1; i+2 <= n; i += 2 {
		eqs = append(eqs, plant([]int{i, i + 1, i + 2}))
	}
	for c := 0; c < nChains; c++ {
		p := rng.Perm(n)[:3]
		eqs = append(eqs, plant([]int{p[0] + 1, p[1] + 1, p[2] + 1}))
	}
	comment := fmt.Sprintf("parity chain n=%d chains=%d sat=%v seed=%d", n, nChains, consistent, seed)
	return buildXORFormula(n, eqs, consistent, comment)
}

// XORSystem generates a random system of m 3-variable XOR equations over n
// variables (Urquhart-style expander). With consistent=true the system has
// a planted solution; otherwise a verified RHS flip makes the instance
// UNSAT via long XOR reasoning chains — hard for CDCL.
func XORSystem(n, m int, consistent bool, seed int64) *cnf.Formula {
	rng := rand.New(rand.NewSource(seed))
	hidden := make([]bool, n+1)
	for i := range hidden {
		hidden[i] = rng.Intn(2) == 1
	}
	eqs := make([]xorEq, 0, m)
	for e := 0; e < m; e++ {
		p := rng.Perm(n)[:3]
		vars := []int{p[0] + 1, p[1] + 1, p[2] + 1}
		rhs := false
		for _, v := range vars {
			if hidden[v] {
				rhs = !rhs
			}
		}
		eqs = append(eqs, xorEq{vars: vars, rhs: rhs})
	}
	comment := fmt.Sprintf("xor system n=%d m=%d sat=%v seed=%d", n, m, consistent, seed)
	return buildXORFormula(n, eqs, consistent, comment)
}

// AdderMiter builds an equivalence-checking miter between a ripple-carry
// adder and a carry-select adder of the given bit width. The two circuits
// are functionally identical, so asserting that some output differs yields
// an UNSAT instance — the industrial (Npipe-like) verification stand-in.
func AdderMiter(width int) *cnf.Formula {
	c := NewCircuit()
	a := c.NewVars(width)
	b := c.NewVars(width)
	s1, c1 := c.RippleAdder(a, b)
	s2, c2 := c.CarrySelectAdder(a, b)
	c.AssertAnyDiff(append(append([]int{}, s1...), c1), append(append([]int{}, s2...), c2))
	f := c.Formula()
	f.Comment = fmt.Sprintf("adder equivalence miter width=%d UNSAT", width)
	return f
}

// AdderMiterBug is AdderMiter with a planted wiring bug (one full adder's
// carry input swapped for a constant), so the miter is satisfiable — the
// Npipe_bug-like stand-in.
func AdderMiterBug(width int) *cnf.Formula {
	if width < 2 {
		panic("gen: AdderMiterBug needs width >= 2")
	}
	c := NewCircuit()
	a := c.NewVars(width)
	b := c.NewVars(width)
	s1, c1 := c.RippleAdder(a, b)
	// Buggy second implementation: drop the carry chain at bit width/2.
	carry := c.ConstFalse()
	s2 := make([]int, width)
	for i := 0; i < width; i++ {
		if i == width/2 {
			carry = c.ConstFalse() // bug: carry chain broken
		}
		s2[i], carry = c.FullAdder(a[i], b[i], carry)
	}
	c.AssertAnyDiff(append(append([]int{}, s1...), c1), append(append([]int{}, s2...), carry))
	f := c.Formula()
	f.Comment = fmt.Sprintf("buggy adder miter width=%d SAT", width)
	return f
}

// Counter builds a bounded-model-checking-style instance for a w-bit
// register incrementing every step: after steps increments starting from 0,
// the counter must equal target. SAT iff target == steps mod 2^w. Mirrors
// the cnt09/cnt10 benchmarks (sequential circuit unrolling).
func Counter(w, steps int, target uint64) *cnf.Formula {
	c := NewCircuit()
	state := make([]int, w)
	zero := c.ConstFalse()
	for i := range state {
		state[i] = zero
	}
	one := c.ConstTrue()
	incr := make([]int, w)
	incr[0] = one
	for i := 1; i < w; i++ {
		incr[i] = zero
	}
	for s := 0; s < steps; s++ {
		state, _ = c.RippleAdder(state, incr)
	}
	for i := 0; i < w; i++ {
		if target&(1<<uint(i)) != 0 {
			c.AddClause(state[i])
		} else {
			c.AddClause(-state[i])
		}
	}
	f := c.Formula()
	f.Comment = fmt.Sprintf("counter w=%d steps=%d target=%d", w, steps, target)
	return f
}

// GraphColoring generates a k-coloring instance for a random graph with
// nNodes nodes and nEdges edges. Dense graphs with small k are UNSAT;
// sparse ones are SAT — the rand_net-like networked stand-in.
func GraphColoring(nNodes, nEdges, k int, seed int64) *cnf.Formula {
	rng := rand.New(rand.NewSource(seed))
	v := func(node, color int) int { return node*k + color + 1 }
	f := cnf.NewFormula(nNodes * k)
	f.Comment = fmt.Sprintf("graph %d-coloring nodes=%d edges=%d seed=%d", k, nNodes, nEdges, seed)
	for n := 0; n < nNodes; n++ {
		c := make(cnf.Clause, k)
		for col := 0; col < k; col++ {
			c[col] = cnf.LitFromDIMACS(v(n, col))
		}
		f.AddClause(c)
		for c1 := 0; c1 < k; c1++ {
			for c2 := c1 + 1; c2 < k; c2++ {
				f.Add(-v(n, c1), -v(n, c2))
			}
		}
	}
	seen := map[[2]int]bool{}
	for e := 0; e < nEdges; {
		a, b := rng.Intn(nNodes), rng.Intn(nNodes)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		for col := 0; col < k; col++ {
			f.Add(-v(a, col), -v(b, col))
		}
		e++
	}
	return f
}

// Hanoi builds a planning-style chained-implication instance loosely
// modeling a sequential puzzle: a sequence of moves (one-hot per step) must
// transform an initial state into a goal state under frame axioms. The size
// grows with steps; SAT iff steps >= minMoves. It stands in for the
// hanoi5/hanoi6 family (long, SAT, sequential structure).
//
// The "puzzle" is a token walking a line of cells 0..cells-1, one move per
// step, must reach the last cell. minMoves = cells-1.
func Hanoi(cells, steps int) *cnf.Formula {
	// at(t, c): token at cell c at time t.
	at := func(t, c int) int { return t*cells + c + 1 }
	f := cnf.NewFormula((steps + 1) * cells)
	f.Comment = fmt.Sprintf("hanoi-like walk cells=%d steps=%d", cells, steps)
	// Initial and goal states.
	f.Add(at(0, 0))
	for c := 1; c < cells; c++ {
		f.Add(-at(0, c))
	}
	f.Add(at(steps, cells-1))
	for t := 0; t <= steps; t++ {
		// Exactly one position per time step.
		c := make(cnf.Clause, cells)
		for p := 0; p < cells; p++ {
			c[p] = cnf.LitFromDIMACS(at(t, p))
		}
		f.AddClause(c)
		for p1 := 0; p1 < cells; p1++ {
			for p2 := p1 + 1; p2 < cells; p2++ {
				f.Add(-at(t, p1), -at(t, p2))
			}
		}
	}
	// Transition: from cell p you may stay or move to p±1.
	for t := 0; t < steps; t++ {
		for p := 0; p < cells; p++ {
			c := cnf.Clause{cnf.LitFromDIMACS(-at(t, p)), cnf.LitFromDIMACS(at(t+1, p))}
			if p > 0 {
				c = append(c, cnf.LitFromDIMACS(at(t+1, p-1)))
			}
			if p < cells-1 {
				c = append(c, cnf.LitFromDIMACS(at(t+1, p+1)))
			}
			f.AddClause(c)
		}
	}
	return f
}

// FactoringLike builds a multiplication circuit a*b = product for w-bit
// operands and asserts the product equals the given value, with a and b
// constrained to be > 1 (nontrivial factors). SAT iff value has a
// factorization into two w-bit factors > 1. Stands in for the
// ezfact/pyhala-braun factoring benchmarks.
func FactoringLike(w int, value uint64) *cnf.Formula {
	c := NewCircuit()
	a := c.NewVars(w)
	b := c.NewVars(w)
	prod := c.multiply(a, b)
	for i := 0; i < len(prod); i++ {
		bit := value&(1<<uint(i)) != 0
		if bit {
			c.AddClause(prod[i])
		} else {
			c.AddClause(-prod[i])
		}
	}
	// Nontrivial factors: a >= 2 and b >= 2 (some bit above bit 0 is set).
	c.AddClause(a[1:]...)
	c.AddClause(b[1:]...)
	f := c.Formula()
	f.Comment = fmt.Sprintf("factoring-like w=%d value=%d", w, value)
	return f
}

// multiply returns the 2w-bit product of two w-bit vectors via shift-and-add.
func (c *Circuit) multiply(a, b []int) []int {
	w := len(a)
	zero := c.ConstFalse()
	acc := make([]int, 2*w)
	for i := range acc {
		acc[i] = zero
	}
	for i := 0; i < w; i++ {
		// partial = (b & a[i]) << i, width 2w
		part := make([]int, 2*w)
		for j := range part {
			part[j] = zero
		}
		for j := 0; j < w; j++ {
			part[i+j] = c.And(a[i], b[j])
		}
		acc, _ = c.RippleAdder(acc, part)
	}
	return acc
}

// LatinSquare generates a Latin-square completion instance (the quasigroup
// family behind the suite's qg2-8 row): an n×n grid where every row and
// column contains each symbol exactly once, with `prefill` seeded fixed
// cells. Low prefill counts are satisfiable; contradictory prefills are
// rejected by regeneration, so instances are SAT by construction unless
// over-constrained by a large prefill.
func LatinSquare(n, prefill int, seed int64) *cnf.Formula {
	rng := rand.New(rand.NewSource(seed))
	v := func(r, c, k int) int { return (r*n+c)*n + k + 1 }
	f := cnf.NewFormula(n * n * n)
	f.Comment = fmt.Sprintf("latin square n=%d prefill=%d seed=%d", n, prefill, seed)
	atLeastOne := func(lits []int) {
		c := make(cnf.Clause, len(lits))
		for i, l := range lits {
			c[i] = cnf.LitFromDIMACS(l)
		}
		f.AddClause(c)
	}
	atMostOne := func(lits []int) {
		for i := 0; i < len(lits); i++ {
			for j := i + 1; j < len(lits); j++ {
				f.Add(-lits[i], -lits[j])
			}
		}
	}
	collect := func(fill func(i int) int) []int {
		out := make([]int, n)
		for i := 0; i < n; i++ {
			out[i] = fill(i)
		}
		return out
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			cell := collect(func(k int) int { return v(r, c, k) })
			atLeastOne(cell) // every cell holds a symbol
			atMostOne(cell)  // at most one symbol per cell
		}
	}
	for k := 0; k < n; k++ {
		for r := 0; r < n; r++ {
			row := collect(func(c int) int { return v(r, c, k) })
			atLeastOne(row)
			atMostOne(row) // symbol k exactly once per row
		}
		for c := 0; c < n; c++ {
			col := collect(func(r int) int { return v(r, c, k) })
			atLeastOne(col)
			atMostOne(col) // and exactly once per column
		}
	}
	// Prefill distinct cells from a hidden valid square (r+c mod n), so the
	// constraints stay satisfiable.
	cells := rng.Perm(n * n)
	if prefill > len(cells) {
		prefill = len(cells)
	}
	for _, cell := range cells[:prefill] {
		r, c := cell/n, cell%n
		f.Add(v(r, c, (r+c)%n))
	}
	return f
}
