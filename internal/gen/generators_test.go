package gen

import (
	"testing"

	"gridsat/internal/brute"
	"gridsat/internal/cnf"
)

func mustStatus(t *testing.T, f *cnf.Formula, want brute.Result) {
	t.Helper()
	r, m := brute.Solve(f, 0)
	if r != want {
		t.Fatalf("%s: got %v, want %v", f.Comment, r, want)
	}
	if r == brute.SAT {
		if err := f.Verify(m); err != nil {
			t.Fatalf("%s: bad model: %v", f.Comment, err)
		}
	}
}

func TestRandomKSATShape(t *testing.T) {
	f := RandomKSAT(20, 40, 3, 1)
	if f.NumVars != 20 || f.NumClauses() != 40 {
		t.Fatalf("shape %d/%d", f.NumVars, f.NumClauses())
	}
	for _, c := range f.Clauses {
		if len(c) != 3 {
			t.Fatalf("clause length %d", len(c))
		}
		seen := map[cnf.Var]bool{}
		for _, l := range c {
			if seen[l.Var()] {
				t.Fatalf("duplicate variable in clause %v", c)
			}
			seen[l.Var()] = true
		}
	}
}

func TestRandomKSATDeterministic(t *testing.T) {
	a, b := RandomKSAT(15, 30, 3, 9), RandomKSAT(15, 30, 3, 9)
	for i := range a.Clauses {
		for j := range a.Clauses[i] {
			if a.Clauses[i][j] != b.Clauses[i][j] {
				t.Fatal("same seed produced different formulas")
			}
		}
	}
	c := RandomKSAT(15, 30, 3, 10)
	same := true
	for i := range a.Clauses {
		for j := range a.Clauses[i] {
			if a.Clauses[i][j] != c.Clauses[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical formulas")
	}
}

func TestRandomKSATPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k > nVars accepted")
		}
	}()
	RandomKSAT(2, 5, 3, 0)
}

func TestPigeonholeUNSAT(t *testing.T) {
	for holes := 2; holes <= 5; holes++ {
		mustStatus(t, Pigeonhole(holes), brute.UNSAT)
	}
}

func TestPigeonholeShape(t *testing.T) {
	f := Pigeonhole(3)
	// 4 pigeons-somewhere clauses + per-hole C(4,2)=6 exclusions * 3 holes.
	if f.NumClauses() != 4+18 {
		t.Fatalf("clauses = %d", f.NumClauses())
	}
	if f.NumVars != 12 {
		t.Fatalf("vars = %d", f.NumVars)
	}
}

func TestParityChainStatus(t *testing.T) {
	mustStatus(t, ParityChain(10, 6, true, 3), brute.SAT)
	mustStatus(t, ParityChain(10, 6, false, 3), brute.UNSAT)
}

func TestXORSystemStatus(t *testing.T) {
	mustStatus(t, XORSystem(12, 12, true, 5), brute.SAT)
	// A single flipped equation makes the planted solution infeasible but
	// the system may still have other solutions when underdetermined; use
	// an overdetermined system to force UNSAT.
	mustStatus(t, XORSystem(10, 30, false, 5), brute.UNSAT)
}

func TestXORClausesSemantics(t *testing.T) {
	// x1 ^ x2 = true has exactly 2 models over 2 vars.
	f := cnf.NewFormula(2)
	xorClauses(f, []int{1, 2}, true)
	if n := brute.CountModels(f); n != 2 {
		t.Fatalf("x1^x2=1 has %d models, want 2", n)
	}
	g := cnf.NewFormula(2)
	xorClauses(g, []int{1, 2}, false)
	if n := brute.CountModels(g); n != 2 {
		t.Fatalf("x1^x2=0 has %d models, want 2", n)
	}
	// Triple xor = true: 4 of 8 assignments.
	h := cnf.NewFormula(3)
	xorClauses(h, []int{1, 2, 3}, true)
	if n := brute.CountModels(h); n != 4 {
		t.Fatalf("x1^x2^x3=1 has %d models, want 4", n)
	}
	// Empty inconsistent XOR adds the empty clause.
	e := cnf.NewFormula(0)
	xorClauses(e, nil, true)
	if len(e.Clauses) != 1 || len(e.Clauses[0]) != 0 {
		t.Fatal("0=1 should add the empty clause")
	}
	e2 := cnf.NewFormula(0)
	xorClauses(e2, nil, false)
	if len(e2.Clauses) != 0 {
		t.Fatal("0=0 should add nothing")
	}
}

func TestAdderMiterUNSAT(t *testing.T) {
	for w := 1; w <= 3; w++ {
		mustStatus(t, AdderMiter(w), brute.UNSAT)
	}
}

func TestAdderMiterBugSAT(t *testing.T) {
	mustStatus(t, AdderMiterBug(3), brute.SAT)
	mustStatus(t, AdderMiterBug(4), brute.SAT)
}

func TestAdderMiterBugPanicsOnWidth1(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width 1 accepted")
		}
	}()
	AdderMiterBug(1)
}

func TestCounter(t *testing.T) {
	// 3-bit counter stepped 5 times must equal 5.
	mustStatus(t, Counter(3, 5, 5), brute.SAT)
	mustStatus(t, Counter(3, 5, 6), brute.UNSAT)
	// Wraparound: 3 bits, 9 steps => 1.
	mustStatus(t, Counter(3, 9, 1), brute.SAT)
	mustStatus(t, Counter(3, 9, 9%7), brute.UNSAT) // 2 != 1
}

func TestGraphColoringStatus(t *testing.T) {
	// Triangle is 3-colorable but not 2-colorable. Build via dense random:
	// nodes=3, edges=3 gives the triangle.
	mustStatus(t, GraphColoring(3, 3, 3, 1), brute.SAT)
	mustStatus(t, GraphColoring(3, 3, 2, 1), brute.UNSAT)
}

func TestGraphColoringShape(t *testing.T) {
	f := GraphColoring(5, 4, 3, 2)
	if f.NumVars != 15 {
		t.Fatalf("vars = %d", f.NumVars)
	}
	// 5 at-least-one + 5*3 at-most-one + 4*3 edge constraints.
	if f.NumClauses() != 5+15+12 {
		t.Fatalf("clauses = %d", f.NumClauses())
	}
}

func TestHanoi(t *testing.T) {
	// 4 cells: needs >= 3 steps.
	mustStatus(t, Hanoi(4, 3), brute.SAT)
	mustStatus(t, Hanoi(4, 2), brute.UNSAT)
	mustStatus(t, Hanoi(4, 5), brute.SAT)
}

func TestFactoringLike(t *testing.T) {
	// 15 = 3*5 factors with 3-bit operands.
	mustStatus(t, FactoringLike(3, 15), brute.SAT)
	// 7 is prime: no nontrivial factorization.
	mustStatus(t, FactoringLike(3, 7), brute.UNSAT)
}

func TestCircuitGates(t *testing.T) {
	cases := []struct {
		name  string
		build func(c *Circuit, a, b int) int
		truth [4]bool // f(00),f(01),f(10),f(11) with (a,b) bits
	}{
		{"and", func(c *Circuit, a, b int) int { return c.And(a, b) }, [4]bool{false, false, false, true}},
		{"or", func(c *Circuit, a, b int) int { return c.Or(a, b) }, [4]bool{false, true, true, true}},
		{"xor", func(c *Circuit, a, b int) int { return c.Xor(a, b) }, [4]bool{false, true, true, false}},
	}
	for _, tc := range cases {
		for input := 0; input < 4; input++ {
			c := NewCircuit()
			a, b := c.NewVar(), c.NewVar()
			o := tc.build(c, a, b)
			av, bv := input&2 != 0, input&1 != 0
			if av {
				c.AddClause(a)
			} else {
				c.AddClause(-a)
			}
			if bv {
				c.AddClause(b)
			} else {
				c.AddClause(-b)
			}
			want := tc.truth[input]
			if want {
				c.AddClause(o)
			} else {
				c.AddClause(-o)
			}
			r, _ := brute.Solve(c.Formula(), 0)
			if r != brute.SAT {
				t.Errorf("%s(%v,%v) != %v per circuit", tc.name, av, bv, want)
			}
			// The complementary output value must be UNSAT.
			c2 := NewCircuit()
			a2, b2 := c2.NewVar(), c2.NewVar()
			o2 := tc.build(c2, a2, b2)
			if av {
				c2.AddClause(a2)
			} else {
				c2.AddClause(-a2)
			}
			if bv {
				c2.AddClause(b2)
			} else {
				c2.AddClause(-b2)
			}
			if want {
				c2.AddClause(-o2)
			} else {
				c2.AddClause(o2)
			}
			if r, _ := brute.Solve(c2.Formula(), 0); r != brute.UNSAT {
				t.Errorf("%s(%v,%v) complement satisfiable", tc.name, av, bv)
			}
		}
	}
}

func TestCircuitMux(t *testing.T) {
	for input := 0; input < 8; input++ {
		c := NewCircuit()
		sel, lo, hi := c.NewVar(), c.NewVar(), c.NewVar()
		o := c.Mux(sel, lo, hi)
		sv, lv, hv := input&4 != 0, input&2 != 0, input&1 != 0
		fix := func(v int, val bool) {
			if val {
				c.AddClause(v)
			} else {
				c.AddClause(-v)
			}
		}
		fix(sel, sv)
		fix(lo, lv)
		fix(hi, hv)
		want := lv
		if sv {
			want = hv
		}
		fix(o, want)
		if r, _ := brute.Solve(c.Formula(), 0); r != brute.SAT {
			t.Errorf("mux(%v,%v,%v) != %v", sv, lv, hv, want)
		}
	}
}

func TestRippleVsCarrySelectAgree(t *testing.T) {
	// For every 3-bit input pair, both adders produce the same sum.
	for av := 0; av < 8; av++ {
		for bv := 0; bv < 8; bv++ {
			c := NewCircuit()
			a, b := c.NewVars(3), c.NewVars(3)
			s1, c1 := c.RippleAdder(a, b)
			s2, c2 := c.CarrySelectAdder(a, b)
			for i := 0; i < 3; i++ {
				if av&(1<<i) != 0 {
					c.AddClause(a[i])
				} else {
					c.AddClause(-a[i])
				}
				if bv&(1<<i) != 0 {
					c.AddClause(b[i])
				} else {
					c.AddClause(-b[i])
				}
			}
			c.AssertEqual(c1, c2)
			for i := 0; i < 3; i++ {
				c.AssertEqual(s1[i], s2[i])
			}
			r, m := brute.Solve(c.Formula(), 0)
			if r != brute.SAT {
				t.Fatalf("adders disagree on %d+%d", av, bv)
			}
			// Check the sum value is actually av+bv.
			got := 0
			for i, v := range s1 {
				if m.Value(cnf.VarFromDIMACS(v)) == cnf.True {
					got |= 1 << i
				}
			}
			carry := 0
			if m.Value(cnf.VarFromDIMACS(c1)) == cnf.True {
				carry = 8
			}
			if got+carry != av+bv {
				t.Fatalf("%d+%d computed as %d", av, bv, got+carry)
			}
		}
	}
}

func TestMultiply(t *testing.T) {
	for av := 0; av < 8; av++ {
		for bv := 0; bv < 8; bv++ {
			c := NewCircuit()
			a, b := c.NewVars(3), c.NewVars(3)
			prod := c.multiply(a, b)
			for i := 0; i < 3; i++ {
				if av&(1<<i) != 0 {
					c.AddClause(a[i])
				} else {
					c.AddClause(-a[i])
				}
				if bv&(1<<i) != 0 {
					c.AddClause(b[i])
				} else {
					c.AddClause(-b[i])
				}
			}
			r, m := brute.Solve(c.Formula(), 0)
			if r != brute.SAT {
				t.Fatalf("multiplier inconsistent on %d*%d", av, bv)
			}
			got := 0
			for i, v := range prod {
				if m.Value(cnf.VarFromDIMACS(v)) == cnf.True {
					got |= 1 << i
				}
			}
			if got != av*bv {
				t.Fatalf("%d*%d computed as %d", av, bv, got)
			}
		}
	}
}

func TestPlantedKSATAlwaysSAT(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		f := PlantedKSAT(12, 60, 3, seed) // well past the UNSAT threshold
		mustStatus(t, f, brute.SAT)
	}
}

func TestPlantedKSATShape(t *testing.T) {
	f := PlantedKSAT(20, 50, 3, 1)
	if f.NumVars != 20 || f.NumClauses() != 50 {
		t.Fatalf("shape %d/%d", f.NumVars, f.NumClauses())
	}
	for _, c := range f.Clauses {
		if len(c) != 3 {
			t.Fatalf("clause length %d", len(c))
		}
	}
}

func TestPlantedKSATDeterministic(t *testing.T) {
	a, b := PlantedKSAT(15, 40, 3, 4), PlantedKSAT(15, 40, 3, 4)
	for i := range a.Clauses {
		for j := range a.Clauses[i] {
			if a.Clauses[i][j] != b.Clauses[i][j] {
				t.Fatal("same seed differs")
			}
		}
	}
}

func TestPlantedKSATPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad k accepted")
		}
	}()
	PlantedKSAT(3, 5, 5, 0)
}

func TestPigeonholeShuffledUNSATAndDistinct(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		f := PigeonholeShuffled(4, seed)
		mustStatus(t, f, brute.UNSAT)
		base := Pigeonhole(4)
		if f.NumVars != base.NumVars || f.NumClauses() != base.NumClauses() {
			t.Fatal("shuffle changed the shape")
		}
	}
	a, b := PigeonholeShuffled(4, 1), PigeonholeShuffled(4, 2)
	same := true
	for i := range a.Clauses {
		if a.Clauses[i].Key() != b.Clauses[i].Key() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different shuffle seeds produced identical formulas")
	}
}

func TestLatinSquare(t *testing.T) {
	// 3x3 with a few prefilled cells is satisfiable.
	mustStatus(t, LatinSquare(3, 3, 1), brute.SAT)
	// Full prefill pins the hidden square exactly: still satisfiable.
	mustStatus(t, LatinSquare(3, 9, 2), brute.SAT)
	f := LatinSquare(4, 0, 1)
	if f.NumVars != 64 {
		t.Fatalf("vars = %d", f.NumVars)
	}
	r, m := brute.Solve(f, 0)
	if r != brute.SAT {
		t.Fatalf("empty 4x4 completion: %v", r)
	}
	// Check the model really is a Latin square.
	val := func(row, col int) int {
		for k := 0; k < 4; k++ {
			if m.Value(cnf.VarFromDIMACS((row*4+col)*4+k+1)) == cnf.True {
				return k
			}
		}
		return -1
	}
	for i := 0; i < 4; i++ {
		rowSeen, colSeen := map[int]bool{}, map[int]bool{}
		for j := 0; j < 4; j++ {
			rv, cv := val(i, j), val(j, i)
			if rv < 0 || cv < 0 || rowSeen[rv] || colSeen[cv] {
				t.Fatalf("model is not a latin square at %d,%d", i, j)
			}
			rowSeen[rv], colSeen[cv] = true, true
		}
	}
}
