// Package gen produces deterministic synthetic SAT instances standing in for
// the SAT2002 competition benchmarks used in the GridSAT paper (which are
// not redistributable and not available offline). Each family mirrors a
// structural class from the paper's suite: industrial circuit miters
// (Npipe-like), counters (cntN-like), parity problems (par32-like), random
// networks (rand_net-like), pigeonhole/Urquhart hand-made problems, and
// random k-SAT. All generators are pure functions of their parameters and a
// seed, so every run of the benchmark harness sees identical formulas.
package gen

import "gridsat/internal/cnf"

// Circuit is a small Tseitin-encoding builder used by the circuit-flavored
// generators (adders, miters, counters). Every gate allocates a fresh
// variable and emits the standard CNF gate-consistency clauses.
type Circuit struct {
	f    *cnf.Formula
	next int // next fresh DIMACS variable number
}

// NewCircuit returns an empty circuit builder.
func NewCircuit() *Circuit {
	return &Circuit{f: cnf.NewFormula(0), next: 1}
}

// NewVar allocates a fresh input variable and returns its DIMACS number.
func (c *Circuit) NewVar() int {
	v := c.next
	c.next++
	if v > c.f.NumVars {
		c.f.NumVars = v
	}
	return v
}

// NewVars allocates n fresh variables.
func (c *Circuit) NewVars(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = c.NewVar()
	}
	return out
}

// AddClause appends a raw clause of DIMACS literals.
func (c *Circuit) AddClause(lits ...int) { c.f.Add(lits...) }

// And returns a variable constrained to a AND b.
func (c *Circuit) And(a, b int) int {
	o := c.NewVar()
	c.f.Add(-a, -b, o)
	c.f.Add(a, -o)
	c.f.Add(b, -o)
	return o
}

// Or returns a variable constrained to a OR b.
func (c *Circuit) Or(a, b int) int {
	o := c.NewVar()
	c.f.Add(a, b, -o)
	c.f.Add(-a, o)
	c.f.Add(-b, o)
	return o
}

// Xor returns a variable constrained to a XOR b.
func (c *Circuit) Xor(a, b int) int {
	o := c.NewVar()
	c.f.Add(-a, -b, -o)
	c.f.Add(a, b, -o)
	c.f.Add(a, -b, o)
	c.f.Add(-a, b, o)
	return o
}

// Not returns the DIMACS literal for NOT a (no new variable needed).
func (c *Circuit) Not(a int) int { return -a }

// Maj returns a variable constrained to the majority of a, b, cc
// (the carry function of a full adder).
func (c *Circuit) Maj(a, b, cc int) int {
	o := c.NewVar()
	// o is true iff at least two of a,b,cc are true.
	c.f.Add(-a, -b, o)
	c.f.Add(-a, -cc, o)
	c.f.Add(-b, -cc, o)
	c.f.Add(a, b, -o)
	c.f.Add(a, cc, -o)
	c.f.Add(b, cc, -o)
	return o
}

// FullAdder returns (sum, carry) variables for inputs a, b, cin.
func (c *Circuit) FullAdder(a, b, cin int) (sum, carry int) {
	sum = c.Xor(c.Xor(a, b), cin)
	carry = c.Maj(a, b, cin)
	return sum, carry
}

// RippleAdder adds two equal-width bit vectors (LSB first) and returns the
// sum bits plus the final carry-out.
func (c *Circuit) RippleAdder(a, b []int) (sum []int, carry int) {
	if len(a) != len(b) {
		panic("gen: RippleAdder operand widths differ")
	}
	carry = c.ConstFalse()
	sum = make([]int, len(a))
	for i := range a {
		sum[i], carry = c.FullAdder(a[i], b[i], carry)
	}
	return sum, carry
}

// CarrySelectAdder adds a and b using a different gate structure from
// RippleAdder (per-bit speculative carry computed both ways, then selected).
// Functionally identical to RippleAdder; used to build equivalence miters.
func (c *Circuit) CarrySelectAdder(a, b []int) (sum []int, carry int) {
	if len(a) != len(b) {
		panic("gen: CarrySelectAdder operand widths differ")
	}
	carry = c.ConstFalse()
	sum = make([]int, len(a))
	for i := range a {
		// Speculative sums for carry-in 0 and 1.
		s0 := c.Xor(a[i], b[i])
		s1 := c.Not(s0)
		c0 := c.And(a[i], b[i])
		c1 := c.Or(a[i], b[i])
		sum[i] = c.Mux(carry, s0, s1)
		carry = c.Mux(carry, c0, c1)
	}
	return sum, carry
}

// Mux returns a variable constrained to (sel ? hi : lo).
func (c *Circuit) Mux(sel, lo, hi int) int {
	o := c.NewVar()
	c.f.Add(sel, -lo, o)
	c.f.Add(sel, lo, -o)
	c.f.Add(-sel, -hi, o)
	c.f.Add(-sel, hi, -o)
	return o
}

// ConstFalse returns a variable constrained to false.
func (c *Circuit) ConstFalse() int {
	v := c.NewVar()
	c.f.Add(-v)
	return v
}

// ConstTrue returns a variable constrained to true.
func (c *Circuit) ConstTrue() int {
	v := c.NewVar()
	c.f.Add(v)
	return v
}

// AssertEqual constrains a == b.
func (c *Circuit) AssertEqual(a, b int) {
	c.f.Add(-a, b)
	c.f.Add(a, -b)
}

// AssertAnyDiff constrains at least one pair (a[i], b[i]) to differ —
// the miter output of an equivalence-checking problem.
func (c *Circuit) AssertAnyDiff(a, b []int) {
	if len(a) != len(b) {
		panic("gen: AssertAnyDiff operand widths differ")
	}
	diff := make([]int, len(a))
	for i := range a {
		diff[i] = c.Xor(a[i], b[i])
	}
	c.f.AddClause(litsOf(diff))
}

// Formula finalizes and returns the built formula.
func (c *Circuit) Formula() *cnf.Formula { return c.f }

func litsOf(vars []int) cnf.Clause {
	out := make(cnf.Clause, len(vars))
	for i, v := range vars {
		out[i] = cnf.LitFromDIMACS(v)
	}
	return out
}
