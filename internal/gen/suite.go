package gen

import (
	"strconv"

	"gridsat/internal/cnf"
)

// Status is the expected satisfiability status of a benchmark instance.
type Status int

// Expected instance statuses. StatusUnknown marks rows that were open
// problems in the paper (annotated "*" in Tables 1 and 2).
const (
	StatusUnknown Status = iota
	StatusSAT
	StatusUNSAT
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusSAT:
		return "SAT"
	case StatusUNSAT:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// PaperOutcome encodes how a solver fared on a row in the paper's tables.
type PaperOutcome float64

// Sentinel outcomes for rows the paper's zChaff run could not finish.
const (
	PaperTimeOut PaperOutcome = -1 // "TIME_OUT" in Table 1
	PaperMemOut  PaperOutcome = -2 // "MEM_OUT" in Table 1
)

// Seconds returns the outcome as seconds, valid only when Finished.
func (o PaperOutcome) Seconds() float64 { return float64(o) }

// Finished reports whether the outcome is a completed-run time.
func (o PaperOutcome) Finished() bool { return o >= 0 }

// String renders the outcome the way the paper's tables do.
func (o PaperOutcome) String() string {
	switch o {
	case PaperTimeOut:
		return "TIME_OUT"
	case PaperMemOut:
		return "MEM_OUT"
	default:
		return fmtSeconds(float64(o))
	}
}

// Section identifies which part of Table 1 a row belongs to.
type Section int

// Table-1 sections, in the paper's order.
const (
	SecBothSolved  Section = iota // solved by both zChaff and GridSAT
	SecGridSATOnly                // solved by GridSAT only
	SecUnsolved                   // solved by neither (re-attempted in Table 2)
)

// Instance is one row of the reproduced benchmark suite: the paper's
// instance, its published results, and the synthetic stand-in formula.
type Instance struct {
	// Name is the paper's instance file name (without ".cnf").
	Name string
	// Expected satisfiability status per the paper.
	Expected Status
	// Section of Table 1 the row appears in.
	Section Section
	// PaperZChaff and PaperGridSAT are the published times/outcomes.
	PaperZChaff  PaperOutcome
	PaperGridSAT PaperOutcome
	// PaperMaxClients is the published "Max # of clients" column.
	PaperMaxClients int
	// Challenge marks rows from the SAT2002 "challenging" category, which
	// the paper ran with the doubled 12000 s overall timeout.
	Challenge bool
	// Table2 marks rows re-run in Table 2 (testbed + Blue Horizon);
	// Table2Solved gives the paper's Table-2 result in seconds, 0 for "X"
	// (still unsolved) — par32-1-c's "33hrs+(8hrs on BH)" is stored as the
	// summed seconds.
	Table2       bool
	Table2Result float64
	// Build generates the synthetic stand-in formula. Deterministic.
	Build func() *cnf.Formula
}

// Suite returns the reproduced SAT2002 rows, in the paper's Table-1 order.
// The synthetic stand-ins preserve each row's expected status and its
// difficulty class (tiny / medium / large / beyond-sequential), which is
// what the evaluation's shape depends on.
//
// Difficulty classes (sequential CDCL on one simulated host):
//   - rows the paper solves in <300 s        → "tiny" stand-ins
//   - rows in the 10³–10⁴ s range            → "medium"/"large" stand-ins
//   - zChaff TIME_OUT/MEM_OUT rows           → stand-ins exceeding the
//     scaled sequential budget but solvable by the distributed run
//   - rows neither solves                    → stand-ins exceeding both
//     (except the Table-2 reattempts)
func Suite() []Instance {
	return []Instance{
		// ---- Section 1: solved by both zChaff and GridSAT ----
		// Each stand-in was calibrated so the sequential baseline lands
		// near the paper's zChaff column at the 1:10 time scale
		// (1 virtual second = 1000 propagations on the dedicated host).
		{Name: "6pipe", Expected: StatusUNSAT, Section: SecBothSolved, PaperZChaff: 6322, PaperGridSAT: 4877, PaperMaxClients: 34,
			Build: func() *cnf.Formula { return r3u(195, 2) }},
		{Name: "avg-checker-5-34", Expected: StatusUNSAT, Section: SecBothSolved, PaperZChaff: 1222, PaperGridSAT: 1107, PaperMaxClients: 9,
			Build: func() *cnf.Formula { return r3u(160, 3) }},
		{Name: "bart15", Expected: StatusSAT, Section: SecBothSolved, PaperZChaff: 5507, PaperGridSAT: 673, PaperMaxClients: 34,
			Build: func() *cnf.Formula { return r3u(210, 3) }},
		{Name: "cache_05", Expected: StatusSAT, Section: SecBothSolved, PaperZChaff: 1730, PaperGridSAT: 1565, PaperMaxClients: 34,
			Build: func() *cnf.Formula { return plantHard(200, 4.5, 1) }},
		{Name: "cnt09", Expected: StatusSAT, Section: SecBothSolved, PaperZChaff: 3651, PaperGridSAT: 1610, PaperMaxClients: 12,
			Build: func() *cnf.Formula { return plantHard(220, 4.5, 1) }},
		{Name: "dp12s12", Expected: StatusSAT, Section: SecBothSolved, PaperZChaff: 10587, PaperGridSAT: 532, PaperMaxClients: 8,
			Build: func() *cnf.Formula { return plantHard(260, 4.8, 1) }},
		{Name: "homer11", Expected: StatusUNSAT, Section: SecBothSolved, PaperZChaff: 2545, PaperGridSAT: 1794, PaperMaxClients: 10,
			Build: func() *cnf.Formula { return r3u(170, 4) }},
		{Name: "homer12", Expected: StatusUNSAT, Section: SecBothSolved, PaperZChaff: 14250, PaperGridSAT: 4400, PaperMaxClients: 33,
			Build: func() *cnf.Formula { return r3u(195, 1) }},
		{Name: "ip38", Expected: StatusUNSAT, Section: SecBothSolved, PaperZChaff: 4794, PaperGridSAT: 1278, PaperMaxClients: 11,
			Build: func() *cnf.Formula { return r3u(185, 2) }},
		{Name: "rand_net50-60-5", Expected: StatusUNSAT, Section: SecBothSolved, PaperZChaff: 16242, PaperGridSAT: 1725, PaperMaxClients: 20,
			Build: func() *cnf.Formula { return r3u(205, 1) }},
		{Name: "vda_gr_rcs_w8", Expected: StatusSAT, Section: SecBothSolved, PaperZChaff: 1427, PaperGridSAT: 681, PaperMaxClients: 15,
			Build: func() *cnf.Formula { return r3u(170, 5) }},
		{Name: "w08_14", Expected: StatusSAT, Section: SecBothSolved, PaperZChaff: 14449, PaperGridSAT: 1906, PaperMaxClients: 34,
			Build: func() *cnf.Formula { return plantHard(280, 4.5, 6) }},
		{Name: "w10_75", Expected: StatusSAT, Section: SecBothSolved, PaperZChaff: 506, PaperGridSAT: 252, PaperMaxClients: 2,
			Build: func() *cnf.Formula { return r3u(160, 1) }},
		{Name: "Urquhart-s3-b1", Expected: StatusUNSAT, Section: SecBothSolved, PaperZChaff: 529, PaperGridSAT: 526, PaperMaxClients: 4,
			Build: func() *cnf.Formula { return r3u(120, 1) }},
		{Name: "ezfact48_5", Expected: StatusUNSAT, Section: SecBothSolved, PaperZChaff: 127, PaperGridSAT: 196, PaperMaxClients: 1,
			Build: func() *cnf.Formula { return Pigeonhole(7) }},
		{Name: "glassy-sat-sel_N210_n", Expected: StatusSAT, Section: SecBothSolved, PaperZChaff: 7, PaperGridSAT: 68, PaperMaxClients: 1,
			Build: func() *cnf.Formula { return r3u(120, 210) }},
		// grid_10_20 is the paper's one large slowdown row (0.31x): its
		// "non-realizable circuit" resists search-space splitting. The
		// symmetric pigeonhole principle shows the identical pathology.
		{Name: "grid_10_20", Expected: StatusUNSAT, Section: SecBothSolved, PaperZChaff: 967, PaperGridSAT: 3165, PaperMaxClients: 12,
			Build: func() *cnf.Formula { return Pigeonhole(9) }},
		{Name: "hanoi5", Expected: StatusSAT, Section: SecBothSolved, PaperZChaff: 2961, PaperGridSAT: 1852, PaperMaxClients: 33,
			Build: func() *cnf.Formula { return r3u(250, 1) }},
		{Name: "hanoi6_fast", Expected: StatusSAT, Section: SecBothSolved, PaperZChaff: 1116, PaperGridSAT: 831, PaperMaxClients: 4,
			Build: func() *cnf.Formula { return r3u(155, 1) }},
		{Name: "lisa20_1_a", Expected: StatusSAT, Section: SecBothSolved, PaperZChaff: 181, PaperGridSAT: 243, PaperMaxClients: 2,
			Build: func() *cnf.Formula { return r3u(165, 1) }},
		{Name: "lisa21_3_a", Expected: StatusSAT, Section: SecBothSolved, PaperZChaff: 1792, PaperGridSAT: 337, PaperMaxClients: 4,
			Build: func() *cnf.Formula { return r3u(225, 1212) }},
		{Name: "pyhala-braun-sat-30-4-02", Expected: StatusSAT, Section: SecBothSolved, PaperZChaff: 18, PaperGridSAT: 84, PaperMaxClients: 1,
			Build: func() *cnf.Formula { return r3u(200, 1) }},
		{Name: "qg2-8", Expected: StatusSAT, Section: SecBothSolved, PaperZChaff: 180, PaperGridSAT: 224, PaperMaxClients: 2,
			Build: func() *cnf.Formula { return r3u(140, 1) }},

		// ---- Section 2: solved by GridSAT only ----
		// Rows the paper's zChaff lost to its 18000 s timeout get random
		// 3-SAT stand-ins (low conflict density: the time budget fires
		// first); rows it lost to memory get pigeonhole stand-ins (high
		// conflict rate and long learned clauses: memory fires first).
		{Name: "7pipe_bug", Expected: StatusSAT, Section: SecGridSATOnly, PaperZChaff: PaperTimeOut, PaperGridSAT: 5058, PaperMaxClients: 34,
			Build: func() *cnf.Formula { return r3u(225, 7101) }},
		{Name: "dp10u09", Expected: StatusUNSAT, Section: SecGridSATOnly, PaperZChaff: PaperTimeOut, PaperGridSAT: 2566, PaperMaxClients: 26,
			Build: func() *cnf.Formula { return r3u(240, 1) }},
		{Name: "rand_net40-60-10", Expected: StatusUNSAT, Section: SecGridSATOnly, PaperZChaff: PaperTimeOut, PaperGridSAT: 1690, PaperMaxClients: 30,
			Build: func() *cnf.Formula { return r3u(225, 909) }},
		{Name: "f2clk_40", Expected: StatusUNSAT, Section: SecGridSATOnly, Challenge: true, PaperZChaff: PaperTimeOut, PaperGridSAT: 3304, PaperMaxClients: 23,
			Build: func() *cnf.Formula { return r3u(225, 555) }},
		{Name: "Mat26", Expected: StatusUNSAT, Section: SecGridSATOnly, PaperZChaff: PaperMemOut, PaperGridSAT: 1886, PaperMaxClients: 21,
			Build: func() *cnf.Formula { return r4u(90, 2) }},
		{Name: "7pipe", Expected: StatusUNSAT, Section: SecGridSATOnly, PaperZChaff: PaperMemOut, PaperGridSAT: 6673, PaperMaxClients: 34,
			Build: func() *cnf.Formula { return r4u(90, 4) }},
		{Name: "comb2", Expected: StatusUNSAT, Section: SecGridSATOnly, Challenge: true, PaperZChaff: PaperMemOut, PaperGridSAT: 9951, PaperMaxClients: 34,
			Build: func() *cnf.Formula { return r4u(100, 2) }},
		{Name: "pyhala-braun-unsat-40-4-01", Expected: StatusUNSAT, Section: SecGridSATOnly, PaperZChaff: PaperMemOut, PaperGridSAT: 2425, PaperMaxClients: 34,
			Build: func() *cnf.Formula { return r4u(90, 5) }},
		{Name: "pyhala-braun-unsat-40-4-02", Expected: StatusUNSAT, Section: SecGridSATOnly, PaperZChaff: PaperMemOut, PaperGridSAT: 2564, PaperMaxClients: 34,
			Build: func() *cnf.Formula { return r4u(95, 4) }},
		{Name: "w08_15", Expected: StatusSAT, Section: SecGridSATOnly, PaperZChaff: PaperMemOut, PaperGridSAT: 3141, PaperMaxClients: 34,
			Build: func() *cnf.Formula { return plant4(100, 11, 1) }},

		// ---- Section 3: solved by neither in Table 1 (Table 2 reattempts) ----
		{Name: "comb1", Expected: StatusUnknown, Section: SecUnsolved, Challenge: true, PaperZChaff: PaperTimeOut, PaperGridSAT: PaperTimeOut, PaperMaxClients: 34,
			Table2: true, Table2Result: 0,
			Build: func() *cnf.Formula { return r3x(360, 4.5, 7) }},
		{Name: "par32-1-c", Expected: StatusSAT, Section: SecUnsolved, Challenge: true, PaperZChaff: PaperTimeOut, PaperGridSAT: PaperTimeOut, PaperMaxClients: 34,
			Table2: true, Table2Result: (33 + 8) * 3600,
			Build: func() *cnf.Formula { return plantHard(410, 4.8, 7) }},
		{Name: "rand_net70-25-5", Expected: StatusUNSAT, Section: SecUnsolved, Challenge: true, PaperZChaff: PaperTimeOut, PaperGridSAT: PaperTimeOut, PaperMaxClients: 34,
			Table2: true, Table2Result: 30837,
			Build: func() *cnf.Formula { return r3u(255, 3) }},
		{Name: "sha1", Expected: StatusSAT, Section: SecUnsolved, Challenge: true, PaperZChaff: PaperTimeOut, PaperGridSAT: PaperTimeOut, PaperMaxClients: 34,
			Table2: true, Table2Result: 0,
			Build: func() *cnf.Formula { return plantHard(420, 5.0, 2) }},
		{Name: "3bitadd_31", Expected: StatusUNSAT, Section: SecUnsolved, Challenge: true, PaperZChaff: PaperTimeOut, PaperGridSAT: PaperTimeOut, PaperMaxClients: 34,
			Table2: true, Table2Result: 0,
			Build: func() *cnf.Formula { return r3x(360, 4.5, 8) }},
		{Name: "cnt10", Expected: StatusSAT, Section: SecUnsolved, Challenge: true, PaperZChaff: PaperTimeOut, PaperGridSAT: PaperTimeOut, PaperMaxClients: 34,
			Table2: true, Table2Result: 0,
			Build: func() *cnf.Formula { return plantHard(390, 4.8, 6) }},
		{Name: "glassybp-v399-s499089820", Expected: StatusSAT, Section: SecUnsolved, Challenge: true, PaperZChaff: PaperTimeOut, PaperGridSAT: PaperTimeOut, PaperMaxClients: 34,
			Table2: true, Table2Result: 5472,
			Build: func() *cnf.Formula { return plantHard(355, 4.8, 13) }},
		{Name: "hgen3-v300-s1766565160", Expected: StatusUnknown, Section: SecUnsolved, Challenge: true, PaperZChaff: PaperTimeOut, PaperGridSAT: PaperTimeOut, PaperMaxClients: 34,
			Table2: true, Table2Result: 0,
			Build: func() *cnf.Formula { return r3x(340, 4.45, 2) }},
		{Name: "hanoi6", Expected: StatusSAT, Section: SecUnsolved, Challenge: true, PaperZChaff: PaperTimeOut, PaperGridSAT: PaperTimeOut, PaperMaxClients: 34,
			Table2: true, Table2Result: 0,
			Build: func() *cnf.Formula { return plantHard(440, 5.0, 5) }},
	}
}

// r3u builds a random 3-SAT instance at the 4.26 phase-transition ratio.
func r3u(n int, seed int64) *cnf.Formula {
	return RandomKSAT(n, int(4.26*float64(n)), 3, seed)
}

// r3x builds a random 3-SAT instance at an explicit ratio; slightly above
// the transition it is unsatisfiable with high probability and far harder
// than threshold instances of equal size.
func r3x(n int, ratio float64, seed int64) *cnf.Formula {
	return RandomKSAT(n, int(ratio*float64(n)), 3, seed)
}

// r4u builds a random 4-SAT instance at the 9.9 phase-transition ratio.
// 4-SAT learns much longer clauses per conflict than 3-SAT, so these rows
// exhaust the baseline's memory before its time budget — the MEM_OUT
// failure mode of the paper's Table 1.
func r4u(n int, seed int64) *cnf.Formula {
	return RandomKSAT(n, int(9.9*float64(n)), 4, seed)
}

// plant4 builds a doubly-planted (guaranteed SAT) hard 4-SAT instance.
func plant4(n int, ratio float64, seed int64) *cnf.Formula {
	return PlantedKSAT(n, int(ratio*float64(n)), 4, seed)
}

// plantHard builds a doubly-planted (guaranteed SAT, CDCL-hard) instance.
func plantHard(n int, ratio float64, seed int64) *cnf.Formula {
	return PlantedKSAT(n, int(ratio*float64(n)), 3, seed)
}

// ByName returns the suite instance with the given paper name.
func ByName(name string) (Instance, bool) {
	for _, inst := range Suite() {
		if inst.Name == name {
			return inst, true
		}
	}
	return Instance{}, false
}

// Table2Rows returns the rows re-attempted in the paper's Table 2, in order.
func Table2Rows() []Instance {
	var out []Instance
	for _, inst := range Suite() {
		if inst.Table2 {
			out = append(out, inst)
		}
	}
	return out
}

func fmtSeconds(s float64) string {
	switch {
	case s >= 100:
		return strconv.Itoa(int(s + 0.5))
	case s >= 10:
		return strconv.FormatFloat(s, 'f', 1, 64)
	default:
		return strconv.FormatFloat(s, 'f', 2, 64)
	}
}
