package comm

import (
	"sync"
	"testing"
	"time"

	"gridsat/internal/cnf"
	"gridsat/internal/solver"
)

func allMessages() []Message {
	f := cnf.NewFormula(3)
	f.Add(1, -2).Add(2, 3)
	return []Message{
		Register{Addr: "a:1", HostName: "h", FreeMemBytes: 1 << 30, SpeedHint: 1.5},
		RegisterAck{ClientID: 3},
		RegisterAck{Rejected: true, Reason: "below minimum memory"},
		BaseProblem{Formula: f},
		SplitRequest{ClientID: 2, Why: SplitMemoryPressure},
		SplitAssign{SplitID: 9, Peers: []SplitPeer{{ID: 4, Addr: "b:2"}, {ID: 5, Addr: "b:3"}}},
		SplitPayload{From: 2, Subs: []*solver.Subproblem{{
			NumVars:     3,
			Depth:       1,
			Assumptions: []cnf.Lit{cnf.PosLit(0)},
			Learnts:     []cnf.Clause{cnf.NewClause(2, 3)},
		}}},
		SplitDone{ClientID: 2, OK: true, Used: 1},
		SplitDone{ClientID: 4, OK: false, Err: "boom"},
		ShareClauses{From: 1, Clauses: []cnf.Clause{cnf.NewClause(-1, 2)}},
		Solved{ClientID: 1, Status: solver.StatusSAT, Model: cnf.Assignment{cnf.True, cnf.False, cnf.True}},
		Migrate{PeerID: 7, PeerAddr: "c:3"},
		Shutdown{},
		StatusReport{ClientID: 2, MemBytes: 42, Learnts: 7, Conflicts: 99, Busy: true},
	}
}

func roundtrip(t *testing.T, a, b Conn) {
	t.Helper()
	msgs := allMessages()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, m := range msgs {
			if err := a.Send(m); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	for _, want := range msgs {
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if got.Kind() != want.Kind() {
			t.Fatalf("kind %q, want %q", got.Kind(), want.Kind())
		}
	}
	wg.Wait()
}

func TestTCPRoundtrip(t *testing.T) {
	tr := TCPTransport{}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		done <- c
	}()
	client, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server := <-done
	defer client.Close()
	defer server.Close()
	roundtrip(t, client, server)
	roundtrip(t, server, client) // and the other direction
}

func TestTCPPayloadFidelity(t *testing.T) {
	tr := TCPTransport{}
	l, _ := tr.Listen("127.0.0.1:0")
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c
	}()
	client, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	defer client.Close()
	defer server.Close()

	f := cnf.NewFormula(4)
	f.Add(1, -2, 3).Add(-4)
	f.Comment = "payload"
	if err := client.Send(BaseProblem{Formula: f}); err != nil {
		t.Fatal(err)
	}
	m, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.(BaseProblem)
	if !ok {
		t.Fatalf("decoded %T", m)
	}
	if got.Formula.NumVars != 4 || got.Formula.NumClauses() != 2 || got.Formula.Comment != "payload" {
		t.Fatalf("formula mangled: %+v", got.Formula)
	}
	if got.Formula.Clauses[0][1] != cnf.NegLit(1) {
		t.Fatalf("literal mangled: %v", got.Formula.Clauses[0])
	}

	sub := &solver.Subproblem{NumVars: 4, Assumptions: []cnf.Lit{cnf.NegLit(3)}}
	if err := client.Send(SplitPayload{From: 9, Subs: []*solver.Subproblem{sub}}); err != nil {
		t.Fatal(err)
	}
	m, err = server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	sp := m.(SplitPayload)
	if sp.From != 9 || len(sp.Subs) != 1 || len(sp.Subs[0].Assumptions) != 1 || sp.Subs[0].Assumptions[0] != cnf.NegLit(3) {
		t.Fatalf("subproblem mangled: %+v", sp)
	}
}

func TestInprocRoundtrip(t *testing.T) {
	tr := NewInprocTransport()
	l, err := tr.Listen("master")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(m); err != nil { // echo
				return
			}
		}
	}()
	c, err := tr.Dial("master")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, m := range allMessages() {
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
		back, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if back.Kind() != m.Kind() {
			t.Fatalf("echo kind %q != %q", back.Kind(), m.Kind())
		}
	}
}

func TestInprocAutoAddr(t *testing.T) {
	tr := NewInprocTransport()
	l1, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	l2, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	if l1.Addr() == l2.Addr() || l1.Addr() == "" {
		t.Fatalf("auto addrs: %q vs %q", l1.Addr(), l2.Addr())
	}
}

func TestInprocDuplicateBind(t *testing.T) {
	tr := NewInprocTransport()
	if _, err := tr.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Listen("x"); err == nil {
		t.Fatal("duplicate bind accepted")
	}
}

func TestInprocDialUnknown(t *testing.T) {
	tr := NewInprocTransport()
	if _, err := tr.Dial("ghost"); err == nil {
		t.Fatal("dial to unbound address succeeded")
	}
}

func TestInprocListenerCloseFreesAddr(t *testing.T) {
	tr := NewInprocTransport()
	l, _ := tr.Listen("x")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Dial("x"); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
	if _, err := tr.Listen("x"); err != nil {
		t.Fatalf("rebinding closed address failed: %v", err)
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	a, b := NewPipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv on closed pipe returned a message")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
	if err := a.Send(Shutdown{}); err == nil {
		t.Fatal("Send on closed pipe succeeded")
	}
}

func TestPipeDrainsQueuedAfterClose(t *testing.T) {
	a, b := NewPipe()
	if err := a.Send(Shutdown{}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	m, err := b.Recv()
	if err != nil || m.Kind() != "shutdown" {
		t.Fatalf("queued message lost after close: %v %v", m, err)
	}
}

func TestSplitReasonString(t *testing.T) {
	if SplitMemoryPressure.String() != "memory-pressure" || SplitTimeout.String() != "timeout" {
		t.Error("SplitReason strings wrong")
	}
}

func TestMessageKindsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range allMessages() {
		k := m.Kind()
		if k == "" {
			t.Fatalf("%T has empty kind", m)
		}
		if seen[k] && k != "register-ack" && k != "split-done" {
			t.Fatalf("duplicate kind %q", k)
		}
		seen[k] = true
	}
}

func TestConcurrentSendsOneConn(t *testing.T) {
	tr := TCPTransport{}
	l, _ := tr.Listen("127.0.0.1:0")
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c
	}()
	client, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	defer client.Close()
	defer server.Close()

	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n/4; j++ {
				if err := client.Send(StatusReport{ClientID: j}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if _, err := server.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	wg.Wait()
}
