package comm

import (
	"sort"
	"sync"

	"gridsat/internal/obs"
)

// Metrics aggregates per-message-kind traffic counters for instrumented
// transports. All counters also live in the supplied obs.Registry, so a
// master's /metrics endpoint exposes them as
//
//	gridsat_comm_msgs_total{dir="send",kind="split-payload"} 12
//	gridsat_comm_bytes_total{dir="recv",kind="share-clauses"} 80640
//	gridsat_comm_conns_total{role="dial"} 5
//
// Byte counts are exact frame sizes from the wire codec: pre-encoded
// messages report their frame length directly, and plain messages are
// sized through WireSize, which produces the same frame Send would write.
type Metrics struct {
	reg   *obs.Registry
	dials *obs.Counter
	accps *obs.Counter
	// fallback counts frames that used the gob fallback codec instead of a
	// dedicated binary encoder — a canary for binary-codec coverage
	// regressions (a hot kind silently dropping to gob shows up here).
	fallback *obs.Counter

	mu      sync.RWMutex
	perKind map[string]*kindCounters
}

type kindCounters struct {
	sentMsgs, recvMsgs   *obs.Counter
	sentBytes, recvBytes *obs.Counter
}

// NewMetrics registers the comm counter families in reg and returns the
// handle that instrumented transports update.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Metrics{
		reg:      reg,
		dials:    reg.Counter("gridsat_comm_conns_total", "connections opened by role", obs.L("role", "dial")),
		accps:    reg.Counter("gridsat_comm_conns_total", "connections opened by role", obs.L("role", "accept")),
		fallback: reg.Counter("gridsat_comm_codec_fallback_frames_total", "frames sent with the gob fallback codec instead of a binary encoder"),
		perKind:  map[string]*kindCounters{},
	}
}

// FallbackFrames returns how many sent frames used the gob fallback codec.
func (m *Metrics) FallbackFrames() int64 { return m.fallback.Value() }

func (m *Metrics) kind(k string) *kindCounters {
	m.mu.RLock()
	kc := m.perKind[k]
	m.mu.RUnlock()
	if kc != nil {
		return kc
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if kc = m.perKind[k]; kc != nil {
		return kc
	}
	kc = &kindCounters{
		sentMsgs:  m.reg.Counter("gridsat_comm_msgs_total", "protocol messages by kind and direction", obs.L("kind", k), obs.L("dir", "send")),
		recvMsgs:  m.reg.Counter("gridsat_comm_msgs_total", "protocol messages by kind and direction", obs.L("kind", k), obs.L("dir", "recv")),
		sentBytes: m.reg.Counter("gridsat_comm_bytes_total", "encoded message bytes by kind and direction", obs.L("kind", k), obs.L("dir", "send")),
		recvBytes: m.reg.Counter("gridsat_comm_bytes_total", "encoded message bytes by kind and direction", obs.L("kind", k), obs.L("dir", "recv")),
	}
	m.perKind[k] = kc
	return kc
}

// KindTotals is the traffic of one message kind in a Totals summary.
type KindTotals struct {
	MsgsSent  int64 `json:"msgs_sent"`
	MsgsRecv  int64 `json:"msgs_recv"`
	BytesSent int64 `json:"bytes_sent"`
	BytesRecv int64 `json:"bytes_recv"`
}

// Totals is a point-in-time traffic summary for run reports.
type Totals struct {
	MsgsSent  int64                 `json:"msgs_sent"`
	MsgsRecv  int64                 `json:"msgs_recv"`
	BytesSent int64                 `json:"bytes_sent"`
	BytesRecv int64                 `json:"bytes_recv"`
	PerKind   map[string]KindTotals `json:"per_kind,omitempty"`
}

// Totals snapshots the aggregate and per-kind counters.
func (m *Metrics) Totals() Totals {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t := Totals{PerKind: make(map[string]KindTotals, len(m.perKind))}
	kinds := make([]string, 0, len(m.perKind))
	for k := range m.perKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		kc := m.perKind[k]
		kt := KindTotals{
			MsgsSent:  kc.sentMsgs.Value(),
			MsgsRecv:  kc.recvMsgs.Value(),
			BytesSent: kc.sentBytes.Value(),
			BytesRecv: kc.recvBytes.Value(),
		}
		t.PerKind[k] = kt
		t.MsgsSent += kt.MsgsSent
		t.MsgsRecv += kt.MsgsRecv
		t.BytesSent += kt.BytesSent
		t.BytesRecv += kt.BytesRecv
	}
	return t
}

// Instrument wraps t so every connection it produces counts messages and
// encoded bytes per kind into m. A nil m returns t unchanged.
func Instrument(t Transport, m *Metrics) Transport {
	if m == nil {
		return t
	}
	return &instrumentedTransport{inner: t, m: m}
}

type instrumentedTransport struct {
	inner Transport
	m     *Metrics
}

func (t *instrumentedTransport) Listen(addr string) (Listener, error) {
	l, err := t.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &instrumentedListener{inner: l, m: t.m}, nil
}

func (t *instrumentedTransport) Dial(addr string) (Conn, error) {
	c, err := t.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	t.m.dials.Inc()
	return newInstrumentedConn(c, t.m), nil
}

type instrumentedListener struct {
	inner Listener
	m     *Metrics
}

func (l *instrumentedListener) Accept() (Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	l.m.accps.Inc()
	return newInstrumentedConn(c, l.m), nil
}

func (l *instrumentedListener) Close() error { return l.inner.Close() }
func (l *instrumentedListener) Addr() string { return l.inner.Addr() }

type instrumentedConn struct {
	inner Conn
	m     *Metrics
}

func newInstrumentedConn(c Conn, m *Metrics) *instrumentedConn {
	return &instrumentedConn{inner: c, m: m}
}

func (c *instrumentedConn) Send(m Message) error {
	if err := c.inner.Send(m); err != nil {
		return err
	}
	kc := c.m.kind(m.Kind())
	kc.sentMsgs.Inc()
	kc.sentBytes.Add(WireSize(m))
	if !HasBinaryCodec(m) {
		c.m.fallback.Inc()
	}
	return nil
}

func (c *instrumentedConn) SendEncoded(e *EncodedMessage) error {
	if err := c.inner.SendEncoded(e); err != nil {
		return err
	}
	kc := c.m.kind(e.Kind())
	kc.sentMsgs.Inc()
	kc.sentBytes.Add(int64(e.WireLen()))
	if e.IsFallback() {
		c.m.fallback.Inc()
	}
	return nil
}

func (c *instrumentedConn) Recv() (Message, error) {
	m, err := c.inner.Recv()
	if err != nil {
		return nil, err
	}
	kc := c.m.kind(m.Kind())
	kc.recvMsgs.Inc()
	kc.recvBytes.Add(WireSize(m))
	return m, nil
}

func (c *instrumentedConn) Close() error { return c.inner.Close() }
