package comm

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"gridsat/internal/obs"
)

// TestEveryKindGobRoundtrip encodes and decodes one instance of every
// protocol message through a fresh gob stream and checks the payload
// survives structurally, not just by kind.
func TestEveryKindGobRoundtrip(t *testing.T) {
	for _, want := range allMessages() {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&want); err != nil {
			t.Fatalf("%s: encode: %v", want.Kind(), err)
		}
		var got Message
		if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
			t.Fatalf("%s: decode: %v", want.Kind(), err)
		}
		if got.Kind() != want.Kind() {
			t.Fatalf("kind %q decoded as %q", want.Kind(), got.Kind())
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: payload mangled:\n got %+v\nwant %+v", want.Kind(), got, want)
		}
	}
}

// TestAllMessagesCoversEveryKind keeps the allMessages fixture honest: a
// new protocol message must be added here (and to the gob init block) or
// the round-trip and instrumentation tests silently lose coverage.
func TestAllMessagesCoversEveryKind(t *testing.T) {
	wantKinds := []string{
		"register", "register-ack", "base-problem", "split-request",
		"split-assign", "split-payload", "split-done", "share-clauses",
		"solved", "migrate", "shutdown", "status",
	}
	have := map[string]bool{}
	for _, m := range allMessages() {
		have[m.Kind()] = true
	}
	for _, k := range wantKinds {
		if !have[k] {
			t.Errorf("allMessages is missing kind %q", k)
		}
	}
}

// TestInstrumentedTransportCounts drives every message kind through an
// instrumented in-process transport and checks per-kind message and byte
// counters on both directions.
func TestInstrumentedTransportCounts(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	tr := Instrument(NewInprocTransport(), m)
	l, err := tr.Listen("master")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	client, err := tr.Dial("master")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted

	msgs := allMessages()
	for _, msg := range msgs {
		if err := client.Send(msg); err != nil {
			t.Fatalf("send %s: %v", msg.Kind(), err)
		}
		if _, err := server.Recv(); err != nil {
			t.Fatalf("recv %s: %v", msg.Kind(), err)
		}
	}

	totals := m.Totals()
	if totals.MsgsSent != int64(len(msgs)) || totals.MsgsRecv != int64(len(msgs)) {
		t.Fatalf("msgs sent=%d recv=%d, want %d each", totals.MsgsSent, totals.MsgsRecv, len(msgs))
	}
	for _, msg := range msgs {
		kt, ok := totals.PerKind[msg.Kind()]
		if !ok {
			t.Errorf("no counters for kind %q", msg.Kind())
			continue
		}
		if kt.MsgsSent < 1 || kt.MsgsRecv < 1 {
			t.Errorf("%s: msgs sent=%d recv=%d", msg.Kind(), kt.MsgsSent, kt.MsgsRecv)
		}
		if kt.BytesSent <= 0 || kt.BytesRecv <= 0 {
			t.Errorf("%s: zero byte count (sent=%d recv=%d)", msg.Kind(), kt.BytesSent, kt.BytesRecv)
		}
	}
	if totals.BytesSent <= 0 || totals.BytesSent != totals.BytesRecv {
		t.Errorf("aggregate bytes sent=%d recv=%d", totals.BytesSent, totals.BytesRecv)
	}

	// The registry carries the same numbers for /metrics exposition.
	snap := reg.Snapshot()
	if got := snap.CounterValue("gridsat_comm_msgs_total", obs.L("dir", "send")); got != int64(len(msgs)) {
		t.Errorf("registry msgs_total{dir=send} = %d, want %d", got, len(msgs))
	}
	if got := snap.CounterValue("gridsat_comm_conns_total"); got != 2 {
		t.Errorf("conns_total = %d, want 2 (one dial + one accept)", got)
	}
}

// TestInstrumentOverTCP checks the wrapper composes with the real TCP
// transport and that byte counters report exact frame sizes — what
// actually crossed the wire, not an estimate.
func TestInstrumentOverTCP(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	tr := Instrument(TCPTransport{}, m)
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c
	}()
	client, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	for i := 0; i < 3; i++ {
		if err := client.Send(StatusReport{ClientID: i, Deltas: SolverDeltas{Conflicts: 10}}); err != nil {
			t.Fatal(err)
		}
		if _, err := server.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	kt := m.Totals().PerKind["status"]
	if kt.MsgsSent != 3 || kt.BytesSent <= 0 {
		t.Fatalf("status totals: %+v", kt)
	}
	// Counters must report the exact frame bytes written, per message.
	var want int64
	for i := 0; i < 3; i++ {
		want += WireSize(StatusReport{ClientID: i, Deltas: SolverDeltas{Conflicts: 10}})
	}
	if kt.BytesSent != want || kt.BytesRecv != want {
		t.Errorf("status bytes sent=%d recv=%d, want exact frame total %d", kt.BytesSent, kt.BytesRecv, want)
	}
}
