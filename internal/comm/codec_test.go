package comm

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"gridsat/internal/cnf"
	"gridsat/internal/solver"
)

// canonClauses puts a clause batch in codec-canonical order so tests can
// compare decoded output against semantically-equal input.
func canonClauses(cs []cnf.Clause) []cnf.Clause { return canonicalize(cs) }

func randClauses(r *rand.Rand, n, vars, maxLen int) []cnf.Clause {
	out := make([]cnf.Clause, n)
	for i := range out {
		l := 1 + r.Intn(maxLen)
		c := make(cnf.Clause, l)
		for j := range c {
			c[j] = cnf.MkLit(cnf.Var(r.Intn(vars)), r.Intn(2) == 0)
		}
		out[i] = c
	}
	return out
}

// TestShareClausesBinaryRoundtrip checks the bit-packed clause block
// reproduces the batch exactly up to the codec's declared canonicalization
// (sorted literals per clause, shortest-first clause order), across
// random batches, large variable ranges, and degenerate shapes.
func TestShareClausesBinaryRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cases := [][]cnf.Clause{
		nil,
		{},
		{{}},
		{cnf.NewClause(5)},
		{cnf.NewClause(-1, 2, -3), cnf.NewClause(3, 3, 3), cnf.NewClause(1)},
		randClauses(r, 100, 50, 10),
		randClauses(r, 500, 100_000, 12),
		randClauses(r, 32, 1_000_000, 6),
	}
	for i, cs := range cases {
		in := ShareClauses{From: i - 2, Clauses: cs}
		e, err := EncodeMessage(in)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		if e.frame[0] != frameShare {
			t.Fatalf("case %d: frame codec = %#x, want frameShare", i, e.frame[0])
		}
		got, err := e.Decode()
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		out, ok := got.(ShareClauses)
		if !ok {
			t.Fatalf("case %d: decoded %T", i, got)
		}
		if out.From != in.From {
			t.Errorf("case %d: From = %d, want %d", i, out.From, in.From)
		}
		want := canonClauses(cs)
		if len(out.Clauses) != len(want) {
			t.Fatalf("case %d: %d clauses, want %d", i, len(out.Clauses), len(want))
		}
		for j := range want {
			if !reflect.DeepEqual(out.Clauses[j], want[j]) {
				t.Fatalf("case %d clause %d: got %v want %v", i, j, out.Clauses[j], want[j])
			}
		}
	}
}

// TestCanonicalOrderIsShortestFirst pins the property the sharing
// pipeline relies on: decoded batches come back shortest clause first, so
// a receiver that imports a truncated prefix keeps the most valuable
// clauses.
func TestCanonicalOrderIsShortestFirst(t *testing.T) {
	cs := []cnf.Clause{
		cnf.NewClause(1, 2, 3, 4),
		cnf.NewClause(7),
		cnf.NewClause(-2, 5),
	}
	e, err := EncodeMessage(ShareClauses{Clauses: cs})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Decode()
	if err != nil {
		t.Fatal(err)
	}
	out := got.(ShareClauses).Clauses
	if !sort.SliceIsSorted(out, func(i, j int) bool { return len(out[i]) < len(out[j]) }) {
		t.Fatalf("decoded batch not shortest-first: %v", out)
	}
}

// TestEncodeDoesNotMutateInput guards the canonicalization against
// reordering the caller's clauses in place: OnLearn hands the aggregator
// clauses whose literal order other code may still observe.
func TestEncodeDoesNotMutateInput(t *testing.T) {
	c := cnf.NewClause(3, -1, 2)
	orig := c.Clone()
	cs := []cnf.Clause{cnf.NewClause(9, 8), c}
	origOrder := []cnf.Clause{cs[0], cs[1]}
	if _, err := EncodeMessage(ShareClauses{Clauses: cs}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, orig) {
		t.Errorf("encode reordered the caller's literals: %v", c)
	}
	for i := range cs {
		if &cs[i][0] != &origOrder[i][0] {
			t.Errorf("encode reordered the caller's slice")
		}
	}
}

// TestSplitPayloadBinaryRoundtrip checks the hot split message: the
// assumptions (a trail prefix whose order is semantic) must survive
// verbatim, while learned clauses may canonicalize.
func TestSplitPayloadBinaryRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	assum := make([]cnf.Lit, 40)
	for i := range assum {
		assum[i] = cnf.MkLit(cnf.Var(r.Intn(5000)), i%3 == 0)
	}
	in := SplitPayload{
		SplitID: 1234,
		From:    -7,
		Subs: []*solver.Subproblem{{
			NumVars:     5000,
			Depth:       11,
			Assumptions: assum,
			Learnts:     randClauses(r, 64, 5000, 8),
		}},
	}
	e, err := EncodeMessage(in)
	if err != nil {
		t.Fatal(err)
	}
	if e.frame[0] != frameSplit {
		t.Fatalf("frame codec = %#x, want frameSplit", e.frame[0])
	}
	got, err := e.Decode()
	if err != nil {
		t.Fatal(err)
	}
	out := got.(SplitPayload)
	if out.SplitID != in.SplitID || out.From != in.From {
		t.Fatalf("header mangled: %+v", out)
	}
	if len(out.Subs) != 1 {
		t.Fatalf("decoded %d subproblems, want 1", len(out.Subs))
	}
	if out.Subs[0].NumVars != in.Subs[0].NumVars || out.Subs[0].Depth != in.Subs[0].Depth {
		t.Errorf("NumVars/Depth = %d/%d, want %d/%d",
			out.Subs[0].NumVars, out.Subs[0].Depth, in.Subs[0].NumVars, in.Subs[0].Depth)
	}
	if !reflect.DeepEqual(out.Subs[0].Assumptions, in.Subs[0].Assumptions) {
		t.Error("assumption order not preserved")
	}
	want := canonClauses(in.Subs[0].Learnts)
	if !reflect.DeepEqual(out.Subs[0].Learnts, want) {
		t.Error("learnts did not round-trip")
	}

	// An empty batch (protocol edge) must survive too.
	e, err = EncodeMessage(SplitPayload{SplitID: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err = e.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if sp := got.(SplitPayload); len(sp.Subs) != 0 || sp.SplitID != 5 {
		t.Fatalf("empty-batch payload mangled: %+v", sp)
	}
}

// TestSplitPayloadMultiSubRoundtrip drives the batch form the dilemma
// strategy ships: several cofactors with distinct assumptions and depths
// in one frame, order preserved.
func TestSplitPayloadMultiSubRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	in := SplitPayload{SplitID: 88, From: 3}
	for i := 0; i < 7; i++ {
		assum := make([]cnf.Lit, 3+i)
		for j := range assum {
			assum[j] = cnf.MkLit(cnf.Var(r.Intn(900)), (i+j)%2 == 0)
		}
		in.Subs = append(in.Subs, &solver.Subproblem{
			NumVars:     900,
			Depth:       4 + i,
			Assumptions: assum,
			Learnts:     randClauses(r, 1+i%3, 900, 6),
		})
	}
	e, err := EncodeMessage(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Decode()
	if err != nil {
		t.Fatal(err)
	}
	out := got.(SplitPayload)
	if out.SplitID != in.SplitID || out.From != in.From || len(out.Subs) != len(in.Subs) {
		t.Fatalf("header/batch mangled: %+v", out)
	}
	for i, sub := range out.Subs {
		if sub.NumVars != in.Subs[i].NumVars || sub.Depth != in.Subs[i].Depth {
			t.Errorf("sub %d NumVars/Depth = %d/%d, want %d/%d",
				i, sub.NumVars, sub.Depth, in.Subs[i].NumVars, in.Subs[i].Depth)
		}
		if !reflect.DeepEqual(sub.Assumptions, in.Subs[i].Assumptions) {
			t.Errorf("sub %d assumptions mangled", i)
		}
		if !reflect.DeepEqual(sub.Learnts, canonClauses(in.Subs[i].Learnts)) {
			t.Errorf("sub %d learnts did not round-trip", i)
		}
	}
}

// TestStatusReportBinaryRoundtrip exercises the flat-field codec,
// including negative deltas.
func TestStatusReportBinaryRoundtrip(t *testing.T) {
	in := StatusReport{
		ClientID:  42,
		MemBytes:  64 << 20,
		Learnts:   1999,
		Conflicts: 123456789,
		Busy:      true,
		Deltas: SolverDeltas{
			Decisions: 10, Conflicts: 20, Propagations: 1 << 40,
			Learned: 5, ReclaimedBytes: -3,
		},
	}
	e, err := EncodeMessage(in)
	if err != nil {
		t.Fatal(err)
	}
	if e.frame[0] != frameStatus {
		t.Fatalf("frame codec = %#x, want frameStatus", e.frame[0])
	}
	got, err := e.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

// TestGobFallbackRoundtrip checks every cold control message survives the
// frameGob path structurally.
func TestGobFallbackRoundtrip(t *testing.T) {
	for _, in := range allMessages() {
		switch in.(type) {
		case ShareClauses, SplitPayload, StatusReport:
			continue // binary kinds covered elsewhere
		}
		e, err := EncodeMessage(in)
		if err != nil {
			t.Fatalf("%s: %v", in.Kind(), err)
		}
		if e.frame[0] != frameGob {
			t.Fatalf("%s: frame codec = %#x, want frameGob", in.Kind(), e.frame[0])
		}
		got, err := e.Decode()
		if err != nil {
			t.Fatalf("%s: decode: %v", in.Kind(), err)
		}
		if !reflect.DeepEqual(got, in) {
			t.Errorf("%s: payload mangled:\n got %+v\nwant %+v", in.Kind(), got, in)
		}
	}
}

// TestEncodedMessagePassthrough: encoding an already-encoded message is
// the identity, so fan-out code can be oblivious to what it queues.
func TestEncodedMessagePassthrough(t *testing.T) {
	e, err := EncodeMessage(ShareClauses{From: 1, Clauses: []cnf.Clause{cnf.NewClause(1, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	again, err := EncodeMessage(e)
	if err != nil {
		t.Fatal(err)
	}
	if again != e {
		t.Fatal("re-encoding an EncodedMessage must be the identity")
	}
	if e.Kind() != "share-clauses" {
		t.Fatalf("Kind() = %q", e.Kind())
	}
	if e.WireLen() != len(e.frame) {
		t.Fatalf("WireLen %d != frame %d", e.WireLen(), len(e.frame))
	}
}

// TestDecodeRejectsCorruptFrames feeds truncated and hostile frames to
// the decoder; it must error, never panic or over-allocate.
func TestDecodeRejectsCorruptFrames(t *testing.T) {
	good, err := EncodeMessage(ShareClauses{From: 3, Clauses: []cnf.Clause{cnf.NewClause(1, -2, 4)}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(good.frame); cut++ {
		e := &EncodedMessage{kind: good.kind, frame: good.frame[:cut]}
		if _, err := e.Decode(); err == nil && cut < len(good.frame)-1 {
			// Truncating only the final padding byte may still decode;
			// anything shorter must fail.
			t.Errorf("truncated frame at %d/%d decoded", cut, len(good.frame))
		}
	}
	hostile := [][]byte{
		{0x42, 0x00},                                           // unknown codec ID
		{frameShare, 0xff, 0xff, 0xff, 0x7f},                   // length prefix >> body
		{frameShare, 0x02, 0x00, 0xff},                         // clause count then garbage
		{frameSplit, 0x01, 0x02},                               // truncated header
		{frameStatus, 0x01, 0x80},                              // unterminated varint
		{frameShare, 0x06, 0x00, 0xff, 0xff, 0xff, 0xff, 0x7f}, // huge clause count
	}
	for i, f := range hostile {
		e := &EncodedMessage{kind: "x", frame: f}
		if _, err := e.Decode(); err == nil {
			t.Errorf("hostile frame %d decoded", i)
		}
	}
}

// TestWireSizeMatchesFrames pins WireSize to the exact frame length for
// both plain and pre-encoded messages.
func TestWireSizeMatchesFrames(t *testing.T) {
	m := ShareClauses{From: 2, Clauses: []cnf.Clause{cnf.NewClause(1, -2), cnf.NewClause(3)}}
	e, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	if WireSize(m) != int64(len(e.frame)) || WireSize(e) != int64(len(e.frame)) {
		t.Fatalf("WireSize plain=%d encoded=%d, frame=%d", WireSize(m), WireSize(e), len(e.frame))
	}
}
