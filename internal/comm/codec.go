package comm

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"slices"

	"gridsat/internal/cnf"
	"gridsat/internal/solver"
)

// This file is the wire codec: every connection carries length-prefixed
// frames, and each frame self-describes its encoding. The hot
// clause-sharing messages (ShareClauses, SplitPayload, StatusReport) use a
// compact binary form — sorted literals, bit-packed per-clause deltas —
// while every other (cold, infrequent) control message falls back to a
// standalone gob blob inside the frame. The frame's codec byte is the
// negotiation: a receiver never needs out-of-band knowledge to decode.
//
// Frame layout:
//
//	[1 byte codec ID][uvarint payload length][payload]
//
// Clause payloads canonicalize clause order (shortest first, then
// lexicographic by sorted literals) and literal order (ascending) — both
// are semantically free for learned-clause exchange, because receivers
// normalize imported clauses anyway, and shortest-first is exactly the
// priority order the sharing pipeline wants when batches are dropped.

// Frame codec IDs. frameGob is the negotiated fallback for message kinds
// without a dedicated binary encoder.
const (
	frameGob    byte = 0x00
	frameShare  byte = 0x01
	frameSplit  byte = 0x02
	frameStatus byte = 0x03
)

// frameTracedFlag marks a frame carrying a causal-trace header: two
// uvarints (Lamport timestamp, parent event ID) between the codec byte and
// the length prefix. The flag composes with every codec ID, so hot binary
// kinds stay binary when traced, and an untraced receiver of an untraced
// stream sees exactly the old format.
const frameTracedFlag byte = 0x80

// frameJobFlag marks a frame whose binary payload belongs to a scheduler
// job: one uvarint (the job ID) sits between the trace header (if any)
// and the length prefix. Job 0 — the implicit single job — never sets
// the flag, so single-job streams are byte-identical to pre-scheduler
// ones, and legacy frames decode with Job = 0. Gob fallback frames carry
// the job inside the blob and never set the flag.
const frameJobFlag byte = 0x40

// maxFramePayload bounds a frame so a corrupt or hostile length prefix
// cannot drive a huge allocation. The paper's largest split payloads are
// hundreds of MB; 1 GiB leaves headroom.
const maxFramePayload = 1 << 30

// maxClausesPerFrame bounds the decoded clause count per message.
const maxClausesPerFrame = 1 << 24

// EncodedMessage is a message serialized once into its complete wire
// frame. It implements Message, so it can flow through the same queues as
// a plain message; transports write the frame bytes verbatim, which lets a
// broadcast encode one batch and fan the identical byte slice out to N
// peers.
type EncodedMessage struct {
	kind  string
	frame []byte
}

// Kind implements Message, reporting the inner message's kind.
func (e *EncodedMessage) Kind() string { return e.kind }

// WireLen is the exact number of bytes this frame occupies on the wire.
func (e *EncodedMessage) WireLen() int { return len(e.frame) }

// Frame exposes the raw frame bytes. Callers must not mutate them.
func (e *EncodedMessage) Frame() []byte { return e.frame }

// EncodeMessage serializes m into its wire frame: binary for the hot
// clause-path kinds, a standalone gob blob for everything else.
func EncodeMessage(m Message) (*EncodedMessage, error) {
	if e, ok := m.(*EncodedMessage); ok {
		return e, nil
	}
	var ti *TraceInfo
	if t, ok := m.(Traced); ok {
		ti, m = &t.Info, t.Msg
	}
	var id byte
	var payload []byte
	job := 0
	switch v := m.(type) {
	case ShareClauses:
		id, payload, job = frameShare, encodeShare(v), v.Job
	case SplitPayload:
		id, payload, job = frameSplit, encodeSplit(v), v.Job
	case StatusReport:
		id, payload, job = frameStatus, encodeStatus(v), v.Job
	default:
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
			return nil, fmt.Errorf("comm: gob frame: %w", err)
		}
		id, payload = frameGob, buf.Bytes()
	}
	if len(payload) > maxFramePayload {
		return nil, fmt.Errorf("comm: frame payload %d exceeds limit", len(payload))
	}
	if job < 0 {
		return nil, fmt.Errorf("comm: negative job tag %d", job)
	}
	frame := make([]byte, 0, len(payload)+4*binary.MaxVarintLen32+1)
	flags := id
	if ti != nil {
		flags |= frameTracedFlag
	}
	if job != 0 {
		flags |= frameJobFlag
	}
	frame = append(frame, flags)
	if ti != nil {
		frame = binary.AppendUvarint(frame, ti.Lamport)
		frame = binary.AppendUvarint(frame, ti.Parent)
	}
	if job != 0 {
		frame = binary.AppendUvarint(frame, uint64(job))
	}
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	return &EncodedMessage{kind: m.Kind(), frame: frame}, nil
}

// IsFallback reports whether this frame used the gob fallback codec — the
// signal behind gridsat_comm_codec_fallback_frames_total.
func (e *EncodedMessage) IsFallback() bool {
	return len(e.frame) > 0 && e.frame[0]&^(frameTracedFlag|frameJobFlag) == frameGob
}

// HasBinaryCodec reports whether m encodes with a dedicated binary frame
// codec rather than the gob fallback. Instrumented transports use it to
// count fallback frames without re-encoding the message.
func HasBinaryCodec(m Message) bool {
	switch v := m.(type) {
	case ShareClauses, SplitPayload, StatusReport:
		return true
	case Traced:
		return HasBinaryCodec(v.Msg)
	case *EncodedMessage:
		return !v.IsFallback()
	}
	return false
}

// Decode reconstructs the message from the frame. Each call returns a
// fresh value with no aliasing into the frame, so one frame may be decoded
// independently by many receivers.
func (e *EncodedMessage) Decode() (Message, error) {
	return readMessage(bytes.NewReader(e.frame))
}

// frameReader is what readMessage needs: buffered byte-at-a-time access
// for the header plus bulk reads for the payload.
type frameReader interface {
	io.Reader
	io.ByteReader
}

// readMessage reads and decodes one frame from r. Trace-flagged frames
// come back wrapped in Traced so the receive loop can merge the clock.
func readMessage(r frameReader) (Message, error) {
	id, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	var ti *TraceInfo
	if id&frameTracedFlag != 0 {
		id &^= frameTracedFlag
		ti = &TraceInfo{}
		if ti.Lamport, err = binary.ReadUvarint(r); err != nil {
			return nil, fmt.Errorf("comm: trace header: %w", err)
		}
		if ti.Parent, err = binary.ReadUvarint(r); err != nil {
			return nil, fmt.Errorf("comm: trace header: %w", err)
		}
	}
	job := uint64(0)
	if id&frameJobFlag != 0 {
		id &^= frameJobFlag
		if job, err = binary.ReadUvarint(r); err != nil {
			return nil, fmt.Errorf("comm: job header: %w", err)
		}
		if job > 1<<31 {
			return nil, fmt.Errorf("comm: job tag %d out of range", job)
		}
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("comm: frame length: %w", err)
	}
	if n > maxFramePayload {
		return nil, fmt.Errorf("comm: frame payload %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("comm: frame body: %w", err)
	}
	m, err := decodePayload(id, payload)
	if err != nil {
		return m, err
	}
	if job != 0 {
		m = withJob(m, int(job))
	}
	if ti == nil {
		return m, nil
	}
	return Traced{Info: *ti, Msg: m}, nil
}

// withJob stamps a frame-header job tag onto the decoded binary message.
// Gob frames never carry the flag (the job travels inside the blob), so
// unknown kinds pass through untouched.
func withJob(m Message, job int) Message {
	switch v := m.(type) {
	case ShareClauses:
		v.Job = job
		return v
	case SplitPayload:
		v.Job = job
		return v
	case StatusReport:
		v.Job = job
		return v
	}
	return m
}

func decodePayload(id byte, payload []byte) (Message, error) {
	switch id {
	case frameGob:
		var m Message
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
			return nil, fmt.Errorf("comm: gob frame: %w", err)
		}
		return m, nil
	case frameShare:
		return decodeShare(payload)
	case frameSplit:
		return decodeSplit(payload)
	case frameStatus:
		return decodeStatus(payload)
	default:
		return nil, fmt.Errorf("comm: unknown frame codec 0x%02x", id)
	}
}

// WireSize returns the exact frame size m occupies on the wire, used by
// transport instrumentation. It returns 0 when m cannot be encoded.
func WireSize(m Message) int64 {
	if e, ok := m.(*EncodedMessage); ok {
		return int64(e.WireLen())
	}
	e, err := EncodeMessage(m)
	if err != nil {
		return 0
	}
	return int64(e.WireLen())
}

// ---- varint / zigzag helpers ----

func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v<<1)^uint64(v>>63))
}

func readZigzag(r io.ByteReader) (int64, error) {
	u, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

// ---- bit-level clause block codec ----

// bitWriter packs bits LSB-first into a byte slice.
type bitWriter struct {
	buf  []byte
	acc  uint64
	nacc uint
	// stk is writeInterior's pending-subrange stack. It lives here, not in
	// a local array, so it is zeroed once per block rather than once per
	// clause, and its scalar-only frames never trip GC write barriers.
	stk [28]interiorFrame
}

// interiorFrame is a deferred writeInterior subrange: clause indices plus
// the value bounds. Scalars only — see bitWriter.stk.
type interiorFrame struct {
	start, end int32
	lo, hi     uint32
}

// writeBits appends the low n bits of v (n ≤ 32). The accumulator holds
// under 32 pending bits between calls, so a 32-bit write never overflows
// it, and full 4-byte chunks flush in one append.
func (w *bitWriter) writeBits(v uint64, n uint) {
	w.acc |= (v & (1<<n - 1)) << w.nacc
	w.nacc += n
	if w.nacc >= 32 {
		w.buf = append(w.buf, byte(w.acc), byte(w.acc>>8), byte(w.acc>>16), byte(w.acc>>24))
		w.acc >>= 32
		w.nacc -= 32
	}
}

// writeGamma writes n ≥ 1 in Elias-gamma form: k-1 zero bits, a one bit,
// then the low k-1 bits of n, where k = bit length of n. Small values —
// the overwhelmingly common case — go out in a single writeBits call.
func (w *bitWriter) writeGamma(n uint64) {
	k := uint(bits.Len64(n))
	if k <= 16 {
		low := n & (1<<(k-1) - 1)
		w.writeBits(1<<(k-1)|low<<k, 2*k-1)
		return
	}
	z := k - 1
	for z > 32 {
		w.writeBits(0, 32)
		z -= 32
	}
	w.writeBits(0, z)
	w.writeBits(1, 1)
	if k-1 > 32 {
		w.writeBits(n, 32)
		w.writeBits(n>>32, k-1-32)
	} else {
		w.writeBits(n, k-1) // low k-1 bits; the leading one is the stop bit
	}
}

func (w *bitWriter) finish() []byte {
	for w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		if w.nacc >= 8 {
			w.nacc -= 8
		} else {
			w.nacc = 0
		}
	}
	return w.buf
}

// bitReader mirrors bitWriter.
type bitReader struct {
	buf  []byte
	pos  int
	acc  uint64
	nacc uint
}

var errBitStream = errors.New("comm: truncated clause bitstream")

func (r *bitReader) readBits(n uint) (uint64, error) {
	for r.nacc < n {
		if r.pos >= len(r.buf) {
			return 0, errBitStream
		}
		r.acc |= uint64(r.buf[r.pos]) << r.nacc
		r.pos++
		r.nacc += 8
	}
	v := r.acc & (1<<n - 1)
	r.acc >>= n
	r.nacc -= n
	return v, nil
}

func (r *bitReader) readGamma() (uint64, error) {
	var zeros uint
	for {
		b, err := r.readBits(1)
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 57 {
			return 0, errBitStream
		}
	}
	low, err := r.readBits(zeros)
	if err != nil {
		return 0, err
	}
	return 1<<zeros | low, nil
}

// canonicalize returns the batch in codec-canonical form: a fresh clause
// slice, literals strictly ascending within each clause, clauses ordered
// shortest first and lexicographically within a length. Input clauses are
// never modified; clauses that are already strictly increasing — the
// common case, since the share aggregator normalizes at learn time — are
// aliased rather than cloned, so a canonical batch encodes without any
// per-literal copying or sorting.
func canonicalize(cs []cnf.Clause) []cnf.Clause {
	dirty := 0 // total literals across clauses that still need clone+sort
	for _, c := range cs {
		if !strictlyIncreasing(c) {
			dirty += len(c)
		}
	}
	// One backing array for every clone; clauses are short and many, so
	// per-clause allocations would dominate the encode cost.
	var backing cnf.Clause
	if dirty > 0 {
		backing = make(cnf.Clause, dirty)
	}
	out := make([]cnf.Clause, len(cs))
	for i, c := range cs {
		if strictlyIncreasing(c) {
			out[i] = c
			continue
		}
		s := backing[:len(c):len(c)]
		backing = backing[len(c):]
		copy(s, c)
		sortLits(s)
		// Drop duplicate literals: semantically free (receivers normalize)
		// and it makes every canonical clause strictly increasing, which
		// the interior coder's range tightening relies on.
		w := 0
		for j, l := range s {
			if j == 0 || l != s[w-1] {
				s[w] = l
				w++
			}
		}
		out[i] = s[:w]
	}
	sortClauses(out)
	return out
}

// strictlyIncreasing reports whether c is already in canonical literal
// order: sorted ascending with no duplicates.
func strictlyIncreasing(c cnf.Clause) bool {
	for i := 1; i < len(c); i++ {
		if c[i] <= c[i-1] {
			return false
		}
	}
	return true
}

// clauseLess orders clauses shortest first, lexicographically within a
// length. Most comparisons resolve on length alone.
func clauseLess(x, y cnf.Clause) bool {
	if len(x) != len(y) {
		return len(x) < len(y)
	}
	for i := range x {
		if x[i] != y[i] {
			return x[i] < y[i]
		}
	}
	return false
}

// sortClauses orders a batch with clauseLess: insertion sort for the batch
// sizes the share aggregator flushes, generic sort above that.
func sortClauses(out []cnf.Clause) {
	if len(out) > 64 {
		slices.SortFunc(out, func(x, y cnf.Clause) int {
			switch {
			case clauseLess(x, y):
				return -1
			case clauseLess(y, x):
				return 1
			}
			return 0
		})
		return
	}
	for i := 1; i < len(out); i++ {
		c := out[i]
		j := i - 1
		for j >= 0 && clauseLess(c, out[j]) {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = c
	}
}

// sortLits orders a clause's literals ascending: insertion sort for the
// very short clauses that dominate share traffic, generic pdqsort above
// that — both avoid sort.Slice's interface dispatch.
func sortLits(c cnf.Clause) {
	if len(c) > 48 {
		slices.Sort(c)
		return
	}
	for i := 1; i < len(c); i++ {
		v := c[i]
		j := i - 1
		for j >= 0 && c[j] > v {
			c[j+1] = c[j]
			j--
		}
		c[j+1] = v
	}
}

// appendClauseBlock encodes cs in canonical order: a uvarint clause count,
// a uvarint block-wide maximum literal, then a bitstream of per-clause
// (length delta, first-literal delta, interior). Lengths are
// non-decreasing in canonical order, so length deltas are tiny; first
// literals within a length group are non-decreasing too, so their zigzag
// deltas stay small; the remaining sorted literals are binary-
// interpolative coded within [first, maxLit].
func appendClauseBlock(b []byte, cs []cnf.Clause) []byte {
	cs = canonicalize(cs)
	b = binary.AppendUvarint(b, uint64(len(cs)))
	if len(cs) == 0 {
		return b
	}
	var maxLit uint32
	for _, c := range cs {
		for _, l := range c {
			if uint32(l) > maxLit {
				maxLit = uint32(l)
			}
		}
	}
	b = binary.AppendUvarint(b, uint64(maxLit))
	var total int
	for _, c := range cs {
		total += len(c)
	}
	// Presize for ~2 B per literal plus per-clause headers; the codec
	// lands well under that, so appends never reallocate mid-encode.
	w := bitWriter{buf: make([]byte, 0, 2*total+4*len(cs)+8)}
	prevLen := uint64(0)
	prevFirst := int64(0)
	for _, c := range cs {
		l := uint64(len(c))
		w.writeGamma(l - prevLen + 1)
		prevLen = l
		if l == 0 {
			continue
		}
		first := int64(c[0])
		d := first - prevFirst
		w.writeGamma(uint64(d<<1) ^ uint64(d>>63) + 1)
		prevFirst = first
		if l > 1 {
			w.writeInterior(c[1:], uint32(first), maxLit)
		}
	}
	return append(b, w.finish()...)
}

// Bounded values x ∈ [0, r] use a minimal (phase-in) binary code: with
// n = r+1 possible values and k = bit length of r, the u = 2^k - n
// smallest values cost k-1 bits and the rest k bits. Stream layout is a
// k-1 bit field, then — for the long codewords only — one extra bit, so
// the LSB-first reader can decide after the first field. The writer side
// lives inlined in writeInterior, its only call site; readBounded is the
// matching decoder.
func (r *bitReader) readBounded(rng uint32) (uint32, error) {
	if rng == 0 {
		return 0, nil
	}
	k := uint(bits.Len32(rng))
	u := uint32(1)<<k - rng - 1
	y, err := r.readBits(k - 1)
	if err != nil {
		return 0, err
	}
	if uint32(y) < u {
		return uint32(y), nil
	}
	b, err := r.readBits(1)
	if err != nil {
		return 0, err
	}
	x := u + ((uint32(y)-u)<<1 | uint32(b))
	if x > rng {
		return 0, errBitStream
	}
	return x, nil
}

// writeInterior emits the strictly-increasing tail of a canonical clause
// by binary interpolative coding: the middle literal is written in a
// minimal binary code for its feasible range — tightened by the bounds
// AND by how many distinct literals must fit on either side — then each
// half recurses. Clustered literal sets cost well under a fixed-width gap
// code, and no per-clause width field is needed.
//
// Invariant: all values of s lie in (lo, hi] and are strictly increasing.
func (w *bitWriter) writeInterior(s cnf.Clause, lo, hi uint32) {
	// The right half is handled iteratively (tail-call turned into a
	// loop) and empty halves never recurse, which roughly halves the
	// call count on this hot path.
	// Fully iterative DFS (mid, left subtree, right subtree): right halves
	// wait on an explicit stack while the left spine is walked, and the
	// bit accumulator stays in registers for the whole clause instead of
	// round-tripping through the struct on every literal. Depth is bounded
	// by log2 of the clause length cap (1<<20), so the stack is fixed-size.
	acc, nacc, buf := w.acc, w.nacc, w.buf
	start, end := int32(0), int32(len(s))
	sp := 0
	for {
		for start < end {
			m := (end - start) / 2
			v := uint32(s[start+m])
			minV := lo + uint32(m) + 1
			// writeBounded(v-minV, maxV-minV), inlined against the local
			// accumulator.
			if rng := hi - uint32(end-start-1-m) - minV; rng != 0 {
				x := v - minV
				k := uint(bits.Len32(rng))
				u := uint32(1)<<k - rng - 1
				var vb uint64
				var nb uint
				if x < u {
					vb, nb = uint64(x), k-1
				} else {
					vb = uint64(u+(x-u)>>1) | (uint64(x-u)&1)<<(k-1)
					nb = k
				}
				acc |= (vb & (1<<nb - 1)) << nacc
				nacc += nb
				if nacc >= 32 {
					buf = append(buf, byte(acc), byte(acc>>8), byte(acc>>16), byte(acc>>24))
					acc >>= 32
					nacc -= 32
				}
			}
			if start+m+1 < end {
				w.stk[sp] = interiorFrame{start: start + m + 1, end: end, lo: v, hi: hi}
				sp++
			}
			end, hi = start+m, v-1
		}
		if sp == 0 {
			break
		}
		sp--
		f := w.stk[sp]
		start, end, lo, hi = f.start, f.end, f.lo, f.hi
	}
	w.acc, w.nacc, w.buf = acc, nacc, buf
}

// readInterior mirrors writeInterior into s, which already has its length.
func (r *bitReader) readInterior(s cnf.Clause, lo, hi uint32) error {
	for len(s) > 0 {
		if uint64(hi)-uint64(lo) < uint64(len(s)) {
			return errBitStream // no strictly-increasing fit: corrupt frame
		}
		m := len(s) / 2
		minV := lo + uint32(m) + 1
		maxV := hi - uint32(len(s)-1-m)
		x, err := r.readBounded(maxV - minV)
		if err != nil {
			return err
		}
		v := minV + x
		s[m] = cnf.Lit(v)
		if m > 0 {
			if err := r.readInterior(s[:m], lo, v-1); err != nil {
				return err
			}
		}
		s = s[m+1:]
		lo = v
	}
	return nil
}

// readClauseBlock decodes a clause block; buf must start at the uvarint
// clause count and extend at least to the end of the bitstream.
func readClauseBlock(buf []byte) ([]cnf.Clause, []byte, error) {
	br := bytes.NewReader(buf)
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, err
	}
	if n > maxClausesPerFrame {
		return nil, nil, fmt.Errorf("comm: clause count %d exceeds limit", n)
	}
	rest := buf[len(buf)-br.Len():]
	if n == 0 {
		return []cnf.Clause{}, rest, nil
	}
	maxLit, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, err
	}
	if maxLit > uint64(^uint32(0)) {
		return nil, nil, fmt.Errorf("comm: max literal %d out of range", maxLit)
	}
	rest = buf[len(buf)-br.Len():]
	r := bitReader{buf: rest}
	out := make([]cnf.Clause, 0, n)
	prevLen := uint64(0)
	prevFirst := int64(0)
	for i := uint64(0); i < n; i++ {
		g, err := r.readGamma()
		if err != nil {
			return nil, nil, err
		}
		l := prevLen + g - 1
		if l > 1<<20 {
			return nil, nil, fmt.Errorf("comm: clause length %d exceeds limit", l)
		}
		prevLen = l
		c := make(cnf.Clause, l)
		if l == 0 {
			out = append(out, c)
			continue
		}
		g, err = r.readGamma()
		if err != nil {
			return nil, nil, err
		}
		u := g - 1
		first := prevFirst + (int64(u>>1) ^ -int64(u&1))
		if first < 0 || first > int64(maxLit) {
			return nil, nil, fmt.Errorf("comm: literal %d out of range", first)
		}
		prevFirst = first
		c[0] = cnf.Lit(first)
		if l > 1 {
			if err := r.readInterior(c[1:], uint32(first), uint32(maxLit)); err != nil {
				return nil, nil, err
			}
		}
		out = append(out, c)
	}
	return out, rest[r.pos:], nil
}

// ---- per-kind binary encoders ----

func encodeShare(m ShareClauses) []byte {
	b := appendZigzag(nil, int64(m.From))
	return appendClauseBlock(b, m.Clauses)
}

func decodeShare(payload []byte) (Message, error) {
	br := bytes.NewReader(payload)
	from, err := readZigzag(br)
	if err != nil {
		return nil, err
	}
	cs, _, err := readClauseBlock(payload[len(payload)-br.Len():])
	if err != nil {
		return nil, err
	}
	return ShareClauses{From: int(from), Clauses: cs}, nil
}

// encodeSplit packs a subproblem batch: zigzag SplitID and From, a
// uvarint subproblem count, then each subproblem's header, assumption
// list, and clause block back to back. Clause blocks self-delimit
// (readClauseBlock returns the leftover bytes), so no per-subproblem
// length prefix is needed.
func encodeSplit(m SplitPayload) []byte {
	b := appendZigzag(nil, int64(m.SplitID))
	b = appendZigzag(b, int64(m.From))
	b = binary.AppendUvarint(b, uint64(len(m.Subs)))
	for _, sub := range m.Subs {
		b = appendZigzag(b, int64(sub.NumVars))
		b = appendZigzag(b, int64(sub.Depth))
		// Assumptions are a trail prefix: order is meaningful, keep it
		// verbatim.
		b = binary.AppendUvarint(b, uint64(len(sub.Assumptions)))
		for _, l := range sub.Assumptions {
			b = binary.AppendUvarint(b, uint64(l))
		}
		b = appendClauseBlock(b, sub.Learnts)
	}
	return b
}

func decodeSplit(payload []byte) (Message, error) {
	br := bytes.NewReader(payload)
	splitID, err := readZigzag(br)
	if err != nil {
		return nil, err
	}
	from, err := readZigzag(br)
	if err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if count > maxClausesPerFrame {
		return nil, fmt.Errorf("comm: subproblem count %d exceeds limit", count)
	}
	out := SplitPayload{SplitID: int(splitID), From: int(from)}
	rest := payload[len(payload)-br.Len():]
	for i := uint64(0); i < count; i++ {
		var sub *solver.Subproblem
		sub, rest, err = decodeSubproblem(rest)
		if err != nil {
			return nil, err
		}
		out.Subs = append(out.Subs, sub)
	}
	return out, nil
}

// decodeSubproblem reads one subproblem off buf, returning the leftover
// bytes so batch members decode back to back.
func decodeSubproblem(buf []byte) (*solver.Subproblem, []byte, error) {
	br := bytes.NewReader(buf)
	nv, err := readZigzag(br)
	if err != nil {
		return nil, nil, err
	}
	depth, err := readZigzag(br)
	if err != nil {
		return nil, nil, err
	}
	na, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, err
	}
	if na > maxClausesPerFrame {
		return nil, nil, fmt.Errorf("comm: assumption count %d exceeds limit", na)
	}
	sub := &solver.Subproblem{NumVars: int(nv), Depth: int(depth)}
	if na > 0 {
		sub.Assumptions = make([]cnf.Lit, na)
		for i := range sub.Assumptions {
			u, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, nil, err
			}
			if u > uint64(^uint32(0)) {
				return nil, nil, fmt.Errorf("comm: literal %d out of range", u)
			}
			sub.Assumptions[i] = cnf.Lit(u)
		}
	}
	cs, rest, err := readClauseBlock(buf[len(buf)-br.Len():])
	if err != nil {
		return nil, nil, err
	}
	if len(cs) > 0 {
		sub.Learnts = cs
	}
	return sub, rest, nil
}

func encodeStatus(m StatusReport) []byte {
	b := appendZigzag(nil, int64(m.ClientID))
	b = appendZigzag(b, m.MemBytes)
	b = appendZigzag(b, int64(m.Learnts))
	b = appendZigzag(b, m.Conflicts)
	if m.Busy {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendZigzag(b, int64(m.Depth))
	b = appendZigzag(b, m.Deltas.Decisions)
	b = appendZigzag(b, m.Deltas.Conflicts)
	b = appendZigzag(b, m.Deltas.Propagations)
	b = appendZigzag(b, m.Deltas.Implications)
	b = appendZigzag(b, m.Deltas.Learned)
	b = appendZigzag(b, m.Deltas.ReclaimedBytes)
	b = appendZigzag(b, m.Deltas.Imported)
	b = appendZigzag(b, m.Deltas.ImportedImplications)
	b = appendZigzag(b, m.Deltas.ImportedResolutions)
	b = appendZigzag(b, m.Deltas.ImportedUseful)
	return b
}

func decodeStatus(payload []byte) (Message, error) {
	br := bytes.NewReader(payload)
	var out StatusReport
	id, err := readZigzag(br)
	if err != nil {
		return nil, err
	}
	out.ClientID = int(id)
	if out.MemBytes, err = readZigzag(br); err != nil {
		return nil, err
	}
	learnts, err := readZigzag(br)
	if err != nil {
		return nil, err
	}
	out.Learnts = int(learnts)
	if out.Conflicts, err = readZigzag(br); err != nil {
		return nil, err
	}
	busy, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	out.Busy = busy != 0
	depth, err := readZigzag(br)
	if err != nil {
		return nil, err
	}
	out.Depth = int(depth)
	for _, p := range []*int64{
		&out.Deltas.Decisions, &out.Deltas.Conflicts, &out.Deltas.Propagations,
		&out.Deltas.Implications, &out.Deltas.Learned, &out.Deltas.ReclaimedBytes,
		&out.Deltas.Imported, &out.Deltas.ImportedImplications,
		&out.Deltas.ImportedResolutions, &out.Deltas.ImportedUseful,
	} {
		if *p, err = readZigzag(br); err != nil {
			return nil, err
		}
	}
	return out, nil
}
