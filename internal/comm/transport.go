package comm

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Conn is a bidirectional, message-oriented connection.
type Conn interface {
	Send(Message) error
	Recv() (Message, error)
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the dialable address of this listener.
	Addr() string
}

// Transport abstracts the wire so the same master/client code runs over
// TCP in a real deployment or over channels inside one process.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// ---- TCP transport ----

// TCPTransport sends gob-encoded messages over TCP.
type TCPTransport struct{}

// Listen implements Transport. addr may use ":0" for an ephemeral port;
// the listener's Addr reports the bound address.
func (TCPTransport) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial implements Transport.
func (TCPTransport) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newGobConn(c), nil
}

type tcpListener struct{ l net.Listener }

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return newGobConn(c), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

type gobConn struct {
	c      net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	sendMu sync.Mutex
	recvMu sync.Mutex
}

func newGobConn(c net.Conn) *gobConn {
	return &gobConn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

func (g *gobConn) Send(m Message) error {
	g.sendMu.Lock()
	defer g.sendMu.Unlock()
	return g.enc.Encode(&m)
}

func (g *gobConn) Recv() (Message, error) {
	g.recvMu.Lock()
	defer g.recvMu.Unlock()
	var m Message
	if err := g.dec.Decode(&m); err != nil {
		return nil, err
	}
	return m, nil
}

func (g *gobConn) Close() error { return g.c.Close() }

// ---- In-process transport ----

// InprocTransport connects endpoints inside one process through buffered
// channels. Addresses are arbitrary strings scoped to the transport
// instance. Useful for tests and single-machine distributed runs.
type InprocTransport struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
	nextAuto  int
}

// NewInprocTransport returns an empty address space.
func NewInprocTransport() *InprocTransport {
	return &InprocTransport{listeners: map[string]*inprocListener{}}
}

// Listen implements Transport; an empty addr auto-allocates one.
func (t *InprocTransport) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if addr == "" {
		t.nextAuto++
		addr = fmt.Sprintf("inproc-%d", t.nextAuto)
	}
	if _, ok := t.listeners[addr]; ok {
		return nil, fmt.Errorf("comm: address %q already bound", addr)
	}
	l := &inprocListener{t: t, addr: addr, accept: make(chan Conn, 16), done: make(chan struct{})}
	t.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (t *InprocTransport) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	l, ok := t.listeners[addr]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("comm: no listener at %q", addr)
	}
	a, b := NewPipe()
	select {
	case l.accept <- b:
		return a, nil
	case <-l.done:
		return nil, fmt.Errorf("comm: listener %q closed", addr)
	}
}

type inprocListener struct {
	t      *InprocTransport
	addr   string
	accept chan Conn
	done   chan struct{}
	once   sync.Once
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, errors.New("comm: listener closed")
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.t.mu.Lock()
		delete(l.t.listeners, l.addr)
		l.t.mu.Unlock()
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

// NewPipe returns two connected in-process conn endpoints.
func NewPipe() (Conn, Conn) {
	ab := make(chan Message, 64)
	ba := make(chan Message, 64)
	done := make(chan struct{})
	var once sync.Once
	closeFn := func() { once.Do(func() { close(done) }) }
	a := &pipeConn{out: ab, in: ba, done: done, close: closeFn}
	b := &pipeConn{out: ba, in: ab, done: done, close: closeFn}
	return a, b
}

type pipeConn struct {
	out   chan Message
	in    chan Message
	done  chan struct{}
	close func()
}

func (p *pipeConn) Send(m Message) error {
	select {
	case <-p.done:
		return errors.New("comm: pipe closed")
	default:
	}
	select {
	case p.out <- m:
		return nil
	case <-p.done:
		return errors.New("comm: pipe closed")
	}
}

func (p *pipeConn) Recv() (Message, error) {
	select {
	case m := <-p.in:
		return m, nil
	case <-p.done:
		// Drain anything already queued before reporting closure.
		select {
		case m := <-p.in:
			return m, nil
		default:
			return nil, errors.New("comm: pipe closed")
		}
	}
}

func (p *pipeConn) Close() error {
	p.close()
	return nil
}
