package comm

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Conn is a bidirectional, message-oriented connection.
type Conn interface {
	Send(Message) error
	// SendEncoded writes a pre-serialized frame. A broadcast can encode a
	// message once with EncodeMessage and hand the identical EncodedMessage
	// to every peer connection, skipping per-peer serialization.
	SendEncoded(*EncodedMessage) error
	Recv() (Message, error)
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the dialable address of this listener.
	Addr() string
}

// Transport abstracts the wire so the same master/client code runs over
// TCP in a real deployment or over channels inside one process.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// ---- TCP transport ----

// TCPTransport sends length-prefixed binary frames over TCP (see codec.go
// for the frame format).
type TCPTransport struct{}

// Listen implements Transport. addr may use ":0" for an ephemeral port;
// the listener's Addr reports the bound address.
func (TCPTransport) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial implements Transport.
func (TCPTransport) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newFrameConn(c), nil
}

type tcpListener struct{ l net.Listener }

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return newFrameConn(c), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// frameConn moves codec frames over a byte stream. Frames are
// self-describing (codec byte + length prefix), so Send can pick the
// binary encoding per kind while the peer decodes without negotiation.
type frameConn struct {
	c      net.Conn
	w      *bufio.Writer
	r      *bufio.Reader
	sendMu sync.Mutex
	recvMu sync.Mutex
}

func newFrameConn(c net.Conn) *frameConn {
	return &frameConn{c: c, w: bufio.NewWriter(c), r: bufio.NewReader(c)}
}

func (f *frameConn) Send(m Message) error {
	e, err := EncodeMessage(m)
	if err != nil {
		return err
	}
	return f.SendEncoded(e)
}

func (f *frameConn) SendEncoded(e *EncodedMessage) error {
	f.sendMu.Lock()
	defer f.sendMu.Unlock()
	if _, err := f.w.Write(e.frame); err != nil {
		return err
	}
	return f.w.Flush()
}

func (f *frameConn) Recv() (Message, error) {
	f.recvMu.Lock()
	defer f.recvMu.Unlock()
	return readMessage(f.r)
}

func (f *frameConn) Close() error { return f.c.Close() }

// ---- In-process transport ----

// InprocTransport connects endpoints inside one process through buffered
// channels. Addresses are arbitrary strings scoped to the transport
// instance. Useful for tests and single-machine distributed runs.
type InprocTransport struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
	nextAuto  int
}

// NewInprocTransport returns an empty address space.
func NewInprocTransport() *InprocTransport {
	return &InprocTransport{listeners: map[string]*inprocListener{}}
}

// Listen implements Transport; an empty addr auto-allocates one.
func (t *InprocTransport) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if addr == "" {
		t.nextAuto++
		addr = fmt.Sprintf("inproc-%d", t.nextAuto)
	}
	if _, ok := t.listeners[addr]; ok {
		return nil, fmt.Errorf("comm: address %q already bound", addr)
	}
	l := &inprocListener{t: t, addr: addr, accept: make(chan Conn, 16), done: make(chan struct{})}
	t.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (t *InprocTransport) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	l, ok := t.listeners[addr]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("comm: no listener at %q", addr)
	}
	a, b := NewPipe()
	select {
	case l.accept <- b:
		return a, nil
	case <-l.done:
		return nil, fmt.Errorf("comm: listener %q closed", addr)
	}
}

type inprocListener struct {
	t      *InprocTransport
	addr   string
	accept chan Conn
	done   chan struct{}
	once   sync.Once
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, errors.New("comm: listener closed")
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.t.mu.Lock()
		delete(l.t.listeners, l.addr)
		l.t.mu.Unlock()
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

// NewPipe returns two connected in-process conn endpoints.
func NewPipe() (Conn, Conn) {
	ab := make(chan Message, 64)
	ba := make(chan Message, 64)
	done := make(chan struct{})
	var once sync.Once
	closeFn := func() { once.Do(func() { close(done) }) }
	a := &pipeConn{out: ab, in: ba, done: done, close: closeFn}
	b := &pipeConn{out: ba, in: ab, done: done, close: closeFn}
	return a, b
}

type pipeConn struct {
	out   chan Message
	in    chan Message
	done  chan struct{}
	close func()
}

func (p *pipeConn) Send(m Message) error {
	select {
	case <-p.done:
		return errors.New("comm: pipe closed")
	default:
	}
	select {
	case p.out <- m:
		return nil
	case <-p.done:
		return errors.New("comm: pipe closed")
	}
}

// SendEncoded delivers the frame itself; the receiving end decodes it in
// Recv, so every receiver of a fanned-out EncodedMessage gets its own
// fresh copy with no shared clause storage.
func (p *pipeConn) SendEncoded(e *EncodedMessage) error {
	return p.Send(e)
}

func (p *pipeConn) Recv() (Message, error) {
	select {
	case m := <-p.in:
		return pipeDecode(m)
	case <-p.done:
		// Drain anything already queued before reporting closure.
		select {
		case m := <-p.in:
			return pipeDecode(m)
		default:
			return nil, errors.New("comm: pipe closed")
		}
	}
}

// pipeDecode unwraps frames that arrived via SendEncoded. Plain messages
// pass through by reference (the in-process fast path).
func pipeDecode(m Message) (Message, error) {
	if e, ok := m.(*EncodedMessage); ok {
		return e.Decode()
	}
	return m, nil
}

func (p *pipeConn) Close() error {
	p.close()
	return nil
}
