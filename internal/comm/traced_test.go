package comm

import (
	"sync"
	"testing"

	"gridsat/internal/obs"
	"gridsat/internal/solver"
)

func TestTracedEnvelopeBinaryRoundtrip(t *testing.T) {
	inner := StatusReport{ClientID: 3, Busy: true, Deltas: SolverDeltas{Conflicts: 42}}
	in := Traced{Info: TraceInfo{Lamport: 1234, Parent: 77}, Msg: inner}
	e, err := EncodeMessage(in)
	if err != nil {
		t.Fatal(err)
	}
	if e.frame[0]&frameTracedFlag == 0 {
		t.Fatalf("frame byte %#x missing traced flag", e.frame[0])
	}
	if e.IsFallback() {
		t.Error("status has a binary codec; traced wrapper must not force gob")
	}
	got, err := e.Decode()
	if err != nil {
		t.Fatal(err)
	}
	msg, ti := Unwrap(got)
	if ti != in.Info {
		t.Fatalf("trace info %+v, want %+v", ti, in.Info)
	}
	out, ok := msg.(StatusReport)
	if !ok || out.ClientID != 3 || out.Deltas.Conflicts != 42 || !out.Busy {
		t.Fatalf("payload mangled: %+v", msg)
	}
}

func TestTracedEnvelopeOverTCP(t *testing.T) {
	tr := TCPTransport{}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c
	}()
	client, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Traced and untraced frames interleave on one connection: the
		// trace flag is per frame, not per session.
		_ = client.Send(Traced{
			Info: TraceInfo{Lamport: 9, Parent: 2},
			Msg:  SplitRequest{ClientID: 1, Why: SplitTimeout},
		})
		_ = client.Send(SplitRequest{ClientID: 1, Why: SplitMemoryPressure})
		_ = client.Send(Traced{
			Info: TraceInfo{Lamport: 11},
			Msg:  Solved{ClientID: 1, Status: solver.StatusUNSAT},
		})
	}()

	first, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	msg, ti := Unwrap(first)
	if ti.Lamport != 9 || ti.Parent != 2 {
		t.Fatalf("first frame trace info %+v", ti)
	}
	if req, ok := msg.(SplitRequest); !ok || req.Why != SplitTimeout {
		t.Fatalf("first payload %+v", msg)
	}
	second, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ti := Unwrap(second); ti != (TraceInfo{}) {
		t.Fatalf("untraced frame grew trace info %+v", ti)
	}
	third, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	msg, ti = Unwrap(third)
	if ti.Lamport != 11 || ti.Parent != 0 {
		t.Fatalf("third frame trace info %+v", ti)
	}
	if sv, ok := msg.(Solved); !ok || sv.Status != solver.StatusUNSAT {
		t.Fatalf("third payload %+v", msg)
	}
	wg.Wait()
}

func TestTracedKindAndWireSize(t *testing.T) {
	w := Traced{Info: TraceInfo{Lamport: 5}, Msg: Shutdown{}}
	if w.Kind() != "shutdown" {
		t.Fatalf("kind = %q", w.Kind())
	}
	plain := WireSize(Shutdown{})
	traced := WireSize(w)
	// Envelope cost: two uvarints (here 1 byte each) on top of the frame.
	if traced <= plain || traced > plain+10 {
		t.Fatalf("traced wire size %d vs plain %d: envelope overhead wrong", traced, plain)
	}
}

func TestClockTickAndObserve(t *testing.T) {
	var c Clock
	if c.Tick() != 1 || c.Tick() != 2 {
		t.Fatal("tick sequence wrong")
	}
	if got := c.Observe(10); got != 11 {
		t.Fatalf("observe(10) = %d, want 11", got)
	}
	// Observing the past still advances by one.
	if got := c.Observe(3); got != 12 {
		t.Fatalf("observe(3) = %d, want 12", got)
	}
	if c.Now() != 12 {
		t.Fatalf("now = %d", c.Now())
	}
}

func TestClockConcurrentMonotonic(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if g%2 == 0 {
					c.Tick()
				} else {
					c.Observe(uint64(i))
				}
			}
		}(g)
	}
	wg.Wait()
	// 4 goroutines tick 1000 times each; observes add at least one each.
	if c.Now() < 8000 {
		t.Fatalf("clock lost updates: %d", c.Now())
	}
}

// TestFallbackFrameCounter pins the satellite metric: gob-encoded frames
// (messages without a dedicated binary codec) increment
// gridsat_comm_codec_fallback_frames_total, binary frames do not.
func TestFallbackFrameCounter(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	tr := Instrument(NewInprocTransport(), m)
	l, err := tr.Listen("master")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c
	}()
	client, err := tr.Dial("master")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted

	// Binary-codec kinds: no fallback counted.
	for _, msg := range []Message{
		StatusReport{ClientID: 1},
		ShareClauses{From: 1},
		Traced{Info: TraceInfo{Lamport: 1}, Msg: StatusReport{ClientID: 1}},
	} {
		if err := client.Send(msg); err != nil {
			t.Fatal(err)
		}
		if _, err := server.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.FallbackFrames(); got != 0 {
		t.Fatalf("fallback frames after binary sends = %d, want 0", got)
	}

	// Gob-only kinds fall back, traced or not.
	for _, msg := range []Message{
		Register{Addr: "a", HostName: "h"},
		Traced{Info: TraceInfo{Lamport: 2}, Msg: Register{Addr: "b", HostName: "h"}},
	} {
		if err := client.Send(msg); err != nil {
			t.Fatal(err)
		}
		if _, err := server.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.FallbackFrames(); got != 2 {
		t.Fatalf("fallback frames = %d, want 2", got)
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("gridsat_comm_codec_fallback_frames_total"); got != 2 {
		t.Fatalf("registry fallback counter = %d, want 2", got)
	}
}
