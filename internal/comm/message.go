// Package comm is GridSAT's messaging layer, standing in for the EveryWare
// toolkit the paper built on. It defines the typed messages of the
// master–client protocol (including the five-message split exchange of
// Figure 3), a framed binary wire codec — bit-packed clause blocks for the
// hot clause-bearing kinds, gob fallback frames for cold control messages —
// and two interchangeable transports: real TCP (net) for deployment and an
// in-process channel transport for tests and single-machine runs.
package comm

import (
	"encoding/gob"

	"gridsat/internal/cnf"
	"gridsat/internal/solver"
)

// Message is the envelope interface every protocol message implements.
type Message interface {
	// Kind returns a short human-readable message-type tag, used by
	// instrumentation and the Figure-3 trace test.
	Kind() string
}

// Register is the first message a freshly launched client sends to the
// master (paper §3.3: "When a client starts successfully it contacts the
// master and registers with it").
type Register struct {
	Addr     string // address peers can dial for P2P transfers
	HostName string
	// FreeMemBytes is the client's measured free memory; the master
	// refuses clients below the minimum (128 MB in the paper).
	FreeMemBytes int64
	SpeedHint    float64
}

// Kind implements Message.
func (Register) Kind() string { return "register" }

// RegisterAck assigns the client its ID.
type RegisterAck struct {
	ClientID int
	// Rejected is set when the client does not meet the resource minimum.
	Rejected bool
	Reason   string
}

// Kind implements Message.
func (RegisterAck) Kind() string { return "register-ack" }

// BaseProblem caches the original formula at a client when it registers,
// so later split payloads need only carry assumptions and learned clauses
// (the initial clauses "are obtained from the problem file", §3.4).
type BaseProblem struct {
	Formula *cnf.Formula
	// Job keys the formula to a scheduler job. 0 is the implicit
	// single-job run; a multi-job master sends one BaseProblem per job a
	// client is allocated to, and the client caches them by ID.
	Job int
}

// Kind implements Message.
func (BaseProblem) Kind() string { return "base-problem" }

// SplitRequest is Figure 3's message (1): a client predicts resource
// exhaustion or hits its split timeout and asks the master for help.
type SplitRequest struct {
	ClientID int
	// Why distinguishes the paper's two triggers.
	Why SplitReason
}

// Kind implements Message.
func (SplitRequest) Kind() string { return "split-request" }

// SplitReason is why a client wants to shed work.
type SplitReason int

// Split triggers (paper §3.3).
const (
	SplitMemoryPressure SplitReason = iota // predicted memory exhaustion
	SplitTimeout                           // ran 2× transfer time without finishing
)

// String implements fmt.Stringer.
func (r SplitReason) String() string {
	if r == SplitMemoryPressure {
		return "memory-pressure"
	}
	return "timeout"
}

// SplitPeer identifies one recipient of a split batch: its client ID and
// the address the donor dials for the direct peer-to-peer transfer.
type SplitPeer struct {
	ID   int
	Addr string
}

// SplitAssign is Figure 3's message (2): the master tells the donor which
// idle peers will take parts of its problem, including each peer's address
// for direct client-to-client transfer. A first-decision split carries one
// peer; a 2^k dilemma split carries up to 2^k-1.
type SplitAssign struct {
	// SplitID uniquely identifies this assignment; it flows through the
	// payloads and every SplitDone notification so the master can correlate
	// them even when recipients are released and re-reserved quickly.
	SplitID int
	Peers   []SplitPeer
}

// Kind implements Message.
func (SplitAssign) Kind() string { return "split-assign" }

// SplitPayload is Figure 3's message (3) — the large peer-to-peer message
// (10 KB to 100s of MB in the paper) carrying subproblems. The donor sends
// each recipient a single-subproblem payload; a payload with several
// subproblems is a batch remainder shipped back to the master for
// backlogging (a dilemma split can produce more cofactors than there are
// idle clients to take them).
type SplitPayload struct {
	SplitID int // 0 for the master's initial whole-problem assignment
	From    int
	// Job tags the subproblems with their scheduler job (0 = the implicit
	// single job), so a multi-job recipient solves against the right base
	// formula and the master credits the right job's coverage.
	Job  int
	Subs []*solver.Subproblem
}

// Kind implements Message.
func (SplitPayload) Kind() string { return "split-payload" }

// SplitDone covers Figure 3's messages (4) and (5): each recipient and the
// donor notify the master whether their leg of the transfer succeeded.
type SplitDone struct {
	ClientID int
	// SplitID echoes the assignment being acknowledged so the master can
	// correlate donor and recipient notifications even when recipients are
	// released and re-reserved quickly; 0 acknowledges the master's
	// initial whole-problem assignment.
	SplitID int
	OK      bool
	Err     string
	// Donor-only fields. Used is how many of the assigned peers actually
	// received a subproblem — a strategy may produce a smaller batch than
	// the master reserved recipients for, and the master releases the
	// unused ones. Leftover carries cofactors beyond the assigned peers
	// for the master to backlog and hand to clients as they go idle.
	Used     int
	Leftover []*solver.Subproblem
}

// Kind implements Message.
func (SplitDone) Kind() string { return "split-done" }

// ShareClauses broadcasts freshly learned short clauses to a peer
// (paper §3.2: GridSAT shares clauses "as soon as they are generated").
type ShareClauses struct {
	From int
	// Job scopes the batch: learned clauses are only sound within the job
	// whose formula produced them, so the master fans a batch out to that
	// job's clients only and a reassigned client drops stale batches.
	Job     int
	Clauses []cnf.Clause
}

// Kind implements Message.
func (ShareClauses) Kind() string { return "share-clauses" }

// Solved reports a client's terminal result for its subproblem. A SAT
// result carries the model for the master to verify; an UNSAT result
// makes the client idle.
type Solved struct {
	ClientID int
	Status   solver.Status
	Model    cnf.Assignment
	// Depth is the guiding-path depth of the subproblem this verdict
	// closes. An UNSAT verdict at depth d refutes 2^-d of the root search
	// space; the master folds that into its cluster progress estimate.
	Depth int
	// Worker is the portfolio worker that produced the verdict (0 on
	// single-threaded clients — the pathfinder), for the flight log's
	// worker attribution.
	Worker int
	// Job attributes the verdict to a scheduler job (0 = the implicit
	// single job), so the master ignores a verdict that raced a
	// reassignment.
	Job int
}

// Kind implements Message.
func (Solved) Kind() string { return "solved" }

// Migrate directs a client to hand its whole problem (not a split) to the
// given peer — the master's migration of long-running subproblems toward
// better-connected resources (paper §3.4).
type Migrate struct {
	PeerID   int
	PeerAddr string
}

// Kind implements Message.
func (Migrate) Kind() string { return "migrate" }

// Shutdown tells a client to exit.
type Shutdown struct{}

// Kind implements Message.
func (Shutdown) Kind() string { return "shutdown" }

// Preempt directs a client to checkpoint its current subproblem and hand
// it back to the master, so the scheduler can reassign the client to
// another job. It reuses the §3.4 checkpoint machinery that Migrate uses,
// but the subproblem returns to the owning job's backlog instead of
// moving to a named peer.
type Preempt struct {
	// Job is the job being preempted; a client that has already moved on
	// (the preempt raced a verdict) ignores a stale one.
	Job int
	// Seq is the master's per-client stop token, echoed back in
	// Preempted so the master can discard acks from preempts that a
	// verdict already beat.
	Seq int
}

// Kind implements Message.
func (Preempt) Kind() string { return "preempt" }

// Preempted is the client's answer to Preempt (and to StopWork, with a
// nil Sub): the checkpointed subproblem travels back to the master for
// requeueing, and the client is idle again.
type Preempted struct {
	ClientID int
	Job      int
	// Sub is the checkpointed subproblem (level-0 guiding path + learned
	// clauses); nil when there was nothing to return — the client raced
	// to a verdict, or the stop was a cancellation that discards work.
	Sub *solver.Subproblem
	// Seq echoes the token from the Preempt/StopWork being acknowledged.
	Seq int
}

// Kind implements Message.
func (Preempted) Kind() string { return "preempted" }

// StopWork tells a client to abandon its current subproblem without
// returning it — the owning job already reached a verdict or was
// cancelled. The client acknowledges with Preempted{Sub: nil}.
type StopWork struct {
	Job int
	// Seq is the master's per-client stop token; see Preempt.Seq.
	Seq int
}

// Kind implements Message.
func (StopWork) Kind() string { return "stop-work" }

// SolverDeltas carries solver counter increments accumulated since the
// client's previous StatusReport, so the master can maintain a live
// cluster-wide view by summation alone — no per-client reset handling.
type SolverDeltas struct {
	Decisions    int64
	Conflicts    int64
	Propagations int64
	Implications int64
	Learned      int64
	// ReclaimedBytes counts bytes the client's clause-arena GC returned
	// (learned-clause shedding + compaction) since the last report.
	ReclaimedBytes int64
	// Import-usefulness telemetry (see solver.Stats): Imported counts
	// peer clauses merged into the database; ImportedImplications and
	// ImportedResolutions count the BCP implications and conflict-analysis
	// resolutions those clauses produced; ImportedUseful counts distinct
	// imported clauses used at least once. The master aggregates these into
	// the cluster's share-efficacy view.
	Imported             int64
	ImportedImplications int64
	ImportedResolutions  int64
	ImportedUseful       int64
}

// Add accumulates another delta into d.
func (d *SolverDeltas) Add(o SolverDeltas) {
	d.Decisions += o.Decisions
	d.Conflicts += o.Conflicts
	d.Propagations += o.Propagations
	d.Implications += o.Implications
	d.Learned += o.Learned
	d.ReclaimedBytes += o.ReclaimedBytes
	d.Imported += o.Imported
	d.ImportedImplications += o.ImportedImplications
	d.ImportedResolutions += o.ImportedResolutions
	d.ImportedUseful += o.ImportedUseful
}

// StatusReport is a periodic client heartbeat with resource telemetry.
// MemBytes, Learnts, and Conflicts are point-in-time gauges of the
// client's current solver; Deltas are counter increments since the last
// report (see SolverDeltas).
type StatusReport struct {
	ClientID  int
	MemBytes  int64
	Learnts   int
	Conflicts int64
	Busy      bool
	// Depth is the guiding-path depth of the subproblem the client is
	// currently working (0 when idle or on the root problem).
	Depth  int
	Deltas SolverDeltas
	// Job is the scheduler job the client is currently allocated to
	// (0 = the implicit single job), so the master folds the deltas into
	// the right job's aggregates.
	Job int
	// Workers carries per-worker rows when the client runs an in-host
	// portfolio (nil for single-threaded clients). Point-in-time gauges,
	// not deltas: each heartbeat replaces the previous view.
	Workers []WorkerReport
}

// WorkerReport is one portfolio worker's row inside a StatusReport: which
// diversification profile it runs and how far its search has gone, so
// /status and `gridsat top` can show the in-host picture.
type WorkerReport struct {
	Worker       int
	Profile      string
	Conflicts    int64
	Propagations int64
	Restarts     int64
	Learnts      int
	MemBytes     int64
}

// Kind implements Message.
func (StatusReport) Kind() string { return "status" }

func init() {
	gob.Register(Register{})
	gob.Register(RegisterAck{})
	gob.Register(BaseProblem{})
	gob.Register(SplitRequest{})
	gob.Register(SplitAssign{})
	gob.Register(SplitPayload{})
	gob.Register(SplitDone{})
	gob.Register(ShareClauses{})
	gob.Register(Solved{})
	gob.Register(Migrate{})
	gob.Register(Shutdown{})
	gob.Register(StatusReport{})
	gob.Register(Preempt{})
	gob.Register(Preempted{})
	gob.Register(StopWork{})
}
