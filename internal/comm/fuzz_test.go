package comm

import (
	"math/rand"
	"reflect"
	"testing"

	"gridsat/internal/cnf"
	"gridsat/internal/solver"
)

// FuzzSplitPayloadRoundTrip drives the multi-subproblem split codec with
// generated batches: arbitrary sub counts (including empty), assumption
// lists whose order is semantic, depths, and learnt blocks must all
// round-trip through the binary frame.
func FuzzSplitPayloadRoundTrip(f *testing.F) {
	f.Add(int64(1), 0, 10, 0)
	f.Add(int64(2), 1, 100, 3)
	f.Add(int64(3), 3, 5000, 8)
	f.Add(int64(4), 7, 40, 1)
	f.Add(int64(5), 15, 900, 5)
	f.Fuzz(func(t *testing.T, seed int64, nSubs, nVars, maxLen int) {
		if nSubs < 0 || nSubs > 64 || nVars < 1 || nVars > 1<<20 || maxLen < 0 || maxLen > 32 {
			t.Skip()
		}
		r := rand.New(rand.NewSource(seed))
		// Job 0 keeps the legacy frame layout; non-zero jobs exercise the
		// frameJobFlag header.
		in := SplitPayload{SplitID: int(r.Int31()), From: r.Intn(100) - 50, Job: r.Intn(4)}
		for i := 0; i < nSubs; i++ {
			sub := &solver.Subproblem{NumVars: nVars, Depth: r.Intn(64)}
			for j := r.Intn(20); j > 0; j-- {
				sub.Assumptions = append(sub.Assumptions,
					cnf.MkLit(cnf.Var(r.Intn(nVars)), r.Intn(2) == 0))
			}
			if maxLen > 0 {
				sub.Learnts = randClauses(r, r.Intn(8), nVars, maxLen)
			}
			in.Subs = append(in.Subs, sub)
		}
		e, err := EncodeMessage(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Decode()
		if err != nil {
			t.Fatalf("decode of a well-formed frame failed: %v", err)
		}
		out, ok := got.(SplitPayload)
		if !ok {
			t.Fatalf("decoded %T", got)
		}
		if out.SplitID != in.SplitID || out.From != in.From {
			t.Fatalf("header mangled: got %d/%d, want %d/%d",
				out.SplitID, out.From, in.SplitID, in.From)
		}
		if out.Job != in.Job {
			t.Fatalf("job tag mangled: got %d, want %d", out.Job, in.Job)
		}
		if len(out.Subs) != len(in.Subs) {
			t.Fatalf("decoded %d subs, want %d", len(out.Subs), len(in.Subs))
		}
		for i, sub := range out.Subs {
			want := in.Subs[i]
			if sub.NumVars != want.NumVars || sub.Depth != want.Depth {
				t.Fatalf("sub %d NumVars/Depth %d/%d, want %d/%d",
					i, sub.NumVars, sub.Depth, want.NumVars, want.Depth)
			}
			if len(sub.Assumptions) != len(want.Assumptions) ||
				(len(want.Assumptions) > 0 && !reflect.DeepEqual(sub.Assumptions, want.Assumptions)) {
				t.Fatalf("sub %d assumptions mangled: %v, want %v", i, sub.Assumptions, want.Assumptions)
			}
			wantLearnts := canonClauses(want.Learnts)
			if len(sub.Learnts) != len(wantLearnts) ||
				(len(wantLearnts) > 0 && !reflect.DeepEqual(sub.Learnts, wantLearnts)) {
				t.Fatalf("sub %d learnts mangled", i)
			}
		}
	})
}

// FuzzDecodeFrame feeds arbitrary bytes to the frame decoder: it must
// reject or decode, never panic.
func FuzzDecodeFrame(f *testing.F) {
	good, _ := EncodeMessage(SplitPayload{SplitID: 3, Subs: []*solver.Subproblem{{
		NumVars:     10,
		Depth:       2,
		Assumptions: []cnf.Lit{cnf.PosLit(1)},
		Learnts:     []cnf.Clause{cnf.NewClause(2, -3)},
	}}})
	f.Add(good.Frame())
	f.Add([]byte{frameSplit})
	f.Add([]byte{frameSplit, 0xff, 0xff, 0xff, 0xff, 0xff})
	// Job-tagged frames: a well-formed one plus truncated/garbage job
	// headers, so the frameJobFlag path is fuzzed too.
	tagged, _ := EncodeMessage(ShareClauses{From: 2, Job: 7,
		Clauses: []cnf.Clause{cnf.NewClause(1, -2)}})
	f.Add(tagged.Frame())
	f.Add([]byte{frameShare | frameJobFlag})
	f.Add([]byte{frameShare | frameJobFlag, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{frameSplit | frameTracedFlag | frameJobFlag, 0x01, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, frame []byte) {
		e := EncodedMessage{frame: frame}
		_, _ = e.Decode() // must not panic
	})
}
