package comm

import "sync/atomic"

// This file is the causal-tracing envelope of the messaging layer. The
// paper's EveryWare instrumentation cost up to 50% of solver performance
// (§4.1), so GridSAT's timed runs flew blind; the flight recorder
// (internal/trace) instead stamps only control-plane messages, and does it
// with Lamport clocks rather than wall clocks so deterministic (DES) runs
// trace identically every time. The envelope is optional per message: an
// untraced run pays nothing, and a traced frame is self-describing on the
// wire (see codec.go's trace flag), so mixed deployments interoperate.

// TraceInfo is the causal metadata a Traced envelope carries: the sender's
// Lamport timestamp at send time and the flight-recorder event ID of the
// causally preceding event (0 when the sender records no flight log —
// event IDs are only meaningful within one recorder's log).
type TraceInfo struct {
	Lamport uint64
	Parent  uint64
}

// Traced wraps any protocol message with trace metadata. It implements
// Message by delegating Kind to the inner message, so queues, per-kind
// counters, and drop policies treat a traced message exactly like its
// payload. Receivers unwrap it at their event-loop boundary, merging
// Info.Lamport into their local clock.
type Traced struct {
	Info TraceInfo
	Msg  Message
}

// Kind implements Message, reporting the inner message's kind.
func (t Traced) Kind() string { return t.Msg.Kind() }

// Unwrap splits m into its payload and trace metadata. Untraced messages
// pass through with zero TraceInfo, so receive loops can call it
// unconditionally.
func Unwrap(m Message) (Message, TraceInfo) {
	if t, ok := m.(Traced); ok {
		return t.Msg, t.Info
	}
	return m, TraceInfo{}
}

// Clock is a Lamport logical clock: Tick stamps a local event, Observe
// merges a received timestamp. Safe for concurrent use.
type Clock struct {
	v atomic.Uint64
}

// Tick advances the clock for a local event and returns the new time.
func (c *Clock) Tick() uint64 { return c.v.Add(1) }

// Observe merges a received timestamp (clock = max(clock, ts) + 1) and
// returns the new time.
func (c *Clock) Observe(ts uint64) uint64 {
	for {
		cur := c.v.Load()
		next := cur + 1
		if ts >= cur {
			next = ts + 1
		}
		if c.v.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// Now returns the current time without advancing it.
func (c *Clock) Now() uint64 { return c.v.Load() }
