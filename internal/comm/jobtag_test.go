package comm

import (
	"bytes"
	"encoding/binary"
	"testing"

	"gridsat/internal/cnf"
	"gridsat/internal/solver"
)

// TestJobTagRoundTrip: every binary kind carries a non-zero job tag
// through the frameJobFlag header, alone and composed with the traced
// flag.
func TestJobTagRoundTrip(t *testing.T) {
	msgs := []Message{
		ShareClauses{From: 3, Job: 5, Clauses: []cnf.Clause{cnf.NewClause(1, -2, 4)}},
		SplitPayload{SplitID: 9, From: 2, Job: 12, Subs: []*solver.Subproblem{{
			NumVars: 10, Depth: 1, Assumptions: []cnf.Lit{cnf.PosLit(3)},
		}}},
		StatusReport{ClientID: 4, MemBytes: 1 << 20, Busy: true, Job: 31},
	}
	for _, in := range msgs {
		for _, traced := range []bool{false, true} {
			m := in
			if traced {
				m = Traced{Info: TraceInfo{Lamport: 77, Parent: 3}, Msg: in}
			}
			e, err := EncodeMessage(m)
			if err != nil {
				t.Fatalf("%s: %v", in.Kind(), err)
			}
			if e.Frame()[0]&frameJobFlag == 0 {
				t.Fatalf("%s: job-tagged frame missing frameJobFlag (byte %#x)", in.Kind(), e.Frame()[0])
			}
			got, err := e.Decode()
			if err != nil {
				t.Fatalf("%s: decode: %v", in.Kind(), err)
			}
			if traced {
				tr, ok := got.(Traced)
				if !ok || tr.Info.Lamport != 77 {
					t.Fatalf("%s: trace envelope lost: %#v", in.Kind(), got)
				}
				got = tr.Msg
			}
			var job int
			switch v := got.(type) {
			case ShareClauses:
				job = v.Job
			case SplitPayload:
				job = v.Job
			case StatusReport:
				job = v.Job
			default:
				t.Fatalf("%s: decoded %T", in.Kind(), got)
			}
			var want int
			switch v := in.(type) {
			case ShareClauses:
				want = v.Job
			case SplitPayload:
				want = v.Job
			case StatusReport:
				want = v.Job
			}
			if job != want {
				t.Fatalf("%s (traced=%v): job %d, want %d", in.Kind(), traced, job, want)
			}
		}
	}
}

// TestLegacyUntaggedFramesDecode is the wire backward-compatibility
// guarantee: a frame laid out exactly as the pre-scheduler codec wrote it
// (no frameJobFlag, no job uvarint) still decodes, with Job = 0. The
// legacy frame is built by hand so this keeps failing loudly if the
// layout ever drifts.
func TestLegacyUntaggedFramesDecode(t *testing.T) {
	payload := encodeShare(ShareClauses{From: 6, Clauses: []cnf.Clause{cnf.NewClause(2, -5)}})
	legacy := []byte{frameShare}
	legacy = binary.AppendUvarint(legacy, uint64(len(payload)))
	legacy = append(legacy, payload...)

	got, err := (&EncodedMessage{frame: legacy}).Decode()
	if err != nil {
		t.Fatalf("legacy frame rejected: %v", err)
	}
	sc, ok := got.(ShareClauses)
	if !ok {
		t.Fatalf("legacy frame decoded as %T", got)
	}
	if sc.Job != 0 || sc.From != 6 || len(sc.Clauses) != 1 {
		t.Fatalf("legacy frame mangled: %+v", sc)
	}

	// The converse: encoding a job-0 message reproduces the legacy bytes
	// exactly, so single-job deployments are wire-bit-identical.
	e, err := EncodeMessage(ShareClauses{From: 6, Clauses: []cnf.Clause{cnf.NewClause(2, -5)}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e.Frame(), legacy) {
		t.Fatalf("job-0 frame differs from legacy layout:\n  got  %x\n  want %x", e.Frame(), legacy)
	}
}

// TestJobTagGobKinds: control-plane scheduler messages (gob fallback)
// carry their job inside the blob — no frame flag — and round-trip.
func TestJobTagGobKinds(t *testing.T) {
	msgs := []Message{
		BaseProblem{Formula: func() *cnf.Formula { f := cnf.NewFormula(2); f.Add(1, 2); return f }(), Job: 3},
		Solved{ClientID: 2, Status: solver.StatusUNSAT, Depth: 4, Job: 7},
		Preempt{Job: 5},
		Preempted{ClientID: 9, Job: 5, Sub: &solver.Subproblem{
			NumVars: 8, Depth: 2,
			Assumptions: []cnf.Lit{cnf.PosLit(1), cnf.NegLit(4)},
			Learnts:     []cnf.Clause{cnf.NewClause(1, 2)},
		}},
		StopWork{Job: 11},
	}
	for _, in := range msgs {
		e, err := EncodeMessage(in)
		if err != nil {
			t.Fatalf("%s: %v", in.Kind(), err)
		}
		if !e.IsFallback() {
			t.Fatalf("%s: expected gob fallback frame", in.Kind())
		}
		if e.Frame()[0]&frameJobFlag != 0 {
			t.Fatalf("%s: gob frame must not set frameJobFlag", in.Kind())
		}
		got, err := e.Decode()
		if err != nil {
			t.Fatalf("%s: decode: %v", in.Kind(), err)
		}
		switch v := got.(type) {
		case BaseProblem:
			if v.Job != 3 || v.Formula == nil {
				t.Fatalf("BaseProblem mangled: %+v", v)
			}
		case Solved:
			if v.Job != 7 || v.Status != solver.StatusUNSAT {
				t.Fatalf("Solved mangled: %+v", v)
			}
		case Preempt:
			if v.Job != 5 {
				t.Fatalf("Preempt mangled: %+v", v)
			}
		case Preempted:
			if v.Job != 5 || v.Sub == nil || len(v.Sub.Assumptions) != 2 || len(v.Sub.Learnts) != 1 {
				t.Fatalf("Preempted mangled: %+v", v)
			}
		case StopWork:
			if v.Job != 11 {
				t.Fatalf("StopWork mangled: %+v", v)
			}
		default:
			t.Fatalf("%s decoded as %T", in.Kind(), got)
		}
	}
}
