package proof

import (
	"strings"
	"testing"

	"gridsat/internal/cnf"
	"gridsat/internal/gen"
)

// FuzzParse checks the proof parser never panics on arbitrary input.
func FuzzParse(f *testing.F) {
	f.Add("1 -2 0\n0\n")
	f.Add("d 1 0\nc comment\n-3 0")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		lemmas, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parsed must be checkable without panicking (the result
		// itself may be accept or reject).
		base := gen.RandomKSAT(8, 20, 3, 1)
		for _, lemma := range lemmas {
			for _, l := range lemma {
				if int(l.Var()) >= base.NumVars {
					return // out of the toy formula's range; skip check
				}
			}
		}
		_ = Check(base, lemmas)
	})
}

// FuzzCheckNeverCertifiesSAT feeds arbitrary lemma streams against a
// formula known to be satisfiable: no stream may certify UNSAT unless it
// smuggles in unsound lemmas — which Check must reject.
func FuzzCheckNeverCertifiesSAT(f *testing.F) {
	f.Add([]byte{2, 4, 0, 1, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Decode bytes as DIMACS-ish literals over 4 variables, 0 ends a
		// lemma. The base formula (x1∨x2)∧(x3∨x4) is clearly SAT.
		base := cnf.NewFormula(4)
		base.Add(1, 2).Add(3, 4)
		var lemmas []cnf.Clause
		var cur cnf.Clause
		for _, b := range raw {
			d := int(int8(b)) % 5
			if d == 0 {
				lemmas = append(lemmas, cur)
				cur = nil
				continue
			}
			cur = append(cur, cnf.LitFromDIMACS(d))
		}
		if err := Check(base, lemmas); err == nil {
			// A "refutation" was accepted: it must genuinely contain an
			// empty clause RUP-derivable only via unsound lemmas, which is
			// impossible — every accepted lemma is implied by the base, so
			// a satisfiable base can never check out.
			t.Fatalf("satisfiable formula certified UNSAT via lemmas %v", lemmas)
		}
	})
}
