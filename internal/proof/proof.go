// Package proof produces and checks RUP (reverse unit propagation)
// refutation proofs, the verification discipline of zChaff's companion
// checker zVerify. A CDCL run that answers UNSAT emits its learned clauses
// in derivation order; each is checkable by a solver-independent rule:
// asserting the clause's negation and unit-propagating over the original
// formula plus the previously accepted lemmas must yield a conflict. A
// proof ends with the empty clause, certifying unsatisfiability.
//
// The checker is deliberately simple and independent of internal/solver —
// counting-based unit propagation with none of the engine's machinery —
// so it can certify the engine's answers rather than echo its bugs.
package proof

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gridsat/internal/cnf"
)

// Writer streams a DRUP-style proof: one learned clause per line as
// DIMACS literals terminated by 0. The final empty clause line is "0".
type Writer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Hook returns the function to install as solver.Options.OnLemma.
func (pw *Writer) Hook() func(cnf.Clause) {
	return func(c cnf.Clause) { pw.Add(c) }
}

// Add appends one lemma.
func (pw *Writer) Add(c cnf.Clause) {
	if pw.err != nil {
		return
	}
	for _, l := range c {
		if _, err := pw.w.WriteString(strconv.Itoa(l.DIMACS())); err != nil {
			pw.err = err
			return
		}
		if err := pw.w.WriteByte(' '); err != nil {
			pw.err = err
			return
		}
	}
	if _, err := pw.w.WriteString("0\n"); err != nil {
		pw.err = err
		return
	}
	pw.n++
}

// Lemmas returns how many lemmas were written.
func (pw *Writer) Lemmas() int { return pw.n }

// Flush completes the proof stream.
func (pw *Writer) Flush() error {
	if pw.err != nil {
		return pw.err
	}
	return pw.w.Flush()
}

// Parse reads a DRUP-style lemma stream.
func Parse(r io.Reader) ([]cnf.Clause, error) {
	var out []cnf.Clause
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var cur cnf.Clause
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		if strings.HasPrefix(text, "d ") {
			continue // deletions are advisory in RUP checking
		}
		for _, tok := range strings.Fields(text) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("proof: line %d: bad literal %q", line, tok)
			}
			if n == 0 {
				out = append(out, cur)
				cur = nil
				continue
			}
			cur = append(cur, cnf.LitFromDIMACS(n))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out, nil
}

// CheckError describes a failed proof check.
type CheckError struct {
	// LemmaIndex is the 0-based index of the offending lemma, or -1 for a
	// structural problem.
	LemmaIndex int
	Reason     string
}

// Error implements error.
func (e *CheckError) Error() string {
	if e.LemmaIndex < 0 {
		return "proof: " + e.Reason
	}
	return fmt.Sprintf("proof: lemma %d: %s", e.LemmaIndex, e.Reason)
}

// Check verifies that lemmas form a RUP refutation of f: every lemma is
// RUP with respect to f plus the preceding lemmas, and some lemma is (or
// propagates into) the empty clause. Returns nil when f is certified
// unsatisfiable.
func Check(f *cnf.Formula, lemmas []cnf.Clause) error {
	ck := newChecker(f)
	for i, lemma := range lemmas {
		if !ck.rup(lemma) {
			return &CheckError{LemmaIndex: i, Reason: "not implied by reverse unit propagation"}
		}
		if len(lemma) == 0 {
			return nil // explicit empty clause: refutation complete
		}
		ck.addClause(lemma)
	}
	// No explicit empty clause: accept iff unit propagation alone now
	// refutes the accumulated set (the engine stops at a level-0 conflict
	// without emitting an explicit empty clause). Note that once the set
	// is propagation-refutable, every further lemma is trivially RUP, so
	// checking once at the end is equivalent to checking after each unit.
	if ck.topLevelConflict() {
		return nil
	}
	return &CheckError{LemmaIndex: -1, Reason: "proof ends without deriving the empty clause"}
}

// checker is a minimal counting-based unit propagator over a growing
// clause set. It is O(clauses) per propagation pass — slow but simple and
// independent, which is the point.
type checker struct {
	nVars   int
	clauses []cnf.Clause
	units   []cnf.Lit // accumulated top-level units
}

func newChecker(f *cnf.Formula) *checker {
	ck := &checker{nVars: f.NumVars}
	for _, c := range f.Clauses {
		ck.addClause(c)
	}
	return ck
}

func (ck *checker) addClause(c cnf.Clause) {
	cc := c.Clone()
	ck.clauses = append(ck.clauses, cc)
	if len(cc) == 1 {
		ck.units = append(ck.units, cc[0])
	}
}

// topLevelConflict reports whether the clause set is refuted by unit
// propagation alone.
func (ck *checker) topLevelConflict() bool {
	a := cnf.NewAssignment(ck.nVars)
	return !ck.propagate(a)
}

// rup checks the lemma by asserting its negation and propagating.
func (ck *checker) rup(lemma cnf.Clause) bool {
	a := cnf.NewAssignment(ck.nVars)
	for _, l := range lemma {
		switch a.LitValue(l) {
		case cnf.True:
			// The negation is itself contradictory (lemma is a tautology);
			// tautologies are trivially implied.
			return true
		case cnf.Undef:
			a.Set(l.Not())
		}
	}
	return !ck.propagate(a)
}

// propagate runs unit propagation to fixpoint under a; false on conflict.
func (ck *checker) propagate(a cnf.Assignment) bool {
	for _, u := range ck.units {
		switch a.LitValue(u) {
		case cnf.False:
			return false
		case cnf.Undef:
			a.Set(u)
		}
	}
	for {
		progress := false
		for _, c := range ck.clauses {
			var unit cnf.Lit = cnf.NoLit
			nUndef := 0
			sat := false
			for _, l := range c {
				switch a.LitValue(l) {
				case cnf.True:
					sat = true
				case cnf.Undef:
					nUndef++
					unit = l
				}
				if sat || nUndef > 1 {
					break
				}
			}
			if sat || nUndef > 1 {
				continue
			}
			if nUndef == 0 {
				return false
			}
			a.Set(unit)
			progress = true
		}
		if !progress {
			return true
		}
	}
}
