package proof

import (
	"bytes"
	"strings"
	"testing"

	"gridsat/internal/cnf"
	"gridsat/internal/gen"
	"gridsat/internal/solver"
)

// solveWithProof runs the engine with proof logging and returns the
// formula's status plus the captured lemma stream.
func solveWithProof(t *testing.T, f *cnf.Formula) (solver.Status, []cnf.Clause) {
	t.Helper()
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	opts := solver.DefaultOptions()
	opts.OnLemma = pw.Hook()
	s := solver.New(f, opts)
	r := s.Solve(solver.Limits{})
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	lemmas, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return r.Status, lemmas
}

func TestUNSATProofChecks(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    *cnf.Formula
	}{
		{"php7", gen.Pigeonhole(7)},
		{"php8", gen.Pigeonhole(8)},
		{"xor", gen.XORSystem(20, 40, false, 3)},
		{"r3-120", gen.RandomKSAT(120, 511, 3, 1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, lemmas := solveWithProof(t, tc.f)
			if status != solver.StatusUNSAT {
				t.Fatalf("expected UNSAT, got %v", status)
			}
			if len(lemmas) == 0 {
				t.Fatal("no lemmas emitted")
			}
			if err := Check(tc.f, lemmas); err != nil {
				t.Fatalf("proof rejected: %v", err)
			}
		})
	}
}

func TestSATRunNotRefutation(t *testing.T) {
	f := gen.RandomKSAT(40, 160, 3, 3)
	status, lemmas := solveWithProof(t, f)
	if status != solver.StatusSAT {
		t.Skip("instance not SAT at this seed")
	}
	if err := Check(f, lemmas); err == nil {
		t.Fatal("a SAT run's lemma stream must not certify UNSAT")
	}
}

func TestTamperedProofRejected(t *testing.T) {
	f := gen.Pigeonhole(7)
	_, lemmas := solveWithProof(t, f)
	// Inject a clause that is not implied: a bare unit forcing pigeon 1
	// out of hole 1 would be fine, but claiming variable 1 must be TRUE as
	// a unit is not derivable by propagation at the point of insertion.
	bogus := cnf.Clause{cnf.PosLit(0)}
	tampered := append([]cnf.Clause{bogus}, lemmas...)
	if err := Check(f, tampered); err == nil {
		t.Fatal("tampered proof accepted")
	}
	var ce *CheckError
	if err := Check(f, tampered); err != nil {
		var ok bool
		ce, ok = err.(*CheckError)
		if !ok || ce.LemmaIndex != 0 {
			t.Fatalf("wrong error: %v", err)
		}
	}
}

func TestTruncatedProofRejected(t *testing.T) {
	f := gen.Pigeonhole(7)
	_, lemmas := solveWithProof(t, f)
	if err := Check(f, lemmas[:len(lemmas)/4]); err == nil {
		t.Fatal("truncated proof accepted")
	}
}

func TestEmptyClauseLemmaEndsProof(t *testing.T) {
	// x & ~x: the clause set is refutable by propagation with no lemmas,
	// and an explicit empty clause is accepted immediately.
	f := cnf.NewFormula(1)
	f.Add(1).Add(-1)
	if err := Check(f, []cnf.Clause{{}}); err != nil {
		t.Fatalf("explicit empty clause rejected: %v", err)
	}
	if err := Check(f, nil); err != nil {
		t.Fatalf("propagation-refutable set rejected: %v", err)
	}
}

func TestCheckRejectsForSatisfiable(t *testing.T) {
	f := cnf.NewFormula(2)
	f.Add(1, 2)
	if err := Check(f, nil); err == nil {
		t.Fatal("satisfiable formula certified UNSAT")
	}
}

func TestWriterFormat(t *testing.T) {
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	pw.Add(cnf.NewClause(1, -2))
	pw.Add(cnf.Clause{})
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	if pw.Lemmas() != 2 {
		t.Fatalf("lemmas = %d", pw.Lemmas())
	}
	want := "1 -2 0\n0\n"
	if buf.String() != want {
		t.Fatalf("wrote %q, want %q", buf.String(), want)
	}
}

func TestParseDialects(t *testing.T) {
	in := "c comment\n1 -2 0\nd 3 0\n\n-1 0"
	lemmas, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(lemmas) != 2 {
		t.Fatalf("parsed %d lemmas, want 2 (deletion lines skipped)", len(lemmas))
	}
	if lemmas[1][0] != cnf.NegLit(0) {
		t.Fatalf("lemma 2 = %v", lemmas[1])
	}
	if _, err := Parse(strings.NewReader("1 x 0")); err == nil {
		t.Fatal("bad literal accepted")
	}
}

func TestCheckErrorStrings(t *testing.T) {
	e1 := &CheckError{LemmaIndex: 3, Reason: "r"}
	if !strings.Contains(e1.Error(), "lemma 3") {
		t.Error(e1.Error())
	}
	e2 := &CheckError{LemmaIndex: -1, Reason: "r"}
	if strings.Contains(e2.Error(), "lemma") {
		t.Error(e2.Error())
	}
}

// TestProofWithMinimization: the minimized engine's proofs must check too.
func TestProofWithMinimization(t *testing.T) {
	f := gen.Pigeonhole(7)
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	opts := solver.DefaultOptions()
	opts.MinimizeLearnts = true
	opts.OnLemma = pw.Hook()
	s := solver.New(f, opts)
	if r := s.Solve(solver.Limits{}); r.Status != solver.StatusUNSAT {
		t.Fatalf("got %v", r.Status)
	}
	pw.Flush()
	lemmas, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(f, lemmas); err != nil {
		t.Fatalf("minimized proof rejected: %v", err)
	}
}
