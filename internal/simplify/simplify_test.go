package simplify

import (
	"strings"
	"testing"

	"gridsat/internal/brute"
	"gridsat/internal/cnf"
	"gridsat/internal/gen"
	"gridsat/internal/solver"
)

func TestUnitPropagation(t *testing.T) {
	f := cnf.NewFormula(3)
	f.Add(1).Add(-1, 2).Add(-2, 3)
	s := Simplify(f, DefaultOptions())
	if s.Unsat {
		t.Fatal("satisfiable formula refuted")
	}
	if s.Stats.Units != 3 {
		t.Fatalf("units = %d, want the whole chain", s.Stats.Units)
	}
	if s.F.NumClauses() != 0 {
		t.Fatalf("%d clauses left after full propagation", s.F.NumClauses())
	}
	m := s.ExtendModel(cnf.NewAssignment(3))
	if err := f.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestUnsatDetected(t *testing.T) {
	f := cnf.NewFormula(2)
	f.Add(1).Add(-1, 2).Add(-2).Add(2, -1)
	s := Simplify(f, DefaultOptions())
	if !s.Unsat {
		t.Fatal("contradiction missed")
	}
}

func TestSubsumption(t *testing.T) {
	f := cnf.NewFormula(4)
	f.Add(1, 2).Add(1, 2, 3).Add(1, 2, 3, 4).Add(3, 4)
	s := Simplify(f, Options{Rounds: 1, MaxElimOccurrences: 0})
	if s.Stats.Subsumed < 2 {
		t.Fatalf("subsumed = %d, want the two supersets gone", s.Stats.Subsumed)
	}
	if s.F.NumClauses() != 2 {
		t.Fatalf("clauses = %d, want 2", s.F.NumClauses())
	}
}

func TestSelfSubsumingResolution(t *testing.T) {
	// (1 2) and (-1 2 3): strengthen the latter to (2 3).
	f := cnf.NewFormula(3)
	f.Add(1, 2).Add(-1, 2, 3)
	s := Simplify(f, Options{Rounds: 1, MaxElimOccurrences: 0})
	if s.Stats.Strengthened != 1 {
		t.Fatalf("strengthened = %d, want 1", s.Stats.Strengthened)
	}
	found := false
	for _, c := range s.F.Clauses {
		if len(c) == 2 && c.Has(cnf.PosLit(1)) && c.Has(cnf.PosLit(2)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("strengthened clause (2 3) missing: %v", s.F.Clauses)
	}
}

func TestVariableElimination(t *testing.T) {
	// v (var 2) occurs once positively, once negatively: eliminating it
	// replaces both clauses with one resolvent.
	f := cnf.NewFormula(3)
	f.Add(1, 2).Add(-2, 3)
	s := Simplify(f, DefaultOptions())
	if s.NumEliminated() == 0 {
		t.Fatal("no variables eliminated")
	}
	// The models must extend back to the original formula.
	slv := solver.New(s.F, solver.DefaultOptions())
	r := slv.Solve(solver.Limits{})
	if r.Status != solver.StatusSAT {
		t.Fatalf("simplified formula %v", r.Status)
	}
	m := s.ExtendModel(r.Model)
	if err := f.Verify(m); err != nil {
		t.Fatalf("extended model invalid: %v", err)
	}
}

// TestEquisatisfiableRandom is the core property: for random formulas the
// simplified instance has the same satisfiability, and SAT models extend
// to valid original models.
func TestEquisatisfiableRandom(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		nv := 8 + int(seed%10)
		f := gen.RandomKSAT(nv, int(4.2*float64(nv)), 3, seed)
		want, _ := brute.Solve(f, 0)

		s := Simplify(f, DefaultOptions())
		if s.Unsat {
			if want != brute.UNSAT {
				t.Fatalf("seed %d: preprocessor refuted a %v instance", seed, want)
			}
			continue
		}
		got, model := brute.Solve(s.F, 0)
		if got != want {
			t.Fatalf("seed %d: simplified %v, original %v", seed, got, want)
		}
		if got == brute.SAT {
			full := s.ExtendModel(model)
			if err := f.Verify(full); err != nil {
				t.Fatalf("seed %d: model extension failed: %v (stats %v)", seed, err, s.Stats)
			}
		}
	}
}

// TestEquisatisfiableStructured repeats on structured families.
func TestEquisatisfiableStructured(t *testing.T) {
	cases := []struct {
		f    *cnf.Formula
		want solver.Status
	}{
		{gen.Pigeonhole(6), solver.StatusUNSAT},
		{gen.XORSystem(14, 18, true, 2), solver.StatusSAT},
		{gen.XORSystem(12, 30, false, 2), solver.StatusUNSAT},
		{gen.AdderMiter(4), solver.StatusUNSAT},
		{gen.AdderMiterBug(4), solver.StatusSAT},
	}
	for i, tc := range cases {
		s := Simplify(tc.f, DefaultOptions())
		if s.Unsat {
			if tc.want != solver.StatusUNSAT {
				t.Fatalf("case %d: wrongly refuted", i)
			}
			continue
		}
		slv := solver.New(s.F, solver.DefaultOptions())
		r := slv.Solve(solver.Limits{})
		if r.Status != tc.want {
			t.Fatalf("case %d: simplified %v, want %v", i, r.Status, tc.want)
		}
		if r.Status == solver.StatusSAT {
			if err := tc.f.Verify(s.ExtendModel(r.Model)); err != nil {
				t.Fatalf("case %d: %v", i, err)
			}
		}
	}
}

func TestPreprocessingReducesPigeonhole(t *testing.T) {
	f := gen.Pigeonhole(8)
	s := Simplify(f, DefaultOptions())
	if s.F.NumClauses() > f.NumClauses() {
		t.Fatalf("preprocessing grew the formula: %d -> %d", f.NumClauses(), s.F.NumClauses())
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Units: 1, Subsumed: 2, Strengthened: 3, Eliminated: 4, Rounds: 5}
	for _, part := range []string{"units=1", "subsumed=2", "strengthened=3", "eliminated=4", "rounds=5"} {
		if !strings.Contains(s.String(), part) {
			t.Fatalf("stats string %q missing %q", s.String(), part)
		}
	}
}

func TestOriginalFormulaUntouched(t *testing.T) {
	f := cnf.NewFormula(3)
	f.Add(1, 2).Add(-2, 3).Add(2)
	before := f.NumClauses()
	lit := f.Clauses[0][0]
	Simplify(f, DefaultOptions())
	if f.NumClauses() != before || f.Clauses[0][0] != lit {
		t.Fatal("Simplify mutated its input")
	}
}
