// Package simplify is a CNF preprocessor in the SatELite/NiVER tradition:
// top-level unit propagation, subsumption, self-subsuming resolution
// (clause strengthening), and bounded variable elimination by resolution.
// GridSAT-era solvers ran without preprocessing — the engine defaults to
// the raw formula — but a modern release ships one, so it is provided as
// an opt-in front end (cmd/zchaff -presimplify).
//
// Variable elimination changes the variable set, so satisfying assignments
// of the simplified formula must be extended back: Simplified.ExtendModel
// reconstructs values for eliminated variables from the saved clauses, in
// reverse elimination order.
package simplify

import (
	"fmt"
	"sort"

	"gridsat/internal/cnf"
)

// Options bounds the preprocessing effort.
type Options struct {
	// Rounds caps the simplification fixpoint iterations.
	Rounds int
	// MaxElimOccurrences skips elimination of variables occurring more
	// often than this on either polarity (keeps resolution quadratic
	// blow-ups away).
	MaxElimOccurrences int
	// MaxGrowth allows elimination only when the clause count grows by at
	// most this many clauses (0 = never grow, the NiVER rule).
	MaxGrowth int
	// MaxResolventLen drops eliminations that would create clauses longer
	// than this (0 = unlimited).
	MaxResolventLen int
}

// DefaultOptions returns conservative bounds.
func DefaultOptions() Options {
	return Options{
		Rounds:             5,
		MaxElimOccurrences: 12,
		MaxGrowth:          0,
		MaxResolventLen:    12,
	}
}

// Simplified is the preprocessing result.
type Simplified struct {
	// F is the simplified formula (same variable numbering; eliminated
	// variables simply no longer occur).
	F *cnf.Formula
	// Unsat is set when preprocessing itself refuted the formula.
	Unsat bool
	// Stats summarizes the work done.
	Stats Stats
	// elims records eliminated variables with their saved clauses, in
	// elimination order.
	elims []elimRecord
	// units are the top-level facts discovered (already applied to F).
	units []cnf.Lit
}

// Stats counts preprocessing effects.
type Stats struct {
	Units        int
	Subsumed     int
	Strengthened int
	Eliminated   int
	Rounds       int
}

type elimRecord struct {
	v     cnf.Var
	saved []cnf.Clause // every clause that contained v at elimination time
}

// Simplify preprocesses f. The input formula is not modified.
func Simplify(f *cnf.Formula, opts Options) *Simplified {
	if opts.Rounds <= 0 {
		opts.Rounds = 1
	}
	st := newState(f)
	out := &Simplified{}
	for round := 0; round < opts.Rounds; round++ {
		out.Stats.Rounds = round + 1
		changed := false
		if !st.propagateUnits(&out.Stats) {
			out.Unsat = true
			break
		}
		if st.subsume(&out.Stats) {
			changed = true
		}
		if st.strengthen(&out.Stats) {
			changed = true
		}
		if !st.propagateUnits(&out.Stats) {
			out.Unsat = true
			break
		}
		if st.eliminate(opts, &out.Stats, out) {
			changed = true
		}
		if !changed {
			break
		}
	}
	out.F = st.formula(f.NumVars)
	out.units = st.unitTrail
	if !out.Unsat {
		out.F.Comment = f.Comment
	}
	return out
}

// ExtendModel lifts a model of the simplified formula to the original
// variable space: unit facts are re-applied and eliminated variables are
// reconstructed in reverse elimination order.
func (s *Simplified) ExtendModel(m cnf.Assignment) cnf.Assignment {
	out := m.Clone()
	for _, u := range s.units {
		out.Set(u)
	}
	for i := len(s.elims) - 1; i >= 0; i-- {
		rec := s.elims[i]
		// Try v = false first; if any saved clause with literal ¬v is not
		// otherwise satisfied, v must be true (and by the resolution
		// closure, true then satisfies everything it must).
		val := cnf.False
		for _, c := range rec.saved {
			satisfiedOtherwise := false
			containsPos := false
			for _, l := range c {
				if l.Var() == rec.v {
					if !l.Neg() {
						containsPos = true
					}
					continue
				}
				if out.LitValue(l) == cnf.True {
					satisfiedOtherwise = true
					break
				}
			}
			if !satisfiedOtherwise && containsPos {
				val = cnf.True
				break
			}
		}
		if val == cnf.True {
			out.Set(cnf.PosLit(rec.v))
		} else {
			out.Set(cnf.NegLit(rec.v))
		}
	}
	return out
}

// NumEliminated returns how many variables were eliminated.
func (s *Simplified) NumEliminated() int { return len(s.elims) }

// ---- internal state ----

type state struct {
	nVars   int
	clauses []cnf.Clause // nil entries are deleted
	// occ[lit] lists clause indexes containing lit (lazily cleaned).
	occ       [][]int
	assigned  cnf.Assignment
	unitQueue []cnf.Lit
	unitTrail []cnf.Lit
	gone      []bool // eliminated variables
}

func newState(f *cnf.Formula) *state {
	st := &state{
		nVars:    f.NumVars,
		occ:      make([][]int, 2*f.NumVars),
		assigned: cnf.NewAssignment(f.NumVars),
		gone:     make([]bool, f.NumVars),
	}
	for _, c := range f.Clauses {
		norm, taut := c.Clone().Normalize()
		if taut {
			continue
		}
		st.addClause(norm)
	}
	return st
}

func (st *state) addClause(c cnf.Clause) {
	if len(c) == 1 {
		st.unitQueue = append(st.unitQueue, c[0])
	}
	idx := len(st.clauses)
	st.clauses = append(st.clauses, c)
	for _, l := range c {
		st.occ[l] = append(st.occ[l], idx)
	}
}

func (st *state) removeClause(i int) {
	st.clauses[i] = nil // occurrence lists are cleaned lazily
}

// liveOcc returns the live clause indexes containing l, compacting the list.
func (st *state) liveOcc(l cnf.Lit) []int {
	list := st.occ[l]
	w := 0
	for _, i := range list {
		if st.clauses[i] != nil && st.clauses[i].Has(l) {
			list[w] = i
			w++
		}
	}
	st.occ[l] = list[:w]
	return st.occ[l]
}

// propagateUnits applies queued unit facts; false on contradiction.
func (st *state) propagateUnits(stats *Stats) bool {
	for len(st.unitQueue) > 0 {
		u := st.unitQueue[0]
		st.unitQueue = st.unitQueue[1:]
		switch st.assigned.LitValue(u) {
		case cnf.True:
			continue
		case cnf.False:
			return false
		}
		st.assigned.Set(u)
		st.unitTrail = append(st.unitTrail, u)
		stats.Units++
		// Clauses with u are satisfied; clauses with ¬u shrink.
		for _, i := range st.liveOcc(u) {
			st.removeClause(i)
		}
		for _, i := range st.liveOcc(u.Not()) {
			c := st.clauses[i]
			shrunk := make(cnf.Clause, 0, len(c)-1)
			for _, l := range c {
				if l != u.Not() {
					shrunk = append(shrunk, l)
				}
			}
			st.removeClause(i)
			if len(shrunk) == 0 {
				return false
			}
			st.addClause(shrunk)
		}
	}
	return true
}

// signature is a cheap subsumption filter: a bitmask of variable hashes.
func signature(c cnf.Clause) uint64 {
	var s uint64
	for _, l := range c {
		s |= 1 << (uint(l.Var()) % 64)
	}
	return s
}

// subsume removes clauses that are supersets of another clause.
func (st *state) subsume(stats *Stats) bool {
	changed := false
	// Order live clause indexes by length so short clauses subsume first.
	var order []int
	for i, c := range st.clauses {
		if c != nil {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool { return len(st.clauses[order[a]]) < len(st.clauses[order[b]]) })
	for _, i := range order {
		c := st.clauses[i]
		if c == nil {
			continue
		}
		sig := signature(c)
		// Candidates must contain c's least-occurring literal.
		pivot := c[0]
		for _, l := range c[1:] {
			if len(st.occ[l]) < len(st.occ[pivot]) {
				pivot = l
			}
		}
		for _, j := range st.liveOcc(pivot) {
			if j == i || st.clauses[j] == nil {
				continue
			}
			d := st.clauses[j]
			if len(d) < len(c) || signature(d)&sig != sig {
				continue
			}
			if subset(c, d) {
				st.removeClause(j)
				stats.Subsumed++
				changed = true
			}
		}
	}
	return changed
}

// subset reports whether every literal of c appears in d.
func subset(c, d cnf.Clause) bool {
	for _, l := range c {
		if !d.Has(l) {
			return false
		}
	}
	return true
}

// strengthen performs self-subsuming resolution: when c = (l ∨ A) and
// d ⊇ (¬l ∨ A), remove ¬l from d.
func (st *state) strengthen(stats *Stats) bool {
	changed := false
	for i, c := range st.clauses {
		if c == nil {
			continue
		}
		for li, l := range c {
			// c with l flipped must subsume d.
			flipped := c.Clone()
			flipped[li] = l.Not()
			sig := signature(flipped)
			for _, j := range st.liveOcc(l.Not()) {
				if j == i {
					continue
				}
				d := st.clauses[j]
				if d == nil || len(d) < len(flipped) || signature(d)&sig != sig {
					continue
				}
				if subset(flipped, d) {
					shrunk := make(cnf.Clause, 0, len(d)-1)
					for _, x := range d {
						if x != l.Not() {
							shrunk = append(shrunk, x)
						}
					}
					st.removeClause(j)
					if len(shrunk) == 0 {
						// Strengthened to empty: queue an impossible unit
						// pair to surface the contradiction.
						st.addClause(cnf.Clause{l})
						st.addClause(cnf.Clause{l.Not()})
					} else {
						st.addClause(shrunk)
					}
					stats.Strengthened++
					changed = true
				}
			}
		}
	}
	return changed
}

// eliminate performs bounded variable elimination by resolution.
func (st *state) eliminate(opts Options, stats *Stats, out *Simplified) bool {
	changed := false
	for v := 0; v < st.nVars; v++ {
		vv := cnf.Var(v)
		if st.gone[v] || st.assigned.Value(vv) != cnf.Undef {
			continue
		}
		pos := st.liveOcc(cnf.PosLit(vv))
		neg := st.liveOcc(cnf.NegLit(vv))
		if len(pos) == 0 && len(neg) == 0 {
			continue // pure absence; nothing to do
		}
		if len(pos) > opts.MaxElimOccurrences || len(neg) > opts.MaxElimOccurrences {
			continue
		}
		// Build all non-tautological resolvents.
		var resolvents []cnf.Clause
		ok := true
		for _, pi := range pos {
			for _, ni := range neg {
				r, taut := resolve(st.clauses[pi], st.clauses[ni], vv)
				if taut {
					continue
				}
				if opts.MaxResolventLen > 0 && len(r) > opts.MaxResolventLen {
					ok = false
					break
				}
				resolvents = append(resolvents, r)
			}
			if !ok {
				break
			}
		}
		if !ok || len(resolvents) > len(pos)+len(neg)+opts.MaxGrowth {
			continue
		}
		// Commit: save the clauses for model reconstruction, remove them,
		// add the resolvents.
		rec := elimRecord{v: vv}
		for _, i := range append(append([]int{}, pos...), neg...) {
			rec.saved = append(rec.saved, st.clauses[i].Clone())
			st.removeClause(i)
		}
		for _, r := range resolvents {
			norm, taut := r.Normalize()
			if !taut {
				st.addClause(norm)
			}
		}
		st.gone[v] = true
		out.elims = append(out.elims, rec)
		stats.Eliminated++
		changed = true
	}
	return changed
}

// resolve computes the resolvent of c (containing v) and d (containing ¬v);
// the bool reports a tautological resolvent.
func resolve(c, d cnf.Clause, v cnf.Var) (cnf.Clause, bool) {
	out := make(cnf.Clause, 0, len(c)+len(d)-2)
	for _, l := range c {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	for _, l := range d {
		if l.Var() != v && !out.Has(l) {
			out = append(out, l)
		}
	}
	return out.Normalize()
}

// formula assembles the live clause set.
func (st *state) formula(nVars int) *cnf.Formula {
	f := cnf.NewFormula(nVars)
	for _, c := range st.clauses {
		if c != nil {
			f.AddClause(c.Clone())
		}
	}
	return f
}

// String summarizes the stats.
func (s Stats) String() string {
	return fmt.Sprintf("units=%d subsumed=%d strengthened=%d eliminated=%d rounds=%d",
		s.Units, s.Subsumed, s.Strengthened, s.Eliminated, s.Rounds)
}
