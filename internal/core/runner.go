package core

import (
	"fmt"
	"math/rand"
	"sort"

	"gridsat/internal/cnf"
	"gridsat/internal/comm"
	"gridsat/internal/grid"
	"gridsat/internal/obs/history"
	"gridsat/internal/solver"
	"gridsat/internal/trace"
)

// The DES runner executes GridSAT's master/client policies over the
// simulated grid in virtual time. Client computation advances in quanta of
// solver propagations; a quantum of w propagations on a host with relative
// speed s and current availability a takes w/(R·s·a) virtual seconds,
// where R is PropsPerVSec. Because every event is deterministic, a 34-host
// distributed run reproduces exactly on a single physical core — this is
// the apparatus behind the Table-1/Table-2 benchmarks.

// RunnerConfig configures a simulated run (sequential or distributed).
type RunnerConfig struct {
	Grid    *grid.Grid
	Formula *cnf.Formula
	// Jobs switches the DES into multi-job scheduling mode: Formula is
	// ignored and each SimJob arrives at its ArrivalVSec, contending for
	// clients under SchedPolicy exactly like submissions to the live
	// `gridsat serve` master. Empty = the historical single-job run,
	// bit-identical to the pre-scheduler runner.
	Jobs []SimJob
	// SchedPolicy names the malleable allocation policy for multi-job
	// runs ("fifo", "fair-share", "priority"; "" = fifo). Ignored when
	// Jobs is empty.
	SchedPolicy string
	// PropsPerVSec is R: solver propagations per virtual second on a
	// dedicated speed-1.0 host. The benchmark harness uses 1000, which
	// maps the synthetic instances onto the paper's time scale (paper
	// seconds ≈ 10 × virtual seconds).
	PropsPerVSec float64
	// QuantumProps is the client work slice between control-plane checks.
	QuantumProps int64
	// TimeoutVSec bounds the run in virtual seconds.
	TimeoutVSec float64
	// ShareMaxLen bounds shared learned clauses (paper: 10 and 3);
	// 0 uses the default, negative disables sharing entirely.
	ShareMaxLen int
	// SplitTimeoutVSec floors the client split timeout (paper: 100 s).
	SplitTimeoutVSec float64
	// MemDivisor scales host memory down to solver-budget scale, keeping
	// the paper's memory-pressure dynamics at our reduced problem sizes.
	MemDivisor int64
	// LaunchDelayVSec is the mean client start-up latency (spawning an
	// empty client on a Grid resource); actual delays jitter around it.
	LaunchDelayVSec float64
	// MasterHostID locates the master (the paper ran it at UCSD).
	// -1 picks the last host.
	MasterHostID int
	// MaxClients caps the pool (0 = all hosts).
	MaxClients int
	// SolverOptions tunes client engines; nil uses solver defaults.
	SolverOptions *solver.Options
	// Threads is each simulated client's in-host portfolio width: worker 0
	// (the pathfinder) runs the unmodified options and alone drives the
	// split, checkpoint and migration policies, while workers 1..K-1 run
	// diversified profiles over the same subproblem and exchange learnt
	// clauses through the in-host pool. 0 or 1 = single-solver clients,
	// bit-identical to the historical runner.
	Threads int
	// Batch, when non-nil, adds a Blue Horizon-style batch job (Table 2).
	Batch *BatchPlan
	// Failures schedules client crashes — the fault-tolerance extension of
	// paper §3.4: a lost busy client's subproblem is recovered from its
	// light checkpoint and reassigned to an idle resource.
	Failures []FailurePlan
	// MonitorPeriodVSec is the NWS sampling period.
	MonitorPeriodVSec float64
	// MigrationFactor enables the paper's §3.4 migration: when an idle
	// host's forecast rank exceeds a busy client's host rank by this
	// factor, the whole subproblem moves there (e.g. from a lone remote
	// desktop to a freshly freed cluster node). 0 disables migration.
	MigrationFactor float64
	// Flight, when non-nil, records the run's control-plane events (splits,
	// shares, churn, verdict) stamped with virtual time and Lamport clocks.
	// Because the simulation is deterministic, re-running the same config
	// reproduces the flight log exactly — the basis of the replay verifier.
	Flight *trace.Flight
	// P2PSharing delivers shared clauses directly between clients instead
	// of relaying through the master. The paper routes the (large) split
	// payloads peer-to-peer for exactly this reason; sharing topology is
	// the analogous choice for the (small, frequent) clause messages.
	P2PSharing bool
	// SplitStrategy names the split engine ("first-decision", "dilemma",
	// "dilemma-veto"; "" = first-decision). A multi-way strategy makes the
	// simulated master reserve up to its fanout in idle recipients per
	// split and backlog any cofactors the pool cannot absorb.
	SplitStrategy string
	// Watchdog enables the anomaly watchdog over the monitor ticks, with
	// thresholds in virtual seconds (zero fields take the live defaults).
	// nil disables it entirely, keeping pre-watchdog flight logs (and the
	// replay verifier) byte-identical.
	Watchdog *WatchdogConfig
	// BundleDir, when non-empty, writes postmortem black-box bundles —
	// the same directory shape the live master produces — on watchdog
	// alerts and job failures/cancellations. Bundles are written
	// synchronously with deterministic names and no CPU profile, so a
	// replayed run reproduces them exactly.
	BundleDir string
	// Seed drives launch jitter.
	Seed int64
}

// TimelinePoint is one sample of the active-client count.
type TimelinePoint struct {
	VSec float64
	Busy int
}

// FailurePlan kills the client on a host at a virtual time.
type FailurePlan struct {
	HostID int
	AtVSec float64
}

// SimJob is one instance in a simulated multi-job workload.
type SimJob struct {
	Name    string
	Formula *cnf.Formula
	// Priority weighs this job under the priority policy (>= 1).
	Priority int
	// ArrivalVSec is when the job is submitted (virtual seconds).
	ArrivalVSec float64
	// CancelVSec, when > 0, cancels the job at that virtual time if it is
	// still active — the DES counterpart of POST /jobs/{id}/cancel.
	CancelVSec float64
}

// SimJobResult is one job's outcome in a multi-job simulated run.
type SimJobResult struct {
	ID   int
	Name string
	// Verdict is SAT/UNSAT/UNKNOWN, CANCELLED, or "" if the run's virtual
	// time budget expired before the job finished.
	Verdict string
	Status  solver.Status
	Model   cnf.Assignment
	// Lifecycle timestamps in virtual seconds; TurnaroundVSec is
	// submission to finish (0 while unfinished).
	SubmitVSec     float64
	StartVSec      float64
	FinishVSec     float64
	TurnaroundVSec float64
	// Preemptions counts clients taken from this job mid-subproblem.
	Preemptions int
	// Coverage is the job's refuted search-space fraction at the end.
	Coverage float64
}

// BatchPlan describes the Table-2 batch submission.
type BatchPlan struct {
	// Nodes requested from the batch machine (each becomes one client).
	Nodes int
	// WalltimeVSec is the requested job duration.
	WalltimeVSec float64
	// MeanQueueWaitVSec is the average queue delay (paper: ~33 hours).
	MeanQueueWaitVSec float64
	// TerminateOnEnd stops the whole run when the batch job's walltime
	// expires, as the paper's Table-2 protocol did.
	TerminateOnEnd bool
}

func (c *RunnerConfig) withDefaults() RunnerConfig {
	out := *c
	if out.PropsPerVSec == 0 {
		out.PropsPerVSec = 1000
	}
	if out.QuantumProps == 0 {
		out.QuantumProps = 5000
	}
	if out.ShareMaxLen == 0 {
		out.ShareMaxLen = 10
	}
	if out.SplitTimeoutVSec == 0 {
		out.SplitTimeoutVSec = 10 // the paper's 100 s at 1/10 time scale
	}
	if out.MemDivisor == 0 {
		out.MemDivisor = 100
	}
	if out.LaunchDelayVSec == 0 {
		out.LaunchDelayVSec = 4
	}
	if out.MonitorPeriodVSec == 0 {
		out.MonitorPeriodVSec = 30
	}
	if out.MasterHostID < 0 && len(c.Grid.Hosts) > 0 {
		out.MasterHostID = c.Grid.Hosts[len(c.Grid.Hosts)-1].ID
	}
	return out
}

// SimOutcome classifies how a simulated run ended.
type SimOutcome int

// Outcomes of a simulated run.
const (
	OutcomeSolved  SimOutcome = iota
	OutcomeTimeout            // virtual-time budget exhausted ("TIME_OUT")
	OutcomeMemOut             // sequential solver exceeded memory ("MEM_OUT")
)

// String renders the outcome the way the paper's tables do.
func (o SimOutcome) String() string {
	switch o {
	case OutcomeSolved:
		return "solved"
	case OutcomeTimeout:
		return "TIME_OUT"
	case OutcomeMemOut:
		return "MEM_OUT"
	}
	return "unknown"
}

// SimResult is the outcome of a simulated run.
type SimResult struct {
	Outcome SimOutcome
	Status  solver.Status
	Model   cnf.Assignment
	// VSec is the virtual solve time (the paper's seconds column ÷ 10).
	VSec float64
	// MaxClients is the paper's "Max # of clients" column.
	MaxClients int
	Splits     int
	Shared     int
	// TotalProps is the real work executed across all clients.
	TotalProps int64
	// Msgs/Bytes total the modeled protocol traffic (every simulated
	// network transfer), the DES counterpart of the live runtime's
	// instrumented-transport counters.
	Msgs  int64
	Bytes int64
	// Migrations counts whole-subproblem moves to better resources (§3.4).
	Migrations int
	// Timeline samples the number of simultaneously busy clients over
	// virtual time (taken at each monitor tick plus every busy-count
	// change). The paper describes exactly this curve: "this number starts
	// at one and varies during the run… When a problem is solved the
	// number of active clients collapses to zero."
	Timeline []TimelinePoint
	// BatchStartVSec/BatchCanceled report the Table-2 batch interaction.
	BatchStartVSec float64
	BatchCanceled  bool
	// Progress is the deterministic coverage series: one point per refuted
	// subproblem, in closure order. For an UNSAT run without lost work it
	// is monotonically non-decreasing and ends at exactly 1.0 (2^62 units).
	Progress []ProgressPoint
	// Coverage/CoverageUnits/ClosedSubproblems are the final totals of the
	// same estimate (units are exact fixed-point 2^-62 fractions).
	Coverage          float64
	CoverageUnits     uint64
	ClosedSubproblems int64
	// Agg sums solver counters across every client solver the run created,
	// the DES counterpart of the master's churn-proof cluster totals; its
	// import-usefulness fields feed the share-efficacy view.
	Agg comm.SolverDeltas
	// Threads is the per-client portfolio width the run was configured
	// with (1 = single-solver clients).
	Threads int
	// PoolPublished/PoolDelivered/PoolLost/PoolDropped total the in-host
	// clause-pool exchange across every portfolio client (all zero for
	// single-threaded runs). Lost counts entries skipped under the pool's
	// documented lapping window; Dropped counts import-budget rank-outs.
	PoolPublished int64
	PoolDelivered int64
	PoolLost      int64
	PoolDropped   int64
	// Jobs carries per-job outcomes for multi-job runs (nil otherwise),
	// in submission order; Preemptions totals their preemption counts and
	// MakespanVSec spans first submission to last finish.
	Jobs         []SimJobResult
	Preemptions  int
	MakespanVSec float64
	// Alerts is the watchdog's alert feed (virtual-time stamps; nil when
	// RunnerConfig.Watchdog was nil) and Bundles the postmortem bundle
	// directories written during the run, in capture order.
	Alerts  []Alert
	Bundles []string
}

// Efficacy derives the share-efficacy ratios from the run's aggregated
// solver counters.
func (r SimResult) Efficacy() ShareEfficacy {
	return efficacyFrom(r.Agg.Imported, r.Agg.ImportedUseful,
		r.Agg.ImportedImplications, r.Agg.ImportedResolutions, r.Agg.Implications)
}

// RunSequential simulates the paper's zChaff baseline: the engine on the
// fastest host in dedicated mode, with the scaled memory of that machine
// and the overall time out. The baseline retains learned clauses the way
// zChaff 2003 did (no aggressive database reduction), so hard instances
// genuinely exhaust memory — the "MEM_OUT" rows of Table 1.
func RunSequential(cfg RunnerConfig) SimResult {
	cfg = cfg.withDefaults()
	host := cfg.Grid.Hosts[0]
	for _, h := range cfg.Grid.Hosts {
		if h.Speed > host.Speed {
			host = h
		}
	}
	opts := solver.DefaultOptions()
	opts.MaxLearnts = 1 << 30 // zChaff-2003-style retention
	if cfg.SolverOptions != nil {
		opts = *cfg.SolverOptions
	}
	s := solver.New(cfg.Formula, opts)
	memBudget := host.MemBytes / cfg.MemDivisor * 60 / 100
	var vsec float64
	var props int64
	for {
		before := s.Stats().Propagations
		res := s.Solve(solver.Limits{
			MaxPropagations: cfg.QuantumProps,
			MaxMemoryBytes:  memBudget,
		})
		delta := s.Stats().Propagations - before
		props += delta
		vsec += float64(delta) / (cfg.PropsPerVSec * host.Speed) // dedicated: availability 1
		switch {
		case res.Status != solver.StatusUnknown:
			return SimResult{Outcome: OutcomeSolved, Status: res.Status, Model: res.Model,
				VSec: vsec, MaxClients: 1, Threads: 1, TotalProps: props}
		case res.Reason == solver.ReasonMemLimit:
			return SimResult{Outcome: OutcomeMemOut, VSec: vsec, MaxClients: 1, Threads: 1, TotalProps: props}
		case vsec >= cfg.TimeoutVSec:
			return SimResult{Outcome: OutcomeTimeout, VSec: vsec, MaxClients: 1, Threads: 1, TotalProps: props}
		}
	}
}

// simClient is one simulated GridSAT client.
type simClient struct {
	id   int
	host *grid.Host
	// job owns this client's current (or last) subproblem; 0 is the
	// implicit single job of a non-multi run.
	job int

	slv *solver.Solver
	// extras are the in-host portfolio workers beyond the pathfinder
	// (Threads-1 of them; nil on single-threaded runs). They race the
	// pathfinder for a verdict but never split, checkpoint or migrate, and
	// they keep solving the subproblem as received even after the
	// pathfinder narrows its own space by donating cofactors — a wider
	// ancestor space, so their UNSAT still covers the pathfinder's.
	extras []*solver.Solver
	// pool/curs are the workers' lock-free clause exchange and one read
	// cursor per worker. The DES drives the pool single-threaded, so every
	// drain is deterministic.
	pool *hostPool
	curs []*poolCursor
	// slotMem is the per-worker memory budget (memBudget/Threads; equal to
	// memBudget on single-threaded runs).
	slotMem    int64
	registered bool
	busy       bool
	dead       bool
	reserved   bool
	migrating  bool // whole problem in flight to a better host
	stepping   bool // a compute quantum is in flight
	recvAt     float64
	xferTime   float64
	assignedAt float64
	splitAsked bool
	// splitReqEv is the flight-log ID of this client's pending split
	// request, the causal parent of the split-issue it produces.
	splitReqEv uint64
	memBudget  int64
	// queued split assignments, served at the next quantum boundary.
	assigns []runnerAssign
}

type runnerAssign struct {
	splitID    int
	recipients []int
}

// runnerSplit is one in-flight multi-way transfer in the DES: the donor
// splits and ships one cofactor per reserved recipient. resolved marks
// recipient legs that have concluded (accepted, failed, or released).
type runnerSplit struct {
	donor      int
	recipients []int
	resolved   map[int]bool
	issueEv    uint64
	// job owns every cofactor the split produces.
	job int
}

func (g *runnerSplit) left() int { return len(g.recipients) - len(g.resolved) }

// runner holds the DES master state.
type runner struct {
	cfg     RunnerConfig
	sim     *grid.Sim
	info    *grid.InfoService
	clients map[int]*simClient
	order   []int // deterministic iteration order (host IDs)
	master  *grid.Host

	nextSplitID int
	pending     map[int]*runnerSplit
	// strategy is the split engine donors run; fanout is its per-split
	// recipient budget.
	strategy solver.SplitStrategy
	fanout   int

	// jobs is every job the run knows, keyed by ID; jobOrder is the
	// deterministic submission order. A single-job run owns exactly
	// jobs[0], created before the simulation starts, so every historical
	// code path reads and writes job 0 without knowing jobs exist.
	jobs     map[int]*runnerJob
	jobOrder []int
	// multi marks a scheduling-mode run (cfg.Jobs non-empty): job
	// lifecycle events are emitted, the policy reallocates clients at
	// arrivals, finishes and monitor ticks, and the run ends when every
	// job is terminal.
	multi  bool
	policy SchedPolicy
	// targets is the most recent per-job client allocation (multi only).
	targets map[int]int

	done   bool
	res    SimResult
	flight *trace.Flight
	// hist/wd mirror the live master's history sampler and anomaly
	// watchdog, fed at each monitor tick in virtual time (nil when
	// cfg.Watchdog is nil); bundleSeq numbers the deterministic bundles.
	hist      *history.Store
	wd        *watchdog
	bundleSeq int
	// profs are the per-worker diversification profiles shared by every
	// portfolio client (nil when Threads <= 1); index 0 is the pathfinder
	// identity profile, whose import/export pool budgets still apply.
	profs []solver.Profile
	// verdictClient/verdictWorker locate the solver whose result decided a
	// SAT run (0/0 for UNSAT/timeout), recorded on the verdict flight event.
	verdictClient int
	verdictWorker int
	batchJob      *grid.BatchJob
	batchSys      *grid.BatchSystem
	rng           *rand.Rand
}

// emit records a flight event stamped with the current virtual time; a nil
// recorder makes it a no-op, so untraced runs pay nothing. The simulation
// is single-threaded, so event order (and thus the whole log) is
// deterministic.
func (r *runner) emit(ev trace.FEvent) uint64 {
	if r.flight == nil {
		return 0
	}
	ev.VSec = r.sim.Now()
	return r.flight.Emit(ev)
}

// RunDistributed simulates a full GridSAT run over the configured grid.
func RunDistributed(cfg RunnerConfig) SimResult {
	cfg = cfg.withDefaults()
	strategy, err := solver.ParseStrategy(cfg.SplitStrategy)
	if err != nil {
		strategy = solver.FirstDecision{}
	}
	r := &runner{
		cfg:      cfg,
		sim:      grid.NewSim(),
		info:     grid.NewInfoService(cfg.Grid),
		clients:  map[int]*simClient{},
		pending:  map[int]*runnerSplit{},
		jobs:     map[int]*runnerJob{},
		strategy: strategy,
		fanout:   solver.StrategyFanout(cfg.SplitStrategy),
		flight:   cfg.Flight,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Watchdog != nil {
		r.wd = newWatchdog(cfg.Watchdog.withDefaults())
		r.hist = history.New(history.Config{IntervalSec: cfg.MonitorPeriodVSec})
	}
	if len(cfg.Jobs) > 0 {
		r.multi = true
		policy, perr := ParseSchedPolicy(cfg.SchedPolicy)
		if perr != nil {
			policy, _ = ParseSchedPolicy("")
		}
		r.policy = policy
		// Jobs are created up front but submitted at their arrival times,
		// in submission order (arrival time, then config order).
		arrivals := make([]*runnerJob, 0, len(cfg.Jobs))
		for i, sj := range cfg.Jobs {
			j := newRunnerJob(i+1, sj.Name, sj.Formula, sj.Priority)
			j.cancelAt = sj.CancelVSec
			arrivals = append(arrivals, j)
		}
		for i, sj := range cfg.Jobs {
			j := arrivals[i]
			r.sim.At(sj.ArrivalVSec, func() { r.submitSimJob(j) })
		}
	} else {
		// The implicit single job: every historical code path reads and
		// writes job 0 without knowing jobs exist.
		j := newRunnerJob(0, "", cfg.Formula, 1)
		j.State = JobQueued
		r.jobs[0] = j
		r.jobOrder = append(r.jobOrder, 0)
	}
	r.master = cfg.Grid.HostByID(cfg.MasterHostID)
	if r.master == nil && len(cfg.Grid.Hosts) > 0 {
		r.master = cfg.Grid.Hosts[len(cfg.Grid.Hosts)-1]
	}
	r.res.Threads = 1
	if cfg.Threads > 1 {
		r.res.Threads = cfg.Threads
		baseOpts := solver.DefaultOptions()
		if cfg.SolverOptions != nil {
			baseOpts = *cfg.SolverOptions
		}
		r.profs = make([]solver.Profile, cfg.Threads)
		for w := range r.profs {
			r.profs[w] = solver.ProfileFor(w, baseOpts.Seed)
		}
	}

	// NWS monitoring: sample every host periodically.
	r.info.Observe(0)
	var monitor func()
	monitor = func() {
		if r.done {
			return
		}
		r.info.Observe(r.sim.Now())
		r.emit(trace.FEvent{Kind: trace.FEvHeartbeat, N: int64(r.busyCount())})
		r.sample(r.busyCount())
		r.obsTick()
		r.maybeMigrate()
		r.rebalance() // multi-job: periodic reallocation (no-op otherwise)
		r.sim.After(cfg.MonitorPeriodVSec, monitor)
	}
	r.sim.After(cfg.MonitorPeriodVSec, monitor)

	// Launch an empty client on every interactive resource (paper §3.3:
	// "the master queries for the list of available resources and launches
	// an empty client on each").
	n := 0
	for _, h := range cfg.Grid.Hosts {
		if h.Batch {
			continue
		}
		if cfg.MaxClients > 0 && n >= cfg.MaxClients {
			break
		}
		n++
		r.launch(h)
	}
	r.emit(trace.FEvent{Kind: trace.FEvRunStart, N: int64(n)})

	// Fault injection: schedule the configured client crashes.
	for _, fp := range cfg.Failures {
		fp := fp
		r.sim.At(fp.AtVSec, func() { r.failClient(fp.HostID + 1) })
	}

	// Table 2: submit the batch job; its nodes join when it starts.
	if cfg.Batch != nil {
		var batchNodes []*grid.Host
		for _, h := range cfg.Grid.Hosts {
			if h.Batch {
				batchNodes = append(batchNodes, h)
			}
		}
		bs := grid.NewBatchSystem(r.sim, batchNodes, cfg.Batch.MeanQueueWaitVSec, cfg.Seed+77)
		job, err := bs.Submit(minInt(cfg.Batch.Nodes, len(batchNodes)), cfg.Batch.WalltimeVSec,
			func(j *grid.BatchJob) {
				if r.done {
					return
				}
				r.res.BatchStartVSec = j.StartAt
				for _, h := range j.Nodes {
					r.launch(h)
				}
			},
			func(*grid.BatchJob) {
				if cfg.Batch.TerminateOnEnd && !r.done {
					r.finish(OutcomeTimeout, solver.StatusUnknown, nil)
				}
			})
		if err == nil {
			r.batchJob = job
			r.batchSys = bs
		}
	}

	// Drive the simulation event by event so the run stops the moment a
	// result is known (and a still-queued batch job can be canceled, as
	// the paper's GridSAT did when a problem was solved pre-allocation).
	for !r.done {
		t, ok := r.sim.NextAt()
		if !ok || t > cfg.TimeoutVSec {
			break
		}
		r.sim.Step()
	}
	if !r.done {
		r.finish(OutcomeTimeout, solver.StatusUnknown, nil)
		r.res.VSec = cfg.TimeoutVSec
	} else {
		r.res.VSec = r.sim.Now()
	}
	return r.res
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// absorbStats folds a client's solver lifetime counters — the pathfinder's
// and every portfolio extra's — into the run's cluster aggregate. Called
// exactly once per solver instance, at retirement (sub-UNSAT, migration,
// crash) or at finish for still-live solvers.
func (r *runner) absorbStats(c *simClient) {
	if c.slv != nil {
		r.res.Agg.Add(heartbeatDeltas(c.slv.Stats()))
	}
	for _, ex := range c.extras {
		r.res.Agg.Add(heartbeatDeltas(ex.Stats()))
	}
}

// retire absorbs every engine on c into the cluster aggregate and drops
// them, folding the host pool's exchange telemetry into the run totals.
// The one funnel for ending a client's solvers, so per-engine absorption
// stays exactly-once.
func (r *runner) retire(c *simClient) {
	r.absorbStats(c)
	c.slv = nil
	c.extras = nil
	if c.pool != nil {
		st := c.pool.Stats()
		r.res.PoolPublished += st.Published
		r.res.PoolDelivered += st.Delivered
		r.res.PoolLost += st.Lost
		r.res.PoolDropped += st.Dropped
		c.pool = nil
		c.curs = nil
	}
}

// attachSolvers equips c with a freshly built pathfinder plus, when the
// run is configured with Threads > 1, the diversified portfolio extras and
// their in-host clause pool. build constructs one engine from the given
// options. Worker 0 always receives the unmodified base engine options —
// only its pool export bound widens, and OnLearn gating is export-only —
// so single-threaded runs are bit-identical to the pre-portfolio runner
// and the pathfinder's trajectory never depends on K.
func (r *runner) attachSolvers(c *simClient, build func(solver.Options) (*solver.Solver, error)) error {
	base := r.clientOpts(c)
	k := len(r.profs)
	if k <= 1 {
		slv, err := build(base)
		if err != nil {
			return err
		}
		c.slv = slv
		c.slotMem = c.memBudget
		return nil
	}
	opts0 := base
	opts0.ShareMaxLen = max(r.profs[0].ExportMaxLen, base.ShareMaxLen)
	slv, err := build(opts0)
	if err != nil {
		return err
	}
	c.slv = slv
	c.slotMem = c.memBudget / int64(k)
	c.pool = newHostPool(k, poolRingCapacity)
	c.curs = make([]*poolCursor, k)
	for w := range c.curs {
		c.curs[w] = c.pool.NewCursor()
	}
	c.extras = c.extras[:0]
	for w := 1; w < k; w++ {
		opts := r.profs[w].Apply(base)
		opts.ShareMaxLen = max(r.profs[w].ExportMaxLen, base.ShareMaxLen)
		ex, err := build(opts)
		if err != nil {
			// The pathfinder is live; a failed extra just narrows the
			// portfolio (deterministically: the same build fails at every
			// width). Stop here to keep worker indices dense.
			break
		}
		c.extras = append(c.extras, ex)
	}
	return nil
}

// worker returns engine w on c: 0 is the pathfinder, 1.. the extras.
func (c *simClient) worker(w int) *solver.Solver {
	if w == 0 {
		return c.slv
	}
	return c.extras[w-1]
}

func (c *simClient) workerCount() int { return 1 + len(c.extras) }

// poolClauses projects drained pool entries to their clause payloads
// (shared, immutable; solver imports clone on receipt).
func poolClauses(entries []poolEntry) []cnf.Clause {
	out := make([]cnf.Clause, len(entries))
	for i, e := range entries {
		out[i] = e.lits
	}
	return out
}

// closeSub folds a refuted subproblem into its job's coverage estimate,
// emitting the progress flight event and appending the deterministic
// series point.
func (r *runner) closeSub(j *runnerJob, clientID, depth int) {
	units := j.prog.CloseSubproblem(depth, r.sim.Now())
	r.emit(trace.FEvent{Kind: trace.FEvProgress, Client: clientID, Job: j.ID,
		N: int64(units), Detail: fmt.Sprintf("depth=%d", depth)})
	r.res.Progress = append(r.res.Progress, ProgressPoint{
		VSec:     r.sim.Now(),
		Units:    units,
		Coverage: float64(units) / float64(coverageFull),
		Depth:    depth,
	})
}

func (r *runner) finish(outcome SimOutcome, st solver.Status, model cnf.Assignment) {
	if r.done {
		return
	}
	r.done = true
	// Freeze the cluster aggregate: absorb every still-live solver in
	// deterministic order (retired solvers were absorbed at retirement).
	for _, id := range r.order {
		if c := r.clients[id]; c != nil {
			r.retire(c)
		}
	}
	if r.multi {
		for _, id := range r.jobOrder {
			r.res.ClosedSubproblems += r.jobs[id].prog.Closed()
		}
		r.finishJobResults()
	} else {
		j := r.jobs[0]
		r.res.CoverageUnits = j.prog.Units()
		r.res.Coverage = j.prog.Fraction()
		r.res.ClosedSubproblems = j.prog.Closed()
	}
	r.res.Outcome = outcome
	r.res.Status = st
	r.res.Model = model
	if r.wd != nil {
		r.res.Alerts = r.wd.feed()
	}
	if !r.multi {
		// Multi-job runs emit one verdict per job as it finishes; the
		// single-job run keeps its historical run-level verdict event.
		detail := "UNKNOWN"
		switch st {
		case solver.StatusSAT:
			detail = "SAT"
		case solver.StatusUNSAT:
			detail = "UNSAT"
		}
		r.emit(trace.FEvent{Kind: trace.FEvVerdict, Client: r.verdictClient,
			Worker: r.verdictWorker, Detail: detail})
	}
	r.sample(0) // every run ends with the client count collapsing to zero
	// Solved before the batch allocation arrived: withdraw the job
	// (Table 2: "the job queued from the Blue Horizon is canceled").
	if outcome == OutcomeSolved && r.batchJob != nil && r.batchJob.State == grid.JobQueued {
		r.batchSys.Cancel(r.batchJob)
		r.res.BatchCanceled = true
	}
}

// launch schedules a client start on h after the jittered spawn latency.
func (r *runner) launch(h *grid.Host) {
	delay := r.cfg.LaunchDelayVSec * (0.5 + r.rng.Float64())
	r.sim.After(delay, func() {
		if r.done {
			return
		}
		c := &simClient{
			id:        h.ID + 1, // client IDs are 1-based like the live master
			host:      h,
			memBudget: h.MemBytes / r.cfg.MemDivisor * 60 / 100,
		}
		c.registered = true
		r.clients[c.id] = c
		r.order = append(r.order, c.id)
		r.emit(trace.FEvent{Kind: trace.FEvClientJoin, Client: c.id, Detail: h.Name})
		if r.multi {
			r.rebalance()
			return
		}
		if j := r.jobs[0]; !j.assigned {
			r.assignRoot(j, c)
		} else {
			r.serveBacklog()
		}
	})
}

// xfer models one protocol message of the given encoded size: it accrues
// the simulated traffic totals (SimResult.Msgs/Bytes) and returns the
// modeled network delay. Every simulated transfer goes through here so
// the DES reports the same traffic summary the live runtime measures on
// its instrumented transport.
func (r *runner) xfer(from, to *grid.Host, bytes int64) float64 {
	r.res.Msgs++
	r.res.Bytes += bytes
	return r.cfg.Grid.Network.Transfer(from, to, bytes)
}

// assignRoot ships a job's whole problem to its first client.
func (r *runner) assignRoot(j *runnerJob, c *simClient) {
	j.assigned = true
	c.job = j.ID
	c.reserved = true // holds the client through the transfer
	bytes := int64(j.Formula.NumLiterals()*4 + 64)
	delay := r.xfer(r.master, c.host, bytes)
	j.outstanding++
	r.sim.After(delay, func() {
		c.reserved = false
		if r.done || c.dead {
			return
		}
		if !j.State.Active() {
			// The job was cancelled while the root was in flight.
			r.serveBacklog()
			return
		}
		_ = r.attachSolvers(c, func(opts solver.Options) (*solver.Solver, error) {
			return solver.New(j.Formula, opts), nil
		})
		c.busy = true
		c.recvAt = r.sim.Now()
		c.assignedAt = r.sim.Now()
		c.xferTime = delay
		r.markSimStarted(j)
		r.emit(trace.FEvent{Kind: trace.FEvAssign, Client: c.id, Job: j.ID})
		r.noteBusy()
		r.scheduleStep(c)
	})
}

func (r *runner) clientOpts(c *simClient) solver.Options {
	opts := solver.DefaultOptions()
	if r.cfg.SolverOptions != nil {
		opts = *r.cfg.SolverOptions
	}
	opts.ShareMaxLen = r.cfg.ShareMaxLen
	return opts
}

// scheduleStep runs one compute quantum for c and schedules its effects.
func (r *runner) scheduleStep(c *simClient) {
	if r.done || !c.busy || c.stepping || c.slv == nil {
		return
	}
	c.stepping = true

	// One compute quantum on a Threads-core host: every worker advances by
	// up to QuantumProps "in parallel", so the quantum's virtual duration
	// is the slowest worker's, while TotalProps accrues the sum (the real
	// work done). Workers run in index order and drain the in-host pool
	// before computing, so the whole exchange is deterministic — the same
	// lock-free pool the live portfolio races on, driven single-threaded.
	// Worker 0 (the pathfinder) alone feeds the split/memory policies.
	type workerVerdict struct {
		worker int
		status solver.Status
		model  cnf.Assignment
	}
	type workerShed struct {
		worker int
		freed  int64
	}
	var cluster []cnf.Clause
	var verdicts []workerVerdict
	var sheds []workerShed
	var res solver.Result
	var maxDelta, sumDelta int64
	shareLen := r.cfg.ShareMaxLen
	for w := 0; w < c.workerCount(); w++ {
		w := w
		s := c.worker(w)
		if c.pool != nil {
			if batch := poolClauses(c.pool.Drain(c.curs[w], w, r.profs[w].ImportBudget)); len(batch) > 0 {
				_ = s.ImportClauses(batch)
			}
		}
		s.SetOnLearn(func(cl cnf.Clause, lbd int) {
			// The engine's export bound is the wider pool bound; re-filter
			// to the cluster share bound for the master-mediated broadcast.
			if shareLen > 0 && len(cl) <= shareLen {
				cluster = append(cluster, cl)
			}
			if c.pool != nil {
				c.pool.Publish(w, cl, lbd)
			}
		})
		before := s.Stats().Propagations
		wres := s.Solve(solver.Limits{
			MaxPropagations: r.cfg.QuantumProps,
			MaxMemoryBytes:  c.slotMem,
		})
		delta := s.Stats().Propagations - before
		if delta < 1 {
			delta = 1 // even an immediately-decided quantum takes some time
		}
		sumDelta += delta
		if delta > maxDelta {
			maxDelta = delta
		}
		if w == 0 {
			res = wres
			continue
		}
		if wres.Status != solver.StatusUnknown {
			verdicts = append(verdicts, workerVerdict{w, wres.Status, wres.Model})
		} else if wres.Reason == solver.ReasonMemLimit {
			// Extras shed on their own; only the pathfinder's pressure
			// drives the split policy below.
			sheds = append(sheds, workerShed{w, s.ShedMemory()})
		}
	}
	r.res.TotalProps += sumDelta
	avail := r.cfg.Grid.Availability(c.host, r.sim.Now())
	dur := float64(maxDelta) / (r.cfg.PropsPerVSec * c.host.Speed * avail)

	r.sim.After(dur, func() {
		c.stepping = false
		if r.done || c.dead {
			return
		}
		if len(cluster) > 0 {
			r.broadcast(c, cluster)
		}
		for _, sh := range sheds {
			r.emit(trace.FEvent{Kind: trace.FEvMemShed, Client: c.id, Worker: sh.worker, N: sh.freed})
		}
		// Merge worker verdicts, pathfinder first: the lowest-indexed
		// verified SAT wins (the DES counterpart of the live portfolio's
		// first-finisher CAS with deterministic tie-break).
		if res.Status != solver.StatusUnknown {
			verdicts = append([]workerVerdict{{0, res.Status, res.Model}}, verdicts...)
		}
		j := r.jobOf(c)
		sawSAT := false
		for _, v := range verdicts {
			if v.status != solver.StatusSAT {
				continue
			}
			sawSAT = true
			// A model is a model even if the subproblem migrated away (or
			// was preempted) mid-quantum; the master verifies before
			// declaring success (§3.4).
			if err := j.Formula.Verify(v.model); err == nil {
				if r.multi {
					r.finishSimJob(j, solver.StatusSAT, v.model, c.id, v.worker)
					return
				}
				r.verdictClient = c.id
				r.verdictWorker = v.worker
				r.finish(OutcomeSolved, solver.StatusSAT, v.model)
				return
			}
		}
		if sawSAT {
			return
		}
		if c.slv == nil || !c.busy {
			// The subproblem migrated to a better host mid-quantum; its
			// new owner redoes this slice. Any split assignments queued
			// for us must be released or their reservations leak.
			r.serveAssigns(c)
			return
		}
		for _, v := range verdicts {
			if v.status != solver.StatusUNSAT {
				continue
			}
			// An extra refutes the subproblem as received — a (possibly
			// wider) ancestor of the pathfinder's current space, since
			// donated cofactors stay outstanding elsewhere. Closing at the
			// pathfinder's depth therefore never over-counts coverage.
			depth := c.slv.PathDepth()
			r.retire(c)
			c.busy = false
			c.splitAsked = false
			r.emit(trace.FEvent{Kind: trace.FEvSubUNSAT, Client: c.id, Worker: v.worker, Job: j.ID})
			r.closeSub(j, c.id, depth)
			j.outstanding--
			r.sample(r.busyCount())
			r.serveAssigns(c) // release any split assignments queued for us
			if r.done {
				return
			}
			if r.jobExhausted(j) {
				return
			}
			r.serveBacklog()
			return
		}
		// Still running: serve any queued split assignments, then evaluate
		// the split triggers, then keep computing.
		r.serveAssigns(c)
		if res.Reason == solver.ReasonMemLimit {
			r.requestSplit(c, "mem-pressure")
			freed := c.slv.ShedMemory()
			r.emit(trace.FEvent{Kind: trace.FEvMemShed, Client: c.id, N: freed})
		} else {
			dec := SplitDecision{
				MemBudgetBytes:      c.slotMem,
				MemPressureFraction: 0.8,
				TransferTime:        c.xferTime,
				MinRunTime:          r.cfg.SplitTimeoutVSec,
			}
			if ask, why := dec.ShouldSplit(c.slv.MemoryBytes(), r.sim.Now()-c.recvAt); ask {
				reason := "timeout"
				if why == WhyMemory {
					reason = "mem-pressure"
				}
				r.requestSplit(c, reason)
			}
		}
		r.scheduleStep(c)
	})
}

// broadcast implements the master-mediated clause sharing of the live
// runtime: dedup at the master (per job — fingerprints are only
// meaningful within one formula), then deliver to the job's other busy
// clients with the modeled network delay.
func (r *runner) broadcast(from *simClient, clauses []cnf.Clause) {
	j := r.jobOf(from)
	flushEv := r.emit(trace.FEvent{Kind: trace.FEvShareFlush, Client: from.id, N: int64(len(clauses))})
	// Copy fresh clauses instead of filtering in place: the callback below
	// retains the batch past this call, and clauses aliases the donor
	// solver's learnt storage.
	var fresh []cnf.Clause
	for _, cl := range clauses {
		if !j.seen.Add(cl.Fingerprint()) {
			continue
		}
		fresh = append(fresh, cl.Clone())
	}
	if len(fresh) == 0 {
		return
	}
	r.res.Shared += len(fresh)
	relayEv := r.emit(trace.FEvent{Kind: trace.FEvShareRelay, Client: from.id,
		N: int64(len(fresh)), Parent: flushEv})
	bytes := int64(len(fresh) * 32)
	toMaster := r.xfer(from.host, r.master, bytes)
	for _, id := range r.order {
		other := r.clients[id]
		if other.id == from.id || other.job != from.job {
			continue
		}
		var delay float64
		if r.cfg.P2PSharing {
			delay = r.xfer(from.host, other.host, bytes)
		} else {
			delay = toMaster + r.xfer(r.master, other.host, bytes)
		}
		batch := fresh
		r.sim.After(delay, func() {
			if r.done || other.dead || other.slv == nil {
				return
			}
			// Cluster imports fan out to every in-host worker, like the
			// live portfolio's ImportClauses.
			for w := 0; w < other.workerCount(); w++ {
				_ = other.worker(w).ImportClauses(batch)
			}
			r.emit(trace.FEvent{Kind: trace.FEvShareMerge, Client: other.id,
				Peer: from.id, N: int64(len(batch)), Parent: relayEv})
		})
	}
}

func (r *runner) requestSplit(c *simClient, why string) {
	if c.splitAsked || !c.busy {
		return
	}
	c.splitAsked = true
	delay := r.xfer(c.host, r.master, 64)
	r.sim.After(delay, func() {
		if r.done || !c.busy {
			c.splitAsked = false
			return
		}
		c.splitReqEv = r.emit(trace.FEvent{Kind: trace.FEvSplitRequest, Client: c.id, Detail: why})
		j := r.jobOf(c)
		j.backlog = append(j.backlog, BacklogEntry{
			ClientID:    c.id,
			AssignedAt:  c.assignedAt,
			RequestedAt: r.sim.Now(),
		})
		r.serveBacklog()
	})
}

// serveBacklog pairs queued work with idle resources across every active
// job in submission order, exactly like the live master but using NWS
// forecast ranks; in multi-job mode the policy's targets cap how many
// clients each job may take, so serving never undoes a reallocation.
func (r *runner) serveBacklog() {
	if r.done {
		return
	}
	for _, id := range r.schedOrder() {
		j := r.jobs[id]
		if !j.State.Active() {
			continue
		}
		r.serveJob(j)
	}
}

// serveJob drains one job's queues into idle clients: recovered orphans
// first, then backlogged cofactors and preempted checkpoints, then the
// unstarted root, then split requests (each reserving up to the
// strategy's fanout in idle recipients).
func (r *runner) serveJob(j *runnerJob) {
	r.serveOrphans(j)
	r.serveSubBacklog(j)
	if r.multi && !j.assigned && r.capacity(j) > 0 {
		if target, ok := PickSplitTarget(r.idleCandidates(), 0); ok {
			r.assignRoot(j, r.clients[target.ID])
		}
	}
	for {
		if r.multi && r.capacity(j) <= 0 {
			return
		}
		i := NextFromBacklog(j.backlog)
		if i < 0 {
			return
		}
		donor := r.clients[j.backlog[i].ClientID]
		if donor == nil || !donor.busy || donor.job != j.ID {
			j.backlog = append(j.backlog[:i], j.backlog[i+1:]...)
			continue
		}
		budget := max(1, r.fanout)
		if r.multi {
			if cap := r.capacity(j); cap < budget {
				budget = cap
			}
		}
		var recips []int
		cands := r.idleCandidates()
		for len(recips) < budget {
			target, ok := PickSplitTarget(cands, 0)
			if !ok {
				break
			}
			rec := r.clients[target.ID]
			rec.reserved = true
			rec.job = j.ID
			recips = append(recips, rec.id)
			kept := cands[:0]
			for _, cd := range cands {
				if cd.ID != target.ID {
					kept = append(kept, cd)
				}
			}
			cands = kept
		}
		if len(recips) == 0 {
			return
		}
		j.backlog = append(j.backlog[:i], j.backlog[i+1:]...)
		donor.splitAsked = false
		j.outstanding += len(recips)
		r.nextSplitID++
		splitID := r.nextSplitID
		issueEv := r.emit(trace.FEvent{Kind: trace.FEvSplitIssue, Client: donor.id,
			Peer: recips[0], N: int64(len(recips)), SplitID: splitID, Parent: donor.splitReqEv})
		r.pending[splitID] = &runnerSplit{donor: donor.id, recipients: recips,
			resolved: map[int]bool{}, issueEv: issueEv, job: j.ID}
		delay := r.xfer(r.master, donor.host, 64)
		r.sim.After(delay, func() {
			if r.done {
				return
			}
			donor.assigns = append(donor.assigns, runnerAssign{splitID: splitID, recipients: recips})
			// An idle donor serves the assignment immediately (it will not
			// step again); a busy one serves it at its quantum boundary.
			if !donor.busy {
				r.serveAssigns(donor)
			}
		})
	}
}

// resolveLeg concludes one recipient leg without an acceptance: the
// reservation and its outstanding slot unwind, and the group is forgotten
// once every leg has concluded.
func (r *runner) resolveLeg(g *runnerSplit, splitID, rid int, detail string) {
	if g.resolved[rid] {
		return
	}
	g.resolved[rid] = true
	if rec := r.clients[rid]; rec != nil {
		rec.reserved = false
	}
	r.emit(trace.FEvent{Kind: trace.FEvSplitFail, Client: rid, Peer: g.donor,
		SplitID: splitID, Parent: g.issueEv, Detail: detail})
	r.jobs[g.job].outstanding--
	if g.left() == 0 {
		delete(r.pending, splitID)
	}
}

// serveAssigns performs queued split transfers for a donor at a quantum
// boundary (or immediately when the donor has gone idle). The strategy may
// produce fewer cofactors than reserved recipients (extras are released)
// or more (extras ride to the master's sub-backlog).
func (r *runner) serveAssigns(c *simClient) {
	for len(c.assigns) > 0 {
		a := c.assigns[0]
		c.assigns = c.assigns[1:]
		g := r.pending[a.splitID]
		if g == nil {
			continue
		}
		j := r.jobs[g.job]
		if !c.busy || c.slv == nil {
			r.releasePending(a.splitID)
			continue
		}
		batch, err := r.strategy.Split(c.slv, r.cfg.ShareMaxLen, 10000)
		if err != nil {
			r.releasePending(a.splitID)
			continue
		}
		c.recvAt = r.sim.Now() // the narrowed problem restarts the clock
		served := minInt(len(batch), len(a.recipients))
		// Recipients beyond the batch never get a payload: release them.
		for _, rid := range a.recipients[served:] {
			r.resolveLeg(g, a.splitID, rid, "released unused")
		}
		// Cofactors beyond the recipients are new live search space queued
		// at the master; model the donor-to-master transfer once.
		if len(batch) > served {
			var bytes int64
			for _, sub := range batch[served:] {
				j.subBacklog = append(j.subBacklog, backlogSub{sub: sub,
					splitID: a.splitID, donor: c.id, issueEv: g.issueEv, job: j.ID})
				j.outstanding++
				bytes += subproblemBytes(sub)
			}
			r.xfer(c.host, r.master, bytes)
			r.emit(trace.FEvent{Kind: trace.FEvSplitBacklog, Client: c.id,
				SplitID: a.splitID, N: int64(len(batch) - served), Parent: g.issueEv})
		}
		for i := 0; i < served; i++ {
			sub := batch[i]
			rid := a.recipients[i]
			recipient := r.clients[rid]
			if recipient == nil || g.resolved[rid] {
				// The leg already unwound (recipient crashed between the
				// assignment and this quantum); its cofactor is still live
				// search space, so it joins the backlog instead of vanishing.
				j.subBacklog = append(j.subBacklog, backlogSub{sub: sub,
					splitID: a.splitID, donor: c.id, issueEv: g.issueEv, job: j.ID})
				j.outstanding++
				continue
			}
			delay := r.xfer(c.host, recipient.host, subproblemBytes(sub))
			r.sim.After(delay, func() {
				if r.done || g.resolved[rid] || recipient.dead {
					return
				}
				g.resolved[rid] = true
				if g.left() == 0 {
					delete(r.pending, a.splitID)
				}
				recipient.reserved = false
				err := r.attachSolvers(recipient, func(opts solver.Options) (*solver.Solver, error) {
					return solver.NewFromSubproblem(j.Formula, sub, opts)
				})
				if err != nil {
					r.emit(trace.FEvent{Kind: trace.FEvSplitFail, Client: recipient.id,
						Peer: c.id, SplitID: a.splitID, Parent: g.issueEv, Detail: err.Error()})
					j.outstanding--
					r.serveBacklog()
					return
				}
				recipient.busy = true
				recipient.job = j.ID
				recipient.recvAt = r.sim.Now()
				recipient.assignedAt = r.sim.Now()
				recipient.xferTime = delay
				r.res.Splits++
				r.emit(trace.FEvent{Kind: trace.FEvSplitAccept, Client: recipient.id,
					Peer: c.id, SplitID: a.splitID, Parent: g.issueEv})
				r.noteBusy()
				r.scheduleStep(recipient)
			})
		}
	}
	r.serveBacklog()
}

// serveSubBacklog ships one job's queued leftover cofactors and preempted
// checkpoints (already counted in outstanding) from the master to idle
// clients. A resume entry restarts a preempted subproblem, emitting the
// migrate → resume chain under its job-preempt event instead of a
// split-accept.
func (r *runner) serveSubBacklog(j *runnerJob) {
	for len(j.subBacklog) > 0 {
		if r.multi && r.capacity(j) <= 0 {
			return
		}
		target, ok := PickSplitTarget(r.idleCandidates(), 0)
		if !ok {
			return
		}
		entry := j.subBacklog[0]
		j.subBacklog = j.subBacklog[1:]
		c := r.clients[target.ID]
		c.reserved = true
		c.job = j.ID
		delay := r.xfer(r.master, c.host, subproblemBytes(entry.sub))
		r.sim.After(delay, func() {
			if r.done || c.dead {
				return
			}
			c.reserved = false
			if !j.State.Active() {
				r.serveBacklog()
				return
			}
			err := r.attachSolvers(c, func(opts solver.Options) (*solver.Solver, error) {
				return solver.NewFromSubproblem(j.Formula, entry.sub, opts)
			})
			if err != nil {
				r.emit(trace.FEvent{Kind: trace.FEvSplitFail, Client: c.id,
					Peer: entry.donor, SplitID: entry.splitID, Parent: entry.issueEv, Detail: err.Error()})
				j.outstanding--
				r.serveBacklog()
				return
			}
			c.busy = true
			c.recvAt = r.sim.Now()
			c.assignedAt = r.sim.Now()
			c.xferTime = delay
			if entry.resume {
				r.markSimStarted(j)
				r.emit(trace.FEvent{Kind: trace.FEvMigrate, Client: entry.donor,
					Peer: c.id, Job: j.ID, Parent: entry.issueEv})
				r.emit(trace.FEvent{Kind: trace.FEvJobResume, Client: c.id,
					Job: j.ID, Parent: entry.issueEv})
			} else {
				r.res.Splits++
				r.emit(trace.FEvent{Kind: trace.FEvSplitAccept, Client: c.id,
					Peer: entry.donor, SplitID: entry.splitID, Parent: entry.issueEv})
			}
			r.noteBusy()
			r.scheduleStep(c)
		})
	}
}

// maybeMigrate implements the paper's §3.4 migration policy: when a much
// better resource sits idle (for example, Blue Horizon nodes just joined
// or a cluster freed up), the master directs the weakest long-running busy
// client to hand its whole problem over instead of splitting it.
func (r *runner) maybeMigrate() {
	if r.cfg.MigrationFactor <= 0 {
		return
	}
	target, ok := PickSplitTarget(r.idleCandidates(), 0)
	if !ok {
		return
	}
	// Find the busy client on the weakest host that has held its problem
	// for at least one split-timeout period.
	var weakest *simClient
	var weakestRank float64
	for _, id := range r.order {
		c := r.clients[id]
		if !c.busy || c.slv == nil || c.migrating {
			continue
		}
		if r.sim.Now()-c.recvAt < r.cfg.SplitTimeoutVSec {
			continue
		}
		rank := r.info.Forecast(c.host).Rank
		if weakest == nil || rank < weakestRank {
			weakest = c
			weakestRank = rank
		}
	}
	if weakest == nil || target.Rank < r.cfg.MigrationFactor*weakestRank {
		return
	}
	recipient := r.clients[target.ID]
	if recipient == nil || recipient.id == weakest.id {
		return
	}
	// The whole problem moves: level-0 assignments plus learned clauses.
	// Only the pathfinder's state migrates; the donor's extras are torn
	// down and the recipient rebuilds a fresh portfolio from the
	// checkpoint, exactly like the live client's performMigrate.
	j := r.jobOf(weakest)
	cp := weakest.slv.Checkpoint(solver.HeavyCheckpoint, 10000)
	sub := &solver.Subproblem{NumVars: cp.NumVars, Assumptions: cp.Level0,
		Learnts: cp.Learnts, Depth: cp.Depth}
	r.retire(weakest)
	weakest.migrating = true
	weakest.busy = false
	weakest.splitAsked = false
	r.serveAssigns(weakest) // release split assignments queued for the donor
	recipient.reserved = true
	recipient.job = j.ID
	bytes := subproblemBytes(sub)
	delay := r.xfer(weakest.host, recipient.host, bytes)
	r.sim.After(delay, func() {
		weakest.migrating = false
		if r.done || recipient.dead {
			j.outstanding-- // the piece is lost with the recipient
			recipient.reserved = false
			r.jobExhausted(j)
			return
		}
		recipient.reserved = false
		if !j.State.Active() {
			return
		}
		err := r.attachSolvers(recipient, func(opts solver.Options) (*solver.Solver, error) {
			return solver.NewFromSubproblem(j.Formula, sub, opts)
		})
		if err != nil {
			return
		}
		recipient.busy = true
		recipient.recvAt = r.sim.Now()
		recipient.assignedAt = r.sim.Now()
		recipient.xferTime = delay
		r.res.Migrations++
		r.emit(trace.FEvent{Kind: trace.FEvMigrate, Client: weakest.id, Peer: recipient.id, Job: j.ID})
		r.noteBusy()
		r.scheduleStep(recipient)
	})
}

// failClient simulates a crash (paper §3.4). An idle client is simply
// forgotten ("the master becomes aware of it and marks the resource as
// free" — here the host is lost outright). A busy client's subproblem is
// rebuilt from its light checkpoint — the level-0 assignments, with the
// initial clauses re-read from the problem file — and queued for
// reassignment to an idle resource.
func (r *runner) failClient(id int) {
	c := r.clients[id]
	if c == nil || r.done {
		return
	}
	j := r.jobOf(c)
	var orphan *solver.Subproblem
	if c.busy && c.slv != nil {
		cp := c.slv.Checkpoint(solver.LightCheckpoint, 0)
		orphan = &solver.Subproblem{NumVars: cp.NumVars, Assumptions: cp.Level0, Depth: cp.Depth}
	}
	r.retire(c)
	c.dead = true
	c.busy = false
	leaveEv := r.emit(trace.FEvent{Kind: trace.FEvClientLeave, Client: id, Detail: "crash"})
	// Remove the client; in-flight messages to it become no-ops because
	// its entry disappears.
	delete(r.clients, id)
	for i, v := range r.order {
		if v == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	// Reservations and transfers involving the dead client unwind. Walk
	// the pending map in split-ID order so the emitted split-fail events
	// (and thus the flight log) stay deterministic.
	var pendIDs []int
	for splitID := range r.pending {
		pendIDs = append(pendIDs, splitID)
	}
	sort.Ints(pendIDs)
	for _, splitID := range pendIDs {
		g := r.pending[splitID]
		if g.donor == id {
			// The donor died: every unresolved leg unwinds.
			r.emit(trace.FEvent{Kind: trace.FEvSplitFail, Client: g.donor,
				Peer: g.recipients[0], SplitID: splitID, Parent: g.issueEv, Detail: "client lost"})
			for _, rid := range g.recipients {
				if g.resolved[rid] {
					continue
				}
				g.resolved[rid] = true
				if rec := r.clients[rid]; rec != nil {
					rec.reserved = false
				}
				r.jobs[g.job].outstanding--
			}
			delete(r.pending, splitID)
			continue
		}
		for _, rid := range g.recipients {
			if rid == id && !g.resolved[rid] {
				r.resolveLeg(g, splitID, rid, "client lost")
			}
		}
	}
	if orphan != nil && j.State.Active() {
		j.orphans = append(j.orphans, orphanEntry{sub: orphan, ev: leaveEv})
		// The crashed client's outstanding piece survives as an orphan; no
		// change to the outstanding count.
		r.serveOrphans(j)
	}
	// Unwinding in-flight legs may have exhausted any job's search space.
	for _, jid := range r.jobOrder {
		if r.done {
			return
		}
		r.jobExhausted(r.jobs[jid])
	}
}

// serveOrphans reassigns one job's checkpointed subproblems (from crashed
// clients) to idle resources.
func (r *runner) serveOrphans(j *runnerJob) {
	for len(j.orphans) > 0 {
		if r.multi && r.capacity(j) <= 0 {
			return
		}
		target, ok := PickSplitTarget(r.idleCandidates(), 0)
		if !ok {
			return
		}
		entry := j.orphans[0]
		j.orphans = j.orphans[1:]
		c := r.clients[target.ID]
		c.reserved = true
		c.job = j.ID
		bytes := subproblemBytes(entry.sub)
		delay := r.xfer(r.master, c.host, bytes)
		r.sim.After(delay, func() {
			if r.done || c.dead {
				return
			}
			c.reserved = false
			if !j.State.Active() {
				r.serveBacklog()
				return
			}
			err := r.attachSolvers(c, func(opts solver.Options) (*solver.Solver, error) {
				return solver.NewFromSubproblem(j.Formula, entry.sub, opts)
			})
			if err != nil {
				return
			}
			c.busy = true
			c.recvAt = r.sim.Now()
			c.assignedAt = r.sim.Now()
			c.xferTime = delay
			r.emit(trace.FEvent{Kind: trace.FEvRecover, Client: c.id, Job: j.ID, Parent: entry.ev})
			r.noteBusy()
			r.scheduleStep(c)
		})
	}
}

// releasePending undoes a whole group's reservations when its transfers
// will never happen (the donor went idle or could not split).
func (r *runner) releasePending(splitID int) {
	g := r.pending[splitID]
	if g == nil {
		return
	}
	j := r.jobs[g.job]
	r.emit(trace.FEvent{Kind: trace.FEvSplitFail, Client: g.donor,
		Peer: g.recipients[0], SplitID: splitID, Parent: g.issueEv})
	delete(r.pending, splitID)
	for _, rid := range g.recipients {
		if g.resolved[rid] {
			continue
		}
		if rec := r.clients[rid]; rec != nil {
			rec.reserved = false
		}
		j.outstanding--
	}
	if r.jobExhausted(j) {
		return
	}
	r.serveBacklog()
}

func subproblemBytes(sub *solver.Subproblem) int64 {
	n := len(sub.Assumptions) * 4
	for _, c := range sub.Learnts {
		n += len(c)*4 + 8
	}
	return int64(n + 64)
}

func (r *runner) idleCandidates() []Candidate {
	var out []Candidate
	for _, id := range r.order {
		c := r.clients[id]
		if c.busy || c.reserved || c.migrating || !c.registered {
			continue
		}
		info := r.info.Forecast(c.host)
		out = append(out, Candidate{ID: c.id, Rank: info.Rank, MemBytes: info.MemForecast})
	}
	return out
}

func (r *runner) noteBusy() {
	n := r.busyCount()
	if n > r.res.MaxClients {
		r.res.MaxClients = n
	}
	r.sample(n)
}

func (r *runner) busyCount() int {
	n := 0
	for _, c := range r.clients {
		if c.busy {
			n++
		}
	}
	return n
}

// sample appends a timeline point, collapsing consecutive equal counts.
func (r *runner) sample(busy int) {
	tl := r.res.Timeline
	if len(tl) > 0 && tl[len(tl)-1].Busy == busy && tl[len(tl)-1].VSec == r.sim.Now() {
		return
	}
	r.res.Timeline = append(tl, TimelinePoint{VSec: r.sim.Now(), Busy: busy})
}
