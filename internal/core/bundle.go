package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"gridsat/internal/obs/history"
	"gridsat/internal/trace"
)

// Postmortem black-box bundles: when a job fails or is cancelled, a
// watchdog rule fires, or an operator POSTs /debug/bundle, the master
// writes a self-contained directory that captures everything needed to
// diagnose the run offline — the flight-log tail, pprof captures, the
// metrics/history window, a scheduler + per-client state dump, and the
// effective config. The DES writes the same bundle shape synchronously
// so bundles are deterministic and testable.

// bundleEventTail bounds the flight-log section: the newest events are
// the ones a postmortem needs, and a long-lived service's full log can
// be huge.
const bundleEventTail = 2000

// BundleSpec is everything a bundle captures. All fields are plain data
// copied out of the owning loop before writing, so writing can happen
// off the event loop.
type BundleSpec struct {
	Dir     string // parent directory (created if missing)
	Name    string // bundle subdirectory name; must be unique per bundle
	Reason  string // what triggered the capture
	TSec    float64
	Config  any                  // effective configuration
	State   any                  // scheduler + per-client state dump
	Metrics any                  // registry snapshot (nil = section records null)
	History []history.SeriesDump // sampled time-series window
	Alerts  []Alert              // watchdog alert feed at capture time
	Events  []trace.FEvent       // flight log (tail is taken here)
	// CPUProfileDur captures a CPU profile of this length into
	// pprof/cpu.pprof. 0 skips it — the DES uses 0 so bundle contents
	// stay deterministic and writing stays instant.
	CPUProfileDur time.Duration
}

// bundleManifest indexes a written bundle.
type bundleManifest struct {
	Reason   string   `json:"reason"`
	TSec     float64  `json:"t_sec"`
	Events   int      `json:"events"`
	Series   int      `json:"series"`
	Alerts   int      `json:"alerts"`
	Sections []string `json:"sections"`
	Errors   []string `json:"errors,omitempty"`
}

// WriteBundle writes the bundle directory and returns its path. The
// five sections are flight.jsonl, pprof/, metrics.json + history.json,
// state.json, and config.json; MANIFEST.json indexes them. Best-effort:
// a section that fails to capture (e.g. a CPU profile already running)
// is recorded in the manifest's errors rather than failing the bundle.
func WriteBundle(spec BundleSpec) (string, error) {
	dir := filepath.Join(spec.Dir, spec.Name)
	if err := os.MkdirAll(filepath.Join(dir, "pprof"), 0o755); err != nil {
		return "", err
	}
	man := bundleManifest{
		Reason: spec.Reason,
		TSec:   spec.TSec,
		Series: len(spec.History),
		Alerts: len(spec.Alerts),
	}
	section := func(name string, err error) {
		if err != nil {
			man.Errors = append(man.Errors, fmt.Sprintf("%s: %v", name, err))
			return
		}
		man.Sections = append(man.Sections, name)
	}

	// Section 1: flight-log tail.
	events := spec.Events
	if len(events) > bundleEventTail {
		events = events[len(events)-bundleEventTail:]
	}
	man.Events = len(events)
	section("flight.jsonl", writeBundleFile(dir, "flight.jsonl", func(f *os.File) error {
		return trace.WriteJSONL(f, events)
	}))

	// Section 2: pprof captures. Heap always; CPU only when a duration
	// is configured (the capture blocks for that long).
	section("pprof/heap.pprof", writeBundleFile(dir, "pprof/heap.pprof", func(f *os.File) error {
		return pprof.Lookup("heap").WriteTo(f, 0)
	}))
	if spec.CPUProfileDur > 0 {
		section("pprof/cpu.pprof", writeBundleFile(dir, "pprof/cpu.pprof", func(f *os.File) error {
			if err := pprof.StartCPUProfile(f); err != nil {
				return err
			}
			time.Sleep(spec.CPUProfileDur)
			pprof.StopCPUProfile()
			return nil
		}))
	}

	// Section 3: metrics snapshot + history window.
	section("metrics.json", writeBundleJSON(dir, "metrics.json", spec.Metrics))
	section("history.json", writeBundleJSON(dir, "history.json", struct {
		Series []history.SeriesDump `json:"series"`
	}{spec.History}))

	// Section 4: scheduler + per-client state, with the alert feed.
	section("state.json", writeBundleJSON(dir, "state.json", struct {
		State  any     `json:"state"`
		Alerts []Alert `json:"alerts"`
	}{spec.State, spec.Alerts}))

	// Section 5: effective configuration.
	section("config.json", writeBundleJSON(dir, "config.json", spec.Config))

	if err := writeBundleJSON(dir, "MANIFEST.json", man); err != nil {
		return "", err
	}
	return dir, nil
}

func writeBundleFile(dir, name string, fill func(*os.File) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeBundleJSON(dir, name string, v any) error {
	return writeBundleFile(dir, name, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}
