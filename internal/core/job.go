package core

import (
	"fmt"
	"sync"
	"time"

	"gridsat/internal/cnf"
	"gridsat/internal/comm"
	"gridsat/internal/obs"
	"gridsat/internal/solver"
	"gridsat/internal/trace"
)

// JobConfig describes a self-contained distributed run: a master plus a
// pool of clients inside one process, connected by an in-process transport.
// This is the programmatic front end used by examples, tests and the CLI's
// "run" mode; real multi-machine deployments launch cmd/gridsat master and
// client processes over TCP instead.
type JobConfig struct {
	// Clients is the pool size (the paper's testbed had 34).
	Clients int
	// ClientMemBytes is each simulated client's free memory.
	ClientMemBytes int64
	// ShareMaxLen bounds shared learned clauses (paper: 10 and 3).
	ShareMaxLen int
	// Timeout bounds the whole run; zero means none.
	Timeout time.Duration
	// MinRunTime floors the client split timeout; small values make test
	// runs split eagerly.
	MinRunTime time.Duration
	// SliceConflicts is the per-client solver quantum.
	SliceConflicts int64
	// Threads is each client's in-host portfolio width (0 or 1 =
	// single-solver clients, the historical behavior).
	Threads int
	// SolverOptions overrides engine tuning for every client.
	SolverOptions *solver.Options
	// SplitStrategy names the split engine every client runs
	// ("first-decision", "dilemma", "dilemma-veto"; "" = first-decision).
	SplitStrategy string
	// Metrics receives every observability series for the run (comm
	// traffic, master pool state, solver counters). nil allocates a
	// private registry, so instrumentation is always on — it is cheap
	// (see internal/bench's instrumentation ablation).
	Metrics *obs.Registry
	// MetricsAddr, when non-empty, serves /metrics, /status and pprof
	// from the master for the duration of the run.
	MetricsAddr string
	// Logger receives structured run logs; nil discards them.
	Logger *obs.Logger
	// Flight, when non-nil, records the run's control-plane flight log.
	// Master and clients share the one recorder, so causal parent IDs
	// resolve within a single log.
	Flight *trace.Flight
}

// Solve runs a complete GridSAT job over f and blocks for the result.
func Solve(f *cnf.Formula, cfg JobConfig) (Result, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.ClientMemBytes == 0 {
		cfg.ClientMemBytes = 256 << 20
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cm := comm.NewMetrics(reg)
	tr := comm.Instrument(comm.NewInprocTransport(), cm)
	counters := solver.NewCounters(reg)
	master, err := NewMaster(MasterConfig{
		Transport:       tr,
		ListenAddr:      "master",
		Formula:         f,
		Timeout:         cfg.Timeout,
		ExpectedClients: cfg.Clients,
		Metrics:         reg,
		MetricsAddr:     cfg.MetricsAddr,
		Logger:          cfg.Logger,
		Flight:          cfg.Flight,
		CommMetrics:     cm,
		SplitStrategy:   cfg.SplitStrategy,
	})
	if err != nil {
		return Result{}, err
	}

	type runResult struct {
		res Result
		err error
	}
	masterDone := make(chan runResult, 1)
	go func() {
		res, err := master.Run()
		masterDone <- runResult{res, err}
	}()

	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		cl, err := NewClient(ClientConfig{
			Transport:      tr,
			MasterAddr:     "master",
			HostName:       fmt.Sprintf("client-%02d", i),
			FreeMemBytes:   cfg.ClientMemBytes,
			SpeedHint:      1,
			ShareMaxLen:    cfg.ShareMaxLen,
			SliceConflicts: cfg.SliceConflicts,
			MinRunTime:     cfg.MinRunTime,
			Threads:        cfg.Threads,
			SolverOptions:  cfg.SolverOptions,
			SplitStrategy:  cfg.SplitStrategy,
			Counters:       counters,
			Metrics:        reg,
			Flight:         cfg.Flight,
		})
		if err != nil {
			return Result{}, fmt.Errorf("core: launching client %d: %w", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = cl.Run()
		}()
	}

	out := <-masterDone
	wg.Wait()
	out.res.Comm = cm.Totals()
	return out.res, out.err
}
