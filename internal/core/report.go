package core

import (
	"encoding/json"
	"io"
	"os"

	"gridsat/internal/comm"
	"gridsat/internal/trace"
)

// Report is the machine-readable end-of-run summary written by
// cmd/gridsat's -report flag. It is the offline counterpart of the live
// /status endpoint: everything a results table (the paper's Table 1) or
// a batch harness needs, without scraping log output.
type Report struct {
	// Instance is the CNF path or generator spec that was solved.
	Instance string `json:"instance"`
	// Status is the run verdict: "SAT", "UNSAT" or "UNKNOWN".
	Status      string  `json:"status"`
	WallSeconds float64 `json:"wall_seconds"`
	// MaxClients is the peak number of simultaneously busy clients
	// (Table 1's last column).
	MaxClients int `json:"max_clients"`
	// Threads is the in-host portfolio width each client ran with
	// (1 = classic single-solver clients).
	Threads       int `json:"threads"`
	Splits        int `json:"splits"`
	SharedClauses int `json:"shared_clauses"`
	// Clients are the per-client heartbeat aggregates, sorted by ID.
	Clients []ClientStatus `json:"clients,omitempty"`
	// Comm is the per-kind wire traffic (zero when the transport was
	// not instrumented).
	Comm comm.Totals `json:"comm"`
	// Flight is the flight-recorder aggregate (event totals per kind,
	// verdict, Lamport horizon); nil when the run was untraced.
	Flight *trace.FlightSummary `json:"flight,omitempty"`
	// Latency is the run's lifecycle SLO decomposition (queue wait, first
	// assignment, solve, turnaround); nil for runners that predate it.
	Latency *JobLatency `json:"latency,omitempty"`
}

// BuildReport converts a finished run's Result into a Report.
func BuildReport(instance string, res Result) Report {
	return Report{
		Instance:      instance,
		Status:        res.Status.String(),
		WallSeconds:   res.Wall.Seconds(),
		MaxClients:    res.MaxClients,
		Threads:       res.Threads,
		Splits:        res.Splits,
		SharedClauses: res.SharedClauses,
		Clients:       res.Clients,
		Comm:          res.Comm,
		Latency:       res.Latency,
	}
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (the -report flag's target).
func (r Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
