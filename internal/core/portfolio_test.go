package core

import (
	"bytes"
	"testing"

	"gridsat/internal/brute"
	"gridsat/internal/cnf"
	"gridsat/internal/gen"
	"gridsat/internal/solver"
)

// rootSub wraps a formula as the whole-problem subproblem (no guiding
// path), the shape the initial assignment hands a portfolio client.
func rootSub(f *cnf.Formula) *solver.Subproblem {
	return &solver.Subproblem{NumVars: f.NumVars}
}

// These tests drive the live portfolio engine — K concurrent diversified
// workers over one subproblem, racing through the lock-free pool. They are
// the -race stress surface for the whole intra-host exchange: CI runs the
// package under the race detector.

func TestPortfolioSolvesUNSAT(t *testing.T) {
	f := gen.Pigeonhole(8)
	p, err := newPortfolio(f, rootSub(f), solver.DefaultOptions(), 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Threads() != 4 {
		t.Fatalf("Threads() = %d", p.Threads())
	}
	res := p.Solve(solver.Limits{})
	if res.Status != solver.StatusUNSAT {
		t.Fatalf("got %v", res.Status)
	}
	if w := p.Winner(); w < 0 || w >= 4 {
		t.Fatalf("winner %d out of range", w)
	}
	reports := p.WorkerReports()
	if len(reports) != 4 {
		t.Fatalf("%d worker reports", len(reports))
	}
	for i, r := range reports {
		if r.Worker != i || r.Profile == "" {
			t.Fatalf("report %d malformed: %+v", i, r)
		}
	}
}

func TestPortfolioAgainstBrute(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		f := gen.RandomKSAT(18, 76, 3, seed)
		want, _ := brute.Solve(f, 0)
		p, err := newPortfolio(f, rootSub(f), solver.DefaultOptions(), 4, 10)
		if err != nil {
			t.Fatal(err)
		}
		res := p.Solve(solver.Limits{})
		if (res.Status == solver.StatusSAT) != (want == brute.SAT) {
			t.Fatalf("seed %d: portfolio says %v, brute %v", seed, res.Status, want)
		}
		if res.Status == solver.StatusSAT {
			if err := f.Verify(res.Model); err != nil {
				t.Fatalf("seed %d: winning model invalid: %v", seed, err)
			}
		}
	}
}

// TestPortfolioSlicedRace drives the portfolio the way the live client
// does — bounded slices with cluster-share drains and imports between them
// — so the race detector sees the full concurrent pool traffic pattern
// (publish during Solve, drain/import at the slice boundary).
func TestPortfolioSlicedRace(t *testing.T) {
	f := gen.Pigeonhole(9)
	p, err := newPortfolio(f, rootSub(f), solver.DefaultOptions(), 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	var drained int
	for i := 0; i < 200; i++ {
		res := p.Solve(solver.Limits{MaxPropagations: 20_000})
		p.DrainClusterShares(func(c cnf.Clause, _ int) { drained++ })
		_ = p.Stats()
		_ = p.MemoryBytes()
		_ = p.WorkerReports()
		if res.Status != solver.StatusUnknown {
			if res.Status != solver.StatusUNSAT {
				t.Fatalf("got %v", res.Status)
			}
			st := p.PoolStats()
			if st.Published == 0 || st.Delivered == 0 {
				t.Fatalf("no pool traffic in a sliced run: %+v", st)
			}
			return
		}
	}
	t.Fatal("portfolio did not finish pigeonhole(9) in 200 slices")
}

// TestPortfolioCheckpointRoundTrip interrupts a K=3 portfolio mid-run,
// checkpoints the pathfinder (the only worker checkpoint/migration ever
// serve), round-trips it through Save/Load, and restores a fresh portfolio
// from the resulting subproblem: the verdict must match the oracle.
func TestPortfolioCheckpointRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		f := gen.RandomKSAT(16, 68, 3, seed)
		want, _ := brute.Solve(f, 0)
		p, err := newPortfolio(f, rootSub(f), solver.DefaultOptions(), 3, 10)
		if err != nil {
			t.Fatal(err)
		}
		res := p.Solve(solver.Limits{MaxConflicts: 20})
		if res.Status != solver.StatusUnknown {
			continue // solved before the checkpoint; nothing to restore
		}
		p.StopAll()
		cp := p.Pathfinder().Checkpoint(solver.HeavyCheckpoint, 1000)
		var buf bytes.Buffer
		if err := cp.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := solver.LoadCheckpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}
		sub := &solver.Subproblem{NumVars: got.NumVars, Assumptions: got.Level0,
			Learnts: got.Learnts, Depth: got.Depth}
		p2, err := newPortfolio(f, sub, solver.DefaultOptions(), 3, 10)
		if err != nil {
			t.Fatal(err)
		}
		r2 := p2.Solve(solver.Limits{})
		if (r2.Status == solver.StatusSAT) != (want == brute.SAT) {
			t.Fatalf("seed %d: restored portfolio says %v, oracle %v", seed, r2.Status, want)
		}
		if r2.Status == solver.StatusSAT {
			if err := f.Verify(r2.Model); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

// TestJobPortfolioSolve runs the full live job — master plus portfolio
// clients over the in-process transport — at Threads=3.
func TestJobPortfolioSolve(t *testing.T) {
	f := gen.Pigeonhole(8)
	res, err := Solve(f, JobConfig{
		Clients:     3,
		Threads:     3,
		ShareMaxLen: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.StatusUNSAT {
		t.Fatalf("got %v", res.Status)
	}
}
