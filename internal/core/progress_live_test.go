package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gridsat/internal/comm"
	"gridsat/internal/gen"
	"gridsat/internal/obs"
	"gridsat/internal/solver"
)

// TestLiveProgressEndpointAndTop drives a live master and checks the
// /progress endpoint serves a decodable snapshot mid-run, and that the
// dashboard renderer accepts the live payloads — the `gridsat top` data
// path end to end. Pigeonhole(9) keeps the cluster busy for long enough
// that polling reliably observes it working.
func TestLiveProgressEndpointAndTop(t *testing.T) {
	reg := obs.NewRegistry()
	tr := comm.NewInprocTransport()
	m, err := NewMaster(MasterConfig{
		Transport:       tr,
		ListenAddr:      "progress-master",
		Formula:         gen.Pigeonhole(9),
		Timeout:         120 * time.Second,
		ExpectedClients: 3,
		Metrics:         reg,
		MetricsAddr:     "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := m.MetricsAddr()
	if addr == "" {
		t.Fatal("master bound no metrics address")
	}
	done := make(chan Result, 1)
	go func() {
		res, _ := m.Run()
		done <- res
	}()
	var wg sync.WaitGroup
	launch := func(i int) {
		cl, err := NewClient(ClientConfig{
			Transport:      tr,
			MasterAddr:     "progress-master",
			HostName:       fmt.Sprintf("host-%d", i),
			FreeMemBytes:   64 << 20,
			SliceConflicts: 200,
			MinRunTime:     5 * time.Millisecond,
			HeartbeatEvery: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); _ = cl.Run() }()
	}
	for i := 0; i < 3; i++ {
		launch(i)
	}

	// Poll /progress until the cluster is visibly working: all three
	// clients registered and conflicts flowing through heartbeat deltas.
	var snap ProgressSnapshot
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/progress")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
			if err == nil && snap.Registered == 3 && snap.Busy >= 1 && snap.Conflicts > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw a working cluster on /progress; last: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if snap.Coverage < 0 || snap.Coverage > 1 {
		t.Fatalf("coverage %v out of range", snap.Coverage)
	}
	if len(snap.Clients) != 3 {
		t.Fatalf("client rows = %d, want 3", len(snap.Clients))
	}
	busyRows := 0
	for _, c := range snap.Clients {
		if c.Busy {
			busyRows++
		}
		if c.Depth < 0 {
			t.Fatalf("client %d has negative depth", c.ID)
		}
	}
	if busyRows != snap.Busy {
		t.Fatalf("busy rows %d disagree with snapshot busy %d", busyRows, snap.Busy)
	}

	// /status joins the same frame; render it like `gridsat top` does.
	var status StatusSnapshot
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	frame := RenderTop(snap, status, TopWidth)
	if !strings.Contains(frame, "GridSAT running") {
		t.Errorf("live frame missing headline:\n%s", frame)
	}
	for i, line := range strings.Split(strings.TrimSuffix(frame, "\n"), "\n") {
		if len(line) != TopWidth {
			t.Fatalf("live frame line %d is %d columns", i+1, len(line))
		}
	}

	res := <-done
	wg.Wait()
	if res.Status != solver.StatusUNSAT {
		t.Fatalf("run ended %v", res.Status)
	}
}
