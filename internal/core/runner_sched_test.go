package core

import (
	"testing"

	"gridsat/internal/brute"
	"gridsat/internal/cnf"
	"gridsat/internal/gen"
	"gridsat/internal/grid"
	"gridsat/internal/solver"
	"gridsat/internal/trace"
)

func desSchedConfig(jobs []SimJob, policy string, timeout float64) RunnerConfig {
	return RunnerConfig{
		Grid:              grid.TestbedGrADS(1),
		Jobs:              jobs,
		SchedPolicy:       policy,
		TimeoutVSec:       timeout,
		PropsPerVSec:      1000,
		QuantumProps:      5000,
		ShareMaxLen:       10,
		MasterHostID:      -1,
		MonitorPeriodVSec: 10,
		Seed:              1,
	}
}

// schedSATFormula is a satisfiable instance whose SAT-ness is verified
// against the brute-force oracle, so verdict assertions can't drift with
// the generator.
func schedSATFormula(t *testing.T) *cnf.Formula {
	t.Helper()
	f := gen.RandomKSAT(20, 70, 3, 11)
	if want, _ := brute.Solve(f, 0); want != brute.SAT {
		t.Fatal("fixture formula is not SAT; pick another seed")
	}
	return f
}

func jobByID(t *testing.T, res SimResult, id int) SimJobResult {
	t.Helper()
	for _, jr := range res.Jobs {
		if jr.ID == id {
			return jr
		}
	}
	t.Fatalf("no result for job %d in %+v", id, res.Jobs)
	return SimJobResult{}
}

// TestRunDistributedTwoConcurrentJobs is the DES half of the multi-job
// acceptance criterion: two jobs overlap in virtual time under fair-share
// and both reach correct verdicts.
func TestRunDistributedTwoConcurrentJobs(t *testing.T) {
	sat := schedSATFormula(t)
	jobs := []SimJob{
		{Name: "unsat", Formula: gen.Pigeonhole(8), Priority: 1, ArrivalVSec: 1},
		{Name: "sat", Formula: sat, Priority: 1, ArrivalVSec: 2},
	}
	fl := trace.NewFlight(nil)
	cfg := desSchedConfig(jobs, "fair-share", 50_000)
	cfg.Flight = fl
	res := RunDistributed(cfg)
	if res.Outcome != OutcomeSolved {
		t.Fatalf("outcome %v, want solved (jobs: %+v)", res.Outcome, res.Jobs)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("got %d job results, want 2", len(res.Jobs))
	}
	j1, j2 := jobByID(t, res, 1), jobByID(t, res, 2)
	if j1.Verdict != "UNSAT" {
		t.Fatalf("job 1 verdict %q, want UNSAT", j1.Verdict)
	}
	if j2.Verdict != "SAT" {
		t.Fatalf("job 2 verdict %q, want SAT", j2.Verdict)
	}
	if err := sat.Verify(j2.Model); err != nil {
		t.Fatalf("job 2 model does not satisfy its formula: %v", err)
	}
	// Both jobs ran concurrently: job 2 started before job 1 finished.
	if j2.StartVSec >= j1.FinishVSec {
		t.Fatalf("jobs never overlapped: job 2 started at %v, job 1 finished at %v",
			j2.StartVSec, j1.FinishVSec)
	}
	if res.MakespanVSec <= 0 {
		t.Fatal("makespan not recorded")
	}
	// The flight log's job verdicts agree with the result.
	verdicts := trace.JobVerdicts(fl.Events())
	if verdicts[1] != "UNSAT" || verdicts[2] != "SAT" {
		t.Fatalf("flight verdicts %v disagree with results", verdicts)
	}
}

// TestRunDistributedSchedPreemptChain asserts a real malleable
// reassignment inside the DES: a long job absorbs the cluster, a second
// arrival forces a preemption, and the flight log shows the
// preempt → migrate → resume chain with matching parents.
func TestRunDistributedSchedPreemptChain(t *testing.T) {
	jobs := []SimJob{
		{Name: "long", Formula: gen.Pigeonhole(9), Priority: 1, ArrivalVSec: 1},
		{Name: "late", Formula: gen.Pigeonhole(7), Priority: 1, ArrivalVSec: 40},
	}
	fl := trace.NewFlight(nil)
	cfg := desSchedConfig(jobs, "fair-share", 200_000)
	// Two clients total, so the long job provably holds the whole cluster
	// when the second job arrives — its start REQUIRES a preemption.
	cfg.MaxClients = 2
	cfg.Flight = fl
	res := RunDistributed(cfg)
	if res.Outcome != OutcomeSolved {
		t.Fatalf("outcome %v (jobs: %+v)", res.Outcome, res.Jobs)
	}
	j1, j2 := jobByID(t, res, 1), jobByID(t, res, 2)
	if j1.Verdict != "UNSAT" || j2.Verdict != "UNSAT" {
		t.Fatalf("verdicts %q/%q, want UNSAT/UNSAT (lost search space?)", j1.Verdict, j2.Verdict)
	}
	if res.Preemptions < 1 {
		t.Fatalf("preemptions = %d, want >= 1", res.Preemptions)
	}
	var preempt, migrate, resume *trace.FEvent
	evs := fl.Events()
	for i := range evs {
		ev := &evs[i]
		switch {
		case ev.Kind == trace.FEvJobPreempt && preempt == nil:
			preempt = ev
		case ev.Kind == trace.FEvMigrate && preempt != nil && ev.Parent == preempt.ID && migrate == nil:
			migrate = ev
		case ev.Kind == trace.FEvJobResume && preempt != nil && ev.Parent == preempt.ID && resume == nil:
			resume = ev
		}
	}
	if preempt == nil || migrate == nil || resume == nil {
		t.Fatalf("incomplete preempt chain: preempt=%v migrate=%v resume=%v",
			preempt != nil, migrate != nil, resume != nil)
	}
	if migrate.Client != preempt.Client {
		t.Fatalf("migrate donor %d is not the preempted client %d", migrate.Client, preempt.Client)
	}
	if resume.Client != migrate.Peer {
		t.Fatalf("resume client %d is not the migrate recipient %d", resume.Client, migrate.Peer)
	}
	if migrate.Job != preempt.Job || resume.Job != preempt.Job {
		t.Fatalf("chain crosses jobs: preempt job %d, migrate %d, resume %d",
			preempt.Job, migrate.Job, resume.Job)
	}
}

// TestRunDistributedSchedCancel cancels a job mid-run and expects the
// survivor to finish normally while the cancelled one reports CANCELLED.
func TestRunDistributedSchedCancel(t *testing.T) {
	jobs := []SimJob{
		{Name: "doomed", Formula: gen.Pigeonhole(10), Priority: 1, ArrivalVSec: 1, CancelVSec: 60},
		{Name: "keeper", Formula: gen.Pigeonhole(7), Priority: 1, ArrivalVSec: 5},
	}
	res := RunDistributed(desSchedConfig(jobs, "fifo", 200_000))
	if res.Outcome != OutcomeSolved {
		t.Fatalf("outcome %v (jobs: %+v)", res.Outcome, res.Jobs)
	}
	if v := jobByID(t, res, 1).Verdict; v != "CANCELLED" {
		t.Fatalf("job 1 verdict %q, want CANCELLED", v)
	}
	if v := jobByID(t, res, 2).Verdict; v != "UNSAT" {
		t.Fatalf("job 2 verdict %q, want UNSAT", v)
	}
}

// TestRunDistributedSchedDeterministic reruns the same multi-job config
// and expects identical results and identical flight logs — the property
// the scheduler ablation harness depends on.
func TestRunDistributedSchedDeterministic(t *testing.T) {
	mk := func() (SimResult, []trace.FEvent) {
		sat := gen.RandomKSAT(20, 70, 3, 11)
		jobs := []SimJob{
			{Name: "a", Formula: gen.Pigeonhole(8), Priority: 2, ArrivalVSec: 1},
			{Name: "b", Formula: sat, Priority: 1, ArrivalVSec: 3},
			{Name: "c", Formula: gen.Pigeonhole(7), Priority: 1, ArrivalVSec: 6},
		}
		fl := trace.NewFlight(nil)
		cfg := desSchedConfig(jobs, "priority", 100_000)
		cfg.Flight = fl
		return RunDistributed(cfg), fl.Events()
	}
	r1, e1 := mk()
	r2, e2 := mk()
	if r1.VSec != r2.VSec || r1.Preemptions != r2.Preemptions || len(r1.Jobs) != len(r2.Jobs) {
		t.Fatalf("results diverge: %+v vs %+v", r1, r2)
	}
	for i := range r1.Jobs {
		if r1.Jobs[i].Verdict != r2.Jobs[i].Verdict || r1.Jobs[i].FinishVSec != r2.Jobs[i].FinishVSec {
			t.Fatalf("job %d diverges: %+v vs %+v", i, r1.Jobs[i], r2.Jobs[i])
		}
	}
	if len(e1) != len(e2) {
		t.Fatalf("flight logs diverge: %d vs %d events", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("flight event %d diverges:\n%+v\n%+v", i, e1[i], e2[i])
		}
	}
}

// TestRunDistributedSingleJobUnchanged guards the bit-identity contract:
// a single-job run through the scheduler-aware runner must produce the
// same verdict, virtual time, and flight log as before the refactor —
// job 0 stays implicit and no scheduler events leak into the log.
func TestRunDistributedSingleJobUnchanged(t *testing.T) {
	fl := trace.NewFlight(nil)
	cfg := desConfig(gen.Pigeonhole(8), 10_000)
	cfg.Flight = fl
	res := RunDistributed(cfg)
	if res.Outcome != OutcomeSolved || res.Status != solver.StatusUNSAT {
		t.Fatalf("got %v/%v", res.Outcome, res.Status)
	}
	if res.Jobs != nil || res.Preemptions != 0 {
		t.Fatalf("single-job run grew scheduler results: %+v", res.Jobs)
	}
	for _, ev := range fl.Events() {
		if ev.Job != 0 {
			t.Fatalf("single-job event carries a job tag: %+v", ev)
		}
		switch ev.Kind {
		case trace.FEvJobSubmit, trace.FEvJobStart, trace.FEvJobPreempt,
			trace.FEvJobResume, trace.FEvJobDone, trace.FEvJobCancel:
			t.Fatalf("single-job run emitted scheduler lifecycle event %+v", ev)
		}
	}
}

// TestSimJobDemandAndCapacity pins the DES demand estimate the policies
// apportion against.
func TestSimJobDemandAndCapacity(t *testing.T) {
	r := &runner{fanout: 2}
	j := newRunnerJob(1, "x", nil, 1)
	if d := r.simJobDemand(j); d != 1 {
		t.Fatalf("unstarted job demand %d, want 1 (the root)", d)
	}
	j.assigned = true
	j.outstanding = 3
	j.backlog = []BacklogEntry{{ClientID: 1}}
	if d := r.simJobDemand(j); d != 5 {
		t.Fatalf("demand %d, want outstanding 3 + backlog 1×fanout 2 = 5", d)
	}
}
