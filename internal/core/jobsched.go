package core

import (
	"fmt"
	"sort"

	"gridsat/internal/cnf"
)

// This file is the scheduler layer on top of the single-job core: the
// explicit Job entity (queued → running → preempted → done/cancelled),
// the SchedPolicy interface deciding how many clients each concurrently
// running job holds (malleable allocation, in Mallob's sense), and the
// admission control that bounds how much work the service accepts. Both
// runtimes — the live master behind `gridsat serve` and the DES runner's
// multi-job workloads — share these pieces, so a policy benchmarked
// deterministically in the DES is the same code that schedules a real
// deployment.

// JobState is a job's lifecycle state.
type JobState int

// Job lifecycle: Queued jobs are admitted and waiting for their first
// client; Running jobs hold at least one client; Preempted jobs have
// started but currently hold none (the policy allocated their clients
// elsewhere — their partial work waits, checkpointed, in the backlog);
// Done and Cancelled are terminal.
const (
	JobQueued JobState = iota
	JobRunning
	JobPreempted
	JobDone
	JobCancelled
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobPreempted:
		return "preempted"
	case JobDone:
		return "done"
	case JobCancelled:
		return "cancelled"
	}
	return "unknown"
}

// Active reports whether the job still wants clients.
func (s JobState) Active() bool {
	return s == JobQueued || s == JobRunning || s == JobPreempted
}

// Job is one SAT instance moving through the scheduler. The solving
// bookkeeping (backlog, coverage, aggregates) lives with the runtime that
// owns the job; this is the shared identity and lifecycle record.
type Job struct {
	ID       int
	Name     string
	Priority int // >= 1; higher is more important under the priority policy
	Formula  *cnf.Formula
	State    JobState
	// Timestamps in the owning runtime's clock (wall seconds for the live
	// master, virtual seconds in the DES). FirstAssignAt is when the root
	// subproblem was first handed out — with StartedAt it decomposes the
	// queue-wait SLO from the assignment latency.
	SubmittedAt   float64
	StartedAt     float64
	FirstAssignAt float64
	FinishedAt    float64
	// Preemptions counts how many times a client was taken from this job
	// mid-subproblem (checkpoint → backlog → reassigned elsewhere).
	Preemptions int
}

// TurnaroundSec is submission-to-finish latency (0 while unfinished).
func (j *Job) TurnaroundSec() float64 {
	if j.State != JobDone && j.State != JobCancelled {
		return 0
	}
	return j.FinishedAt - j.SubmittedAt
}

// JobSnapshot is the JSON view of one job served by the /jobs API,
// /status, /progress and `gridsat top`.
type JobSnapshot struct {
	ID       int    `json:"id"`
	Name     string `json:"name,omitempty"`
	Priority int    `json:"priority"`
	State    string `json:"state"`
	// Clients is how many clients the job currently holds.
	Clients       int     `json:"clients"`
	SubmittedAt   float64 `json:"submitted_at"`
	StartedAt     float64 `json:"started_at,omitempty"`
	FirstAssignAt float64 `json:"first_assign_at,omitempty"`
	FinishedAt    float64 `json:"finished_at,omitempty"`
	Preemptions   int     `json:"preemptions"`
	// Lifecycle SLO decomposition (seconds; zero until the phase ends):
	// queue wait (submit → start), solve (start → finish) and end-to-end
	// turnaround (submit → finish).
	QueueWaitSec  float64 `json:"queue_wait_sec,omitempty"`
	SolveSec      float64 `json:"solve_sec,omitempty"`
	TurnaroundSec float64 `json:"turnaround_sec,omitempty"`
	// Coverage is the refuted search-space fraction (the per-job progress
	// estimator); ConflictRate is the job's aggregate conflicts/sec EWMA.
	Coverage     float64 `json:"coverage"`
	ConflictRate float64 `json:"conflict_rate"`
	// Verdict is "" until the job is done, then SAT/UNSAT/UNKNOWN (or
	// CANCELLED).
	Verdict string `json:"verdict,omitempty"`
	// Model carries a SAT verdict's satisfying assignment as DIMACS
	// literals, only on the /jobs/<id>/result view.
	Model []int `json:"model,omitempty"`
}

// SchedShare is one active job's claim presented to a SchedPolicy,
// in submission order (ID order — IDs are issued monotonically).
type SchedShare struct {
	JobID    int
	Priority int
	// Demand caps how many clients the job can use right now (its
	// outstanding subproblems + backlogged work + 1 for growth headroom);
	// 0 means unbounded.
	Demand int
}

// SchedPolicy decides the malleable allocation: how many of the cluster's
// clients each active job should hold. Implementations must be
// deterministic (pure functions of their inputs) — the DES replays them.
type SchedPolicy interface {
	Name() string
	// Allocate returns a client count per JobID. jobs arrive in
	// submission order and total is the number of allocatable clients;
	// the returned counts must sum to at most total. Jobs absent from the
	// map get zero.
	Allocate(jobs []SchedShare, total int) map[int]int
}

// ParseSchedPolicy maps a -sched-policy flag value to its engine.
// "" and "fifo" are run-to-completion submission order; "fair-share"
// splits clients evenly across active jobs; "priority" apportions
// proportionally to job priority.
func ParseSchedPolicy(name string) (SchedPolicy, error) {
	switch name {
	case "", "fifo":
		return fifoPolicy{}, nil
	case "fair-share":
		return fairSharePolicy{}, nil
	case "priority":
		return priorityPolicy{}, nil
	}
	return nil, fmt.Errorf("core: unknown scheduling policy %q (want fifo, fair-share or priority)", name)
}

// SchedPolicyNames documents the -sched-policy vocabulary for CLI help.
const SchedPolicyNames = "fifo (default), fair-share, priority"

// fifoPolicy runs jobs to completion in submission order: the oldest
// active job gets every client (bounded by its demand; leftovers spill to
// the next job, so a draining job does not idle the cluster).
type fifoPolicy struct{}

func (fifoPolicy) Name() string { return "fifo" }

func (fifoPolicy) Allocate(jobs []SchedShare, total int) map[int]int {
	out := make(map[int]int, len(jobs))
	for _, j := range jobs {
		if total <= 0 {
			break
		}
		n := total
		if j.Demand > 0 && j.Demand < n {
			n = j.Demand
		}
		out[j.JobID] = n
		total -= n
	}
	return out
}

// fairSharePolicy splits clients evenly across every active job,
// earliest-submitted jobs taking the remainder; a job's surplus above its
// demand redistributes to later jobs.
type fairSharePolicy struct{}

func (fairSharePolicy) Name() string { return "fair-share" }

func (fairSharePolicy) Allocate(jobs []SchedShare, total int) map[int]int {
	weights := make([]int, len(jobs))
	for i := range weights {
		weights[i] = 1
	}
	return apportion(jobs, weights, total)
}

// priorityPolicy apportions clients proportionally to job priority
// (largest-remainder method, earlier submission breaking ties), so a
// priority-10 job holds ~10× the clients of a priority-1 one but nobody
// starves outright while clients outnumber jobs.
type priorityPolicy struct{}

func (priorityPolicy) Name() string { return "priority" }

func (priorityPolicy) Allocate(jobs []SchedShare, total int) map[int]int {
	weights := make([]int, len(jobs))
	for i, j := range jobs {
		weights[i] = j.Priority
		if weights[i] < 1 {
			weights[i] = 1
		}
	}
	return apportion(jobs, weights, total)
}

// apportion distributes total clients proportionally to weights using the
// largest-remainder method, capped by per-job demand, with leftovers
// flowing to the earliest job that can still use them. Deterministic:
// ties break toward earlier submission.
func apportion(jobs []SchedShare, weights []int, total int) map[int]int {
	out := make(map[int]int, len(jobs))
	if total <= 0 || len(jobs) == 0 {
		return out
	}
	wsum := 0
	for _, w := range weights {
		wsum += w
	}
	type frac struct {
		idx int
		rem int // numerator of the fractional part, denominator wsum
	}
	given := 0
	fracs := make([]frac, 0, len(jobs))
	for i, j := range jobs {
		share := total * weights[i] / wsum
		if j.Demand > 0 && share > j.Demand {
			share = j.Demand
		}
		out[j.JobID] = share
		given += share
		fracs = append(fracs, frac{i, total * weights[i] % wsum})
	}
	// Hand out the remainder by descending fractional part, then
	// submission order; skip demand-capped jobs.
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].rem > fracs[b].rem })
	for given < total {
		advanced := false
		for _, f := range fracs {
			if given >= total {
				break
			}
			j := jobs[f.idx]
			if j.Demand > 0 && out[j.JobID] >= j.Demand {
				continue
			}
			out[j.JobID]++
			given++
			advanced = true
		}
		if !advanced {
			break // every job demand-capped; leave the rest idle
		}
	}
	return out
}

// Admission is the service's admission-control policy: a submission is
// rejected when the active job count or the summed formula memory
// estimate would exceed the caps, so a queue of huge instances cannot
// wedge the master.
type Admission struct {
	// MaxActive caps admitted-but-unfinished jobs (queued + running +
	// preempted). 0 derives the cap from the cluster: one job per
	// registered client, minimum DefaultMaxActive.
	MaxActive int
	// MemBudgetBytes caps the summed FormulaMemBytes of active jobs.
	// 0 = no memory cap.
	MemBudgetBytes int64
}

// DefaultMaxActive is the floor for the client-count-derived active-job
// cap, so a service with no clients yet can still accept a small queue.
const DefaultMaxActive = 8

// Admit decides whether a job with formula footprint estBytes may join,
// given the current active job count, their summed footprint, and the
// registered client count.
func (a Admission) Admit(estBytes int64, active int, activeBytes int64, clients int) error {
	maxActive := a.MaxActive
	if maxActive == 0 {
		maxActive = clients
		if maxActive < DefaultMaxActive {
			maxActive = DefaultMaxActive
		}
	}
	if active >= maxActive {
		return fmt.Errorf("core: admission rejected: %d active jobs at the cap (%d)", active, maxActive)
	}
	if a.MemBudgetBytes > 0 && activeBytes+estBytes > a.MemBudgetBytes {
		return fmt.Errorf("core: admission rejected: formula needs ~%d bytes, budget has %d of %d left",
			estBytes, a.MemBudgetBytes-activeBytes, a.MemBudgetBytes)
	}
	return nil
}

// FormulaMemBytes estimates a formula's resident footprint at a client:
// the literal arrays plus per-clause and watcher overhead. Deliberately
// rough — admission control needs an order of magnitude, not an audit.
func FormulaMemBytes(f *cnf.Formula) int64 {
	if f == nil {
		return 0
	}
	lits := int64(0)
	for _, c := range f.Clauses {
		lits += int64(len(c))
	}
	return lits*8 + int64(len(f.Clauses))*32 + int64(f.NumVars)*64
}
