package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"gridsat/internal/comm"
	"gridsat/internal/gen"
	"gridsat/internal/obs"
	"gridsat/internal/solver"
)

// promSample matches one Prometheus exposition sample line.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[-+]?(Inf|[0-9.eE+-]+))$`)

// checkPromText asserts body parses as Prometheus text format 0.0.4.
func checkPromText(t *testing.T, body string) {
	t.Helper()
	n := 0
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
		n++
	}
	if n == 0 {
		t.Error("exposition contained no samples")
	}
}

// TestJobMetricsAndReport covers the Solve-level wiring end to end: the
// instrumented transport fills Result.Comm, heartbeat deltas fill
// Result.Clients, the registry carries matching series, and the report
// built from the Result round-trips through JSON consistently.
func TestJobMetricsAndReport(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := quickJob(4)
	cfg.Metrics = reg
	f := gen.Pigeonhole(8)
	res, err := Solve(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.StatusUNSAT {
		t.Fatalf("got %v", res.Status)
	}

	// Wire traffic was measured per kind and direction.
	if res.Comm.MsgsSent == 0 || res.Comm.BytesSent == 0 {
		t.Fatalf("no traffic recorded: %+v", res.Comm)
	}
	if res.Comm.PerKind["register"].MsgsSent < 4 {
		t.Errorf("register msgs = %d, want >= one per client", res.Comm.PerKind["register"].MsgsSent)
	}
	if res.Comm.PerKind["split-payload"].BytesSent == 0 {
		t.Error("split payloads moved but no bytes counted")
	}

	// Heartbeat deltas aggregated into per-client totals.
	if len(res.Clients) == 0 {
		t.Fatal("no per-client aggregates in the result")
	}
	var decisions, conflicts int64
	for _, c := range res.Clients {
		decisions += c.Decisions
		conflicts += c.Conflicts
	}
	if decisions == 0 || conflicts == 0 {
		t.Errorf("aggregated decisions=%d conflicts=%d, want both > 0", decisions, conflicts)
	}

	// The registry agrees with the Result.
	snap := reg.Snapshot()
	if v := snap.CounterValue("gridsat_master_splits_total"); v != int64(res.Splits) {
		t.Errorf("registry splits %d != result %d", v, res.Splits)
	}
	if v := snap.CounterValue("gridsat_master_shared_clauses_total"); v != int64(res.SharedClauses) {
		t.Errorf("registry shared %d != result %d", v, res.SharedClauses)
	}
	if v := snap.CounterValue("gridsat_solver_decisions_total"); v == 0 {
		t.Error("always-on solver counters recorded nothing")
	}
	if v := snap.CounterValue("gridsat_comm_msgs_total"); v != res.Comm.MsgsSent+res.Comm.MsgsRecv {
		t.Errorf("registry comm msgs %d != totals %d", v, res.Comm.MsgsSent+res.Comm.MsgsRecv)
	}

	// Report: build, serialize, re-read, and validate against the Result.
	rep := BuildReport("pigeonhole-8", res)
	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Status != res.Status.String() || back.Splits != res.Splits ||
		back.SharedClauses != res.SharedClauses || back.MaxClients != res.MaxClients {
		t.Errorf("report %+v disagrees with result", back)
	}
	if back.Comm.MsgsSent != res.Comm.MsgsSent || back.Comm.BytesSent != res.Comm.BytesSent {
		t.Errorf("report comm %+v != result comm %+v", back.Comm, res.Comm)
	}
	if len(back.Clients) != len(res.Clients) {
		t.Errorf("report has %d clients, result %d", len(back.Clients), len(res.Clients))
	}
	if back.WallSeconds <= 0 {
		t.Error("report wall_seconds not positive")
	}
}

// TestLiveMetricsEndpoint is the acceptance check for the HTTP layer:
// scrape a running master's /metrics over real HTTP mid-run and require
// Prometheus-parseable text carrying the comm, master and per-client
// series; then check /status serves the JSON snapshot. The master expects
// one more client than the test launches up front, so the run is
// guaranteed to still be alive while scraping regardless of how fast the
// solver finishes; the held-back client is released once the scrape
// succeeds.
func TestLiveMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	cm := comm.NewMetrics(reg)
	tr := comm.Instrument(comm.NewInprocTransport(), cm)
	f := gen.Pigeonhole(8)
	m, err := NewMaster(MasterConfig{
		Transport:       tr,
		ListenAddr:      "master",
		Formula:         f,
		Timeout:         60 * time.Second,
		ExpectedClients: 4,
		Metrics:         reg,
		MetricsAddr:     "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := m.MetricsAddr()
	if addr == "" {
		t.Fatal("master bound no metrics address")
	}

	done := make(chan Result, 1)
	go func() {
		res, _ := m.Run()
		done <- res
	}()
	var wg sync.WaitGroup
	launch := func(i int) {
		cl, err := NewClient(ClientConfig{
			Transport:      tr,
			MasterAddr:     "master",
			HostName:       fmt.Sprintf("host-%d", i),
			FreeMemBytes:   64 << 20,
			SliceConflicts: 200,
			MinRunTime:     5 * time.Millisecond,
			HeartbeatEvery: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); _ = cl.Run() }()
	}
	for i := 0; i < 3; i++ {
		launch(i)
	}

	// Scrape until a body carries every expected series. The master is
	// still waiting for its fourth client, so the endpoint stays up.
	want := []string{
		"gridsat_comm_msgs_total",
		"gridsat_comm_bytes_total",
		"gridsat_master_splits_total",
		"gridsat_master_shared_clauses_total",
		"gridsat_master_registered_clients",
		"gridsat_client_mem_bytes",
	}
	var best string
	deadline := time.Now().Add(30 * time.Second)
	for best == "" {
		if time.Now().After(deadline) {
			t.Fatal("never scraped a body containing all expected series")
		}
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		body := string(b)
		ok := true
		for _, w := range want {
			if !strings.Contains(body, w) {
				ok = false
				break
			}
		}
		if ok {
			best = body
		} else {
			time.Sleep(2 * time.Millisecond)
		}
	}
	checkPromText(t, best)

	// /status must serve the consistent JSON snapshot while live.
	sresp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatalf("/status: %v", err)
	}
	var snap StatusSnapshot
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Errorf("/status is not JSON: %v", err)
	}
	sresp.Body.Close()
	if snap.Registered != 3 {
		t.Errorf("/status snapshot shows %d registered clients, want 3", snap.Registered)
	}

	// Release the held-back client and let the run finish.
	launch(3)
	res := <-done
	wg.Wait()
	if res.Status != solver.StatusUNSAT {
		t.Fatalf("run ended %v", res.Status)
	}
}

// TestStatusShowsPerClientReclamation drives the master with a hand-rolled
// client connection whose heartbeats carry ReclaimedBytes deltas (what a
// real client reports after ShedMemory frees arena space) and checks the
// figures surface in both views: the /status snapshot's per-client
// reclaimed_bytes total and the per-client registry counter behind
// /metrics. Deltas from successive heartbeats must sum.
func TestStatusShowsPerClientReclamation(t *testing.T) {
	reg := obs.NewRegistry()
	tr := comm.NewInprocTransport()
	f := gen.Pigeonhole(6)
	m, err := NewMaster(MasterConfig{
		Transport:       tr,
		ListenAddr:      "reclaim-master",
		Formula:         f,
		Timeout:         60 * time.Second,
		ExpectedClients: 1,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	go m.Run()

	conn, err := tr.Dial("reclaim-master")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(comm.Register{Addr: "fake-peer", HostName: "h0", FreeMemBytes: 64 << 20, SpeedHint: 1}); err != nil {
		t.Fatal(err)
	}
	ack, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ra, ok := ack.(comm.RegisterAck)
	if !ok || ra.Rejected {
		t.Fatalf("registration failed: %#v", ack)
	}
	// Drain the master's pushes (base problem, initial assignment) so its
	// writer never blocks.
	go func() {
		for {
			if _, err := conn.Recv(); err != nil {
				return
			}
		}
	}()

	for _, delta := range []int64{100_000, 23_456} {
		if err := conn.Send(comm.StatusReport{
			ClientID: ra.ClientID,
			MemBytes: 1 << 20,
			Busy:     true,
			Deltas:   comm.SolverDeltas{Conflicts: 10, ReclaimedBytes: delta},
		}); err != nil {
			t.Fatal(err)
		}
	}

	const want = int64(100_000 + 23_456)
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := m.Status()
		var got int64
		for _, c := range snap.Clients {
			if c.ID == ra.ClientID {
				got = c.ReclaimedBytes
			}
		}
		if got == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/status reclaimed_bytes = %d, want %d (snapshot %+v)", got, want, snap.Clients)
		}
		time.Sleep(2 * time.Millisecond)
	}
	label := obs.L("client", fmt.Sprintf("%d", ra.ClientID))
	if v := reg.Snapshot().CounterValue("gridsat_client_arena_reclaimed_bytes_total", label); v != want {
		t.Errorf("registry per-client reclaimed counter = %d, want %d", v, want)
	}
}

// TestSimTrafficCounters checks the DES runner totals every modeled
// transfer, mirroring the live transport instrumentation.
func TestSimTrafficCounters(t *testing.T) {
	res := RunDistributed(desConfig(gen.Pigeonhole(8), 10_000))
	if res.Outcome != OutcomeSolved || res.Status != solver.StatusUNSAT {
		t.Fatalf("got %v/%v", res.Outcome, res.Status)
	}
	if res.Msgs == 0 || res.Bytes == 0 {
		t.Fatalf("sim recorded msgs=%d bytes=%d, want both > 0", res.Msgs, res.Bytes)
	}
	if res.Bytes < res.Msgs {
		t.Errorf("bytes (%d) < msgs (%d): every message has a positive size", res.Bytes, res.Msgs)
	}
}
