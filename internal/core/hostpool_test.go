package core

import (
	"fmt"
	"sync"
	"testing"

	"gridsat/internal/cnf"
)

// poolTestClause encodes (worker, seq) into a two-literal clause so every
// published entry is globally distinguishable.
func poolTestClause(worker, seq int) cnf.Clause {
	return cnf.Clause{cnf.MkLit(cnf.Var(worker), false), cnf.MkLit(cnf.Var(seq+8), seq%2 == 1)}
}

// TestHostPoolStress is the in-host pool's race-detector stress test: K
// producers each publish N distinct clauses while K concurrent readers
// drain. Subtest "exact-within-window" sizes the ring so no reader is
// ever lapped and asserts perfect exchange — every reader receives every
// other worker's clauses exactly once, zero lost. Subtest "lapped" shrinks
// the ring below the publish count and asserts the documented window
// bound instead: per reader, delivered + lost == published-by-others,
// every delivered entry is genuine (belongs to the published set), and
// nothing is delivered twice.
func TestHostPoolStress(t *testing.T) {
	const (
		workers = 4
		n       = 2000
	)
	run := func(t *testing.T, capacity int, wantExact bool) {
		pool := newHostPool(workers, capacity)
		var wg sync.WaitGroup
		done := make(chan struct{})
		// Producers: worker w publishes n clauses tagged (w, i).
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					pool.Publish(w, poolTestClause(w, i), 2+i%7)
				}
			}(w)
		}
		go func() { wg.Wait(); close(done) }()

		type readerState struct {
			cur  *poolCursor
			seen map[string]int // clause key -> times delivered
		}
		results := make([]readerState, workers)
		var rg sync.WaitGroup
		for r := 0; r < workers; r++ {
			rg.Add(1)
			go func(r int) {
				defer rg.Done()
				st := readerState{cur: pool.NewCursor(), seen: map[string]int{}}
				drain := func() {
					for _, e := range pool.Drain(st.cur, r, 0) {
						st.seen[e.lits.Key()]++
					}
				}
				for {
					select {
					case <-done:
						drain() // final sweep after all publishes landed
						results[r] = st
						return
					default:
						drain()
					}
				}
			}(r)
		}
		rg.Wait()

		published := int64((workers - 1) * n) // per reader, from others
		for r, st := range results {
			var delivered int64
			for key, times := range st.seen {
				delivered += int64(times)
				if times > 1 && st.cur.lost == 0 {
					t.Errorf("reader %d: clause %s delivered %d times with zero loss", r, key, times)
				}
				if times > 1 {
					// Entries are pos-tagged and cursors advance strictly,
					// so duplicates are impossible even when lapped.
					t.Errorf("reader %d: clause %s delivered %d times", r, key, times)
				}
			}
			if delivered != st.cur.delivered {
				t.Fatalf("reader %d: cursor says %d delivered, saw %d", r, st.cur.delivered, delivered)
			}
			if got := st.cur.delivered + st.cur.lost; got != published {
				t.Errorf("reader %d: delivered(%d) + lost(%d) = %d, want published-by-others %d",
					r, st.cur.delivered, st.cur.lost, got, published)
			}
			if wantExact {
				if st.cur.lost != 0 {
					t.Errorf("reader %d: lost %d entries despite window >= publish count", r, st.cur.lost)
				}
				for w := 0; w < workers; w++ {
					if w == r {
						continue
					}
					for i := 0; i < n; i++ {
						if st.seen[poolTestClause(w, i).Key()] != 1 {
							t.Fatalf("reader %d: missing clause (%d,%d)", r, w, i)
						}
					}
				}
			} else {
				// Every delivered clause must be one that was published.
				for key := range st.seen {
					found := false
					for w := 0; w < workers && !found; w++ {
						for i := 0; i < n; i++ {
							if poolTestClause(w, i).Key() == key {
								found = true
								break
							}
						}
					}
					if !found {
						t.Errorf("reader %d: delivered a clause that was never published: %s", r, key)
					}
				}
			}
		}
		if stats := pool.Stats(); stats.Published != int64(workers*n) {
			t.Errorf("pool published %d, want %d", stats.Published, workers*n)
		}
	}

	t.Run("exact-within-window", func(t *testing.T) { run(t, n, true) })
	t.Run("lapped", func(t *testing.T) { run(t, 64, false) })
}

// TestHostPoolDrainRanking checks the deterministic LBD-then-length
// import order and the budget's dropped accounting.
func TestHostPoolDrainRanking(t *testing.T) {
	pool := newHostPool(2, 16)
	pool.Publish(1, cnf.Clause{cnf.MkLit(0, false), cnf.MkLit(1, false), cnf.MkLit(2, false)}, 5)
	pool.Publish(1, cnf.Clause{cnf.MkLit(3, false), cnf.MkLit(4, false)}, 2)
	pool.Publish(1, cnf.Clause{cnf.MkLit(5, false)}, 2)
	cur := pool.NewCursor()
	got := pool.Drain(cur, 0, 2)
	if len(got) != 2 {
		t.Fatalf("budget 2: got %d entries", len(got))
	}
	if got[0].lbd != 2 || len(got[0].lits) != 1 {
		t.Errorf("first entry not the best (lbd=%d len=%d)", got[0].lbd, len(got[0].lits))
	}
	if got[1].lbd != 2 || len(got[1].lits) != 2 {
		t.Errorf("second entry misranked (lbd=%d len=%d)", got[1].lbd, len(got[1].lits))
	}
	if cur.dropped != 1 {
		t.Errorf("dropped = %d, want 1", cur.dropped)
	}
	if extra := pool.Drain(cur, 0, 0); len(extra) != 0 {
		t.Errorf("cursor did not advance past budget-dropped entries: %d more", len(extra))
	}
	if fmt.Sprint(pool.Stats()) == "" {
		t.Error("stats unavailable")
	}
}
