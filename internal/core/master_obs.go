package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"gridsat/internal/trace"
)

// This file is the master's service-grade observability plumbing: the
// periodic history sample (fed to the time-series store and the anomaly
// watchdog), the alert feed accessor behind GET /alerts, and the
// postmortem bundle capture behind POST /debug/bundle plus the automatic
// failure/cancel/anomaly triggers.

// ErrDraining rejects bundle captures once Shutdown has been requested —
// the state a bundle would freeze is being torn down.
var ErrDraining = errors.New("core: master is draining")

// ErrNoBundleDir rejects bundle captures on a master configured without
// MasterConfig.BundleDir.
var ErrNoBundleDir = errors.New("core: no bundle directory configured (set MasterConfig.BundleDir)")

// alertsResponse is the GET /alerts payload.
type alertsResponse struct {
	Alerts []Alert `json:"alerts"`
}

// Alerts returns a copy of the watchdog's retained alert feed, oldest
// first (empty when the sampler/watchdog is disabled).
func (m *Master) Alerts() []Alert {
	var out []Alert
	_ = m.apply(func() {
		if m.wd != nil {
			out = m.wd.feed()
		}
	})
	if out == nil {
		out = []Alert{}
	}
	return out
}

// sampleTick is one sampler period: fold the registry into the history
// store, derive the per-job/per-client series the dashboard sparkline
// columns read, and feed the watchdog. Event-loop only.
func (m *Master) sampleTick() {
	t := m.nowSec()
	if m.hist != nil {
		m.hist.SampleSnapshot(t, m.reg.Snapshot())
		m.sampleDerived(t)
	}
	if m.wd == nil {
		return
	}
	for _, a := range m.wd.observe(m.watchSample(t)) {
		m.femit(trace.FEvent{Kind: trace.FEvAnomaly, Client: a.Client,
			Detail: a.Rule + ": " + a.Detail})
		m.log.Warn("watchdog alert", "rule", a.Rule, "subject", a.Subject,
			"detail", a.Detail)
		if m.cfg.BundleDir != "" {
			m.captureBundle("anomaly-" + a.Rule)
		}
	}
}

// sampleDerived records the cluster/job/client series that have no
// direct registry counterpart. Event-loop only.
func (m *Master) sampleDerived(t float64) {
	var busy int
	var memBytes int64
	var queueDepth int
	var confRate float64
	var coverage float64
	var activeJobs int
	for _, id := range m.jobOrder {
		j := m.jobs[id]
		queueDepth += len(j.backlog) + len(j.subBacklog)
		if j.State.Active() && j.assigned {
			coverage += j.prog.Fraction()
			activeJobs++
			m.hist.Observe(fmt.Sprintf("job.%d.coverage", j.ID), t, j.prog.Fraction())
		}
	}
	if activeJobs > 1 {
		coverage /= float64(activeJobs)
	}
	for _, c := range m.clients {
		if c.addr == "" {
			continue
		}
		memBytes += c.memBytes
		if c.busy {
			busy++
			confRate += c.confRate
		}
		m.hist.Observe(fmt.Sprintf("client.%d.conflict_rate", c.id), t, c.confRate)
	}
	m.hist.Observe("cluster.coverage", t, coverage)
	m.hist.Observe("cluster.busy", t, float64(busy))
	m.hist.Observe("cluster.queue_depth", t, float64(queueDepth))
	m.hist.Observe("cluster.conflict_rate", t, confRate)
	m.hist.Observe("cluster.mem_bytes", t, float64(memBytes))
	if m.clusterAgg.Imported > 0 {
		m.hist.Observe("cluster.share_efficacy", t,
			float64(m.clusterAgg.ImportedUseful)/float64(m.clusterAgg.Imported))
	}
}

// watchSample builds the watchdog's view of the current tick. Straggler
// flags come from the same markStragglers pass /progress uses, so the
// watchdog and the dashboard never disagree about who is slow.
// Event-loop only.
func (m *Master) watchSample(t float64) WatchSample {
	s := WatchSample{TSec: t}
	var rows []ClientProgress
	for _, c := range m.clients {
		if c.addr == "" {
			continue
		}
		s.MemBytes += c.memBytes
		if c.busy {
			s.Busy++
		}
		rows = append(rows, ClientProgress{ID: c.id, Busy: c.busy,
			ConflictsPerSec: c.confRate, MemBytes: c.memBytes})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	markStragglers(rows)
	for _, r := range rows {
		c := m.clients[r.ID]
		hb := c.lastHBSec
		if hb == 0 {
			// No heartbeat yet: anchor to now so a freshly assigned client
			// is not declared silent before its first report is even due.
			hb = t
		}
		s.Clients = append(s.Clients, WatchClient{ID: r.ID, Busy: r.Busy,
			Straggler: r.Straggler, LastHeartbeatSec: hb, MemBytes: r.MemBytes})
	}
	for _, id := range m.jobOrder {
		j := m.jobs[id]
		if j.State.Active() && j.assigned {
			s.Coverage += j.prog.Fraction()
		}
	}
	return s
}

// TriggerBundle captures a postmortem bundle on demand (POST
// /debug/bundle) and returns the written directory. The snapshot is
// assembled on the event loop; the write itself runs on the caller's
// goroutine so a CPU-profile capture never stalls the loop.
func (m *Master) TriggerBundle(reason string) (string, error) {
	if m.cfg.BundleDir == "" {
		return "", ErrNoBundleDir
	}
	if m.draining.Load() {
		return "", ErrDraining
	}
	if reason == "" {
		reason = "manual"
	}
	var spec BundleSpec
	if err := m.apply(func() { spec = m.bundleSpec(reason) }); err != nil {
		return "", err
	}
	return WriteBundle(spec)
}

// captureBundle writes a bundle for a loop-internal trigger (job
// failure, cancellation, watchdog alert). The spec is copied out of loop
// state synchronously, then written on its own goroutine. Event-loop
// only.
func (m *Master) captureBundle(reason string) {
	spec := m.bundleSpec(reason)
	logger := m.log
	go func() {
		dir, err := WriteBundle(spec)
		if err != nil {
			logger.Warn("bundle capture failed", "reason", spec.Reason, "err", err)
			return
		}
		logger.Info("bundle written", "reason", spec.Reason, "dir", dir)
	}()
}

// bundleConfig is the config.json section: the effective observability
// and scheduling knobs (the formula and transport are not serializable
// and are captured by the state dump instead).
type bundleConfig struct {
	Serve            bool           `json:"serve"`
	SchedPolicy      string         `json:"sched_policy"`
	SplitStrategy    string         `json:"split_strategy"`
	MinMemBytes      int64          `json:"min_mem_bytes"`
	ShareWindow      int            `json:"share_window"`
	HistoryPeriodSec float64        `json:"history_period_sec"`
	Watchdog         WatchdogConfig `json:"watchdog"`
	BundleDir        string         `json:"bundle_dir"`
	Build            any            `json:"build"`
}

// bundleState is the state.json "state" payload: the same pool and
// progress views /status and /progress serve.
type bundleState struct {
	Status   StatusSnapshot   `json:"status"`
	Progress ProgressSnapshot `json:"progress"`
}

// bundleSpec freezes everything a bundle captures out of loop state.
// Event-loop only.
func (m *Master) bundleSpec(reason string) BundleSpec {
	m.bundleSeq++
	cfg := bundleConfig{
		Serve:         m.serve,
		SchedPolicy:   m.policy.Name(),
		SplitStrategy: m.cfg.SplitStrategy,
		MinMemBytes:   m.cfg.MinMemBytes,
		ShareWindow:   m.cfg.ShareWindow,
		BundleDir:     m.cfg.BundleDir,
		Build:         m.build,
	}
	if p := m.cfg.HistoryPeriod; p > 0 {
		cfg.HistoryPeriodSec = p.Seconds()
	} else if m.hist != nil {
		cfg.HistoryPeriodSec = 1
	}
	if m.wd != nil {
		cfg.Watchdog = m.wd.cfg
	}
	spec := BundleSpec{
		Dir:     m.cfg.BundleDir,
		Name:    fmt.Sprintf("bundle-%03d-%s", m.bundleSeq, sanitizeReason(reason)),
		Reason:  reason,
		TSec:    m.nowSec(),
		Config:  cfg,
		State:   bundleState{Status: m.statusSnapshot(), Progress: m.progressSnapshot()},
		Metrics: m.reg.Snapshot(),
	}
	if m.hist != nil {
		spec.History = m.hist.Dump()
	}
	if m.wd != nil {
		spec.Alerts = m.wd.feed()
	}
	if m.flight != nil {
		spec.Events = m.flight.Events()
	}
	switch d := m.cfg.BundleCPUProfile; {
	case d > 0:
		spec.CPUProfileDur = d
	case d == 0:
		spec.CPUProfileDur = 200 * time.Millisecond
	}
	return spec
}

// sanitizeReason turns a free-form trigger reason into a safe directory
// name component.
func sanitizeReason(reason string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(reason) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('-')
		}
	}
	out := strings.Trim(b.String(), "-")
	if out == "" {
		out = "manual"
	}
	if len(out) > 48 {
		out = out[:48]
	}
	return out
}
