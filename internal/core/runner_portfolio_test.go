package core

import (
	"testing"

	"gridsat/internal/brute"
	"gridsat/internal/cnf"
	"gridsat/internal/gen"
	"gridsat/internal/grid"
	"gridsat/internal/solver"
	"gridsat/internal/trace"
)

// These tests pin the DES half of the hybrid splits×portfolio design:
// Threads>1 clients must keep every determinism and soundness guarantee of
// the single-solver runner — identical re-runs, exact coverage, replayable
// flight logs — while actually exchanging clauses through the in-host pool.

func portfolioDESConfig(f *cnf.Formula, threads int) RunnerConfig {
	cfg := desConfig(f, 100_000)
	cfg.SplitTimeoutVSec = 5
	cfg.Threads = threads
	return cfg
}

func TestRunDistributedPortfolioUNSATCoverageExact(t *testing.T) {
	res := RunDistributed(portfolioDESConfig(gen.Pigeonhole(8), 4))
	if res.Outcome != OutcomeSolved || res.Status != solver.StatusUNSAT {
		t.Fatalf("got %v/%v", res.Outcome, res.Status)
	}
	if res.Threads != 4 {
		t.Fatalf("Threads = %d, want 4", res.Threads)
	}
	if res.CoverageUnits != coverageFull {
		t.Fatalf("coverage %d units, want exactly %d", res.CoverageUnits, coverageFull)
	}
	if res.PoolPublished == 0 {
		t.Fatal("portfolio run published nothing to the in-host pool")
	}
	if res.PoolDelivered == 0 {
		t.Fatal("in-host pool delivered nothing despite publishes")
	}
}

func TestRunDistributedPortfolioAgainstBrute(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		f := gen.RandomKSAT(20, 85, 3, seed)
		want, _ := brute.Solve(f, 0)
		res := RunDistributed(portfolioDESConfig(f, 3))
		if res.Outcome != OutcomeSolved {
			t.Fatalf("seed %d: %v", seed, res.Outcome)
		}
		if (res.Status == solver.StatusSAT) != (want == brute.SAT) {
			t.Fatalf("seed %d: DES says %v, brute %v", seed, res.Status, want)
		}
		if res.Status == solver.StatusSAT {
			if err := f.Verify(res.Model); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

// TestRunDistributedPortfolioDeterministic re-runs the same portfolio
// configuration and requires identical aggregates, down to the pool
// exchange counters: the DES drives the lock-free pool single-threaded, so
// K-worker interleaving must be exactly reproducible (run under -count=2
// in CI for a third sample).
func TestRunDistributedPortfolioDeterministic(t *testing.T) {
	a := RunDistributed(portfolioDESConfig(gen.Pigeonhole(8), 4))
	b := RunDistributed(portfolioDESConfig(gen.Pigeonhole(8), 4))
	if a.Status != b.Status || a.VSec != b.VSec || a.Splits != b.Splits ||
		a.Shared != b.Shared || a.TotalProps != b.TotalProps ||
		a.CoverageUnits != b.CoverageUnits ||
		a.PoolPublished != b.PoolPublished || a.PoolDelivered != b.PoolDelivered ||
		a.PoolLost != b.PoolLost || a.PoolDropped != b.PoolDropped {
		t.Fatalf("nondeterministic portfolio DES:\n%+v\nvs\n%+v", a, b)
	}
}

// TestRunDistributedPortfolioReplayVerify records a Threads=4 run's flight
// log and replays the configuration: the event stream — including worker
// attributions — must reproduce exactly.
func TestRunDistributedPortfolioReplayVerify(t *testing.T) {
	record := trace.NewFlight(nil)
	cfg := portfolioDESConfig(gen.Pigeonhole(8), 4)
	cfg.Flight = record
	res := RunDistributed(cfg)
	if res.Status != solver.StatusUNSAT {
		t.Fatalf("got %v", res.Status)
	}
	if err := trace.ReplayVerify(record.Events(), func(f *trace.Flight) error {
		rerun := portfolioDESConfig(gen.Pigeonhole(8), 4)
		rerun.Flight = f
		RunDistributed(rerun)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRunDistributedThreadsOneBitIdentical pins the behavior-preservation
// contract: Threads=1 must reproduce the default (Threads=0) runner's
// flight log event for event — same verdict, counts, and Lamport horizon.
func TestRunDistributedThreadsOneBitIdentical(t *testing.T) {
	run := func(threads int) ([]trace.FEvent, SimResult) {
		fl := trace.NewFlight(nil)
		cfg := desConfig(gen.Pigeonhole(8), 100_000)
		cfg.SplitTimeoutVSec = 5
		cfg.Threads = threads
		cfg.Flight = fl
		res := RunDistributed(cfg)
		return fl.Events(), res
	}
	evs0, res0 := run(0)
	evs1, res1 := run(1)
	if err := trace.CompareLogs(evs0, evs1); err != nil {
		t.Fatal(err)
	}
	if res0.VSec != res1.VSec || res0.TotalProps != res1.TotalProps ||
		res0.Splits != res1.Splits || res0.Shared != res1.Shared {
		t.Fatalf("-threads=1 diverged from single-solver runner:\n%+v\nvs\n%+v", res0, res1)
	}
	if res1.PoolPublished != 0 {
		t.Fatalf("Threads=1 used the in-host pool: %d publishes", res1.PoolPublished)
	}
}

// TestRunDistributedPortfolioMigration moves a portfolio client's
// subproblem mid-run: the pathfinder's checkpoint migrates, the donor's
// extras are retired, and the recipient rebuilds a full-width portfolio —
// with the verdict intact.
func TestRunDistributedPortfolioMigration(t *testing.T) {
	g := grid.TestbedTable2(4)
	for _, h := range g.Hosts {
		h.Speed = 0.3
		h.MemBytes = 64 << 20
		h.BaseAvail = 0.4
	}
	g.AddBlueHorizon(8)
	cfg := desConfig(gen.Pigeonhole(10), 100_000)
	cfg.Grid = g
	cfg.MaxClients = 2
	cfg.Threads = 2
	cfg.MigrationFactor = 2
	cfg.MonitorPeriodVSec = 10
	cfg.Batch = &BatchPlan{Nodes: 8, WalltimeVSec: 100_000, MeanQueueWaitVSec: 15}
	res := RunDistributed(cfg)
	if res.Outcome != OutcomeSolved {
		t.Fatalf("got %v", res.Outcome)
	}
	if res.Migrations == 0 {
		t.Error("no migrations despite dominant idle batch nodes")
	}
	if res.Status != solver.StatusUNSAT || res.CoverageUnits != coverageFull {
		t.Fatalf("verdict %v, coverage %d units", res.Status, res.CoverageUnits)
	}
}

// TestRunDistributedPortfolioCrashRecovery kills a portfolio client
// mid-run: its pathfinder's light checkpoint must recover on an idle host
// (with a fresh portfolio) and the UNSAT verdict must still close exactly.
func TestRunDistributedPortfolioCrashRecovery(t *testing.T) {
	cfg := portfolioDESConfig(gen.Pigeonhole(8), 3)
	cfg.Failures = []FailurePlan{{HostID: 0, AtVSec: 30}}
	res := RunDistributed(cfg)
	if res.Outcome != OutcomeSolved || res.Status != solver.StatusUNSAT {
		t.Fatalf("got %v/%v", res.Outcome, res.Status)
	}
	if res.CoverageUnits != coverageFull {
		t.Fatalf("coverage %d units after crash recovery, want %d", res.CoverageUnits, coverageFull)
	}
}
