package core

import "sort"

// This file is the cluster progress estimator. GridSAT's guiding-path
// splits cut the search space in half at every fork (paper Figure 2), so
// the tree of subproblems carries an exact accounting: a subproblem whose
// guiding path has depth d covers 2^-d of the root search space, and a
// refuted (UNSAT) subproblem retires exactly that fraction forever. Summing
// the retired fractions yields a monotone, never-overshooting progress
// estimate that reaches exactly 1 when the whole space is refuted — the
// paper only reports end-to-end wall time; this makes the interior of a
// multi-day run observable.
//
// The sum is computed in fixed point, not floating point: contributions are
// integer multiples of 2^-coverageBits, so adding the two depth-(d+1)
// halves of a depth-d subproblem reproduces the parent's weight bit for
// bit, with no rounding drift on deep, unbalanced split trees.

const (
	// coverageBits fixes the denominator of the fixed-point coverage sum:
	// one unit is 2^-62 of the search space, and coverageFull (2^62) fits
	// comfortably in int64 for flight-recorder payloads.
	coverageBits = 62
	coverageFull = uint64(1) << coverageBits
)

// coverageUnits converts a guiding-path depth into fixed-point coverage
// units (2^(62-d)). Depths beyond 62 — a split tree deeper than 2^62
// subproblems, unreachable in practice — saturate to one unit so progress
// still advances; the tracker's capped addition keeps the total ≤ 1.
func coverageUnits(depth int) uint64 {
	if depth < 0 {
		depth = 0
	}
	if depth >= coverageBits {
		return 1
	}
	return coverageFull >> uint(depth)
}

// ProgressTracker accumulates refuted guiding-path prefixes into the
// cluster coverage estimate and maintains an EWMA of the coverage rate for
// ETA prediction. It is deterministic: identical (depth, atSec) sequences
// produce identical state, so the DES runner's progress curves reproduce
// exactly. Not safe for concurrent use; the master touches it only from
// its event loop.
type ProgressTracker struct {
	units    uint64
	closed   int64
	maxDepth int
	// rate is the EWMA of coverage fraction per second, updated at each
	// closure from the fraction gained since the previous one.
	rate     float64
	haveRate bool
	lastSec  float64
}

// progressEWMAAlpha weights the newest inter-closure rate sample; 0.25
// smooths over roughly the last four closures.
const progressEWMAAlpha = 0.25

// CloseSubproblem records the refutation of a subproblem at the given
// guiding-path depth and timestamp (seconds; virtual or wall — the caller
// picks one clock and sticks to it). Returns the new coverage total in
// fixed-point units. The addition is capped at coverageFull, so the
// estimate can never overshoot 1 even with saturated deep contributions.
func (p *ProgressTracker) CloseSubproblem(depth int, atSec float64) uint64 {
	add := coverageUnits(depth)
	if add > coverageFull-p.units {
		p.units = coverageFull
	} else {
		p.units += add
	}
	p.closed++
	if depth > p.maxDepth {
		p.maxDepth = depth
	}
	if dt := atSec - p.lastSec; dt > 0 {
		inst := float64(add) / float64(coverageFull) / dt
		if p.haveRate {
			p.rate = progressEWMAAlpha*inst + (1-progressEWMAAlpha)*p.rate
		} else {
			p.rate, p.haveRate = inst, true
		}
		p.lastSec = atSec
	}
	return p.units
}

// Units returns the coverage total in fixed-point units (2^-62 each).
func (p *ProgressTracker) Units() uint64 { return p.units }

// Fraction returns the refuted fraction of the root search space in [0, 1].
func (p *ProgressTracker) Fraction() float64 {
	return float64(p.units) / float64(coverageFull)
}

// Closed returns the number of refuted subproblems folded in so far.
func (p *ProgressTracker) Closed() int64 { return p.closed }

// MaxDepth returns the deepest refuted guiding path seen.
func (p *ProgressTracker) MaxDepth() int { return p.maxDepth }

// Rate returns the EWMA coverage rate in fraction per second (0 until two
// closures establish an interval).
func (p *ProgressTracker) Rate() float64 {
	if !p.haveRate {
		return 0
	}
	return p.rate
}

// ETASeconds projects the remaining time to full coverage at the current
// EWMA rate: 0 when the space is exhausted, -1 while no rate is known.
func (p *ProgressTracker) ETASeconds() float64 {
	if p.units >= coverageFull {
		return 0
	}
	r := p.Rate()
	if r <= 0 {
		return -1
	}
	return (1 - p.Fraction()) / r
}

// ProgressPoint is one sample of the cluster coverage estimate — the unit
// of the DES runner's deterministic progress series.
type ProgressPoint struct {
	VSec float64 `json:"vsec"`
	// Units is the fixed-point coverage total (2^-62 each) after the
	// closure; Coverage is the same value as a fraction.
	Units    uint64  `json:"units"`
	Coverage float64 `json:"coverage"`
	// Depth is the guiding-path depth of the subproblem just closed.
	Depth int `json:"depth"`
}

// ShareEfficacy summarizes whether clause sharing is paying for itself:
// how many imported clauses the cluster merged, and how much BCP and
// conflict-analysis work they actually did (HordeSat/Mallob's lesson that
// share volume alone is a misleading signal).
type ShareEfficacy struct {
	// Imported counts peer clauses merged into client databases.
	Imported int64 `json:"imported"`
	// ImportedUseful counts distinct imported clauses that participated in
	// at least one implication or conflict resolution.
	ImportedUseful int64 `json:"imported_useful"`
	// ImportedImplications / ImportedResolutions count the BCP implications
	// and conflict-analysis resolutions produced by imported clauses.
	ImportedImplications int64 `json:"imported_implications"`
	ImportedResolutions  int64 `json:"imported_resolutions"`
	// UsefulRatio is ImportedUseful / Imported (0 when nothing imported).
	UsefulRatio float64 `json:"useful_ratio"`
	// ImplicationShare is the fraction of all BCP implications produced by
	// imported clauses.
	ImplicationShare float64 `json:"implication_share"`
}

// efficacyFrom derives the ratio view from aggregated cluster deltas.
func efficacyFrom(imported, useful, impl, resol, allImpl int64) ShareEfficacy {
	e := ShareEfficacy{
		Imported:             imported,
		ImportedUseful:       useful,
		ImportedImplications: impl,
		ImportedResolutions:  resol,
	}
	if imported > 0 {
		e.UsefulRatio = float64(useful) / float64(imported)
	}
	if allImpl > 0 {
		e.ImplicationShare = float64(impl) / float64(allImpl)
	}
	return e
}

// ClientProgress is one client's row in a ProgressSnapshot: where it is in
// the split tree and how fast it is burning through its subspace.
type ClientProgress struct {
	ID   int  `json:"id"`
	Busy bool `json:"busy"`
	// Depth is the guiding-path depth of the client's current subproblem.
	Depth int `json:"depth"`
	// ConflictsPerSec is the EWMA conflict throughput from heartbeats.
	ConflictsPerSec float64 `json:"conflicts_per_sec"`
	// Utilization is this client's throughput relative to the cluster's
	// fastest client (1 = pacing the cluster, 0 = idle or stalled).
	Utilization float64 `json:"utilization"`
	// ImportUseRatio is the client's lifetime ImportedUseful / Imported.
	ImportUseRatio float64 `json:"import_use_ratio"`
	MemBytes       int64   `json:"mem_bytes"`
	// Straggler marks a busy client whose conflict rate has fallen far
	// below the busy-pool median — a candidate for migration (§3.4).
	Straggler bool `json:"straggler,omitempty"`
}

// stragglerFraction: a busy client below this fraction of the busy-pool
// median conflict rate is flagged (with at least three busy clients, so a
// two-client run never flags the slower half).
const stragglerFraction = 0.25

// markStragglers fills Utilization and Straggler across a snapshot's
// client rows, in place. Pure and deterministic for testability.
func markStragglers(clients []ClientProgress) {
	var maxRate float64
	var busyRates []float64
	for _, c := range clients {
		if c.ConflictsPerSec > maxRate {
			maxRate = c.ConflictsPerSec
		}
		if c.Busy {
			busyRates = append(busyRates, c.ConflictsPerSec)
		}
	}
	for i := range clients {
		if maxRate > 0 {
			clients[i].Utilization = clients[i].ConflictsPerSec / maxRate
		}
	}
	if len(busyRates) < 3 {
		return
	}
	sort.Float64s(busyRates)
	median := busyRates[len(busyRates)/2]
	if median <= 0 {
		return
	}
	for i := range clients {
		if clients[i].Busy && clients[i].ConflictsPerSec < stragglerFraction*median {
			clients[i].Straggler = true
		}
	}
}

// ProgressSnapshot is the /progress JSON payload: the cluster coverage
// estimate, its rate and ETA, share-efficacy totals, and per-client rows.
type ProgressSnapshot struct {
	WallSeconds float64 `json:"wall_seconds"`
	// Coverage is the refuted fraction of the root search space; Units is
	// the same total in exact fixed-point units of 2^-62.
	Coverage float64 `json:"coverage"`
	Units    uint64  `json:"units"`
	// ClosedSubproblems counts refuted subproblems; MaxClosedDepth is the
	// deepest refuted guiding path.
	ClosedSubproblems int64 `json:"closed_subproblems"`
	MaxClosedDepth    int   `json:"max_closed_depth"`
	// RatePerSec is the EWMA coverage rate; ETASeconds projects time to
	// full coverage at that rate (-1 while unknown, 0 when exhausted).
	RatePerSec float64 `json:"rate_per_sec"`
	ETASeconds float64 `json:"eta_seconds"`
	// Verdict is "" while running, else SAT/UNSAT/UNKNOWN.
	Verdict     string `json:"verdict,omitempty"`
	Registered  int    `json:"registered"`
	Busy        int    `json:"busy"`
	Outstanding int    `json:"outstanding"`
	// Conflicts and Implications are cluster-lifetime totals summed from
	// heartbeat deltas (churn-proof: they survive client departures).
	Conflicts    int64         `json:"conflicts"`
	Implications int64         `json:"implications"`
	Efficacy     ShareEfficacy `json:"efficacy"`
	// Jobs are the scheduler's per-job rows in submission order (a
	// single-job master reports the one implicit job 0).
	Jobs    []JobSnapshot    `json:"jobs,omitempty"`
	Clients []ClientProgress `json:"clients"`
}
