package core

import (
	"testing"
)

// testWatchCfg is a small, fast rule set used by the synthetic-window
// tests: every rule judges over a 10s window with a 5s heartbeat gap.
func testWatchCfg() WatchdogConfig {
	return WatchdogConfig{
		StallWindowSec:     10,
		StallMinBusy:       2,
		StragglerWindowSec: 10,
		MemWindowSec:       10,
		MemGrowthFactor:    1.5,
		MemMinBytes:        1 << 20,
		HeartbeatGapSec:    5,
		CooldownSec:        30,
	}
}

// mkWindow builds n samples at 1 Hz from a per-tick shaping function.
func mkWindow(n int, shape func(i int, s *WatchSample)) []WatchSample {
	win := make([]WatchSample, n)
	for i := range win {
		win[i] = WatchSample{TSec: float64(i), Busy: 3, Coverage: float64(i) * 0.01,
			MemBytes: 1 << 20,
			Clients: []WatchClient{
				{ID: 1, Busy: true, LastHeartbeatSec: float64(i)},
				{ID: 2, Busy: true, LastHeartbeatSec: float64(i)},
				{ID: 3, Busy: true, LastHeartbeatSec: float64(i)},
			}}
		shape(i, &win[i])
	}
	return win
}

func rules(alerts []Alert) map[string]int {
	m := map[string]int{}
	for _, a := range alerts {
		m[a.Rule]++
	}
	return m
}

func TestWatchdogRules(t *testing.T) {
	cases := []struct {
		name  string
		shape func(i int, s *WatchSample)
		want  map[string]int
	}{
		{
			name:  "healthy",
			shape: func(i int, s *WatchSample) {},
			want:  map[string]int{},
		},
		{
			name: "stall",
			// Coverage frozen from t=2 on while all clients stay busy:
			// flat span 12s > 10s window.
			shape: func(i int, s *WatchSample) {
				if i >= 2 {
					s.Coverage = 0.02
				}
			},
			want: map[string]int{RuleProgressStall: 1},
		},
		{
			name: "stall-but-idle",
			// Same flat coverage, but the cluster is idle — waiting for
			// work is not a stall.
			shape: func(i int, s *WatchSample) {
				s.Coverage = 0.02
				s.Busy = 0
			},
			want: map[string]int{},
		},
		{
			name: "straggler",
			// Client 2 flagged in every sample of the window.
			shape: func(i int, s *WatchSample) {
				s.Clients[1].Straggler = true
			},
			want: map[string]int{RuleStragglerPersist: 1},
		},
		{
			name: "straggler-intermittent",
			// Flagged most ticks but recovers periodically — no alert.
			shape: func(i int, s *WatchSample) {
				s.Clients[1].Straggler = i%4 != 0
			},
			want: map[string]int{},
		},
		{
			name: "mem-trend",
			// Memory doubles across the window, above the floor.
			shape: func(i int, s *WatchSample) {
				s.MemBytes = int64(1<<20) * int64(10+i)
			},
			want: map[string]int{RuleMemPressure: 1},
		},
		{
			name: "mem-trend-below-floor",
			// Same relative growth but absolute total under MemMinBytes.
			shape: func(i int, s *WatchSample) {
				s.MemBytes = int64(10 + i)
			},
			want: map[string]int{},
		},
		{
			name: "heartbeat-gap",
			// Client 3's last heartbeat frozen at t=2; by t=12 the gap
			// is 10s > 5s threshold.
			shape: func(i int, s *WatchSample) {
				if s.Clients[2].LastHeartbeatSec > 2 {
					s.Clients[2].LastHeartbeatSec = 2
				}
			},
			want: map[string]int{RuleHeartbeatGap: 1},
		},
		{
			name: "heartbeat-gap-idle-client",
			// Silent but idle clients are fine (nothing assigned).
			shape: func(i int, s *WatchSample) {
				s.Clients[2].Busy = false
				if s.Clients[2].LastHeartbeatSec > 2 {
					s.Clients[2].LastHeartbeatSec = 2
				}
			},
			want: map[string]int{},
		},
		{
			name: "stall-and-straggler",
			// Two independent conditions fire together.
			shape: func(i int, s *WatchSample) {
				if i >= 2 {
					s.Coverage = 0.02
				}
				s.Clients[0].Straggler = true
			},
			want: map[string]int{RuleProgressStall: 1, RuleStragglerPersist: 1},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			win := mkWindow(13, c.shape)
			got := rules(evalWatchdog(testWatchCfg(), win))
			if len(got) != len(c.want) {
				t.Fatalf("fired %v, want %v", got, c.want)
			}
			for r, n := range c.want {
				if got[r] != n {
					t.Errorf("rule %s fired %d times, want %d (all: %v)", r, got[r], n, got)
				}
			}
		})
	}
}

func TestWatchdogWarmup(t *testing.T) {
	// A window shorter than every rule span must stay silent even when
	// coverage is flat — no false positives during startup.
	win := mkWindow(5, func(i int, s *WatchSample) { s.Coverage = 0 })
	if got := evalWatchdog(testWatchCfg(), win); len(got) != 0 {
		t.Fatalf("warm-up window fired %v", got)
	}
	if got := evalWatchdog(testWatchCfg(), nil); got != nil {
		t.Fatalf("empty window fired %v", got)
	}
}

func TestWatchdogCooldown(t *testing.T) {
	cfg := testWatchCfg()
	w := newWatchdog(cfg)
	fired := 0
	// 60 ticks of a permanent stall: with a 30s cooldown the same
	// (rule, subject) pair fires ceil((60-10)/30) ≈ 2 times, not 50.
	for i := 0; i < 60; i++ {
		s := WatchSample{TSec: float64(i), Coverage: 0.5, Busy: 3}
		fired += len(w.observe(s))
	}
	if fired < 1 || fired > 3 {
		t.Fatalf("cooldown let %d alerts through, want 1..3", fired)
	}
	if len(w.feed()) != fired {
		t.Errorf("feed has %d entries, want %d", len(w.feed()), fired)
	}
	// The window is trimmed to the widest rule span, not unbounded.
	if len(w.win) > 15 {
		t.Errorf("window retained %d samples, want <= ~12", len(w.win))
	}
}

func TestWatchdogDisabledRule(t *testing.T) {
	cfg := testWatchCfg()
	cfg.StallWindowSec = -1 // negative disables
	win := mkWindow(13, func(i int, s *WatchSample) {
		if i >= 2 {
			s.Coverage = 0.02
		}
	})
	if got := evalWatchdog(cfg, win); len(got) != 0 {
		t.Fatalf("disabled stall rule fired %v", got)
	}
}

func TestWatchdogDefaults(t *testing.T) {
	got := WatchdogConfig{}.withDefaults()
	if got != DefaultWatchdogConfig() {
		t.Fatalf("zero config does not default: %+v", got)
	}
	// Explicit values survive defaulting.
	c := WatchdogConfig{StallWindowSec: 3}
	if c.withDefaults().StallWindowSec != 3 {
		t.Fatal("explicit StallWindowSec overwritten")
	}
}
