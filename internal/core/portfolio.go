package core

import (
	"sync"
	"sync/atomic"

	"gridsat/internal/cnf"
	"gridsat/internal/comm"
	"gridsat/internal/solver"
)

// portfolio is the in-host half of the two-level hybrid (ROADMAP item 3):
// K diversified CDCL workers race on ONE subproblem, exchanging learnt
// clauses through the lock-free hostPool, first finisher wins. To the
// rest of the cluster the whole portfolio is a single client: worker 0 —
// the pathfinder — runs the unmodified base configuration and is the only
// worker splits, checkpoints and migration ever touch, so guiding-path
// semantics (taint/deps soundness, coverage algebra) are unchanged.
//
// Soundness of the race: every worker solves base ∧ (guiding-path
// assumptions at portfolio construction). A SAT model from any worker
// satisfies the base formula (the master re-verifies it anyway). After
// the pathfinder donates cofactors in a split, the extras keep solving
// the pre-split superset space; their UNSAT still implies the
// pathfinder's narrower current subspace is UNSAT, so reporting UNSAT at
// the pathfinder's depth keeps the coverage fixed-point exact (it closes
// a region that is genuinely refuted, never more than 2^-depth).
//
// Concurrency contract: Solve runs the K workers in parallel and blocks
// until the slice ends. Everything else — Stats, WorkerReports, splits on
// the pathfinder, DrainClusterShares — must be called between slices,
// when the workers are quiescent (the live client's control loop already
// has exactly that shape). ImportClauses and MemoryBytes are safe at any
// time (the solver's import buffer and arena counter are atomic).
type portfolio struct {
	workers    []*portWorker
	pool       *hostPool
	clusterCur *poolCursor
	clusterLen int
	// winner is the worker index that produced the last verdict (-1 while
	// undecided) — the flight log's worker attribution.
	winner int
}

// portWorker is one diversified solver plus its pool read position.
type portWorker struct {
	idx  int
	prof solver.Profile
	slv  *solver.Solver
	cur  *poolCursor
}

// poolRingCapacity is the per-worker exchange window. A worker falling
// more than this many clauses behind a sibling loses the overflow (the
// pool counts it); 1024 spans several slices at typical learn rates.
const poolRingCapacity = 1024

// newPortfolio builds K workers over the same subproblem. Worker i runs
// ProfileFor(i, baseOpts.Seed) applied to baseOpts; worker 0 is baseOpts
// unchanged. clusterLen is the cluster share bound: pool clauses at most
// that long are forwarded to the master-mediated share path by
// DrainClusterShares (non-positive disables cluster forwarding).
func newPortfolio(base *cnf.Formula, sub *solver.Subproblem, baseOpts solver.Options, threads, clusterLen int) (*portfolio, error) {
	p := &portfolio{
		pool:       newHostPool(threads, poolRingCapacity),
		clusterLen: clusterLen,
		winner:     -1,
	}
	p.clusterCur = p.pool.NewCursor()
	for i := 0; i < threads; i++ {
		prof := solver.ProfileFor(i, baseOpts.Seed)
		opts := prof.Apply(baseOpts)
		// Export bound: intra-host exchange accepts bulkier clauses than
		// the cluster path; OnLearn gating is export-only, so widening the
		// pathfinder's bound does not perturb its search.
		opts.ShareMaxLen = prof.ExportMaxLen
		if clusterLen > opts.ShareMaxLen {
			opts.ShareMaxLen = clusterLen
		}
		w := i
		opts.OnLearn = func(c cnf.Clause, lbd int) { p.pool.Publish(w, c, lbd) }
		slv, err := solver.NewFromSubproblem(base, sub, opts)
		if err != nil {
			return nil, err
		}
		p.workers = append(p.workers, &portWorker{idx: i, prof: prof, slv: slv, cur: p.pool.NewCursor()})
	}
	return p, nil
}

// Pathfinder returns worker 0's solver — the one splits, checkpoints and
// migration operate on.
func (p *portfolio) Pathfinder() *solver.Solver { return p.workers[0].slv }

// Winner returns the index of the worker that produced the last verdict
// (-1 while undecided).
func (p *portfolio) Winner() int { return p.winner }

// Threads returns the worker count.
func (p *portfolio) Threads() int { return len(p.workers) }

// Solve runs one slice on every worker concurrently: each drains its pool
// imports, then searches under the per-worker limits (the memory budget
// is divided evenly). The first worker to reach a verdict cancels the
// rest; SAT wins over UNSAT, lower index breaks ties, so the merged
// result is deterministic for a deterministic set of finisher verdicts.
func (p *portfolio) Solve(lim solver.Limits) solver.Result {
	per := lim
	if lim.MaxMemoryBytes > 0 {
		per.MaxMemoryBytes = lim.MaxMemoryBytes / int64(len(p.workers))
	}
	results := make([]solver.Result, len(p.workers))
	var first atomic.Int32
	first.Store(-1)
	var wg sync.WaitGroup
	for _, w := range p.workers {
		wg.Add(1)
		go func(w *portWorker) {
			defer wg.Done()
			if entries := p.pool.Drain(w.cur, w.idx, w.prof.ImportBudget); len(entries) != 0 {
				batch := make([]cnf.Clause, len(entries))
				for i, e := range entries {
					batch[i] = e.lits
				}
				_ = w.slv.ImportClauses(batch)
			}
			res := w.slv.Solve(per)
			results[w.idx] = res
			if res.Status != solver.StatusUnknown && first.CompareAndSwap(-1, int32(w.idx)) {
				for _, o := range p.workers {
					if o != w {
						o.slv.Stop()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for i, r := range results {
		if r.Status == solver.StatusSAT {
			p.winner = i
			return r
		}
	}
	for i, r := range results {
		if r.Status == solver.StatusUNSAT {
			p.winner = i
			return r
		}
	}
	// No verdict: memory pressure anywhere surfaces as the slice reason
	// (the client's split/shed trigger); otherwise report the
	// pathfinder's reason (normally the conflict-limit quantum).
	for _, r := range results {
		if r.Reason == solver.ReasonMemLimit {
			return r
		}
	}
	return results[0]
}

// StopAll requests cancellation on every worker (teardown/migration).
func (p *portfolio) StopAll() {
	for _, w := range p.workers {
		w.slv.Stop()
	}
}

// ImportClauses fans a cluster share batch out to every worker (each
// clones on receipt). Safe to call at any time.
func (p *portfolio) ImportClauses(cs []cnf.Clause) error {
	var err error
	for _, w := range p.workers {
		if e := w.slv.ImportClauses(cs); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// DrainClusterShares forwards pool clauses within the cluster share bound
// to fn (the client's share aggregator), cloning each: the aggregator
// normalizes in place and pool entries are shared with the workers.
// Between slices only.
func (p *portfolio) DrainClusterShares(fn func(c cnf.Clause, lbd int)) {
	entries := p.pool.Drain(p.clusterCur, -1, 0)
	if p.clusterLen <= 0 {
		return
	}
	for _, e := range entries {
		if len(e.lits) <= p.clusterLen {
			fn(e.lits.Clone(), e.lbd)
		}
	}
}

// Stats sums the workers' counters — the single-client view the master
// aggregates. Between slices only.
func (p *portfolio) Stats() solver.Stats {
	var out solver.Stats
	for _, w := range p.workers {
		out = addStats(out, w.slv.Stats())
	}
	return out
}

// MemoryBytes sums the workers' clause-database sizes (atomic; any time).
func (p *portfolio) MemoryBytes() int64 {
	var n int64
	for _, w := range p.workers {
		n += w.slv.MemoryBytes()
	}
	return n
}

// NumLearnts sums the workers' learnt databases. Between slices only.
func (p *portfolio) NumLearnts() int {
	n := 0
	for _, w := range p.workers {
		n += w.slv.NumLearnts()
	}
	return n
}

// ShedMemory garbage-collects every worker's arena. Between slices only.
func (p *portfolio) ShedMemory() int64 {
	var freed int64
	for _, w := range p.workers {
		freed += w.slv.ShedMemory()
	}
	return freed
}

// PoolStats returns the exchange telemetry snapshot.
func (p *portfolio) PoolStats() poolStats { return p.pool.Stats() }

// WorkerReports builds the per-worker heartbeat rows. Between slices only.
func (p *portfolio) WorkerReports() []comm.WorkerReport {
	out := make([]comm.WorkerReport, len(p.workers))
	for i, w := range p.workers {
		st := w.slv.Stats()
		out[i] = comm.WorkerReport{
			Worker:       w.idx,
			Profile:      w.prof.String(),
			Conflicts:    st.Conflicts,
			Propagations: st.Propagations,
			Restarts:     st.Restarts,
			Learnts:      w.slv.NumLearnts(),
			MemBytes:     w.slv.MemoryBytes(),
		}
	}
	return out
}

// addStats sums two counter snapshots field by field.
func addStats(a, b solver.Stats) solver.Stats {
	a.Decisions += b.Decisions
	a.Conflicts += b.Conflicts
	a.Propagations += b.Propagations
	a.Implications += b.Implications
	a.Learned += b.Learned
	a.Deleted += b.Deleted
	a.Restarts += b.Restarts
	a.Imported += b.Imported
	a.Exported += b.Exported
	a.Simplified += b.Simplified
	a.Splits += b.Splits
	a.ReclaimedBytes += b.ReclaimedBytes
	a.ImportedImplications += b.ImportedImplications
	a.ImportedResolutions += b.ImportedResolutions
	a.ImportedUseful += b.ImportedUseful
	return a
}
