package core

import (
	"fmt"

	"gridsat/internal/trace"
)

// This file is the DES side of the observability stack: the monitor-tick
// history sample, the anomaly watchdog over virtual time, and the
// deterministic postmortem bundles. Everything here is driven by the
// single-threaded simulation, so a re-run with the same config produces
// byte-identical alerts, flight events and bundle contents (bundles skip
// the CPU profile for exactly this reason).

// obsTick feeds the history store and watchdog at a monitor tick. No-op
// unless RunnerConfig.Watchdog enabled the stack, so historical runs and
// their flight logs are untouched.
func (r *runner) obsTick() {
	if r.wd == nil || r.done {
		return
	}
	t := r.sim.Now()
	s := r.simWatchSample(t)
	r.hist.Observe("cluster.coverage", t, s.Coverage)
	r.hist.Observe("cluster.busy", t, float64(s.Busy))
	r.hist.Observe("cluster.mem_bytes", t, float64(s.MemBytes))
	var queueDepth int
	for _, id := range r.jobOrder {
		j := r.jobs[id]
		queueDepth += len(j.backlog) + len(j.subBacklog) + len(j.orphans)
		if j.State.Active() && j.assigned {
			r.hist.Observe(fmt.Sprintf("job.%d.coverage", j.ID), t, j.prog.Fraction())
		}
	}
	r.hist.Observe("cluster.queue_depth", t, float64(queueDepth))
	for _, a := range r.wd.observe(s) {
		r.emit(trace.FEvent{Kind: trace.FEvAnomaly, Client: a.Client,
			Detail: a.Rule + ": " + a.Detail})
		if r.cfg.BundleDir != "" {
			r.writeSimBundle("anomaly-" + a.Rule)
		}
	}
}

// simWatchSample is the watchdog's view of the simulated cluster. The
// DES has no heartbeat stream — clients are observed directly — so every
// client's last-heartbeat is "now" and the heartbeat-gap rule never
// fires; straggler detection likewise needs the live conflict-rate EWMA
// and stays off here. The progress-stall and mem-pressure rules are the
// ones the simulator exercises.
func (r *runner) simWatchSample(t float64) WatchSample {
	s := WatchSample{TSec: t}
	for _, id := range r.order {
		c := r.clients[id]
		var mem int64
		if c.slv != nil {
			mem = c.slv.MemoryBytes()
		}
		s.MemBytes += mem
		if c.busy {
			s.Busy++
		}
		s.Clients = append(s.Clients, WatchClient{ID: c.id, Busy: c.busy,
			LastHeartbeatSec: t, MemBytes: mem})
	}
	for _, id := range r.jobOrder {
		j := r.jobs[id]
		if j.State.Active() && j.assigned {
			s.Coverage += j.prog.Fraction()
		}
	}
	return s
}

// simBundleState is the state.json payload of a DES bundle: the same
// shape of information the live master dumps, in virtual time.
type simBundleState struct {
	VSec        float64        `json:"vsec"`
	Busy        int            `json:"busy"`
	MaxClients  int            `json:"max_clients"`
	Splits      int            `json:"splits"`
	Outstanding int            `json:"outstanding"`
	Jobs        []SimJobResult `json:"jobs"`
}

// simBundleConfig is the config.json payload of a DES bundle.
type simBundleConfig struct {
	Hosts             int            `json:"hosts"`
	SchedPolicy       string         `json:"sched_policy"`
	SplitStrategy     string         `json:"split_strategy"`
	PropsPerVSec      float64        `json:"props_per_vsec"`
	TimeoutVSec       float64        `json:"timeout_vsec"`
	MonitorPeriodVSec float64        `json:"monitor_period_vsec"`
	Threads           int            `json:"threads"`
	Seed              int64          `json:"seed"`
	Watchdog          WatchdogConfig `json:"watchdog"`
	BundleDir         string         `json:"bundle_dir"`
}

// simJobResult builds one job's point-in-time outcome row (also the
// rows finishJobResults freezes at the end of a multi-job run).
func (r *runner) simJobResult(j *runnerJob) SimJobResult {
	jr := SimJobResult{
		ID:          j.ID,
		Name:        j.Name,
		Verdict:     j.verdict(),
		Status:      j.status,
		Model:       j.model,
		SubmitVSec:  j.SubmittedAt,
		StartVSec:   j.StartedAt,
		FinishVSec:  j.FinishedAt,
		Preemptions: j.Preemptions,
		Coverage:    j.prog.Fraction(),
	}
	jr.TurnaroundVSec = j.TurnaroundSec()
	return jr
}

// writeSimBundle captures a deterministic postmortem bundle: same
// sections as the live master's, no CPU profile, directory name from
// the run-local capture counter. Write errors are swallowed — a failed
// bundle must never change the simulation's outcome.
func (r *runner) writeSimBundle(reason string) {
	r.bundleSeq++
	var outstanding int
	state := simBundleState{
		VSec:       r.sim.Now(),
		Busy:       r.busyCount(),
		MaxClients: r.res.MaxClients,
		Splits:     r.res.Splits,
	}
	for _, id := range r.jobOrder {
		j := r.jobs[id]
		outstanding += j.outstanding
		state.Jobs = append(state.Jobs, r.simJobResult(j))
	}
	state.Outstanding = outstanding
	spec := BundleSpec{
		Dir:    r.cfg.BundleDir,
		Name:   fmt.Sprintf("bundle-%03d-%s", r.bundleSeq, sanitizeReason(reason)),
		Reason: reason,
		TSec:   r.sim.Now(),
		Config: simBundleConfig{
			Hosts:             len(r.cfg.Grid.Hosts),
			SchedPolicy:       r.cfg.SchedPolicy,
			SplitStrategy:     r.cfg.SplitStrategy,
			PropsPerVSec:      r.cfg.PropsPerVSec,
			TimeoutVSec:       r.cfg.TimeoutVSec,
			MonitorPeriodVSec: r.cfg.MonitorPeriodVSec,
			Threads:           r.res.Threads,
			Seed:              r.cfg.Seed,
			Watchdog:          r.watchdogConfig(),
			BundleDir:         r.cfg.BundleDir,
		},
		State: state,
	}
	if r.hist != nil {
		spec.History = r.hist.Dump()
	}
	if r.wd != nil {
		spec.Alerts = r.wd.feed()
	}
	if r.flight != nil {
		spec.Events = r.flight.Events()
	}
	if dir, err := WriteBundle(spec); err == nil {
		r.res.Bundles = append(r.res.Bundles, dir)
	}
}

func (r *runner) watchdogConfig() WatchdogConfig {
	if r.wd != nil {
		return r.wd.cfg
	}
	return WatchdogConfig{}
}
