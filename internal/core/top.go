package core

import (
	"fmt"
	"strings"

	"gridsat/internal/comm"
	"gridsat/internal/obs/history"
)

// This file renders the `gridsat top` dashboard: a fixed-width terminal
// frame summarizing a running cluster from the master's /progress and
// /status payloads. Rendering is a pure function of the two snapshots, so
// one frame is exactly reproducible from canned inputs — the golden test
// locks the layout, and the subcommand just polls and reprints.

// TopWidth is the default dashboard frame width in columns.
const TopWidth = 80

// TopSparks carries the recent-history slices the dashboard renders as
// sparkline columns, extracted from the master's GET /history payload.
// A nil *TopSparks (or empty slices) renders the history-free frame.
type TopSparks struct {
	// Coverage and Rate are the newest cluster.coverage and
	// cluster.conflict_rate samples, oldest first.
	Coverage []float64
	Rate     []float64
	// ClientRate maps client ID to its recent conflict-rate samples.
	ClientRate map[int][]float64
}

// topSparkWide and topSparkCell are the sparkline widths of the header
// trend line and the per-client column.
const (
	topSparkWide = 24
	topSparkCell = 10
)

// RenderTop renders one dashboard frame from a progress snapshot and a
// status snapshot. Every line is padded or truncated to exactly width
// runes (minimum 40), so a refreshing terminal fully overwrites the
// previous frame without clearing artifacts.
func RenderTop(p ProgressSnapshot, s StatusSnapshot, width int) string {
	return RenderTopSparks(p, s, nil, width)
}

// RenderTopSparks is RenderTop plus optional history sparklines: a
// cluster trend line under the counters and a per-client conflict-rate
// column. sp == nil reproduces RenderTop byte for byte.
func RenderTopSparks(p ProgressSnapshot, s StatusSnapshot, sp *TopSparks, width int) string {
	if width < 40 {
		width = 40
	}
	var b strings.Builder

	verdict := p.Verdict
	if verdict == "" {
		verdict = "running"
	}
	head := fmt.Sprintf("GridSAT %s  wall %s", verdict, fmtSeconds(p.WallSeconds))
	barRoom := width - len(head) - 12 // "  [" + bar + "] " + percent
	if barRoom > 8 {
		head += fmt.Sprintf("  [%s] %5.1f%%", progressBar(p.Coverage, barRoom), p.Coverage*100)
	}
	writeLine(&b, head, width)

	writeLine(&b, fmt.Sprintf(
		"closed %s subproblems  max depth %d  rate %s/s  ETA %s",
		fmtCount(p.ClosedSubproblems), p.MaxClosedDepth,
		fmtPercent(p.RatePerSec), fmtETA(p.ETASeconds)), width)

	writeLine(&b, fmt.Sprintf(
		"clients %d registered, %d busy  outstanding %d  backlog %d  splits %d  shared %s",
		p.Registered, p.Busy, p.Outstanding, s.Backlog, s.Splits,
		fmtCount(int64(s.Shared))), width)

	e := p.Efficacy
	writeLine(&b, fmt.Sprintf(
		"conflicts %s  implications %s  imported %s  useful %.1f%%  impl-share %.1f%%",
		fmtCount(p.Conflicts), fmtCount(p.Implications), fmtCount(e.Imported),
		e.UsefulRatio*100, e.ImplicationShare*100), width)

	if sp != nil && (len(sp.Coverage) > 0 || len(sp.Rate) > 0) {
		writeLine(&b, fmt.Sprintf("trend  cov [%s]  conf/s [%s]",
			history.Spark(sp.Coverage, topSparkWide),
			history.Spark(sp.Rate, topSparkWide)), width)
	}

	// Serve-mode masters carry the scheduler's per-job rows. A single-job
	// master reports one implicit row (job 0), which the frame omits — the
	// header line already tells that whole story.
	if len(s.Jobs) > 0 && !(len(s.Jobs) == 1 && s.Jobs[0].ID == 0) {
		writeLine(&b, "", width)
		writeLine(&b, fmt.Sprintf("%4s  %-10s  %-9s  %3s  %4s  %6s  %8s  %-9s",
			"JOB", "NAME", "STATE", "PRI", "CLI", "COV", "CONF/S", "VERDICT"), width)
		for _, j := range s.Jobs {
			verdict := j.Verdict
			if verdict == "" {
				verdict = "-"
			}
			writeLine(&b, fmt.Sprintf("%4d  %-10.10s  %-9.9s  %3d  %4d  %5.1f%%  %8.1f  %-9.9s",
				j.ID, j.Name, j.State, j.Priority, j.Clients,
				j.Coverage*100, j.ConflictRate, verdict), width)
		}
	}

	clientSparks := sp != nil && len(sp.ClientRate) > 0
	writeLine(&b, "", width)
	head2 := fmt.Sprintf("%4s  %-5s  %5s  %9s  %5s  %7s  %8s  %8s",
		"ID", "STATE", "DEPTH", "CONF/S", "UTIL", "IMP-USE", "MEM", "LEARNTS")
	if clientSparks {
		head2 += "  HISTORY"
	}
	writeLine(&b, head2, width)

	// The /progress client rows carry rates and depths; join the /status
	// rows by ID for the learned-clause gauge and the per-worker view.
	learnts := map[int]int{}
	workers := map[int][]comm.WorkerReport{}
	for _, c := range s.Clients {
		learnts[c.ID] = c.DBLearnts
		workers[c.ID] = c.Workers
	}
	for _, c := range p.Clients {
		state := "idle"
		switch {
		case c.Straggler:
			state = "SLOW"
		case c.Busy:
			state = "busy"
		}
		row := fmt.Sprintf("%4d  %-5s  %5d  %9.1f  %4.0f%%  %6.1f%%  %8s  %8d",
			c.ID, state, c.Depth, c.ConflictsPerSec, c.Utilization*100,
			c.ImportUseRatio*100, fmtBytes(c.MemBytes), learnts[c.ID])
		if clientSparks {
			row += "  " + history.Spark(sp.ClientRate[c.ID], topSparkCell)
		}
		writeLine(&b, row, width)
		// Portfolio clients get one indented sub-row per in-host worker,
		// with its diversification tag and point-in-time gauges. MEM and
		// LEARNTS stay aligned with the parent columns.
		for _, w := range workers[c.ID] {
			writeLine(&b, fmt.Sprintf("      w%-2d %-14.14s  conf %-7s rst %-4s%8s  %8d",
				w.Worker, workerTag(w.Profile), fmtCount(w.Conflicts),
				fmtCount(w.Restarts), fmtBytes(w.MemBytes), w.Learnts), width)
		}
	}
	return b.String()
}

// workerTag compresses a diversification Profile.String() into a short
// dashboard tag: the pathfinder keeps its name, diversified workers show
// their phase and restart schedule ("rand+luby").
func workerTag(profile string) string {
	if strings.Contains(profile, "pathfinder") {
		return "pathfinder"
	}
	phase, restart := "?", "?"
	for _, f := range strings.Fields(profile) {
		switch {
		case strings.HasPrefix(f, "phase="):
			phase = strings.TrimPrefix(f, "phase=")
		case strings.HasPrefix(f, "restart="):
			restart = strings.TrimPrefix(f, "restart=")
			if i := strings.IndexByte(restart, '/'); i >= 0 {
				restart = restart[:i]
			}
		}
	}
	return phase + "+" + restart
}

// writeLine appends s padded/truncated to exactly width columns plus '\n'.
func writeLine(b *strings.Builder, s string, width int) {
	if len(s) > width {
		s = s[:width]
	}
	b.WriteString(s)
	for i := len(s); i < width; i++ {
		b.WriteByte(' ')
	}
	b.WriteByte('\n')
}

// progressBar renders a [0,1] fraction as a bar of exactly n cells.
func progressBar(frac float64, n int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	filled := int(frac * float64(n))
	return strings.Repeat("=", filled) + strings.Repeat("-", n-filled)
}

// fmtCount renders a counter with SI suffixes (1234 -> "1.2k").
func fmtCount(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}

// fmtBytes renders a byte count with IEC suffixes.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// fmtSeconds renders elapsed seconds compactly (90.5 -> "1m30s").
func fmtSeconds(s float64) string {
	if s < 0 {
		s = 0
	}
	sec := int64(s)
	switch {
	case sec >= 3600:
		return fmt.Sprintf("%dh%02dm", sec/3600, sec%3600/60)
	case sec >= 60:
		return fmt.Sprintf("%dm%02ds", sec/60, sec%60)
	}
	return fmt.Sprintf("%.1fs", s)
}

// fmtPercent renders a [0,1] rate as a percentage with sensible precision
// for very slow coverage rates.
func fmtPercent(frac float64) string {
	pct := frac * 100
	if pct != 0 && pct < 0.01 {
		return fmt.Sprintf("%.1e%%", pct)
	}
	return fmt.Sprintf("%.2f%%", pct)
}

// fmtETA renders the /progress eta_seconds convention: -1 unknown,
// 0 exhausted.
func fmtETA(s float64) string {
	switch {
	case s < 0:
		return "--"
	case s == 0:
		return "done"
	}
	return fmtSeconds(s)
}
