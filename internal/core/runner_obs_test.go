package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gridsat/internal/gen"
	"gridsat/internal/obs/history"
	"gridsat/internal/trace"
)

// desStallConfig builds a run that deterministically stalls: one client
// on a hard UNSAT instance never splits, so cluster coverage stays flat
// at zero until the virtual-time budget runs out. Only the
// progress-stall rule is armed; the huge cooldown pins the alert count
// at one.
func desStallConfig(bundleDir string) RunnerConfig {
	cfg := desConfig(gen.Pigeonhole(10), 100)
	cfg.MaxClients = 1
	cfg.MonitorPeriodVSec = 5
	cfg.Watchdog = &WatchdogConfig{
		StallWindowSec:     30,
		StallMinBusy:       1,
		StragglerWindowSec: -1,
		MemWindowSec:       -1,
		HeartbeatGapSec:    -1,
		CooldownSec:        1e9,
	}
	cfg.BundleDir = bundleDir
	return cfg
}

// TestDESWatchdogStallEmitsAnomalyAndBundle is the end-to-end anomaly
// path: an injected stall must fire the progress-stall rule, emit an
// FEvAnomaly flight event, surface the alert in the result, and write a
// complete postmortem bundle whose history window shows the flat
// coverage that triggered it.
func TestDESWatchdogStallEmitsAnomalyAndBundle(t *testing.T) {
	dir := t.TempDir()
	fl := trace.NewFlight(nil)
	cfg := desStallConfig(dir)
	cfg.Flight = fl
	res := RunDistributed(cfg)
	if res.Outcome != OutcomeTimeout {
		t.Fatalf("stall run outcome = %v, want TIME_OUT", res.Outcome)
	}

	// The alert surfaced in the result, exactly once (cooldown).
	if len(res.Alerts) != 1 {
		t.Fatalf("alerts = %+v, want exactly one", res.Alerts)
	}
	a := res.Alerts[0]
	if a.Rule != RuleProgressStall || a.Subject != "cluster" {
		t.Fatalf("alert = %+v, want cluster progress-stall", a)
	}

	// The flight log carries the anomaly event.
	var anomalies []trace.FEvent
	for _, ev := range fl.Events() {
		if ev.Kind == trace.FEvAnomaly {
			anomalies = append(anomalies, ev)
		}
	}
	if len(anomalies) != 1 {
		t.Fatalf("FEvAnomaly events = %d, want 1", len(anomalies))
	}
	if !strings.HasPrefix(anomalies[0].Detail, RuleProgressStall+": ") {
		t.Fatalf("anomaly detail %q lacks rule prefix", anomalies[0].Detail)
	}

	// One bundle, deterministically named, with every section present.
	if len(res.Bundles) != 1 {
		t.Fatalf("bundles = %v, want exactly one", res.Bundles)
	}
	b := res.Bundles[0]
	if got := filepath.Base(b); got != "bundle-001-anomaly-progress-stall" {
		t.Fatalf("bundle name = %q", got)
	}
	for _, f := range []string{"flight.jsonl", "pprof/heap.pprof", "metrics.json",
		"history.json", "state.json", "config.json", "MANIFEST.json"} {
		if _, err := os.Stat(filepath.Join(b, f)); err != nil {
			t.Errorf("bundle section %s missing: %v", f, err)
		}
	}
	if _, err := os.Stat(filepath.Join(b, "pprof/cpu.pprof")); err == nil {
		t.Error("DES bundle captured a CPU profile; must stay deterministic")
	}

	// The bundle's history replays the stall: cluster coverage sampled
	// across the watchdog window, flat at zero the whole way.
	raw, err := os.ReadFile(filepath.Join(b, "history.json"))
	if err != nil {
		t.Fatal(err)
	}
	var hist struct {
		Series []history.SeriesDump `json:"series"`
	}
	if err := json.Unmarshal(raw, &hist); err != nil {
		t.Fatal(err)
	}
	var cov *history.SeriesDump
	for i := range hist.Series {
		if hist.Series[i].Name == "cluster.coverage" {
			cov = &hist.Series[i]
		}
	}
	if cov == nil || len(cov.Tiers) == 0 {
		t.Fatalf("bundle history lacks cluster.coverage: %+v", hist.Series)
	}
	pts := cov.Tiers[0].Points
	if len(pts) < 7 { // 30 vsec window at 5 vsec cadence, plus warm-up
		t.Fatalf("coverage series has %d points, want the stall window", len(pts))
	}
	for _, p := range pts {
		if p.V != 0 {
			t.Fatalf("coverage moved (%v at t=%v); stall was not a stall", p.V, p.T)
		}
	}
	if pts[len(pts)-1].T-pts[0].T < cfg.Watchdog.StallWindowSec {
		t.Fatalf("history window %v vsec shorter than the stall window",
			pts[len(pts)-1].T-pts[0].T)
	}

	// The anomaly event replays: an identical config (fresh bundle dir)
	// reproduces the recorded stream, FEvAnomaly included.
	if err := trace.ReplayVerify(fl.Events(), func(f *trace.Flight) error {
		rerun := desStallConfig(t.TempDir())
		rerun.Flight = f
		RunDistributed(rerun)
		return nil
	}); err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
}

// TestDESWatchdogNilIsOff pins the gate: without a watchdog config the
// run produces no alerts, no bundles, and (critically) a flight log
// byte-identical to a pre-observability run.
func TestDESWatchdogNilIsOff(t *testing.T) {
	run := func(wd *WatchdogConfig, bundleDir string) ([]trace.FEvent, SimResult) {
		fl := trace.NewFlight(nil)
		cfg := desConfig(gen.Pigeonhole(8), 10_000)
		cfg.MonitorPeriodVSec = 5
		cfg.Watchdog = wd
		cfg.BundleDir = bundleDir
		cfg.Flight = fl
		return fl.Events(), RunDistributed(cfg)
	}
	offEvents, offRes := run(nil, "")
	if offRes.Alerts != nil || offRes.Bundles != nil {
		t.Fatalf("watchdog-off run produced alerts/bundles: %+v %+v",
			offRes.Alerts, offRes.Bundles)
	}
	// A healthy solved run with the watchdog armed fires nothing and —
	// because no anomaly events land — keeps the same event stream.
	onEvents, onRes := run(&WatchdogConfig{}, t.TempDir())
	if len(onRes.Alerts) != 0 {
		t.Fatalf("healthy run fired alerts: %+v", onRes.Alerts)
	}
	if len(onEvents) != len(offEvents) {
		t.Fatalf("event streams diverged: %d vs %d events", len(onEvents), len(offEvents))
	}
	for i := range offEvents {
		if offEvents[i] != onEvents[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, offEvents[i], onEvents[i])
		}
	}
}
