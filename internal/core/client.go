package core

import (
	"errors"
	"fmt"
	"time"

	"gridsat/internal/cnf"
	"gridsat/internal/comm"
	"gridsat/internal/obs"
	"gridsat/internal/solver"
	"gridsat/internal/trace"
)

// ClientConfig configures a live GridSAT client.
type ClientConfig struct {
	Transport comm.Transport
	// MasterAddr is where to register.
	MasterAddr string
	// ListenAddr is the client's own P2P endpoint ("" auto-allocates).
	ListenAddr string
	HostName   string
	// FreeMemBytes is the measured free memory; the client budgets 60% of
	// it for the clause database (paper §3.3) and reports it to the master.
	FreeMemBytes int64
	SpeedHint    float64
	// ShareMaxLen bounds exported learned clauses (paper: 10 and 3);
	// 0 uses the default, negative disables sharing entirely.
	ShareMaxLen int
	// ShareFlushCount flushes the share aggregator once this many fresh
	// clauses are pending (0 = default 16).
	ShareFlushCount int
	// ShareFlushInterval flushes a non-empty aggregator after this long
	// even below ShareFlushCount (0 = default 100ms).
	ShareFlushInterval time.Duration
	// ShareWindow caps the duplicate-suppression fingerprint window the
	// client uses to avoid re-exporting clauses it already saw (its own
	// or received from peers). 0 uses a default.
	ShareWindow int
	// SharePendingMax bounds the aggregator's pending batch; when full,
	// the longest pending clause is dropped first (0 = default).
	SharePendingMax int
	// SplitLearntMaxLen / Count bound clauses forwarded inside a split.
	SplitLearntMaxLen   int
	SplitLearntMaxCount int
	// SliceConflicts is the solver quantum between control-plane checks.
	SliceConflicts int64
	// MinRunTime floors the split timeout (see SplitDecision).
	MinRunTime time.Duration
	// HeartbeatEvery sends a StatusReport to the master after this many
	// solver slices (0 = every 8 slices).
	HeartbeatEvery int
	// SplitStrategy names the split engine used when the master asks this
	// client to shed work: "first-decision" (default, the paper's Figure-2
	// transform), "dilemma" (2^k-way cofactor split), or "dilemma-veto"
	// (dilemma with the bad-variable veto filter). See solver.ParseStrategy.
	SplitStrategy string
	// Threads is the in-host portfolio width: the client runs this many
	// diversified solver workers over each subproblem, exchanging learnt
	// clauses through a lock-free in-host pool, and presents itself to the
	// master as one client. 0 or 1 preserves single-solver behavior
	// exactly; the pathfinder (worker 0) always runs the base options.
	Threads int
	// SolverOptions tunes the engine; zero value uses solver defaults.
	SolverOptions *solver.Options
	// Counters, when set, receives the always-on solver metrics
	// (decisions, conflicts, propagations, ...) for every subproblem this
	// client solves. Cheap enough to leave on (see internal/bench's
	// instrumentation ablation); may be shared across clients.
	Counters *solver.Counters
	// Metrics, when set, receives the client's sharing-pipeline series
	// (gridsat_client_share_dedup_total); may be shared across clients.
	Metrics *obs.Registry
	// Flight, when non-nil, records this client's share/memory events and
	// stamps its control messages with Lamport trace metadata so the
	// master's flight events can name their causes. In-process jobs pass
	// the master's recorder here; standalone TCP clients may carry their
	// own (parent IDs then resolve only within each process's log).
	Flight *trace.Flight
}

func (c *ClientConfig) withDefaults() ClientConfig {
	out := *c
	if out.SliceConflicts == 0 {
		out.SliceConflicts = 2000
	}
	if out.SpeedHint == 0 {
		out.SpeedHint = 1
	}
	if out.MinRunTime == 0 {
		out.MinRunTime = 500 * time.Millisecond
	}
	if out.ShareMaxLen == 0 {
		out.ShareMaxLen = 10
	}
	if out.SplitLearntMaxLen == 0 {
		out.SplitLearntMaxLen = out.ShareMaxLen
	}
	if out.SplitLearntMaxCount == 0 {
		out.SplitLearntMaxCount = 10000
	}
	if out.HeartbeatEvery == 0 {
		out.HeartbeatEvery = 8
	}
	return out
}

// Client is one live GridSAT worker. Run blocks until the master shuts it
// down or the connection drops.
type Client struct {
	cfg      ClientConfig
	id       int
	master   comm.Conn
	listener comm.Listener

	// base is the current subproblem's formula; bases caches every
	// BaseProblem received, keyed by job (a scheduling master ships one
	// formula per job; single-job masters use the implicit job 0).
	base  *cnf.Formula
	bases map[int]*cnf.Formula
	// job is the job the current (or last) subproblem belongs to; tagged
	// onto every outbound Solved/StatusReport/ShareClauses/SplitPayload.
	job      int
	strategy solver.SplitStrategy
	// slv is the active solver: the only solver when single-threaded, the
	// portfolio's pathfinder when Threads > 1. Splits, migration and
	// depth/coverage reporting always go through slv.
	slv *solver.Solver
	// port is the in-host portfolio (nil when Threads <= 1). slv aliases
	// port.Pathfinder() while it is non-nil.
	port       *portfolio
	recvAt     time.Time // when the current subproblem arrived
	xferTime   time.Duration
	busy       bool
	splitWhy   comm.SplitReason
	splitAsked bool

	// shares batches OnLearn clauses for the master with duplicate
	// suppression; it outlives individual subproblems, so clauses learned
	// again after a re-assignment are not re-exported.
	shares     *shareAggregator
	shareDedup *obs.Counter // nil when ClientConfig.Metrics is unset
	lastDedup  int64        // dedup hits already published to shareDedup

	sliceCount int
	// lastHB is the Stats snapshot at the previous heartbeat; the next
	// StatusReport carries the delta so the master can sum without
	// worrying about per-subproblem counter resets.
	lastHB solver.Stats

	control chan comm.Message
	stopped chan struct{}

	flight *trace.Flight
	// lastEv is this client's most recent flight event, carried as the
	// causal parent on its next stamped message.
	lastEv uint64
}

// femit records a flight event and remembers it as the causal parent for
// the next outbound message. No-op without a recorder.
func (c *Client) femit(ev trace.FEvent) uint64 {
	if c.flight == nil {
		return 0
	}
	id := c.flight.Emit(ev)
	c.lastEv = id
	return id
}

// sendMaster sends a control message, wrapping it in a trace envelope
// (current Lamport time + last local event) when tracing is on.
func (c *Client) sendMaster(msg comm.Message) error {
	if c.flight != nil {
		return c.master.Send(comm.Traced{
			Info: comm.TraceInfo{Lamport: c.flight.Tick(), Parent: c.lastEv},
			Msg:  msg,
		})
	}
	return c.master.Send(msg)
}

// NewClient dials the master and registers.
func NewClient(cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.Transport == nil {
		return nil, errors.New("core: client needs a transport")
	}
	strategy, err := solver.ParseStrategy(cfg.SplitStrategy)
	if err != nil {
		return nil, err
	}
	l, err := cfg.Transport.Listen(cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	mc, err := cfg.Transport.Dial(cfg.MasterAddr)
	if err != nil {
		l.Close()
		return nil, err
	}
	c := &Client{
		cfg:      cfg,
		strategy: strategy,
		master:   mc,
		listener: l,
		bases:    map[int]*cnf.Formula{},
		shares:   newShareAggregator(cfg.ShareFlushCount, cfg.ShareFlushInterval, cfg.ShareWindow, cfg.SharePendingMax),
		control:  make(chan comm.Message, 256),
		stopped:  make(chan struct{}),
		flight:   cfg.Flight,
	}
	if cfg.Metrics != nil {
		c.shareDedup = cfg.Metrics.Counter("gridsat_client_share_dedup_total",
			"clauses suppressed by the client's share dedup window")
	}
	if err := mc.Send(comm.Register{
		Addr:         l.Addr(),
		HostName:     cfg.HostName,
		FreeMemBytes: cfg.FreeMemBytes,
		SpeedHint:    cfg.SpeedHint,
	}); err != nil {
		l.Close()
		mc.Close()
		return nil, err
	}
	ack, err := mc.Recv()
	if err != nil {
		l.Close()
		mc.Close()
		return nil, err
	}
	ra, ok := ack.(comm.RegisterAck)
	if !ok {
		l.Close()
		mc.Close()
		return nil, fmt.Errorf("core: expected register-ack, got %s", ack.Kind())
	}
	if ra.Rejected {
		l.Close()
		mc.Close()
		return nil, fmt.Errorf("core: registration rejected: %s", ra.Reason)
	}
	c.id = ra.ClientID
	go c.masterLoop()
	go c.peerLoop()
	return c, nil
}

// ID returns the master-assigned client ID.
func (c *Client) ID() int { return c.id }

// Addr returns the client's P2P address.
func (c *Client) Addr() string { return c.listener.Addr() }

func (c *Client) masterLoop() {
	for {
		msg, err := c.master.Recv()
		if err != nil {
			close(c.stopped)
			return
		}
		select {
		case c.control <- msg:
		case <-c.stopped:
			return
		}
	}
}

// peerLoop accepts P2P connections carrying split payloads from donors.
func (c *Client) peerLoop() {
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			msg, err := conn.Recv()
			if err != nil {
				return
			}
			select {
			case c.control <- msg:
			case <-c.stopped:
			}
		}()
	}
}

// Run is the client's main loop: wait for work, solve in slices, obey the
// control plane. Returns when the master sends Shutdown or disappears.
func (c *Client) Run() error {
	defer c.listener.Close()
	defer c.master.Close()
	for {
		if !c.busy {
			select {
			case msg := <-c.control:
				if done := c.handleIdle(msg); done {
					return nil
				}
			case <-c.stopped:
				return nil
			}
			continue
		}
		// Busy: solve one slice, then drain the control plane.
		if done, err := c.solveSlice(); done || err != nil {
			return err
		}
	drain:
		for {
			select {
			case msg := <-c.control:
				if done := c.handleBusy(msg); done {
					return nil
				}
			case <-c.stopped:
				return nil
			default:
				break drain
			}
		}
	}
}

func (c *Client) handleIdle(msg comm.Message) bool {
	msg, _ = comm.Unwrap(msg)
	switch m := msg.(type) {
	case comm.BaseProblem:
		c.bases[m.Job] = m.Formula
		if m.Job == 0 {
			c.base = m.Formula
		}
	case comm.SplitPayload:
		c.startSubproblem(m.SplitID, m.Job, m.Subs)
	case comm.SplitAssign:
		// The assignment raced with this client finishing its subproblem;
		// report failure so the master releases the reserved recipient.
		_ = c.sendMaster(comm.SplitDone{ClientID: c.id, SplitID: m.SplitID, OK: false,
			Err: "donor already idle"})
	case comm.Preempt:
		// The preempt raced with this client going idle; a bare ack lets
		// the master return it to the pool.
		_ = c.sendMaster(comm.Preempted{ClientID: c.id, Job: m.Job, Seq: m.Seq})
	case comm.StopWork:
		_ = c.sendMaster(comm.Preempted{ClientID: c.id, Job: m.Job, Seq: m.Seq})
	case comm.ShareClauses:
		// Idle clients have no solver; drop (they get a fresh split later).
	case comm.Shutdown:
		return true
	}
	return false
}

func (c *Client) handleBusy(msg comm.Message) bool {
	msg, ti := comm.Unwrap(msg)
	switch m := msg.(type) {
	case comm.BaseProblem:
		// A scheduling master may pre-ship another job's formula while this
		// client is still busy (reserved as a split recipient).
		c.bases[m.Job] = m.Formula
	case comm.SplitAssign:
		c.performSplit(m.SplitID, m.Peers)
	case comm.Migrate:
		c.performMigrate(m.PeerAddr)
	case comm.Preempt:
		c.performPreempt(m.Job, m.Seq)
	case comm.StopWork:
		c.performStop(m.Job, m.Seq)
	case comm.ShareClauses:
		if c.slv != nil && m.Job == c.job {
			// Remember what arrived before importing: clauses received
			// from peers must never be re-exported by this client. Shares
			// are sound only within their own job's formula, hence the tag
			// filter.
			c.shares.NoteReceived(m.Clauses)
			if c.port != nil {
				_ = c.port.ImportClauses(m.Clauses)
			} else {
				_ = c.slv.ImportClauses(m.Clauses)
			}
			c.femit(trace.FEvent{Kind: trace.FEvShareMerge, Client: c.id, Peer: m.From,
				Job: c.job, N: int64(len(m.Clauses)), Lamport: ti.Lamport, Parent: ti.Parent})
		}
	case comm.Shutdown:
		return true
	}
	return false
}

// startSubproblem builds a solver for the received subproblem. A recipient
// always gets exactly one: multi-subproblem payloads exist only on the
// donor-to-master leftover path.
func (c *Client) startSubproblem(splitID, job int, subs []*solver.Subproblem) {
	// Failure acks carry the subproblems back as Leftover so the master
	// can requeue them: an unstartable cofactor is still live search
	// space, and dropping it could declare UNSAT without searching it.
	if len(subs) != 1 {
		_ = c.sendMaster(comm.SplitDone{ClientID: c.id, SplitID: splitID, OK: false,
			Err: fmt.Sprintf("expected one subproblem, got %d", len(subs)), Leftover: subs})
		return
	}
	sub := subs[0]
	if c.busy {
		_ = c.sendMaster(comm.SplitDone{ClientID: c.id, SplitID: splitID, OK: false,
			Err: "already busy", Leftover: subs})
		return
	}
	c.base = c.bases[job]
	if c.base == nil {
		_ = c.sendMaster(comm.SplitDone{ClientID: c.id, SplitID: splitID, OK: false,
			Err: "no base problem cached", Leftover: subs})
		return
	}
	c.job = job
	opts := solver.DefaultOptions()
	if c.cfg.SolverOptions != nil {
		opts = *c.cfg.SolverOptions
	}
	opts.ShareMaxLen = c.cfg.ShareMaxLen
	if c.cfg.Counters != nil {
		opts.Counters = c.cfg.Counters
	}
	if c.cfg.Threads > 1 {
		// Portfolio client: K diversified workers over this subproblem.
		// Learnt clauses flow through the in-host pool; the ones within
		// the cluster share bound are forwarded to the aggregator between
		// slices (see solveSlice), not directly from OnLearn.
		port, err := newPortfolio(c.base, sub, opts, c.cfg.Threads, c.cfg.ShareMaxLen)
		if err != nil {
			_ = c.sendMaster(comm.SplitDone{ClientID: c.id, SplitID: splitID, OK: false, Err: err.Error()})
			return
		}
		c.port = port
		c.slv = port.Pathfinder()
	} else {
		// OnLearn passes a fresh copy, so the aggregator may retain it.
		opts.OnLearn = c.shares.Learn
		slv, err := solver.NewFromSubproblem(c.base, sub, opts)
		if err != nil {
			_ = c.sendMaster(comm.SplitDone{ClientID: c.id, SplitID: splitID, OK: false, Err: err.Error()})
			return
		}
		c.slv = slv
	}
	c.busy = true
	c.splitAsked = false
	c.lastHB = solver.Stats{} // fresh solver: deltas restart from zero
	c.recvAt = time.Now()
	if sub.Assumptions != nil {
		// Rough transfer-time proxy in the live runtime: proportional to
		// payload size. The DES runner models it from the network.
		c.xferTime = time.Duration(len(sub.Assumptions)+16*len(sub.Learnts)) * time.Microsecond
	}
	_ = c.sendMaster(comm.SplitDone{ClientID: c.id, SplitID: splitID, OK: true})
}

// solveSlice advances the solver one quantum and handles terminal states
// and split triggers.
func (c *Client) solveSlice() (bool, error) {
	budget := int64(0)
	if c.cfg.FreeMemBytes > 0 {
		budget = c.cfg.FreeMemBytes * 60 / 100
	}
	lim := solver.Limits{
		MaxConflicts:   c.cfg.SliceConflicts,
		MaxMemoryBytes: budget,
	}
	var res solver.Result
	worker := 0
	if c.port != nil {
		res = c.port.Solve(lim)
		// Pool clauses within the cluster bound ride the normal
		// master-mediated share path; the aggregator dedups and ranks.
		c.port.DrainClusterShares(c.shares.Learn)
		if w := c.port.Winner(); w >= 0 {
			worker = w
		}
	} else {
		res = c.slv.Solve(lim)
	}
	c.flushShares()
	c.sliceCount++
	if c.cfg.HeartbeatEvery > 0 && c.sliceCount%c.cfg.HeartbeatEvery == 0 {
		c.sendHeartbeat(true)
	}
	switch res.Status {
	case solver.StatusSAT:
		c.busy = false
		c.drainShares()        // don't strand learned clauses in the aggregator
		c.sendHeartbeat(false) // flush the tail deltas before Solved
		return false, c.sendMaster(comm.Solved{ClientID: c.id, Status: res.Status,
			Model: res.Model, Depth: c.slv.PathDepth(), Worker: worker, Job: c.job})
	case solver.StatusUNSAT:
		c.busy = false
		c.drainShares()
		c.sendHeartbeat(false)
		// An extra worker's UNSAT refutes a (possibly pre-split) superset
		// of the pathfinder's subspace, so reporting at the pathfinder's
		// depth never over-counts coverage.
		depth := c.slv.PathDepth()
		if err := c.sendMaster(comm.Solved{ClientID: c.id, Status: res.Status, Depth: depth, Worker: worker, Job: c.job}); err != nil {
			return false, err
		}
		c.slv = nil
		c.port = nil
		return false, nil
	}
	// Still unknown: evaluate the split triggers.
	dec := SplitDecision{
		MemBudgetBytes:      budget,
		MemPressureFraction: 0.8,
		TransferTime:        c.xferTime.Seconds(),
		MinRunTime:          c.cfg.MinRunTime.Seconds(),
	}
	if res.Reason == solver.ReasonMemLimit {
		// Out of budget right now: ask for a split and shed inactive
		// learned clauses so progress continues while the master looks
		// for an idle resource (paper §4.2). The freed bytes reach the
		// master through the next heartbeat's ReclaimedBytes delta.
		c.requestSplit(comm.SplitMemoryPressure)
		freed := c.shedMemory()
		c.femit(trace.FEvent{Kind: trace.FEvMemShed, Client: c.id, N: freed})
		return false, nil
	}
	if ask, why := dec.ShouldSplit(c.memoryBytes(), time.Since(c.recvAt).Seconds()); ask {
		reason := comm.SplitTimeout
		if why == WhyMemory {
			reason = comm.SplitMemoryPressure
		}
		c.requestSplit(reason)
	}
	return false, nil
}

// sendHeartbeat reports the current solver gauges plus the counter
// increments since the previous heartbeat; the master aggregates the
// deltas into its live cluster view.
func (c *Client) sendHeartbeat(busy bool) {
	if c.slv == nil {
		return
	}
	st := c.stats()
	d := solver.StatsDelta(st, c.lastHB)
	c.lastHB = st
	hb := comm.StatusReport{
		ClientID:  c.id,
		MemBytes:  c.memoryBytes(),
		Learnts:   c.numLearnts(),
		Conflicts: st.Conflicts,
		Busy:      busy,
		Depth:     c.slv.PathDepth(),
		Job:       c.job,
		Deltas:    heartbeatDeltas(d),
	}
	if c.port != nil {
		hb.Workers = c.port.WorkerReports()
	}
	_ = c.sendMaster(hb)
}

// stats/memoryBytes/numLearnts/shedMemory present the host's solving
// state as one client: the portfolio's workers summed when one is
// running, the single solver otherwise.
func (c *Client) stats() solver.Stats {
	if c.port != nil {
		return c.port.Stats()
	}
	return c.slv.Stats()
}

func (c *Client) memoryBytes() int64 {
	if c.port != nil {
		return c.port.MemoryBytes()
	}
	return c.slv.MemoryBytes()
}

func (c *Client) numLearnts() int {
	if c.port != nil {
		return c.port.NumLearnts()
	}
	return c.slv.NumLearnts()
}

func (c *Client) shedMemory() int64 {
	if c.port != nil {
		return c.port.ShedMemory()
	}
	return c.slv.ShedMemory()
}

// heartbeatDeltas maps a solver Stats delta onto the wire struct; one
// place, so new telemetry fields cannot drift between runtime and DES.
func heartbeatDeltas(d solver.Stats) comm.SolverDeltas {
	return comm.SolverDeltas{
		Decisions:      d.Decisions,
		Conflicts:      d.Conflicts,
		Propagations:   d.Propagations,
		Implications:   d.Implications,
		Learned:        d.Learned,
		ReclaimedBytes: d.ReclaimedBytes,

		Imported:             d.Imported,
		ImportedImplications: d.ImportedImplications,
		ImportedResolutions:  d.ImportedResolutions,
		ImportedUseful:       d.ImportedUseful,
	}
}

func (c *Client) requestSplit(why comm.SplitReason) {
	if c.splitAsked {
		return
	}
	c.splitAsked = true
	c.splitWhy = why
	_ = c.sendMaster(comm.SplitRequest{ClientID: c.id, Why: why})
}

// performSplit executes Figure 3's messages (3) and (5), generalized to a
// strategy batch: run the configured split strategy, ship one cofactor to
// each assigned peer in order, and report to the master how many peers were
// actually served plus any leftover cofactors for the master to backlog.
func (c *Client) performSplit(splitID int, peers []comm.SplitPeer) {
	c.splitAsked = false
	if c.slv == nil || !c.busy {
		_ = c.sendMaster(comm.SplitDone{ClientID: c.id, SplitID: splitID, OK: false, Err: "no active subproblem"})
		return
	}
	batch, err := c.strategy.Split(c.slv, c.cfg.SplitLearntMaxLen, c.cfg.SplitLearntMaxCount)
	if err != nil {
		_ = c.sendMaster(comm.SplitDone{ClientID: c.id, SplitID: splitID, OK: false, Err: err.Error()})
		return
	}
	// The strategy has already committed the donor to its own cofactor, so
	// from here every subproblem in the batch must reach somebody: peers are
	// served in assignment order, and on the first delivery failure the rest
	// of the batch rides back to the master as leftover instead of being
	// lost. The master releases the unserved peers (the suffix after Used).
	used := 0
	for used < len(peers) && used < len(batch) {
		if err := c.sendToPeer(splitID, peers[used].Addr, batch[used]); err != nil {
			break
		}
		used++
	}
	c.recvAt = time.Now() // the narrowed problem restarts the timeout clock
	_ = c.sendMaster(comm.SplitDone{ClientID: c.id, SplitID: splitID, OK: true,
		Used: used, Leftover: batch[used:]})
}

// checkpointSub freezes the current search state as a transferable
// subproblem: the guiding path (level-0 literals) plus the bounded
// learnt-clause export (§3.4 HeavyCheckpoint over the wire).
func (c *Client) checkpointSub() *solver.Subproblem {
	return &solver.Subproblem{
		NumVars:     c.base.NumVars,
		Assumptions: c.slv.Level0Lits(),
		Learnts:     c.slv.ExportLearnts(c.cfg.SplitLearntMaxLen, c.cfg.SplitLearntMaxCount),
		Depth:       c.slv.PathDepth(),
	}
}

// stopSolving tears the active solver (or portfolio) down and goes idle.
func (c *Client) stopSolving() {
	if c.port != nil {
		c.port.StopAll()
		c.port = nil
	} else if c.slv != nil {
		c.slv.Stop()
	}
	c.slv = nil
	c.busy = false
}

// performMigrate ships the whole current problem to the peer and goes idle.
func (c *Client) performMigrate(peerAddr string) {
	if c.slv == nil || !c.busy {
		return
	}
	sub := c.checkpointSub()
	if err := c.sendToPeer(0, peerAddr, sub); err != nil {
		return // keep solving; migration failed
	}
	c.stopSolving()
	_ = c.sendMaster(comm.Solved{ClientID: c.id, Status: solver.StatusUnknown, Job: c.job})
}

// performPreempt answers the scheduler taking this client away from its
// job: checkpoint the subproblem, stop, and ship the checkpoint to the
// master, which backlogs it until the job gets a client again.
func (c *Client) performPreempt(job, seq int) {
	if c.slv == nil || !c.busy || job != c.job {
		// Raced with the subproblem ending (or a stale job tag): a bare ack
		// returns the client to the pool.
		_ = c.sendMaster(comm.Preempted{ClientID: c.id, Job: job, Seq: seq})
		return
	}
	c.drainShares()        // don't strand learned clauses
	c.sendHeartbeat(false) // flush the tail deltas while the solver lives
	sub := c.checkpointSub()
	c.stopSolving()
	_ = c.sendMaster(comm.Preempted{ClientID: c.id, Job: job, Sub: sub, Seq: seq})
}

// performStop discards the current subproblem outright — its job is done
// or cancelled, so the work is worthless — and acks with a bare
// Preempted so the master returns this client to the pool.
func (c *Client) performStop(job, seq int) {
	if c.slv != nil && c.busy && job == c.job {
		c.sendHeartbeat(false)
		c.stopSolving()
	}
	_ = c.sendMaster(comm.Preempted{ClientID: c.id, Job: job, Seq: seq})
}

func (c *Client) sendToPeer(splitID int, addr string, sub *solver.Subproblem) error {
	conn, err := c.cfg.Transport.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return conn.Send(comm.SplitPayload{SplitID: splitID, From: c.id, Job: c.job,
		Subs: []*solver.Subproblem{sub}})
}

// flushShares sends a batch to the master when the aggregator's flush
// policy (count or interval) says it is time.
func (c *Client) flushShares() {
	c.sendShareBatch(c.shares.TakeBatch(time.Now()))
}

// drainShares force-flushes whatever is pending — called when the client
// finishes a subproblem so nothing learned is lost.
func (c *Client) drainShares() {
	c.sendShareBatch(c.shares.Drain())
}

func (c *Client) sendShareBatch(batch []cnf.Clause) {
	c.publishShareMetrics()
	if len(batch) == 0 {
		return
	}
	c.femit(trace.FEvent{Kind: trace.FEvShareFlush, Client: c.id, Job: c.job, N: int64(len(batch))})
	_ = c.sendMaster(comm.ShareClauses{From: c.id, Job: c.job, Clauses: batch})
}

// publishShareMetrics moves the aggregator's dedup tally into the
// registry counter incrementally.
func (c *Client) publishShareMetrics() {
	if c.shareDedup == nil {
		return
	}
	if hits := c.shares.DedupHits(); hits > c.lastDedup {
		c.shareDedup.Add(hits - c.lastDedup)
		c.lastDedup = hits
	}
}
