package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"gridsat/internal/cnf"
	"gridsat/internal/comm"
	"gridsat/internal/gen"
	"gridsat/internal/obs"
)

// TestClauseWindowBounded is the regression test for the unbounded
// seen-clauses map the window replaced: memory must stay bounded under
// sustained sharing, while recent fingerprints are still remembered.
func TestClauseWindowBounded(t *testing.T) {
	const cap = 128
	w := newClauseWindow(cap)
	for i := 0; i < 50*cap; i++ {
		if !w.Add(uint64(i)) {
			t.Fatalf("fingerprint %d reported as duplicate on first insert", i)
		}
		if w.Len() > 2*cap {
			t.Fatalf("window grew to %d entries after %d inserts, cap %d", w.Len(), i+1, cap)
		}
	}
	// The most recent cap inserts are always remembered.
	for i := 50*cap - cap; i < 50*cap; i++ {
		if !w.Contains(uint64(i)) {
			t.Errorf("recent fingerprint %d forgotten", i)
		}
	}
	// Re-adding a remembered fingerprint is suppressed.
	if w.Add(uint64(50*cap - 1)) {
		t.Error("duplicate fingerprint reported as fresh")
	}
}

func TestClauseWindowDefaultCap(t *testing.T) {
	w := newClauseWindow(0)
	if w.cap != 1<<16 {
		t.Fatalf("default cap = %d, want %d", w.cap, 1<<16)
	}
}

func clauseOfLen(start, n int) cnf.Clause {
	lits := make([]int, n)
	for i := range lits {
		lits[i] = start + i
	}
	return cnf.NewClause(lits...)
}

func TestShareAggregatorFlushByCount(t *testing.T) {
	a := newShareAggregator(3, time.Hour, 0, 0)
	now := time.Now()
	a.Learn(cnf.NewClause(1, 2), 0)
	a.Learn(cnf.NewClause(3, 4), 0)
	if got := a.TakeBatch(now); got != nil {
		t.Fatalf("flushed %d clauses below the count threshold", len(got))
	}
	a.Learn(cnf.NewClause(5, 6), 0)
	got := a.TakeBatch(now)
	if len(got) != 3 {
		t.Fatalf("batch has %d clauses, want 3", len(got))
	}
	if again := a.TakeBatch(now); again != nil {
		t.Fatalf("second take returned %d clauses, want none", len(again))
	}
}

func TestShareAggregatorFlushByInterval(t *testing.T) {
	a := newShareAggregator(100, 10*time.Millisecond, 0, 0)
	start := time.Now()
	a.Learn(cnf.NewClause(1, 2), 0)
	if got := a.TakeBatch(start); got != nil {
		t.Fatal("flushed before the interval elapsed")
	}
	got := a.TakeBatch(start.Add(20 * time.Millisecond))
	if len(got) != 1 {
		t.Fatalf("interval flush returned %d clauses, want 1", len(got))
	}
}

func TestShareAggregatorShortestFirst(t *testing.T) {
	a := newShareAggregator(100, time.Hour, 0, 0)
	a.Learn(clauseOfLen(1, 5), 0)
	a.Learn(clauseOfLen(10, 2), 0)
	a.Learn(clauseOfLen(20, 8), 0)
	a.Learn(clauseOfLen(30, 3), 0)
	got := a.Drain()
	for i := 1; i < len(got); i++ {
		if len(got[i-1]) > len(got[i]) {
			t.Fatalf("batch not shortest-first: lengths %d then %d", len(got[i-1]), len(got[i]))
		}
	}
	if len(got) != 4 {
		t.Fatalf("drained %d clauses, want 4", len(got))
	}
}

func TestShareAggregatorOverflowDropsLongest(t *testing.T) {
	a := newShareAggregator(2, time.Hour, 0, 2)
	a.Learn(clauseOfLen(1, 6), 0) // the long one — should be evicted
	a.Learn(clauseOfLen(10, 2), 0)
	a.Learn(clauseOfLen(20, 3), 0)
	if a.Overflow() != 1 {
		t.Fatalf("overflow = %d, want 1", a.Overflow())
	}
	got := a.Drain()
	if len(got) != 2 {
		t.Fatalf("kept %d clauses, want 2", len(got))
	}
	for _, c := range got {
		if len(c) == 6 {
			t.Fatal("the longest clause survived overflow; the shortest should win")
		}
	}
}

func TestShareAggregatorDedupAndPrune(t *testing.T) {
	a := newShareAggregator(100, time.Hour, 0, 0)
	c1, c2 := cnf.NewClause(1, 2), cnf.NewClause(3, 4, 5)
	a.Learn(c1, 0)
	a.Learn(c2, 0)
	// Learning the same clause again is suppressed by the window.
	a.Learn(cnf.NewClause(2, 1), 0)
	if a.DedupHits() != 1 {
		t.Fatalf("dedup hits = %d after relearn, want 1", a.DedupHits())
	}
	// A peer sends us c2: it must be pruned from pending and never re-learned.
	a.NoteReceived([]cnf.Clause{cnf.NewClause(5, 4, 3)})
	if a.DedupHits() != 2 {
		t.Fatalf("dedup hits = %d after NoteReceived prune, want 2", a.DedupHits())
	}
	got := a.Drain()
	if len(got) != 1 || got[0].Key() != c1.Key() {
		t.Fatalf("pending after prune = %v, want just %v", got, c1)
	}
	a.Learn(cnf.NewClause(3, 4, 5), 0)
	if got := a.Drain(); got != nil {
		t.Fatalf("re-learned a clause already received from a peer: %v", got)
	}
}

// encRecorder captures every SendEncoded frame the master writes, keyed
// by connection, so tests can prove encode-once fan-out: the same frame
// backing array must reach every peer.
type encRecorder struct {
	mu     sync.Mutex
	frames map[comm.Conn][][]byte
}

func (r *encRecorder) note(c comm.Conn, e *comm.EncodedMessage) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.frames == nil {
		r.frames = map[comm.Conn][][]byte{}
	}
	r.frames[c] = append(r.frames[c], e.Frame())
}

type captureConn struct {
	comm.Conn
	rec  *encRecorder
	kind string
}

func (c *captureConn) SendEncoded(e *comm.EncodedMessage) error {
	if e.Kind() == c.kind {
		c.rec.note(c, e)
	}
	return c.Conn.SendEncoded(e)
}

type captureListener struct {
	comm.Listener
	rec  *encRecorder
	kind string
}

func (l *captureListener) Accept() (comm.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &captureConn{Conn: conn, rec: l.rec, kind: l.kind}, nil
}

type captureTransport struct {
	comm.Transport
	rec  *encRecorder
	kind string
}

func (t *captureTransport) Listen(addr string) (comm.Listener, error) {
	l, err := t.Transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &captureListener{Listener: l, rec: t.rec, kind: t.kind}, nil
}

// fakeClient registers a hand-rolled client connection with the master.
// When drain is true a goroutine keeps reading the master's pushes so its
// writer never blocks; when false the connection goes deaf after the ack,
// which eventually fills the master-side outbound queue.
func fakeClient(t *testing.T, tr comm.Transport, addr string, i int, drain bool) comm.Conn {
	t.Helper()
	conn, err := tr.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(comm.Register{
		Addr: fmt.Sprintf("fake-peer-%d", i), HostName: fmt.Sprintf("h%d", i),
		FreeMemBytes: 64 << 20, SpeedHint: 1,
	}); err != nil {
		t.Fatal(err)
	}
	ack, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ra, ok := ack.(comm.RegisterAck); !ok || ra.Rejected {
		t.Fatalf("registration failed: %#v", ack)
	}
	if drain {
		go func() {
			for {
				if _, err := conn.Recv(); err != nil {
					return
				}
			}
		}()
	}
	return conn
}

// TestMasterShareFanoutEncodeOnce is the acceptance check for encode-once
// broadcast: when the master fans a clause batch out to N peers, every
// peer's connection must be handed the same encoded frame — byte-identical
// AND sharing one backing array, proving the batch was serialized exactly
// once regardless of peer count.
func TestMasterShareFanoutEncodeOnce(t *testing.T) {
	rec := &encRecorder{}
	tr := &captureTransport{
		Transport: comm.NewInprocTransport(),
		rec:       rec,
		kind:      (comm.ShareClauses{}).Kind(),
	}
	m, err := NewMaster(MasterConfig{
		Transport:       tr,
		ListenAddr:      "enc-master",
		Formula:         gen.Pigeonhole(6),
		Timeout:         60 * time.Second,
		ExpectedClients: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	go m.Run()

	conns := make([]comm.Conn, 3)
	for i := range conns {
		conns[i] = fakeClient(t, tr, "enc-master", i, true)
		defer conns[i].Close()
	}

	batch := []cnf.Clause{cnf.NewClause(1, -2), cnf.NewClause(3, 4, -5), cnf.NewClause(-6)}
	if err := conns[0].Send(comm.ShareClauses{From: 0, Clauses: batch}); err != nil {
		t.Fatal(err)
	}

	// The share fans out to the two other clients; wait for both frames.
	deadline := time.Now().Add(10 * time.Second)
	var frames [][]byte
	for {
		rec.mu.Lock()
		frames = frames[:0]
		for _, fs := range rec.frames {
			frames = append(frames, fs...)
		}
		rec.mu.Unlock()
		if len(frames) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("saw %d encoded share frames, want 2", len(frames))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if len(frames) != 2 {
		t.Fatalf("saw %d encoded share frames, want exactly 2", len(frames))
	}
	if !bytes.Equal(frames[0], frames[1]) {
		t.Fatal("peers received different frame bytes for the same batch")
	}
	if &frames[0][0] != &frames[1][0] {
		t.Fatal("peers received separately-encoded frames; broadcast must serialize once")
	}
}

// TestInprocFanOutDeliversFreshCopies guards the clause-aliasing landmine:
// every fan-out recipient must own its clauses. Two receivers get the same
// broadcast batch and mutate their copies concurrently (run under -race in
// CI); neither the other receiver nor the sender's original may change.
func TestInprocFanOutDeliversFreshCopies(t *testing.T) {
	tr := comm.NewInprocTransport()
	m, err := NewMaster(MasterConfig{
		Transport:       tr,
		ListenAddr:      "alias-master",
		Formula:         gen.Pigeonhole(6),
		Timeout:         60 * time.Second,
		ExpectedClients: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	go m.Run()

	sender := fakeClient(t, tr, "alias-master", 0, true)
	defer sender.Close()
	recv := make([]comm.Conn, 2)
	for i := range recv {
		recv[i] = fakeClient(t, tr, "alias-master", i+1, false)
		defer recv[i].Close()
	}

	original := []cnf.Clause{cnf.NewClause(1, -2, 3), cnf.NewClause(-4, 5)}
	wantKeys := map[string]bool{original[0].Key(): true, original[1].Key(): true}
	if err := sender.Send(comm.ShareClauses{From: 0, Clauses: original}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := range recv {
		conn := recv[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.After(10 * time.Second)
			for {
				type recvResult struct {
					msg comm.Message
					err error
				}
				ch := make(chan recvResult, 1)
				go func() {
					m, err := conn.Recv()
					ch <- recvResult{m, err}
				}()
				select {
				case r := <-ch:
					if r.err != nil {
						t.Errorf("recv: %v", r.err)
						return
					}
					sc, ok := r.msg.(comm.ShareClauses)
					if !ok {
						continue // base problem / assignment pushes
					}
					if len(sc.Clauses) != len(original) {
						t.Errorf("received %d clauses, want %d", len(sc.Clauses), len(original))
						return
					}
					for _, c := range sc.Clauses {
						if !wantKeys[c.Key()] {
							t.Errorf("received unexpected clause %v", c)
						}
					}
					// Mutate the received copy hard; under -race any sharing
					// with the sender or the other receiver is detected.
					for _, c := range sc.Clauses {
						for j := range c {
							c[j] = -c[j]
						}
					}
					return
				case <-deadline:
					t.Error("never received the shared batch")
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if original[0].Key() != cnf.NewClause(1, -2, 3).Key() || original[1].Key() != cnf.NewClause(-4, 5).Key() {
		t.Fatal("receiver mutation leaked into the sender's original clauses")
	}
}

// TestMasterDropsSharesWhenQueueFull: clause shares are best-effort — when
// a client's outbound queue is full the master must drop the share (never
// block its event loop), count the drop, and surface it in /status.
func TestMasterDropsSharesWhenQueueFull(t *testing.T) {
	reg := obs.NewRegistry()
	tr := comm.NewInprocTransport()
	m, err := NewMaster(MasterConfig{
		Transport:       tr,
		ListenAddr:      "drop-master",
		Formula:         gen.Pigeonhole(6),
		Timeout:         60 * time.Second,
		ExpectedClients: 2,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	go m.Run()

	sender := fakeClient(t, tr, "drop-master", 0, true)
	defer sender.Close()
	// The deaf client's writeLoop blocks on its first push; the 1024-deep
	// outbound queue then fills and further shares must be dropped.
	deaf := fakeClient(t, tr, "drop-master", 1, false)
	defer deaf.Close()

	for i := 0; i < 1200; i++ {
		c := cnf.NewClause(3*i+1, -(3*i + 2), 3*i+3)
		if err := sender.Send(comm.ShareClauses{From: 0, Clauses: []cnf.Clause{c}}); err != nil {
			t.Fatal(err)
		}
	}

	// Drops keep accruing while the flood drains, so wait for a quiescent
	// reading: two consecutive snapshots and the registry counter agree.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := m.Status()
		counter := reg.Snapshot().CounterValue("gridsat_master_shared_dropped_total")
		again := m.Status()
		if snap.SharedDropped > 0 && snap.SharedDropped == again.SharedDropped &&
			counter == snap.SharedDropped {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no stable non-zero drop count: /status=%d,%d registry=%d",
				snap.SharedDropped, again.SharedDropped, counter)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMasterShareWindowBounded drives sustained sharing through a live
// master configured with a small window and checks the duplicate-
// suppression state honors the bound (satellite of the unbounded
// seenClauses-map fix).
func TestMasterShareWindowBounded(t *testing.T) {
	const window = 64
	m, err := NewMaster(MasterConfig{
		Transport:       comm.NewInprocTransport(),
		ListenAddr:      "bound-master",
		Formula:         gen.Pigeonhole(6),
		Timeout:         60 * time.Second,
		ExpectedClients: 2, // never reached: the run idles while we flood
		ShareWindow:     window,
	})
	if err != nil {
		t.Fatal(err)
	}
	go m.Run()

	sender := fakeClient(t, m.cfg.Transport, "bound-master", 0, true)
	defer sender.Close()
	for i := 0; i < 40*window; i++ {
		c := cnf.NewClause(2*i+1, -(2*i + 2))
		if err := sender.Send(comm.ShareClauses{From: 0, Clauses: []cnf.Clause{c}}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the event loop has processed every share (all clauses are
	// distinct, so Shared counts them all); the Status reply channel then
	// gives the happens-before edge that makes reading the window safe.
	deadline := time.Now().Add(10 * time.Second)
	for m.Status().Shared != 40*window {
		if time.Now().After(deadline) {
			t.Fatalf("master processed %d shares, want %d", m.Status().Shared, 40*window)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := m.jobs[0].seenShared.Len(); got > 2*window {
		t.Fatalf("share window holds %d fingerprints after sustained sharing, want <= %d", got, 2*window)
	}
}
