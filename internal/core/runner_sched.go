package core

import (
	"fmt"
	"sort"

	"gridsat/internal/cnf"
	"gridsat/internal/solver"
	"gridsat/internal/trace"
)

// This file is the DES side of the multi-job scheduler: the per-job
// solving state (runnerJob), job arrival/cancel/finish transitions, and
// the malleable reallocation that preempts clients from over-target jobs
// via the same checkpoint machinery §3.4 migration uses. The allocation
// policies themselves live in jobsched.go and are shared verbatim with
// the live `gridsat serve` master, so a policy benchmarked here is the
// code that schedules a real deployment.

// runnerJob is one job's solving state inside the DES. It embeds the
// shared scheduler entity (identity, priority, lifecycle, timestamps) and
// adds the search bookkeeping the simulated master keeps per job.
type runnerJob struct {
	Job
	// assigned marks that the root subproblem has shipped; outstanding
	// counts live subproblems (assigned + backlogged + orphaned).
	assigned    bool
	outstanding int
	// backlog queues split requests from this job's busy clients;
	// subBacklog queues leftover cofactors and preempted checkpoints
	// (counted in outstanding) for the next idle client.
	backlog    []BacklogEntry
	subBacklog []backlogSub
	// orphans are checkpointed subproblems of crashed clients awaiting an
	// idle resource, each with its client-leave flight event so the
	// recovery event can name its cause.
	orphans []orphanEntry
	// prog mirrors the live master's per-job coverage estimator; seen
	// dedups this job's shared clauses (fingerprints are only meaningful
	// within one formula).
	prog ProgressTracker
	seen *clauseWindow
	// cancelAt > 0 schedules a cancellation (SimJob.CancelVSec).
	cancelAt float64
	status   solver.Status
	model    cnf.Assignment
	// verdictClient/verdictWorker locate the solver that decided the job
	// (0/0 for UNSAT by exhaustion), recorded on its verdict event.
	verdictClient int
	verdictWorker int
}

type orphanEntry struct {
	sub *solver.Subproblem
	ev  uint64
}

// verdict renders the job's outcome the way the /jobs API does.
func (j *runnerJob) verdict() string {
	switch {
	case j.State == JobCancelled:
		return "CANCELLED"
	case j.State != JobDone:
		return ""
	case j.status == solver.StatusSAT:
		return "SAT"
	case j.status == solver.StatusUNSAT:
		return "UNSAT"
	}
	return "UNKNOWN"
}

// newRunnerJob builds a job's DES state; submission bookkeeping happens
// in submitSimJob (multi) or RunDistributed (the implicit job 0).
func newRunnerJob(id int, name string, f *cnf.Formula, priority int) *runnerJob {
	if priority < 1 {
		priority = 1
	}
	return &runnerJob{
		Job:  Job{ID: id, Name: name, Priority: priority, Formula: f},
		seen: newClauseWindow(0),
	}
}

// jobOf resolves a client's owning job (never nil while the client has
// ever been assigned; job 0 always exists in single-job runs).
func (r *runner) jobOf(c *simClient) *runnerJob { return r.jobs[c.job] }

// submitSimJob admits a job into the simulated scheduler at its arrival
// time. Multi-mode only.
func (r *runner) submitSimJob(j *runnerJob) {
	if r.done {
		return
	}
	j.State = JobQueued
	j.SubmittedAt = r.sim.Now()
	r.jobs[j.ID] = j
	r.jobOrder = append(r.jobOrder, j.ID)
	r.emit(trace.FEvent{Kind: trace.FEvJobSubmit, Job: j.ID,
		N: int64(j.Priority), Detail: j.Name})
	if j.cancelAt > 0 {
		r.sim.At(j.cancelAt, func() { r.cancelSimJob(j) })
	}
	r.rebalance()
}

// cancelSimJob aborts an active job: its clients stop, its queues drop,
// and the freed capacity reallocates. Multi-mode only.
func (r *runner) cancelSimJob(j *runnerJob) {
	if r.done || !j.State.Active() {
		return
	}
	j.State = JobCancelled
	j.FinishedAt = r.sim.Now()
	j.outstanding = 0
	j.backlog = nil
	j.subBacklog = nil
	j.orphans = nil
	r.emit(trace.FEvent{Kind: trace.FEvJobCancel, Job: j.ID})
	if r.cfg.BundleDir != "" {
		r.writeSimBundle(fmt.Sprintf("job-%d-cancelled", j.ID))
	}
	r.releaseSimJob(j)
	r.sample(r.busyCount())
	if r.allJobsTerminal() {
		r.finish(OutcomeSolved, solver.StatusUnknown, nil)
		return
	}
	r.rebalance()
}

// finishSimJob records a job's verdict and releases everything it holds.
// Multi-mode only (single-job runs end the whole simulation instead).
func (r *runner) finishSimJob(j *runnerJob, st solver.Status, model cnf.Assignment, vc, vw int) {
	if !j.State.Active() {
		return
	}
	j.status = st
	j.model = model
	j.State = JobDone
	j.FinishedAt = r.sim.Now()
	j.outstanding = 0
	j.backlog = nil
	j.subBacklog = nil
	j.orphans = nil
	j.verdictClient, j.verdictWorker = vc, vw
	v := j.verdict()
	r.emit(trace.FEvent{Kind: trace.FEvVerdict, Job: j.ID, Client: vc, Worker: vw, Detail: v})
	r.emit(trace.FEvent{Kind: trace.FEvJobDone, Job: j.ID, Detail: v})
	if st == solver.StatusUnknown && r.cfg.BundleDir != "" {
		r.writeSimBundle(fmt.Sprintf("job-%d-failed", j.ID))
	}
	r.releaseSimJob(j)
	r.sample(r.busyCount())
	if r.allJobsTerminal() {
		r.finish(OutcomeSolved, solver.StatusUnknown, nil)
		return
	}
	r.rebalance()
}

// releaseSimJob drops a terminal job's in-flight transfers and stops its
// clients; their solvers retire into the run aggregate immediately (the
// DES has no in-flight solver to wait out, unlike the live master).
func (r *runner) releaseSimJob(j *runnerJob) {
	var pendIDs []int
	for splitID, g := range r.pending {
		if g.job == j.ID {
			pendIDs = append(pendIDs, splitID)
		}
	}
	sort.Ints(pendIDs)
	for _, splitID := range pendIDs {
		g := r.pending[splitID]
		for _, rid := range g.recipients {
			if g.resolved[rid] {
				continue
			}
			g.resolved[rid] = true
			if rec := r.clients[rid]; rec != nil {
				rec.reserved = false
			}
		}
		delete(r.pending, splitID)
	}
	for _, id := range r.order {
		c := r.clients[id]
		if c.job != j.ID {
			continue
		}
		c.reserved = false
		if c.busy {
			r.retire(c)
			c.busy = false
			c.splitAsked = false
			c.assigns = nil
		}
	}
}

// allJobsTerminal reports whether every submitted job reached a verdict
// or cancellation. Jobs still in cfg.Jobs but unarrived keep the run
// alive via their pending arrival events, not via this check.
func (r *runner) allJobsTerminal() bool {
	if len(r.jobOrder) < len(r.cfg.Jobs) {
		return false // arrivals still pending
	}
	for _, id := range r.jobOrder {
		if r.jobs[id].State.Active() {
			return false
		}
	}
	return true
}

// heldSim counts the clients a job currently holds (busy or reserved).
func (r *runner) heldSim(jobID int) int {
	n := 0
	for _, id := range r.order {
		c := r.clients[id]
		if c.job == jobID && (c.busy || c.reserved) {
			n++
		}
	}
	return n
}

// simJobDemand mirrors the live master's demand estimate: outstanding
// subproblems plus backlogged split requests at the strategy's fanout,
// with headroom for an unstarted root.
func (r *runner) simJobDemand(j *runnerJob) int {
	d := j.outstanding + len(j.backlog)*max(1, r.fanout)
	if !j.assigned {
		d++
	}
	if d < 1 {
		d = 1
	}
	return d
}

// capacity is how many more clients a job may take right now: unbounded
// in single-job mode, target minus held under the policy in multi mode.
func (r *runner) capacity(j *runnerJob) int {
	if !r.multi {
		return len(r.order) + 1
	}
	c := r.targets[j.ID] - r.heldSim(j.ID)
	if c < 0 {
		return 0
	}
	return c
}

// rebalance recomputes the malleable allocation and preempts clients
// from over-target jobs, newest assignment first (the least progress is
// lost). Freed and idle clients are then matched to under-target jobs'
// queues. Multi-mode only; single-job callers use serveBacklog directly.
func (r *runner) rebalance() {
	if r.done || !r.multi {
		return
	}
	var shares []SchedShare
	for _, id := range r.jobOrder {
		j := r.jobs[id]
		if !j.State.Active() {
			continue
		}
		shares = append(shares, SchedShare{JobID: j.ID, Priority: j.Priority,
			Demand: r.simJobDemand(j)})
	}
	r.targets = r.policy.Allocate(shares, len(r.order))
	for _, id := range r.jobOrder {
		j := r.jobs[id]
		if !j.State.Active() {
			continue
		}
		over := r.heldSim(j.ID) - r.targets[j.ID]
		if over > 0 {
			r.preemptSimClients(j, over)
		}
	}
	r.serveBacklog()
}

// preemptSimClients checkpoints up to n of a job's busy clients back to
// its sub-backlog — the §3.4 checkpoint machinery in scheduler service:
// the level-0 guiding path plus learned clauses travel to the master and
// wait, still counted outstanding, for the job's next client.
func (r *runner) preemptSimClients(j *runnerJob, n int) {
	var cands []*simClient
	for _, id := range r.order {
		c := r.clients[id]
		if c.job == j.ID && c.busy && !c.reserved && !c.migrating && c.slv != nil {
			cands = append(cands, c)
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].assignedAt != cands[b].assignedAt {
			return cands[a].assignedAt > cands[b].assignedAt
		}
		return cands[a].id > cands[b].id
	})
	for i := 0; i < n && i < len(cands); i++ {
		c := cands[i]
		cp := c.slv.Checkpoint(solver.HeavyCheckpoint, 10000)
		sub := &solver.Subproblem{NumVars: cp.NumVars, Assumptions: cp.Level0,
			Learnts: cp.Learnts, Depth: cp.Depth}
		r.retire(c)
		c.busy = false
		c.splitAsked = false
		r.serveAssigns(c) // release split assignments queued for the donor
		j.Preemptions++
		r.res.Preemptions++
		pe := r.emit(trace.FEvent{Kind: trace.FEvJobPreempt, Client: c.id, Job: j.ID})
		j.subBacklog = append(j.subBacklog, backlogSub{sub: sub, donor: c.id,
			issueEv: pe, job: j.ID, resume: true})
		r.xfer(c.host, r.master, subproblemBytes(sub))
		r.sample(r.busyCount())
	}
	if j.State == JobRunning && r.heldSim(j.ID) == 0 {
		j.State = JobPreempted
	}
}

// markSimStarted moves a job to running on its first (or resumed) client
// allocation, emitting the lifecycle event in multi mode only so
// single-job flight logs stay byte-identical.
func (r *runner) markSimStarted(j *runnerJob) {
	switch j.State {
	case JobQueued:
		j.State = JobRunning
		j.StartedAt = r.sim.Now()
		if r.multi {
			r.emit(trace.FEvent{Kind: trace.FEvJobStart, Job: j.ID})
		}
	case JobPreempted:
		j.State = JobRunning
	}
}

// jobExhausted folds "outstanding hit zero" into the job's UNSAT
// verdict: the whole search space was refuted with nothing lost. In
// single-job mode that ends the run. Reports whether the caller's job
// reached a verdict.
func (r *runner) jobExhausted(j *runnerJob) bool {
	if r.done || j == nil || !j.State.Active() || !j.assigned || j.outstanding != 0 {
		return false
	}
	if r.multi {
		r.finishSimJob(j, solver.StatusUNSAT, nil, 0, 0)
		return true
	}
	r.finish(OutcomeSolved, solver.StatusUNSAT, nil)
	return true
}

// schedOrder is the deterministic order jobs are offered idle clients:
// submission order — the policy's targets, not this order, decide
// fairness between concurrently running jobs.
func (r *runner) schedOrder() []int { return r.jobOrder }

// finishJobResults freezes per-job outcomes into the result (multi only).
func (r *runner) finishJobResults() {
	if !r.multi {
		return
	}
	firstSubmit, lastFinish := -1.0, 0.0
	for _, id := range r.jobOrder {
		j := r.jobs[id]
		r.res.Jobs = append(r.res.Jobs, r.simJobResult(j))
		if firstSubmit < 0 || j.SubmittedAt < firstSubmit {
			firstSubmit = j.SubmittedAt
		}
		if j.FinishedAt > lastFinish {
			lastFinish = j.FinishedAt
		}
	}
	if firstSubmit >= 0 && lastFinish > firstSubmit {
		r.res.MakespanVSec = lastFinish - firstSubmit
	}
}
