package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"gridsat/internal/obs/history"
	"gridsat/internal/trace"
)

func TestWriteBundleSections(t *testing.T) {
	dir := t.TempDir()
	events := make([]trace.FEvent, 0, 8)
	for i := 1; i <= 8; i++ {
		events = append(events, trace.FEvent{ID: uint64(i), Lamport: uint64(i), Kind: trace.FEvHeartbeat})
	}
	h := history.New(history.Config{IntervalSec: 1})
	h.Observe("cluster_coverage", 1, 0.25)
	h.Observe("cluster_coverage", 2, 0.25)
	spec := BundleSpec{
		Dir:     dir,
		Name:    "bundle-001-test",
		Reason:  "unit-test",
		TSec:    42,
		Config:  map[string]any{"sched": "fifo"},
		State:   map[string]any{"jobs": 1},
		Metrics: map[string]any{"counters": []any{}},
		History: h.Dump(),
		Alerts:  []Alert{{Rule: RuleProgressStall, Subject: "cluster", TSec: 40}},
		Events:  events,
	}
	path, err := WriteBundle(spec)
	if err != nil {
		t.Fatal(err)
	}
	// All five sections plus the manifest must exist.
	for _, f := range []string{
		"flight.jsonl", "pprof/heap.pprof", "metrics.json",
		"history.json", "state.json", "config.json", "MANIFEST.json",
	} {
		if _, err := os.Stat(filepath.Join(path, f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}
	// The manifest indexes the capture and reports no section errors.
	raw, err := os.ReadFile(filepath.Join(path, "MANIFEST.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man bundleManifest
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	if man.Reason != "unit-test" || man.Events != 8 || man.Alerts != 1 {
		t.Errorf("manifest = %+v", man)
	}
	if len(man.Errors) != 0 {
		t.Errorf("manifest reports section errors: %v", man.Errors)
	}
	// The flight section round-trips through the JSONL reader.
	fd, err := os.Open(filepath.Join(path, "flight.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	got, err := trace.ReadJSONL(fd)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 || got[0].Kind != trace.FEvHeartbeat {
		t.Errorf("flight tail round-trip: %d events", len(got))
	}
	// The history section preserves the sampled window.
	hraw, err := os.ReadFile(filepath.Join(path, "history.json"))
	if err != nil {
		t.Fatal(err)
	}
	var hout struct {
		Series []history.SeriesDump `json:"series"`
	}
	if err := json.Unmarshal(hraw, &hout); err != nil {
		t.Fatal(err)
	}
	if len(hout.Series) != 1 || hout.Series[0].Name != "cluster_coverage" {
		t.Errorf("history section = %+v", hout.Series)
	}
}

func TestWriteBundleEventTail(t *testing.T) {
	events := make([]trace.FEvent, bundleEventTail+500)
	for i := range events {
		events[i] = trace.FEvent{ID: uint64(i + 1), Lamport: uint64(i + 1), Kind: trace.FEvHeartbeat, N: int64(i)}
	}
	path, err := WriteBundle(BundleSpec{Dir: t.TempDir(), Name: "tail", Reason: "tail", Events: events})
	if err != nil {
		t.Fatal(err)
	}
	fd, err := os.Open(filepath.Join(path, "flight.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	got, err := trace.ReadJSONL(fd)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != bundleEventTail {
		t.Fatalf("tail kept %d events, want %d", len(got), bundleEventTail)
	}
	if got[len(got)-1].N != int64(len(events)-1) {
		t.Errorf("tail dropped the newest events: last N = %d", got[len(got)-1].N)
	}
}
