package core

import "testing"

func TestSplitDecisionMemoryTrigger(t *testing.T) {
	d := SplitDecision{MemBudgetBytes: 1000, MemPressureFraction: 0.8, TransferTime: 100, MinRunTime: 1}
	if ask, why := d.ShouldSplit(800, 0); !ask || why != WhyMemory {
		t.Fatalf("at 80%% budget: ask=%v why=%v", ask, why)
	}
	if ask, _ := d.ShouldSplit(799, 0); ask {
		t.Fatal("below threshold should not trigger")
	}
}

func TestSplitDecisionTimeoutTrigger(t *testing.T) {
	d := SplitDecision{MemBudgetBytes: 1 << 30, MemPressureFraction: 0.8, TransferTime: 50, MinRunTime: 1}
	if ask, _ := d.ShouldSplit(0, 99); ask {
		t.Fatal("below 2x transfer time should not trigger")
	}
	ask, why := d.ShouldSplit(0, 100)
	if !ask || why != WhyTimeout {
		t.Fatalf("at 2x transfer time: ask=%v why=%v", ask, why)
	}
}

func TestSplitDecisionMinRunTimeFloor(t *testing.T) {
	d := SplitDecision{MemBudgetBytes: 1 << 30, MemPressureFraction: 0.8, TransferTime: 0.001, MinRunTime: 10}
	if ask, _ := d.ShouldSplit(0, 5); ask {
		t.Fatal("floor ignored: instant transfers must not cause split storms")
	}
	if ask, _ := d.ShouldSplit(0, 10); !ask {
		t.Fatal("floor reached but no split")
	}
}

func TestSplitDecisionMemoryWinsTies(t *testing.T) {
	d := SplitDecision{MemBudgetBytes: 100, MemPressureFraction: 0.5, TransferTime: 1, MinRunTime: 0}
	if _, why := d.ShouldSplit(50, 100); why != WhyMemory {
		t.Fatalf("why = %v, want memory", why)
	}
}

func TestSplitDecisionNoBudget(t *testing.T) {
	d := SplitDecision{MemBudgetBytes: 0, MemPressureFraction: 0.8, TransferTime: 10, MinRunTime: 0}
	if ask, why := d.ShouldSplit(1<<40, 5); ask || why != WhyNone {
		t.Fatal("zero budget should disable the memory trigger")
	}
}

func TestPickSplitTarget(t *testing.T) {
	cands := []Candidate{
		{ID: 1, Rank: 5, MemBytes: 1000},
		{ID: 2, Rank: 9, MemBytes: 50}, // best rank but under memory floor
		{ID: 3, Rank: 7, MemBytes: 1000},
	}
	got, ok := PickSplitTarget(cands, 100)
	if !ok || got.ID != 3 {
		t.Fatalf("picked %+v, want ID 3", got)
	}
	if _, ok := PickSplitTarget(nil, 0); ok {
		t.Fatal("empty candidate list produced a target")
	}
	if _, ok := PickSplitTarget(cands, 1<<40); ok {
		t.Fatal("memory floor ignored")
	}
}

func TestPickSplitTargetTieBreak(t *testing.T) {
	cands := []Candidate{{ID: 9, Rank: 5, MemBytes: 10}, {ID: 2, Rank: 5, MemBytes: 10}}
	got, _ := PickSplitTarget(cands, 0)
	if got.ID != 2 {
		t.Fatalf("tie broke to %d, want lower ID 2", got.ID)
	}
}

func TestNextFromBacklog(t *testing.T) {
	if NextFromBacklog(nil) != -1 {
		t.Fatal("empty backlog")
	}
	backlog := []BacklogEntry{
		{ClientID: 1, AssignedAt: 50, RequestedAt: 1},
		{ClientID: 2, AssignedAt: 10, RequestedAt: 3}, // longest-running
		{ClientID: 3, AssignedAt: 10, RequestedAt: 2}, // tie: earlier request
	}
	if i := NextFromBacklog(backlog); backlog[i].ClientID != 3 {
		t.Fatalf("picked client %d, want 3", backlog[i].ClientID)
	}
}

func TestRankCandidates(t *testing.T) {
	in := []Candidate{{ID: 2, Rank: 1}, {ID: 1, Rank: 3}, {ID: 3, Rank: 3}}
	out := RankCandidates(in)
	if out[0].ID != 1 || out[1].ID != 3 || out[2].ID != 2 {
		t.Fatalf("order = %v", out)
	}
	if in[0].ID != 2 {
		t.Fatal("input mutated")
	}
}

func TestSplitWhyString(t *testing.T) {
	if WhyMemory.String() != "memory" || WhyTimeout.String() != "timeout" || WhyNone.String() != "none" {
		t.Error("SplitWhy strings wrong")
	}
}
