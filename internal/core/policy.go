// Package core implements GridSAT itself: the master–client orchestration
// the paper contributes on top of the Chaff-style engine (§3.3–3.4).
//
// The master owns resource management (ranking hosts by NWS-style
// forecasts), client management (registration, idle/busy tracking, the
// work backlog) and scheduling (choosing the best idle resource for each
// split, migration of long-running subproblems). Clients run the solver,
// monitor their own memory against the 60%-of-free-memory budget, request
// splits on predicted exhaustion or after the 2×-transfer-time timeout,
// transfer subproblems peer-to-peer (Figure 3), and share short learned
// clauses with every other client.
//
// The same decision policies drive two runtimes: the live runtime in this
// package (goroutines over comm.Transport — TCP or in-process) and the
// deterministic discrete-event runtime in runner.go used by the benchmark
// harness to reproduce the paper's tables on a single physical core.
package core

import "sort"

// SplitDecision captures the client-side split trigger policy (paper
// §3.3): request help when the clause database is predicted to outgrow
// the memory budget, or when the subproblem has run for twice the time it
// took to receive it ("a long running problem will continue to be a long
// running problem").
type SplitDecision struct {
	// MemBudgetBytes is the client's memory allowance (60% of free memory
	// in the paper).
	MemBudgetBytes int64
	// MemPressureFraction of the budget at which a split is requested;
	// requesting at 100% would be too late to transfer hundreds of MB.
	MemPressureFraction float64
	// TransferTime is how long the current subproblem took to receive.
	TransferTime float64
	// MinRunTime floors the timeout so trivially fast transfers do not
	// cause split storms (the ping-pong effect, §3.1).
	MinRunTime float64
}

// ShouldSplit evaluates the trigger given the solver's current estimated
// memory and how long the client has been running its subproblem.
// The bool reports whether to ask the master for a split; the reason
// distinguishes the paper's two triggers (memory wins ties).
func (d SplitDecision) ShouldSplit(memBytes int64, runTime float64) (bool, SplitWhy) {
	if d.MemBudgetBytes > 0 && float64(memBytes) >= d.MemPressureFraction*float64(d.MemBudgetBytes) {
		return true, WhyMemory
	}
	timeout := 2 * d.TransferTime
	if timeout < d.MinRunTime {
		timeout = d.MinRunTime
	}
	if runTime >= timeout {
		return true, WhyTimeout
	}
	return false, WhyNone
}

// SplitWhy is the trigger that fired.
type SplitWhy int

// Split triggers.
const (
	WhyNone SplitWhy = iota
	WhyMemory
	WhyTimeout
)

// String implements fmt.Stringer.
func (w SplitWhy) String() string {
	switch w {
	case WhyMemory:
		return "memory"
	case WhyTimeout:
		return "timeout"
	default:
		return "none"
	}
}

// Candidate describes an idle resource the scheduler can place work on.
type Candidate struct {
	ID   int
	Rank float64
	// MemBytes is forecast free memory; hosts under the minimum are
	// rejected outright (128 MB in the paper).
	MemBytes int64
}

// PickSplitTarget selects the highest-ranked idle candidate meeting the
// memory minimum (paper §3.3: "the master searches within the resource
// pool for the highest ranked idle resource"). Ties break on lower ID for
// determinism. Returns false when no candidate qualifies.
func PickSplitTarget(cands []Candidate, minMemBytes int64) (Candidate, bool) {
	best := -1
	for i, c := range cands {
		if c.MemBytes < minMemBytes {
			continue
		}
		if best < 0 || c.Rank > cands[best].Rank ||
			(c.Rank == cands[best].Rank && c.ID < cands[best].ID) {
			best = i
		}
	}
	if best < 0 {
		return Candidate{}, false
	}
	return cands[best], true
}

// BacklogEntry is a queued split request the master could not serve
// immediately because every resource was busy (paper §3.4).
type BacklogEntry struct {
	ClientID int
	// AssignedAt is when the requesting client started its current
	// subproblem; the master serves the longest-running client first,
	// "giving more resources to those parts of the search space that take
	// the longest".
	AssignedAt float64
	// RequestedAt orders ties deterministically.
	RequestedAt float64
}

// NextFromBacklog returns the index of the entry to serve next, or -1.
func NextFromBacklog(backlog []BacklogEntry) int {
	best := -1
	for i, e := range backlog {
		if best < 0 ||
			e.AssignedAt < backlog[best].AssignedAt ||
			(e.AssignedAt == backlog[best].AssignedAt && e.RequestedAt < backlog[best].RequestedAt) {
			best = i
		}
	}
	return best
}

// RankCandidates sorts candidates best-first with the deterministic
// tie-break, without mutating the input.
func RankCandidates(cands []Candidate) []Candidate {
	out := append([]Candidate(nil), cands...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank > out[j].Rank
		}
		return out[i].ID < out[j].ID
	})
	return out
}
