package core

import (
	"sync"
	"testing"
	"time"

	"gridsat/internal/brute"
	"gridsat/internal/cnf"
	"gridsat/internal/comm"
	"gridsat/internal/gen"
	"gridsat/internal/solver"
)

func quickJob(clients int) JobConfig {
	return JobConfig{
		Clients:        clients,
		ClientMemBytes: 64 << 20,
		ShareMaxLen:    10,
		Timeout:        60 * time.Second,
		MinRunTime:     5 * time.Millisecond, // split eagerly in tests
		SliceConflicts: 200,
	}
}

func TestJobSolveSAT(t *testing.T) {
	f := gen.RandomKSAT(40, 160, 3, 3)
	want, _ := brute.Solve(f, 0)
	res, err := Solve(f, quickJob(3))
	if err != nil {
		t.Fatal(err)
	}
	if (res.Status == solver.StatusSAT) != (want == brute.SAT) {
		t.Fatalf("got %v, brute says %v", res.Status, want)
	}
	if res.Status == solver.StatusSAT {
		if err := f.Verify(res.Model); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJobSolveUNSATWithSplits(t *testing.T) {
	// Pigeonhole(9): heavy enough that splits are reliably accepted while
	// the donor is still busy — php(8) can finish before parallelism is
	// ever observed, making the MaxClients assertion flaky.
	f := gen.Pigeonhole(9)
	res, err := Solve(f, quickJob(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.StatusUNSAT {
		t.Fatalf("got %v", res.Status)
	}
	if res.Splits == 0 {
		t.Error("eager split config produced no splits")
	}
	if res.MaxClients < 2 {
		t.Errorf("max clients = %d, expected parallelism", res.MaxClients)
	}
	if res.MaxClients > 4 {
		t.Errorf("max clients %d exceeds pool", res.MaxClients)
	}
}

func TestJobAgainstBruteMany(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		f := gen.RandomKSAT(12, 50, 3, seed)
		want, _ := brute.Solve(f, 0)
		res, err := Solve(f, quickJob(3))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if (res.Status == solver.StatusSAT) != (want == brute.SAT) {
			t.Fatalf("seed %d: got %v, brute %v", seed, res.Status, want)
		}
	}
}

func TestJobClauseSharingHappens(t *testing.T) {
	f := gen.Pigeonhole(8)
	res, err := Solve(f, quickJob(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.SharedClauses == 0 {
		t.Error("no clauses shared on a conflict-heavy instance")
	}
}

func TestJobTimeout(t *testing.T) {
	cfg := quickJob(2)
	cfg.Timeout = 150 * time.Millisecond
	res, err := Solve(gen.Pigeonhole(11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.StatusUnknown {
		t.Fatalf("got %v, want timeout", res.Status)
	}
}

func TestMasterRejectsLowMemoryClient(t *testing.T) {
	tr := comm.NewInprocTransport()
	f := cnf.NewFormula(2)
	f.Add(1, 2)
	m, err := NewMaster(MasterConfig{
		Transport:   tr,
		ListenAddr:  "m",
		Formula:     f,
		MinMemBytes: 128 << 20,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	go m.Run()
	_, err = NewClient(ClientConfig{
		Transport:    tr,
		MasterAddr:   "m",
		FreeMemBytes: 1 << 20, // far below the floor
	})
	if err == nil {
		t.Fatal("under-provisioned client registered successfully")
	}
}

func TestMasterNeedsFormulaAndTransport(t *testing.T) {
	if _, err := NewMaster(MasterConfig{Transport: comm.NewInprocTransport()}); err == nil {
		t.Fatal("master without formula accepted")
	}
	f := cnf.NewFormula(1)
	f.Add(1)
	if _, err := NewMaster(MasterConfig{Formula: f}); err == nil {
		t.Fatal("master without transport accepted")
	}
}

func TestTCPEndToEnd(t *testing.T) {
	f := gen.RandomKSAT(30, 126, 3, 7)
	want, _ := brute.Solve(f, 0)

	tr := comm.TCPTransport{}
	m, err := NewMaster(MasterConfig{
		Transport:       tr,
		ListenAddr:      "127.0.0.1:0",
		Formula:         f,
		Timeout:         60 * time.Second,
		ExpectedClients: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		res Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		r, err := m.Run()
		done <- out{r, err}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		cl, err := NewClient(ClientConfig{
			Transport:      tr,
			MasterAddr:     m.Addr(),
			ListenAddr:     "127.0.0.1:0",
			FreeMemBytes:   64 << 20,
			MinRunTime:     5 * time.Millisecond,
			SliceConflicts: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = cl.Run()
		}()
	}
	o := <-done
	wg.Wait()
	if o.err != nil {
		t.Fatal(o.err)
	}
	if (o.res.Status == solver.StatusSAT) != (want == brute.SAT) {
		t.Fatalf("TCP run: got %v, brute %v", o.res.Status, want)
	}
}

// TestFigure3SplitProtocol captures the live message flow and checks the
// paper's five-message split exchange appears: (1) split-request from the
// donor to the master, (2) split-assign from the master to the donor,
// (3) the split-payload sent peer-to-peer (not through the master),
// (4)+(5) split-done notifications from both clients to the master.
func TestFigure3SplitProtocol(t *testing.T) {
	rec := newRecordingTransport()
	f := gen.Pigeonhole(8) // conflict-heavy: guaranteed to run long enough

	m, err := NewMaster(MasterConfig{
		Transport:       rec,
		ListenAddr:      "master",
		Formula:         f,
		Timeout:         60 * time.Second,
		ExpectedClients: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Result, 1)
	go func() {
		r, _ := m.Run()
		done <- r
	}()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		cl, err := NewClient(ClientConfig{
			Transport:      rec,
			MasterAddr:     "master",
			FreeMemBytes:   64 << 20,
			MinRunTime:     time.Millisecond,
			SliceConflicts: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = cl.Run()
		}()
	}
	res := <-done
	wg.Wait()
	if res.Status != solver.StatusUNSAT {
		t.Fatalf("run result %v", res.Status)
	}

	trace := rec.snapshot()
	count := map[string]int{}
	for _, e := range trace {
		count[e.kind]++
	}
	for _, k := range []string{"split-request", "split-assign", "split-payload", "split-done"} {
		if count[k] == 0 {
			t.Fatalf("message %q never observed; trace kinds: %v", k, count)
		}
	}
	// The five-message exchange must appear in order (1) request →
	// (2) assign → (3) P2P payload → (4)/(5) done. The master's initial
	// problem assignment is also a split-payload, so scan for the
	// subsequence starting from the first split-request.
	want := []string{"split-request", "split-assign", "split-payload", "split-done", "split-done"}
	wi := 0
	for _, e := range trace {
		if wi < len(want) && e.kind == want[wi] {
			wi++
		}
	}
	if wi != len(want) {
		kinds := make([]string, len(trace))
		for i, e := range trace {
			kinds[i] = e.kind
		}
		t.Errorf("five-message exchange incomplete (matched %d of %d) in trace %v", wi, len(want), kinds)
	}
	// Message (3) must be peer-to-peer: after the initial assignment, no
	// client-sent payload targets the master.
	for _, e := range trace {
		if e.kind == "split-payload" && e.dst == "master" && e.srcIsClient {
			t.Error("split payload routed through the master; must be P2P")
		}
	}
}

// recordingTransport wraps the in-process transport, logging every Send.
type recordingTransport struct {
	inner *comm.InprocTransport
	mu    sync.Mutex
	log   []traceEntry
}

type traceEntry struct {
	kind        string
	dst         string
	srcIsClient bool
}

func newRecordingTransport() *recordingTransport {
	return &recordingTransport{inner: comm.NewInprocTransport()}
}

func (r *recordingTransport) Listen(addr string) (comm.Listener, error) {
	l, err := r.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &recordingListener{Listener: l, tr: r}, nil
}

// recordingListener wraps accepted conns so replies (e.g. the master's
// split-assign) are traced too.
type recordingListener struct {
	comm.Listener
	tr *recordingTransport
}

func (l *recordingListener) Accept() (comm.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &recordingConn{Conn: c, tr: l.tr, dst: "peer-of-" + l.Addr(), srcIsListener: true}, nil
}

func (r *recordingTransport) Dial(addr string) (comm.Conn, error) {
	c, err := r.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &recordingConn{Conn: c, tr: r, dst: addr}, nil
}

type recordingConn struct {
	comm.Conn
	tr            *recordingTransport
	dst           string
	srcIsListener bool
}

func (c *recordingConn) Send(m comm.Message) error {
	c.tr.mu.Lock()
	c.tr.log = append(c.tr.log, traceEntry{kind: m.Kind(), dst: c.dst, srcIsClient: !c.srcIsListener})
	c.tr.mu.Unlock()
	return c.Conn.Send(m)
}

func (r *recordingTransport) snapshot() []traceEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]traceEntry(nil), r.log...)
}

func TestMasterStatusSnapshot(t *testing.T) {
	tr := comm.NewInprocTransport()
	f := gen.Pigeonhole(8) // light enough to finish under -race slowdown
	m, err := NewMaster(MasterConfig{
		Transport: tr, ListenAddr: "status-master", Formula: f,
		Timeout: 5 * time.Minute, ExpectedClients: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Result, 1)
	go func() {
		r, _ := m.Run()
		done <- r
	}()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		cl, err := NewClient(ClientConfig{
			Transport: tr, MasterAddr: "status-master",
			FreeMemBytes: 64 << 20, MinRunTime: 5 * time.Millisecond,
			SliceConflicts: 200, HeartbeatEvery: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = cl.Run()
		}()
	}
	// Poll until work is visibly in flight.
	sawBusy := false
	for i := 0; i < 200; i++ {
		snap := m.Status()
		if snap.Busy > 0 && snap.Registered == 3 {
			sawBusy = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	res := <-done
	wg.Wait()
	if !sawBusy {
		t.Error("status snapshots never showed a busy client")
	}
	if res.Status != solver.StatusUNSAT {
		t.Fatalf("run result %v", res.Status)
	}
}

// TestJobSolveDilemmaUNSAT drives the live master/client multi-way path:
// a dilemma job must reserve several recipients per split request, deliver
// the cofactor batch, and still reach the right verdict.
func TestJobSolveDilemmaUNSAT(t *testing.T) {
	for _, strategy := range []string{"dilemma", "dilemma-veto"} {
		t.Run(strategy, func(t *testing.T) {
			cfg := quickJob(6)
			cfg.SplitStrategy = strategy
			res, err := Solve(gen.Pigeonhole(9), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != solver.StatusUNSAT {
				t.Fatalf("got %v", res.Status)
			}
			if res.Splits == 0 {
				t.Error("eager split config produced no splits")
			}
			if res.MaxClients < 2 {
				t.Errorf("max clients = %d, expected parallelism", res.MaxClients)
			}
		})
	}
}

// TestJobDilemmaAgainstBrute sweeps SAT and UNSAT random instances through
// a live dilemma job.
func TestJobDilemmaAgainstBrute(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		f := gen.RandomKSAT(12, 50, 3, seed)
		want, _ := brute.Solve(f, 0)
		cfg := quickJob(3)
		cfg.SplitStrategy = "dilemma"
		res, err := Solve(f, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if (res.Status == solver.StatusSAT) != (want == brute.SAT) {
			t.Fatalf("seed %d: got %v, brute %v", seed, res.Status, want)
		}
		if res.Status == solver.StatusSAT {
			if err := f.Verify(res.Model); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

// TestJobUnknownStrategyRejected: a bad -split-strategy value must fail
// fast at construction, not at the first split.
func TestJobUnknownStrategyRejected(t *testing.T) {
	cfg := quickJob(2)
	cfg.SplitStrategy = "bogus"
	if _, err := Solve(gen.Pigeonhole(6), cfg); err == nil {
		t.Fatal("unknown split strategy accepted")
	}
}
