package core

import (
	"sort"
	"sync"
	"time"

	"gridsat/internal/cnf"
)

// clauseWindow is a bounded duplicate-suppression set over clause
// fingerprints. It keeps two epochs of at most cap entries each: inserts
// go to the current epoch, and when it fills, the previous epoch is
// dropped and the epochs rotate. Membership checks consult both, so a
// fingerprint is remembered for at least cap and at most 2*cap distinct
// inserts — bounded memory under arbitrarily long runs, unlike the
// unbounded seen-map it replaces. A forgotten fingerprint only costs one
// redundant best-effort share.
type clauseWindow struct {
	cap       int
	cur, prev map[uint64]struct{}
}

func newClauseWindow(capacity int) *clauseWindow {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &clauseWindow{
		cap: capacity,
		cur: make(map[uint64]struct{}, capacity),
	}
}

// Contains reports whether fp is remembered.
func (w *clauseWindow) Contains(fp uint64) bool {
	if _, ok := w.cur[fp]; ok {
		return true
	}
	_, ok := w.prev[fp]
	return ok
}

// Add inserts fp and reports whether it was fresh (not remembered).
func (w *clauseWindow) Add(fp uint64) bool {
	if w.Contains(fp) {
		return false
	}
	if len(w.cur) >= w.cap {
		w.prev = w.cur
		w.cur = make(map[uint64]struct{}, w.cap)
	}
	w.cur[fp] = struct{}{}
	return true
}

// Len returns the number of remembered fingerprints (≤ 2*cap).
func (w *clauseWindow) Len() int { return len(w.cur) + len(w.prev) }

// pendingShare is one clause queued for sharing with its learn-time LBD
// (glue); the pending batch is ranked by (LBD, length) ascending so
// overflow drops the highest-glue — least valuable — clause first.
type pendingShare struct {
	c   cnf.Clause
	lbd int
}

// shareAggregator is a client's sender-side batching stage between the
// solver's OnLearn callback and the master connection. It coalesces
// learned clauses into batches flushed by count or by interval, filters
// clauses this client already saw arrive from peers (re-exporting an
// imported clause would echo it around the cluster), and keeps the
// pending batch sorted by (LBD, length) best-first so that when the batch
// overflows, the highest-glue longest — least valuable — clauses are the
// ones dropped.
//
// Learn is called from the solver goroutine mid-slice; NoteReceived and
// the flush methods run on the client's control loop. All state is
// guarded by one mutex; every operation is O(len) or better, so the
// solver never blocks long.
type shareAggregator struct {
	mu         sync.Mutex
	pending    []pendingShare // sorted by (LBD, length), best first
	pendingMax int
	flushCount int
	flushEvery time.Duration
	lastFlush  time.Time
	window     *clauseWindow

	dedupHits int64 // clauses suppressed as already seen
	overflow  int64 // clauses dropped from a full pending batch
}

func newShareAggregator(flushCount int, flushEvery time.Duration, windowCap, pendingMax int) *shareAggregator {
	if flushCount <= 0 {
		flushCount = 16
	}
	if flushEvery <= 0 {
		flushEvery = 100 * time.Millisecond
	}
	if pendingMax < flushCount {
		pendingMax = 64 * flushCount
	}
	return &shareAggregator{
		pendingMax: pendingMax,
		flushCount: flushCount,
		flushEvery: flushEvery,
		lastFlush:  time.Now(),
		window:     newClauseWindow(windowCap),
	}
}

// shareKey ranks a pending clause for the batch order: LBD first (0 means
// "unknown", which ranks last), length within the same glue.
func shareKey(p pendingShare) uint64 {
	lbd := p.lbd
	if lbd <= 0 {
		lbd = 1 << 20
	}
	return uint64(lbd)<<32 | uint64(len(p.c))
}

// Learn offers a freshly learned clause for sharing, with the LBD (glue)
// the solver recorded at learn time. The clause must be safe to retain
// (OnLearn passes a fresh copy). Clauses already in the window — learned
// before, or received from a peer — are suppressed.
func (a *shareAggregator) Learn(c cnf.Clause, lbd int) {
	// Normalize up front: the wire codec's canonical-form fast path then
	// skips its clone-and-sort on encode, moving that cost here to the
	// producer side, off the flush/broadcast path. Tautologies are never
	// worth shipping.
	c, taut := c.Normalize()
	if taut {
		return
	}
	fp := c.Fingerprint()
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.window.Add(fp) {
		a.dedupHits++
		return
	}
	// Insert keeping the pending batch ranked best-first by (LBD, length).
	p := pendingShare{c: c, lbd: lbd}
	i := sort.Search(len(a.pending), func(i int) bool { return shareKey(a.pending[i]) > shareKey(p) })
	a.pending = append(a.pending, pendingShare{})
	copy(a.pending[i+1:], a.pending[i:])
	a.pending[i] = p
	if len(a.pending) > a.pendingMax {
		// Drop the worst-ranked pending clause — the tail of the batch.
		a.pending[len(a.pending)-1] = pendingShare{}
		a.pending = a.pending[:len(a.pending)-1]
		a.overflow++
	}
}

// NoteReceived records clauses that arrived from peers so this client
// never re-exports them, and prunes any that are still pending.
func (a *shareAggregator) NoteReceived(cs []cnf.Clause) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, c := range cs {
		a.window.Add(c.Fingerprint())
	}
	if len(a.pending) == 0 {
		return
	}
	recv := make(map[uint64]struct{}, len(cs))
	for _, c := range cs {
		recv[c.Fingerprint()] = struct{}{}
	}
	kept := a.pending[:0]
	for _, p := range a.pending {
		if _, dup := recv[p.c.Fingerprint()]; dup {
			a.dedupHits++
			continue
		}
		kept = append(kept, p)
	}
	for i := len(kept); i < len(a.pending); i++ {
		a.pending[i] = pendingShare{}
	}
	a.pending = kept
}

// TakeBatch returns the pending batch (best-ranked clause first) if the
// flush policy says it is time: the batch reached flushCount, or
// flushEvery has elapsed since the last flush with anything pending.
// Otherwise it returns nil.
func (a *shareAggregator) TakeBatch(now time.Time) []cnf.Clause {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.pending) == 0 {
		return nil
	}
	if len(a.pending) < a.flushCount && now.Sub(a.lastFlush) < a.flushEvery {
		return nil
	}
	return a.takeLocked(now)
}

// Drain returns whatever is pending regardless of policy — used when the
// client finishes a subproblem so nothing learned is lost.
func (a *shareAggregator) Drain() []cnf.Clause {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.pending) == 0 {
		return nil
	}
	return a.takeLocked(time.Now())
}

func (a *shareAggregator) takeLocked(now time.Time) []cnf.Clause {
	out := make([]cnf.Clause, len(a.pending))
	for i, p := range a.pending {
		out[i] = p.c
	}
	a.pending = nil
	a.lastFlush = now
	return out
}

// DedupHits returns the number of clauses suppressed by the receive
// window (fed to gridsat_client_share_dedup_total).
func (a *shareAggregator) DedupHits() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dedupHits
}

// Overflow returns the number of clauses dropped from a full batch.
func (a *shareAggregator) Overflow() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.overflow
}
