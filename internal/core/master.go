package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"gridsat/internal/cnf"
	"gridsat/internal/comm"
	"gridsat/internal/obs"
	"gridsat/internal/obs/history"
	"gridsat/internal/solver"
	"gridsat/internal/trace"
)

// MasterConfig configures a live GridSAT master.
type MasterConfig struct {
	Transport comm.Transport
	// ListenAddr is where clients register ("" lets the transport choose).
	ListenAddr string
	// Formula is the problem to solve.
	Formula *cnf.Formula
	// MinMemBytes rejects clients below this free-memory floor
	// (128 MB in the paper; tests use small values).
	MinMemBytes int64
	// Timeout aborts the run without an answer (the paper's 6000 s /
	// 12000 s overall time outs). Zero means no timeout.
	Timeout time.Duration
	// ExpectedClients, when positive, makes Run wait for that many
	// registrations before assigning the problem, which keeps small test
	// topologies deterministic. Zero assigns to the first registrant.
	ExpectedClients int
	// Metrics receives the master's counters, gauges, and histograms;
	// nil allocates a private registry (reachable via Metrics()).
	Metrics *obs.Registry
	// Logger receives structured master events; nil discards them.
	Logger *obs.Logger
	// MetricsAddr, when non-empty, serves live HTTP introspection on
	// that address (":0" picks a port — see MetricsAddr()): /metrics is
	// Prometheus text, /status is the JSON StatusSnapshot with
	// per-client aggregates, and /debug/pprof is the Go profiler.
	MetricsAddr string
	// ShareWindow caps the master's clause duplicate-suppression window
	// (fingerprints per epoch; total memory is bounded at twice this).
	// Zero uses a default sized for long runs.
	ShareWindow int
	// Flight, when non-nil, records the master's control-plane events
	// (joins, splits, relays, verdict) as a causal flight log. In-process
	// jobs share one recorder between master and clients, so the Parent
	// IDs carried in traced messages resolve within the same log; the
	// introspection server additionally exposes /trace, /trace.json (Chrome
	// trace-event format) and /tree (split lineage).
	Flight *trace.Flight
	// CommMetrics, when set, lets /status report wire-codec counters
	// (gob-fallback frames) alongside the pool view.
	CommMetrics *comm.Metrics
	// SplitStrategy names the split engine clients run ("first-decision",
	// "dilemma", "dilemma-veto"; "" = first-decision). The master only uses
	// its fanout: a 2^k dilemma strategy can hand cofactors to up to 2^k-1
	// idle peers per split, so that many recipients are reserved per
	// assignment when available.
	SplitStrategy string
	// Serve turns the master into a long-lived multi-job scheduling
	// service: Formula becomes optional, jobs arrive through Submit (or the
	// HTTP API layered on top — see Service), clients are reassigned
	// between concurrently running jobs under SchedPolicy (malleable
	// allocation, with checkpoint/preemption), and Run exits only on
	// Shutdown, a timeout, or a fatal error. Without Serve the master is
	// the classic single-job runtime, bit-identical to its pre-scheduler
	// behavior.
	Serve bool
	// SchedPolicy names the serve-mode allocation policy: "fifo" (default),
	// "fair-share" or "priority". See ParseSchedPolicy.
	SchedPolicy string
	// Admission bounds what the serve-mode queue accepts (active-job cap
	// and formula memory budget); the zero value derives the cap from the
	// registered client count.
	Admission Admission
	// RebalancePeriod is how often serve mode reviews the allocation and
	// preempts over-allocated jobs (0 = 250ms).
	RebalancePeriod time.Duration
	// ExtraEndpoints adds handlers to the introspection server (the serve
	// API installs its /jobs routes this way). Ignored without MetricsAddr.
	ExtraEndpoints []obs.Endpoint
	// HistoryPeriod is the time-series sampler cadence: every period the
	// master folds the registry plus per-job/per-client series into the
	// history store (GET /history) and feeds the anomaly watchdog.
	// 0 = 1s; negative disables sampling (and with it the watchdog).
	HistoryPeriod time.Duration
	// Watchdog overrides the anomaly-rule thresholds (see
	// DefaultWatchdogConfig, which applies when nil — the watchdog is on
	// whenever the sampler is).
	Watchdog *WatchdogConfig
	// BundleDir, when non-empty, enables postmortem black-box bundles:
	// on job failure/cancellation, a fired watchdog rule, or POST
	// /debug/bundle, a self-contained diagnosis directory is written
	// under it (see WriteBundle).
	BundleDir string
	// BundleCPUProfile is the CPU-profile capture length inside a bundle
	// (0 = 200ms; negative skips the CPU capture, heap is always taken).
	BundleCPUProfile time.Duration
}

// Result is the outcome of a distributed run.
type Result struct {
	Status solver.Status
	Model  cnf.Assignment
	Wall   time.Duration
	// MaxClients is the peak number of simultaneously busy clients —
	// the last column of the paper's Table 1.
	MaxClients int
	// Splits counts completed subproblem transfers.
	Splits int
	// SharedClauses counts clauses the master fanned out.
	SharedClauses int
	// Threads is the widest in-host portfolio observed across the run's
	// clients (1 when every client ran single-threaded).
	Threads int
	// Clients holds the end-of-run per-client aggregates built from the
	// heartbeat stream, sorted by ID (see ClientStatus).
	Clients []ClientStatus
	// Comm is the wire-traffic summary, filled by runners that instrument
	// their transport (Solve, cmd/gridsat); zero when uninstrumented.
	Comm comm.Totals
	// Latency decomposes the run's lifecycle SLOs (single-job runs only;
	// serve-mode jobs carry theirs in their JobSnapshot).
	Latency *JobLatency
}

// JobLatency is the lifecycle SLO decomposition of one job, in the
// owning runtime's clock seconds.
type JobLatency struct {
	// QueueWaitSec is submission to first client allocation;
	// FirstAssignSec is submission to the root subproblem going out.
	QueueWaitSec   float64 `json:"queue_wait_sec"`
	FirstAssignSec float64 `json:"first_assign_sec"`
	// SolveSec is start to verdict; TurnaroundSec is end to end.
	SolveSec      float64 `json:"solve_sec"`
	TurnaroundSec float64 `json:"turnaround_sec"`
}

// jobLatency derives the SLO decomposition from a job's timestamps.
func jobLatency(j *Job) *JobLatency {
	l := &JobLatency{}
	if j.StartedAt > 0 {
		l.QueueWaitSec = j.StartedAt - j.SubmittedAt
	}
	if j.FirstAssignAt > 0 {
		l.FirstAssignSec = j.FirstAssignAt - j.SubmittedAt
	}
	if j.FinishedAt > 0 {
		if j.StartedAt > 0 {
			l.SolveSec = j.FinishedAt - j.StartedAt
		}
		l.TurnaroundSec = j.FinishedAt - j.SubmittedAt
	}
	return l
}

// ClientStatus is one client's view in a StatusSnapshot or final Result:
// identity, current state, and solver-stat totals aggregated from the
// heartbeat deltas.
type ClientStatus struct {
	ID       int    `json:"id"`
	Host     string `json:"host,omitempty"`
	Busy     bool   `json:"busy"`
	Reserved bool   `json:"reserved"`
	// MemBytes and DBLearnts are the latest reported gauges.
	MemBytes  int64 `json:"mem_bytes"`
	DBLearnts int   `json:"db_learnts"`
	// Depth is the guiding-path depth of the client's current subproblem.
	Depth int `json:"depth"`
	// Counter totals summed from StatusReport deltas.
	Decisions    int64 `json:"decisions"`
	Conflicts    int64 `json:"conflicts"`
	Propagations int64 `json:"propagations"`
	Implications int64 `json:"implications"`
	Learned      int64 `json:"learned"`
	// ReclaimedBytes totals the bytes the client's clause-arena GC has
	// returned (memory-pressure shedding + compaction).
	ReclaimedBytes int64 `json:"reclaimed_bytes"`
	// Import-usefulness totals (see comm.SolverDeltas).
	Imported             int64 `json:"imported"`
	ImportedUseful       int64 `json:"imported_useful"`
	ImportedImplications int64 `json:"imported_implications"`
	ImportedResolutions  int64 `json:"imported_resolutions"`
	// Workers is the client's latest per-worker portfolio breakdown
	// (absent for single-threaded clients).
	Workers []comm.WorkerReport `json:"workers,omitempty"`
}

type masterClient struct {
	id           int
	conn         comm.Conn
	out          chan comm.Message
	addr         string
	hostName     string
	speed        float64
	memBytes     int64
	busy         bool
	reserved     bool // chosen as split recipient; payload in flight
	assignedAt   time.Time
	pendingSplit bool // has an unserved split request
	// job is the job this client is (or was last) working for; 0 is the
	// implicit single job of a non-serve master, so every legacy code path
	// reads and writes job 0 without knowing jobs exist.
	job int
	// preempting marks a Preempt in flight: the client stays busy (its
	// subproblem is live until the checkpoint arrives) but must not be
	// preempted again or offered new work.
	preempting bool
	// stopSeq numbers this client's Preempt/StopWork sends. The client
	// echoes it in Preempted, letting the master drop acks from preempts
	// that a racing verdict already beat — the client may have been
	// reassigned by the time a stale ack lands, and honoring it would
	// wrongly free a busy client.
	stopSeq int
	// sentBase records which jobs' base formulas this client has cached, so
	// the scheduler sends each BaseProblem at most once per client.
	sentBase map[int]bool
	// splitReqEv is the flight-log ID of the client's pending split
	// request, the causal parent of the split-issue it produces.
	splitReqEv uint64

	// Live cluster view: totals summed from heartbeat deltas plus the
	// latest gauges, mirrored into per-client registry series.
	agg       comm.SolverDeltas
	dbLearnts int
	gauges    *clientGauges
	// depth is the guiding-path depth of the client's current subproblem
	// (latest heartbeat gauge).
	depth int
	// confRate is the EWMA conflict throughput from heartbeat deltas;
	// lastHBSec anchors the next interval.
	confRate  float64
	haveRate  bool
	lastHBSec float64
	// workers is the latest per-worker portfolio breakdown from the
	// client's heartbeat (nil for single-threaded clients).
	workers []comm.WorkerReport
}

// clientGauges are the per-client registry series behind /metrics.
type clientGauges struct {
	mem, learnts, busy, depth                           *obs.Gauge
	decisions, conflicts, propagations, lrnd, reclaimed *obs.Counter
	imported, importedUseful                            *obs.Counter
}

func newClientGauges(reg *obs.Registry, id int) *clientGauges {
	l := obs.L("client", fmt.Sprintf("%d", id))
	return &clientGauges{
		mem:            reg.Gauge("gridsat_client_mem_bytes", "latest reported client memory use", l),
		learnts:        reg.Gauge("gridsat_client_learnts", "latest reported learned-clause DB size", l),
		busy:           reg.Gauge("gridsat_client_busy", "1 while the client holds a subproblem", l),
		depth:          reg.Gauge("gridsat_client_path_depth", "guiding-path depth of the current subproblem", l),
		decisions:      reg.Counter("gridsat_client_decisions_total", "client decisions (heartbeat-aggregated)", l),
		conflicts:      reg.Counter("gridsat_client_conflicts_total", "client conflicts (heartbeat-aggregated)", l),
		propagations:   reg.Counter("gridsat_client_propagations_total", "client propagations (heartbeat-aggregated)", l),
		lrnd:           reg.Counter("gridsat_client_learned_total", "client learned clauses (heartbeat-aggregated)", l),
		reclaimed:      reg.Counter("gridsat_client_arena_reclaimed_bytes_total", "client clause-arena bytes reclaimed (heartbeat-aggregated)", l),
		imported:       reg.Counter("gridsat_client_imported_total", "peer clauses merged (heartbeat-aggregated)", l),
		importedUseful: reg.Counter("gridsat_client_imported_useful_total", "distinct imported clauses used at least once (heartbeat-aggregated)", l),
	}
}

// splitGroup is one in-flight transfer: the donor splits and ships one
// cofactor to each reserved recipient. A first-decision split reserves one
// recipient; a 2^k dilemma split reserves up to 2^k-1.
type splitGroup struct {
	donor int
	// job is the job the donor was splitting for; recipients join it.
	job int
	// recipients are the reserved peers in assignment order; settled marks
	// those whose leg has concluded (accepted, failed, or released unused).
	recipients []int
	settled    map[int]bool
	// donorDone is set once the donor's SplitDone arrived; used is how many
	// recipients (a prefix of the assignment order) it actually served.
	donorDone  bool
	used       int
	assignedAt time.Time
	// issueEv is the split-issue flight event, parent of the accept/fail.
	issueEv uint64
}

// settledCount returns how many recipient legs have concluded.
func (g *splitGroup) settledCount() int { return len(g.settled) }

// done reports whether the group can be forgotten: the donor reported and
// every recipient leg concluded.
func (g *splitGroup) done() bool {
	return g.donorDone && g.settledCount() == len(g.recipients)
}

// backlogSub is one leftover cofactor from an over-producing split, queued
// until a client goes idle. It keeps its origin so the flight log's accept
// event attaches the eventual recipient under the right split.
type backlogSub struct {
	sub     *solver.Subproblem
	splitID int
	donor   int
	issueEv uint64
	// job owns the queued subproblem (0 for the implicit single job).
	job int
	// resume marks a preempted subproblem: donor is then the client it was
	// checkpointed from and issueEv its job-preempt flight event, so the
	// eventual assignment emits the migrate→resume chain instead of a
	// split-accept.
	resume bool
}

type masterEvent struct {
	clientID int
	msg      comm.Message
	err      error
	conn     comm.Conn // set for new connections
	// status, when non-nil, requests a StatusSnapshot instead of carrying
	// a protocol message.
	status chan<- StatusSnapshot
	// progress, when non-nil, requests a ProgressSnapshot the same way.
	progress chan<- ProgressSnapshot
	// apply, when non-nil, runs a scheduler request (submit, cancel, job
	// queries, shutdown) on the event loop; its return value ends Run when
	// true. The closure owns its own reply channel.
	apply func() bool
}

// masterJob is one job's solving state at the master: the Job identity
// plus all the bookkeeping that used to be woven through the master as
// singletons — split backlog, leftover cofactors, outstanding-work count,
// coverage estimator, clause-dedup window and verdict. A non-serve master
// has exactly one, the implicit job 0.
type masterJob struct {
	*Job
	// backlog queues unserved split requests from this job's clients;
	// subBacklog queues its leftover cofactors and preempted checkpoints.
	backlog    []BacklogEntry
	subBacklog []backlogSub
	// assigned is set once the root subproblem was handed out; outstanding
	// counts the job's live subproblems (busy clients + in-flight
	// transfers + queued cofactors).
	assigned    bool
	outstanding int
	// status and model are the job's verdict (StatusUnknown while running).
	status solver.Status
	model  cnf.Assignment
	// seenShared suppresses re-broadcast of this job's already-fanned-out
	// clauses (clauses are sound only within their job's formula).
	seenShared *clauseWindow
	// prog is the job's coverage estimator; agg sums its clients'
	// heartbeat deltas (churn-proof: survives client departures).
	prog ProgressTracker
	agg  comm.SolverDeltas
	// splits and shared are this job's shares of the cluster counters.
	splits int
	shared int
}

// Master coordinates a live GridSAT run. Create with NewMaster, then call
// Run, which blocks until the problem is decided, the timeout expires, or
// an unrecoverable error occurs. In serve mode (MasterConfig.Serve) Run
// instead hosts a multi-job scheduling service until Shutdown.
type Master struct {
	cfg         MasterConfig
	listener    comm.Listener
	events      chan masterEvent
	clients     map[int]*masterClient
	nextID      int
	nextSplitID int
	// fanout is the per-split recipient budget of the configured strategy
	// (1 for first-decision, 2^k-1 for a 2^k dilemma).
	fanout int
	// jobs holds every job by ID (terminal ones included, so results stay
	// queryable); jobOrder is submission order. A non-serve master has the
	// single implicit job 0.
	jobs     map[int]*masterJob
	jobOrder []int
	// nextJobID issues serve-mode job IDs, starting at 1 so job 0 stays
	// the single-job sentinel everywhere (flight logs, wire tags).
	nextJobID int
	// serve, policy and admission are the scheduling service knobs
	// (see MasterConfig.Serve).
	serve     bool
	policy    SchedPolicy
	admission Admission
	// pendingSplits tracks in-flight subproblem transfers by token.
	pendingSplits map[int]*splitGroup
	// pendingAssigns tracks backlog cofactors in flight to a recipient, by
	// recipient ID, until its SplitDone settles (or requeues) them.
	pendingAssigns map[int]backlogSub
	// sharedDropped counts best-effort ShareClauses messages discarded
	// because a client's outbound queue was full. Event-loop only.
	sharedDropped int64
	result        Result
	trace         []string // debug event log for tests
	started       time.Time
	// clusterAgg sums every heartbeat delta ever received, independent of
	// the clients map, so totals survive client churn (a departed client's
	// contribution is never lost).
	clusterAgg comm.SolverDeltas

	reg      *obs.Registry
	log      *obs.Logger
	httpSrv  *http.Server
	httpAddr string
	met      masterMetrics
	flight   *trace.Flight
	// inTI is the trace metadata of the message currently being handled
	// (zero for untraced messages). Event-loop only.
	inTI comm.TraceInfo

	// hist is the time-series store behind GET /history (mutex-guarded:
	// the event loop samples, HTTP reads). wd is the anomaly watchdog;
	// its window and alert feed are event-loop only (read via apply).
	hist *history.Store
	wd   *watchdog
	// bundleSeq numbers postmortem bundles so their directory names are
	// unique and deterministic. Event-loop only.
	bundleSeq int
	// draining flips when Shutdown is requested; POST /debug/bundle
	// answers 409 after that (the state it would capture is going away).
	draining atomic.Bool
	// build is the binary identity served by /healthz and the
	// gridsat_build_info gauge.
	build obs.BuildInfo
}

// femit records a flight event, merging the in-flight message's Lamport
// stamp so this log's timestamps exceed the cause's. No-op without a
// recorder. Event-loop only.
func (m *Master) femit(ev trace.FEvent) uint64 {
	if m.flight == nil {
		return 0
	}
	if ev.Lamport == 0 {
		ev.Lamport = m.inTI.Lamport
	}
	return m.flight.Emit(ev)
}

// masterMetrics caches the master's registry handles so the event loop
// never does a registry lookup.
type masterMetrics struct {
	msgs          map[string]*obs.Counter // by message kind
	splits        *obs.Counter
	shared        *obs.Counter
	sharedDropped *obs.Counter
	shareDedup    *obs.Counter
	heartbeats    *obs.Counter
	rejected      *obs.Counter
	registered    *obs.Gauge
	busy          *obs.Gauge
	reserved      *obs.Gauge
	backlog       *obs.Gauge
	subBacklog    *obs.Gauge
	outstanding   *obs.Gauge
	splitLat      *obs.Histogram
	// Job-lifecycle SLO histograms: queue wait (submit → first client),
	// first assignment (submit → root handed out), solve (start →
	// verdict) and end-to-end turnaround (submit → verdict).
	queueWait   *obs.Histogram
	firstAssign *obs.Histogram
	solveLat    *obs.Histogram
	turnaround  *obs.Histogram
}

func newMasterMetrics(reg *obs.Registry) masterMetrics {
	return masterMetrics{
		msgs:          map[string]*obs.Counter{},
		splits:        reg.Counter("gridsat_master_splits_total", "completed subproblem transfers"),
		shared:        reg.Counter("gridsat_master_shared_clauses_total", "learned clauses fanned out to peers"),
		sharedDropped: reg.Counter("gridsat_master_shared_dropped_total", "best-effort ShareClauses messages dropped on full client queues"),
		shareDedup:    reg.Counter("gridsat_master_share_dedup_total", "shared clauses suppressed as already seen"),
		heartbeats:    reg.Counter("gridsat_master_heartbeats_total", "StatusReport messages aggregated"),
		rejected:      reg.Counter("gridsat_master_rejected_clients_total", "registrations refused for low memory"),
		registered:    reg.Gauge("gridsat_master_registered_clients", "clients currently registered"),
		busy:          reg.Gauge("gridsat_master_busy_clients", "clients currently holding subproblems"),
		reserved:      reg.Gauge("gridsat_master_reserved_clients", "clients reserved for in-flight transfers"),
		backlog:       reg.Gauge("gridsat_master_split_backlog", "queued unserved split requests"),
		subBacklog:    reg.Gauge("gridsat_master_sub_backlog", "leftover split cofactors waiting for an idle client"),
		outstanding:   reg.Gauge("gridsat_master_outstanding_subproblems", "live subproblems (busy + in flight)"),
		splitLat:      reg.Histogram("gridsat_master_split_latency_seconds", "SplitAssign to recipient SplitDone", nil),
		queueWait:     reg.Histogram("gridsat_job_queue_wait_seconds", "job submission to first client allocation", nil),
		firstAssign:   reg.Histogram("gridsat_job_first_assign_seconds", "job submission to root subproblem handed out", nil),
		solveLat:      reg.Histogram("gridsat_job_solve_seconds", "job start to verdict", nil),
		turnaround:    reg.Histogram("gridsat_job_turnaround_seconds", "job submission to verdict (end-to-end)", nil),
	}
}

// countMsg bumps the per-kind inbound message counter.
func (m *Master) countMsg(kind string) {
	c := m.met.msgs[kind]
	if c == nil {
		c = m.reg.Counter("gridsat_master_msgs_total", "protocol messages handled by kind", obs.L("kind", kind))
		m.met.msgs[kind] = c
	}
	c.Inc()
}

// updateGauges recomputes the pool gauges; called from the event loop
// after any state change (O(clients), which is tiny next to the wire).
func (m *Master) updateGauges() {
	var reg, busy, res int64
	for _, c := range m.clients {
		if c.addr != "" {
			reg++
		}
		if c.busy {
			busy++
		}
		if c.reserved {
			res++
		}
	}
	var backlog, subBacklog int
	for _, j := range m.jobs {
		backlog += len(j.backlog)
		subBacklog += len(j.subBacklog)
	}
	m.met.registered.Set(reg)
	m.met.busy.Set(busy)
	m.met.reserved.Set(res)
	m.met.backlog.Set(int64(backlog))
	m.met.subBacklog.Set(int64(subBacklog))
	m.met.outstanding.Set(int64(m.outstandingTotal()))
}

// NewMaster builds a master and starts listening; the returned master's
// Addr is dialable immediately, so clients may be launched before Run.
func NewMaster(cfg MasterConfig) (*Master, error) {
	if cfg.Formula == nil && !cfg.Serve {
		return nil, errors.New("core: master needs a formula")
	}
	if cfg.Transport == nil {
		return nil, errors.New("core: master needs a transport")
	}
	if _, err := solver.ParseStrategy(cfg.SplitStrategy); err != nil {
		return nil, err
	}
	policy, err := ParseSchedPolicy(cfg.SchedPolicy)
	if err != nil {
		return nil, err
	}
	l, err := cfg.Transport.Listen(cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	log := cfg.Logger
	if log == nil {
		log = obs.Nop()
	}
	m := &Master{
		cfg:            cfg,
		listener:       l,
		events:         make(chan masterEvent, 256),
		clients:        map[int]*masterClient{},
		fanout:         solver.StrategyFanout(cfg.SplitStrategy),
		jobs:           map[int]*masterJob{},
		serve:          cfg.Serve,
		policy:         policy,
		admission:      cfg.Admission,
		pendingSplits:  map[int]*splitGroup{},
		pendingAssigns: map[int]backlogSub{},
		reg:            reg,
		log:            log.Named("master"),
		met:            newMasterMetrics(reg),
		flight:         cfg.Flight,
	}
	m.build = obs.RegisterBuildInfo(reg)
	if cfg.HistoryPeriod >= 0 {
		period := cfg.HistoryPeriod
		if period == 0 {
			period = time.Second
		}
		m.hist = history.New(history.Config{IntervalSec: period.Seconds()})
		wcfg := DefaultWatchdogConfig()
		if cfg.Watchdog != nil {
			wcfg = cfg.Watchdog.withDefaults()
		}
		m.wd = newWatchdog(wcfg)
	}
	if !cfg.Serve {
		// Single-job mode: the whole classic runtime is job 0 — no
		// lifecycle events, no wire tags, no allocation policy.
		m.jobs[0] = &masterJob{
			Job:        &Job{ID: 0, Priority: 1, Formula: cfg.Formula, State: JobQueued},
			seenShared: newClauseWindow(cfg.ShareWindow),
		}
		m.jobOrder = []int{0}
	}
	if cfg.Flight != nil {
		// Stamp log lines with the recorder's Lamport time so they can be
		// placed against the flight log's causal order.
		m.log = m.log.WithLamport(cfg.Flight)
	}
	if cfg.MetricsAddr != "" {
		extra := append([]obs.Endpoint{}, cfg.ExtraEndpoints...)
		extra = append(extra, []obs.Endpoint{
			{Path: "/progress", H: func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				_ = enc.Encode(m.Progress())
			}},
			{Path: "GET /healthz", H: func(w http.ResponseWriter, _ *http.Request) {
				// Liveness: the introspection server answering is the
				// signal; no event-loop round-trip, so a wedged loop
				// still lets /healthz distinguish process-up from gone.
				writeJSON(w, http.StatusOK, map[string]any{
					"status": "ok", "build": m.build, "draining": m.draining.Load(),
				})
			}},
			{Path: "GET /history", H: func(w http.ResponseWriter, _ *http.Request) {
				if m.hist == nil {
					writeError(w, http.StatusNotFound, errors.New("core: history sampling disabled"))
					return
				}
				w.Header().Set("Content-Type", "application/json")
				_ = m.hist.WriteJSON(w)
			}},
			{Path: "GET /alerts", H: func(w http.ResponseWriter, _ *http.Request) {
				writeJSON(w, http.StatusOK, alertsResponse{Alerts: m.Alerts()})
			}},
			{Path: "POST /debug/bundle", H: func(w http.ResponseWriter, r *http.Request) {
				dir, err := m.TriggerBundle(r.URL.Query().Get("reason"))
				switch {
				case errors.Is(err, ErrDraining):
					writeError(w, http.StatusConflict, err)
				case errors.Is(err, ErrNoBundleDir):
					writeError(w, http.StatusServiceUnavailable, err)
				case err != nil:
					writeError(w, http.StatusInternalServerError, err)
				default:
					writeJSON(w, http.StatusOK, map[string]string{"bundle": dir})
				}
			}},
		}...)
		if f := m.flight; f != nil {
			extra = append(extra,
				obs.Endpoint{Path: "/trace", H: func(w http.ResponseWriter, _ *http.Request) {
					w.Header().Set("Content-Type", "application/x-ndjson")
					_ = f.WriteJSONL(w)
				}},
				obs.Endpoint{Path: "/trace.json", H: func(w http.ResponseWriter, _ *http.Request) {
					w.Header().Set("Content-Type", "application/json")
					_ = trace.WritePerfetto(w, f.Events())
				}},
				obs.Endpoint{Path: "/tree", H: func(w http.ResponseWriter, _ *http.Request) {
					w.Header().Set("Content-Type", "application/json")
					_ = trace.BuildLineage(f.Events()).WriteJSON(w)
				}},
				obs.Endpoint{Path: "/tree.dot", H: func(w http.ResponseWriter, _ *http.Request) {
					w.Header().Set("Content-Type", "text/vnd.graphviz")
					_ = trace.BuildLineage(f.Events()).WriteDOT(w)
				}},
			)
		}
		srv, addr, err := obs.Serve(cfg.MetricsAddr,
			obs.Handler(reg, func() any { return m.Status() }, extra...))
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("core: metrics server: %w", err)
		}
		m.httpSrv, m.httpAddr = srv, addr
		m.log.Info("introspection server up", "addr", addr)
	}
	go m.acceptLoop()
	return m, nil
}

// Addr returns the master's dialable address.
func (m *Master) Addr() string { return m.listener.Addr() }

// MetricsAddr returns the bound introspection address ("" when
// MasterConfig.MetricsAddr was empty).
func (m *Master) MetricsAddr() string { return m.httpAddr }

// Metrics returns the master's registry (the config's, or the private
// one allocated when none was supplied).
func (m *Master) Metrics() *obs.Registry { return m.reg }

// StatusSnapshot is a point-in-time view of the master's pool, served
// through the event loop so it is always consistent.
type StatusSnapshot struct {
	Registered int
	Busy       int
	Reserved   int
	Backlog    int
	// SubBacklog counts leftover split cofactors queued at the master,
	// waiting for an idle client (dilemma splits can out-produce the pool).
	SubBacklog int
	// Outstanding counts live subproblems (busy + in-flight transfers).
	Outstanding int
	Splits      int
	Shared      int
	// SharedDropped counts best-effort clause-share messages the master
	// discarded because a client's outbound queue was full.
	SharedDropped int64
	// CodecFallbackFrames counts frames sent with the gob fallback codec
	// instead of a dedicated binary encoder (0 when the transport is
	// uninstrumented) — a live canary for codec-coverage regressions.
	CodecFallbackFrames int64
	// FlightEvents is the flight recorder's event count (0 without one).
	FlightEvents int
	// WallSeconds is the elapsed run time (0 before Run starts).
	WallSeconds float64
	// Jobs are the scheduler's per-job rows in submission order (one row,
	// job 0, for a single-job master).
	Jobs []JobSnapshot
	// Clients are the live per-client aggregates, sorted by ID.
	Clients []ClientStatus
}

// Status asynchronously requests a snapshot from a running master. It
// blocks until the event loop serves it (or the master has exited, in
// which case the zero snapshot returns).
func (m *Master) Status() StatusSnapshot {
	reply := make(chan StatusSnapshot, 1)
	select {
	case m.events <- masterEvent{status: reply}:
		select {
		case s := <-reply:
			return s
		case <-time.After(2 * time.Second):
		}
	case <-time.After(2 * time.Second):
	}
	return StatusSnapshot{}
}

// Progress asynchronously requests the cluster progress estimate from a
// running master, served through the event loop like Status.
func (m *Master) Progress() ProgressSnapshot {
	reply := make(chan ProgressSnapshot, 1)
	select {
	case m.events <- masterEvent{progress: reply}:
		select {
		case s := <-reply:
			return s
		case <-time.After(2 * time.Second):
		}
	case <-time.After(2 * time.Second):
	}
	return ProgressSnapshot{}
}

// jobOf resolves the job a client's messages belong to (nil once the job
// has been forgotten — terminal jobs are kept, so nil means "never
// existed", which only unroutable traffic produces). Event-loop only.
func (m *Master) jobOf(c *masterClient) *masterJob {
	return m.jobs[c.job]
}

// heldClients counts the clients a job currently holds (busy or reserved,
// including ones mid-preemption). Event-loop only.
func (m *Master) heldClients(jobID int) int {
	n := 0
	for _, c := range m.clients {
		if c.job == jobID && (c.busy || c.reserved) {
			n++
		}
	}
	return n
}

// outstandingTotal sums live subproblems across every job.
func (m *Master) outstandingTotal() int {
	n := 0
	for _, j := range m.jobs {
		n += j.outstanding
	}
	return n
}

// jobSnapshot builds one job's external view. Event-loop only.
func (m *Master) jobSnapshot(j *masterJob, withModel bool) JobSnapshot {
	snap := JobSnapshot{
		ID:            j.ID,
		Name:          j.Name,
		Priority:      j.Priority,
		State:         j.State.String(),
		Clients:       m.heldClients(j.ID),
		SubmittedAt:   j.SubmittedAt,
		StartedAt:     j.StartedAt,
		FirstAssignAt: j.FirstAssignAt,
		FinishedAt:    j.FinishedAt,
		Preemptions:   j.Preemptions,
		Coverage:      j.prog.Fraction(),
	}
	if j.StartedAt > 0 {
		snap.QueueWaitSec = j.StartedAt - j.SubmittedAt
	}
	if j.FinishedAt > 0 {
		if j.StartedAt > 0 {
			snap.SolveSec = j.FinishedAt - j.StartedAt
		}
		snap.TurnaroundSec = j.FinishedAt - j.SubmittedAt
	}
	// The job's conflict throughput is the sum of its busy clients' EWMAs.
	for _, c := range m.clients {
		if c.job == j.ID && c.busy {
			snap.ConflictRate += c.confRate
		}
	}
	switch {
	case j.State == JobCancelled:
		snap.Verdict = "CANCELLED"
	case j.status == solver.StatusSAT:
		snap.Verdict = "SAT"
		if withModel {
			for _, l := range j.model.TrueLits() {
				snap.Model = append(snap.Model, l.DIMACS())
			}
		}
	case j.status == solver.StatusUNSAT:
		snap.Verdict = "UNSAT"
	case j.State == JobDone:
		snap.Verdict = "UNKNOWN"
	}
	return snap
}

// jobSnapshots lists every job in submission order. Event-loop only.
func (m *Master) jobSnapshots() []JobSnapshot {
	out := make([]JobSnapshot, 0, len(m.jobOrder))
	for _, id := range m.jobOrder {
		out = append(out, m.jobSnapshot(m.jobs[id], false))
	}
	return out
}

// progressSnapshot builds the /progress view. Event-loop only.
func (m *Master) progressSnapshot() ProgressSnapshot {
	snap := ProgressSnapshot{
		Outstanding:  m.outstandingTotal(),
		Conflicts:    m.clusterAgg.Conflicts,
		Implications: m.clusterAgg.Implications,
		Efficacy: efficacyFrom(m.clusterAgg.Imported, m.clusterAgg.ImportedUseful,
			m.clusterAgg.ImportedImplications, m.clusterAgg.ImportedResolutions,
			m.clusterAgg.Implications),
		Jobs: m.jobSnapshots(),
	}
	if !m.started.IsZero() {
		snap.WallSeconds = time.Since(m.started).Seconds()
	}
	if !m.serve {
		// Single-job mode: the scalar coverage fields are job 0's, exactly
		// as before the scheduler existed.
		j0 := m.jobs[0]
		snap.Coverage = j0.prog.Fraction()
		snap.Units = j0.prog.Units()
		snap.ClosedSubproblems = j0.prog.Closed()
		snap.MaxClosedDepth = j0.prog.MaxDepth()
		snap.RatePerSec = j0.prog.Rate()
		snap.ETASeconds = j0.prog.ETASeconds()
	} else {
		// Serve mode: coverage is per job (see Jobs); the scalars report
		// only the job-independent tallies.
		for _, id := range m.jobOrder {
			j := m.jobs[id]
			snap.ClosedSubproblems += j.prog.Closed()
			if d := j.prog.MaxDepth(); d > snap.MaxClosedDepth {
				snap.MaxClosedDepth = d
			}
		}
	}
	switch m.result.Status {
	case solver.StatusSAT:
		snap.Verdict = "SAT"
	case solver.StatusUNSAT:
		snap.Verdict = "UNSAT"
	}
	for _, c := range m.clients {
		if c.addr == "" {
			continue
		}
		snap.Registered++
		if c.busy {
			snap.Busy++
		}
		row := ClientProgress{
			ID:              c.id,
			Busy:            c.busy,
			Depth:           c.depth,
			ConflictsPerSec: c.confRate,
			MemBytes:        c.memBytes,
		}
		if c.agg.Imported > 0 {
			row.ImportUseRatio = float64(c.agg.ImportedUseful) / float64(c.agg.Imported)
		}
		snap.Clients = append(snap.Clients, row)
	}
	sort.Slice(snap.Clients, func(i, j int) bool { return snap.Clients[i].ID < snap.Clients[j].ID })
	markStragglers(snap.Clients)
	return snap
}

func (m *Master) acceptLoop() {
	for {
		conn, err := m.listener.Accept()
		if err != nil {
			return
		}
		m.events <- masterEvent{conn: conn}
	}
}

func (m *Master) readLoop(id int, conn comm.Conn) {
	for {
		msg, err := conn.Recv()
		if err != nil {
			m.events <- masterEvent{clientID: id, err: err}
			return
		}
		m.events <- masterEvent{clientID: id, msg: msg}
	}
}

// writeLoop drains a client's outbound queue so a slow or stalled client
// can never block the master's single-threaded event loop.
func (m *Master) writeLoop(c *masterClient) {
	for msg := range c.out {
		var err error
		if e, ok := msg.(*comm.EncodedMessage); ok {
			// Pre-serialized broadcast: write the shared frame verbatim
			// instead of re-encoding per peer.
			err = c.conn.SendEncoded(e)
		} else {
			err = c.conn.Send(msg)
		}
		if err != nil {
			return
		}
	}
}

// send queues msg for c. Best-effort clause shares (plain or
// pre-encoded) are dropped when the queue is full, and the drop is
// counted; control messages wait for room.
func (m *Master) send(c *masterClient, msg comm.Message) {
	select {
	case c.out <- msg:
	default:
		if msg.Kind() == (comm.ShareClauses{}).Kind() {
			m.sharedDropped++
			m.met.sharedDropped.Inc()
			return
		}
		c.out <- msg
	}
}

// Run serves the protocol until termination. It owns all master state;
// every message is handled on this single goroutine.
func (m *Master) Run() (Result, error) {
	m.started = time.Now()
	m.femit(trace.FEvent{Kind: trace.FEvRunStart, N: int64(m.cfg.ExpectedClients)})
	defer m.listener.Close()
	var timeout <-chan time.Time
	if m.cfg.Timeout > 0 {
		t := time.NewTimer(m.cfg.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	defer func() {
		if m.httpSrv != nil {
			_ = m.httpSrv.Close()
		}
	}()
	var rebalance <-chan time.Time
	if m.serve {
		period := m.cfg.RebalancePeriod
		if period <= 0 {
			period = 250 * time.Millisecond
		}
		t := time.NewTicker(period)
		defer t.Stop()
		rebalance = t.C
	}
	var sampler <-chan time.Time
	if m.hist != nil {
		period := m.cfg.HistoryPeriod
		if period <= 0 {
			period = time.Second
		}
		t := time.NewTicker(period)
		defer t.Stop()
		sampler = t.C
	}
	for {
		select {
		case <-rebalance:
			m.maybeRebalance()
			m.updateGauges()
		case <-sampler:
			m.sampleTick()
		case ev := <-m.events:
			done, err := m.handle(ev)
			if err != nil {
				m.finishResult()
				m.shutdownAll()
				return m.result, err
			}
			if done {
				m.result.Wall = time.Since(m.started)
				m.finishResult()
				m.log.Info("run decided", "status", m.result.Status,
					"wall", m.result.Wall, "splits", m.result.Splits)
				m.shutdownAll()
				return m.result, nil
			}
		case <-timeout:
			m.result.Status = solver.StatusUnknown
			m.result.Wall = time.Since(m.started)
			m.femit(trace.FEvent{Kind: trace.FEvVerdict, Detail: "UNKNOWN"})
			m.finishResult()
			m.log.Warn("run timed out", "after", m.cfg.Timeout)
			m.shutdownAll()
			return m.result, nil
		}
	}
}

// finishResult freezes the per-client aggregates into the Result, and
// for a single-job run stamps job 0's end time and SLO decomposition.
func (m *Master) finishResult() {
	m.result.Clients = m.clientStatuses()
	if m.result.Threads == 0 {
		m.result.Threads = 1 // no portfolio heartbeat seen: single-threaded
	}
	if !m.serve {
		j0 := m.jobs[0]
		if j0.FinishedAt == 0 {
			j0.FinishedAt = m.nowSec()
			if j0.StartedAt > 0 {
				m.met.solveLat.Observe(j0.FinishedAt - j0.StartedAt)
			}
			m.met.turnaround.Observe(j0.FinishedAt - j0.SubmittedAt)
		}
		m.result.Latency = jobLatency(j0.Job)
	}
}

// clientStatuses builds the per-client aggregate list, sorted by ID.
// Event-loop only.
func (m *Master) clientStatuses() []ClientStatus {
	out := make([]ClientStatus, 0, len(m.clients))
	for _, c := range m.clients {
		if c.addr == "" {
			continue // connection still mid-registration
		}
		out = append(out, ClientStatus{
			ID:             c.id,
			Host:           c.hostName,
			Busy:           c.busy,
			Reserved:       c.reserved,
			MemBytes:       c.memBytes,
			DBLearnts:      c.dbLearnts,
			Depth:          c.depth,
			Decisions:      c.agg.Decisions,
			Conflicts:      c.agg.Conflicts,
			Propagations:   c.agg.Propagations,
			Implications:   c.agg.Implications,
			Learned:        c.agg.Learned,
			ReclaimedBytes: c.agg.ReclaimedBytes,

			Imported:             c.agg.Imported,
			ImportedUseful:       c.agg.ImportedUseful,
			ImportedImplications: c.agg.ImportedImplications,
			ImportedResolutions:  c.agg.ImportedResolutions,
			Workers:              c.workers,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// statusSnapshot builds the /status view. Event-loop only.
func (m *Master) statusSnapshot() StatusSnapshot {
	var backlog, subBacklog int
	for _, j := range m.jobs {
		backlog += len(j.backlog)
		subBacklog += len(j.subBacklog)
	}
	snap := StatusSnapshot{
		Backlog:       backlog,
		SubBacklog:    subBacklog,
		Outstanding:   m.outstandingTotal(),
		Splits:        m.result.Splits,
		Shared:        m.result.SharedClauses,
		SharedDropped: m.sharedDropped,
		Jobs:          m.jobSnapshots(),
		Clients:       m.clientStatuses(),
	}
	if !m.started.IsZero() {
		snap.WallSeconds = time.Since(m.started).Seconds()
	}
	if m.cfg.CommMetrics != nil {
		snap.CodecFallbackFrames = m.cfg.CommMetrics.FallbackFrames()
	}
	if m.flight != nil {
		snap.FlightEvents = m.flight.Len()
	}
	for _, c := range m.clients {
		if c.addr != "" {
			snap.Registered++
		}
		if c.busy {
			snap.Busy++
		}
		if c.reserved {
			snap.Reserved++
		}
	}
	return snap
}

func (m *Master) handle(ev masterEvent) (bool, error) {
	if ev.progress != nil {
		ev.progress <- m.progressSnapshot()
		return false, nil
	}
	if ev.status != nil {
		ev.status <- m.statusSnapshot()
		return false, nil
	}
	if ev.apply != nil { // scheduler request (submit/cancel/query/shutdown)
		done := ev.apply()
		m.updateGauges()
		return done, nil
	}
	if ev.conn != nil { // new connection: wait for its Register
		m.nextID++
		id := m.nextID
		mc := &masterClient{id: id, conn: ev.conn, out: make(chan comm.Message, 1024),
			sentBase: map[int]bool{}}
		m.clients[id] = mc
		go m.readLoop(id, ev.conn)
		go m.writeLoop(mc)
		return false, nil
	}
	c := m.clients[ev.clientID]
	if c == nil {
		return false, nil
	}

	if ev.err != nil {
		m.inTI = comm.TraceInfo{}
		return m.clientLost(c)
	}
	// Strip the trace envelope (if any) so the dispatch below sees the
	// payload; the metadata feeds femit's Lamport merge and Parent links.
	unwrapped, ti := comm.Unwrap(ev.msg)
	m.inTI = ti
	m.countMsg(unwrapped.Kind())
	defer m.updateGauges()
	switch msg := unwrapped.(type) {
	case comm.Register:
		return false, m.handleRegister(c, msg)
	case comm.SplitRequest:
		m.handleSplitRequest(c, msg)
	case comm.SplitDone:
		return m.handleSplitDone(c, msg), nil
	case comm.ShareClauses:
		m.handleShare(c, msg)
	case comm.Solved:
		return m.handleSolved(c, msg)
	case comm.Preempted:
		m.handlePreempted(c, msg)
	case comm.StatusReport:
		m.handleStatusReport(c, msg)
	}
	return false, nil
}

// handleStatusReport folds a heartbeat into the live cluster view: the
// latest gauges replace, the deltas accumulate — into the per-client
// aggregate AND the cluster-lifetime totals, so departed clients' work is
// never subtracted from the cluster view.
func (m *Master) handleStatusReport(c *masterClient, msg comm.StatusReport) {
	m.met.heartbeats.Inc()
	m.femit(trace.FEvent{Kind: trace.FEvHeartbeat, Client: c.id,
		N: msg.Deltas.Propagations, Parent: m.inTI.Parent})
	if n := msg.Deltas.ImportedUseful; n > 0 {
		m.femit(trace.FEvent{Kind: trace.FEvImportUse, Client: c.id, N: n,
			Parent: m.inTI.Parent})
	}
	c.memBytes = msg.MemBytes
	c.dbLearnts = msg.Learnts
	c.depth = msg.Depth
	c.workers = msg.Workers
	if len(msg.Workers) > m.result.Threads {
		m.result.Threads = len(msg.Workers)
	}
	c.agg.Add(msg.Deltas)
	m.clusterAgg.Add(msg.Deltas)
	if j := m.jobOf(c); j != nil {
		j.agg.Add(msg.Deltas)
	}
	// Conflict-rate EWMA for utilization and straggler detection; anchored
	// to the run clock, so pre-Run heartbeats (none in practice) are skipped.
	if !m.started.IsZero() {
		now := time.Since(m.started).Seconds()
		if dt := now - c.lastHBSec; dt > 0 {
			inst := float64(msg.Deltas.Conflicts) / dt
			if c.haveRate {
				c.confRate = progressEWMAAlpha*inst + (1-progressEWMAAlpha)*c.confRate
			} else {
				c.confRate, c.haveRate = inst, true
			}
			c.lastHBSec = now
		}
	}
	if g := c.gauges; g != nil {
		g.mem.Set(msg.MemBytes)
		g.learnts.Set(int64(msg.Learnts))
		if msg.Busy {
			g.busy.Set(1)
		} else {
			g.busy.Set(0)
		}
		g.depth.Set(int64(msg.Depth))
		g.decisions.Add(msg.Deltas.Decisions)
		g.conflicts.Add(msg.Deltas.Conflicts)
		g.propagations.Add(msg.Deltas.Propagations)
		g.lrnd.Add(msg.Deltas.Learned)
		g.reclaimed.Add(msg.Deltas.ReclaimedBytes)
		g.imported.Add(msg.Deltas.Imported)
		g.importedUseful.Add(msg.Deltas.ImportedUseful)
	}
	m.log.Debug("heartbeat", "client", c.id, "mem", msg.MemBytes,
		"learnts", msg.Learnts, "conflicts+", msg.Deltas.Conflicts)
}

func (m *Master) handleRegister(c *masterClient, msg comm.Register) error {
	if msg.FreeMemBytes < m.cfg.MinMemBytes {
		// Paper §3.3: clients on low-memory resources terminate; they
		// would split constantly and add only communication overhead.
		m.met.rejected.Inc()
		m.log.Warn("registration rejected", "host", msg.HostName,
			"free_mem", msg.FreeMemBytes, "min_mem", m.cfg.MinMemBytes)
		m.send(c, comm.RegisterAck{Rejected: true,
			Reason: fmt.Sprintf("free memory %d below minimum %d", msg.FreeMemBytes, m.cfg.MinMemBytes)})
		delete(m.clients, c.id)
		return nil
	}
	c.addr = msg.Addr
	c.hostName = msg.HostName
	c.speed = msg.SpeedHint
	c.memBytes = msg.FreeMemBytes
	c.gauges = newClientGauges(m.reg, c.id)
	c.gauges.mem.Set(msg.FreeMemBytes)
	m.log.Info("client registered", "id", c.id, "host", msg.HostName,
		"addr", msg.Addr, "free_mem", msg.FreeMemBytes)
	m.femit(trace.FEvent{Kind: trace.FEvClientJoin, Client: c.id,
		Detail: msg.HostName, Parent: m.inTI.Parent})
	m.send(c, comm.RegisterAck{ClientID: c.id})
	if !m.serve {
		// Single-job mode: every client gets the one formula up front,
		// exactly as the pre-scheduler master did.
		c.sentBase[0] = true
		m.send(c, comm.BaseProblem{Formula: m.cfg.Formula})
		j0 := m.jobs[0]
		if !j0.assigned && m.registeredCount() >= max(1, m.cfg.ExpectedClients) {
			m.assignRoot(j0)
		}
		// A fresh idle client may be able to serve the backlog.
		m.serveBacklog()
		return nil
	}
	// Serve mode: base formulas go out lazily per job; a fresh client just
	// joins the allocatable pool.
	m.maybeRebalance()
	return nil
}

// ensureBase sends a job's base formula to a client that has not cached
// it yet — serve mode ships formulas lazily, right before the client is
// reserved or assigned for the job. Single-job masters send the formula
// at registration, so this is a no-op there.
func (m *Master) ensureBase(c *masterClient, j *masterJob) {
	if c.sentBase[j.ID] {
		return
	}
	c.sentBase[j.ID] = true
	m.send(c, comm.BaseProblem{Formula: j.Formula, Job: j.ID})
}

// markStarted moves a job to running on its first (or renewed) client
// assignment, stamping StartedAt and the serve-mode lifecycle event.
func (m *Master) markStarted(j *masterJob) {
	switch j.State {
	case JobQueued:
		j.StartedAt = m.nowSec()
		j.State = JobRunning
		m.met.queueWait.Observe(j.StartedAt - j.SubmittedAt)
		if m.serve {
			m.femit(trace.FEvent{Kind: trace.FEvJobStart, Job: j.ID})
		}
	case JobPreempted:
		j.State = JobRunning
	}
}

// nowSec is the master's run clock (seconds since Run started).
func (m *Master) nowSec() float64 {
	if m.started.IsZero() {
		return 0
	}
	return time.Since(m.started).Seconds()
}

// assignRoot hands a job's whole search space to the best idle client
// ("The first client to register with the master is sent the entire
// problem" — with ranking, the best-ranked registrant).
func (m *Master) assignRoot(j *masterJob) {
	target, ok := PickSplitTarget(m.idleCandidates(), m.cfg.MinMemBytes)
	if !ok {
		return
	}
	c := m.clients[target.ID]
	m.ensureBase(c, j)
	sub := &solver.Subproblem{NumVars: j.Formula.NumVars}
	m.send(c, comm.SplitPayload{From: 0, Job: j.ID, Subs: []*solver.Subproblem{sub}})
	j.assigned = true
	c.busy = true
	c.job = j.ID
	c.assignedAt = time.Now()
	j.outstanding++
	m.markStarted(j)
	if j.FirstAssignAt == 0 {
		j.FirstAssignAt = m.nowSec()
		m.met.firstAssign.Observe(j.FirstAssignAt - j.SubmittedAt)
	}
	m.femit(trace.FEvent{Kind: trace.FEvAssign, Client: c.id, Job: j.ID})
	m.noteBusyCount()
}

func (m *Master) handleSplitRequest(c *masterClient, msg comm.SplitRequest) {
	j := m.jobOf(c)
	if j == nil || !c.busy || c.pendingSplit || c.preempting {
		return // idle clients cannot split; duplicates are ignored
	}
	c.pendingSplit = true
	c.splitReqEv = m.femit(trace.FEvent{Kind: trace.FEvSplitRequest,
		Client: c.id, Job: j.ID, Detail: msg.Why.String(), Parent: m.inTI.Parent})
	j.backlog = append(j.backlog, BacklogEntry{
		ClientID:    c.id,
		AssignedAt:  float64(c.assignedAt.UnixNano()),
		RequestedAt: float64(time.Now().UnixNano()),
	})
	m.serveBacklog()
}

// serveBacklog places queued work on idle resources. A single-job master
// serves the one implicit job without limits — the pre-scheduler control
// flow exactly. In serve mode each active job gets clients only up to its
// policy target, in submission order, so the allocation stays malleable.
func (m *Master) serveBacklog() {
	if !m.serve {
		j := m.jobs[0]
		m.serveSubBacklog(j, -1)
		m.serveSplitBacklog(j, -1)
		return
	}
	targets := m.allocTargets()
	for _, id := range m.jobOrder {
		j := m.jobs[id]
		if !j.State.Active() {
			continue
		}
		deficit := targets[j.ID] - m.heldClients(j.ID)
		if deficit <= 0 {
			continue
		}
		if !j.assigned {
			// First allocation: the job starts from its root subproblem.
			m.assignRoot(j)
			deficit = targets[j.ID] - m.heldClients(j.ID)
			if deficit <= 0 {
				continue
			}
		}
		deficit = m.serveSubBacklog(j, deficit)
		if deficit > 0 {
			m.serveSplitBacklog(j, deficit)
		}
	}
}

// serveSplitBacklog serves a job's queued split requests, longest-running
// requester first. A request reserves up to the strategy's fanout in idle
// recipients, so a dilemma donor can shed all its cofactors in one
// exchange; limit caps how many recipients may be reserved in total
// (negative = unbounded, the single-job mode).
func (m *Master) serveSplitBacklog(j *masterJob, limit int) {
	for limit != 0 {
		i := NextFromBacklog(j.backlog)
		if i < 0 {
			return
		}
		donor := m.clients[j.backlog[i].ClientID]
		if donor == nil || !donor.busy || donor.job != j.ID || donor.preempting {
			// Requester vanished, finished, or was reassigned; drop the entry.
			j.backlog = append(j.backlog[:i], j.backlog[i+1:]...)
			continue
		}
		budget := max(1, m.fanout)
		if limit > 0 && limit < budget {
			budget = limit
		}
		var peers []comm.SplitPeer
		cands := m.idleCandidates()
		for len(peers) < budget {
			target, ok := PickSplitTarget(cands, m.cfg.MinMemBytes)
			if !ok {
				break
			}
			r := m.clients[target.ID]
			r.reserved = true
			r.job = j.ID
			m.ensureBase(r, j)
			peers = append(peers, comm.SplitPeer{ID: r.id, Addr: r.addr})
			kept := cands[:0]
			for _, c := range cands {
				if c.ID != target.ID {
					kept = append(kept, c)
				}
			}
			cands = kept
		}
		if len(peers) == 0 {
			return // nothing idle; keep waiting
		}
		j.backlog = append(j.backlog[:i], j.backlog[i+1:]...)
		donor.pendingSplit = false
		j.outstanding += len(peers) // each in-flight leg counts as outstanding work
		m.nextSplitID++
		g := &splitGroup{donor: donor.id, job: j.ID, settled: map[int]bool{},
			assignedAt: time.Now()}
		for _, p := range peers {
			g.recipients = append(g.recipients, p.ID)
		}
		g.issueEv = m.femit(trace.FEvent{Kind: trace.FEvSplitIssue, Client: donor.id,
			Peer: peers[0].ID, N: int64(len(peers)), SplitID: m.nextSplitID,
			Parent: donor.splitReqEv})
		m.pendingSplits[m.nextSplitID] = g
		m.send(donor, comm.SplitAssign{SplitID: m.nextSplitID, Peers: peers})
		if limit > 0 {
			limit -= len(peers)
		}
	}
}

// serveSubBacklog hands a job's queued cofactors (leftover split products
// and preempted checkpoints) to idle clients — cheaper than asking a busy
// client to split. The subproblems are already counted in outstanding
// (they are live search space), so assignment only flips the recipient
// busy. Returns the remaining assignment budget.
func (m *Master) serveSubBacklog(j *masterJob, limit int) int {
	for len(j.subBacklog) > 0 && limit != 0 {
		target, ok := PickSplitTarget(m.idleCandidates(), m.cfg.MinMemBytes)
		if !ok {
			return limit
		}
		entry := j.subBacklog[0]
		j.subBacklog = j.subBacklog[1:]
		c := m.clients[target.ID]
		m.ensureBase(c, j)
		m.pendingAssigns[c.id] = entry
		m.send(c, comm.SplitPayload{SplitID: entry.splitID, From: entry.donor,
			Job: j.ID, Subs: []*solver.Subproblem{entry.sub}})
		c.busy = true
		c.job = j.ID
		c.assignedAt = time.Now()
		m.markStarted(j)
		m.noteBusyCount()
		if limit > 0 {
			limit--
		}
	}
	return limit
}

func (m *Master) handleSplitDone(c *masterClient, msg comm.SplitDone) bool {
	// A backlog-served cofactor acks with the split ID it descended from.
	if entry, ok := m.pendingAssigns[c.id]; ok && entry.splitID == msg.SplitID {
		delete(m.pendingAssigns, c.id)
		j := m.jobs[entry.job]
		if msg.OK {
			if entry.resume {
				// A preempted checkpoint came back to life on a new client:
				// the flight log records the checkpoint's travel and the
				// resume under the job-preempt event that created it.
				m.femit(trace.FEvent{Kind: trace.FEvMigrate, Client: entry.donor,
					Peer: c.id, Job: entry.job, Parent: entry.issueEv})
				m.femit(trace.FEvent{Kind: trace.FEvJobResume, Client: c.id,
					Job: entry.job, Parent: entry.issueEv})
			} else {
				m.result.Splits++
				if j != nil {
					j.splits++
				}
				m.met.splits.Inc()
				m.femit(trace.FEvent{Kind: trace.FEvSplitAccept, Client: c.id,
					Peer: entry.donor, SplitID: entry.splitID, Parent: entry.issueEv})
			}
		} else {
			// The assignment bounced; requeue the cofactor — it is still
			// live search space and stays counted in outstanding.
			c.busy = false
			m.femit(trace.FEvent{Kind: trace.FEvSplitFail, Client: c.id,
				Peer: entry.donor, SplitID: entry.splitID, Parent: entry.issueEv, Detail: msg.Err})
			if j != nil && j.State.Active() {
				j.subBacklog = append(j.subBacklog, entry)
			} else if j != nil {
				j.outstanding--
			}
			m.serveBacklog()
		}
		return m.checkExhausted(m.jobs[entry.job])
	}
	g, ok := m.pendingSplits[msg.SplitID]
	if !ok {
		// Initial-assignment ack (SplitID 0), an already-settled group, or a
		// transfer whose job ended while the payload was in flight. In the
		// last case the recipient just started solving a dead job: stop it
		// and keep it busy master-side until its idle ack.
		if m.serve && msg.OK && !c.busy {
			if j := m.jobOf(c); j != nil && !j.State.Active() {
				c.busy = true
				c.preempting = true
				c.stopSeq++
				m.send(c, comm.StopWork{Job: j.ID, Seq: c.stopSeq})
			}
		}
		return m.checkExhausted(m.jobOf(c))
	}
	j := m.jobs[g.job]
	if c.id == g.donor { // Figure 3, message (5)
		g.donorDone = true
		used := 0
		if msg.OK {
			used = min(msg.Used, len(g.recipients))
		} else {
			m.femit(trace.FEvent{Kind: trace.FEvSplitFail, Client: g.donor,
				SplitID: msg.SplitID, Parent: g.issueEv, Detail: msg.Err})
		}
		g.used = used
		// Peers are served in assignment order, so everyone beyond the Used
		// prefix will never get a payload: release their reservations and
		// the outstanding slots reserved for them.
		for _, id := range g.recipients[used:] {
			if g.settled[id] {
				continue
			}
			g.settled[id] = true
			if r := m.clients[id]; r != nil {
				r.reserved = false
			}
			m.femit(trace.FEvent{Kind: trace.FEvSplitFail, Client: id,
				Peer: g.donor, SplitID: msg.SplitID, Parent: g.issueEv, Detail: "released unused"})
			j.outstanding--
		}
		// Cofactors beyond the assigned peers ride back here for the
		// backlog; each is new live search space.
		if len(msg.Leftover) > 0 {
			for _, sub := range msg.Leftover {
				j.subBacklog = append(j.subBacklog, backlogSub{sub: sub,
					splitID: msg.SplitID, donor: g.donor, issueEv: g.issueEv, job: g.job})
				j.outstanding++
			}
			m.femit(trace.FEvent{Kind: trace.FEvSplitBacklog, Client: g.donor,
				SplitID: msg.SplitID, N: int64(len(msg.Leftover)), Parent: g.issueEv})
		}
	} else { // Figure 3, message (4): one recipient's leg concluded
		member := false
		for _, id := range g.recipients {
			member = member || id == c.id
		}
		if !member || g.settled[c.id] {
			return false
		}
		g.settled[c.id] = true
		c.reserved = false
		if msg.OK {
			c.busy = true
			c.assignedAt = time.Now()
			m.result.Splits++
			j.splits++
			m.met.splits.Inc()
			m.met.splitLat.Observe(time.Since(g.assignedAt).Seconds())
			m.femit(trace.FEvent{Kind: trace.FEvSplitAccept, Client: c.id,
				Peer: g.donor, SplitID: msg.SplitID, Parent: g.issueEv})
			m.noteBusyCount()
		} else {
			m.femit(trace.FEvent{Kind: trace.FEvSplitFail, Client: c.id,
				Peer: g.donor, SplitID: msg.SplitID, Parent: g.issueEv, Detail: msg.Err})
			j.outstanding--
			// If the recipient handed the payload back, it is still live
			// search space: requeue it rather than losing the cofactor.
			for _, sub := range msg.Leftover {
				j.subBacklog = append(j.subBacklog, backlogSub{sub: sub,
					splitID: msg.SplitID, donor: g.donor, issueEv: g.issueEv, job: g.job})
				j.outstanding++
			}
		}
	}
	if g.done() {
		delete(m.pendingSplits, msg.SplitID)
	}
	m.serveBacklog()
	return m.checkExhausted(j)
}

func (m *Master) handleShare(c *masterClient, msg comm.ShareClauses) {
	// Learned clauses are sound only within the formula they were derived
	// from, so dedup and fan-out are strictly per job.
	j := m.jobOf(c)
	if j == nil || !j.State.Active() {
		return
	}
	// Copy on receipt: over the in-process transport the sender may still
	// hold (and mutate) the slices it sent, so the fan-out must never
	// alias them. Duplicate suppression is by bounded fingerprint window;
	// a rare collision or eviction only costs one best-effort share.
	var fresh []cnf.Clause
	for _, cl := range msg.Clauses {
		if !j.seenShared.Add(cl.Fingerprint()) {
			m.met.shareDedup.Inc()
			continue
		}
		fresh = append(fresh, cl.Clone())
	}
	if len(fresh) == 0 {
		return
	}
	m.result.SharedClauses += len(fresh)
	j.shared += len(fresh)
	m.met.shared.Add(int64(len(fresh)))
	m.femit(trace.FEvent{Kind: trace.FEvShareRelay, Client: c.id, Job: j.ID,
		N: int64(len(fresh)), Parent: m.inTI.Parent})
	// Encode the batch once; every peer's writeLoop sends the same frame.
	var out comm.Message = comm.ShareClauses{From: c.id, Job: j.ID, Clauses: fresh}
	if e, err := comm.EncodeMessage(out); err == nil {
		out = e
	}
	for _, other := range m.clients {
		if other.id == c.id || other.addr == "" || other.job != j.ID {
			continue
		}
		m.send(other, out)
	}
}

func (m *Master) handleSolved(c *masterClient, msg comm.Solved) (bool, error) {
	if !c.busy {
		return false, nil
	}
	j := m.jobOf(c)
	if j == nil {
		return false, nil
	}
	c.busy = false
	c.pendingSplit = false
	c.preempting = false // a verdict beat any in-flight preempt
	if !j.State.Active() {
		// The job ended (cancelled, or decided by a peer) while this client
		// was still solving; the stale verdict just frees the client.
		m.serveBacklog()
		return false, nil
	}
	j.outstanding--
	m.log.Info("subproblem solved", "client", c.id, "job", j.ID,
		"status", msg.Status, "outstanding", j.outstanding)
	switch msg.Status {
	case solver.StatusSAT:
		// Verify the assignment before declaring success (paper §3.4).
		if err := j.Formula.Verify(msg.Model); err != nil {
			if !m.serve {
				return false, fmt.Errorf("core: client %d reported an invalid model: %w", c.id, err)
			}
			// One job's bad model must not kill the service.
			m.log.Warn("invalid model", "client", c.id, "job", j.ID, "err", err)
			m.finishJob(j, solver.StatusUnknown, nil)
			return false, nil
		}
		m.femit(trace.FEvent{Kind: trace.FEvVerdict, Client: c.id, Worker: msg.Worker,
			Job: j.ID, Detail: "SAT", Parent: m.inTI.Parent})
		if !m.serve {
			m.result.Status = solver.StatusSAT
			m.result.Model = msg.Model
			j.status, j.model = solver.StatusSAT, msg.Model
			return true, nil
		}
		m.finishJob(j, solver.StatusSAT, msg.Model)
		return false, nil
	case solver.StatusUNSAT:
		ev := m.femit(trace.FEvent{Kind: trace.FEvSubUNSAT, Client: c.id, Worker: msg.Worker,
			Job: j.ID, Parent: m.inTI.Parent})
		// Fold the refuted prefix into the job's coverage estimate: a
		// depth-d subproblem retires 2^-d of the root search space.
		units := j.prog.CloseSubproblem(msg.Depth, time.Since(m.started).Seconds())
		m.femit(trace.FEvent{Kind: trace.FEvProgress, Client: c.id, Job: j.ID,
			N: int64(units), Detail: fmt.Sprintf("depth=%d", msg.Depth), Parent: ev})
		// This half of the space is exhausted. If nothing else is
		// outstanding, the whole job is unsatisfiable.
		if m.checkExhausted(j) {
			return !m.serve, nil
		}
		m.serveBacklog()
	}
	return false, nil
}

// checkExhausted reports (and records) a job's unsatisfiability: its
// problem was handed out and no subproblem remains outstanding anywhere —
// "all the clients are idle, which means that the instance is
// unsatisfiable" (§3.4). Checked after every event that can decrement the
// outstanding-work count, including failed split transfers.
func (m *Master) checkExhausted(j *masterJob) bool {
	if j == nil || !j.State.Active() {
		return false
	}
	if j.assigned && j.outstanding == 0 && j.status == solver.StatusUnknown {
		if !m.serve {
			j.status = solver.StatusUNSAT
			m.result.Status = solver.StatusUNSAT
			m.femit(trace.FEvent{Kind: trace.FEvVerdict, Detail: "UNSAT"})
			return true
		}
		m.femit(trace.FEvent{Kind: trace.FEvVerdict, Job: j.ID, Detail: "UNSAT"})
		m.finishJob(j, solver.StatusUNSAT, nil)
		// One job's exhaustion never ends the service: callers feed this
		// straight into handle()'s done flag, which must stay false here.
		return false
	}
	return false
}

// clientLost implements the paper's limited fault handling: a lost idle
// client is forgotten; a lost busy client is unrecoverable in the live
// single-job runtime (the DES runner models checkpoint recovery). The
// scheduling service instead fails only the job whose subproblem went
// down with the client — one bad host must not take out the service.
func (m *Master) clientLost(c *masterClient) (bool, error) {
	if c.busy || c.reserved {
		if !m.serve {
			return false, fmt.Errorf("core: lost client %d while it held a subproblem", c.id)
		}
		j := m.jobOf(c)
		m.log.Warn("busy client lost; failing its job", "client", c.id,
			"host", c.hostName, "job", c.job)
		m.femit(trace.FEvent{Kind: trace.FEvClientLeave, Client: c.id, Detail: c.hostName})
		delete(m.clients, c.id)
		if j != nil && j.State.Active() {
			// The lost subproblem's search space is unrecoverable live, so
			// the job cannot conclude soundly: end it UNKNOWN.
			m.finishJob(j, solver.StatusUnknown, nil)
		}
		m.updateGauges()
		return false, nil
	}
	m.log.Warn("idle client lost", "client", c.id, "host", c.hostName)
	m.femit(trace.FEvent{Kind: trace.FEvClientLeave, Client: c.id, Detail: c.hostName})
	delete(m.clients, c.id)
	if m.serve {
		m.updateGauges()
	}
	return false, nil
}

func (m *Master) idleCandidates() []Candidate {
	var out []Candidate
	for _, c := range m.clients {
		if c.busy || c.reserved || c.addr == "" {
			continue
		}
		out = append(out, Candidate{
			ID:       c.id,
			Rank:     c.speed * float64(c.memBytes>>20),
			MemBytes: c.memBytes,
		})
	}
	return out
}

func (m *Master) registeredCount() int {
	n := 0
	for _, c := range m.clients {
		if c.addr != "" {
			n++
		}
	}
	return n
}

func (m *Master) noteBusyCount() {
	n := 0
	for _, c := range m.clients {
		if c.busy {
			n++
		}
	}
	if n > m.result.MaxClients {
		m.result.MaxClients = n
	}
}

func (m *Master) shutdownAll() {
	for _, c := range m.clients {
		m.send(c, comm.Shutdown{})
	}
	// Give clients a moment to drain, then cut connections.
	time.AfterFunc(100*time.Millisecond, func() {
		for _, c := range m.clients {
			_ = c.conn.Close()
		}
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
