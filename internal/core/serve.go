package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"gridsat/internal/cnf"
	"gridsat/internal/comm"
	"gridsat/internal/obs"
	"gridsat/internal/solver"
	"gridsat/internal/trace"
)

// This file is the serve-mode half of the master: the multi-job
// scheduling service. Jobs arrive through Submit (or the HTTP API in
// Endpoints), wait in the admission-controlled queue, and hold clients
// according to the configured SchedPolicy. Allocation is malleable in
// Mallob's sense — the scheduler moves clients between running jobs at
// runtime by preempting them (checkpoint via the §3.4 migration
// machinery) and resuming the checkpointed subproblem on whichever
// client the policy hands it to next. All scheduler state lives on the
// master's single event loop; the public methods below marshal onto it
// through masterEvent.apply closures.

// ErrNotServing is returned by scheduling calls on a single-job master.
var ErrNotServing = errors.New("core: master is not a scheduling service (set MasterConfig.Serve)")

// ErrNoSuchJob is returned for job IDs the service has never issued.
var ErrNoSuchJob = errors.New("core: no such job")

// apply runs fn on the master's event loop and waits for it to finish
// (or gives up when the loop is gone). fn must signal completion itself;
// done is closed by the caller-side wrapper.
func (m *Master) apply(fn func()) error {
	done := make(chan struct{})
	ev := masterEvent{apply: func() bool {
		fn()
		close(done)
		return false
	}}
	select {
	case m.events <- ev:
		select {
		case <-done:
			return nil
		case <-time.After(2 * time.Second):
		}
	case <-time.After(2 * time.Second):
	}
	return errors.New("core: master event loop unavailable")
}

// Submit queues a formula as a new job and returns its ID. Priority
// below 1 is clamped to 1; it only matters under the "priority" policy.
// Fails when admission control rejects the job or the master is not in
// serve mode.
func (m *Master) Submit(name string, f *cnf.Formula, priority int) (int, error) {
	if f == nil {
		return 0, errors.New("core: submit needs a formula")
	}
	var id int
	var err error
	if aerr := m.apply(func() { id, err = m.submit(name, f, priority) }); aerr != nil {
		return 0, aerr
	}
	return id, err
}

// submit is Submit's event-loop half.
func (m *Master) submit(name string, f *cnf.Formula, priority int) (int, error) {
	if !m.serve {
		return 0, ErrNotServing
	}
	var active int
	var activeBytes int64
	for _, j := range m.jobs {
		if j.State.Active() {
			active++
			activeBytes += FormulaMemBytes(j.Formula)
		}
	}
	if err := m.admission.Admit(FormulaMemBytes(f), active, activeBytes, m.registeredCount()); err != nil {
		return 0, err
	}
	if priority < 1 {
		priority = 1
	}
	m.nextJobID++
	id := m.nextJobID
	j := &masterJob{
		Job: &Job{ID: id, Name: name, Priority: priority, Formula: f,
			State: JobQueued, SubmittedAt: m.nowSec()},
		seenShared: newClauseWindow(m.cfg.ShareWindow),
	}
	m.jobs[id] = j
	m.jobOrder = append(m.jobOrder, id)
	m.femit(trace.FEvent{Kind: trace.FEvJobSubmit, Job: id, Detail: name, N: int64(priority)})
	m.log.Info("job submitted", "job", id, "name", name, "priority", priority,
		"vars", f.NumVars, "clauses", len(f.Clauses))
	m.maybeRebalance()
	return id, nil
}

// CancelJob cancels a queued or running job; its clients are stopped and
// return to the pool. Cancelling a finished job is a no-op error.
func (m *Master) CancelJob(id int) error {
	var err error
	if aerr := m.apply(func() { err = m.cancel(id) }); aerr != nil {
		return aerr
	}
	return err
}

func (m *Master) cancel(id int) error {
	if !m.serve {
		return ErrNotServing
	}
	j := m.jobs[id]
	if j == nil {
		return fmt.Errorf("%w: %d", ErrNoSuchJob, id)
	}
	if !j.State.Active() {
		return fmt.Errorf("core: job %d already %s", id, j.State)
	}
	j.State = JobCancelled
	j.FinishedAt = m.nowSec()
	j.outstanding = 0
	j.backlog = nil
	j.subBacklog = nil
	m.met.turnaround.Observe(j.FinishedAt - j.SubmittedAt)
	m.femit(trace.FEvent{Kind: trace.FEvJobCancel, Job: j.ID})
	m.log.Info("job cancelled", "job", j.ID)
	if m.cfg.BundleDir != "" {
		m.captureBundle(fmt.Sprintf("job-%d-cancelled", j.ID))
	}
	m.releaseJob(j)
	m.maybeRebalance()
	return nil
}

// JobStatus returns one job's snapshot; withModel includes a SAT job's
// satisfying assignment (DIMACS literals).
func (m *Master) JobStatus(id int, withModel bool) (JobSnapshot, error) {
	var snap JobSnapshot
	var err error
	if aerr := m.apply(func() {
		j := m.jobs[id]
		if j == nil {
			err = fmt.Errorf("%w: %d", ErrNoSuchJob, id)
			return
		}
		snap = m.jobSnapshot(j, withModel)
	}); aerr != nil {
		return JobSnapshot{}, aerr
	}
	return snap, err
}

// Jobs lists every job the service has seen, in submission order.
func (m *Master) Jobs() []JobSnapshot {
	var out []JobSnapshot
	_ = m.apply(func() { out = m.jobSnapshots() })
	return out
}

// Shutdown stops a serving master: Run returns after the pool is told to
// shut down. Queued and running jobs end where they are (their snapshots
// remain queryable until the process exits).
func (m *Master) Shutdown() {
	m.draining.Store(true)
	ev := masterEvent{apply: func() bool {
		m.log.Info("service shutting down")
		return true
	}}
	select {
	case m.events <- ev:
	case <-time.After(2 * time.Second):
	}
}

// jobDemand estimates how many clients a job can put to work right now:
// its live subproblems (busy clients, in-flight transfers, queued
// cofactors) plus the recipients its queued split requests could serve,
// plus the root assignment if it never started. Demand feeds the policy
// so FIFO spillover and fair-share redistribution have something to cap
// against; it grows as the job's clients ask to split.
func (m *Master) jobDemand(j *masterJob) int {
	d := j.outstanding + len(j.backlog)*max(1, m.fanout)
	if !j.assigned {
		d++
	}
	if d < 1 {
		d = 1
	}
	return d
}

// allocTargets asks the policy how many clients each active job should
// hold, given the registered pool. Event-loop only.
func (m *Master) allocTargets() map[int]int {
	var claims []SchedShare
	for _, id := range m.jobOrder {
		j := m.jobs[id]
		if !j.State.Active() {
			continue
		}
		claims = append(claims, SchedShare{JobID: j.ID, Priority: j.Priority,
			Demand: m.jobDemand(j)})
	}
	return m.policy.Allocate(claims, m.registeredCount())
}

// maybeRebalance reviews the allocation: jobs over their policy target
// give up clients (checkpoint preemption), jobs under it get queued work
// placed on idle clients. Single-job masters skip straight to the
// classic backlog service. Event-loop only.
func (m *Master) maybeRebalance() {
	if !m.serve {
		m.serveBacklog()
		return
	}
	targets := m.allocTargets()
	for _, id := range m.jobOrder {
		j := m.jobs[id]
		if !j.State.Active() || !j.assigned {
			continue
		}
		if over := m.heldClients(j.ID) - targets[j.ID]; over > 0 {
			m.preemptClients(j, over)
		}
	}
	m.serveBacklog()
}

// preemptClients asks up to n of a job's busy clients to checkpoint and
// stop, newest assignment first (the least progress is lost), ties to
// the higher ID for determinism. Reserved and already-preempting clients
// are skipped — their transfers must settle first.
func (m *Master) preemptClients(j *masterJob, n int) {
	var cands []*masterClient
	for _, c := range m.clients {
		if c.job == j.ID && c.busy && !c.preempting && !c.reserved {
			cands = append(cands, c)
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if !cands[a].assignedAt.Equal(cands[b].assignedAt) {
			return cands[a].assignedAt.After(cands[b].assignedAt)
		}
		return cands[a].id > cands[b].id
	})
	for i := 0; i < n && i < len(cands); i++ {
		c := cands[i]
		c.preempting = true
		c.stopSeq++
		m.log.Info("preempting client", "client", c.id, "job", j.ID)
		m.send(c, comm.Preempt{Job: j.ID, Seq: c.stopSeq})
	}
}

// handlePreempted folds a client's checkpoint ack back into the
// scheduler: the checkpointed subproblem joins its job's backlog (still
// counted outstanding — it is live search space), and the client returns
// to the allocatable pool. A nil Sub is a plain stop ack (StopWork, or a
// preempt that raced the client going idle). Event-loop only.
func (m *Master) handlePreempted(c *masterClient, msg comm.Preempted) {
	if !c.preempting || msg.Seq != c.stopSeq {
		// Stale ack: the preempt this answers was beaten by a verdict
		// (handleSolved cleared preempting and freed the client), and the
		// client may since have been reassigned. Clearing busy here would
		// orphan that new assignment, so the ack is dropped outright.
		return
	}
	wasBusy := c.busy
	c.busy = false
	c.preempting = false
	c.pendingSplit = false
	j := m.jobs[msg.Job]
	if j != nil && j.State.Active() && msg.Sub != nil && wasBusy {
		j.Preemptions++
		pe := m.femit(trace.FEvent{Kind: trace.FEvJobPreempt, Client: c.id, Job: j.ID})
		j.subBacklog = append(j.subBacklog, backlogSub{sub: msg.Sub, donor: c.id,
			issueEv: pe, job: j.ID, resume: true})
		if j.State == JobRunning && m.heldClients(j.ID) == 0 {
			j.State = JobPreempted
		}
		m.log.Info("client preempted", "client", c.id, "job", j.ID,
			"depth", msg.Sub.Depth, "learnts", len(msg.Sub.Learnts))
	}
	m.maybeRebalance()
}

// finishJob records a job's verdict and releases everything it holds.
// Event-loop only.
func (m *Master) finishJob(j *masterJob, status solver.Status, model cnf.Assignment) {
	if !j.State.Active() {
		return
	}
	j.status = status
	j.model = model
	j.State = JobDone
	j.FinishedAt = m.nowSec()
	j.outstanding = 0
	j.backlog = nil
	j.subBacklog = nil
	if j.StartedAt > 0 {
		m.met.solveLat.Observe(j.FinishedAt - j.StartedAt)
	}
	m.met.turnaround.Observe(j.FinishedAt - j.SubmittedAt)
	verdict := "UNKNOWN"
	switch status {
	case solver.StatusSAT:
		verdict = "SAT"
	case solver.StatusUNSAT:
		verdict = "UNSAT"
	}
	m.femit(trace.FEvent{Kind: trace.FEvJobDone, Job: j.ID, Detail: verdict})
	m.log.Info("job finished", "job", j.ID, "verdict", verdict,
		"turnaround", j.TurnaroundSec(), "preemptions", j.Preemptions)
	if status == solver.StatusUnknown && m.cfg.BundleDir != "" {
		// A job that ends without a verdict (lost client, invalid model)
		// is exactly what a postmortem bundle is for.
		m.captureBundle(fmt.Sprintf("job-%d-failed", j.ID))
	}
	m.releaseJob(j)
	m.maybeRebalance()
}

// releaseJob drops a terminal job's in-flight transfers and stops its
// clients: reserved recipients are released immediately; busy clients
// get StopWork and stay busy master-side until their idle ack, so new
// work is never raced against a still-running solver. Event-loop only.
func (m *Master) releaseJob(j *masterJob) {
	for id, g := range m.pendingSplits {
		if g.job != j.ID {
			continue
		}
		for _, rid := range g.recipients {
			if g.settled[rid] {
				continue
			}
			if r := m.clients[rid]; r != nil {
				r.reserved = false
			}
		}
		delete(m.pendingSplits, id)
	}
	for cid, entry := range m.pendingAssigns {
		if entry.job == j.ID {
			delete(m.pendingAssigns, cid)
		}
	}
	for _, c := range m.clients {
		if c.job != j.ID || !c.busy || c.preempting {
			continue
		}
		c.preempting = true
		c.stopSeq++
		m.send(c, comm.StopWork{Job: j.ID, Seq: c.stopSeq})
	}
}

// Service wraps a serving master with its HTTP/JSON job API. Install the
// routes by passing Endpoints() through MasterConfig.ExtraEndpoints (the
// gridsat serve command does this), so the API shares the introspection
// server with /metrics, /status and /progress. Because ExtraEndpoints is
// consumed by NewMaster, the service supports late binding: build it
// unbound with NewService(nil), hand Endpoints() to the config, then
// Attach the constructed master. Requests landing in the gap get 503.
type Service struct {
	m atomic.Pointer[Master]
}

// NewService builds the HTTP facade; m may be nil if Attach follows.
func NewService(m *Master) *Service {
	s := &Service{}
	if m != nil {
		s.m.Store(m)
	}
	return s
}

// Attach binds (or rebinds) the master the endpoints serve.
func (s *Service) Attach(m *Master) { s.m.Store(m) }

// master fetches the bound master, answering 503 when there is none yet.
func (s *Service) master(w http.ResponseWriter) *Master {
	m := s.m.Load()
	if m == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("core: job service not attached yet"))
	}
	return m
}

// submitResponse is the POST /jobs reply.
type submitResponse struct {
	ID int `json:"id"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Line is the 1-based parse position for malformed-DIMACS rejections
	// (omitted otherwise).
	Line int `json:"line,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// Endpoints returns the job API routes:
//
//	POST /jobs?name=N&priority=P   submit a DIMACS CNF body; returns {"id": n}
//	GET  /jobs                     list all jobs (submission order)
//	GET  /jobs/{id}                one job's status
//	POST /jobs/{id}/cancel         cancel a queued or running job
//	GET  /jobs/{id}/result         status incl. a SAT model; 404 unknown id
func (s *Service) Endpoints() []obs.Endpoint {
	return []obs.Endpoint{
		{Path: "POST /jobs", H: s.handleSubmit},
		{Path: "GET /jobs", H: s.handleList},
		{Path: "GET /jobs/{id}", H: s.handleJob(false)},
		{Path: "GET /jobs/{id}/result", H: s.handleJob(true)},
		{Path: "POST /jobs/{id}/cancel", H: s.handleCancel},
	}
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	m := s.master(w)
	if m == nil {
		return
	}
	f, err := cnf.ParseDIMACS(r.Body)
	if err != nil {
		resp := errorResponse{Error: fmt.Errorf("parse DIMACS body: %w", err).Error()}
		var pe *cnf.ParseError
		if errors.As(err, &pe) {
			resp.Line = pe.Line
		}
		writeJSON(w, http.StatusBadRequest, resp)
		return
	}
	priority := 1
	if p := r.URL.Query().Get("priority"); p != "" {
		priority, err = strconv.Atoi(p)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("priority: %w", err))
			return
		}
	}
	id, err := m.Submit(r.URL.Query().Get("name"), f, priority)
	if err != nil {
		// Admission rejections are the caller's problem, not the server's.
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{ID: id})
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	m := s.master(w)
	if m == nil {
		return
	}
	writeJSON(w, http.StatusOK, m.Jobs())
}

func (s *Service) handleJob(withModel bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m := s.master(w)
		if m == nil {
			return
		}
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		snap, err := m.JobStatus(id, withModel)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	m := s.master(w)
	if m == nil {
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := m.CancelJob(id); err != nil {
		if errors.Is(err, ErrNoSuchJob) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "cancelled"})
}
