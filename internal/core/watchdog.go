package core

import (
	"fmt"
	"sort"
)

// The anomaly watchdog evaluates a small rule set over the sampled
// history window and turns slow-burn failures — a search that stopped
// covering space, a client that stopped answering, memory creeping
// toward the budget — into explicit alerts before they become a stuck
// or dead run. Rules are pure functions over WatchSample windows so
// they are table-testable and behave identically in the live master
// (wall seconds) and the DES (virtual seconds).

// WatchdogConfig holds per-rule thresholds. Zero fields take the
// defaults from DefaultWatchdogConfig; a negative threshold disables
// that rule.
type WatchdogConfig struct {
	// StallWindowSec fires progress-stall when cluster coverage is flat
	// across a window of at least this span while >= StallMinBusy
	// clients stayed busy the whole time.
	StallWindowSec float64 `json:"stall_window_sec"`
	StallMinBusy   int     `json:"stall_min_busy"`
	// StragglerWindowSec fires straggler-persist when the same client
	// is marked a straggler in every sample across the window.
	StragglerWindowSec float64 `json:"straggler_window_sec"`
	// MemWindowSec/MemGrowthFactor fire mem-pressure when cluster
	// memory grew by at least the factor across the window and the
	// current total is at least MemMinBytes (the floor keeps tiny
	// absolute growth from alerting at startup).
	MemWindowSec    float64 `json:"mem_window_sec"`
	MemGrowthFactor float64 `json:"mem_growth_factor"`
	MemMinBytes     int64   `json:"mem_min_bytes"`
	// HeartbeatGapSec fires heartbeat-gap when a busy client has not
	// reported for this long.
	HeartbeatGapSec float64 `json:"heartbeat_gap_sec"`
	// CooldownSec suppresses re-firing the same (rule, subject) pair
	// until this much time has passed since it last fired.
	CooldownSec float64 `json:"cooldown_sec"`
}

// DefaultWatchdogConfig returns the thresholds documented in DESIGN.md.
// They are interpreted as wall seconds in the live master and virtual
// seconds in the DES.
func DefaultWatchdogConfig() WatchdogConfig {
	return WatchdogConfig{
		StallWindowSec:     60,
		StallMinBusy:       1,
		StragglerWindowSec: 45,
		MemWindowSec:       120,
		MemGrowthFactor:    1.5,
		MemMinBytes:        256 << 20,
		HeartbeatGapSec:    15,
		CooldownSec:        60,
	}
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	d := DefaultWatchdogConfig()
	if c.StallWindowSec == 0 {
		c.StallWindowSec = d.StallWindowSec
	}
	if c.StallMinBusy == 0 {
		c.StallMinBusy = d.StallMinBusy
	}
	if c.StragglerWindowSec == 0 {
		c.StragglerWindowSec = d.StragglerWindowSec
	}
	if c.MemWindowSec == 0 {
		c.MemWindowSec = d.MemWindowSec
	}
	if c.MemGrowthFactor == 0 {
		c.MemGrowthFactor = d.MemGrowthFactor
	}
	if c.MemMinBytes == 0 {
		c.MemMinBytes = d.MemMinBytes
	}
	if c.HeartbeatGapSec == 0 {
		c.HeartbeatGapSec = d.HeartbeatGapSec
	}
	if c.CooldownSec == 0 {
		c.CooldownSec = d.CooldownSec
	}
	return c
}

// maxWindowSec is the widest span any rule looks back over, i.e. how
// much history the watchdog must retain.
func (c WatchdogConfig) maxWindowSec() float64 {
	w := c.StallWindowSec
	if c.StragglerWindowSec > w {
		w = c.StragglerWindowSec
	}
	if c.MemWindowSec > w {
		w = c.MemWindowSec
	}
	if c.HeartbeatGapSec > w {
		w = c.HeartbeatGapSec
	}
	return w
}

// WatchClient is one client's slice of a watch sample.
type WatchClient struct {
	ID               int     `json:"id"`
	Busy             bool    `json:"busy"`
	Straggler        bool    `json:"straggler"`
	LastHeartbeatSec float64 `json:"last_heartbeat_sec"`
	MemBytes         int64   `json:"mem_bytes"`
}

// WatchSample is one tick of cluster state as the watchdog sees it.
type WatchSample struct {
	TSec     float64       `json:"t_sec"`
	Coverage float64       `json:"coverage"`
	Busy     int           `json:"busy"`
	MemBytes int64         `json:"mem_bytes"`
	Clients  []WatchClient `json:"clients,omitempty"`
}

// Rule names, used as the Alert.Rule discriminator and in FEvAnomaly
// details.
const (
	RuleProgressStall    = "progress-stall"
	RuleStragglerPersist = "straggler-persist"
	RuleMemPressure      = "mem-pressure"
	RuleHeartbeatGap     = "heartbeat-gap"
)

// Alert is one fired watchdog rule.
type Alert struct {
	Rule    string  `json:"rule"`
	Subject string  `json:"subject"` // "cluster" or "client N"
	Client  int     `json:"client,omitempty"`
	TSec    float64 `json:"t_sec"`
	Detail  string  `json:"detail"`
}

// evalWatchdog evaluates every rule against the window (oldest-first
// samples) and returns the alerts that hold at the newest sample. It is
// pure: cooldown/dedup is the caller's (watchdog.observe) concern.
func evalWatchdog(cfg WatchdogConfig, win []WatchSample) []Alert {
	if len(win) == 0 {
		return nil
	}
	var out []Alert
	last := win[len(win)-1]

	// progress-stall: coverage flat over the stall window while enough
	// clients stayed busy for the whole span.
	if cfg.StallWindowSec > 0 {
		if i, ok := windowStart(win, cfg.StallWindowSec); ok {
			flat, busyAll := true, true
			for _, s := range win[i:] {
				if s.Coverage > win[i].Coverage+1e-12 {
					flat = false
				}
				if s.Busy < cfg.StallMinBusy {
					busyAll = false
				}
			}
			if flat && busyAll {
				out = append(out, Alert{
					Rule: RuleProgressStall, Subject: "cluster", TSec: last.TSec,
					Detail: fmt.Sprintf("coverage flat at %.6f for %.0fs with %d clients busy",
						last.Coverage, last.TSec-win[i].TSec, last.Busy),
				})
			}
		}
	}

	// straggler-persist: the same client flagged in every sample across
	// the straggler window.
	if cfg.StragglerWindowSec > 0 {
		if i, ok := windowStart(win, cfg.StragglerWindowSec); ok {
			always := map[int]bool{}
			for _, c := range win[i].Clients {
				if c.Straggler {
					always[c.ID] = true
				}
			}
			for _, s := range win[i+1:] {
				seen := map[int]bool{}
				for _, c := range s.Clients {
					if c.Straggler {
						seen[c.ID] = true
					}
				}
				for id := range always {
					if !seen[id] {
						delete(always, id)
					}
				}
			}
			ids := make([]int, 0, len(always))
			for id := range always {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			for _, id := range ids {
				out = append(out, Alert{
					Rule: RuleStragglerPersist, Subject: fmt.Sprintf("client %d", id),
					Client: id, TSec: last.TSec,
					Detail: fmt.Sprintf("client %d below straggler threshold for %.0fs",
						id, last.TSec-win[i].TSec),
				})
			}
		}
	}

	// mem-pressure: cluster memory grew by the factor over the window
	// and is above the absolute floor.
	if cfg.MemWindowSec > 0 && cfg.MemGrowthFactor > 0 {
		if i, ok := windowStart(win, cfg.MemWindowSec); ok {
			base := win[i].MemBytes
			if last.MemBytes >= cfg.MemMinBytes && base > 0 &&
				float64(last.MemBytes) >= cfg.MemGrowthFactor*float64(base) {
				out = append(out, Alert{
					Rule: RuleMemPressure, Subject: "cluster", TSec: last.TSec,
					Detail: fmt.Sprintf("cluster memory %d -> %d bytes (%.2fx) over %.0fs",
						base, last.MemBytes, float64(last.MemBytes)/float64(base),
						last.TSec-win[i].TSec),
				})
			}
		}
	}

	// heartbeat-gap: a busy client silent past the gap threshold, judged
	// on the newest sample only.
	if cfg.HeartbeatGapSec > 0 {
		for _, c := range last.Clients {
			if c.Busy && last.TSec-c.LastHeartbeatSec > cfg.HeartbeatGapSec {
				out = append(out, Alert{
					Rule: RuleHeartbeatGap, Subject: fmt.Sprintf("client %d", c.ID),
					Client: c.ID, TSec: last.TSec,
					Detail: fmt.Sprintf("client %d busy but silent for %.1fs",
						c.ID, last.TSec-c.LastHeartbeatSec),
				})
			}
		}
	}
	return out
}

// windowStart finds the earliest sample index whose span to the newest
// sample covers windowSec. ok is false when the history is still too
// short to judge the rule, which keeps rules quiet during warm-up.
func windowStart(win []WatchSample, windowSec float64) (int, bool) {
	last := win[len(win)-1].TSec
	if last-win[0].TSec < windowSec {
		return 0, false
	}
	i := 0
	for i+1 < len(win) && last-win[i+1].TSec >= windowSec {
		i++
	}
	return i, true
}

// watchdog is the stateful wrapper: it retains the sample window, runs
// the pure evaluator each tick, and applies per-(rule,subject) cooldown
// so a persistent condition produces one alert per cooldown period, not
// one per tick. Owned by a single goroutine (the master event loop or
// the DES monitor); the alert feed is read through copies.
type watchdog struct {
	cfg       WatchdogConfig
	win       []WatchSample
	lastFired map[string]float64
	alerts    []Alert // retained feed, newest last, capped
}

const watchdogFeedCap = 256

func newWatchdog(cfg WatchdogConfig) *watchdog {
	return &watchdog{cfg: cfg.withDefaults(), lastFired: make(map[string]float64)}
}

// observe appends a sample, trims the window, and returns the alerts
// that newly fired this tick (cooldown-filtered).
func (w *watchdog) observe(s WatchSample) []Alert {
	w.win = append(w.win, s)
	// Keep one sample older than the widest rule window so windowStart
	// always has a baseline, then trim.
	keepFrom := 0
	for keepFrom+1 < len(w.win) && s.TSec-w.win[keepFrom+1].TSec > w.cfg.maxWindowSec() {
		keepFrom++
	}
	if keepFrom > 0 {
		w.win = append(w.win[:0], w.win[keepFrom:]...)
	}
	var fired []Alert
	for _, a := range evalWatchdog(w.cfg, w.win) {
		key := a.Rule + "|" + a.Subject
		if t, ok := w.lastFired[key]; ok && a.TSec-t < w.cfg.CooldownSec {
			continue
		}
		w.lastFired[key] = a.TSec
		fired = append(fired, a)
	}
	if len(fired) > 0 {
		w.alerts = append(w.alerts, fired...)
		if n := len(w.alerts) - watchdogFeedCap; n > 0 {
			w.alerts = append(w.alerts[:0], w.alerts[n:]...)
		}
	}
	return fired
}

// feed returns a copy of the retained alert feed, oldest first.
func (w *watchdog) feed() []Alert {
	out := make([]Alert, len(w.alerts))
	copy(out, w.alerts)
	return out
}
