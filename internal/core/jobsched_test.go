package core

import (
	"testing"

	"gridsat/internal/gen"
)

func shares(prios ...int) []SchedShare {
	out := make([]SchedShare, len(prios))
	for i, p := range prios {
		out[i] = SchedShare{JobID: i + 1, Priority: p}
	}
	return out
}

func allocSum(m map[int]int) int {
	s := 0
	for _, n := range m {
		s += n
	}
	return s
}

func TestParseSchedPolicy(t *testing.T) {
	for name, want := range map[string]string{
		"": "fifo", "fifo": "fifo", "fair-share": "fair-share", "priority": "priority",
	} {
		p, err := ParseSchedPolicy(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("%q parsed as %q", name, p.Name())
		}
	}
	if _, err := ParseSchedPolicy("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestFIFOAllocatesOldestFirst: FIFO is run-to-completion in submission
// order — the whole pool to job 1, spillover only past its demand cap.
func TestFIFOAllocatesOldestFirst(t *testing.T) {
	p, _ := ParseSchedPolicy("fifo")
	got := p.Allocate(shares(1, 9, 5), 6)
	if got[1] != 6 || got[2] != 0 || got[3] != 0 {
		t.Fatalf("fifo allocation %v", got)
	}
	// A demand-capped head job spills the rest to the next in line.
	jobs := shares(1, 1, 1)
	jobs[0].Demand = 2
	got = p.Allocate(jobs, 6)
	if got[1] != 2 || got[2] != 4 {
		t.Fatalf("fifo with demand cap: %v", got)
	}
}

// TestFairShareSplitsEvenly: equal shares with the remainder to the
// earliest-submitted jobs, never exceeding the pool.
func TestFairShareSplitsEvenly(t *testing.T) {
	p, _ := ParseSchedPolicy("fair-share")
	got := p.Allocate(shares(1, 9, 5), 7)
	if got[1] != 3 || got[2] != 2 || got[3] != 2 {
		t.Fatalf("fair-share allocation %v", got)
	}
	if allocSum(got) != 7 {
		t.Fatalf("allocated %d of 7", allocSum(got))
	}
	// Fewer clients than jobs: earliest jobs win, none goes negative.
	got = p.Allocate(shares(1, 1, 1, 1), 2)
	if allocSum(got) != 2 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("scarce fair-share: %v", got)
	}
}

// TestPriorityWeighted: allocation tracks priority proportionally
// (largest remainder), and a zero/absent priority defaults to weight 1.
func TestPriorityWeighted(t *testing.T) {
	p, _ := ParseSchedPolicy("priority")
	got := p.Allocate(shares(3, 1), 8)
	if got[1] != 6 || got[2] != 2 {
		t.Fatalf("priority 3:1 over 8 clients: %v", got)
	}
	got = p.Allocate(shares(0, 0), 4)
	if got[1] != 2 || got[2] != 2 {
		t.Fatalf("defaulted weights: %v", got)
	}
	// Demand caps redirect surplus to jobs that can still use clients.
	jobs := shares(10, 1)
	jobs[0].Demand = 3
	got = p.Allocate(jobs, 8)
	if got[1] != 3 || got[2] != 5 {
		t.Fatalf("demand-capped priority: %v", got)
	}
}

// TestAllocateDeterministic: policies are pure functions — same input,
// same allocation — which the DES replay verifier depends on.
func TestAllocateDeterministic(t *testing.T) {
	jobs := shares(2, 7, 7, 1, 4)
	for _, name := range []string{"fifo", "fair-share", "priority"} {
		p, _ := ParseSchedPolicy(name)
		a := p.Allocate(jobs, 13)
		for i := 0; i < 10; i++ {
			b := p.Allocate(jobs, 13)
			if len(a) != len(b) {
				t.Fatalf("%s: nondeterministic allocation", name)
			}
			for k, v := range a {
				if b[k] != v {
					t.Fatalf("%s: job %d got %d then %d", name, k, v, b[k])
				}
			}
		}
		if allocSum(a) > 13 {
			t.Fatalf("%s over-allocated: %v", name, a)
		}
	}
}

// TestAdmissionControl covers both axes: the client-count-derived active
// cap and the formula memory budget.
func TestAdmissionControl(t *testing.T) {
	// Client-count cap: 10 clients → 10 active jobs max.
	a := Admission{}
	if err := a.Admit(1000, 9, 0, 10); err != nil {
		t.Fatalf("under the cap rejected: %v", err)
	}
	if err := a.Admit(1000, 10, 0, 10); err == nil {
		t.Fatal("11th active job admitted with 10 clients")
	}
	// The DefaultMaxActive floor lets an empty cluster queue work.
	if err := a.Admit(1000, DefaultMaxActive-1, 0, 0); err != nil {
		t.Fatalf("queue below floor rejected: %v", err)
	}
	if err := a.Admit(1000, DefaultMaxActive, 0, 0); err == nil {
		t.Fatal("queue above floor admitted")
	}
	// Explicit cap overrides the derived one.
	b := Admission{MaxActive: 2}
	if err := b.Admit(1000, 2, 0, 50); err == nil {
		t.Fatal("explicit MaxActive ignored")
	}
	// Memory budget.
	c := Admission{MaxActive: 100, MemBudgetBytes: 10_000}
	if err := c.Admit(4000, 1, 5000, 10); err != nil {
		t.Fatalf("in-budget job rejected: %v", err)
	}
	if err := c.Admit(6000, 1, 5000, 10); err == nil {
		t.Fatal("over-budget job admitted")
	}
}

func TestFormulaMemBytes(t *testing.T) {
	if FormulaMemBytes(nil) != 0 {
		t.Fatal("nil formula has a footprint")
	}
	small := FormulaMemBytes(gen.Pigeonhole(4))
	big := FormulaMemBytes(gen.Pigeonhole(10))
	if small <= 0 || big <= small {
		t.Fatalf("footprints not monotone: ph4=%d ph10=%d", small, big)
	}
}

func TestJobLifecycleStates(t *testing.T) {
	for s, want := range map[JobState]string{
		JobQueued: "queued", JobRunning: "running", JobPreempted: "preempted",
		JobDone: "done", JobCancelled: "cancelled",
	} {
		if s.String() != want {
			t.Errorf("%d renders as %q, want %q", s, s, want)
		}
	}
	for _, s := range []JobState{JobQueued, JobRunning, JobPreempted} {
		if !s.Active() {
			t.Errorf("%v should be active", s)
		}
	}
	for _, s := range []JobState{JobDone, JobCancelled} {
		if s.Active() {
			t.Errorf("%v should be terminal", s)
		}
	}
	j := &Job{SubmittedAt: 2, FinishedAt: 10, State: JobDone}
	if j.TurnaroundSec() != 8 {
		t.Fatalf("turnaround %v", j.TurnaroundSec())
	}
	j.State = JobRunning
	if j.TurnaroundSec() != 0 {
		t.Fatal("unfinished job has a turnaround")
	}
}
