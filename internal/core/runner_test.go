package core

import (
	"testing"
	"time"

	"gridsat/internal/brute"
	"gridsat/internal/cnf"
	"gridsat/internal/gen"
	"gridsat/internal/grid"
	"gridsat/internal/solver"
)

func desConfig(f *cnf.Formula, timeout float64) RunnerConfig {
	return RunnerConfig{
		Grid:         grid.TestbedGrADS(1),
		Formula:      f,
		TimeoutVSec:  timeout,
		PropsPerVSec: 1000,
		QuantumProps: 5000,
		ShareMaxLen:  10,
		MasterHostID: -1,
		Seed:         1,
	}
}

func TestRunSequentialSolves(t *testing.T) {
	f := gen.Pigeonhole(8)
	res := RunSequential(desConfig(f, 10_000))
	if res.Outcome != OutcomeSolved || res.Status != solver.StatusUNSAT {
		t.Fatalf("got %v/%v", res.Outcome, res.Status)
	}
	if res.VSec <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if res.TotalProps == 0 {
		t.Fatal("no work recorded")
	}
}

func TestRunSequentialSAT(t *testing.T) {
	f := gen.RandomKSAT(50, 210, 3, 5)
	res := RunSequential(desConfig(f, 10_000))
	if res.Outcome != OutcomeSolved {
		t.Fatalf("got %v", res.Outcome)
	}
	if res.Status == solver.StatusSAT {
		if err := f.Verify(res.Model); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunSequentialTimeout(t *testing.T) {
	f := gen.Pigeonhole(10)
	res := RunSequential(desConfig(f, 5)) // 5 virtual seconds: hopeless
	if res.Outcome != OutcomeTimeout {
		t.Fatalf("got %v after %v vsec", res.Outcome, res.VSec)
	}
}

func TestRunSequentialMemOut(t *testing.T) {
	cfg := desConfig(gen.Pigeonhole(10), 100_000)
	cfg.MemDivisor = 20_000 // starve the baseline
	res := RunSequential(cfg)
	if res.Outcome != OutcomeMemOut {
		t.Fatalf("got %v", res.Outcome)
	}
}

func TestRunDistributedUNSAT(t *testing.T) {
	f := gen.Pigeonhole(8)
	res := RunDistributed(desConfig(f, 10_000))
	if res.Outcome != OutcomeSolved || res.Status != solver.StatusUNSAT {
		t.Fatalf("got %v/%v", res.Outcome, res.Status)
	}
	if res.MaxClients < 1 {
		t.Fatal("no clients went busy")
	}
}

func TestRunDistributedSAT(t *testing.T) {
	f := gen.RandomKSAT(60, 255, 3, 9)
	res := RunDistributed(desConfig(f, 10_000))
	if res.Outcome != OutcomeSolved {
		t.Fatalf("got %v", res.Outcome)
	}
	if res.Status == solver.StatusSAT {
		if err := f.Verify(res.Model); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunDistributedAgainstBrute(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		f := gen.RandomKSAT(20, 85, 3, seed)
		want, _ := brute.Solve(f, 0)
		res := RunDistributed(desConfig(f, 10_000))
		if res.Outcome != OutcomeSolved {
			t.Fatalf("seed %d: %v", seed, res.Outcome)
		}
		if (res.Status == solver.StatusSAT) != (want == brute.SAT) {
			t.Fatalf("seed %d: DES says %v, brute %v", seed, res.Status, want)
		}
	}
}

func TestRunDistributedDeterministic(t *testing.T) {
	f := gen.Pigeonhole(8)
	a := RunDistributed(desConfig(f, 10_000))
	b := RunDistributed(desConfig(f, 10_000))
	if a.VSec != b.VSec || a.Splits != b.Splits || a.MaxClients != b.MaxClients ||
		a.Shared != b.Shared || a.TotalProps != b.TotalProps {
		t.Fatalf("nondeterministic DES: %+v vs %+v", a, b)
	}
}

func TestRunDistributedSplitsOnHardInstance(t *testing.T) {
	f := gen.Pigeonhole(9)
	cfg := desConfig(f, 10_000)
	cfg.SplitTimeoutVSec = 5
	// Pigeonhole learns long clauses, and globally valid exports carry
	// their guiding-path literals; a wider share bound keeps them flowing.
	cfg.ShareMaxLen = 40
	res := RunDistributed(cfg)
	if res.Outcome != OutcomeSolved {
		t.Fatalf("got %v", res.Outcome)
	}
	if res.Splits == 0 || res.MaxClients < 2 {
		t.Fatalf("no parallelism: splits=%d maxClients=%d", res.Splits, res.MaxClients)
	}
	if res.MaxClients > 34 {
		t.Fatalf("max clients %d exceeds the 34-host testbed", res.MaxClients)
	}
	if res.Shared == 0 {
		t.Fatal("no clauses shared")
	}
}

func TestRunDistributedTimeout(t *testing.T) {
	f := gen.Pigeonhole(11)
	cfg := desConfig(f, 30)
	res := RunDistributed(cfg)
	if res.Outcome != OutcomeTimeout {
		t.Fatalf("got %v at %v vsec", res.Outcome, res.VSec)
	}
	if res.VSec > 30 {
		t.Fatalf("vsec %v exceeds budget", res.VSec)
	}
}

func TestRunDistributedSpeedupOnHardUNSAT(t *testing.T) {
	// A hard unstructured instance must run faster in virtual time on the
	// grid than sequentially — the core Table-1 phenomenon.
	f := gen.RandomKSAT(190, 809, 3, 1)
	cfg := desConfig(f, 100_000)
	seq := RunSequential(cfg)
	dist := RunDistributed(cfg)
	if seq.Outcome != OutcomeSolved || dist.Outcome != OutcomeSolved {
		t.Fatalf("outcomes: seq=%v dist=%v", seq.Outcome, dist.Outcome)
	}
	if dist.VSec >= seq.VSec {
		t.Errorf("no speedup: seq=%.1f vsec dist=%.1f vsec", seq.VSec, dist.VSec)
	}
	t.Logf("seq=%.1f dist=%.1f speedup=%.2f maxClients=%d splits=%d shared=%d",
		seq.VSec, dist.VSec, seq.VSec/dist.VSec, dist.MaxClients, dist.Splits, dist.Shared)
}

func TestRunDistributedSlowdownOnSymmetricInstance(t *testing.T) {
	// Pigeonhole's symmetric search space defeats guiding-path splitting:
	// every half is nearly as hard as the whole, so the grid run wastes
	// work — the paper's grid_10_20 row (0.31x) shows exactly this.
	f := gen.Pigeonhole(9)
	cfg := desConfig(f, 100_000)
	cfg.SplitTimeoutVSec = 5
	seq := RunSequential(cfg)
	dist := RunDistributed(cfg)
	if seq.Outcome != OutcomeSolved || dist.Outcome != OutcomeSolved {
		t.Fatalf("outcomes: seq=%v dist=%v", seq.Outcome, dist.Outcome)
	}
	t.Logf("seq=%.1f dist=%.1f ratio=%.2f splits=%d", seq.VSec, dist.VSec, seq.VSec/dist.VSec, dist.Splits)
	if dist.Splits == 0 {
		t.Error("expected heavy splitting on the symmetric instance")
	}
}

func TestRunDistributedOverheadOnTinyInstance(t *testing.T) {
	// Tiny instances pay the client-launch overhead: the paper's glassy
	// row ran 7 s sequentially but 68 s on the grid.
	f := gen.RandomKSAT(60, 255, 3, 42)
	cfg := desConfig(f, 10_000)
	seq := RunSequential(cfg)
	dist := RunDistributed(cfg)
	if seq.Outcome != OutcomeSolved || dist.Outcome != OutcomeSolved {
		t.Fatalf("outcomes: seq=%v dist=%v", seq.Outcome, dist.Outcome)
	}
	if dist.VSec <= seq.VSec {
		t.Errorf("tiny instance showed speedup (%.2f vs %.2f); launch overhead missing",
			dist.VSec, seq.VSec)
	}
}

func TestRunDistributedBatchCanceledWhenSolvedEarly(t *testing.T) {
	g := grid.TestbedTable2(1)
	g.AddBlueHorizon(16)
	f := gen.Pigeonhole(8)
	cfg := desConfig(f, 100_000)
	cfg.Grid = g
	cfg.Batch = &BatchPlan{Nodes: 16, WalltimeVSec: 720, MeanQueueWaitVSec: 50_000}
	res := RunDistributed(cfg)
	if res.Outcome != OutcomeSolved {
		t.Fatalf("got %v", res.Outcome)
	}
	if !res.BatchCanceled {
		t.Error("batch job not canceled despite early solve")
	}
	if res.BatchStartVSec != 0 {
		t.Error("batch reported a start despite cancellation")
	}
}

func TestRunDistributedBatchNodesJoin(t *testing.T) {
	g := grid.TestbedTable2(2)
	g.AddBlueHorizon(16)
	f := gen.Pigeonhole(10) // hard enough to outlast the short queue wait
	cfg := desConfig(f, 100_000)
	cfg.Grid = g
	cfg.SplitTimeoutVSec = 5
	cfg.MaxClients = 4
	cfg.Batch = &BatchPlan{Nodes: 16, WalltimeVSec: 100_000, MeanQueueWaitVSec: 20}
	res := RunDistributed(cfg)
	if res.Outcome != OutcomeSolved {
		t.Fatalf("got %v", res.Outcome)
	}
	if res.BatchStartVSec <= 0 {
		t.Fatal("batch job never started")
	}
	if res.MaxClients <= 4 {
		t.Errorf("batch nodes never went busy: maxClients=%d", res.MaxClients)
	}
}

func TestRunDistributedBatchTerminateOnEnd(t *testing.T) {
	g := grid.TestbedTable2(3)
	g.AddBlueHorizon(8)
	f := gen.Pigeonhole(12) // far beyond the budgets
	cfg := desConfig(f, 100_000)
	cfg.Grid = g
	cfg.Batch = &BatchPlan{Nodes: 8, WalltimeVSec: 30, MeanQueueWaitVSec: 20, TerminateOnEnd: true}
	res := RunDistributed(cfg)
	if res.Outcome != OutcomeTimeout {
		t.Fatalf("got %v", res.Outcome)
	}
	// The run must have ended near the batch end, far before the timeout.
	if res.VSec > 10_000 {
		t.Errorf("run did not terminate with the batch job (vsec=%v)", res.VSec)
	}
}

func TestSimOutcomeString(t *testing.T) {
	if OutcomeSolved.String() != "solved" || OutcomeTimeout.String() != "TIME_OUT" ||
		OutcomeMemOut.String() != "MEM_OUT" || SimOutcome(9).String() != "unknown" {
		t.Error("SimOutcome strings wrong")
	}
}

// TestRunDistributedCrashRecovery kills busy clients mid-run; the master
// must recover their subproblems from light checkpoints and still reach
// the correct answer (the paper's §3.4 fault-tolerance extension).
func TestRunDistributedCrashRecovery(t *testing.T) {
	f := gen.Pigeonhole(9)
	cfg := desConfig(f, 100_000)
	cfg.SplitTimeoutVSec = 5
	cfg.Failures = []FailurePlan{
		{HostID: 0, AtVSec: 30},
		{HostID: 1, AtVSec: 45},
		{HostID: 5, AtVSec: 60},
	}
	res := RunDistributed(cfg)
	if res.Outcome != OutcomeSolved || res.Status != solver.StatusUNSAT {
		t.Fatalf("crash run: %v/%v", res.Outcome, res.Status)
	}
}

// TestRunDistributedCrashRecoveryPreservesAnswer cross-checks SAT/UNSAT
// against the oracle with failures injected.
func TestRunDistributedCrashRecoveryPreservesAnswer(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		f := gen.RandomKSAT(20, 85, 3, seed)
		want, _ := brute.Solve(f, 0)
		cfg := desConfig(f, 100_000)
		cfg.SplitTimeoutVSec = 2
		cfg.Failures = []FailurePlan{{HostID: 0, AtVSec: 10}, {HostID: 2, AtVSec: 14}}
		res := RunDistributed(cfg)
		if res.Outcome != OutcomeSolved {
			t.Fatalf("seed %d: %v", seed, res.Outcome)
		}
		if (res.Status == solver.StatusSAT) != (want == brute.SAT) {
			t.Fatalf("seed %d: got %v, brute %v", seed, res.Status, want)
		}
	}
}

// TestRunDistributedAllClientsCrash: losing every client (and every piece
// to orphan recovery with no survivors) must not deadlock — the run times
// out rather than hanging.
func TestRunDistributedIdleCrashIgnored(t *testing.T) {
	f := gen.RandomKSAT(30, 128, 3, 3)
	cfg := desConfig(f, 5_000)
	// Kill hosts that are almost certainly idle at t=1 (before launch).
	cfg.Failures = []FailurePlan{{HostID: 30, AtVSec: 1}, {HostID: 31, AtVSec: 1}}
	res := RunDistributed(cfg)
	if res.Outcome != OutcomeSolved {
		t.Fatalf("idle crashes broke the run: %v", res.Outcome)
	}
}

// TestRunDistributedMigration: when far better resources join (dedicated
// batch nodes), the master migrates a long-running subproblem to them —
// the paper's §3.4 policy.
func TestRunDistributedMigration(t *testing.T) {
	g := grid.TestbedTable2(4)
	// Handicap the interactive hosts so the batch nodes dominate.
	for _, h := range g.Hosts {
		h.Speed = 0.3
		h.MemBytes = 64 << 20
		h.BaseAvail = 0.4
	}
	g.AddBlueHorizon(8)
	f := gen.Pigeonhole(10)
	cfg := desConfig(f, 100_000)
	cfg.Grid = g
	cfg.MaxClients = 2
	cfg.MigrationFactor = 2
	cfg.MonitorPeriodVSec = 10
	cfg.Batch = &BatchPlan{Nodes: 8, WalltimeVSec: 100_000, MeanQueueWaitVSec: 15}
	res := RunDistributed(cfg)
	if res.Outcome != OutcomeSolved {
		t.Fatalf("got %v", res.Outcome)
	}
	if res.Migrations == 0 {
		t.Error("no migrations despite dominant idle batch nodes")
	}
}

// TestRunDistributedMigrationPreservesAnswer cross-checks against brute.
func TestRunDistributedMigrationPreservesAnswer(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		f := gen.RandomKSAT(20, 85, 3, seed)
		want, _ := brute.Solve(f, 0)
		cfg := desConfig(f, 100_000)
		cfg.MigrationFactor = 1.2
		cfg.MonitorPeriodVSec = 5
		cfg.SplitTimeoutVSec = 2
		res := RunDistributed(cfg)
		if res.Outcome != OutcomeSolved {
			t.Fatalf("seed %d: %v", seed, res.Outcome)
		}
		if (res.Status == solver.StatusSAT) != (want == brute.SAT) {
			t.Fatalf("seed %d: got %v, brute %v", seed, res.Status, want)
		}
	}
}

// TestRunDistributedTimeline checks the paper's described active-client
// curve: starts at one client, peaks at MaxClients, collapses to zero.
func TestRunDistributedTimeline(t *testing.T) {
	f := gen.Pigeonhole(9)
	cfg := desConfig(f, 100_000)
	cfg.SplitTimeoutVSec = 5
	res := RunDistributed(cfg)
	if res.Outcome != OutcomeSolved {
		t.Fatalf("got %v", res.Outcome)
	}
	tl := res.Timeline
	if len(tl) < 3 {
		t.Fatalf("timeline too sparse: %v", tl)
	}
	if tl[0].Busy != 1 {
		t.Errorf("run started with %d busy clients, want 1", tl[0].Busy)
	}
	if tl[len(tl)-1].Busy != 0 {
		t.Errorf("run ended with %d busy clients, want 0", tl[len(tl)-1].Busy)
	}
	peak := 0
	for i, p := range tl {
		if p.Busy > peak {
			peak = p.Busy
		}
		if i > 0 && p.VSec < tl[i-1].VSec {
			t.Fatal("timeline not time-ordered")
		}
	}
	if peak != res.MaxClients {
		t.Errorf("timeline peak %d != MaxClients %d", peak, res.MaxClients)
	}
}

// TestLiveAndSimulatedRuntimesAgree cross-validates the two runtimes: the
// goroutine/transport implementation and the DES must reach the same
// SAT/UNSAT verdicts (they share policies but none of the execution code).
func TestLiveAndSimulatedRuntimesAgree(t *testing.T) {
	for seed := int64(60); seed < 66; seed++ {
		f := gen.RandomKSAT(25, 106, 3, seed)
		sim := RunDistributed(desConfig(f, 100_000))
		if sim.Outcome != OutcomeSolved {
			t.Fatalf("seed %d: DES %v", seed, sim.Outcome)
		}
		live, err := Solve(f, JobConfig{
			Clients:        3,
			ClientMemBytes: 64 << 20,
			ShareMaxLen:    10,
			Timeout:        time.Minute,
			MinRunTime:     5 * time.Millisecond,
			SliceConflicts: 200,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if live.Status != sim.Status {
			t.Fatalf("seed %d: live=%v sim=%v", seed, live.Status, sim.Status)
		}
	}
}
