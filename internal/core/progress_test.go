package core

import (
	"testing"

	"gridsat/internal/gen"
	"gridsat/internal/solver"
	"gridsat/internal/trace"
)

func TestCoverageUnits(t *testing.T) {
	cases := []struct {
		depth int
		want  uint64
	}{
		{0, coverageFull},
		{1, coverageFull / 2},
		{2, coverageFull / 4},
		{-3, coverageFull}, // clamped to the root
		{61, 2},
		{62, 1}, // saturates to one unit
		{200, 1},
	}
	for _, c := range cases {
		if got := coverageUnits(c.depth); got != c.want {
			t.Errorf("coverageUnits(%d) = %d, want %d", c.depth, got, c.want)
		}
	}
	// The two halves of a depth-d split must reproduce the parent's weight
	// exactly — the invariant that makes the sum reach 1.0 bit for bit.
	for d := 0; d < coverageBits-1; d++ {
		if 2*coverageUnits(d+1) != coverageUnits(d) {
			t.Fatalf("depth-%d halves do not sum to the parent weight", d)
		}
	}
}

func TestProgressTrackerReachesExactlyFull(t *testing.T) {
	var p ProgressTracker
	// Refute an unbalanced split tree: 1/2 + 1/4 + 1/8 + 1/8 = 1.
	for i, d := range []int{1, 2, 3, 3} {
		p.CloseSubproblem(d, float64(i+1))
	}
	if p.Units() != coverageFull {
		t.Fatalf("units = %d, want %d", p.Units(), coverageFull)
	}
	if p.Fraction() != 1.0 {
		t.Fatalf("fraction = %v, want exactly 1.0", p.Fraction())
	}
	if p.Closed() != 4 || p.MaxDepth() != 3 {
		t.Fatalf("closed=%d maxDepth=%d", p.Closed(), p.MaxDepth())
	}
	if eta := p.ETASeconds(); eta != 0 {
		t.Fatalf("ETA at full coverage = %v, want 0", eta)
	}
}

func TestProgressTrackerCapsAtFull(t *testing.T) {
	var p ProgressTracker
	p.CloseSubproblem(0, 1) // the whole space
	p.CloseSubproblem(5, 2) // a duplicate/saturated contribution
	if p.Units() != coverageFull {
		t.Fatalf("capped units = %d, want %d", p.Units(), coverageFull)
	}
}

func TestProgressTrackerETA(t *testing.T) {
	var p ProgressTracker
	if p.ETASeconds() != -1 {
		t.Fatal("ETA should be unknown before any closure interval")
	}
	p.CloseSubproblem(2, 10) // 1/4 in 10 s -> rate 0.025/s
	if r := p.Rate(); r <= 0 {
		t.Fatalf("rate = %v after first interval", r)
	}
	eta := p.ETASeconds()
	if eta <= 0 {
		t.Fatalf("ETA = %v, want positive projection", eta)
	}
	// 3/4 remaining at 0.025/s = 30 s.
	if eta < 29.9 || eta > 30.1 {
		t.Fatalf("ETA = %v, want ~30", eta)
	}
}

func TestMarkStragglers(t *testing.T) {
	clients := []ClientProgress{
		{ID: 1, Busy: true, ConflictsPerSec: 1000},
		{ID: 2, Busy: true, ConflictsPerSec: 900},
		{ID: 3, Busy: true, ConflictsPerSec: 100}, // < 0.25 × median (900)
		{ID: 4, Busy: false, ConflictsPerSec: 0},  // idle: never a straggler
	}
	markStragglers(clients)
	if clients[0].Straggler || clients[1].Straggler {
		t.Fatal("healthy clients flagged as stragglers")
	}
	if !clients[2].Straggler {
		t.Fatal("slow busy client not flagged")
	}
	if clients[3].Straggler {
		t.Fatal("idle client flagged")
	}
	if clients[0].Utilization != 1.0 {
		t.Fatalf("fastest client utilization = %v, want 1", clients[0].Utilization)
	}
	if u := clients[2].Utilization; u < 0.09 || u > 0.11 {
		t.Fatalf("straggler utilization = %v, want 0.1", u)
	}

	// Two busy clients: no straggler call, however slow the second one is.
	two := []ClientProgress{
		{ID: 1, Busy: true, ConflictsPerSec: 1000},
		{ID: 2, Busy: true, ConflictsPerSec: 1},
	}
	markStragglers(two)
	if two[1].Straggler {
		t.Fatal("straggler flagged with only two busy clients")
	}
}

func TestEfficacyFrom(t *testing.T) {
	e := efficacyFrom(200, 50, 1000, 100, 10000)
	if e.UsefulRatio != 0.25 {
		t.Fatalf("useful ratio = %v, want 0.25", e.UsefulRatio)
	}
	if e.ImplicationShare != 0.1 {
		t.Fatalf("implication share = %v, want 0.1", e.ImplicationShare)
	}
	zero := efficacyFrom(0, 0, 0, 0, 0)
	if zero.UsefulRatio != 0 || zero.ImplicationShare != 0 {
		t.Fatal("zero imports must yield zero ratios, not NaN")
	}
}

// TestDESProgressMonotoneReachesFull runs a Table-1 UNSAT instance
// (grid_10_20, the paper's symmetric slowdown row) through the DES and
// checks the acceptance property of the coverage estimate: the progress
// series is monotonically non-decreasing and ends at exactly 1.0 — all
// 2^62 fixed-point units — when the verdict is UNSAT.
func TestDESProgressMonotoneReachesFull(t *testing.T) {
	inst, ok := gen.ByName("grid_10_20")
	if !ok {
		t.Fatal("grid_10_20 missing from the Table-1 suite")
	}
	cfg := desConfig(inst.Build(), 10_000)
	cfg.SplitTimeoutVSec = 5
	cfg.ShareMaxLen = 40
	res := RunDistributed(cfg)
	if res.Outcome != OutcomeSolved || res.Status != solver.StatusUNSAT {
		t.Fatalf("got %v/%v", res.Outcome, res.Status)
	}
	if len(res.Progress) == 0 {
		t.Fatal("UNSAT run recorded no progress points")
	}
	if res.Splits == 0 {
		t.Fatal("run never split: progress series degenerate")
	}
	var prevUnits uint64
	var prevVSec float64
	for i, pt := range res.Progress {
		if pt.Units < prevUnits {
			t.Fatalf("point %d: units %d < previous %d (not monotone)", i, pt.Units, prevUnits)
		}
		if pt.VSec < prevVSec {
			t.Fatalf("point %d: vsec %v < previous %v", i, pt.VSec, prevVSec)
		}
		prevUnits, prevVSec = pt.Units, pt.VSec
	}
	last := res.Progress[len(res.Progress)-1]
	if last.Units != coverageFull {
		t.Fatalf("final units = %d, want exactly %d (2^62)", last.Units, coverageFull)
	}
	if res.CoverageUnits != coverageFull || res.Coverage != 1.0 {
		t.Fatalf("result coverage = %v (%d units), want exactly 1.0", res.Coverage, res.CoverageUnits)
	}
	if res.ClosedSubproblems != int64(len(res.Progress)) {
		t.Fatalf("closed=%d but %d progress points", res.ClosedSubproblems, len(res.Progress))
	}
	// The aggregated cluster counters must reflect real work and real
	// sharing on this conflict-heavy instance.
	if res.Agg.Conflicts == 0 || res.Agg.Implications == 0 {
		t.Fatalf("empty cluster aggregate: %+v", res.Agg)
	}
	if res.Agg.Imported == 0 {
		t.Fatal("no imported clauses recorded despite sharing")
	}
	eff := res.Efficacy()
	if eff.UsefulRatio < 0 || eff.UsefulRatio > 1 {
		t.Fatalf("useful ratio %v out of range", eff.UsefulRatio)
	}
}

// TestDESProgressDeterministic re-runs the same config and requires the
// entire progress series — timestamps, depths, and unit totals — to
// reproduce exactly, making the curves benchmarkable.
func TestDESProgressDeterministic(t *testing.T) {
	build := func() SimResult {
		cfg := desConfig(gen.Pigeonhole(8), 10_000)
		cfg.SplitTimeoutVSec = 5
		return RunDistributed(cfg)
	}
	a, b := build(), build()
	if len(a.Progress) != len(b.Progress) {
		t.Fatalf("series lengths differ: %d vs %d", len(a.Progress), len(b.Progress))
	}
	for i := range a.Progress {
		if a.Progress[i] != b.Progress[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a.Progress[i], b.Progress[i])
		}
	}
	if a.Agg != b.Agg {
		t.Fatalf("cluster aggregates differ:\n%+v\n%+v", a.Agg, b.Agg)
	}
}

// TestDESProgressFlightEventsMatchSeries cross-checks the flight log: every
// progress point corresponds to one FEvProgress event carrying the same
// running total, so ReplayVerify covers the coverage estimator too.
func TestDESProgressFlightEventsMatchSeries(t *testing.T) {
	fl := trace.NewFlight(nil)
	cfg := desConfig(gen.Pigeonhole(8), 10_000)
	cfg.SplitTimeoutVSec = 5
	cfg.Flight = fl
	res := RunDistributed(cfg)
	if res.Status != solver.StatusUNSAT {
		t.Fatalf("got %v", res.Status)
	}
	var progEvents []trace.FEvent
	for _, ev := range fl.Events() {
		if ev.Kind == trace.FEvProgress {
			progEvents = append(progEvents, ev)
		}
	}
	if len(progEvents) != len(res.Progress) {
		t.Fatalf("%d progress events vs %d series points", len(progEvents), len(res.Progress))
	}
	for i, ev := range progEvents {
		if uint64(ev.N) != res.Progress[i].Units {
			t.Fatalf("event %d carries %d units, series says %d", i, ev.N, res.Progress[i].Units)
		}
	}
	if err := trace.Validate(fl.Events()); err != nil {
		t.Fatal(err)
	}
}
