package core

import (
	"testing"

	"gridsat/internal/brute"
	"gridsat/internal/gen"
	"gridsat/internal/solver"
	"gridsat/internal/trace"
)

// TestCoverageKWaySplitBitExact pins the strategy depth contract at the
// estimator: a depth-d subproblem forked k ways yields 2^k cofactors at
// depth d+k, and closing all of them must reproduce the parent's
// fixed-point weight bit for bit — no rounding drift, ever.
func TestCoverageKWaySplitBitExact(t *testing.T) {
	for _, c := range []struct{ d, k int }{
		{0, 1}, {0, 2}, {3, 2}, {7, 3}, {20, 2}, {40, 4},
	} {
		var p ProgressTracker
		for i := 0; i < 1<<c.k; i++ {
			p.CloseSubproblem(c.d+c.k, float64(i))
		}
		if got, want := p.Units(), coverageUnits(c.d); got != want {
			t.Errorf("d=%d k=%d: closed 2^%d children at depth %d, units %d != parent's %d",
				c.d, c.k, c.k, c.d+c.k, got, want)
		}
	}
	// Mixed arity: a depth-0 space split 2-way, one half split 4-way,
	// still sums to exactly 1.0.
	var p ProgressTracker
	p.CloseSubproblem(1, 1)
	for i := 0; i < 4; i++ {
		p.CloseSubproblem(3, float64(2+i))
	}
	if p.Units() != coverageFull {
		t.Fatalf("mixed-arity closures sum to %d, want exactly %d", p.Units(), coverageFull)
	}
}

// dilemmaDESConfig is the DES config the dilemma acceptance tests share.
func dilemmaDESConfig(strategy string) RunnerConfig {
	cfg := desConfig(gen.Pigeonhole(8), 10_000)
	cfg.SplitTimeoutVSec = 5
	cfg.ShareMaxLen = 40
	cfg.SplitStrategy = strategy
	return cfg
}

// TestRunDistributedDilemmaUNSATCoverageExact runs the DES under each
// multi-way strategy on an UNSAT instance: the verdict must hold and the
// coverage estimate must finish at exactly 1.0 — all 2^62 units — proving
// the k-way depth bookkeeping partitions the space with no gap or overlap.
func TestRunDistributedDilemmaUNSATCoverageExact(t *testing.T) {
	for _, strategy := range []string{"dilemma", "dilemma-veto"} {
		t.Run(strategy, func(t *testing.T) {
			res := RunDistributed(dilemmaDESConfig(strategy))
			if res.Outcome != OutcomeSolved || res.Status != solver.StatusUNSAT {
				t.Fatalf("got %v/%v", res.Outcome, res.Status)
			}
			if res.Splits == 0 {
				t.Fatal("run never split")
			}
			if res.CoverageUnits != coverageFull || res.Coverage != 1.0 {
				t.Fatalf("coverage = %v (%d units), want exactly 1.0 (%d units)",
					res.Coverage, res.CoverageUnits, coverageFull)
			}
		})
	}
}

// TestRunDistributedDilemmaAgainstBrute sweeps random instances through
// the dilemma DES and checks the verdict against brute force.
func TestRunDistributedDilemmaAgainstBrute(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		f := gen.RandomKSAT(20, 85, 3, seed)
		want, _ := brute.Solve(f, 0)
		cfg := desConfig(f, 10_000)
		cfg.SplitTimeoutVSec = 5
		cfg.SplitStrategy = "dilemma"
		res := RunDistributed(cfg)
		if res.Outcome != OutcomeSolved {
			t.Fatalf("seed %d: %v", seed, res.Outcome)
		}
		if (res.Status == solver.StatusSAT) != (want == brute.SAT) {
			t.Fatalf("seed %d: DES says %v, brute %v", seed, res.Status, want)
		}
		if res.Status == solver.StatusSAT {
			if err := f.Verify(res.Model); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

// TestRunDistributedDilemmaReplayVerify records a dilemma DES run's flight
// log and replays the same configuration: the multi-way issue/accept/
// backlog event stream must reproduce exactly.
func TestRunDistributedDilemmaReplayVerify(t *testing.T) {
	record := trace.NewFlight(nil)
	cfg := dilemmaDESConfig("dilemma")
	cfg.Flight = record
	res := RunDistributed(cfg)
	if res.Status != solver.StatusUNSAT {
		t.Fatalf("got %v", res.Status)
	}
	recorded := record.Events()
	counts := trace.CountByKind(recorded)
	if counts[trace.FEvSplitAccept] == 0 {
		t.Fatal("dilemma run accepted no splits")
	}
	if err := trace.ReplayVerify(recorded, func(f *trace.Flight) error {
		rerun := dilemmaDESConfig("dilemma")
		rerun.Flight = f
		RunDistributed(rerun)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRunDistributedDilemmaLineage builds the lineage tree from a dilemma
// DES flight log and checks the k-ary accounting: leaves = accepts+1, and
// at least one fork is wider than binary when the run fanned out.
func TestRunDistributedDilemmaLineage(t *testing.T) {
	fl := trace.NewFlight(nil)
	cfg := dilemmaDESConfig("dilemma")
	cfg.Flight = fl
	res := RunDistributed(cfg)
	if res.Status != solver.StatusUNSAT {
		t.Fatalf("got %v", res.Status)
	}
	events := fl.Events()
	if err := trace.Validate(events); err != nil {
		t.Fatal(err)
	}
	tree := trace.BuildLineage(events)
	accepts := trace.CountByKind(events)[trace.FEvSplitAccept]
	if got := int64(len(tree.Leaves())); got != accepts+1 {
		t.Fatalf("leaves = %d, want accepts+1 = %d", got, accepts+1)
	}
	m := tree.Metrics()
	if m.MaxFanout < 2 {
		t.Fatalf("max fanout = %d on a splitting run", m.MaxFanout)
	}
	if m.UnsatLeaves == 0 {
		t.Fatal("UNSAT run recorded no refuted leaves")
	}
	if m.KillDepthMax < 1 || m.BalanceMean <= 0 || m.BalanceMean > 1 {
		t.Fatalf("degenerate metrics: %+v", m)
	}
}

// TestRunDistributedStrategyDeterministic re-runs each strategy and
// requires identical aggregates — multi-way fan-out must not introduce
// scheduling nondeterminism.
func TestRunDistributedStrategyDeterministic(t *testing.T) {
	for _, strategy := range []string{"dilemma", "dilemma-veto"} {
		a := RunDistributed(dilemmaDESConfig(strategy))
		b := RunDistributed(dilemmaDESConfig(strategy))
		if a.VSec != b.VSec || a.Splits != b.Splits || a.MaxClients != b.MaxClients ||
			a.Shared != b.Shared || a.TotalProps != b.TotalProps ||
			a.CoverageUnits != b.CoverageUnits {
			t.Fatalf("%s: nondeterministic DES: %+v vs %+v", strategy, a, b)
		}
	}
}
