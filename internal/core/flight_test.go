package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gridsat/internal/comm"
	"gridsat/internal/gen"
	"gridsat/internal/obs"
	"gridsat/internal/solver"
	"gridsat/internal/trace"
)

// dumpFlight writes the flight log next to the test binary (or into
// GRIDSAT_FLIGHT_DIR when set) so a failed CI run ships the full causal
// record as an artifact instead of a bare assertion message.
func dumpFlight(t *testing.T, f *trace.Flight) {
	t.Helper()
	if !t.Failed() || f == nil {
		return
	}
	dir := os.Getenv("GRIDSAT_FLIGHT_DIR")
	if dir == "" {
		dir = t.TempDir()
	}
	_ = os.MkdirAll(dir, 0o755)
	path := filepath.Join(dir, fmt.Sprintf("%s.flight.jsonl", t.Name()))
	out, err := os.Create(path)
	if err != nil {
		t.Logf("flight dump failed: %v", err)
		return
	}
	defer out.Close()
	if err := f.WriteJSONL(out); err != nil {
		t.Logf("flight dump failed: %v", err)
		return
	}
	t.Logf("flight log dumped to %s (%d events)", path, f.Len())
}

func TestDESFlightLogValidatesAndMatchesResult(t *testing.T) {
	f := trace.NewFlight(nil)
	cfg := desConfig(gen.Pigeonhole(8), 10_000)
	cfg.Flight = f
	res := RunDistributed(cfg)
	defer dumpFlight(t, f)
	if res.Outcome != OutcomeSolved || res.Status != solver.StatusUNSAT {
		t.Fatalf("run failed: %+v", res.Outcome)
	}
	evs := f.Events()
	if err := trace.Validate(evs); err != nil {
		t.Fatalf("flight log invalid: %v", err)
	}
	if got := trace.Verdict(evs); got != "UNSAT" {
		t.Fatalf("flight verdict %q, want UNSAT", got)
	}
	counts := trace.CountByKind(evs)
	if counts[trace.FEvRunStart] != 1 || counts[trace.FEvVerdict] != 1 {
		t.Fatalf("run-start/verdict counts wrong: %v", counts)
	}
	if int(counts[trace.FEvSplitAccept]) != res.Splits {
		t.Fatalf("split-accept events %d != result splits %d",
			counts[trace.FEvSplitAccept], res.Splits)
	}
	if counts[trace.FEvSubUNSAT] == 0 {
		t.Fatal("UNSAT run recorded no sub-unsat events")
	}
	// Every event but the first has a live virtual timestamp horizon.
	if evs[len(evs)-1].VSec <= 0 {
		t.Fatal("events missing virtual time")
	}
	// The JSONL form must round-trip losslessly (the CI artifact is the
	// JSONL file, so it has to carry everything the validator needs).
	var b bytes.Buffer
	if err := f.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSONL(&b)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(back); err != nil {
		t.Fatalf("JSONL round trip broke the log: %v", err)
	}
}

func TestDESFlightLineageLeafCount(t *testing.T) {
	f := trace.NewFlight(nil)
	cfg := desConfig(gen.Pigeonhole(8), 10_000)
	cfg.Flight = f
	res := RunDistributed(cfg)
	defer dumpFlight(t, f)
	if res.Splits == 0 {
		t.Skip("instance solved without splitting; lineage is trivial")
	}
	tree := trace.BuildLineage(f.Events())
	if got := len(tree.Leaves()); got != res.Splits+1 {
		t.Fatalf("lineage leaves = %d, want splits+1 = %d", got, res.Splits+1)
	}
	if len(tree.Nodes()) != 2*res.Splits+1 {
		t.Fatalf("lineage nodes = %d, want 2*splits+1 = %d",
			len(tree.Nodes()), 2*res.Splits+1)
	}
}

func TestDESFlightReplayVerify(t *testing.T) {
	mk := func() RunnerConfig {
		cfg := desConfig(gen.Pigeonhole(8), 10_000)
		return cfg
	}
	rec := trace.NewFlight(nil)
	cfg := mk()
	cfg.Flight = rec
	res := RunDistributed(cfg)
	defer dumpFlight(t, rec)
	if res.Outcome != OutcomeSolved {
		t.Fatalf("recording run failed: %+v", res.Outcome)
	}
	err := trace.ReplayVerify(rec.Events(), func(f *trace.Flight) error {
		cfg := mk()
		cfg.Flight = f
		if r := RunDistributed(cfg); r.Outcome != OutcomeSolved {
			return fmt.Errorf("replay run did not solve: %v", r.Outcome)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	// A run under a different config (single client, so no splits happen)
	// must NOT replay clean — otherwise the verifier is vacuous.
	err = trace.ReplayVerify(rec.Events(), func(f *trace.Flight) error {
		cfg := mk()
		cfg.MaxClients = 1
		cfg.Flight = f
		RunDistributed(cfg)
		return nil
	})
	if err == nil {
		t.Fatal("replay verifier accepted a structurally different run")
	}
}

func TestDESFlightRecordsFailureRecovery(t *testing.T) {
	f := trace.NewFlight(nil)
	cfg := desConfig(gen.Pigeonhole(8), 10_000)
	cfg.Failures = []FailurePlan{{HostID: 0, AtVSec: 5}}
	cfg.Flight = f
	res := RunDistributed(cfg)
	defer dumpFlight(t, f)
	if res.Outcome != OutcomeSolved {
		t.Fatalf("run with failure did not solve: %+v", res.Outcome)
	}
	counts := trace.CountByKind(f.Events())
	if counts[trace.FEvClientLeave] == 0 {
		t.Fatal("client crash left no client-leave event")
	}
	// Each recover event's parent must be a client-leave event.
	byID := make(map[uint64]trace.FEvent, f.Len())
	for _, ev := range f.Events() {
		byID[ev.ID] = ev
	}
	for _, ev := range f.Events() {
		if ev.Kind != trace.FEvRecover {
			continue
		}
		if parent, ok := byID[ev.Parent]; !ok || parent.Kind != trace.FEvClientLeave {
			t.Fatalf("recover event %d has parent %d (%+v), want a client-leave",
				ev.ID, ev.Parent, parent)
		}
	}
}

func TestLiveSolveSharedFlight(t *testing.T) {
	f := trace.NewFlight(nil)
	res, err := Solve(gen.Pigeonhole(7), JobConfig{
		Clients:    3,
		Timeout:    30 * time.Second,
		MinRunTime: 10 * time.Millisecond,
		Flight:     f,
	})
	defer dumpFlight(t, f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.StatusUNSAT {
		t.Fatalf("status = %v", res.Status)
	}
	evs := f.Events()
	if err := trace.Validate(evs); err != nil {
		t.Fatalf("live flight log invalid: %v", err)
	}
	counts := trace.CountByKind(evs)
	if counts[trace.FEvClientJoin] != 3 {
		t.Fatalf("client-join events = %d, want 3", counts[trace.FEvClientJoin])
	}
	if trace.Verdict(evs) != "UNSAT" {
		t.Fatalf("flight verdict %q", trace.Verdict(evs))
	}
	// Live envelopes carry Lamport stamps: at least one event must have
	// merged a remote clock (its Lamport jumps by more than 1).
	jumped := false
	for i := 1; i < len(evs); i++ {
		if evs[i].Lamport > evs[i-1].Lamport+1 {
			jumped = true
			break
		}
	}
	if !jumped {
		t.Error("no Lamport merges observed; traced envelopes likely not flowing")
	}
}

// TestLiveTraceEndpoints checks a running master serves the flight log
// over HTTP in all four forms. Same held-back-client trick as
// TestLiveMetricsEndpoint: the master waits for a fourth client, so the
// endpoints stay up while we fetch.
func TestLiveTraceEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	cm := comm.NewMetrics(reg)
	tr := comm.Instrument(comm.NewInprocTransport(), cm)
	fl := trace.NewFlight(nil)
	m, err := NewMaster(MasterConfig{
		Transport:       tr,
		ListenAddr:      "master",
		Formula:         gen.Pigeonhole(8),
		Timeout:         60 * time.Second,
		ExpectedClients: 4,
		Metrics:         reg,
		MetricsAddr:     "127.0.0.1:0",
		Flight:          fl,
		CommMetrics:     cm,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := m.MetricsAddr()
	if addr == "" {
		t.Fatal("master bound no metrics address")
	}
	done := make(chan Result, 1)
	go func() {
		res, _ := m.Run()
		done <- res
	}()
	var wg sync.WaitGroup
	launch := func(i int) {
		cl, err := NewClient(ClientConfig{
			Transport:      tr,
			MasterAddr:     "master",
			HostName:       fmt.Sprintf("host-%d", i),
			FreeMemBytes:   64 << 20,
			SliceConflicts: 200,
			MinRunTime:     5 * time.Millisecond,
			HeartbeatEvery: 1,
			Flight:         fl,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); _ = cl.Run() }()
	}
	for i := 0; i < 3; i++ {
		launch(i)
	}

	fetch := func(path string) string {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := http.Get("http://" + addr + path)
			if err == nil {
				b := new(bytes.Buffer)
				_, _ = b.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK && b.Len() > 0 {
					return b.String()
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("never fetched %s", path)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// /trace: schema-valid JSONL of whatever has happened so far.
	raw := fetch("/trace")
	evs, err := trace.ReadJSONL(strings.NewReader(raw))
	if err != nil {
		t.Fatalf("/trace is not flight JSONL: %v", err)
	}
	if err := trace.Validate(evs); err != nil {
		t.Fatalf("/trace log invalid: %v", err)
	}
	// /trace.json: a Perfetto document.
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(fetch("/trace.json")), &doc); err != nil {
		t.Fatalf("/trace.json is not trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("/trace.json has no events")
	}
	// /tree and /tree.dot: the lineage views.
	var treeDoc struct {
		Nodes int `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(fetch("/tree")), &treeDoc); err != nil {
		t.Fatalf("/tree is not JSON: %v", err)
	}
	if !strings.HasPrefix(fetch("/tree.dot"), "digraph lineage {") {
		t.Error("/tree.dot is not a DOT graph")
	}
	// /status surfaces the flight length and codec fallback counter.
	var snap StatusSnapshot
	if err := json.Unmarshal([]byte(fetch("/status")), &snap); err != nil {
		t.Fatalf("/status: %v", err)
	}
	if snap.FlightEvents == 0 {
		t.Error("/status reports zero flight events mid-run")
	}
	if snap.CodecFallbackFrames == 0 {
		t.Error("/status reports zero fallback frames; register frames are gob")
	}

	launch(3)
	res := <-done
	wg.Wait()
	if res.Status != solver.StatusUNSAT {
		t.Fatalf("run ended %v", res.Status)
	}
	if err := trace.Validate(fl.Events()); err != nil {
		t.Fatalf("final flight log invalid: %v", err)
	}
}
