package core

import (
	"sort"
	"sync/atomic"

	"gridsat/internal/cnf"
)

// This file is the in-host clause pool: the lock-free exchange lane
// between a portfolio client's K solver workers. Cross-host sharing stays
// master-mediated and bounded by the paper's share length; within a host
// the exchange is nearly free, so the pool accepts longer clauses and
// imports are ranked LBD-then-length per consumer.
//
// Structure: one single-producer broadcast ring per worker. A producer
// publishes immutable entries tagged with their absolute publish index;
// consumers keep a cursor per ring and never mutate ring state, so any
// number of readers drain concurrently without coordination. When a slow
// reader is lapped, the overwritten entries are counted as lost for that
// reader — the documented window bound: for every reader,
//
//	delivered + lost == published (by others)
//
// holds exactly, and a reader that stays within `capacity` entries of
// every producer loses nothing and sees no duplicates.

// poolEntry is one published learnt clause. Immutable after Publish; the
// literal slice is shared by every consumer (solver imports clone on
// receipt, so retention is safe).
type poolEntry struct {
	pos  uint64 // absolute publish index within the producer's ring
	from int    // publishing worker
	lbd  int    // learn-time glue (quality rank)
	lits cnf.Clause
}

// poolRing is one worker's single-producer broadcast ring. The producer
// stores the entry pointer first and advances head second, so any index
// below head has a visible entry whose pos is >= that index (equal unless
// the slot has been lapped).
type poolRing struct {
	head  atomic.Uint64
	slots []atomic.Pointer[poolEntry]
}

func (r *poolRing) publish(e *poolEntry) {
	pos := r.head.Load() // single producer: plain read-modify-write
	e.pos = pos
	r.slots[pos%uint64(len(r.slots))].Store(e)
	r.head.Store(pos + 1)
}

// hostPool is the K-worker exchange: one ring per worker plus aggregate
// telemetry. Publish is called from solver goroutines (one per worker);
// Drain from any consumer with its own cursor.
type hostPool struct {
	rings []poolRing

	published atomic.Int64 // entries published across all rings
	delivered atomic.Int64 // entries handed to consumers
	lost      atomic.Int64 // entries skipped because a reader was lapped
	dropped   atomic.Int64 // entries ranked out by a Drain budget
}

// newHostPool builds a pool for `workers` producers with `capacity`
// entries of history per producer.
func newHostPool(workers, capacity int) *hostPool {
	if capacity <= 0 {
		capacity = 256
	}
	p := &hostPool{rings: make([]poolRing, workers)}
	for i := range p.rings {
		p.rings[i].slots = make([]atomic.Pointer[poolEntry], capacity)
	}
	return p
}

// Publish offers a learnt clause from worker w to every other worker. The
// clause must be safe to retain (the solver's OnLearn passes a fresh
// copy) and is never mutated by the pool or its consumers.
func (p *hostPool) Publish(w int, c cnf.Clause, lbd int) {
	p.rings[w].publish(&poolEntry{from: w, lbd: lbd, lits: c})
	p.published.Add(1)
}

// poolCursor is one consumer's read position in every ring, plus its
// private delivery accounting (the per-reader half of the window-bound
// invariant: delivered + lost == published by others).
type poolCursor struct {
	pos       []uint64
	delivered int64
	lost      int64
	dropped   int64
}

// NewCursor returns a cursor positioned at the start of every ring, so
// the consumer sees everything published since the pool was built
// (subject to the lapping window).
func (p *hostPool) NewCursor() *poolCursor {
	return &poolCursor{pos: make([]uint64, len(p.rings))}
}

// Drain collects entries published since cur on every ring except self
// (a worker never re-imports its own exports), advances the cursor, and
// returns them ranked LBD-then-length-then-origin (deterministic for a
// deterministic publish history). A positive budget keeps only the best
// `budget` entries; the remainder is counted as dropped.
func (p *hostPool) Drain(cur *poolCursor, self, budget int) []poolEntry {
	var out []poolEntry
	var lost int64
	for w := range p.rings {
		if w == self {
			continue
		}
		r := &p.rings[w]
		pos := cur.pos[w]
		head := r.head.Load()
		if pos >= head {
			continue
		}
		capacity := uint64(len(r.slots))
		if head-pos > capacity {
			// Lapped: everything older than one full ring is gone.
			lost += int64(head - capacity - pos)
			pos = head - capacity
		}
		for ; pos < head; pos++ {
			e := r.slots[pos%capacity].Load()
			if e == nil || e.pos != pos {
				// The producer overwrote this slot after our head read
				// (another lap); the entry for pos is unrecoverable.
				lost++
				continue
			}
			out = append(out, *e)
		}
		cur.pos[w] = head
	}
	if lost > 0 {
		p.lost.Add(lost)
		cur.lost += lost
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.lbd != b.lbd {
			return a.lbd < b.lbd
		}
		if len(a.lits) != len(b.lits) {
			return len(a.lits) < len(b.lits)
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.pos < b.pos
	})
	if budget > 0 && len(out) > budget {
		p.dropped.Add(int64(len(out) - budget))
		cur.dropped += int64(len(out) - budget)
		out = out[:budget]
	}
	p.delivered.Add(int64(len(out)))
	cur.delivered += int64(len(out))
	return out
}

// poolStats is the pool's aggregate telemetry snapshot.
type poolStats struct {
	Published int64
	Delivered int64
	Lost      int64
	Dropped   int64
}

func (p *hostPool) Stats() poolStats {
	return poolStats{
		Published: p.published.Load(),
		Delivered: p.delivered.Load(),
		Lost:      p.lost.Load(),
		Dropped:   p.dropped.Load(),
	}
}
