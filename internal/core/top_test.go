package core

import (
	"strings"
	"testing"

	"gridsat/internal/comm"
)

// topTestSnapshots builds the canned /progress + /status payload pair the
// golden frame is rendered from.
func topTestSnapshots() (ProgressSnapshot, StatusSnapshot) {
	p := ProgressSnapshot{
		WallSeconds: 95.2, Coverage: 0.421875,
		ClosedSubproblems: 57, MaxClosedDepth: 12,
		RatePerSec: 0.0034, ETASeconds: 170.0,
		Registered: 4, Busy: 3, Outstanding: 4,
		Conflicts: 1234567, Implications: 45678901,
		Efficacy: ShareEfficacy{Imported: 2345, ImportedUseful: 966,
			ImportedImplications: 3609876, ImportedResolutions: 45678,
			UsefulRatio: 0.412, ImplicationShare: 0.079},
		Clients: []ClientProgress{
			{ID: 1, Busy: true, Depth: 5, ConflictsPerSec: 1234.5, Utilization: 1.0, ImportUseRatio: 0.412, MemBytes: 12 << 20},
			{ID: 2, Busy: true, Depth: 9, ConflictsPerSec: 123.4, Utilization: 0.0999, ImportUseRatio: 0.10, MemBytes: 9 << 20, Straggler: true},
			{ID: 3, Busy: true, Depth: 7, ConflictsPerSec: 987.6, Utilization: 0.8, ImportUseRatio: 0.25, MemBytes: 31 << 20},
			{ID: 4, Busy: false, Depth: 0, ConflictsPerSec: 0, Utilization: 0, ImportUseRatio: 0, MemBytes: 1 << 20},
		},
	}
	s := StatusSnapshot{
		Backlog: 2, Splits: 14, Shared: 1234,
		Clients: []ClientStatus{
			{ID: 1, DBLearnts: 4567}, {ID: 2, DBLearnts: 123},
			// Client 3 runs a two-worker in-host portfolio: its /status row
			// carries per-worker gauges rendered as indented sub-rows.
			{ID: 3, DBLearnts: 2048, Workers: []comm.WorkerReport{
				{Worker: 0, Profile: "w0: pathfinder (base options)",
					Conflicts: 1500, Restarts: 12, Learnts: 1024, MemBytes: 16 << 20},
				{Worker: 1, Profile: "w1: seed=0xdeadbeef phase=neg save=false decay=128 restart=luby/512 import=96 export<=20",
					Conflicts: 548, Restarts: 7, Learnts: 900, MemBytes: 15 << 20},
			}},
			{ID: 4, DBLearnts: 0},
		},
	}
	return p, s
}

// topGolden is the expected 80-column frame for topTestSnapshots. The
// renderer is pure, so any layout change must update this fixture
// deliberately.
const topGolden = "" +
	"GridSAT running  wall 1m35s  [=================------------------------]  42.2% \n" +
	"closed 57 subproblems  max depth 12  rate 0.34%/s  ETA 2m50s                    \n" +
	"clients 4 registered, 3 busy  outstanding 4  backlog 2  splits 14  shared 1.2k  \n" +
	"conflicts 1.2M  implications 45.7M  imported 2.3k  useful 41.2%  impl-share 7.9%\n" +
	"                                                                                \n" +
	"  ID  STATE  DEPTH     CONF/S   UTIL  IMP-USE       MEM   LEARNTS               \n" +
	"   1  busy       5     1234.5   100%    41.2%   12.0MiB      4567               \n" +
	"   2  SLOW       9      123.4    10%    10.0%    9.0MiB       123               \n" +
	"   3  busy       7      987.6    80%    25.0%   31.0MiB      2048               \n" +
	"      w0  pathfinder      conf 1.5k    rst 12   16.0MiB      1024               \n" +
	"      w1  neg+luby        conf 548     rst 7    15.0MiB       900               \n" +
	"   4  idle       0        0.0     0%     0.0%    1.0MiB         0               \n"

func TestRenderTopGolden(t *testing.T) {
	p, s := topTestSnapshots()
	got := RenderTop(p, s, 80)
	if got != topGolden {
		t.Errorf("frame drifted from golden.\ngot:\n%s\nwant:\n%s", got, topGolden)
		gl := strings.Split(got, "\n")
		wl := strings.Split(topGolden, "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Errorf("first diff at line %d:\ngot:  %q\nwant: %q", i+1, gl[i], wl[i])
				break
			}
		}
	}
}

// topJobsGolden is the expected 80-column frame when the /status payload
// carries the scheduler's per-job rows (a serve-mode master): the job
// table appears between the cluster summary and the client table, long
// names truncate, and finished jobs show their verdict.
const topJobsGolden = "" +
	"GridSAT running  wall 1m35s  [=================------------------------]  42.2% \n" +
	"closed 57 subproblems  max depth 12  rate 0.34%/s  ETA 2m50s                    \n" +
	"clients 4 registered, 3 busy  outstanding 4  backlog 2  splits 14  shared 1.2k  \n" +
	"conflicts 1.2M  implications 45.7M  imported 2.3k  useful 41.2%  impl-share 7.9%\n" +
	"                                                                                \n" +
	" JOB  NAME        STATE      PRI   CLI     COV    CONF/S  VERDICT               \n" +
	"   1  php9        running      1     2   25.3%     812.5  -                     \n" +
	"   2  factoring-  running      3     1    4.0%      96.1  -                     \n" +
	"   3  rand3sat    done         2     0    0.0%       0.0  SAT                   \n" +
	"                                                                                \n" +
	"  ID  STATE  DEPTH     CONF/S   UTIL  IMP-USE       MEM   LEARNTS               \n" +
	"   1  busy       5     1234.5   100%    41.2%   12.0MiB      4567               \n" +
	"   2  SLOW       9      123.4    10%    10.0%    9.0MiB       123               \n" +
	"   3  busy       7      987.6    80%    25.0%   31.0MiB      2048               \n" +
	"      w0  pathfinder      conf 1.5k    rst 12   16.0MiB      1024               \n" +
	"      w1  neg+luby        conf 548     rst 7    15.0MiB       900               \n" +
	"   4  idle       0        0.0     0%     0.0%    1.0MiB         0               \n"

// TestRenderTopJobsGolden locks the serve-mode frame layout. A status
// payload with one implicit job 0 must NOT grow the section — that is the
// single-job frame, pinned byte-for-byte by TestRenderTopGolden.
func TestRenderTopJobsGolden(t *testing.T) {
	p, s := topTestSnapshots()
	s.Jobs = []JobSnapshot{
		{ID: 1, Name: "php9", Priority: 1, State: "running", Clients: 2, Coverage: 0.253, ConflictRate: 812.5},
		{ID: 2, Name: "factoring-xl", Priority: 3, State: "running", Clients: 1, Coverage: 0.04, ConflictRate: 96.1},
		{ID: 3, Name: "rand3sat", Priority: 2, State: "done", Verdict: "SAT"},
	}
	got := RenderTop(p, s, 80)
	if got != topJobsGolden {
		gl := strings.Split(got, "\n")
		wl := strings.Split(topJobsGolden, "\n")
		t.Errorf("serve-mode frame drifted from golden.\ngot:\n%s", got)
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Errorf("first diff at line %d:\ngot:  %q\nwant: %q", i+1, gl[i], wl[i])
				break
			}
		}
	}

	// The implicit single-job row keeps the classic frame.
	s.Jobs = []JobSnapshot{{ID: 0, State: "running"}}
	if RenderTop(p, s, 80) != topGolden {
		t.Error("implicit job-0 row changed the single-job frame")
	}
}

// TestRenderTopFixedWidth checks the overwrite invariant: every line of a
// frame is exactly the requested width, whatever the payload.
func TestRenderTopFixedWidth(t *testing.T) {
	p, s := topTestSnapshots()
	for _, w := range []int{40, 60, 80, 120} {
		frame := RenderTop(p, s, w)
		for i, line := range strings.Split(strings.TrimSuffix(frame, "\n"), "\n") {
			if len(line) != w {
				t.Fatalf("width %d, line %d is %d columns: %q", w, i+1, len(line), line)
			}
		}
	}
	// Absurdly narrow requests clamp to the 40-column floor.
	frame := RenderTop(p, s, 1)
	for _, line := range strings.Split(strings.TrimSuffix(frame, "\n"), "\n") {
		if len(line) != 40 {
			t.Fatalf("clamped frame line is %d columns", len(line))
		}
	}
}

// TestRenderTopEmpty renders the zero snapshots — the frame a dashboard
// shows the instant it connects, before any heartbeat arrives.
func TestRenderTopEmpty(t *testing.T) {
	frame := RenderTop(ProgressSnapshot{ETASeconds: -1}, StatusSnapshot{}, 80)
	if !strings.Contains(frame, "GridSAT running") {
		t.Error("empty frame lost the headline")
	}
	if !strings.Contains(frame, "ETA --") {
		t.Error("unknown ETA not rendered as --")
	}
}

// TestRenderTopVerdict shows the final frame carries the verdict and a
// saturated bar.
func TestRenderTopVerdict(t *testing.T) {
	p, s := topTestSnapshots()
	p.Verdict = "UNSAT"
	p.Coverage = 1.0
	p.ETASeconds = 0
	frame := RenderTop(p, s, 80)
	if !strings.Contains(frame, "GridSAT UNSAT") {
		t.Error("verdict missing from headline")
	}
	if !strings.Contains(frame, "ETA done") {
		t.Error("exhausted ETA not rendered as done")
	}
	if !strings.Contains(frame, "100.0%") {
		t.Error("full coverage not shown")
	}
	if strings.Contains(frame, "-]") {
		t.Error("bar not saturated at full coverage")
	}
}

// TestRenderTopSparks covers the history-backed frame: nil sparks must
// reproduce RenderTop byte for byte, and populated sparks add the
// cluster trend line and the per-client HISTORY column while keeping
// every line at the fixed width.
func TestRenderTopSparks(t *testing.T) {
	p, s := topTestSnapshots()
	if RenderTopSparks(p, s, nil, 80) != RenderTop(p, s, 80) {
		t.Fatal("nil sparks changed the frame")
	}
	if RenderTopSparks(p, s, &TopSparks{}, 80) != RenderTop(p, s, 80) {
		t.Fatal("empty sparks changed the frame")
	}
	sp := &TopSparks{
		Coverage: []float64{0, 0.1, 0.2, 0.3, 0.42},
		Rate:     []float64{900, 1100, 1000, 1234, 1200},
		ClientRate: map[int][]float64{
			1: {1000, 1100, 1234.5},
			2: {400, 200, 123.4},
		},
	}
	frame := RenderTopSparks(p, s, sp, 80)
	if !strings.Contains(frame, "trend  cov [") {
		t.Error("trend line missing")
	}
	if !strings.Contains(frame, "HISTORY") {
		t.Error("per-client HISTORY column missing")
	}
	// A client with no history still renders (blank spark cell).
	if !strings.Contains(frame, "   4  idle") {
		t.Error("history-less client row missing")
	}
	for i, line := range strings.Split(strings.TrimSuffix(frame, "\n"), "\n") {
		if len(line) != 80 {
			t.Fatalf("spark frame line %d is %d columns: %q", i+1, len(line), line)
		}
	}
	// Two more lines than the plain frame: trend + nothing else (the
	// HISTORY column widens rows, it does not add them).
	plain := strings.Count(RenderTop(p, s, 80), "\n")
	if got := strings.Count(frame, "\n"); got != plain+1 {
		t.Errorf("spark frame has %d lines, want %d", got, plain+1)
	}
}

func TestTopFormatters(t *testing.T) {
	if got := fmtCount(999); got != "999" {
		t.Errorf("fmtCount(999) = %q", got)
	}
	if got := fmtCount(1_500_000_000); got != "1.5G" {
		t.Errorf("fmtCount(1.5e9) = %q", got)
	}
	if got := fmtBytes(512); got != "512B" {
		t.Errorf("fmtBytes(512) = %q", got)
	}
	if got := fmtBytes(3 << 30); got != "3.0GiB" {
		t.Errorf("fmtBytes(3GiB) = %q", got)
	}
	if got := fmtSeconds(3725); got != "1h02m" {
		t.Errorf("fmtSeconds(3725) = %q", got)
	}
	if got := fmtPercent(0.0000004); got != "4.0e-05%" {
		t.Errorf("fmtPercent tiny = %q", got)
	}
	if got := progressBar(0.5, 10); got != "=====-----" {
		t.Errorf("progressBar half = %q", got)
	}
}
