package core

import (
	"testing"
	"time"

	"gridsat/internal/cnf"
	"gridsat/internal/comm"
	"gridsat/internal/solver"
)

// newChurnMaster builds a non-running master whose handlers the test
// drives directly — the event loop is single-threaded, so calling them
// from the test goroutine exercises exactly the production accounting.
func newChurnMaster(t *testing.T) *Master {
	t.Helper()
	f := cnf.NewFormula(2)
	f.Add(1, 2)
	m, err := NewMaster(MasterConfig{
		Transport:  comm.NewInprocTransport(),
		ListenAddr: "churn-master",
		Formula:    f,
		Timeout:    time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func churnDeltas(conflicts, implications, imported, useful int64) comm.SolverDeltas {
	return comm.SolverDeltas{
		Conflicts:            conflicts,
		Implications:         implications,
		Imported:             imported,
		ImportedUseful:       useful,
		Decisions:            conflicts * 2,
		Propagations:         implications * 3,
		ImportedImplications: useful * 5,
		ImportedResolutions:  useful,
	}
}

// TestHeartbeatAggregationSurvivesChurn is the churn-accounting contract:
// heartbeat deltas are folded into the cluster totals at receipt, so
// clients joining, leaving, and being replaced can neither lose history
// (the departed client's work stays counted) nor double-count it (a
// rejoining client starts a fresh per-client aggregate, and its deltas
// are added exactly once).
func TestHeartbeatAggregationSurvivesChurn(t *testing.T) {
	m := newChurnMaster(t)

	join := func(id int) *masterClient {
		c := &masterClient{id: id, addr: "addr", out: make(chan comm.Message, 8)}
		m.clients[id] = c
		return c
	}

	// Client 1 and 2 join and report work.
	c1, c2 := join(1), join(2)
	m.handleStatusReport(c1, comm.StatusReport{ClientID: 1, Busy: true, Depth: 2,
		Deltas: churnDeltas(100, 1000, 40, 10)})
	m.handleStatusReport(c2, comm.StatusReport{ClientID: 2, Busy: true, Depth: 3,
		Deltas: churnDeltas(50, 600, 20, 5)})

	snap := m.progressSnapshot()
	if snap.Conflicts != 150 || snap.Implications != 1600 {
		t.Fatalf("pre-churn totals: conflicts=%d implications=%d", snap.Conflicts, snap.Implications)
	}
	if snap.Efficacy.Imported != 60 || snap.Efficacy.ImportedUseful != 15 {
		t.Fatalf("pre-churn efficacy: %+v", snap.Efficacy)
	}

	// Client 1 goes idle and is lost. Its lifetime contribution must
	// survive the departure.
	c1.busy = false
	if _, err := m.clientLost(c1); err != nil {
		t.Fatal(err)
	}
	if m.clients[1] != nil {
		t.Fatal("lost client still registered")
	}
	snap = m.progressSnapshot()
	if snap.Conflicts != 150 {
		t.Fatalf("conflicts after leave = %d, want 150 (departed work lost)", snap.Conflicts)
	}
	if snap.Registered != 1 {
		t.Fatalf("registered after leave = %d, want 1", snap.Registered)
	}

	// A replacement joins (new ID, as live rejoins get) and reports its
	// own work from a clean slate: added once, not merged into anything.
	c3 := join(3)
	m.handleStatusReport(c3, comm.StatusReport{ClientID: 3, Busy: true, Depth: 1,
		Deltas: churnDeltas(25, 200, 10, 4)})
	snap = m.progressSnapshot()
	if snap.Conflicts != 175 || snap.Implications != 1800 {
		t.Fatalf("post-recover totals: conflicts=%d implications=%d (double-count or loss)",
			snap.Conflicts, snap.Implications)
	}
	if snap.Efficacy.Imported != 70 || snap.Efficacy.ImportedUseful != 19 {
		t.Fatalf("post-recover efficacy: %+v", snap.Efficacy)
	}

	// The replacement's per-client view starts fresh — no inherited ratios.
	for _, row := range snap.Clients {
		if row.ID == 3 && row.ImportUseRatio != 0.4 {
			t.Fatalf("client 3 import-use ratio = %v, want 0.4 from its own deltas", row.ImportUseRatio)
		}
	}

	// Two more heartbeats from the same survivor accumulate, not replace.
	m.handleStatusReport(c2, comm.StatusReport{ClientID: 2, Busy: true, Depth: 3,
		Deltas: churnDeltas(5, 40, 0, 0)})
	m.handleStatusReport(c2, comm.StatusReport{ClientID: 2, Busy: true, Depth: 3,
		Deltas: churnDeltas(5, 40, 0, 0)})
	snap = m.progressSnapshot()
	if snap.Conflicts != 185 || snap.Implications != 1880 {
		t.Fatalf("survivor deltas misfolded: conflicts=%d implications=%d", snap.Conflicts, snap.Implications)
	}
	if c2.agg.Conflicts != 60 {
		t.Fatalf("per-client aggregate = %d, want 60", c2.agg.Conflicts)
	}
}

// TestProgressSnapshotCoverageFromSolved checks the master's coverage
// accounting through handleSolved: refuting depth-1 halves adds exactly
// half the space each, the verdict flips at full coverage, and depth
// reported by the client is what the estimator uses.
func TestProgressSnapshotCoverageFromSolved(t *testing.T) {
	m := newChurnMaster(t)
	m.started = time.Now()
	m.jobs[0].assigned = true
	m.jobs[0].outstanding = 2

	c1 := &masterClient{id: 1, addr: "a", busy: true, out: make(chan comm.Message, 8)}
	c2 := &masterClient{id: 2, addr: "b", busy: true, out: make(chan comm.Message, 8)}
	m.clients[1], m.clients[2] = c1, c2

	done, err := m.handleSolved(c1, comm.Solved{ClientID: 1, Status: solver.StatusUNSAT, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("run declared done with half the space outstanding")
	}
	snap := m.progressSnapshot()
	if snap.Units != coverageFull/2 {
		t.Fatalf("units after one depth-1 closure = %d, want %d", snap.Units, coverageFull/2)
	}
	if snap.Verdict != "" {
		t.Fatalf("verdict %q before exhaustion", snap.Verdict)
	}

	done, err = m.handleSolved(c2, comm.Solved{ClientID: 2, Status: solver.StatusUNSAT, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("exhausted space did not end the run")
	}
	snap = m.progressSnapshot()
	if snap.Units != coverageFull || snap.Coverage != 1.0 {
		t.Fatalf("final coverage %v (%d units), want exactly 1.0", snap.Coverage, snap.Units)
	}
	if snap.Verdict != "UNSAT" {
		t.Fatalf("verdict %q, want UNSAT", snap.Verdict)
	}
	if snap.ETASeconds != 0 {
		t.Fatalf("ETA at exhaustion = %v, want 0", snap.ETASeconds)
	}
}
