package core

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gridsat/internal/brute"
	"gridsat/internal/cnf"
	"gridsat/internal/comm"
	"gridsat/internal/gen"
	"gridsat/internal/trace"
)

// serveMaster boots a serve-mode master on tr and runs its event loop.
// The returned channel yields Run's result after Shutdown (or timeout).
func serveMaster(t *testing.T, tr comm.Transport, cfg MasterConfig) (*Master, chan Result) {
	t.Helper()
	cfg.Transport = tr
	cfg.Serve = true
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Minute
	}
	if cfg.RebalancePeriod == 0 {
		cfg.RebalancePeriod = 5 * time.Millisecond
	}
	m, err := NewMaster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Result, 1)
	go func() {
		res, _ := m.Run()
		done <- res
	}()
	return m, done
}

// serveClients launches n clients against the master and returns a
// WaitGroup that drains once the master shuts the pool down.
func serveClients(t *testing.T, tr comm.Transport, addr string, n int, fl *trace.Flight) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cl, err := NewClient(ClientConfig{
			Transport:      tr,
			MasterAddr:     addr,
			ListenAddr:     clientListenAddr(tr),
			HostName:       fmt.Sprintf("host-%d", i),
			FreeMemBytes:   64 << 20,
			SliceConflicts: 200,
			MinRunTime:     5 * time.Millisecond,
			HeartbeatEvery: 1,
			Flight:         fl,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); _ = cl.Run() }()
	}
	return &wg
}

// clientListenAddr picks a client listen address suited to the transport:
// TCP needs a real port for peer-to-peer payloads, inproc self-names.
func clientListenAddr(tr comm.Transport) string {
	if _, ok := tr.(comm.TCPTransport); ok {
		return "127.0.0.1:0"
	}
	return ""
}

// waitJobState polls until the job reaches a terminal state.
func waitJobState(t *testing.T, m *Master, id int, within time.Duration) JobSnapshot {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		snap, err := m.JobStatus(id, true)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State == "done" || snap.State == "cancelled" {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d still %q after %v: %+v", id, snap.State, within, snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitJobClients polls until the job holds at least n clients.
func waitJobClients(t *testing.T, m *Master, id, n int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		snap, err := m.JobStatus(id, false)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Clients >= n {
			return
		}
		if snap.State == "done" {
			t.Fatalf("job %d finished before holding %d clients", id, n)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d holds %d clients after %v, want >= %d", id, snap.Clients, within, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// modelSatisfies checks a DIMACS-literal model against every clause.
func modelSatisfies(f *cnf.Formula, model []int) bool {
	val := map[int]bool{}
	for _, l := range model {
		if l > 0 {
			val[l] = true
		} else {
			val[-l] = false
		}
	}
	for _, cl := range f.Clauses {
		sat := false
		for _, lit := range cl {
			d := lit.DIMACS()
			v, ok := val[absInt(d)]
			if ok && v == (d > 0) {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// satTestFormula returns a small satisfiable 3-SAT instance, verified
// against the brute-force reference so the test never lies to itself.
func satTestFormula(t *testing.T) *cnf.Formula {
	t.Helper()
	f := gen.RandomKSAT(20, 70, 3, 3)
	if want, _ := brute.Solve(f, 0); want != brute.SAT {
		t.Fatal("test formula unexpectedly UNSAT; pick another seed")
	}
	return f
}

// TestServeTwoConcurrentJobs is the service's basic contract over the
// in-process transport: two jobs submitted back to back run under
// fair-share and both reach correct verdicts — the UNSAT one by
// exhaustion, the SAT one with a model that satisfies its formula.
func TestServeTwoConcurrentJobs(t *testing.T) {
	tr := comm.NewInprocTransport()
	fl := trace.NewFlight(nil)
	m, done := serveMaster(t, tr, MasterConfig{
		ListenAddr:  "serve-master",
		SchedPolicy: "fair-share",
		Flight:      fl,
	})
	wg := serveClients(t, tr, "serve-master", 3, fl)

	unsat := gen.Pigeonhole(7)
	sat := satTestFormula(t)

	id1, err := m.Submit("php7", unsat, 1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := m.Submit("rand3", sat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 || id1 <= 0 || id2 <= 0 {
		t.Fatalf("bad job IDs %d, %d", id1, id2)
	}

	s1 := waitJobState(t, m, id1, time.Minute)
	s2 := waitJobState(t, m, id2, time.Minute)
	if s1.Verdict != "UNSAT" {
		t.Fatalf("job %d verdict %q, want UNSAT", id1, s1.Verdict)
	}
	if s2.Verdict != "SAT" {
		t.Fatalf("job %d verdict %q, want SAT", id2, s2.Verdict)
	}
	if len(s2.Model) == 0 || !modelSatisfies(sat, s2.Model) {
		t.Fatalf("job %d model does not satisfy its formula: %v", id2, s2.Model)
	}

	// The flight log agrees with the API on both verdicts.
	verdicts := trace.JobVerdicts(fl.Events())
	if verdicts[id1] != "UNSAT" || verdicts[id2] != "SAT" {
		t.Fatalf("flight-log verdicts %v disagree with API", verdicts)
	}

	jobs := m.Jobs()
	if len(jobs) != 2 || jobs[0].ID != id1 || jobs[1].ID != id2 {
		t.Fatalf("Jobs() = %+v, want [%d %d] in submission order", jobs, id1, id2)
	}

	m.Shutdown()
	<-done
	wg.Wait()
}

// TestServeMalleableReassignment is the acceptance test for malleable
// allocation over live TCP: a long UNSAT job absorbs both clients, a
// second job arrives, and fair-share must take a client from the first
// job via checkpoint preemption. Both clients provably start on job 1
// (we wait for Clients == 2 before submitting job 2), so whichever
// client job 2's root lands on was reassigned between jobs mid-run. The
// flight log must show the full preempt → migrate → resume chain for
// job 1's checkpointed subproblem, and both verdicts must be correct —
// the UNSAT one proving no search space was lost across the preemption.
func TestServeMalleableReassignment(t *testing.T) {
	tr := comm.TCPTransport{}
	fl := trace.NewFlight(nil)
	m, done := serveMaster(t, tr, MasterConfig{
		ListenAddr:  "127.0.0.1:0",
		SchedPolicy: "fair-share",
		Flight:      fl,
	})
	wg := serveClients(t, tr, m.Addr(), 2, fl)

	long := gen.Pigeonhole(9)
	sat := satTestFormula(t)

	id1, err := m.Submit("long-unsat", long, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Both clients must be working job 1 before job 2 arrives, so the
	// only way job 2 can start is by taking one of them.
	waitJobClients(t, m, id1, 2, 30*time.Second)

	id2, err := m.Submit("short-sat", sat, 1)
	if err != nil {
		t.Fatal(err)
	}

	s2 := waitJobState(t, m, id2, time.Minute)
	s1 := waitJobState(t, m, id1, time.Minute)
	if s1.Verdict != "UNSAT" {
		t.Fatalf("job %d verdict %q, want UNSAT (search space lost across preemption?)", id1, s1.Verdict)
	}
	if s2.Verdict != "SAT" || !modelSatisfies(sat, s2.Model) {
		t.Fatalf("job %d verdict %q model %v, want satisfying SAT", id2, s2.Verdict, s2.Model)
	}
	if s1.Preemptions < 1 {
		t.Fatalf("job %d preemptions = %d, want >= 1", id1, s1.Preemptions)
	}

	m.Shutdown()
	<-done
	wg.Wait()

	// The causal chain in the flight log: job 1 loses a client to a
	// checkpoint (job-preempt), job 2 starts on a client that was job
	// 1's, and job 1's checkpoint later travels to a client (migrate)
	// and resumes there (job-resume), both pointing back at the
	// preempt event that created it.
	evs := fl.Events()
	var preempt, migrate, resume, assign2 *trace.FEvent
	for i := range evs {
		ev := &evs[i]
		switch {
		case ev.Kind == trace.FEvJobPreempt && ev.Job == id1 && preempt == nil:
			preempt = ev
		case ev.Kind == trace.FEvAssign && ev.Job == id2 && assign2 == nil:
			assign2 = ev
		case ev.Kind == trace.FEvMigrate && ev.Job == id1 && preempt != nil &&
			ev.Parent == preempt.ID && migrate == nil:
			migrate = ev
		case ev.Kind == trace.FEvJobResume && ev.Job == id1 && preempt != nil &&
			ev.Parent == preempt.ID && resume == nil:
			resume = ev
		}
	}
	if preempt == nil {
		t.Fatal("flight log has no job-preempt event for job 1")
	}
	if assign2 == nil {
		t.Fatal("flight log has no assign event for job 2 — it never took a client")
	}
	if migrate == nil || resume == nil {
		t.Fatalf("flight log missing the migrate/resume pair under preempt %d (migrate=%v resume=%v)",
			preempt.ID, migrate != nil, resume != nil)
	}
	if !(preempt.ID < migrate.ID && migrate.ID < resume.ID) {
		t.Fatalf("chain out of order: preempt=%d migrate=%d resume=%d",
			preempt.ID, migrate.ID, resume.ID)
	}
	if migrate.Client != preempt.Client {
		t.Fatalf("migrate donor %d is not the preempted client %d", migrate.Client, preempt.Client)
	}
	if resume.Client != migrate.Peer {
		t.Fatalf("resume client %d is not the migrate recipient %d", resume.Client, migrate.Peer)
	}
	if verdicts := trace.JobVerdicts(evs); verdicts[id1] != "UNSAT" || verdicts[id2] != "SAT" {
		t.Fatalf("flight-log verdicts %v disagree with API", verdicts)
	}
}

// TestServeHTTPAPI drives the service purely over HTTP: submit via a
// DIMACS POST body, poll status, fetch the result with its model, list
// jobs, cancel a long-running job mid-run, and get proper error codes
// for unknown IDs, double cancels, and garbage bodies.
func TestServeHTTPAPI(t *testing.T) {
	tr := comm.NewInprocTransport()
	svc := NewService(nil) // late-bound: endpoints go into the config first
	m, done := serveMaster(t, tr, MasterConfig{
		ListenAddr:     "serve-http",
		SchedPolicy:    "fair-share",
		MetricsAddr:    "127.0.0.1:0",
		ExtraEndpoints: svc.Endpoints(),
	})
	svc.Attach(m)
	wg := serveClients(t, tr, "serve-http", 2, nil)
	base := "http://" + m.MetricsAddr()

	dimacs := func(f *cnf.Formula) *bytes.Buffer {
		b := new(bytes.Buffer)
		if err := cnf.WriteDIMACS(b, f); err != nil {
			t.Fatal(err)
		}
		return b
	}
	post := func(path string, body *bytes.Buffer) (*http.Response, string) {
		t.Helper()
		if body == nil {
			body = new(bytes.Buffer)
		}
		resp, err := http.Post(base+path, "text/plain", body)
		if err != nil {
			t.Fatal(err)
		}
		out := new(bytes.Buffer)
		_, _ = out.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, out.String()
	}
	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		out := new(bytes.Buffer)
		_, _ = out.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, out.String()
	}

	// Submit a small SAT instance and a long UNSAT one to cancel.
	sat := satTestFormula(t)
	resp, body := post("/jobs?name=websat&priority=2", dimacs(sat))
	if resp.StatusCode != http.StatusAccepted || !strings.Contains(body, `"id"`) {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	resp, body = post("/jobs?name=weblong", dimacs(gen.Pigeonhole(10)))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit long: %d %s", resp.StatusCode, body)
	}

	// Garbage bodies and bad priorities are the client's fault.
	if resp, _ = post("/jobs", bytes.NewBufferString("this is not DIMACS")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage submit status %d, want 400", resp.StatusCode)
	}
	if resp, _ = post("/jobs?priority=x", dimacs(sat)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority status %d, want 400", resp.StatusCode)
	}

	// The list shows both jobs in submission order with their names.
	if _, body = get("/jobs"); !strings.Contains(body, "websat") || !strings.Contains(body, "weblong") {
		t.Fatalf("job list missing names: %s", body)
	}

	// Poll job 1 to a SAT verdict, then fetch the model on /result.
	deadline := time.Now().Add(time.Minute)
	for {
		if _, body = get("/jobs/1"); strings.Contains(body, `"state": "done"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job 1 never finished: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(body, `"verdict": "SAT"`) {
		t.Fatalf("job 1 status: %s", body)
	}
	if _, body = get("/jobs/1/result"); !strings.Contains(body, `"model"`) {
		t.Fatalf("result has no model: %s", body)
	}

	// Cancel the long job mid-run; a second cancel conflicts.
	if resp, body = post("/jobs/2/cancel", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d %s", resp.StatusCode, body)
	}
	if resp, _ = post("/jobs/2/cancel", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel status %d, want 409", resp.StatusCode)
	}
	if _, body = get("/jobs/2"); !strings.Contains(body, `"state": "cancelled"`) {
		t.Fatalf("job 2 after cancel: %s", body)
	}

	// Unknown IDs are 404 on status, result and cancel alike.
	if resp, _ = get("/jobs/99"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", resp.StatusCode)
	}
	if resp, _ = post("/jobs/99/cancel", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown cancel status %d, want 404", resp.StatusCode)
	}

	// The cancelled job's clients came back: a third submission still
	// completes, proving the pool was actually released.
	resp, body = post("/jobs?name=after", dimacs(gen.Pigeonhole(5)))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-cancel submit: %d %s", resp.StatusCode, body)
	}
	s3 := waitJobState(t, m, 3, time.Minute)
	if s3.Verdict != "UNSAT" {
		t.Fatalf("post-cancel job verdict %q, want UNSAT", s3.Verdict)
	}

	m.Shutdown()
	<-done
	wg.Wait()
}

// TestServeAdmissionAndErrors pins the Go-API edges: admission control
// rejects past the active cap and frees a slot when a job ends; a
// single-job master refuses scheduling calls outright.
func TestServeAdmissionAndErrors(t *testing.T) {
	tr := comm.NewInprocTransport()
	m, done := serveMaster(t, tr, MasterConfig{
		ListenAddr: "serve-admit",
		Admission:  Admission{MaxActive: 1},
	})

	f := cnf.NewFormula(2)
	f.Add(1, 2)
	id1, err := m.Submit("one", f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("two", f, 1); err == nil {
		t.Fatal("second submit admitted past MaxActive=1")
	}
	if err := m.CancelJob(id1); err != nil {
		t.Fatal(err)
	}
	// The cancelled job no longer counts as active; the queue reopens.
	if _, err := m.Submit("three", f, 1); err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
	if err := m.CancelJob(99); err == nil {
		t.Fatal("cancelling an unknown job succeeded")
	}
	if _, err := m.JobStatus(99, false); err == nil {
		t.Fatal("status of an unknown job succeeded")
	}
	m.Shutdown()
	<-done

	// A classic single-job master refuses every scheduling call.
	sm, err := NewMaster(MasterConfig{
		Transport:  tr,
		ListenAddr: "serve-single",
		Formula:    f,
		Timeout:    time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	sdone := make(chan Result, 1)
	go func() { res, _ := sm.Run(); sdone <- res }()
	if _, err := sm.Submit("x", f, 1); err == nil {
		t.Fatal("Submit on a single-job master succeeded")
	}
	if err := sm.CancelJob(0); err == nil {
		t.Fatal("CancelJob on a single-job master succeeded")
	}
	sm.Shutdown()
	<-sdone
}

// TestServeSchedulerChurn hammers the scheduler with arrivals, cancels
// and late-joining clients at a small rebalance period — the -race CI
// target. Every job must still reach a terminal state and the verdicts
// that do land must be correct.
func TestServeSchedulerChurn(t *testing.T) {
	tr := comm.NewInprocTransport()
	m, done := serveMaster(t, tr, MasterConfig{
		ListenAddr:      "serve-churn",
		SchedPolicy:     "priority",
		RebalancePeriod: 2 * time.Millisecond,
		Admission:       Admission{MaxActive: 16},
	})
	wg := serveClients(t, tr, "serve-churn", 2, nil)

	type want struct {
		id      int
		verdict string // "" = cancelled, no verdict expected
	}
	var wants []want
	for i := 0; i < 6; i++ {
		var f *cnf.Formula
		verdict := ""
		if i%2 == 0 {
			f = gen.Pigeonhole(6)
			verdict = "UNSAT"
		} else {
			f = gen.RandomKSAT(20, 70, 3, 3)
			verdict = "SAT"
		}
		id, err := m.Submit(fmt.Sprintf("churn-%d", i), f, 1+i%3)
		if err != nil {
			t.Fatal(err)
		}
		// Cancel every third job almost immediately, racing the
		// scheduler's assignment of it.
		if i%3 == 2 {
			verdict = ""
			go func() { _ = m.CancelJob(id) }()
		}
		wants = append(wants, want{id, verdict})
		if i == 2 {
			// Two more clients join mid-stream.
			wg2 := serveClients(t, tr, "serve-churn", 2, nil)
			defer wg2.Wait()
		}
		time.Sleep(3 * time.Millisecond)
	}

	for _, w := range wants {
		snap := waitJobState(t, m, w.id, time.Minute)
		if w.verdict != "" && snap.Verdict != w.verdict {
			t.Fatalf("job %d verdict %q, want %q", w.id, snap.Verdict, w.verdict)
		}
		if w.verdict == "" && snap.State != "cancelled" && snap.Verdict == "" {
			t.Fatalf("job %d neither cancelled nor decided: %+v", w.id, snap)
		}
	}
	m.Shutdown()
	<-done
	wg.Wait()
}
