// Package trace records and summarizes solver instrumentation events.
// The paper's EveryWare instrumentation could cost up to 50% of solver
// performance, so GridSAT's timed runs disabled it (§4.1); this package is
// the optional diagnostics channel for everything else — understanding a
// run's decision/conflict dynamics, plotting active-client behavior, and
// the ablation benchmark that reproduces the overhead observation.
package trace

import (
	"fmt"
	"io"
	"sync"

	"gridsat/internal/solver"
)

// Recorder accumulates solver events in a bounded ring buffer with
// aggregate counters. Safe for concurrent use; one Recorder can serve many
// solvers.
type Recorder struct {
	mu     sync.Mutex
	ring   []solver.Event
	next   int
	filled bool
	// counts is sized from the solver's EvKindCount sentinel, so a new
	// event kind is counted automatically instead of silently dropped.
	counts [solver.EvKindCount]int64
	// learned-clause length histogram, bucketed by powers of two.
	lenHist [numLenBuckets]int64
}

// numLenBuckets bounds the power-of-two length histogram (last bucket
// absorbs everything >= 2^15 literals).
const numLenBuckets = 16

// lenBucket maps a learned-clause length to its power-of-two histogram
// bucket; bucketMidpoint is its inverse, the representative length used
// when averaging. Keep the two in sync.
func lenBucket(l int) int {
	b := 0
	for ; l > 1 && b < numLenBuckets-1; l >>= 1 {
		b++
	}
	return b
}

func bucketMidpoint(b int) int { return 1 << uint(b) }

// NewRecorder returns a recorder keeping the most recent `capacity` events
// (minimum 1).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{ring: make([]solver.Event, capacity)}
}

// Hook returns the function to install as solver.Options.Instrument.
func (r *Recorder) Hook() func(solver.Event) {
	return func(ev solver.Event) {
		r.mu.Lock()
		r.ring[r.next] = ev
		r.next++
		if r.next == len(r.ring) {
			r.next = 0
			r.filled = true
		}
		if int(ev.Kind) >= 0 && int(ev.Kind) < len(r.counts) {
			r.counts[ev.Kind]++
		}
		if ev.Kind == solver.EvLearn {
			r.lenHist[lenBucket(ev.ClauseLen)]++
		}
		r.mu.Unlock()
	}
}

// Count returns how many events of the given kind were recorded.
func (r *Recorder) Count(kind solver.EventKind) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(kind) < 0 || int(kind) >= len(r.counts) {
		return 0
	}
	return r.counts[kind]
}

// Counts returns every per-kind total, indexed by EventKind. The array
// length tracks solver.EvKindCount, so new kinds appear here even before
// Summary learns to name them.
func (r *Recorder) Counts() [solver.EvKindCount]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []solver.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		out := make([]solver.Event, r.next)
		copy(out, r.ring[:r.next])
		return out
	}
	out := make([]solver.Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Summary is an aggregate view of a recording.
type Summary struct {
	Decisions, Conflicts, Learned, Restarts, Splits int64
	// MeanLearnedLen approximates the average learned-clause length from
	// the power-of-two histogram.
	MeanLearnedLen float64
}

// Summary computes the aggregate view.
func (r *Recorder) Summary() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Summary{
		Decisions: r.counts[solver.EvDecision],
		Conflicts: r.counts[solver.EvConflict],
		Learned:   r.counts[solver.EvLearn],
		Restarts:  r.counts[solver.EvRestart],
		Splits:    r.counts[solver.EvSplit],
	}
	var total, weighted float64
	for b, n := range r.lenHist {
		total += float64(n)
		weighted += float64(n) * float64(bucketMidpoint(b))
	}
	if total > 0 {
		s.MeanLearnedLen = weighted / total
	}
	return s
}

// WriteCSV dumps the retained events as CSV (kind,lit,level,clauselen).
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "kind,lit,level,clause_len"); err != nil {
		return err
	}
	for _, ev := range r.Events() {
		lit := ""
		if ev.Kind == solver.EvDecision || ev.Kind == solver.EvLearn || ev.Kind == solver.EvSplit {
			lit = ev.Lit.String()
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d\n", ev.Kind, lit, ev.Level, ev.ClauseLen); err != nil {
			return err
		}
	}
	return nil
}
