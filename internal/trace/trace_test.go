package trace

import (
	"strings"
	"testing"

	"gridsat/internal/gen"
	"gridsat/internal/solver"
)

func runWithRecorder(t *testing.T, capacity int) (*Recorder, solver.Stats) {
	t.Helper()
	rec := NewRecorder(capacity)
	opts := solver.DefaultOptions()
	opts.Instrument = rec.Hook()
	s := solver.New(gen.Pigeonhole(7), opts)
	if r := s.Solve(solver.Limits{}); r.Status != solver.StatusUNSAT {
		t.Fatalf("got %v", r.Status)
	}
	return rec, s.Stats()
}

func TestRecorderCountsMatchSolverStats(t *testing.T) {
	rec, st := runWithRecorder(t, 1<<16)
	if rec.Count(solver.EvDecision) != st.Decisions {
		t.Errorf("decisions: recorder %d, stats %d", rec.Count(solver.EvDecision), st.Decisions)
	}
	if rec.Count(solver.EvConflict) != st.Conflicts {
		t.Errorf("conflicts: recorder %d, stats %d", rec.Count(solver.EvConflict), st.Conflicts)
	}
	if rec.Count(solver.EvLearn) != st.Learned {
		t.Errorf("learned: recorder %d, stats %d", rec.Count(solver.EvLearn), st.Learned)
	}
	if rec.Count(solver.EvRestart) != st.Restarts {
		t.Errorf("restarts: recorder %d, stats %d", rec.Count(solver.EvRestart), st.Restarts)
	}
}

func TestRecorderRingRetention(t *testing.T) {
	rec, _ := runWithRecorder(t, 100)
	evs := rec.Events()
	if len(evs) != 100 {
		t.Fatalf("retained %d events, want the last 100", len(evs))
	}
}

func TestRecorderSummary(t *testing.T) {
	rec, st := runWithRecorder(t, 1024)
	sum := rec.Summary()
	if sum.Decisions != st.Decisions || sum.Conflicts != st.Conflicts {
		t.Fatalf("summary mismatch: %+v vs %+v", sum, st)
	}
	if sum.MeanLearnedLen <= 1 {
		t.Errorf("mean learned length %.1f implausible for pigeonhole", sum.MeanLearnedLen)
	}
}

func TestRecorderCSV(t *testing.T) {
	rec, _ := runWithRecorder(t, 50)
	var b strings.Builder
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 51 { // header + 50 retained events
		t.Fatalf("csv has %d lines", len(lines))
	}
	if lines[0] != "kind,lit,level,clause_len" {
		t.Fatalf("bad header %q", lines[0])
	}
}

func TestRecorderMinimumCapacity(t *testing.T) {
	rec := NewRecorder(0)
	rec.Hook()(solver.Event{Kind: solver.EvDecision})
	if len(rec.Events()) != 1 {
		t.Fatal("zero-capacity recorder broken")
	}
}

func TestSplitEventRecorded(t *testing.T) {
	rec := NewRecorder(1024)
	opts := solver.DefaultOptions()
	opts.Instrument = rec.Hook()
	s := solver.New(gen.Pigeonhole(8), opts)
	s.Solve(solver.Limits{MaxConflicts: 20})
	if s.DecisionLevel() == 0 {
		t.Skip("no decision to split")
	}
	if _, err := s.Split(0, 0); err != nil {
		t.Fatal(err)
	}
	if rec.Count(solver.EvSplit) != 1 {
		t.Fatalf("split events = %d, want 1", rec.Count(solver.EvSplit))
	}
}

func TestEventKindString(t *testing.T) {
	kinds := map[solver.EventKind]string{
		solver.EvDecision: "decision", solver.EvConflict: "conflict",
		solver.EvLearn: "learn", solver.EvRestart: "restart", solver.EvSplit: "split",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d -> %q, want %q", k, k.String(), want)
		}
	}
	if solver.EventKind(99).String() != "unknown" {
		t.Error("unknown kind should render")
	}
}
