package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// This file is the cluster flight recorder: a structured, append-only log
// of every causally significant control-plane action in a run — splits,
// share batches, heartbeats, client churn, memory sheds, the verdict —
// stamped with Lamport clocks and causal parent event IDs instead of wall
// clocks, so a deterministic (DES) run records an identical log every
// time. The paper's EveryWare instrumentation cost up to 50% of solver
// performance (§4.1) because it shipped per-implication events; the flight
// recorder stays off the solver hot path entirely (control-plane events
// are orders of magnitude rarer than propagations) and is measured at
// well under 5% end to end (internal/bench's flight ablation).

// Flight-event kinds. These are the JSONL schema's "kind" vocabulary;
// KnownKinds lists them all for validation.
const (
	FEvRunStart     = "run-start"     // N = launched/expected clients
	FEvClientJoin   = "client-join"   // Client joined the pool
	FEvClientLeave  = "client-leave"  // Client left (crash or disconnect)
	FEvAssign       = "assign"        // Client received the whole problem
	FEvSplitRequest = "split-request" // Client asked to shed work (Detail = why)
	FEvSplitIssue   = "split-issue"   // master paired donor Client with Peer
	FEvSplitAccept  = "split-accept"  // recipient Client started donor Peer's cofactor
	FEvSplitFail    = "split-fail"    // an issued split leg never completed
	FEvSplitBacklog = "split-backlog" // donor Client returned N leftover cofactors to the master
	FEvShareFlush   = "share-flush"   // Client flushed a batch of N learned clauses
	FEvShareRelay   = "share-relay"   // master fanned out N deduped clauses from Client
	FEvShareMerge   = "share-merge"   // Client imported N clauses from Peer
	FEvHeartbeat    = "heartbeat"     // liveness/telemetry tick
	FEvMemShed      = "mem-shed"      // Client's arena GC reclaimed N bytes
	FEvMigrate      = "migrate"       // whole subproblem moved Client -> Peer
	FEvRecover      = "recover"       // orphaned subproblem restarted on Client
	FEvSubUNSAT     = "sub-unsat"     // Client exhausted its subproblem
	FEvProgress     = "progress"      // coverage advanced; N = fixed-point units (2^-62)
	FEvImportUse    = "import-use"    // Client first used an imported clause; N = uses this window
	FEvVerdict      = "verdict"       // run decided (Detail = SAT/UNSAT/UNKNOWN)

	// Multi-job scheduler lifecycle kinds. Single-job runs never emit
	// them (the implicit job is ID 0), so pre-scheduler logs stay valid
	// and bit-identical.
	FEvJobSubmit  = "job-submit"  // Job entered the queue (N = priority, Detail = name)
	FEvJobStart   = "job-start"   // Job received its first client allocation
	FEvJobPreempt = "job-preempt" // Client checkpointed Job's subproblem back to the queue
	FEvJobResume  = "job-resume"  // a preempted subproblem restarted on Client (Parent = preempt)
	FEvJobDone    = "job-done"    // Job reached a verdict (Detail = SAT/UNSAT/UNKNOWN)
	FEvJobCancel  = "job-cancel"  // Job was cancelled by the submitter

	// FEvAnomaly records a fired watchdog rule (Detail = "rule: detail",
	// Client set for per-client rules). Emitted only when a watchdog is
	// configured, so existing logs are unaffected.
	FEvAnomaly = "anomaly"
)

// KnownKinds is the flight-event vocabulary, used by Validate.
var KnownKinds = map[string]bool{
	FEvRunStart: true, FEvClientJoin: true, FEvClientLeave: true,
	FEvAssign: true, FEvSplitRequest: true, FEvSplitIssue: true,
	FEvSplitAccept: true, FEvSplitFail: true, FEvSplitBacklog: true,
	FEvShareFlush: true,
	FEvShareRelay: true, FEvShareMerge: true, FEvHeartbeat: true,
	FEvMemShed: true, FEvMigrate: true, FEvRecover: true,
	FEvSubUNSAT: true, FEvProgress: true, FEvImportUse: true,
	FEvVerdict:   true,
	FEvJobSubmit: true, FEvJobStart: true, FEvJobPreempt: true,
	FEvJobResume: true, FEvJobDone: true, FEvJobCancel: true,
	FEvAnomaly: true,
}

// FEvent is one flight-recorder event — one JSONL line. IDs are assigned
// by the recorder, sequential from 1; Lamport timestamps are merged from
// whatever the emitter observed, so an event's timestamp always exceeds
// its cause's. Parent is the event ID of the causal predecessor within the
// same log (0 = none), letting consumers rebuild message causality and
// split lineage exactly.
type FEvent struct {
	ID      uint64 `json:"id"`
	Lamport uint64 `json:"lamport"`
	Parent  uint64 `json:"parent,omitempty"`
	Kind    string `json:"kind"`
	Client  int    `json:"client,omitempty"`
	// Worker attributes the event to an in-host portfolio worker of
	// Client (0 = the pathfinder, also the only worker on
	// single-threaded clients). Set on verdict/sub-unsat events.
	Worker int `json:"worker,omitempty"`
	// Job keys the event to a scheduler job. 0 is the implicit
	// single-job run (omitted from the JSONL line), so logs recorded
	// before the scheduler existed — and single-job logs after it —
	// are byte-identical to each other.
	Job     int     `json:"job,omitempty"`
	Peer    int     `json:"peer,omitempty"`
	SplitID int     `json:"split,omitempty"`
	N       int64   `json:"n,omitempty"`
	VSec    float64 `json:"vsec,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

// Flight is the recorder. Events accumulate in memory (a run's
// control-plane event count is small next to its propagation count) and
// are optionally streamed as JSONL to a sink as they happen, so a crashed
// or killed run still leaves a usable log behind. Safe for concurrent use.
type Flight struct {
	mu     sync.Mutex
	clock  uint64
	events []FEvent
	w      *bufio.Writer
	enc    *json.Encoder
	err    error
}

// NewFlight returns a recorder; w, when non-nil, receives each event as a
// JSONL line at emit time (call Flush before reading the sink).
func NewFlight(w io.Writer) *Flight {
	f := &Flight{}
	if w != nil {
		f.w = bufio.NewWriter(w)
		f.enc = json.NewEncoder(f.w)
	}
	return f
}

// Emit records ev and returns its assigned event ID. The recorder merges
// ev.Lamport (the emitter's observed timestamp; 0 for a purely local
// event) into its clock Lamport-style, so the stored timestamp strictly
// exceeds both the previous event's and the observed cause's.
func (f *Flight) Emit(ev FEvent) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ev.Lamport > f.clock {
		f.clock = ev.Lamport
	}
	f.clock++
	ev.Lamport = f.clock
	ev.ID = uint64(len(f.events) + 1)
	f.events = append(f.events, ev)
	if f.enc != nil && f.err == nil {
		f.err = f.enc.Encode(ev)
	}
	return ev.ID
}

// Tick advances the recorder's Lamport clock without recording an event —
// used to stamp outbound messages so receivers can merge.
func (f *Flight) Tick() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.clock++
	return f.clock
}

// Now returns the recorder's current Lamport time.
func (f *Flight) Now() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.clock
}

// Len returns the number of recorded events.
func (f *Flight) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.events)
}

// Events returns a copy of the recorded log, oldest first.
func (f *Flight) Events() []FEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FEvent, len(f.events))
	copy(out, f.events)
	return out
}

// Flush drains the streaming sink (no-op without one) and reports any
// write error encountered so far.
func (f *Flight) Flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.w != nil {
		if err := f.w.Flush(); err != nil && f.err == nil {
			f.err = err
		}
	}
	return f.err
}

// WriteJSONL writes the whole log as JSONL (one event per line),
// independent of any streaming sink.
func (f *Flight) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, f.Events())
}

// WriteJSONL writes events as JSONL, one per line.
func WriteJSONL(w io.Writer, events []FEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL flight log back into events.
func ReadJSONL(r io.Reader) ([]FEvent, error) {
	dec := json.NewDecoder(r)
	var out []FEvent
	for {
		var ev FEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: flight log line %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
}

// Validate checks the flight-log schema invariants: IDs sequential from 1,
// Lamport timestamps strictly increasing (one recorder = one clock), every
// kind known, and every parent referring to an earlier event.
func Validate(events []FEvent) error {
	for i, ev := range events {
		if ev.ID != uint64(i+1) {
			return fmt.Errorf("trace: event %d has ID %d, want %d", i, ev.ID, i+1)
		}
		if !KnownKinds[ev.Kind] {
			return fmt.Errorf("trace: event %d has unknown kind %q", ev.ID, ev.Kind)
		}
		if i > 0 && ev.Lamport <= events[i-1].Lamport {
			return fmt.Errorf("trace: event %d Lamport %d not after predecessor's %d",
				ev.ID, ev.Lamport, events[i-1].Lamport)
		}
		if ev.Parent >= ev.ID {
			return fmt.Errorf("trace: event %d parent %d is not an earlier event", ev.ID, ev.Parent)
		}
	}
	return nil
}

// FlightSummary is the aggregate view of a flight log embedded in run
// reports: total events, per-kind counts, the final verdict event's
// detail, and the log's last Lamport timestamp.
type FlightSummary struct {
	Events  int64            `json:"events"`
	PerKind map[string]int64 `json:"per_kind,omitempty"`
	Verdict string           `json:"verdict,omitempty"`
	Lamport uint64           `json:"lamport,omitempty"`
}

// Summarize aggregates a flight log.
func Summarize(events []FEvent) FlightSummary {
	s := FlightSummary{Events: int64(len(events)), PerKind: map[string]int64{}}
	for _, ev := range events {
		s.PerKind[ev.Kind]++
		if ev.Kind == FEvVerdict {
			s.Verdict = ev.Detail
		}
		if ev.Lamport > s.Lamport {
			s.Lamport = ev.Lamport
		}
	}
	return s
}

// CountByKind returns per-kind event totals, the unit of comparison for
// the replay verifier.
func CountByKind(events []FEvent) map[string]int64 {
	out := map[string]int64{}
	for _, ev := range events {
		out[ev.Kind]++
	}
	return out
}

// Verdict returns the Detail of the last verdict event ("" when the log
// has none — a run that was killed before deciding).
func Verdict(events []FEvent) string {
	for i := len(events) - 1; i >= 0; i-- {
		if events[i].Kind == FEvVerdict {
			return events[i].Detail
		}
	}
	return ""
}

// JobVerdicts returns the per-job outcomes recorded in a multi-job log:
// the Detail of each job's job-done (or job-cancel, as "CANCELLED")
// event. Single-job logs have no job lifecycle events and return an
// empty map.
func JobVerdicts(events []FEvent) map[int]string {
	out := map[int]string{}
	for _, ev := range events {
		switch ev.Kind {
		case FEvJobDone:
			out[ev.Job] = ev.Detail
		case FEvJobCancel:
			out[ev.Job] = "CANCELLED"
		}
	}
	return out
}

// sortedKinds returns the map's keys in stable order for rendering.
func sortedKinds(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
