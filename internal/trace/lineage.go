package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file reconstructs the run's search-space split lineage — the
// paper's Figure-2 picture of how the initial problem was recursively
// divided across the grid — from a flight log alone. The first
// split-accept event for a split ID forks the donor's current node into
// two children (the cofactor the donor kept, and the one the recipient
// received); every further accept carrying the same split ID — the other
// cofactors of a multi-way dilemma split, including leftovers served from
// the master's backlog later — attaches one more sibling under the same
// fork. Each accept therefore adds exactly one leaf, so a finished tree
// has exactly accepts+1 leaves regardless of split arity.

// Node statuses.
const (
	NodeOpen  = "open"  // still being solved (or run ended first)
	NodeSplit = "split" // interior: forked into two or more children
	NodeUNSAT = "unsat" // exhausted
	NodeSAT   = "sat"   // produced the model
	NodeLost  = "lost"  // owner left and the piece was never recovered
)

// LineageNode is one subproblem instance in the split tree.
type LineageNode struct {
	ID int `json:"id"`
	// Owner is the client solving this piece (the latest owner after
	// migrations or crash recovery).
	Owner int `json:"owner"`
	// SplitID is the split that created this node (0 for the root and for
	// donor-continuation halves).
	SplitID int    `json:"split_id,omitempty"`
	Status  string `json:"status"`
	// BornVSec / EndVSec bound the node's lifetime in DES virtual time
	// (zero in live runs, which have no deterministic clock).
	BornVSec float64 `json:"born_vsec,omitempty"`
	EndVSec  float64 `json:"end_vsec,omitempty"`
	// BornEv is the flight-log event that created the node.
	BornEv uint64 `json:"born_ev,omitempty"`
	// Per-subtree stats: events attributed to this node while it was the
	// owner's current piece.
	ShareFlushes int64 `json:"share_flushes,omitempty"`
	MemSheds     int64 `json:"mem_sheds,omitempty"`
	SplitReqs    int64 `json:"split_requests,omitempty"`
	Migrations   int64 `json:"migrations,omitempty"`

	Children []*LineageNode `json:"children,omitempty"`
}

// LineageTree is the reconstructed split tree plus flat bookkeeping.
type LineageTree struct {
	Root  *LineageNode `json:"root"`
	nodes []*LineageNode
}

// Nodes returns every node, in creation order.
func (t *LineageTree) Nodes() []*LineageNode { return t.nodes }

// Leaves returns the leaf nodes (no children), in creation order.
func (t *LineageTree) Leaves() []*LineageNode {
	var out []*LineageNode
	for _, n := range t.nodes {
		if len(n.Children) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Depth returns the deepest leaf's depth (root = 0, empty tree = -1).
func (t *LineageTree) Depth() int {
	if t.Root == nil {
		return -1
	}
	var walk func(n *LineageNode, d int) int
	walk = func(n *LineageNode, d int) int {
		best := d
		for _, c := range n.Children {
			if cd := walk(c, d+1); cd > best {
				best = cd
			}
		}
		return best
	}
	return walk(t.Root, 0)
}

// LineageMetrics are per-tree split-quality aggregates — the numbers a
// strategy ablation compares: how evenly splits divided the work and how
// deep the guiding-path tree had to grow before subproblems died.
type LineageMetrics struct {
	Nodes  int `json:"nodes"`
	Leaves int `json:"leaves"`
	Depth  int `json:"depth"`
	// MaxFanout is the widest fork (2 for pure first-decision trees, up to
	// 2^k for a dilemma strategy).
	MaxFanout int `json:"max_fanout,omitempty"`
	// BalanceMean averages, over interior nodes, the ratio of the smallest
	// to the largest child-subtree leaf count: 1.0 means every fork divided
	// its work perfectly evenly.
	BalanceMean float64 `json:"balance_mean,omitempty"`
	// UnsatLeaves counts refuted leaves; KillDepthMean/Max summarize how
	// deep in the tree they were killed.
	UnsatLeaves   int     `json:"unsat_leaves,omitempty"`
	KillDepthMean float64 `json:"kill_depth_mean,omitempty"`
	KillDepthMax  int     `json:"kill_depth_max,omitempty"`
}

// Metrics computes the tree's split-quality aggregates in one walk.
func (t *LineageTree) Metrics() LineageMetrics {
	m := LineageMetrics{Nodes: len(t.nodes), Leaves: len(t.Leaves()), Depth: t.Depth()}
	if t.Root == nil {
		return m
	}
	var balSum float64
	var balN int
	var killSum int64
	var walk func(n *LineageNode, d int) int // returns subtree leaf count
	walk = func(n *LineageNode, d int) int {
		if len(n.Children) == 0 {
			if n.Status == NodeUNSAT {
				m.UnsatLeaves++
				killSum += int64(d)
				if d > m.KillDepthMax {
					m.KillDepthMax = d
				}
			}
			return 1
		}
		if len(n.Children) > m.MaxFanout {
			m.MaxFanout = len(n.Children)
		}
		total, minL, maxL := 0, 0, 0
		for i, c := range n.Children {
			l := walk(c, d+1)
			total += l
			if i == 0 || l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
		}
		balSum += float64(minL) / float64(maxL)
		balN++
		return total
	}
	walk(t.Root, 0)
	if balN > 0 {
		m.BalanceMean = balSum / float64(balN)
	}
	if m.UnsatLeaves > 0 {
		m.KillDepthMean = float64(killSum) / float64(m.UnsatLeaves)
	}
	return m
}

// lineageBuilder folds flight events into a tree.
type lineageBuilder struct {
	tree *LineageTree
	// cur maps a client to the node it is currently solving.
	cur map[int]*LineageNode
	// last remembers a client's most recent node even after it closed, so
	// a split delivery that raced with the donor finishing still attaches
	// to the right place.
	last map[int]*LineageNode
	// orphans queues nodes whose owner left, FIFO — recover events reclaim
	// them in the same order the runtime reassigns checkpoints.
	orphans []*LineageNode
	// forks maps a split ID to the interior node it forked, so every
	// cofactor of a multi-way split lands as a sibling under one fork.
	forks map[int]*LineageNode
}

func (b *lineageBuilder) newNode(owner int, ev FEvent, splitID int) *LineageNode {
	n := &LineageNode{
		ID: len(b.tree.nodes) + 1, Owner: owner, Status: NodeOpen,
		BornVSec: ev.VSec, BornEv: ev.ID, SplitID: splitID,
	}
	b.tree.nodes = append(b.tree.nodes, n)
	b.cur[owner] = n
	b.last[owner] = n
	return n
}

// BuildLineage reconstructs the split tree from a flight log. Logs from
// runs without an assignment produce an empty tree (nil Root).
func BuildLineage(events []FEvent) *LineageTree {
	b := &lineageBuilder{
		tree:  &LineageTree{},
		cur:   map[int]*LineageNode{},
		last:  map[int]*LineageNode{},
		forks: map[int]*LineageNode{},
	}
	for _, ev := range events {
		switch ev.Kind {
		case FEvAssign:
			n := b.newNode(ev.Client, ev, 0)
			if b.tree.Root == nil {
				b.tree.Root = n
			}
		case FEvSplitAccept:
			b.acceptSplit(ev)
		case FEvSubUNSAT:
			if n := b.cur[ev.Client]; n != nil {
				n.Status = NodeUNSAT
				n.EndVSec = ev.VSec
				delete(b.cur, ev.Client)
			}
		case FEvMigrate:
			if n := b.cur[ev.Client]; n != nil {
				delete(b.cur, ev.Client)
				n.Owner = ev.Peer
				n.Migrations++
				b.cur[ev.Peer] = n
				b.last[ev.Peer] = n
			}
		case FEvClientLeave:
			if n := b.cur[ev.Client]; n != nil {
				delete(b.cur, ev.Client)
				n.Status = NodeLost
				n.EndVSec = ev.VSec
				b.orphans = append(b.orphans, n)
			}
		case FEvRecover:
			if len(b.orphans) > 0 {
				n := b.orphans[0]
				b.orphans = b.orphans[1:]
				n.Status = NodeOpen
				n.EndVSec = 0
				n.Owner = ev.Client
				b.cur[ev.Client] = n
				b.last[ev.Client] = n
			}
		case FEvShareFlush:
			if n := b.cur[ev.Client]; n != nil {
				n.ShareFlushes++
			}
		case FEvMemShed:
			if n := b.cur[ev.Client]; n != nil {
				n.MemSheds++
			}
		case FEvSplitRequest:
			if n := b.cur[ev.Client]; n != nil {
				n.SplitReqs++
			}
		case FEvVerdict:
			if ev.Detail == "SAT" {
				if n := b.cur[ev.Client]; n != nil {
					n.Status = NodeSAT
					n.EndVSec = ev.VSec
				}
			}
		}
	}
	return b.tree
}

// acceptSplit forks the donor's node on the first accept of a split ID:
// the donor keeps one cofactor (a fresh child node), the recipient starts
// another. Accepts that repeat an already-forked split ID — the remaining
// cofactors of a multi-way split, whenever they land — attach as further
// siblings under the same fork, keeping every cofactor of one split at the
// same tree depth. When the first delivery raced with the donor finishing
// its (already narrowed) piece, the closed node's verdict moves onto the
// donor-continuation child so the interior node is always a clean "split".
func (b *lineageBuilder) acceptSplit(ev FEvent) {
	donor, recipient := ev.Peer, ev.Client
	if p := b.forks[ev.SplitID]; ev.SplitID != 0 && p != nil {
		half := b.newNode(recipient, ev, ev.SplitID)
		p.Children = append(p.Children, half)
		return
	}
	d := b.cur[donor]
	closed := false
	if d == nil {
		if d = b.last[donor]; d == nil {
			// No recorded ancestry (truncated log): treat as a root-less
			// fragment by giving the recipient a standalone node.
			b.newNode(recipient, ev, ev.SplitID)
			return
		}
		closed = true
	}
	cont := b.newNode(donor, ev, 0)
	if closed {
		cont.Status = d.Status
		cont.EndVSec = d.EndVSec
		delete(b.cur, donor)
	}
	half := b.newNode(recipient, ev, ev.SplitID)
	d.Status = NodeSplit
	d.EndVSec = ev.VSec
	d.Children = append(d.Children, cont, half)
	if ev.SplitID != 0 {
		b.forks[ev.SplitID] = d
	}
}

// WriteJSON writes the tree (root-recursive) with its quality metrics.
func (t *LineageTree) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		LineageMetrics
		Root *LineageNode `json:"root"`
	}{t.Metrics(), t.Root})
}

// WriteDOT renders the tree for Graphviz: one box per subproblem labeled
// with its owner, status, and per-subtree stats; split edges carry the
// split ID.
func (t *LineageTree) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph lineage {"); err != nil {
		return err
	}
	fmt.Fprintln(w, `  node [shape=box, fontname="monospace"];`)
	for _, n := range t.nodes {
		label := fmt.Sprintf("#%d client %d\\n%s", n.ID, n.Owner, n.Status)
		if n.EndVSec > n.BornVSec {
			label += fmt.Sprintf("\\n%.1f-%.1f vs", n.BornVSec, n.EndVSec)
		}
		if n.ShareFlushes > 0 || n.MemSheds > 0 {
			label += fmt.Sprintf("\\nflush=%d shed=%d", n.ShareFlushes, n.MemSheds)
		}
		color := map[string]string{
			NodeUNSAT: "lightblue", NodeSAT: "palegreen",
			NodeSplit: "lightgray", NodeLost: "lightsalmon",
		}[n.Status]
		attrs := fmt.Sprintf("label=\"%s\"", label)
		if color != "" {
			attrs += fmt.Sprintf(", style=filled, fillcolor=%q", color)
		}
		if _, err := fmt.Fprintf(w, "  n%d [%s];\n", n.ID, attrs); err != nil {
			return err
		}
		for _, c := range n.Children {
			edge := ""
			if c.SplitID != 0 {
				edge = fmt.Sprintf(" [label=\"s%d\"]", c.SplitID)
			}
			if _, err := fmt.Fprintf(w, "  n%d -> n%d%s;\n", n.ID, c.ID, edge); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
