package trace

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the deterministic replay verifier. A DES run is a pure
// function of its configuration and seed, so re-driving the same
// configuration must reproduce the recorded flight log event for event —
// same verdict, same per-kind counts, same Lamport horizon. A divergence
// means nondeterminism leaked into the simulation (map iteration, wall
// clocks, unseeded randomness), which is exactly the class of bug that
// makes distributed solver results unreproducible.

// ReplayVerify re-runs a recorded scenario and checks the fresh flight log
// against the recorded one. The rerun closure receives an empty recorder
// and must drive the same deterministic run that produced `recorded` (the
// caller owns reconstructing the configuration; this package never imports
// the runtime). Returns nil when the replay matches.
func ReplayVerify(recorded []FEvent, rerun func(*Flight) error) error {
	if err := Validate(recorded); err != nil {
		return fmt.Errorf("recorded log invalid: %w", err)
	}
	f := NewFlight(nil)
	if err := rerun(f); err != nil {
		return fmt.Errorf("replay run failed: %w", err)
	}
	replayed := f.Events()
	if err := Validate(replayed); err != nil {
		return fmt.Errorf("replayed log invalid: %w", err)
	}
	return CompareLogs(recorded, replayed)
}

// CompareLogs checks that two flight logs describe the same run: identical
// verdict (per job, for multi-job logs), identical per-kind event counts,
// and identical final Lamport time. It deliberately compares aggregates
// rather than raw byte equality so the error on mismatch names what
// diverged.
func CompareLogs(recorded, replayed []FEvent) error {
	var diffs []string
	if rv, pv := Verdict(recorded), Verdict(replayed); rv != pv {
		diffs = append(diffs, fmt.Sprintf("verdict: recorded %q, replayed %q", rv, pv))
	}
	rj, pj := JobVerdicts(recorded), JobVerdicts(replayed)
	jobs := map[int]bool{}
	for j := range rj {
		jobs[j] = true
	}
	for j := range pj {
		jobs[j] = true
	}
	for _, j := range sortedJobs(jobs) {
		if rj[j] != pj[j] {
			diffs = append(diffs, fmt.Sprintf("job %d verdict: recorded %q, replayed %q", j, rj[j], pj[j]))
		}
	}
	rc, pc := CountByKind(recorded), CountByKind(replayed)
	kinds := map[string]int64{}
	for k, v := range rc {
		kinds[k] = v
	}
	for k, v := range pc {
		if _, ok := kinds[k]; !ok {
			kinds[k] = v
		}
	}
	for _, k := range sortedKinds(kinds) {
		if rc[k] != pc[k] {
			diffs = append(diffs, fmt.Sprintf("%s: recorded %d, replayed %d", k, rc[k], pc[k]))
		}
	}
	if len(recorded) == len(replayed) && len(diffs) == 0 {
		if rl, pl := lastLamport(recorded), lastLamport(replayed); rl != pl {
			diffs = append(diffs, fmt.Sprintf("final lamport: recorded %d, replayed %d", rl, pl))
		}
	}
	if len(diffs) > 0 {
		return fmt.Errorf("trace: replay diverged from recording:\n  %s", strings.Join(diffs, "\n  "))
	}
	return nil
}

func sortedJobs(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for j := range set {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

func lastLamport(events []FEvent) uint64 {
	if len(events) == 0 {
		return 0
	}
	return events[len(events)-1].Lamport
}
