package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"gridsat/internal/solver"
)

func TestFlightEmitAssignsSequentialIDsAndLamport(t *testing.T) {
	f := NewFlight(nil)
	for i := 0; i < 5; i++ {
		id := f.Emit(FEvent{Kind: FEvHeartbeat})
		if id != uint64(i+1) {
			t.Fatalf("emit %d got id %d", i, id)
		}
	}
	evs := f.Events()
	if err := Validate(evs); err != nil {
		t.Fatal(err)
	}
	if evs[4].Lamport != 5 {
		t.Fatalf("lamport = %d, want 5", evs[4].Lamport)
	}
}

func TestFlightLamportMerge(t *testing.T) {
	f := NewFlight(nil)
	f.Emit(FEvent{Kind: FEvRunStart})
	// An event stamped with a remote Lamport time far ahead drags the
	// recorder's clock forward past it.
	f.Emit(FEvent{Kind: FEvShareRelay, Lamport: 100})
	ev := f.Events()[1]
	if ev.Lamport != 101 {
		t.Fatalf("merged lamport = %d, want 101", ev.Lamport)
	}
	if next := f.Emit(FEvent{Kind: FEvHeartbeat}); next != 3 {
		t.Fatalf("id = %d", next)
	}
	if got := f.Events()[2].Lamport; got != 102 {
		t.Fatalf("following lamport = %d, want 102", got)
	}
}

func TestFlightJSONLRoundTrip(t *testing.T) {
	f := NewFlight(nil)
	f.Emit(FEvent{Kind: FEvRunStart, N: 4})
	f.Emit(FEvent{Kind: FEvClientJoin, Client: 1, Detail: "host-a"})
	f.Emit(FEvent{Kind: FEvAssign, Client: 1, VSec: 4.5})
	var b bytes.Buffer
	if err := f.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("round trip lost events: %d", len(back))
	}
	orig := f.Events()
	for i := range back {
		if back[i] != orig[i] {
			t.Fatalf("event %d: %+v != %+v", i, back[i], orig[i])
		}
	}
}

func TestFlightStreamingSink(t *testing.T) {
	var b bytes.Buffer
	f := NewFlight(&b)
	f.Emit(FEvent{Kind: FEvRunStart})
	f.Emit(FEvent{Kind: FEvVerdict, Detail: "UNSAT"})
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1].Detail != "UNSAT" {
		t.Fatalf("streamed log wrong: %+v", back)
	}
}

func TestValidateRejectsBadLogs(t *testing.T) {
	cases := map[string][]FEvent{
		"gap in ids": {
			{ID: 1, Lamport: 1, Kind: FEvRunStart},
			{ID: 3, Lamport: 2, Kind: FEvVerdict},
		},
		"unknown kind": {{ID: 1, Lamport: 1, Kind: "warp-drive"}},
		"stalled lamport": {
			{ID: 1, Lamport: 5, Kind: FEvRunStart},
			{ID: 2, Lamport: 5, Kind: FEvVerdict},
		},
		"forward parent": {{ID: 1, Lamport: 1, Kind: FEvRunStart, Parent: 1}},
	}
	for name, evs := range cases {
		if Validate(evs) == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestSummarizeAndVerdict(t *testing.T) {
	f := NewFlight(nil)
	f.Emit(FEvent{Kind: FEvRunStart})
	f.Emit(FEvent{Kind: FEvShareFlush, Client: 1, N: 3})
	f.Emit(FEvent{Kind: FEvShareFlush, Client: 2, N: 1})
	f.Emit(FEvent{Kind: FEvVerdict, Detail: "SAT"})
	s := Summarize(f.Events())
	if s.Events != 4 || s.PerKind[FEvShareFlush] != 2 || s.Verdict != "SAT" {
		t.Fatalf("summary %+v", s)
	}
	if s.Lamport != 4 {
		t.Fatalf("lamport horizon %d", s.Lamport)
	}
	if Verdict(f.Events()[:3]) != "" {
		t.Fatal("verdict before the verdict event")
	}
}

// synthSplitLog builds a small but complete flight log: client 1 gets the
// problem, splits twice (to 2, then 2 splits to 3), everyone exhausts.
func synthSplitLog() []FEvent {
	f := NewFlight(nil)
	f.Emit(FEvent{Kind: FEvRunStart, N: 3})
	for c := 1; c <= 3; c++ {
		f.Emit(FEvent{Kind: FEvClientJoin, Client: c})
	}
	f.Emit(FEvent{Kind: FEvAssign, Client: 1})
	req := f.Emit(FEvent{Kind: FEvSplitRequest, Client: 1, Detail: "timeout"})
	iss := f.Emit(FEvent{Kind: FEvSplitIssue, Client: 1, Peer: 2, SplitID: 1, Parent: req})
	f.Emit(FEvent{Kind: FEvSplitAccept, Client: 2, Peer: 1, SplitID: 1, Parent: iss})
	f.Emit(FEvent{Kind: FEvShareFlush, Client: 2, N: 4})
	req2 := f.Emit(FEvent{Kind: FEvSplitRequest, Client: 2, Detail: "mem-pressure"})
	iss2 := f.Emit(FEvent{Kind: FEvSplitIssue, Client: 2, Peer: 3, SplitID: 2, Parent: req2})
	f.Emit(FEvent{Kind: FEvSplitAccept, Client: 3, Peer: 2, SplitID: 2, Parent: iss2})
	f.Emit(FEvent{Kind: FEvSubUNSAT, Client: 1})
	f.Emit(FEvent{Kind: FEvSubUNSAT, Client: 3})
	f.Emit(FEvent{Kind: FEvSubUNSAT, Client: 2})
	f.Emit(FEvent{Kind: FEvVerdict, Detail: "UNSAT"})
	return f.Events()
}

func TestLineageLeavesEqualSplitsPlusOne(t *testing.T) {
	tree := BuildLineage(synthSplitLog())
	if tree.Root == nil {
		t.Fatal("no root")
	}
	// 2 accepted splits -> 3 leaves.
	if got := len(tree.Leaves()); got != 3 {
		t.Fatalf("leaves = %d, want 3", got)
	}
	for _, n := range tree.Leaves() {
		if n.Status != NodeUNSAT {
			t.Errorf("leaf #%d status %q, want unsat", n.ID, n.Status)
		}
	}
	if tree.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", tree.Depth())
	}
	// The share flush landed on client 2's pre-split node (the one that
	// later became the split-2 interior).
	var flushed *LineageNode
	for _, n := range tree.Nodes() {
		if n.ShareFlushes > 0 {
			flushed = n
		}
	}
	if flushed == nil || flushed.Status != NodeSplit {
		t.Fatalf("share flush attribution wrong: %+v", flushed)
	}
}

func TestLineageSurvivesDonorFinishRace(t *testing.T) {
	// The donor exhausts its (already halved) piece before the recipient's
	// accept lands; the builder must still attach the recipient under the
	// donor's last node and keep leaves = accepts+1.
	f := NewFlight(nil)
	f.Emit(FEvent{Kind: FEvAssign, Client: 1})
	f.Emit(FEvent{Kind: FEvSplitIssue, Client: 1, Peer: 2, SplitID: 1})
	f.Emit(FEvent{Kind: FEvSubUNSAT, Client: 1})
	f.Emit(FEvent{Kind: FEvSplitAccept, Client: 2, Peer: 1, SplitID: 1})
	f.Emit(FEvent{Kind: FEvSubUNSAT, Client: 2})
	tree := BuildLineage(f.Events())
	if got := len(tree.Leaves()); got != 2 {
		t.Fatalf("leaves = %d, want 2", got)
	}
	if tree.Root.Status != NodeSplit {
		t.Fatalf("root status %q", tree.Root.Status)
	}
	// The donor-continuation child inherits the already-recorded unsat.
	if tree.Root.Children[0].Status != NodeUNSAT {
		t.Fatalf("continuation status %q", tree.Root.Children[0].Status)
	}
}

func TestLineageOrphanRecovery(t *testing.T) {
	f := NewFlight(nil)
	f.Emit(FEvent{Kind: FEvAssign, Client: 1})
	leave := f.Emit(FEvent{Kind: FEvClientLeave, Client: 1, Detail: "crash"})
	f.Emit(FEvent{Kind: FEvRecover, Client: 2, Parent: leave})
	f.Emit(FEvent{Kind: FEvSubUNSAT, Client: 2})
	tree := BuildLineage(f.Events())
	if len(tree.Nodes()) != 1 {
		t.Fatalf("recovery must reuse the node, got %d nodes", len(tree.Nodes()))
	}
	n := tree.Root
	if n.Owner != 2 || n.Status != NodeUNSAT {
		t.Fatalf("recovered node %+v", n)
	}
}

func TestLineageMigration(t *testing.T) {
	f := NewFlight(nil)
	f.Emit(FEvent{Kind: FEvAssign, Client: 1})
	f.Emit(FEvent{Kind: FEvMigrate, Client: 1, Peer: 2})
	f.Emit(FEvent{Kind: FEvSubUNSAT, Client: 2})
	tree := BuildLineage(f.Events())
	if tree.Root.Owner != 2 || tree.Root.Migrations != 1 || tree.Root.Status != NodeUNSAT {
		t.Fatalf("migrated root %+v", tree.Root)
	}
}

func TestLineageDOTAndJSON(t *testing.T) {
	tree := BuildLineage(synthSplitLog())
	var dot bytes.Buffer
	if err := tree.WriteDOT(&dot); err != nil {
		t.Fatal(err)
	}
	s := dot.String()
	if !strings.HasPrefix(s, "digraph lineage {") || strings.Count(s, "->") != 4 {
		t.Fatalf("dot output wrong (edges=%d):\n%s", strings.Count(s, "->"), s)
	}
	var js bytes.Buffer
	if err := tree.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Nodes  int `json:"nodes"`
		Leaves int `json:"leaves"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Nodes != 5 || doc.Leaves != 3 {
		t.Fatalf("json totals %+v", doc)
	}
}

func TestWritePerfetto(t *testing.T) {
	var b bytes.Buffer
	if err := WritePerfetto(&b, synthSplitLog()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("not valid trace-event JSON: %v", err)
	}
	var spans, instants, flows int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
		case "i":
			instants++
		case "s":
			flows++
		}
	}
	// 3 ownership spans (root + 2 split halves), one instant per event,
	// one flow source per parented event.
	if spans != 3 {
		t.Errorf("spans = %d, want 3", spans)
	}
	if instants != len(synthSplitLog()) {
		t.Errorf("instants = %d, want %d", instants, len(synthSplitLog()))
	}
	if flows != 4 {
		t.Errorf("flow sources = %d, want 4", flows)
	}
	// No virtual time in the synthetic log: timestamps must be strictly
	// increasing Lamport fallbacks, never equal.
	var prev float64 = -1
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "i" {
			continue
		}
		ts := ev["ts"].(float64)
		if ts <= prev {
			t.Fatalf("instant timestamps not increasing: %v <= %v", ts, prev)
		}
		prev = ts
	}
}

func TestCompareLogsNamesDivergence(t *testing.T) {
	a := synthSplitLog()
	b := synthSplitLog()[:len(synthSplitLog())-1] // drop the verdict
	err := CompareLogs(a, b)
	if err == nil {
		t.Fatal("divergence undetected")
	}
	if !strings.Contains(err.Error(), "verdict") {
		t.Fatalf("error does not name the verdict: %v", err)
	}
}

func TestReplayVerify(t *testing.T) {
	recorded := synthSplitLog()
	// A faithful rerun passes.
	if err := ReplayVerify(recorded, func(f *Flight) error {
		for _, ev := range recorded {
			f.Emit(FEvent{Kind: ev.Kind, Client: ev.Client, Peer: ev.Peer,
				SplitID: ev.SplitID, N: ev.N, Detail: ev.Detail, Parent: ev.Parent})
		}
		return nil
	}); err != nil {
		t.Fatalf("faithful replay rejected: %v", err)
	}
	// A rerun that loses a split fails, naming the kind.
	err := ReplayVerify(recorded, func(f *Flight) error {
		for _, ev := range recorded {
			if ev.Kind == FEvSplitAccept && ev.SplitID == 2 {
				continue
			}
			f.Emit(FEvent{Kind: ev.Kind, Detail: ev.Detail})
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), FEvSplitAccept) {
		t.Fatalf("lost split not reported: %v", err)
	}
	// A rerun that errors surfaces the error.
	boom := errors.New("boom")
	if err := ReplayVerify(recorded, func(*Flight) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("rerun error swallowed: %v", err)
	}
}

// --- satellite: ring wraparound + length-bucket invariants ---

func TestRecorderRingWraparoundOrder(t *testing.T) {
	rec := NewRecorder(4)
	hook := rec.Hook()
	// 10 events into a 4-slot ring: the ring holds the last 4, oldest
	// first, and the counts still see all 10.
	for i := 0; i < 10; i++ {
		hook(solver.Event{Kind: solver.EvDecision, Level: i})
	}
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Level != 6+i {
			t.Fatalf("slot %d has level %d, want %d (oldest-first after wrap)", i, ev.Level, 6+i)
		}
	}
	if rec.Count(solver.EvDecision) != 10 {
		t.Fatalf("count %d, want 10", rec.Count(solver.EvDecision))
	}
}

func TestRecorderRingExactBoundary(t *testing.T) {
	// Filling the ring exactly to capacity must not report a wrap.
	rec := NewRecorder(3)
	hook := rec.Hook()
	for i := 0; i < 3; i++ {
		hook(solver.Event{Kind: solver.EvConflict, Level: i})
	}
	evs := rec.Events()
	if len(evs) != 3 || evs[0].Level != 0 || evs[2].Level != 2 {
		t.Fatalf("boundary retention wrong: %+v", evs)
	}
}

func TestLenBucketMidpointRoundTrip(t *testing.T) {
	// bucketMidpoint must be a fixed point of lenBucket: re-bucketing the
	// representative length lands in the same bucket. This is the "keep
	// the two in sync" invariant the histogram's mean depends on.
	for b := 0; b < numLenBuckets; b++ {
		if got := lenBucket(bucketMidpoint(b)); got != b {
			t.Errorf("bucket %d: midpoint %d re-buckets to %d", b, bucketMidpoint(b), got)
		}
	}
	// Bucket boundaries: lengths 2^b .. 2^(b+1)-1 share bucket b.
	for b := 1; b < numLenBuckets-1; b++ {
		lo, hi := 1<<uint(b), 1<<uint(b+1)-1
		if lenBucket(lo) != b || lenBucket(hi) != b {
			t.Errorf("bucket %d: [%d,%d] maps to [%d,%d]", b, lo, hi, lenBucket(lo), lenBucket(hi))
		}
	}
	// Degenerate and overflow lengths clamp into the first/last bucket.
	if lenBucket(0) != 0 || lenBucket(1) != 0 {
		t.Error("short lengths must land in bucket 0")
	}
	if lenBucket(1<<20) != numLenBuckets-1 {
		t.Error("huge lengths must clamp into the last bucket")
	}
}
