package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// jobTestLog is a compact two-job scheduler log exercising the full job
// lifecycle vocabulary plus a preempt→migrate→resume reassignment.
func jobTestLog() []FEvent {
	f := NewFlight(nil)
	f.Emit(FEvent{Kind: FEvRunStart, N: 2})
	f.Emit(FEvent{Kind: FEvJobSubmit, Job: 1, N: 5, Detail: "ph8"})
	f.Emit(FEvent{Kind: FEvJobSubmit, Job: 2, N: 1, Detail: "rand40"})
	f.Emit(FEvent{Kind: FEvClientJoin, Client: 1})
	f.Emit(FEvent{Kind: FEvClientJoin, Client: 2})
	f.Emit(FEvent{Kind: FEvJobStart, Job: 1})
	f.Emit(FEvent{Kind: FEvAssign, Client: 1, Job: 1})
	f.Emit(FEvent{Kind: FEvJobStart, Job: 2})
	f.Emit(FEvent{Kind: FEvAssign, Client: 2, Job: 2})
	p := f.Emit(FEvent{Kind: FEvJobPreempt, Client: 1, Job: 1})
	f.Emit(FEvent{Kind: FEvMigrate, Client: 1, Peer: 2, Job: 1})
	f.Emit(FEvent{Kind: FEvJobResume, Client: 2, Job: 1, Parent: p})
	f.Emit(FEvent{Kind: FEvSubUNSAT, Client: 2, Job: 1})
	f.Emit(FEvent{Kind: FEvJobDone, Job: 1, Detail: "UNSAT"})
	f.Emit(FEvent{Kind: FEvJobCancel, Job: 2})
	return f.Events()
}

// TestJobKindsKnown: every job lifecycle kind is in the validation
// vocabulary, so a scheduler log passes Validate.
func TestJobKindsKnown(t *testing.T) {
	for _, k := range []string{FEvJobSubmit, FEvJobStart, FEvJobPreempt,
		FEvJobResume, FEvJobDone, FEvJobCancel} {
		if !KnownKinds[k] {
			t.Errorf("job kind %q missing from KnownKinds", k)
		}
	}
	if err := Validate(jobTestLog()); err != nil {
		t.Fatalf("job lifecycle log rejected: %v", err)
	}
}

// TestJobFieldOmittedWhenZero: single-job events serialize without a
// "job" key, so pre-scheduler logs and job-0 logs are byte-identical.
func TestJobFieldOmittedWhenZero(t *testing.T) {
	data, err := json.Marshal(FEvent{ID: 1, Lamport: 1, Kind: FEvAssign, Client: 3})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"job"`)) {
		t.Fatalf("job 0 leaked into the JSONL line: %s", data)
	}
	data, _ = json.Marshal(FEvent{ID: 1, Lamport: 1, Kind: FEvAssign, Client: 3, Job: 2})
	if !bytes.Contains(data, []byte(`"job":2`)) {
		t.Fatalf("job tag missing from a job-2 event: %s", data)
	}
}

// TestJobVerdicts: per-job outcomes aggregate from job-done/job-cancel,
// and CompareLogs flags a per-job divergence even when the global verdict
// and per-kind counts agree.
func TestJobVerdicts(t *testing.T) {
	log := jobTestLog()
	jv := JobVerdicts(log)
	if jv[1] != "UNSAT" || jv[2] != "CANCELLED" {
		t.Fatalf("job verdicts %v", jv)
	}
	if len(JobVerdicts(nil)) != 0 {
		t.Fatal("empty log produced job verdicts")
	}

	// Swap the two jobs' outcomes: same kind counts, different per-job
	// verdicts — CompareLogs must notice.
	swapped := make([]FEvent, len(log))
	copy(swapped, log)
	for i := range swapped {
		switch swapped[i].Kind {
		case FEvJobDone:
			swapped[i].Job = 2
		case FEvJobCancel:
			swapped[i].Job = 1
		}
	}
	err := CompareLogs(log, swapped)
	if err == nil {
		t.Fatal("per-job verdict swap not detected")
	}
	if !strings.Contains(err.Error(), "job 1 verdict") {
		t.Fatalf("divergence error does not name the job: %v", err)
	}
	if err := CompareLogs(log, log); err != nil {
		t.Fatalf("identical logs diverged: %v", err)
	}
}

// TestJobRoundTripJSONL: the job tag survives the JSONL write/read cycle.
func TestJobRoundTripJSONL(t *testing.T) {
	log := jobTestLog()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, log); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(log) {
		t.Fatalf("round-tripped %d events, want %d", len(back), len(log))
	}
	for i := range log {
		if back[i].Job != log[i].Job {
			t.Fatalf("event %d job %d, want %d", i, back[i].Job, log[i].Job)
		}
	}
}

// TestPerfettoPerJobTracks: a multi-job log renders one track group per
// job (pid = perfettoPid + job) with process_name metadata, and the
// preempted subproblem's resume span lands in the owning job's group.
func TestPerfettoPerJobTracks(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, jobTestLog()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	groups := map[int]string{}
	sawResume := false
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			groups[e.Pid], _ = e.Args["name"].(string)
		}
		if e.Ph == "X" && e.Name == "resumed" {
			sawResume = true
			if e.Pid != perfettoPid+1 {
				t.Errorf("resumed span in pid %d, want job 1's group %d", e.Pid, perfettoPid+1)
			}
			if e.Tid != 2 {
				t.Errorf("resumed span on tid %d, want client 2", e.Tid)
			}
		}
	}
	if groups[perfettoPid+1] != "job 1" || groups[perfettoPid+2] != "job 2" {
		t.Fatalf("per-job track groups missing: %v", groups)
	}
	if !sawResume {
		t.Fatal("preempted subproblem never rendered a resume span")
	}

	// A single-job log must not grow process_name metadata (pid stays 1).
	buf.Reset()
	single := []FEvent{
		{ID: 1, Lamport: 1, Kind: FEvRunStart, N: 1},
		{ID: 2, Lamport: 2, Kind: FEvAssign, Client: 1},
		{ID: 3, Lamport: 3, Kind: FEvVerdict, Client: 1, Detail: "SAT"},
	}
	if err := WritePerfetto(&buf, single); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("process_name")) {
		t.Fatal("single-job trace grew process_name metadata")
	}
}
