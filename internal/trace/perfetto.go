package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file exports a flight log in the Chrome trace-event JSON format, so
// a run opens directly in Perfetto (ui.perfetto.dev) or chrome://tracing:
// one timeline row per client, a complete-event ("X") span for every
// subproblem-ownership interval, instant events ("i") for the punctual
// kinds, and flow arrows ("s"/"f") along causal parent edges — the visual
// the paper could only sketch as Figure 2. Multi-job logs render one
// track group ("process") per job, so a scheduler trace shows each job's
// clients side by side and a client visibly hops between groups when the
// scheduler reassigns it.
//
// Timestamps are microseconds. DES logs use virtual seconds (VSec * 1e6);
// live logs, which record no deterministic clock, fall back to Lamport
// time (1 tick = 1 µs) — the ordering is exact even though the spacing is
// notional.

type perfettoEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	ID    uint64         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
	Scope string         `json:"s,omitempty"`
}

// perfettoPid is the base "process" ID; job J renders as process
// perfettoPid+J, so the implicit single job (ID 0) keeps the historical
// pid 1 and every scheduler job gets its own track group.
const perfettoPid = 1

// WritePerfetto writes events as a Chrome trace-event JSON document.
func WritePerfetto(w io.Writer, events []FEvent) error {
	ts := perfettoTimestamps(events)
	var out []perfettoEvent

	// Multi-job logs label each track group with the job it belongs to.
	multiJob := false
	for _, ev := range events {
		if ev.Job != 0 {
			multiJob = true
			break
		}
	}

	// Name the rows: within each job's group, tid 0 is the
	// master/coordinator lane and tid N is client N.
	type lane struct{ pid, tid int }
	named := map[lane]bool{}
	name := func(pid, tid int, label string) {
		if named[lane{pid, tid}] {
			return
		}
		named[lane{pid, tid}] = true
		if multiJob && !named[lane{pid, -1}] {
			named[lane{pid, -1}] = true
			out = append(out, perfettoEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": fmt.Sprintf("job %d", pid-perfettoPid)},
			})
		}
		out = append(out, perfettoEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": label},
		})
	}
	name(perfettoPid, 0, "master")

	// Ownership spans: a client's row is "solving" from the event that gave
	// it work (assign / split-accept / recover / job-resume) until the event
	// that took the work away (sub-unsat / migrate out / preempt / leave /
	// verdict). Spans live inside their job's track group.
	type openSpan struct {
		start float64
		label string
		ev    FEvent
	}
	open := map[int]*openSpan{}
	closeSpan := func(client int, end float64) {
		s := open[client]
		if s == nil {
			return
		}
		delete(open, client)
		dur := end - s.start
		if dur <= 0 {
			dur = 1 // sub-µs spans still render
		}
		out = append(out, perfettoEvent{
			Name: s.label, Ph: "X", Ts: s.start, Dur: dur,
			Pid: perfettoPid + s.ev.Job, Tid: s.ev.Client, Cat: "subproblem",
			Args: map[string]any{"split": s.ev.SplitID, "event": s.ev.ID},
		})
	}

	lastTs := 0.0
	for i, ev := range events {
		t := ts[i]
		lastTs = t
		pid := perfettoPid + ev.Job
		tid := ev.Client
		if tid > 0 {
			name(pid, tid, fmt.Sprintf("client %d", tid))
		} else {
			name(pid, 0, "master")
		}
		switch ev.Kind {
		case FEvAssign:
			open[ev.Client] = &openSpan{start: t, label: "root", ev: ev}
		case FEvSplitAccept:
			open[ev.Client] = &openSpan{start: t, label: fmt.Sprintf("split %d", ev.SplitID), ev: ev}
		case FEvRecover:
			open[ev.Client] = &openSpan{start: t, label: "recovered", ev: ev}
		case FEvJobResume:
			open[ev.Client] = &openSpan{start: t, label: "resumed", ev: ev}
		case FEvSubUNSAT, FEvClientLeave, FEvJobPreempt:
			closeSpan(ev.Client, t)
		case FEvMigrate:
			closeSpan(ev.Client, t)
			open[ev.Peer] = &openSpan{start: t, label: "migrated-in", ev: FEvent{Client: ev.Peer, ID: ev.ID, Job: ev.Job}}
			name(pid, ev.Peer, fmt.Sprintf("client %d", ev.Peer))
		case FEvVerdict, FEvJobDone, FEvJobCancel:
			closeSpan(ev.Client, t)
		}

		// Every event also appears as an instant on its row (master events
		// have no client and land on tid 0).
		inst := perfettoEvent{
			Name: ev.Kind, Ph: "i", Ts: t, Pid: pid, Tid: tid,
			Cat: "flight", Scope: "t",
			Args: map[string]any{"event": ev.ID, "lamport": ev.Lamport},
		}
		if ev.N != 0 {
			inst.Args["n"] = ev.N
		}
		if ev.Peer != 0 {
			inst.Args["peer"] = ev.Peer
		}
		if ev.Detail != "" {
			inst.Args["detail"] = ev.Detail
		}
		out = append(out, inst)

		// Causal flow arrow from the parent event's row to this one.
		if ev.Parent != 0 && ev.Parent <= uint64(len(events)) {
			p := events[ev.Parent-1]
			out = append(out,
				perfettoEvent{Name: "cause", Ph: "s", Ts: ts[ev.Parent-1],
					Pid: perfettoPid + p.Job, Tid: p.Client, Cat: "causal", ID: ev.ID},
				perfettoEvent{Name: "cause", Ph: "f", Ts: t, BP: "e",
					Pid: pid, Tid: tid, Cat: "causal", ID: ev.ID},
			)
		}
	}
	// Close anything still open at the end of the log.
	for client := range open {
		closeSpan(client, lastTs+1)
	}

	doc := struct {
		TraceEvents []perfettoEvent `json:"traceEvents"`
		Unit        string          `json:"displayTimeUnit"`
	}{out, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// perfettoTimestamps maps each event to microseconds: virtual time when the
// log has any (DES runs), Lamport ticks otherwise. Ties in virtual time are
// broken by spreading events a nominal 0.1 µs apart so the UI keeps them
// ordered.
func perfettoTimestamps(events []FEvent) []float64 {
	hasVSec := false
	for _, ev := range events {
		if ev.VSec > 0 {
			hasVSec = true
			break
		}
	}
	out := make([]float64, len(events))
	prev := -1.0
	for i, ev := range events {
		var t float64
		if hasVSec {
			t = ev.VSec * 1e6
		} else {
			t = float64(ev.Lamport)
		}
		if t <= prev {
			t = prev + 0.1
		}
		out[i] = t
		prev = t
	}
	return out
}
