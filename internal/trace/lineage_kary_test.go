package trace

import (
	"bytes"
	"strings"
	"testing"
)

// synthDilemmaLog models a k=2 dilemma split: one issue to two live peers,
// a leftover cofactor returned to the master's backlog and served to a
// third peer later. All three accepts carry the same split ID.
func synthDilemmaLog() []FEvent {
	f := NewFlight(nil)
	f.Emit(FEvent{Kind: FEvRunStart, N: 4})
	f.Emit(FEvent{Kind: FEvAssign, Client: 1})
	req := f.Emit(FEvent{Kind: FEvSplitRequest, Client: 1, Detail: "timeout"})
	iss := f.Emit(FEvent{Kind: FEvSplitIssue, Client: 1, Peer: 2, SplitID: 1, N: 2, Parent: req})
	f.Emit(FEvent{Kind: FEvSplitAccept, Client: 2, Peer: 1, SplitID: 1, Parent: iss})
	f.Emit(FEvent{Kind: FEvSplitAccept, Client: 3, Peer: 1, SplitID: 1, Parent: iss})
	f.Emit(FEvent{Kind: FEvSplitBacklog, Client: 1, SplitID: 1, N: 1, Parent: iss})
	f.Emit(FEvent{Kind: FEvSplitAccept, Client: 4, Peer: 1, SplitID: 1, Parent: iss})
	f.Emit(FEvent{Kind: FEvSubUNSAT, Client: 1})
	f.Emit(FEvent{Kind: FEvSubUNSAT, Client: 2})
	f.Emit(FEvent{Kind: FEvSubUNSAT, Client: 3})
	f.Emit(FEvent{Kind: FEvSubUNSAT, Client: 4})
	f.Emit(FEvent{Kind: FEvVerdict, Detail: "UNSAT"})
	return f.Events()
}

// TestLineageKaryFanout pins the multi-way invariant: every accept adds
// exactly one leaf, and all cofactors of one split ID sit as siblings
// under a single fork at the same depth.
func TestLineageKaryFanout(t *testing.T) {
	events := synthDilemmaLog()
	if err := Validate(events); err != nil {
		t.Fatalf("synthetic dilemma log invalid: %v", err)
	}
	tree := BuildLineage(events)
	if tree.Root == nil {
		t.Fatal("no root")
	}
	// 3 accepts -> 4 leaves, one fork of arity 4 (donor cont + 3 cofactors).
	if got := len(tree.Leaves()); got != 4 {
		t.Fatalf("leaves = %d, want accepts+1 = 4", got)
	}
	if tree.Root.Status != NodeSplit || len(tree.Root.Children) != 4 {
		t.Fatalf("root fork arity = %d (%s), want 4", len(tree.Root.Children), tree.Root.Status)
	}
	if tree.Depth() != 1 {
		t.Fatalf("depth = %d, want 1: all cofactors sit at the fork's level", tree.Depth())
	}
	for i, c := range tree.Root.Children {
		if c.Status != NodeUNSAT {
			t.Errorf("child %d status %q, want unsat", i, c.Status)
		}
	}
	// The donor-continuation child has no split ID; the others carry it.
	if tree.Root.Children[0].SplitID != 0 {
		t.Errorf("continuation child carries split ID %d", tree.Root.Children[0].SplitID)
	}
	for _, c := range tree.Root.Children[1:] {
		if c.SplitID != 1 {
			t.Errorf("cofactor child carries split ID %d, want 1", c.SplitID)
		}
	}
}

// TestLineageMetricsKary checks the ablation aggregates on the dilemma log.
func TestLineageMetricsKary(t *testing.T) {
	m := BuildLineage(synthDilemmaLog()).Metrics()
	if m.Nodes != 5 || m.Leaves != 4 || m.Depth != 1 {
		t.Fatalf("nodes/leaves/depth = %d/%d/%d, want 5/4/1", m.Nodes, m.Leaves, m.Depth)
	}
	if m.MaxFanout != 4 {
		t.Fatalf("max fanout = %d, want 4", m.MaxFanout)
	}
	if m.BalanceMean != 1.0 {
		t.Fatalf("balance mean = %v, want 1.0 for single-leaf subtrees", m.BalanceMean)
	}
	if m.UnsatLeaves != 4 || m.KillDepthMean != 1.0 || m.KillDepthMax != 1 {
		t.Fatalf("kill stats = %d/%v/%d, want 4/1.0/1", m.UnsatLeaves, m.KillDepthMean, m.KillDepthMax)
	}
}

// TestLineageMetricsBinaryChain checks the metrics on the existing binary
// synthetic log: an unbalanced chain of two binary forks.
func TestLineageMetricsBinaryChain(t *testing.T) {
	m := BuildLineage(synthSplitLog()).Metrics()
	if m.Leaves != 3 || m.MaxFanout != 2 {
		t.Fatalf("leaves/fanout = %d/%d, want 3/2", m.Leaves, m.MaxFanout)
	}
	// Root forks into a 1-leaf and a 2-leaf subtree (balance 1/2); the
	// inner fork is 1-vs-1 (balance 1): mean 0.75.
	if m.BalanceMean != 0.75 {
		t.Fatalf("balance mean = %v, want 0.75", m.BalanceMean)
	}
	if m.UnsatLeaves != 3 || m.KillDepthMax != 2 {
		t.Fatalf("kill stats = %d/%d, want 3 unsat, max depth 2", m.UnsatLeaves, m.KillDepthMax)
	}
}

// TestSplitBacklogKindKnown guards the flight-log schema: the
// split-backlog kind added for multi-way splits must validate and render.
func TestSplitBacklogKindKnown(t *testing.T) {
	if !KnownKinds[FEvSplitBacklog] {
		t.Fatal("FEvSplitBacklog missing from KnownKinds")
	}
	f := NewFlight(nil)
	f.Emit(FEvent{Kind: FEvSplitBacklog, Client: 1, SplitID: 7, N: 3})
	if err := Validate(f.Events()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"split-backlog"`) {
		t.Fatalf("JSONL missing the kind: %s", buf.String())
	}
}
