package trace

import (
	"strconv"
	"strings"
	"testing"

	"gridsat/internal/cnf"
	"gridsat/internal/gen"
	"gridsat/internal/solver"
)

// The Recorder's per-kind table is sized from the solver's sentinel at
// compile time; this assignment breaks the build if that coupling is
// ever removed.
var _ [solver.EvKindCount]int64 = Recorder{}.counts

// TestEventKindSentinel guards the EvKindCount contract: every real kind
// sits below the sentinel and has a name, and the sentinel itself is not
// a nameable kind. Adding a sixth event kind after EvKindCount (instead
// of above it) fails here instead of being silently dropped from
// Recorder counts.
func TestEventKindSentinel(t *testing.T) {
	if solver.EvKindCount.String() != "unknown" {
		t.Fatalf("EvKindCount (%d) names itself %q: it must stay a sentinel, not a kind",
			solver.EvKindCount, solver.EvKindCount.String())
	}
	seen := map[string]solver.EventKind{}
	for k := solver.EventKind(0); k < solver.EvKindCount; k++ {
		name := k.String()
		if name == "unknown" {
			t.Errorf("event kind %d has no String case — was it added below EvKindCount without updating String?", k)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
	}
	if solver.EvSplit >= solver.EvKindCount {
		t.Fatal("EvKindCount must come after every kind in the iota block")
	}
	// EvImportUse was added for the share-efficacy telemetry; it must sit
	// below the sentinel (so Recorder tables include it) and keep its name.
	if solver.EvImportUse >= solver.EvKindCount {
		t.Fatal("EvImportUse added after the EvKindCount sentinel")
	}
	if solver.EvImportUse.String() != "import-use" {
		t.Fatalf("EvImportUse names itself %q", solver.EvImportUse)
	}
}

// TestImportUseEventEmitted drives the whole import-usefulness path: a
// donor solver's learned clauses are imported by a fresh recipient, and
// solving must fire EvImportUse through the instrument hook exactly once
// per distinct imported clause that did work — the same dedup the
// ImportedUseful counter applies.
func TestImportUseEventEmitted(t *testing.T) {
	f := gen.Pigeonhole(6)
	donor := solver.New(f, solver.DefaultOptions())
	if st := donor.Solve(solver.Limits{}); st.Status != solver.StatusUNSAT {
		t.Fatalf("donor result %v", st.Status)
	}
	shared := donor.ExportLearnts(10, 1000)
	if len(shared) == 0 {
		t.Fatal("donor exported no clauses")
	}

	rec := NewRecorder(int(solver.EvKindCount))
	opts := solver.DefaultOptions()
	opts.Instrument = rec.Hook()
	recipient := solver.New(f, opts)
	if err := recipient.ImportClauses(shared); err != nil {
		t.Fatal(err)
	}
	if st := recipient.Solve(solver.Limits{}); st.Status != solver.StatusUNSAT {
		t.Fatalf("recipient result %v", st.Status)
	}

	stats := recipient.Stats()
	if stats.Imported == 0 {
		t.Fatal("no clauses recorded as imported")
	}
	if stats.ImportedUseful == 0 {
		t.Fatal("imported clauses never recorded as useful on a conflict-heavy instance")
	}
	if stats.ImportedUseful > stats.Imported {
		t.Fatalf("useful (%d) exceeds imported (%d)", stats.ImportedUseful, stats.Imported)
	}
	if got := rec.Count(solver.EvImportUse); got != stats.ImportedUseful {
		t.Fatalf("EvImportUse events = %d, ImportedUseful = %d (must agree: one event per first use)",
			got, stats.ImportedUseful)
	}
	if stats.ImportedImplications == 0 && stats.ImportedResolutions == 0 {
		t.Fatal("useful imports but no imported implications or resolutions counted")
	}
}

// TestRecorderCountsEveryKind feeds one synthetic event of every kind and
// checks none is dropped, via both Count and the full Counts array.
func TestRecorderCountsEveryKind(t *testing.T) {
	rec := NewRecorder(int(solver.EvKindCount))
	for k := solver.EventKind(0); k < solver.EvKindCount; k++ {
		rec.Hook()(solver.Event{Kind: k, ClauseLen: 3})
	}
	counts := rec.Counts()
	for k := solver.EventKind(0); k < solver.EvKindCount; k++ {
		if rec.Count(k) != 1 {
			t.Errorf("Count(%v) = %d, want 1", k, rec.Count(k))
		}
		if counts[k] != 1 {
			t.Errorf("Counts()[%v] = %d, want 1", k, counts[k])
		}
	}
}

// TestRingWraparoundOrdering fills the ring past capacity with events
// whose ClauseLen encodes their sequence number and checks Events()
// returns exactly the newest `capacity` events, oldest first.
func TestRingWraparoundOrdering(t *testing.T) {
	const capacity, total = 7, 23
	rec := NewRecorder(capacity)
	hook := rec.Hook()
	for i := 0; i < total; i++ {
		hook(solver.Event{Kind: solver.EvConflict, Level: i})
	}
	evs := rec.Events()
	if len(evs) != capacity {
		t.Fatalf("retained %d events, want %d", len(evs), capacity)
	}
	for i, ev := range evs {
		if want := total - capacity + i; ev.Level != want {
			t.Fatalf("Events()[%d].Level = %d, want %d (oldest-first after wraparound)", i, ev.Level, want)
		}
	}
}

// TestRingPartialFillOrdering checks ordering before the ring wraps.
func TestRingPartialFillOrdering(t *testing.T) {
	rec := NewRecorder(10)
	hook := rec.Hook()
	for i := 0; i < 4; i++ {
		hook(solver.Event{Kind: solver.EvDecision, Level: i})
	}
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Level != i {
			t.Fatalf("Events()[%d].Level = %d, want %d", i, ev.Level, i)
		}
	}
}

// TestWriteCSVFormat checks the CSV column contract row by row: the kind
// column round-trips EventKind.String, the lit column is populated
// exactly for decision/learn/split rows, and level/clause_len are bare
// integers.
func TestWriteCSVFormat(t *testing.T) {
	rec := NewRecorder(16)
	hook := rec.Hook()
	events := []solver.Event{
		{Kind: solver.EvDecision, Lit: mustLit(t, 3, false), Level: 1},
		{Kind: solver.EvConflict, Level: 2},
		{Kind: solver.EvLearn, Lit: mustLit(t, 5, true), Level: 1, ClauseLen: 4},
		{Kind: solver.EvRestart},
		{Kind: solver.EvSplit, Lit: mustLit(t, 2, false), Level: 3},
	}
	for _, ev := range events {
		hook(ev)
	}
	var b strings.Builder
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "kind,lit,level,clause_len" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != len(events)+1 {
		t.Fatalf("%d data lines, want %d", len(lines)-1, len(events))
	}
	for i, ev := range events {
		cols := strings.Split(lines[i+1], ",")
		if len(cols) != 4 {
			t.Fatalf("row %d has %d columns: %q", i, len(cols), lines[i+1])
		}
		if cols[0] != ev.Kind.String() {
			t.Errorf("row %d kind %q, want %q", i, cols[0], ev.Kind)
		}
		wantLit := ev.Kind == solver.EvDecision || ev.Kind == solver.EvLearn || ev.Kind == solver.EvSplit
		if wantLit && cols[1] != ev.Lit.String() {
			t.Errorf("row %d lit %q, want %q", i, cols[1], ev.Lit)
		}
		if !wantLit && cols[1] != "" {
			t.Errorf("row %d (%s) has a lit %q, want empty", i, ev.Kind, cols[1])
		}
		if lvl, err := strconv.Atoi(cols[2]); err != nil || lvl != ev.Level {
			t.Errorf("row %d level %q, want %d", i, cols[2], ev.Level)
		}
		if cl, err := strconv.Atoi(cols[3]); err != nil || cl != ev.ClauseLen {
			t.Errorf("row %d clause_len %q, want %d", i, cols[3], ev.ClauseLen)
		}
	}
}

func TestLenBucketRoundtrip(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 8: 3, 1 << 20: numLenBuckets - 1}
	for l, want := range cases {
		if got := lenBucket(l); got != want {
			t.Errorf("lenBucket(%d) = %d, want %d", l, got, want)
		}
	}
	for b := 0; b < numLenBuckets; b++ {
		if got := lenBucket(bucketMidpoint(b)); got != b {
			t.Errorf("lenBucket(bucketMidpoint(%d)) = %d", b, got)
		}
	}
}

func mustLit(t *testing.T, v cnf.Var, neg bool) cnf.Lit {
	t.Helper()
	if neg {
		return cnf.NegLit(v)
	}
	return cnf.PosLit(v)
}
