// Package brute implements the simple complete SAT procedure the GridSAT
// paper describes in §2.1 before introducing learning: DPLL with unit
// propagation and chronological backtracking ("flip the value of the
// previous decision and then try again"). It examines up to 2^N assignments
// and keeps no learned clauses.
//
// It serves two roles in this repository: the pre-Chaff baseline algorithm,
// and a trustworthy oracle for cross-checking the CDCL engine on small
// instances in tests.
package brute

import "gridsat/internal/cnf"

// Result of a brute-force solve.
type Result int

// Possible outcomes.
const (
	Unknown Result = iota // budget exhausted
	SAT
	UNSAT
)

// String implements fmt.Stringer.
func (r Result) String() string {
	switch r {
	case SAT:
		return "SAT"
	case UNSAT:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Solver is a chronological-backtracking DPLL solver.
type Solver struct {
	f      *cnf.Formula
	assign cnf.Assignment
	// trail records assignments in order; marks[i] is true when trail[i]
	// is a decision (rather than a propagated implication).
	trail []cnf.Lit
	marks []bool
	// flipped[i] is true when the decision at trail position i has already
	// been tried both ways.
	flipped []bool
	// Decisions counts decisions made, for budget enforcement and stats.
	Decisions int64
	// Propagations counts implied assignments.
	Propagations int64
}

// New returns a solver for f.
func New(f *cnf.Formula) *Solver {
	return &Solver{f: f, assign: cnf.NewAssignment(f.NumVars)}
}

// Model returns the satisfying assignment after Solve reports SAT.
func (s *Solver) Model() cnf.Assignment { return s.assign.Clone() }

// Solve runs DPLL with at most maxDecisions decisions (0 means no limit).
func (s *Solver) Solve(maxDecisions int64) Result {
	for {
		if !s.propagate() {
			// Conflict: chronologically backtrack to the most recent
			// decision not yet tried both ways.
			if !s.backtrack() {
				return UNSAT
			}
			continue
		}
		v := s.pickUnassigned()
		if v == cnf.NoVar {
			return SAT
		}
		if maxDecisions > 0 && s.Decisions >= maxDecisions {
			return Unknown
		}
		s.Decisions++
		s.push(cnf.PosLit(v), true)
	}
}

// propagate runs unit propagation to fixpoint; false on conflict.
func (s *Solver) propagate() bool {
	for {
		progress := false
		for _, c := range s.f.Clauses {
			var unit cnf.Lit = cnf.NoLit
			nUndef := 0
			sat := false
			for _, l := range c {
				switch s.assign.LitValue(l) {
				case cnf.True:
					sat = true
				case cnf.Undef:
					nUndef++
					unit = l
				}
				if sat || nUndef > 1 {
					break
				}
			}
			if sat || nUndef > 1 {
				continue
			}
			if nUndef == 0 {
				return false // all literals false
			}
			s.Propagations++
			s.push(unit, false)
			progress = true
		}
		if !progress {
			return true
		}
	}
}

func (s *Solver) push(l cnf.Lit, decision bool) {
	s.assign.Set(l)
	s.trail = append(s.trail, l)
	s.marks = append(s.marks, decision)
	s.flipped = append(s.flipped, false)
}

// backtrack pops to the latest unflipped decision and flips it.
// Returns false when no such decision exists (the instance is UNSAT).
func (s *Solver) backtrack() bool {
	for len(s.trail) > 0 {
		i := len(s.trail) - 1
		l := s.trail[i]
		wasDecision, wasFlipped := s.marks[i], s.flipped[i]
		s.assign.Unset(l.Var())
		s.trail = s.trail[:i]
		s.marks = s.marks[:i]
		s.flipped = s.flipped[:i]
		if wasDecision && !wasFlipped {
			// Re-push the complement, marked as an already-flipped decision.
			s.assign.Set(l.Not())
			s.trail = append(s.trail, l.Not())
			s.marks = append(s.marks, true)
			s.flipped = append(s.flipped, true)
			return true
		}
	}
	return false
}

func (s *Solver) pickUnassigned() cnf.Var {
	for v := 0; v < s.f.NumVars; v++ {
		if s.assign[v] == cnf.Undef {
			return cnf.Var(v)
		}
	}
	return cnf.NoVar
}

// Solve is a convenience wrapper: solve f with a decision budget and return
// the result plus a model when satisfiable.
func Solve(f *cnf.Formula, maxDecisions int64) (Result, cnf.Assignment) {
	s := New(f)
	r := s.Solve(maxDecisions)
	if r == SAT {
		return r, s.Model()
	}
	return r, nil
}

// CountModels exhaustively counts satisfying assignments of f over its
// declared variables. Exponential; intended for tests with few variables.
func CountModels(f *cnf.Formula) int {
	if f.NumVars > 24 {
		panic("brute: CountModels limited to 24 variables")
	}
	count := 0
	a := cnf.NewAssignment(f.NumVars)
	for mask := 0; mask < 1<<uint(f.NumVars); mask++ {
		for v := 0; v < f.NumVars; v++ {
			a[v] = cnf.FromBool(mask&(1<<uint(v)) != 0)
		}
		if f.Eval(a) == cnf.True {
			count++
		}
	}
	return count
}
