package brute

import (
	"testing"

	"gridsat/internal/cnf"
)

func TestEmptyFormulaSAT(t *testing.T) {
	r, _ := Solve(cnf.NewFormula(0), 0)
	if r != SAT {
		t.Fatalf("empty formula: %v", r)
	}
}

func TestEmptyClauseUNSAT(t *testing.T) {
	f := cnf.NewFormula(1)
	f.AddClause(cnf.Clause{})
	r, _ := Solve(f, 0)
	if r != UNSAT {
		t.Fatalf("empty clause: %v", r)
	}
}

func TestUnitChain(t *testing.T) {
	f := cnf.NewFormula(3)
	f.Add(1).Add(-1, 2).Add(-2, 3)
	r, m := Solve(f, 0)
	if r != SAT {
		t.Fatalf("unit chain: %v", r)
	}
	if err := f.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestContradiction(t *testing.T) {
	f := cnf.NewFormula(1)
	f.Add(1).Add(-1)
	if r, _ := Solve(f, 0); r != UNSAT {
		t.Fatalf("x & ~x: %v", r)
	}
}

func TestRequiresBacktracking(t *testing.T) {
	// (x1|x2) & (x1|~x2) & (~x1|x2) & (~x1|~x2) — UNSAT, needs search.
	f := cnf.NewFormula(2)
	f.Add(1, 2).Add(1, -2).Add(-1, 2).Add(-1, -2)
	if r, _ := Solve(f, 0); r != UNSAT {
		t.Fatalf("full binary UNSAT core: %v", r)
	}
}

func TestSATNeedsFlip(t *testing.T) {
	// Force the first decision (x1=true) into conflict so the solver must
	// flip: (~x1) is too easy; use (~x1|x2)&(~x1|~x2)&(x1|x2).
	f := cnf.NewFormula(2)
	f.Add(-1, 2).Add(-1, -2).Add(1, 2)
	r, m := Solve(f, 0)
	if r != SAT {
		t.Fatalf("got %v", r)
	}
	if err := f.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestDecisionBudget(t *testing.T) {
	// Pigeonhole-ish hard instance with a tiny budget must return Unknown.
	f := cnf.NewFormula(0)
	n := 12
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			f.Add(i, j)
		}
	}
	for i := 1; i <= n; i++ {
		f.Add(-i)
	}
	// This particular formula is UNSAT via propagation alone, so build a
	// genuinely branchy one instead: random-ish XOR-like structure.
	g := cnf.NewFormula(20)
	for i := 1; i+2 <= 20; i += 3 {
		g.Add(i, i+1, i+2)
		g.Add(-i, -(i + 1), i+2)
		g.Add(i, -(i + 1), -(i + 2))
		g.Add(-i, i+1, -(i + 2))
	}
	s := New(g)
	if r := s.Solve(1); r != Unknown && s.Decisions > 1 {
		t.Fatalf("budget ignored: %v after %d decisions", r, s.Decisions)
	}
}

func TestCountModels(t *testing.T) {
	f := cnf.NewFormula(2)
	f.Add(1, 2)
	if got := CountModels(f); got != 3 {
		t.Fatalf("CountModels = %d, want 3", got)
	}
	g := cnf.NewFormula(3) // no clauses: all 8 assignments are models
	if got := CountModels(g); got != 8 {
		t.Fatalf("CountModels empty = %d, want 8", got)
	}
}

func TestCountModelsPanicsOnLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CountModels accepted 25 variables")
		}
	}()
	CountModels(cnf.NewFormula(25))
}

func TestStatsCounters(t *testing.T) {
	f := cnf.NewFormula(3)
	f.Add(1).Add(-1, 2)
	s := New(f)
	if r := s.Solve(0); r != SAT {
		t.Fatalf("got %v", r)
	}
	if s.Propagations < 2 {
		t.Errorf("expected >=2 propagations, got %d", s.Propagations)
	}
}

func TestResultString(t *testing.T) {
	if SAT.String() != "SAT" || UNSAT.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Error("Result.String wrong")
	}
}

// Exhaustive agreement with CountModels on every 3-variable 3-clause formula
// over a sampled grid of clause shapes.
func TestAgainstModelCount(t *testing.T) {
	lits := []int{1, -1, 2, -2, 3, -3}
	for _, a := range lits {
		for _, b := range lits {
			for _, c := range lits {
				f := cnf.NewFormula(3)
				f.Add(a).Add(b, c).Add(-a, c)
				r, m := Solve(f, 0)
				n := CountModels(f)
				if (n > 0) != (r == SAT) {
					t.Fatalf("disagreement on %v: brute=%v models=%d", f.Clauses, r, n)
				}
				if r == SAT {
					if err := f.Verify(m); err != nil {
						t.Fatalf("bad model for %v: %v", f.Clauses, err)
					}
				}
			}
		}
	}
}
