// Package nws reimplements the forecasting core of the Network Weather
// Service (Wolski et al.), which GridSAT's master uses to rank Grid
// resources by predicted CPU power and free memory (paper §3.3).
//
// NWS's key idea: maintain a battery of cheap time-series predictors
// (running mean, sliding-window means and medians, exponential smoothing
// with several gains) and, for each new measurement, dynamically select the
// predictor whose past forecasts have accumulated the lowest error. The
// winning predictor supplies the forecast for the next interval.
package nws

import (
	"fmt"
	"math"
	"sort"
)

// Predictor is a single-step time-series forecaster.
type Predictor interface {
	// Update feeds one measurement.
	Update(x float64)
	// Forecast predicts the next measurement.
	Forecast() float64
	// Name identifies the predictor in diagnostics.
	Name() string
}

// runningMean forecasts the mean of all history.
type runningMean struct {
	sum float64
	n   int
}

func (p *runningMean) Update(x float64) { p.sum += x; p.n++ }
func (p *runningMean) Forecast() float64 {
	if p.n == 0 {
		return 0
	}
	return p.sum / float64(p.n)
}
func (p *runningMean) Name() string { return "running-mean" }

// lastValue forecasts the most recent measurement.
type lastValue struct{ last float64 }

func (p *lastValue) Update(x float64)  { p.last = x }
func (p *lastValue) Forecast() float64 { return p.last }
func (p *lastValue) Name() string      { return "last-value" }

// slidingMean forecasts the mean over a bounded window.
type slidingMean struct {
	window []float64
	size   int
}

func (p *slidingMean) Update(x float64) {
	p.window = append(p.window, x)
	if len(p.window) > p.size {
		p.window = p.window[1:]
	}
}
func (p *slidingMean) Forecast() float64 {
	if len(p.window) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range p.window {
		sum += v
	}
	return sum / float64(len(p.window))
}
func (p *slidingMean) Name() string { return fmt.Sprintf("sliding-mean-%d", p.size) }

// slidingMedian forecasts the median over a bounded window, robust to the
// load spikes typical of shared machines.
type slidingMedian struct {
	window []float64
	size   int
}

func (p *slidingMedian) Update(x float64) {
	p.window = append(p.window, x)
	if len(p.window) > p.size {
		p.window = p.window[1:]
	}
}
func (p *slidingMedian) Forecast() float64 {
	n := len(p.window)
	if n == 0 {
		return 0
	}
	tmp := append([]float64(nil), p.window...)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}
func (p *slidingMedian) Name() string { return fmt.Sprintf("sliding-median-%d", p.size) }

// expSmooth forecasts with exponential smoothing at gain g.
type expSmooth struct {
	g     float64
	state float64
	init  bool
}

func (p *expSmooth) Update(x float64) {
	if !p.init {
		p.state = x
		p.init = true
		return
	}
	p.state = p.g*x + (1-p.g)*p.state
}
func (p *expSmooth) Forecast() float64 { return p.state }
func (p *expSmooth) Name() string      { return fmt.Sprintf("exp-smooth-%.2f", p.g) }

// Forecaster runs the NWS predictor battery with dynamic selection by
// accumulated mean-squared error.
type Forecaster struct {
	predictors []Predictor
	sqErr      []float64
	n          int
}

// NewForecaster builds the standard battery.
func NewForecaster() *Forecaster {
	ps := []Predictor{
		&runningMean{},
		&lastValue{},
		&slidingMean{size: 5},
		&slidingMean{size: 20},
		&slidingMedian{size: 5},
		&slidingMedian{size: 21},
		&expSmooth{g: 0.1},
		&expSmooth{g: 0.3},
		&expSmooth{g: 0.7},
	}
	return &Forecaster{predictors: ps, sqErr: make([]float64, len(ps))}
}

// Update feeds a new measurement: each predictor's previous forecast is
// scored against it, then all predictors absorb the value.
func (f *Forecaster) Update(x float64) {
	if f.n > 0 {
		for i, p := range f.predictors {
			e := p.Forecast() - x
			f.sqErr[i] += e * e
		}
	}
	for _, p := range f.predictors {
		p.Update(x)
	}
	f.n++
}

// Forecast returns the current best predictor's forecast. With no history
// it returns 0.
func (f *Forecaster) Forecast() float64 {
	if f.n == 0 {
		return 0
	}
	return f.predictors[f.best()].Forecast()
}

// BestPredictor names the predictor currently winning the error race.
func (f *Forecaster) BestPredictor() string {
	if f.n == 0 {
		return "none"
	}
	return f.predictors[f.best()].Name()
}

// MSE returns the winning predictor's mean squared error so far.
func (f *Forecaster) MSE() float64 {
	if f.n <= 1 {
		return 0
	}
	return f.sqErr[f.best()] / float64(f.n-1)
}

// Samples returns the number of measurements absorbed.
func (f *Forecaster) Samples() int { return f.n }

func (f *Forecaster) best() int {
	best := 0
	for i, e := range f.sqErr {
		if e < f.sqErr[best] {
			best = i
		}
	}
	return best
}

// ResourceForecast couples the two series GridSAT ranks hosts by:
// fractional CPU availability and free memory.
type ResourceForecast struct {
	CPU    *Forecaster
	Memory *Forecaster
}

// NewResourceForecast returns forecasters for one host.
func NewResourceForecast() *ResourceForecast {
	return &ResourceForecast{CPU: NewForecaster(), Memory: NewForecaster()}
}

// Observe feeds one joint measurement.
func (r *ResourceForecast) Observe(cpuAvail, freeMem float64) {
	r.CPU.Update(cpuAvail)
	r.Memory.Update(freeMem)
}

// Rank computes the master's host-ranking score: predicted effective
// processing power weighted by predicted memory capacity. speed is the
// host's nominal speed; the forecasted CPU availability scales it.
func (r *ResourceForecast) Rank(speed float64) float64 {
	cpu := r.CPU.Forecast()
	if cpu < 0 {
		cpu = 0
	}
	if cpu > 1 {
		cpu = 1
	}
	mem := r.Memory.Forecast()
	if mem < 0 {
		mem = 0
	}
	// Memory enters sub-linearly: doubling memory helps less than doubling
	// effective CPU, but memory-starved hosts rank near zero (the paper
	// refuses hosts under a minimum memory outright).
	return speed * cpu * math.Sqrt(mem)
}
