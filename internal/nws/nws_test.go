package nws

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningMean(t *testing.T) {
	p := &runningMean{}
	if p.Forecast() != 0 {
		t.Error("empty running mean not 0")
	}
	for _, x := range []float64{1, 2, 3} {
		p.Update(x)
	}
	if p.Forecast() != 2 {
		t.Errorf("mean = %v, want 2", p.Forecast())
	}
}

func TestLastValue(t *testing.T) {
	p := &lastValue{}
	p.Update(5)
	p.Update(7)
	if p.Forecast() != 7 {
		t.Errorf("last = %v", p.Forecast())
	}
}

func TestSlidingMeanWindow(t *testing.T) {
	p := &slidingMean{size: 2}
	if p.Forecast() != 0 {
		t.Error("empty sliding mean not 0")
	}
	for _, x := range []float64{10, 2, 4} {
		p.Update(x)
	}
	if p.Forecast() != 3 {
		t.Errorf("windowed mean = %v, want 3 (10 evicted)", p.Forecast())
	}
}

func TestSlidingMedian(t *testing.T) {
	p := &slidingMedian{size: 5}
	if p.Forecast() != 0 {
		t.Error("empty median not 0")
	}
	for _, x := range []float64{1, 100, 2} {
		p.Update(x)
	}
	if p.Forecast() != 2 {
		t.Errorf("median = %v, want 2", p.Forecast())
	}
	p.Update(3)
	if p.Forecast() != 2.5 {
		t.Errorf("even median = %v, want 2.5", p.Forecast())
	}
}

func TestSlidingMedianDoesNotMutateWindow(t *testing.T) {
	p := &slidingMedian{size: 5}
	p.Update(3)
	p.Update(1)
	p.Update(2)
	_ = p.Forecast()
	if p.window[0] != 3 || p.window[1] != 1 || p.window[2] != 2 {
		t.Error("Forecast sorted the live window")
	}
}

func TestExpSmooth(t *testing.T) {
	p := &expSmooth{g: 0.5}
	p.Update(10)
	if p.Forecast() != 10 {
		t.Errorf("first value should initialize state, got %v", p.Forecast())
	}
	p.Update(0)
	if p.Forecast() != 5 {
		t.Errorf("smoothed = %v, want 5", p.Forecast())
	}
}

func TestForecasterConstantSeries(t *testing.T) {
	f := NewForecaster()
	for i := 0; i < 50; i++ {
		f.Update(0.75)
	}
	if math.Abs(f.Forecast()-0.75) > 1e-9 {
		t.Errorf("constant series forecast = %v", f.Forecast())
	}
	if f.Samples() != 50 {
		t.Errorf("samples = %d", f.Samples())
	}
	if f.MSE() > 1e-12 {
		t.Errorf("constant series MSE = %v", f.MSE())
	}
}

func TestForecasterEmpty(t *testing.T) {
	f := NewForecaster()
	if f.Forecast() != 0 || f.BestPredictor() != "none" || f.MSE() != 0 {
		t.Error("empty forecaster defaults wrong")
	}
}

// On a noisy series with occasional huge spikes, the selected predictor
// should track the base level far better than last-value would.
func TestForecasterRobustToSpikes(t *testing.T) {
	f := NewForecaster()
	last := &lastValue{}
	rng := rand.New(rand.NewSource(1))
	var fErr, lastErr float64
	for i := 0; i < 400; i++ {
		x := 1.0 + 0.05*rng.NormFloat64()
		if i%17 == 0 {
			x = 25 // load spike
		}
		if i > 0 {
			fErr += math.Abs(f.Forecast() - x)
			lastErr += math.Abs(last.Forecast() - x)
		}
		f.Update(x)
		last.Update(x)
	}
	if fErr >= lastErr {
		t.Errorf("battery error %v not better than last-value %v", fErr, lastErr)
	}
}

// The dynamic selection must do at least as well as the single worst
// predictor on any series (it tracks the best, so this is a weak but
// universal property).
func TestForecasterSelectionProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := NewForecaster()
		n := 30 + rng.Intn(100)
		for i := 0; i < n; i++ {
			f.Update(rng.Float64() * 10)
		}
		best := f.best()
		for i := range f.sqErr {
			if f.sqErr[best] > f.sqErr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestForecasterTrendFavorsSmoothing(t *testing.T) {
	f := NewForecaster()
	for i := 0; i < 200; i++ {
		f.Update(float64(i))
	}
	// On a pure trend, the winner should be one of the reactive predictors
	// (last-value or high-gain smoothing), never the running mean.
	if f.BestPredictor() == "running-mean" {
		t.Errorf("running mean won on a linear trend (forecast %v)", f.Forecast())
	}
	if f.Forecast() < 150 {
		t.Errorf("trend forecast %v lags badly", f.Forecast())
	}
}

func TestResourceForecastRank(t *testing.T) {
	r := NewResourceForecast()
	for i := 0; i < 20; i++ {
		r.Observe(0.5, 4096)
	}
	got := r.Rank(2.0)
	want := 2.0 * 0.5 * math.Sqrt(4096)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("rank = %v, want %v", got, want)
	}
}

func TestRankClampsCPU(t *testing.T) {
	r := NewResourceForecast()
	for i := 0; i < 10; i++ {
		r.Observe(3.0, 100) // bogus availability > 1
	}
	if got := r.Rank(1); got > math.Sqrt(100)+1e-9 {
		t.Errorf("rank %v did not clamp cpu to 1", got)
	}
	r2 := NewResourceForecast()
	for i := 0; i < 10; i++ {
		r2.Observe(-1, -5)
	}
	if got := r2.Rank(1); got != 0 {
		t.Errorf("negative forecasts should rank 0, got %v", got)
	}
}

func TestPredictorNames(t *testing.T) {
	f := NewForecaster()
	seen := map[string]bool{}
	for _, p := range f.predictors {
		if p.Name() == "" {
			t.Error("empty predictor name")
		}
		if seen[p.Name()] {
			t.Errorf("duplicate predictor name %q", p.Name())
		}
		seen[p.Name()] = true
	}
}

func TestBestPredictorOnAlternatingSeries(t *testing.T) {
	f := NewForecaster()
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			f.Update(0)
		} else {
			f.Update(10)
		}
	}
	// Mean-like predictors (forecasting ~5) must beat last-value (always
	// off by 10) on the alternating series.
	if f.BestPredictor() == "last-value" {
		t.Error("last-value won on alternating series")
	}
	if math.Abs(f.Forecast()-5) > 2.6 {
		t.Errorf("alternating forecast = %v, want near 5", f.Forecast())
	}
}
