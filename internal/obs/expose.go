package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.families() {
		if fam.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fam.name)
			bw.WriteByte(' ')
			bw.WriteString(fam.help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fam.name)
		bw.WriteByte(' ')
		bw.WriteString(fam.typ.String())
		bw.WriteByte('\n')
		for _, s := range fam.orderedSeries() {
			switch m := s.metric.(type) {
			case *Counter:
				writeSample(bw, fam.name, s.labels, nil, float64(m.Value()))
			case *Gauge:
				writeSample(bw, fam.name, s.labels, nil, float64(m.Value()))
			case *Histogram:
				cum := int64(0)
				for i, b := range m.bounds {
					cum += m.counts[i].Load()
					writeSample(bw, fam.name+"_bucket", s.labels,
						[]Label{{Key: "le", Value: formatFloat(b)}}, float64(cum))
				}
				cum += m.counts[len(m.bounds)].Load()
				writeSample(bw, fam.name+"_bucket", s.labels,
					[]Label{{Key: "le", Value: "+Inf"}}, float64(cum))
				writeSample(bw, fam.name+"_sum", s.labels, nil, m.Sum())
				writeSample(bw, fam.name+"_count", s.labels, nil, float64(m.Count()))
			}
		}
	}
	return bw.Flush()
}

func writeSample(w *bufio.Writer, name string, labels, extra []Label, v float64) {
	w.WriteString(name)
	all := labels
	if len(extra) > 0 {
		all = append(append([]Label(nil), labels...), extra...)
	}
	if len(all) > 0 {
		w.WriteByte('{')
		for i, l := range all {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l.Key)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(l.Value))
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Point is one counter or gauge sample in a Snapshot.
type Point struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// Bucket is one cumulative histogram bucket in a Snapshot.
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramPoint is one histogram series in a Snapshot.
type HistogramPoint struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Buckets []Bucket          `json:"buckets"`
	Sum     float64           `json:"sum"`
	Count   int64             `json:"count"`
}

// Snapshot is a point-in-time, JSON-encodable view of a registry.
type Snapshot struct {
	Counters   []Point          `json:"counters"`
	Gauges     []Point          `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
}

// Snapshot captures every registered series.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, fam := range r.families() {
		for _, s := range fam.orderedSeries() {
			lm := labelMap(s.labels)
			switch m := s.metric.(type) {
			case *Counter:
				snap.Counters = append(snap.Counters, Point{Name: fam.name, Labels: lm, Value: m.Value()})
			case *Gauge:
				snap.Gauges = append(snap.Gauges, Point{Name: fam.name, Labels: lm, Value: m.Value()})
			case *Histogram:
				// The +Inf bucket is omitted (encoding/json cannot represent
				// infinity); Count carries the all-observations total.
				hp := HistogramPoint{Name: fam.name, Labels: lm, Sum: m.Sum(), Count: m.Count()}
				cum := int64(0)
				for i, b := range m.bounds {
					cum += m.counts[i].Load()
					hp.Buckets = append(hp.Buckets, Bucket{LE: b, Count: cum})
				}
				snap.Histograms = append(snap.Histograms, hp)
			}
		}
	}
	return snap
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// CounterValue sums every counter series of the given name whose labels
// include all of want. It is a convenience for reports and tests; hot
// paths should hold the *Counter handle instead.
func (s Snapshot) CounterValue(name string, want ...Label) int64 {
	var total int64
	for _, p := range s.Counters {
		if p.Name != name || !matches(p.Labels, want) {
			continue
		}
		total += p.Value
	}
	return total
}

func matches(labels map[string]string, want []Label) bool {
	for _, w := range want {
		if labels[w.Key] != w.Value {
			return false
		}
	}
	return true
}
