package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

// Log levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// levelOff is above every level; used by Nop.
	levelOff
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	}
	return "OFF"
}

// ParseLevel maps a flag string ("debug", "info", "warn", "error") to a
// Level; unknown strings default to Info.
func ParseLevel(s string) Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Logger is a small leveled structured logger writing one line per event:
//
//	2003-11-15T10:20:30.123Z INFO  [master] client registered id=3 mem=512MiB
//
// Key-value pairs are appended as k=v; values with spaces are quoted.
// Named returns component-scoped children that share the writer, mutex,
// and level, so a whole process logs through one Logger tree.
type Logger struct {
	mu   *sync.Mutex
	w    io.Writer
	lvl  *atomic.Int32
	name string
	now  func() time.Time
	lt   LamportSource
}

// LamportSource supplies a logical timestamp for log lines. Both
// comm.Clock and trace.Flight satisfy it.
type LamportSource interface{ Now() uint64 }

// NewLogger writes events at or above lvl to w.
func NewLogger(w io.Writer, lvl Level) *Logger {
	l := &Logger{mu: &sync.Mutex{}, w: w, lvl: &atomic.Int32{}, now: time.Now}
	l.lvl.Store(int32(lvl))
	return l
}

// Nop returns a logger that discards everything at zero cost.
func Nop() *Logger {
	l := NewLogger(io.Discard, levelOff)
	return l
}

// Named returns a child logger tagged with a component name (children of
// named loggers join the names with '/').
func (l *Logger) Named(name string) *Logger {
	child := *l
	if l.name != "" {
		child.name = l.name + "/" + name
	} else {
		child.name = name
	}
	return &child
}

// WithLamport returns a child logger that stamps each line with the
// logical time read from src, rendered as [component@N]. Wall clocks skew
// across grid sites; the Lamport stamp is what lets a log line be placed
// against the flight recorder's causal event order.
func (l *Logger) WithLamport(src LamportSource) *Logger {
	child := *l
	child.lt = src
	return &child
}

// SetLevel changes the level for this logger and everyone sharing it.
func (l *Logger) SetLevel(lvl Level) { l.lvl.Store(int32(lvl)) }

// Enabled reports whether events at lvl would be written.
func (l *Logger) Enabled(lvl Level) bool { return lvl >= Level(l.lvl.Load()) }

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lvl Level, msg string, kv []any) {
	if !l.Enabled(lvl) {
		return
	}
	var b strings.Builder
	b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	fmt.Fprintf(&b, " %-5s ", lvl)
	if l.name != "" || l.lt != nil {
		b.WriteByte('[')
		b.WriteString(l.name)
		if l.lt != nil {
			fmt.Fprintf(&b, "@%d", l.lt.Now())
		}
		b.WriteString("] ")
	}
	b.WriteString(msg)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v=", kv[i])
		writeValue(&b, kv[i+1])
	}
	if len(kv)%2 == 1 { // dangling key: make the mistake visible, not lost
		fmt.Fprintf(&b, " %v=?", kv[len(kv)-1])
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

func writeValue(b *strings.Builder, v any) {
	s := fmt.Sprintf("%v", v)
	if strings.ContainsAny(s, " \t\n\"=") {
		fmt.Fprintf(b, "%q", s)
	} else {
		b.WriteString(s)
	}
}
