package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary for dashboards and load
// balancers: module version, Go toolchain, and the VCS revision baked
// in by `go build` (short form; "-dirty" appended for modified trees).
type BuildInfo struct {
	Version  string `json:"version"`
	Go       string `json:"go"`
	Revision string `json:"revision"`
}

// ReadBuildInfo extracts the binary's identity from the embedded build
// metadata. Fields degrade to "unknown" when the binary was built
// without module/VCS stamping (e.g. `go test`).
func ReadBuildInfo() BuildInfo {
	out := BuildInfo{Version: "unknown", Go: runtime.Version(), Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if v := bi.Main.Version; v != "" {
		out.Version = v
	}
	var rev string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "-dirty"
		}
		out.Revision = rev
	}
	return out
}

// RegisterBuildInfo publishes the standard build-identity gauge: a
// constant 1 whose labels carry the version strings, the Prometheus
// idiom for instance identification. Returns the info for reuse (the
// master's /healthz reports the same identity).
func RegisterBuildInfo(reg *Registry) BuildInfo {
	bi := ReadBuildInfo()
	reg.Gauge("gridsat_build_info", "build identity (constant 1; identity in labels)",
		L("version", bi.Version), L("go", bi.Go), L("revision", bi.Revision)).Set(1)
	return bi
}
