package history

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"gridsat/internal/obs"
)

func TestObserveAndLast(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 10; i++ {
		s.Observe("x", float64(i), float64(i*i))
	}
	pts := s.Last("x", 3)
	if len(pts) != 3 {
		t.Fatalf("Last(3) returned %d points", len(pts))
	}
	want := []Point{{7, 49}, {8, 64}, {9, 81}}
	for i, p := range pts {
		if p != want[i] {
			t.Errorf("point %d = %+v, want %+v", i, p, want[i])
		}
	}
	if got := s.Last("nope", 3); got != nil {
		t.Errorf("Last(unknown) = %v, want nil", got)
	}
	vals := s.LastValues("x", 2)
	if len(vals) != 2 || vals[0] != 64 || vals[1] != 81 {
		t.Errorf("LastValues = %v", vals)
	}
}

func TestRingWraps(t *testing.T) {
	s := New(Config{TierCap: 4, Tiers: 1})
	for i := 0; i < 10; i++ {
		s.Observe("x", float64(i), float64(i))
	}
	pts := s.Last("x", 100)
	if len(pts) != 4 {
		t.Fatalf("ring holds %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if want := float64(6 + i); p.V != want {
			t.Errorf("point %d = %v, want %v (oldest-first after wrap)", i, p.V, want)
		}
	}
}

func TestDownsamplingTiers(t *testing.T) {
	s := New(Config{Tiers: 2, TierCap: 100, Downsample: 4, IntervalSec: 1})
	for i := 0; i < 8; i++ {
		s.Observe("x", float64(i), float64(i))
	}
	d := s.Dump()
	if len(d) != 1 || d[0].Name != "x" {
		t.Fatalf("dump = %+v", d)
	}
	if len(d[0].Tiers) != 2 {
		t.Fatalf("got %d tiers, want 2", len(d[0].Tiers))
	}
	t1 := d[0].Tiers[1]
	if t1.StrideSec != 4 {
		t.Errorf("tier-1 stride = %v, want 4", t1.StrideSec)
	}
	// Means of [0..3] and [4..7], stamped at the last contributing time.
	want := []Point{{3, 1.5}, {7, 5.5}}
	if len(t1.Points) != 2 {
		t.Fatalf("tier-1 has %d points, want 2: %+v", len(t1.Points), t1.Points)
	}
	for i, p := range t1.Points {
		if p != want[i] {
			t.Errorf("tier-1 point %d = %+v, want %+v", i, p, want[i])
		}
	}
}

func TestMaxSeriesCap(t *testing.T) {
	s := New(Config{MaxSeries: 2})
	s.Observe("a", 0, 1)
	s.Observe("b", 0, 1)
	s.Observe("c", 0, 1)
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if s.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", s.Dropped())
	}
	// Existing series still accept points past the cap.
	s.Observe("a", 1, 2)
	if got := s.Last("a", 10); len(got) != 2 {
		t.Errorf("capped store dropped an existing series' point: %v", got)
	}
}

func TestSampleSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("jobs_total", "").Add(3)
	reg.Gauge("busy", "", obs.L("client", "1")).Set(7)
	s := New(Config{})
	s.SampleSnapshot(10, reg.Snapshot())
	if got := s.Last("jobs_total", 1); len(got) != 1 || got[0].V != 3 {
		t.Errorf("counter series = %v", got)
	}
	if got := s.Last(`busy{client="1"}`, 1); len(got) != 1 || got[0].V != 7 {
		t.Errorf("labeled gauge series = %v (names: %v)", got, s.Names())
	}
}

func TestWriteJSON(t *testing.T) {
	s := New(Config{IntervalSec: 2})
	s.Observe("cov", 1, 0.5)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Series []SeriesDump `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(out.Series) != 1 || out.Series[0].Name != "cov" {
		t.Fatalf("round-tripped %+v", out.Series)
	}
	if out.Series[0].Tiers[0].StrideSec != 2 {
		t.Errorf("stride = %v, want 2", out.Series[0].Tiers[0].StrideSec)
	}
}

func TestSpark(t *testing.T) {
	cases := []struct {
		vals  []float64
		width int
		want  string
	}{
		{nil, 4, "    "},
		{[]float64{1, 1, 1}, 3, "   "},                     // flat → lowest ink
		{[]float64{0, 7}, 2, " #"},                         // full range
		{[]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8, " .:-=+*#"}, // whole ramp
		{[]float64{5}, 4, "    "},                          // single point, left-padded
		{[]float64{0, 1, 2, 3}, 2, " #"},                   // truncates to newest, rescaled
	}
	for i, c := range cases {
		got := Spark(c.vals, c.width)
		if got != c.want {
			t.Errorf("case %d: Spark(%v, %d) = %q, want %q", i, c.vals, c.width, got, c.want)
		}
		if len(got) != c.width {
			t.Errorf("case %d: width %d, want %d", i, len(got), c.width)
		}
	}
	if s := Spark([]float64{1, 2}, 0); s != "" {
		t.Errorf("zero width = %q", s)
	}
}

func TestSparkASCIIOnly(t *testing.T) {
	// gridsat top is byte-width fixed; the ramp must stay single-byte.
	for _, r := range sparkRamp {
		if r > 127 {
			t.Fatalf("spark ramp contains non-ASCII rune %q", r)
		}
	}
	s := Spark([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 10)
	if len(s) != len([]rune(s)) {
		t.Fatalf("spark output is not byte-per-column: %q", s)
	}
}

func TestManySeriesStaySorted(t *testing.T) {
	s := New(Config{})
	for i := 9; i >= 0; i-- {
		s.Observe(fmt.Sprintf("s%02d", i), 0, 1)
	}
	names := s.Names()
	if !strings.HasPrefix(names[0], "s00") || len(names) != 10 {
		t.Errorf("names not sorted: %v", names)
	}
	d := s.Dump()
	for i := 1; i < len(d); i++ {
		if d[i-1].Name > d[i].Name {
			t.Errorf("dump not sorted at %d: %s > %s", i, d[i-1].Name, d[i].Name)
		}
	}
}
