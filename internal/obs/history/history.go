// Package history is an in-process time-series store: a fixed-cadence
// sampler folds the metrics registry (plus explicit per-job/per-client
// series) into ring-buffered series with downsampling tiers, so the
// service can answer "what happened over the last ten minutes" instead
// of only "what is happening now". Tier 0 holds raw samples at the
// sampling cadence; each higher tier holds the mean of Downsample
// consecutive points from the tier below, trading resolution for span.
// The store is mutex-guarded: the master's event loop writes while the
// /history HTTP handler and the watchdog read.
package history

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"gridsat/internal/obs"
)

// Config sizes the store. The zero value is usable: Defaults() is
// applied on New.
type Config struct {
	Tiers       int     // downsampling tiers per series (default 3)
	TierCap     int     // ring capacity per tier in points (default 256)
	Downsample  int     // aggregation factor between tiers (default 8)
	MaxSeries   int     // cap on distinct series names (default 4096)
	IntervalSec float64 // nominal sampling cadence, for tier stride labels (0 = unknown)
}

func (c Config) withDefaults() Config {
	if c.Tiers <= 0 {
		c.Tiers = 3
	}
	if c.TierCap <= 0 {
		c.TierCap = 256
	}
	if c.Downsample <= 1 {
		c.Downsample = 8
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = 4096
	}
	return c
}

// Point is one sample: a timestamp (wall seconds live, virtual seconds
// in the DES) and a value.
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// ring is one fixed-capacity tier plus the accumulator that downsamples
// into the tier above.
type ring struct {
	pts    []Point
	head   int // next write slot
	n      int
	accSum float64
	accT   float64
	accN   int
}

func (r *ring) push(p Point) {
	r.pts[r.head] = p
	r.head = (r.head + 1) % len(r.pts)
	if r.n < len(r.pts) {
		r.n++
	}
}

// ordered returns the ring's points oldest-first.
func (r *ring) ordered() []Point {
	out := make([]Point, 0, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.pts)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.pts[(start+i)%len(r.pts)])
	}
	return out
}

// Series is one named multi-tier ring.
type Series struct {
	name  string
	tiers []*ring
}

func (s *Store) newSeries(name string) *Series {
	se := &Series{name: name, tiers: make([]*ring, s.cfg.Tiers)}
	for i := range se.tiers {
		se.tiers[i] = &ring{pts: make([]Point, s.cfg.TierCap)}
	}
	return se
}

// observe appends a raw point to tier 0 and cascades means upward.
func (se *Series) observe(p Point, factor int) {
	for _, t := range se.tiers {
		t.push(p)
		t.accSum += p.V
		t.accT = p.T
		t.accN++
		if t.accN < factor {
			return
		}
		p = Point{T: t.accT, V: t.accSum / float64(t.accN)}
		t.accSum, t.accN = 0, 0
	}
}

// Store holds all series. Safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	cfg  Config
	ser  map[string]*Series
	drop int64 // series rejected by the MaxSeries cap
}

// New builds a store with cfg (zero-value fields take defaults).
func New(cfg Config) *Store {
	return &Store{cfg: cfg.withDefaults(), ser: make(map[string]*Series)}
}

// Observe records value v for series name at time t. Unknown names are
// created on first use until the MaxSeries cap; past the cap new names
// are counted and dropped so label churn cannot grow memory unbounded.
func (s *Store) Observe(name string, t, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observeLocked(name, t, v)
}

func (s *Store) observeLocked(name string, t, v float64) {
	se, ok := s.ser[name]
	if !ok {
		if len(s.ser) >= s.cfg.MaxSeries {
			s.drop++
			return
		}
		se = s.newSeries(name)
		s.ser[name] = se
	}
	se.observe(Point{T: t, V: v}, s.cfg.Downsample)
}

// SampleSnapshot folds a full registry snapshot into the store: every
// counter and gauge becomes a series named "name{labels}". Histograms
// are skipped (their sums/counts already surface as /metrics families
// and would triple the series count for little sparkline value).
func (s *Store) SampleSnapshot(t float64, snap obs.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range snap.Counters {
		s.observeLocked(seriesName(p.Name, p.Labels), t, float64(p.Value))
	}
	for _, p := range snap.Gauges {
		s.observeLocked(seriesName(p.Name, p.Labels), t, float64(p.Value))
	}
}

// seriesName renders name{k="v",...} with sorted label keys, matching
// the registry's own family rendering.
func seriesName(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := name + "{"
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%q", k, labels[k])
	}
	return out + "}"
}

// Last returns up to n most recent raw (tier-0) points of the series,
// oldest first. Nil if the series does not exist.
func (s *Store) Last(name string, n int) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	se, ok := s.ser[name]
	if !ok {
		return nil
	}
	pts := se.tiers[0].ordered()
	if len(pts) > n {
		pts = pts[len(pts)-n:]
	}
	return pts
}

// LastValues is Last with only the values, for sparkline rendering.
func (s *Store) LastValues(name string, n int) []float64 {
	pts := s.Last(name, n)
	if pts == nil {
		return nil
	}
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.V
	}
	return out
}

// Names lists the stored series, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.ser))
	for n := range s.ser {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of distinct series.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ser)
}

// Dropped reports how many observations were rejected by MaxSeries.
func (s *Store) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drop
}

// TierDump is one tier of a dumped series. StrideSec is the nominal
// seconds per point (0 when the store was built without IntervalSec).
type TierDump struct {
	StrideSec float64 `json:"stride_sec"`
	Points    []Point `json:"points"`
}

// SeriesDump is the JSON shape of one series for GET /history and for
// postmortem bundles.
type SeriesDump struct {
	Name  string     `json:"name"`
	Tiers []TierDump `json:"tiers"`
}

// Dump snapshots every series, sorted by name. Tiers with no points are
// omitted so fresh stores serialize compactly.
func (s *Store) Dump() []SeriesDump {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.ser))
	for n := range s.ser {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]SeriesDump, 0, len(names))
	stride0 := s.cfg.IntervalSec
	for _, n := range names {
		se := s.ser[n]
		d := SeriesDump{Name: n}
		stride := stride0
		for _, t := range se.tiers {
			if t.n > 0 {
				d.Tiers = append(d.Tiers, TierDump{StrideSec: stride, Points: t.ordered()})
			}
			stride *= float64(s.cfg.Downsample)
		}
		out = append(out, d)
	}
	return out
}

// WriteJSON serializes the full dump as indented JSON.
func (s *Store) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Series []SeriesDump `json:"series"`
	}{s.Dump()})
}

// sparkRamp is deliberately ASCII: gridsat top frames are fixed-width
// in *bytes*, so multi-byte block glyphs would break the layout.
const sparkRamp = " .:-=+*#"

// Spark renders vals as a fixed-width ASCII sparkline, newest at the
// right. Fewer values than width left-pads with spaces; a flat series
// renders at the lowest ink so stalls are visually obvious.
func Spark(vals []float64, width int) string {
	if width <= 0 {
		return ""
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := 0.0, 0.0
	for i, v := range vals {
		if i == 0 || v < lo {
			lo = v
		}
		if i == 0 || v > hi {
			hi = v
		}
	}
	out := make([]byte, width)
	for i := range out {
		out[i] = ' '
	}
	for i, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRamp)-1))
			if idx >= len(sparkRamp) {
				idx = len(sparkRamp) - 1
			}
		}
		out[width-len(vals)+i] = sparkRamp[idx]
	}
	return string(out)
}
