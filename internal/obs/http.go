package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves live introspection for a registry:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   JSON snapshot of the same registry
//	/status         JSON of the caller-supplied status value
//	/debug/pprof/   the standard Go profiler endpoints
//
// status may be nil, in which case /status returns 404. Callers may mount
// additional endpoints (the master adds /trace and /tree when a flight
// recorder is attached) via extra. The handler is deliberately built on a
// private mux so importing this package never mutates
// http.DefaultServeMux.
func Handler(reg *Registry, status func() any, extra ...Endpoint) http.Handler {
	mux := http.NewServeMux()
	for _, e := range extra {
		mux.HandleFunc(e.Path, e.H)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	if status != nil {
		mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(status())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return withRouteLatency(reg, mux)
}

// withRouteLatency wraps the mux with an SLO latency histogram per
// route. The label is the mux's registered pattern (so "/jobs/{id}"
// stays one series regardless of how many jobs exist), with requests
// that match no route collapsed into "unmatched" — label cardinality is
// bounded by the route table, never by traffic.
func withRouteLatency(reg *Registry, mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, pattern := mux.Handler(r)
		if pattern == "" {
			pattern = "unmatched"
		}
		start := time.Now()
		mux.ServeHTTP(w, r)
		reg.Histogram("gridsat_http_request_seconds",
			"HTTP endpoint latency by route", nil, L("route", pattern)).
			Observe(time.Since(start).Seconds())
	})
}

// Endpoint is an extra route mounted by Handler.
type Endpoint struct {
	Path string
	H    http.HandlerFunc
}

// Serve starts an HTTP server for h on addr (":0" picks an ephemeral
// port) and returns the server plus the bound address. The caller owns
// shutdown via srv.Close.
func Serve(addr string, h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
