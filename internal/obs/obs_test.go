package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if reg.Counter("x_total", "help") != c {
		t.Fatal("same name+labels must return the same counter")
	}
	if reg.Counter("x_total", "help", L("k", "v")) == c {
		t.Fatal("different labels must return a different series")
	}
	g := reg.Gauge("g", "")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two types must panic")
		}
	}()
	reg.Gauge("m", "")
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 56.05 {
		t.Fatalf("sum = %v", got)
	}
	snap := reg.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot histograms: %d", len(snap.Histograms))
	}
	hp := snap.Histograms[0]
	wantCum := []int64{1, 3, 4} // cumulative counts at le=0.1, 1, 10
	for i, b := range hp.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket le=%g count=%d, want %d", b.LE, b.Count, wantCum[i])
		}
	}
	if hp.Count != 5 {
		t.Errorf("histogram point count=%d", hp.Count)
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (\+Inf|-?[0-9.eE+-]+)$`)

// CheckPrometheusText fails unless every non-comment, non-blank line of
// text parses as a Prometheus sample. Shared with the core live tests.
func CheckPrometheusText(t *testing.T, text string) {
	t.Helper()
	n := 0
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable metrics line: %q", line)
		}
		n++
	}
	if n == 0 {
		t.Error("no metric samples in exposition")
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("gridsat_msgs_total", "messages", L("kind", "share-clauses"), L("dir", "send")).Add(3)
	reg.Gauge("gridsat_busy", "busy clients").Set(2)
	reg.Histogram("gridsat_lat_seconds", "latency", []float64{0.5, 1}).Observe(0.7)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	CheckPrometheusText(t, out)
	for _, want := range []string{
		`gridsat_msgs_total{dir="send",kind="share-clauses"} 3`,
		"# TYPE gridsat_msgs_total counter",
		"# TYPE gridsat_busy gauge",
		"# TYPE gridsat_lat_seconds histogram",
		`gridsat_lat_seconds_bucket{le="+Inf"} 1`,
		`gridsat_lat_seconds_bucket{le="0.5"} 0`,
		"gridsat_lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m_total", "", L("path", `a"b\c`)).Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c"`) {
		t.Fatalf("unescaped label in %q", b.String())
	}
}

func TestJSONSnapshotRoundtrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "", L("k", "v")).Add(9)
	reg.Gauge("g", "").Set(-4)
	reg.Histogram("h", "", []float64{1, 2}).Observe(1.5)
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if got := snap.CounterValue("c_total", L("k", "v")); got != 9 {
		t.Fatalf("counter value via snapshot = %d", got)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != -4 {
		t.Fatalf("gauges: %+v", snap.Gauges)
	}
}

func TestConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("n_total", "")
			h := reg.Histogram("h", "", []float64{10, 100})
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 200))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("n_total", "").Value(); got != 8000 {
		t.Fatalf("racy counter: %d", got)
	}
	if got := reg.Histogram("h", "", nil).Count(); got != 8000 {
		t.Fatalf("racy histogram: %d", got)
	}
}

func TestLoggerFormatAndLevels(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo)
	l.now = func() time.Time { return time.Date(2003, 11, 15, 10, 20, 30, 123e6, time.UTC) }
	l.Debug("dropped")
	master := l.Named("master")
	master.Info("client registered", "id", 3, "host", "node a")
	if got := b.String(); got != `2003-11-15T10:20:30.123Z INFO  [master] client registered id=3 host="node a"`+"\n" {
		t.Fatalf("log line: %q", got)
	}
	b.Reset()
	l.SetLevel(LevelError)
	master.Warn("dropped too")
	if b.Len() != 0 {
		t.Fatalf("level filter leaked: %q", b.String())
	}
	if !master.Enabled(LevelError) || master.Enabled(LevelWarn) {
		t.Fatal("Enabled disagrees with SetLevel")
	}
}

func TestNopLoggerSilent(t *testing.T) {
	l := Nop()
	l.Error("nothing", "k", "v") // must not panic or write anywhere
	if l.Enabled(LevelError) {
		t.Fatal("Nop logger claims to be enabled")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{"debug": LevelDebug, "INFO": LevelInfo,
		"Warning": LevelWarn, "error": LevelError, "bogus": LevelInfo}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served_total", "").Add(2)
	h := Handler(reg, func() any { return map[string]int{"busy": 3} })
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "served_total 2") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/status"); code != 200 || !strings.Contains(body, `"busy": 3`) {
		t.Fatalf("/status: %d %q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, "served_total") {
		t.Fatalf("/metrics.json: %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}

func TestServeEphemeral(t *testing.T) {
	reg := NewRegistry()
	srv, addr, err := Serve("127.0.0.1:0", Handler(reg, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
