// Package obs is GridSAT's dependency-free observability layer: atomic
// counters, gauges, and bounded histograms collected in a Registry with
// Prometheus text and JSON snapshot exposition, plus a small leveled
// structured logger and an HTTP introspection handler.
//
// The paper's EveryWare instrumentation cost up to 50% of solver
// throughput, forcing timed experiments to run blind (§4.1). This package
// is the always-on replacement: metric handles are plain atomics that
// callers cache once and increment on the hot path, so a fully
// instrumented run stays within noise of an uninstrumented one (see the
// instrumentation ablation in internal/bench).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics; this is
// not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that may go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram (Prometheus style):
// bucket i counts observations <= bounds[i], with an implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the configured bucket upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// DefaultLatencyBounds covers microseconds to minutes, for wall-clock
// latencies measured in seconds.
func DefaultLatencyBounds() []float64 {
	return []float64{1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 1, 2.5, 10, 30, 60, 300}
}

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type series struct {
	labels []Label
	metric any // *Counter, *Gauge, or *Histogram
}

// family groups every series of one metric name (same type and help).
type family struct {
	name   string
	help   string
	typ    metricType
	bounds []float64 // histograms only

	mu     sync.RWMutex
	series map[string]*series // keyed by rendered label set
}

// Registry holds named metric families. The zero value is not usable;
// create with NewRegistry. All methods are safe for concurrent use, but
// hot paths should call Counter/Gauge/Histogram once and cache the
// returned handle rather than looking it up per event.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// Counter returns (creating if needed) the counter for name+labels.
// Panics if name is already registered as a different metric type.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.getSeries(name, help, typeCounter, nil, labels)
	return s.metric.(*Counter)
}

// Gauge returns (creating if needed) the gauge for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.getSeries(name, help, typeGauge, nil, labels)
	return s.metric.(*Gauge)
}

// Histogram returns (creating if needed) the histogram for name+labels.
// bounds must be sorted ascending; they are fixed by the first caller.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds()
	}
	s := r.getSeries(name, help, typeHistogram, bounds, labels)
	return s.metric.(*Histogram)
}

func (r *Registry) getSeries(name, help string, typ metricType, bounds []float64, labels []Label) *series {
	fam := r.getFamily(name, help, typ, bounds)
	key := labelKey(labels)
	fam.mu.RLock()
	s := fam.series[key]
	fam.mu.RUnlock()
	if s != nil {
		return s
	}
	fam.mu.Lock()
	defer fam.mu.Unlock()
	if s = fam.series[key]; s != nil {
		return s
	}
	s = &series{labels: sortedLabels(labels)}
	switch typ {
	case typeCounter:
		s.metric = &Counter{}
	case typeGauge:
		s.metric = &Gauge{}
	case typeHistogram:
		h := &Histogram{bounds: fam.bounds}
		h.counts = make([]atomic.Int64, len(fam.bounds)+1)
		s.metric = h
	}
	fam.series[key] = s
	return s
}

func (r *Registry) getFamily(name, help string, typ metricType, bounds []float64) *family {
	r.mu.RLock()
	fam := r.fams[name]
	r.mu.RUnlock()
	if fam == nil {
		r.mu.Lock()
		if fam = r.fams[name]; fam == nil {
			fam = &family{name: name, help: help, typ: typ, bounds: bounds,
				series: map[string]*series{}}
			r.fams[name] = fam
		}
		r.mu.Unlock()
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s",
			name, fam.typ, typ))
	}
	return fam
}

// families returns the families sorted by name (for exposition).
func (r *Registry) families() []*family {
	r.mu.RLock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// orderedSeries returns a family's series sorted by label key.
func (f *family) orderedSeries() []*series {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = f.series[k]
	}
	f.mu.RUnlock()
	return out
}

func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// labelKey renders labels in Prometheus form, sorted by key; empty labels
// render as "".
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := sortedLabels(labels)
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
