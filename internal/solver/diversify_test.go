package solver

import (
	"fmt"
	"testing"

	"gridsat/internal/gen"
)

// knobs projects the option fields diversification may touch into a
// comparable value (Options itself holds callbacks and cannot be compared).
func knobs(o Options) string {
	return fmt.Sprintf("%d/%v/%v/%d/%v/%d",
		o.Seed, o.Phase, o.PhaseSaving, o.DecayInterval, o.RestartPolicy, o.RestartBase)
}

func TestProfileForDeterministicAndIdentity(t *testing.T) {
	for _, seed := range []int64{0, 1, -7, 1 << 40} {
		for w := 0; w < 8; w++ {
			a, b := ProfileFor(w, seed), ProfileFor(w, seed)
			if a != b {
				t.Fatalf("ProfileFor(%d, %d) not deterministic: %+v vs %+v", w, seed, a, b)
			}
		}
		// Worker 0 is the pathfinder identity: applying it must return the
		// base options bit for bit, whatever they are.
		base := DefaultOptions()
		base.Seed = seed
		base.ShareMaxLen = 3
		if got := ProfileFor(0, seed).Apply(base); knobs(got) != knobs(base) || got.ShareMaxLen != base.ShareMaxLen {
			t.Fatalf("pathfinder profile perturbed options: %+v vs %+v", got, base)
		}
	}
}

func TestProfilesStructurallyDiverse(t *testing.T) {
	base := DefaultOptions()
	seen := map[string]bool{}
	for w := 1; w <= 6; w++ {
		p := ProfileFor(w, 0)
		o := p.Apply(base)
		if knobs(o) == knobs(base) {
			t.Fatalf("worker %d profile is a no-op", w)
		}
		if o.Seed == 0 {
			t.Fatalf("worker %d got seed 0 (reserved for bit-exact runs)", w)
		}
		if p.String() == "" {
			t.Fatalf("worker %d has empty description", w)
		}
		// Adjacent workers must differ from each other, not just from the
		// base: the lineup rotates restart/phase/decay schedules.
		key := p.Phase.String() + "/" + p.RestartPolicy.String()
		if seen[key] && w <= 4 {
			t.Fatalf("workers 1..4 repeat schedule %s", key)
		}
		seen[key] = true
	}
}

// TestSeedZeroKeepsPhaseDeterministic pins satellite #1's contract: seed 0
// must not allocate or consult the phase-flip table, so two seed-0 runs
// are bit-identical and match the historical engine (the Figure-1 guard
// covers the cross-version half).
func TestSeedZeroKeepsPhaseDeterministic(t *testing.T) {
	f := gen.Pigeonhole(7)
	run := func() Stats {
		s := New(f, DefaultOptions())
		if r := s.Solve(Limits{}); r.Status != StatusUNSAT {
			t.Fatalf("got %v", r.Status)
		}
		return s.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("seed-0 runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestSeedRandomizesInitialPhase checks that a non-zero seed actually
// reaches the decision heuristic: some seed must change the search
// trajectory on a formula whose phase choice matters.
func TestSeedRandomizesInitialPhase(t *testing.T) {
	f := gen.RandomKSAT(30, 120, 3, 5)
	base := New(f, DefaultOptions())
	baseRes := base.Solve(Limits{MaxConflicts: 200})
	diverged := false
	for seed := int64(1); seed <= 8; seed++ {
		opts := DefaultOptions()
		opts.Seed = seed
		s := New(f, opts)
		res := s.Solve(Limits{MaxConflicts: 200})
		if s.Stats() != base.Stats() || res.Status != baseRes.Status {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("no seed in 1..8 changed the search trajectory")
	}
}

// TestProfilesReachSameVerdict runs every worker profile standalone on the
// same instances: diversification must change the path, never the answer.
func TestProfilesReachSameVerdict(t *testing.T) {
	f := gen.Pigeonhole(7)
	base := DefaultOptions()
	var conflicts []int64
	for w := 0; w < 5; w++ {
		opts := ProfileFor(w, base.Seed).Apply(base)
		s := New(f, opts)
		if r := s.Solve(Limits{}); r.Status != StatusUNSAT {
			t.Fatalf("worker %d: got %v", w, r.Status)
		}
		conflicts = append(conflicts, s.Stats().Conflicts)
	}
	distinct := map[int64]bool{}
	for _, c := range conflicts {
		distinct[c] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all 5 worker profiles took identical conflict counts %v — no diversity", conflicts)
	}
}
