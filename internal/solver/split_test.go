package solver

import (
	"testing"

	"gridsat/internal/brute"
	"gridsat/internal/cnf"
	"gridsat/internal/gen"
)

// TestFigure2Split replays the paper's Figure-2 stack transformation on the
// worked example: after the level-1 decision V10=false (implying ¬V13), a
// split must (a) hand the recipient the level-0 assignments plus the
// complement V10 of the first decision, and (b) promote the donor's level 1
// into level 0, after which level-0 pruning drops the now-permanently
// satisfied clauses 8 and 9 on the donor, and the recipient's satisfied
// clauses are pruned on its side.
func TestFigure2Split(t *testing.T) {
	f := figure1Formula()
	step := 0
	opts := DefaultOptions()
	opts.DecisionOverride = func(s *Solver) cnf.Lit {
		if step == 0 {
			step++
			return cnf.NegLit(9) // V10 = false at level 1
		}
		return cnf.PosLit(0) // park: keep the solver pausable
	}
	donor := New(f, opts)
	// Run just far enough to make the decision and propagate it.
	donor.Solve(Limits{MaxPropagations: 3})
	levelBefore := donor.DecisionLevel()
	if levelBefore < 1 {
		t.Fatalf("setup failed: decision level %d", levelBefore)
	}

	sub, err := donor.Split(10, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Recipient assumptions: level-0 assignment V14 plus complement V10.
	wantAssume := map[cnf.Lit]bool{cnf.PosLit(13): true, cnf.PosLit(9): true}
	if len(sub.Assumptions) != len(wantAssume) {
		t.Fatalf("assumptions %v, want V14 and V10", sub.Assumptions)
	}
	for _, l := range sub.Assumptions {
		if !wantAssume[l] {
			t.Fatalf("unexpected assumption %v", l)
		}
	}

	// Donor promoted its first decision level to level 0, keeping its
	// position in the higher levels (Figure 2 shifts them down by one).
	if donor.DecisionLevel() != levelBefore-1 {
		t.Fatalf("donor decision level = %d, want %d", donor.DecisionLevel(), levelBefore-1)
	}
	if donor.Value(9) != cnf.False || donor.LevelOf(9) != 0 {
		t.Fatalf("V10 = %v at level %d on donor, want false at 0", donor.Value(9), donor.LevelOf(9))
	}
	if donor.Value(12) != cnf.False || donor.LevelOf(12) != 0 {
		t.Fatalf("V13 = %v at level %d on donor, want false at 0", donor.Value(12), donor.LevelOf(12))
	}

	// Figure 2: client A (donor) can remove clauses 8 and 9 because ¬V13
	// and V14 are now permanently true. Clause 9 (unit) was never stored as
	// a clause; clause 8 must be pruned by the next level-0 simplify pass
	// (the donor keeps its position above level 0, so return there first).
	donor.backtrackTo(0)
	if confl := donor.propagate(); confl != CRefUndef {
		t.Fatal("unexpected conflict while settling at level 0")
	}
	before := len(donor.clauses)
	donor.simplify()
	pruned := before - len(donor.clauses)
	if pruned < 1 {
		t.Fatalf("donor pruned %d clauses after split, want >= 1 (clause 8)", pruned)
	}

	// Recipient side: clause 8 (V10 ∨ ¬V13) is satisfied by assumption V10
	// and gets pruned there too.
	rec, err := NewFromSubproblem(f, sub, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := rec.Solve(Limits{})
	if r.Status != StatusSAT {
		t.Fatalf("recipient status %v", r.Status)
	}
	if r.Model.Value(9) != cnf.True {
		t.Fatal("recipient model violates its guiding assumption V10")
	}
	if rec.Stats().Simplified == 0 {
		t.Error("recipient pruned nothing despite satisfied clauses")
	}
}

func TestSplitAtLevel0Fails(t *testing.T) {
	s := New(gen.RandomKSAT(10, 20, 3, 1), DefaultOptions())
	if _, err := s.Split(0, 0); err != ErrNothingToSplit {
		t.Fatalf("got %v, want ErrNothingToSplit", err)
	}
}

func TestSplitOnDecidedProblemFails(t *testing.T) {
	f := cnf.NewFormula(1)
	f.Add(1)
	s := New(f, DefaultOptions())
	s.Solve(Limits{})
	if _, err := s.Split(0, 0); err == nil {
		t.Fatal("split of a decided problem accepted")
	}
}

// TestSplitPartitionsSearchSpace is the core soundness property of the
// Figure-2 transformation: for random formulas, the original instance is
// satisfiable iff the donor half or the recipient's half is.
func TestSplitPartitionsSearchSpace(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		f := gen.RandomKSAT(10, 42, 3, seed)
		want, _ := brute.Solve(f, 0)

		opts := DefaultOptions()
		donor := New(f, opts)
		donor.Solve(Limits{MaxConflicts: 2}) // run a little, then split
		if donor.Status() != StatusUnknown || donor.DecisionLevel() == 0 {
			// Solved before a split was possible; nothing to check here.
			continue
		}
		sub, err := donor.Split(10, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rDonor := donor.Solve(Limits{})
		rec, err := NewFromSubproblem(f, sub, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rRec := rec.Solve(Limits{})

		gotSAT := rDonor.Status == StatusSAT || rRec.Status == StatusSAT
		if gotSAT != (want == brute.SAT) {
			t.Fatalf("seed %d: split halves say SAT=%v, brute says %v (donor=%v rec=%v)",
				seed, gotSAT, want, rDonor.Status, rRec.Status)
		}
		// Any model from either half must satisfy the original formula.
		if rDonor.Status == StatusSAT {
			if err := f.Verify(rDonor.Model); err != nil {
				t.Fatalf("seed %d: donor model invalid: %v", seed, err)
			}
		}
		if rRec.Status == StatusSAT {
			if err := f.Verify(rRec.Model); err != nil {
				t.Fatalf("seed %d: recipient model invalid: %v", seed, err)
			}
		}
	}
}

// TestSplitHalvesAreDisjoint verifies the two halves disagree on the split
// variable, so no assignment is explored twice.
func TestSplitHalvesAreDisjoint(t *testing.T) {
	f := gen.Pigeonhole(8)
	donor := New(f, DefaultOptions())
	donor.Solve(Limits{MaxConflicts: 5})
	if donor.Status() != StatusUnknown || donor.DecisionLevel() == 0 {
		t.Skip("solved too fast to split")
	}
	sub, err := donor.Split(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	splitLit := sub.Assumptions[len(sub.Assumptions)-1]
	if donor.Value(splitLit.Var()) == cnf.Undef {
		t.Fatal("donor does not fix the split variable")
	}
	if donor.assigns.LitValue(splitLit) != cnf.False {
		t.Fatal("recipient's split literal is not the complement of the donor's")
	}
	if donor.LevelOf(splitLit.Var()) != 0 {
		t.Fatal("split variable not permanent on donor")
	}
}

func TestSplitForwardsShortLearnts(t *testing.T) {
	f := gen.Pigeonhole(8)
	donor := New(f, DefaultOptions())
	donor.Solve(Limits{MaxConflicts: 300})
	if donor.Status() != StatusUnknown || donor.DecisionLevel() == 0 {
		t.Skip("instance finished before split")
	}
	sub, err := donor.Split(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Learnts) > 7 {
		t.Fatalf("forwarded %d learnts, cap was 7", len(sub.Learnts))
	}
	for _, c := range sub.Learnts {
		if len(c) > 5 {
			t.Fatalf("forwarded clause %v exceeds max length 5", c)
		}
	}
}

func TestExportLearntsZeroLen(t *testing.T) {
	s := New(gen.Pigeonhole(7), DefaultOptions())
	s.Solve(Limits{MaxConflicts: 100})
	if got := s.ExportLearnts(0, 10); got != nil {
		t.Fatalf("maxLen 0 should export nothing, got %d", len(got))
	}
}

func TestNewFromSubproblemMismatch(t *testing.T) {
	f := gen.RandomKSAT(5, 10, 3, 1)
	sub := &Subproblem{NumVars: 99}
	if _, err := NewFromSubproblem(f, sub, DefaultOptions()); err == nil {
		t.Fatal("variable-count mismatch accepted")
	}
}

// TestRepeatedSplits drives a donor through several sequential splits and
// checks the union of all parts still covers the search space.
func TestRepeatedSplits(t *testing.T) {
	for seed := int64(50); seed < 62; seed++ {
		f := gen.RandomKSAT(12, 51, 3, seed)
		want, _ := brute.Solve(f, 0)

		var subs []*Subproblem
		donor := New(f, DefaultOptions())
		for k := 0; k < 3; k++ {
			donor.Solve(Limits{MaxConflicts: 2})
			if donor.Status() != StatusUnknown || donor.DecisionLevel() == 0 {
				break
			}
			sub, err := donor.Split(10, 0)
			if err != nil {
				t.Fatalf("seed %d split %d: %v", seed, k, err)
			}
			subs = append(subs, sub)
		}
		anySAT := donor.Solve(Limits{}).Status == StatusSAT
		for _, sub := range subs {
			rec, err := NewFromSubproblem(f, sub, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if rec.Solve(Limits{}).Status == StatusSAT {
				anySAT = true
			}
		}
		if anySAT != (want == brute.SAT) {
			t.Fatalf("seed %d: parts say SAT=%v, brute says %v", seed, anySAT, want)
		}
	}
}
