package solver

import (
	"sync"
	"testing"
	"time"

	"gridsat/internal/brute"
	"gridsat/internal/cnf"
	"gridsat/internal/gen"
)

// TestImportFourCases exercises the paper's §3.2 merge rules directly.
func TestImportFourCases(t *testing.T) {
	// Base: unit clauses fix V1=true, V2=false at level 0.
	f := cnf.NewFormula(6)
	f.Add(1).Add(-2).Add(3, 4, 5, 6) // keep something undecided
	s := New(f, DefaultOptions())
	if confl := s.propagate(); confl != CRefUndef { // flush the level-0 units
		t.Fatal("unexpected conflict in setup")
	}

	// Case 4: clause satisfied at level 0 → discarded.
	if err := s.ImportClause(cnf.NewClause(1, 3)); err != nil {
		t.Fatal(err)
	}
	// Case 2: two unknowns → added to the database.
	if err := s.ImportClause(cnf.NewClause(3, 4)); err != nil {
		t.Fatal(err)
	}
	// Case 1: one unknown, rest false → implication at level 0.
	if err := s.ImportClause(cnf.NewClause(2, 5)); err != nil {
		t.Fatal(err)
	}
	if s.DecisionLevel() != 0 {
		t.Fatalf("expected level 0, got %d", s.DecisionLevel())
	}
	learntsBefore := len(s.learnts)
	if !s.mergeImports() {
		t.Fatal("merge reported conflict")
	}
	if got := len(s.learnts) - learntsBefore; got != 1 {
		t.Fatalf("learned DB grew by %d, want exactly 1 (case 2 only)", got)
	}
	if s.assigns.LitValue(cnf.PosLit(4)) != cnf.True { // V5 implied by case 1
		t.Fatalf("case-1 implication missing: V5 = %v", s.assigns.LitValue(cnf.PosLit(4)))
	}
	if s.Stats().Imported != 3 {
		t.Fatalf("Imported = %d, want 3", s.Stats().Imported)
	}

	// Case 3: all-false clause → subproblem UNSAT.
	if err := s.ImportClause(cnf.NewClause(-1, 2)); err != nil {
		t.Fatal(err)
	}
	if s.mergeImports() {
		t.Fatal("all-false import did not report conflict")
	}
}

func TestImportOutOfRangeRejected(t *testing.T) {
	s := New(cnf.NewFormula(2), DefaultOptions())
	if err := s.ImportClause(cnf.NewClause(5)); err == nil {
		t.Fatal("out-of-range import accepted")
	}
	if err := s.ImportClauses([]cnf.Clause{cnf.NewClause(1), cnf.NewClause(9)}); err == nil {
		t.Fatal("out-of-range batch accepted")
	}
}

func TestImportTautologyDiscarded(t *testing.T) {
	f := cnf.NewFormula(3)
	f.Add(1, 2, 3)
	s := New(f, DefaultOptions())
	if err := s.ImportClause(cnf.NewClause(1, -1)); err != nil {
		t.Fatal(err)
	}
	before := len(s.learnts)
	if !s.mergeImports() {
		t.Fatal("tautology caused conflict")
	}
	if len(s.learnts) != before {
		t.Fatal("tautology added to database")
	}
	if s.Stats().Imported != 0 {
		t.Fatal("tautology counted as imported")
	}
}

// TestImportDuringSolveSpeedsConvergence feeds a solver the complement
// units that pin down the search; the solve must honor them after merge.
func TestImportHonoredInResult(t *testing.T) {
	f := gen.RandomKSAT(30, 100, 3, 11)
	ref := New(f, DefaultOptions())
	rRef := ref.Solve(Limits{})
	if rRef.Status != StatusSAT {
		t.Skip("instance not SAT; pick another seed")
	}
	// Import unit clauses forcing the reference model; solution must match.
	s := New(f, DefaultOptions())
	for v := 0; v < 5; v++ {
		var l cnf.Lit
		if rRef.Model.Value(cnf.Var(v)) == cnf.True {
			l = cnf.PosLit(cnf.Var(v))
		} else {
			l = cnf.NegLit(cnf.Var(v))
		}
		if err := s.ImportClause(cnf.Clause{l}); err != nil {
			t.Fatal(err)
		}
	}
	r := s.Solve(Limits{})
	if r.Status != StatusSAT {
		t.Fatalf("got %v", r.Status)
	}
	for v := 0; v < 5; v++ {
		if r.Model.Value(cnf.Var(v)) != rRef.Model.Value(cnf.Var(v)) {
			t.Fatalf("imported unit on var %d not honored", v+1)
		}
	}
}

// TestImportSoundness checks that importing clauses learned by a second
// solver on the same formula never changes the answer.
func TestImportSoundness(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		f := gen.RandomKSAT(10, 43, 3, seed)
		want, _ := brute.Solve(f, 0)

		// Harvest clauses from an exporting solver.
		var mu sync.Mutex
		var shared []cnf.Clause
		expOpts := DefaultOptions()
		expOpts.ShareMaxLen = 4
		expOpts.OnLearn = func(c cnf.Clause, _ int) {
			mu.Lock()
			shared = append(shared, c)
			mu.Unlock()
		}
		New(f, expOpts).Solve(Limits{})

		// Feed them to a fresh solver mid-flight.
		s := New(f, DefaultOptions())
		s.Solve(Limits{MaxConflicts: 2})
		if err := s.ImportClauses(shared); err != nil {
			t.Fatal(err)
		}
		r := s.Solve(Limits{})
		if (r.Status == StatusSAT) != (want == brute.SAT) {
			t.Fatalf("seed %d: with imports got %v, brute says %v", seed, r.Status, want)
		}
		if r.Status == StatusSAT {
			if err := f.Verify(r.Model); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

// TestImportMergeForcedRestart: a solver deep in search with a waiting
// import buffer must eventually restart to merge (ImportMergeConflicts).
func TestImportMergeForcedRestart(t *testing.T) {
	opts := DefaultOptions()
	opts.RestartBase = 0 // disable normal restarts
	opts.ImportMergeConflicts = 16
	f := gen.Pigeonhole(9)
	s := New(f, opts)
	s.Solve(Limits{MaxConflicts: 8}) // get into the search
	if err := s.ImportClause(cnf.NewClause(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	s.Solve(Limits{MaxConflicts: 200})
	if s.PendingImports() != 0 {
		t.Fatal("import buffer never merged despite forced-merge threshold")
	}
	if s.Stats().Imported != 1 {
		t.Fatalf("Imported = %d, want 1", s.Stats().Imported)
	}
}

func TestImportConcurrentWithSolve(t *testing.T) {
	f := gen.Pigeonhole(10)
	exp := New(f, func() Options {
		o := DefaultOptions()
		o.ShareMaxLen = 6
		return o
	}())
	var mu sync.Mutex
	var pool []cnf.Clause
	exp.opts.OnLearn = func(c cnf.Clause, _ int) {
		mu.Lock()
		pool = append(pool, c)
		mu.Unlock()
	}
	go exp.Solve(Limits{MaxConflicts: 3000})

	s := New(f, DefaultOptions())
	done := make(chan Result, 1)
	go func() { done <- s.Solve(Limits{}) }()
	deadline := time.After(20 * time.Second)
	for i := 0; i < 50; i++ {
		mu.Lock()
		cp := append([]cnf.Clause(nil), pool...)
		mu.Unlock()
		if err := s.ImportClauses(cp); err != nil {
			t.Fatal(err)
		}
		select {
		case r := <-done:
			if r.Status != StatusUNSAT {
				t.Fatalf("got %v", r.Status)
			}
			exp.Stop()
			return
		case <-deadline:
			t.Fatal("solve with concurrent imports did not finish")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	r := <-done
	if r.Status != StatusUNSAT {
		t.Fatalf("got %v", r.Status)
	}
	exp.Stop()
}
