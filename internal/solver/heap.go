package solver

import "gridsat/internal/cnf"

// litHeap is a binary max-heap over literals keyed by VSIDS activity, with
// a position index for O(log n) increase-key. Chaff picks the unassigned
// literal with the highest counter; assigned literals are filtered lazily
// by the caller and re-pushed on backtrack.
type litHeap struct {
	act  *[]float64
	data []cnf.Lit
	pos  []int32 // position of each literal in data, -1 if absent
}

func newLitHeap(act *[]float64) litHeap {
	n := len(*act)
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	return litHeap{act: act, pos: pos}
}

func (h *litHeap) less(i, j int) bool {
	a := *h.act
	ai, aj := a[h.data[i]], a[h.data[j]]
	if ai != aj {
		return ai < aj
	}
	// Deterministic tie-break: lower literal wins (max-heap keeps it lower).
	return h.data[i] > h.data[j]
}

func (h *litHeap) swap(i, j int) {
	h.data[i], h.data[j] = h.data[j], h.data[i]
	h.pos[h.data[i]] = int32(i)
	h.pos[h.data[j]] = int32(j)
}

func (h *litHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(parent, i) {
			return
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *litHeap) down(i int) {
	n := len(h.data)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.less(largest, l) {
			largest = l
		}
		if r < n && h.less(largest, r) {
			largest = r
		}
		if largest == i {
			return
		}
		h.swap(i, largest)
		i = largest
	}
}

// push inserts l if absent; no-op when already present.
func (h *litHeap) push(l cnf.Lit) {
	if h.pos[l] >= 0 {
		return
	}
	h.data = append(h.data, l)
	h.pos[l] = int32(len(h.data) - 1)
	h.up(len(h.data) - 1)
}

// update restores heap order after l's activity increased.
func (h *litHeap) update(l cnf.Lit) {
	if p := h.pos[l]; p >= 0 {
		h.up(int(p))
	}
}

// popMax removes and returns the highest-activity literal.
func (h *litHeap) popMax() (cnf.Lit, bool) {
	if len(h.data) == 0 {
		return cnf.NoLit, false
	}
	top := h.data[0]
	last := len(h.data) - 1
	h.swap(0, last)
	h.data = h.data[:last]
	h.pos[top] = -1
	if last > 0 {
		h.down(0)
	}
	return top, true
}

// size returns the number of literals currently in the heap.
func (h *litHeap) size() int { return len(h.data) }
