package solver

import (
	"errors"

	"gridsat/internal/cnf"
)

// Subproblem describes one half of a split search space — the message a
// donor client sends to a recipient (paper Figure 2 and Figure 3's message
// (3)). The recipient reconstructs a solver from the shared base formula,
// the assumption literals, and whatever learned clauses the donor chose to
// forward.
type Subproblem struct {
	// NumVars is the variable count of the base formula.
	NumVars int
	// Assumptions are the level-0 literals defining the subspace: the
	// donor's level-0 assignments plus the complement of its first
	// decision.
	Assumptions []cnf.Lit
	// Learnts are donor learned clauses forwarded to seed the recipient's
	// database (filtered by length, like shared clauses).
	Learnts []cnf.Clause
	// Depth is the guiding-path depth of this subproblem: the number of
	// split decisions between it and the root problem. Both halves of a
	// depth-d split sit at depth d+1, so refuting a subproblem at depth d
	// accounts for exactly 2^-d of the root search space — the unit of the
	// cluster progress estimate.
	Depth int
}

// ErrNothingToSplit is returned by Split when the solver has no decision
// to fork on (decision level 0).
var ErrNothingToSplit = errors.New("solver: no decision level to split")

// Split implements the paper's Figure-2 stack transformation. The donor
// backtracks to its first decision level, promotes that level into the
// permanent level-0 assignments (committing to its first decision), and
// returns the complementary Subproblem: level-0 assignments plus the
// complement of the first decision. Donor and recipient then cover
// disjoint halves of the original search space.
//
// learntMaxLen bounds the learned clauses copied into the subproblem
// (0 forwards none); learntMaxCount caps how many are forwarded.
func (s *Solver) Split(learntMaxLen, learntMaxCount int) (*Subproblem, error) {
	if s.status != StatusUnknown {
		return nil, errors.New("solver: cannot split a decided problem")
	}
	if s.DecisionLevel() == 0 {
		return nil, ErrNothingToSplit
	}
	firstDecision := s.trail[s.trailLim[0]]

	// Recipient: level-0 assignments + complement of the first decision.
	level0 := s.trail[:s.trailLim[0]]
	sub := &Subproblem{NumVars: s.nVars}
	sub.Assumptions = make([]cnf.Lit, 0, len(level0)+1)
	sub.Assumptions = append(sub.Assumptions, level0...)
	sub.Assumptions = append(sub.Assumptions, firstDecision.Not())
	sub.Learnts = s.ExportLearnts(learntMaxLen, learntMaxCount)
	// Both halves of the split descend one level in the guiding-path tree:
	// the recipient takes the complement branch, and the donor's promoted
	// first decision is a new path commitment of its own.
	sub.Depth = s.pathDepth + 1
	s.pathDepth++

	// Donor: promote decision level 1 into level 0 and shift every higher
	// level down by one, exactly as Figure 2 shows — the donor keeps its
	// current search position; only the ownership of the first decision
	// changes. The promoted assignments are a commitment to this half of
	// the search space — logically new assumptions — so they are tainted
	// and clauses that later depend on them stay local to this client.
	end := len(s.trail)
	if len(s.trailLim) > 1 {
		end = s.trailLim[1]
	}
	for i := s.trailLim[0]; i < end; i++ {
		v := s.trail[i].Var()
		s.level[v] = 0
		s.taint(v)
	}
	for i := end; i < len(s.trail); i++ {
		s.level[s.trail[i].Var()]--
	}
	s.trailLim = s.trailLim[1:]
	s.lastSimplifyTrail = -1 // level 0 grew: force the next simplify pass
	s.stats.Splits++
	if s.opts.Instrument != nil {
		s.opts.Instrument(Event{Kind: EvSplit, Lit: firstDecision, Level: s.DecisionLevel()})
	}
	// The promoted assignments may now satisfy clauses permanently; the
	// next level-0 pass prunes them (Figure 2's clause removal).
	return sub, nil
}

// ExportLearnts returns copies of live learned clauses with length at most
// maxLen (0 disables), up to maxCount (0 means no cap), best first — the
// donor half of the paper's clause-sharing policy during splits. Candidates
// are ranked by LBD (glue) recorded at learn time and by length within the
// same glue, so a low-glue long clause beats a high-glue short one; when a
// count cap applies, the clauses dropped are the worst-ranked ones.
func (s *Solver) ExportLearnts(maxLen, maxCount int) []cnf.Clause {
	if maxLen <= 0 {
		return nil
	}
	var refs []ClauseRef
	for _, r := range s.learnts {
		if s.ca.Deleted(r) || s.ca.Size(r) > maxLen {
			continue
		}
		refs = append(refs, r)
	}
	s.sortRefsByQuality(refs)
	if maxCount > 0 && len(refs) > maxCount {
		refs = refs[:maxCount]
	}
	out := make([]cnf.Clause, 0, len(refs))
	for _, r := range refs {
		out = append(out, s.clauseAt(r))
	}
	return out
}

// sortRefsByQuality orders clause refs by (LBD, length) ascending — the
// export ranking. An LBD of 0 means "never recorded" and ranks last.
// Insertion sort: export lists are short and mostly ordered.
func (s *Solver) sortRefsByQuality(refs []ClauseRef) {
	key := func(r ClauseRef) uint64 {
		lbd := s.ca.LBD(r)
		if lbd == 0 {
			lbd = maxLBD + 1
		}
		return uint64(lbd)<<32 | uint64(s.ca.Size(r))
	}
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && key(refs[j]) < key(refs[j-1]); j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
}

// NewFromSubproblem reconstructs a recipient solver: the base formula plus
// the subproblem's assumptions (installed at level 0) and forwarded learned
// clauses. The returned solver may already be decided (StatusUNSAT) when
// the assumptions conflict with the formula.
func NewFromSubproblem(base *cnf.Formula, sub *Subproblem, opts Options) (*Solver, error) {
	if base.NumVars != sub.NumVars {
		return nil, errors.New("solver: subproblem variable count mismatch")
	}
	s := New(base, opts)
	s.pathDepth = sub.Depth
	if s.status != StatusUnknown {
		return s, nil
	}
	if err := s.Assume(sub.Assumptions...); err != nil {
		return nil, err
	}
	if err := s.ImportClausesLocal(sub.Learnts); err != nil {
		return nil, err
	}
	return s, nil
}
