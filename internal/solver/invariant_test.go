package solver

import (
	"testing"
	"testing/quick"

	"gridsat/internal/cnf"
	"gridsat/internal/gen"
)

// liveClauses returns every non-deleted clause reference (problem +
// learned).
func liveClauses(s *Solver) []ClauseRef {
	var out []ClauseRef
	for _, list := range [][]ClauseRef{s.clauses, s.learnts} {
		for _, r := range list {
			if !s.ca.Deleted(r) {
				out = append(out, r)
			}
		}
	}
	return out
}

// checkInvariants validates the engine's core data-structure invariants at
// a quiescent point (between Solve calls):
//
//  1. trail assignments and the assignment array agree;
//  2. decision-level boundaries are monotone and levels consistent;
//  3. no live clause is falsified without the solver having noticed
//     (qhead caught up means no all-false clause may exist unless the
//     instance is already decided);
//  4. every literal watched by a live clause indexes a sane watcher list;
//  5. the watcher invariant: in a live clause that is not satisfied, the
//     two watched literals are non-false (a false watched literal is only
//     legal when some other literal of the clause is true — the blocker
//     case) once propagation has caught up;
//  6. the arena's live-byte counter equals the byte count obtained by
//     walking every live clause — exact accounting, no estimation.
func checkInvariants(t *testing.T, s *Solver) {
	t.Helper()
	// (1) + (2)
	seenVars := map[cnf.Var]bool{}
	for i, l := range s.trail {
		v := l.Var()
		if seenVars[v] {
			t.Fatalf("trail[%d]: variable %d assigned twice", i, v.DIMACS())
		}
		seenVars[v] = true
		if s.assigns.LitValue(l) != cnf.True {
			t.Fatalf("trail[%d]: literal %v not true in assigns", i, l)
		}
		lvl := 0
		for _, lim := range s.trailLim {
			if i >= lim {
				lvl++
			}
		}
		if int(s.level[v]) != lvl {
			t.Fatalf("trail[%d]: stored level %d, positional level %d", i, s.level[v], lvl)
		}
	}
	for v := 0; v < s.nVars; v++ {
		if s.assigns[v] != cnf.Undef && !seenVars[cnf.Var(v)] {
			t.Fatalf("variable %d assigned but absent from trail", v+1)
		}
	}
	for i := 1; i < len(s.trailLim); i++ {
		if s.trailLim[i-1] > s.trailLim[i] {
			t.Fatalf("trailLim not monotone: %v", s.trailLim)
		}
	}
	// (3)
	if s.qhead == len(s.trail) && s.status == StatusUnknown {
		for _, r := range liveClauses(s) {
			falsified := true
			for i, n := 0, s.ca.Size(r); i < n; i++ {
				if s.assigns.LitValue(s.ca.Lit(r, i)) != cnf.False {
					falsified = false
					break
				}
			}
			if falsified {
				t.Fatalf("undetected falsified clause %v", s.clauseAt(r))
			}
		}
	}
	// (4) every live clause's two watch positions appear in watch lists.
	inList := func(l cnf.Lit, r ClauseRef) bool {
		for _, w := range s.watches[l.Not()] {
			if w.ref == r {
				return true
			}
		}
		return false
	}
	for _, r := range liveClauses(s) {
		if s.ca.Size(r) < 2 {
			continue
		}
		if !inList(s.ca.Lit(r, 0), r) || !inList(s.ca.Lit(r, 1), r) {
			t.Fatalf("clause %v lost a watcher", s.clauseAt(r))
		}
	}
	// (5)
	checkWatcherInvariant(t, s)
	// (6)
	checkExactAccounting(t, s)
}

// checkWatcherInvariant asserts the two-watched-literal discipline: once
// propagation has caught up, a live unsatisfied clause must be watched by
// two non-false literals. A false watched literal is legal only when the
// clause contains a true literal (the satisfied/blocker case).
func checkWatcherInvariant(t *testing.T, s *Solver) {
	t.Helper()
	if s.qhead != len(s.trail) || s.status != StatusUnknown {
		return
	}
	for _, r := range liveClauses(s) {
		n := s.ca.Size(r)
		if n < 2 {
			continue
		}
		satisfied := false
		for i := 0; i < n; i++ {
			if s.assigns.LitValue(s.ca.Lit(r, i)) == cnf.True {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		for j := 0; j < 2; j++ {
			if s.assigns.LitValue(s.ca.Lit(r, j)) == cnf.False {
				t.Fatalf("unsatisfied clause %v watched by false literal %v",
					s.clauseAt(r), s.ca.Lit(r, j))
			}
		}
	}
}

// checkExactAccounting recomputes the arena's live byte count from the
// clause lists and compares it with the maintained counter and with
// MemoryBytes — the exactness guarantee the scheduler relies on.
func checkExactAccounting(t *testing.T, s *Solver) {
	t.Helper()
	var words int64
	for _, r := range liveClauses(s) {
		words += int64(hdrWords + s.ca.Size(r))
	}
	if got := s.ca.LiveBytes(); got != words*4 {
		t.Fatalf("arena live bytes %d, walking the clause lists gives %d", got, words*4)
	}
	if got, want := s.MemoryBytes(), s.ArenaBytes()+int64(s.nVars)*40; got != want {
		t.Fatalf("MemoryBytes %d, arena+overhead %d", got, want)
	}
}

// TestInvariantsAcrossRandomRuns pauses random solves at random points and
// validates the structural invariants each time.
func TestInvariantsAcrossRandomRuns(t *testing.T) {
	prop := func(seedRaw uint16, budgetRaw uint8) bool {
		seed := int64(seedRaw)
		f := gen.RandomKSAT(25+int(seed%20), int(4.26*float64(25+seed%20)), 3, seed)
		s := New(f, DefaultOptions())
		for round := 0; round < 4; round++ {
			s.Solve(Limits{MaxConflicts: 1 + int64(budgetRaw)%64})
			checkInvariants(t, s)
			if s.Status() != StatusUnknown {
				break
			}
		}
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestInvariantsSurviveSplitAndImport validates invariants through the
// distributed operations: splits, local imports and shared imports.
func TestInvariantsSurviveSplitAndImport(t *testing.T) {
	f := gen.Pigeonhole(8)
	s := New(f, DefaultOptions())
	for round := 0; round < 6; round++ {
		s.Solve(Limits{MaxConflicts: 60})
		checkInvariants(t, s)
		if s.Status() != StatusUnknown {
			break
		}
		if s.DecisionLevel() > 0 && round%2 == 0 {
			if _, err := s.Split(10, 50); err != nil {
				t.Fatal(err)
			}
			checkInvariants(t, s)
		}
		if err := s.ImportClause(cnf.NewClause(1, 2, 3)); err != nil {
			t.Fatal(err)
		}
		if err := s.ImportClausesLocal([]cnf.Clause{cnf.NewClause(-4, 5)}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestInvariantsAfterGCAndImports forces arena garbage collections at
// quiescent points — after learned-clause shedding and after import
// merges — and checks the full invariant battery (including the watcher
// invariant) survives every compaction.
func TestInvariantsAfterGCAndImports(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		f := gen.RandomKSAT(30, 128, 3, seed)
		s := New(f, DefaultOptions())
		for round := 0; round < 5; round++ {
			s.Solve(Limits{MaxConflicts: 50})
			if s.Status() != StatusUnknown {
				break
			}
			// Shed half the learned DB, then compact unconditionally.
			s.ShedMemory()
			checkInvariants(t, s)
			// Queue imports; the next slice merges them at level 0.
			if err := s.ImportClauses([]cnf.Clause{
				cnf.NewClause(1, 2, 3), cnf.NewClause(-2, 4, 7),
			}); err != nil {
				t.Fatal(err)
			}
			s.Solve(Limits{MaxConflicts: 1})
			if s.Status() != StatusUnknown {
				break
			}
			s.garbageCollect()
			checkInvariants(t, s)
		}
	}
}

// TestInvariantsWithMinimization repeats the random-run check with
// clause minimization enabled.
func TestInvariantsWithMinimization(t *testing.T) {
	opts := DefaultOptions()
	opts.MinimizeLearnts = true
	for seed := int64(0); seed < 15; seed++ {
		f := gen.RandomKSAT(30, 128, 3, seed)
		s := New(f, opts)
		for round := 0; round < 3; round++ {
			s.Solve(Limits{MaxConflicts: 40})
			checkInvariants(t, s)
			if s.Status() != StatusUnknown {
				break
			}
		}
	}
}
