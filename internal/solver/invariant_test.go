package solver

import (
	"testing"
	"testing/quick"

	"gridsat/internal/cnf"
	"gridsat/internal/gen"
)

// checkInvariants validates the engine's core data-structure invariants at
// a quiescent point (between Solve calls):
//
//  1. trail assignments and the assignment array agree;
//  2. decision-level boundaries are monotone and levels consistent;
//  3. no live clause is falsified without the solver having noticed
//     (qhead caught up means no all-false clause may exist unless the
//     instance is already decided);
//  4. every literal watched by a live clause indexes a sane watcher list.
func checkInvariants(t *testing.T, s *Solver) {
	t.Helper()
	// (1) + (2)
	seenVars := map[cnf.Var]bool{}
	for i, l := range s.trail {
		v := l.Var()
		if seenVars[v] {
			t.Fatalf("trail[%d]: variable %d assigned twice", i, v.DIMACS())
		}
		seenVars[v] = true
		if s.assigns.LitValue(l) != cnf.True {
			t.Fatalf("trail[%d]: literal %v not true in assigns", i, l)
		}
		lvl := 0
		for _, lim := range s.trailLim {
			if i >= lim {
				lvl++
			}
		}
		if int(s.level[v]) != lvl {
			t.Fatalf("trail[%d]: stored level %d, positional level %d", i, s.level[v], lvl)
		}
	}
	for v := 0; v < s.nVars; v++ {
		if s.assigns[v] != cnf.Undef && !seenVars[cnf.Var(v)] {
			t.Fatalf("variable %d assigned but absent from trail", v+1)
		}
	}
	for i := 1; i < len(s.trailLim); i++ {
		if s.trailLim[i-1] > s.trailLim[i] {
			t.Fatalf("trailLim not monotone: %v", s.trailLim)
		}
	}
	// (3)
	if s.qhead == len(s.trail) && s.status == StatusUnknown {
		for _, c := range append(append([]*clause{}, s.clauses...), s.learnts...) {
			if c.deleted {
				continue
			}
			falsified := true
			for _, l := range c.lits {
				if s.assigns.LitValue(l) != cnf.False {
					falsified = false
					break
				}
			}
			if falsified {
				t.Fatalf("undetected falsified clause %v", cnf.Clause(c.lits))
			}
		}
	}
	// (4) every live clause's two watch positions appear in watch lists.
	inList := func(l cnf.Lit, c *clause) bool {
		for _, w := range s.watches[l.Not()] {
			if w.c == c {
				return true
			}
		}
		return false
	}
	for _, c := range append(append([]*clause{}, s.clauses...), s.learnts...) {
		if c.deleted || len(c.lits) < 2 {
			continue
		}
		if !inList(c.lits[0], c) || !inList(c.lits[1], c) {
			t.Fatalf("clause %v lost a watcher", cnf.Clause(c.lits))
		}
	}
}

// TestInvariantsAcrossRandomRuns pauses random solves at random points and
// validates the structural invariants each time.
func TestInvariantsAcrossRandomRuns(t *testing.T) {
	prop := func(seedRaw uint16, budgetRaw uint8) bool {
		seed := int64(seedRaw)
		f := gen.RandomKSAT(25+int(seed%20), int(4.26*float64(25+seed%20)), 3, seed)
		s := New(f, DefaultOptions())
		for round := 0; round < 4; round++ {
			s.Solve(Limits{MaxConflicts: 1 + int64(budgetRaw)%64})
			checkInvariants(t, s)
			if s.Status() != StatusUnknown {
				break
			}
		}
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestInvariantsSurviveSplitAndImport validates invariants through the
// distributed operations: splits, local imports and shared imports.
func TestInvariantsSurviveSplitAndImport(t *testing.T) {
	f := gen.Pigeonhole(8)
	s := New(f, DefaultOptions())
	for round := 0; round < 6; round++ {
		s.Solve(Limits{MaxConflicts: 60})
		checkInvariants(t, s)
		if s.Status() != StatusUnknown {
			break
		}
		if s.DecisionLevel() > 0 && round%2 == 0 {
			if _, err := s.Split(10, 50); err != nil {
				t.Fatal(err)
			}
			checkInvariants(t, s)
		}
		if err := s.ImportClause(cnf.NewClause(1, 2, 3)); err != nil {
			t.Fatal(err)
		}
		if err := s.ImportClausesLocal([]cnf.Clause{cnf.NewClause(-4, 5)}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestInvariantsWithMinimization repeats the random-run check with
// clause minimization enabled.
func TestInvariantsWithMinimization(t *testing.T) {
	opts := DefaultOptions()
	opts.MinimizeLearnts = true
	for seed := int64(0); seed < 15; seed++ {
		f := gen.RandomKSAT(30, 128, 3, seed)
		s := New(f, opts)
		for round := 0; round < 3; round++ {
			s.Solve(Limits{MaxConflicts: 40})
			checkInvariants(t, s)
			if s.Status() != StatusUnknown {
				break
			}
		}
	}
}
