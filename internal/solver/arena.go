package solver

import (
	"math"
	"sync/atomic"

	"gridsat/internal/cnf"
)

// This file implements the clause arena: MiniSat-style contiguous clause
// storage replacing the original pointer-per-clause representation. All
// clauses — problem and learned — live in one []uint32 slab and are
// addressed by 32-bit ClauseRefs (word offsets). The layout keeps BCP
// cache-friendly (a clause's header and literals are adjacent), makes the
// database footprint exactly countable (the live-word counter IS the
// clause-database size, no estimation), and enables a compacting garbage
// collector that reclaims the space of deleted clauses and stripped
// literals in one pass.
//
// Clause layout, in 32-bit words:
//
//	[ header ][ activity ][ lit0 ][ lit1 ] ... [ litN-1 ]
//
// header = lbd<<lbdShift | size<<flagBits | flags. lit words hold cnf.Lit
// values verbatim
// (cnf.Lit is a uint32 encoding). The activity word is the float32 bits of
// the clause's VSIDS-era activity for learned clauses (0 for problem
// clauses); during garbage collection it is reused as the forwarding
// address of a relocated clause.

// ClauseRef addresses a clause in an Arena: the word offset of its header.
type ClauseRef uint32

// CRefUndef is the nil ClauseRef ("no clause", e.g. a decision's reason).
const CRefUndef = ClauseRef(^uint32(0))

const (
	flagLearnt  = 1 << 0 // clause was learned (or imported into the learnt DB)
	flagLocal   = 1 << 1 // valid only under this solver's guiding-path assumptions
	flagDeleted = 1 << 2 // lazily detached; space reclaimed by the next GC
	flagReloced = 1 << 3 // GC-internal: clause moved, activity word holds the forward ref
	// flagImported marks a clause merged from a peer (shared clause or
	// split-forwarded learnt) rather than derived locally — the origin bit
	// behind the import-usefulness telemetry.
	flagImported = 1 << 4
	// flagImportUsed marks an imported clause that has participated in at
	// least one BCP implication or conflict resolution, so first use is
	// counted exactly once per clause.
	flagImportUsed = 1 << 5
	flagBits       = 6
	hdrWords       = 2 // header word + activity word

	// The header's top lbdBits carry the clause's LBD (literal blocks
	// distance, "glue"): the number of distinct decision levels among its
	// literals at learn time, saturated at maxLBD. 0 means "not recorded"
	// (problem clauses, imports of unknown provenance). The size field
	// occupies the sizeBits between the flags and the LBD.
	lbdBits  = 6
	lbdShift = 32 - lbdBits
	maxLBD   = 1<<lbdBits - 1
	sizeBits = lbdShift - flagBits
	sizeMask = 1<<sizeBits - 1

	// maxClauseSize is the largest literal count the header can encode. It
	// matches the wire codec's per-clause length limit, so any clause that
	// fits a frame fits the header.
	maxClauseSize = sizeMask
)

// Arena is a contiguous clause store. It is owned by a single solver
// goroutine; only LiveBytes/WastedBytes are safe to call concurrently.
type Arena struct {
	data []uint32
	// wasted counts dead words (deleted clauses + stripped literals)
	// awaiting compaction; len(data) - wasted is the live word count.
	wasted int64
	// live mirrors the live word count atomically so concurrent memory
	// accessors (heartbeats, budget checks) read an exact figure without
	// touching the slab.
	live atomic.Int64
}

// NewArena returns an arena with capacity for about wordsHint words.
func NewArena(wordsHint int) *Arena {
	if wordsHint < 0 {
		wordsHint = 0
	}
	return &Arena{data: make([]uint32, 0, wordsHint)}
}

// Alloc stores a clause and returns its reference. The literal slice is
// copied; act is recorded for learned clauses (see Act).
func (a *Arena) Alloc(lits []cnf.Lit, learnt, local bool, act float32) ClauseRef {
	n := len(lits)
	if n > maxClauseSize {
		panic("solver: clause too large for arena header")
	}
	if len(a.data)+hdrWords+n > int(^uint32(0))-1 {
		panic("solver: arena exceeds 32-bit addressing")
	}
	h := uint32(n) << flagBits
	if learnt {
		h |= flagLearnt
	}
	if local {
		h |= flagLocal
	}
	r := ClauseRef(len(a.data))
	a.data = append(a.data, h, math.Float32bits(act))
	for _, l := range lits {
		a.data = append(a.data, uint32(l))
	}
	a.live.Add(int64(hdrWords + n))
	return r
}

// Size returns the clause's literal count.
func (a *Arena) Size(r ClauseRef) int { return int(a.data[r] >> flagBits & sizeMask) }

// LBD returns the clause's recorded literal-blocks distance (glue); 0 means
// the LBD was never recorded.
func (a *Arena) LBD(r ClauseRef) int { return int(a.data[r] >> lbdShift) }

// SetLBD records the clause's LBD, saturating at maxLBD. Lower is better;
// glue-2 clauses connect exactly two decision levels and are the classic
// "glue clauses" worth sharing first.
func (a *Arena) SetLBD(r ClauseRef, lbd int) {
	if lbd < 0 {
		lbd = 0
	}
	if lbd > maxLBD {
		lbd = maxLBD
	}
	a.data[r] = uint32(lbd)<<lbdShift | a.data[r]&(1<<lbdShift-1)
}

// Lit returns the clause's i-th literal.
func (a *Arena) Lit(r ClauseRef, i int) cnf.Lit {
	return cnf.Lit(a.data[int(r)+hdrWords+i])
}

// SetLit overwrites the clause's i-th literal.
func (a *Arena) SetLit(r ClauseRef, i int, l cnf.Lit) {
	a.data[int(r)+hdrWords+i] = uint32(l)
}

// Learnt reports whether the clause is in the learned database.
func (a *Arena) Learnt(r ClauseRef) bool { return a.data[r]&flagLearnt != 0 }

// Local reports whether the clause is valid only under this solver's
// guiding-path assumptions (paper §3.2).
func (a *Arena) Local(r ClauseRef) bool { return a.data[r]&flagLocal != 0 }

// SetLocal marks the clause assumption-dependent.
func (a *Arena) SetLocal(r ClauseRef) { a.data[r] |= flagLocal }

// Imported reports whether the clause was merged from a peer (shared
// clause or split-forwarded learnt) rather than derived locally.
func (a *Arena) Imported(r ClauseRef) bool { return a.data[r]&flagImported != 0 }

// SetImported tags the clause as peer-origin; set once at merge time.
func (a *Arena) SetImported(r ClauseRef) { a.data[r] |= flagImported }

// ImportUsed reports whether an imported clause has already been counted
// as used (first BCP implication or conflict resolution).
func (a *Arena) ImportUsed(r ClauseRef) bool { return a.data[r]&flagImportUsed != 0 }

// markImportUsed sets the used bit; the caller checks ImportUsed first so
// first use is counted exactly once.
func (a *Arena) markImportUsed(r ClauseRef) { a.data[r] |= flagImportUsed }

// Deleted reports whether the clause has been freed (watchers drop it
// lazily; the space is reclaimed by the next GC).
func (a *Arena) Deleted(r ClauseRef) bool { return a.data[r]&flagDeleted != 0 }

// Act returns the clause's recorded activity.
func (a *Arena) Act(r ClauseRef) float32 {
	return math.Float32frombits(a.data[r+1])
}

// Free marks the clause deleted and accounts its words as reclaimable.
func (a *Arena) Free(r ClauseRef) {
	if a.data[r]&flagDeleted != 0 {
		return
	}
	a.data[r] |= flagDeleted
	n := int64(hdrWords + a.Size(r))
	a.wasted += n
	a.live.Add(-n)
}

// shrinkTo truncates the clause to its first n literals (level-0
// strengthening); the dropped tail words become reclaimable.
func (a *Arena) shrinkTo(r ClauseRef, n int) {
	old := a.Size(r)
	if n >= old {
		return
	}
	// Preserve the flags and the LBD field; only the size changes. A
	// strengthened clause's glue can only improve, so cap it at the new size.
	a.data[r] = a.data[r]&^uint32(sizeMask<<flagBits) | uint32(n)<<flagBits
	if lbd := a.LBD(r); lbd > n {
		a.SetLBD(r, n)
	}
	a.wasted += int64(old - n)
	a.live.Add(-int64(old - n))
}

// LiveBytes returns the exact byte count of live clause storage (headers
// plus literals of every non-deleted clause). Safe to call concurrently.
func (a *Arena) LiveBytes() int64 { return a.live.Load() * 4 }

// WastedBytes returns the bytes held by deleted clauses and stripped
// literals, reclaimable by the next garbage collection.
func (a *Arena) WastedBytes() int64 { return a.wasted * 4 }

// relocate moves the clause at r from the old slab into a's (new) slab,
// returning its new reference. Repeated calls for the same clause return
// the same forward reference, so shared refs (both watchers, a locked
// reason, the clause list) stay consistent.
func (a *Arena) relocate(old []uint32, r ClauseRef) ClauseRef {
	h := old[r]
	if h&flagReloced != 0 {
		return ClauseRef(old[r+1])
	}
	n := int(h >> flagBits & sizeMask)
	nr := ClauseRef(len(a.data))
	a.data = append(a.data, old[r:int(r)+hdrWords+n]...)
	old[r] = h | flagReloced
	old[r+1] = uint32(nr)
	return nr
}

// garbageCollect compacts the arena: every live clause is copied into a
// fresh slab and every reference the solver holds (watch lists, reasons,
// clause lists) is rewritten. Deleted clauses and stripped-literal tails
// are dropped, so the slab length equals the live word count afterwards.
// Returns the exact number of bytes reclaimed.
func (s *Solver) garbageCollect() int64 {
	reclaimed := s.ca.WastedBytes()
	if reclaimed == 0 {
		return 0
	}
	oldData := s.ca.data
	// Compact into a scratch arena, then adopt its slab. The Arena struct
	// itself (and its atomic live counter, which compaction leaves
	// unchanged) stays in place so concurrent LiveBytes readers never see
	// a torn pointer.
	to := NewArena(int(s.ca.live.Load()))
	// Watch lists: drop watchers of deleted clauses, forward the rest.
	for li := range s.watches {
		ws := s.watches[li]
		kept := ws[:0]
		for _, w := range ws {
			if oldData[w.ref]&flagDeleted != 0 {
				continue
			}
			w.ref = to.relocate(oldData, w.ref)
			kept = append(kept, w)
		}
		s.watches[li] = kept
	}
	// Reasons: every assigned variable is on the trail; a reason pointing
	// at a deleted clause (a level-0 antecedent pruned by simplify) is
	// cleared — it is never dereferenced for level-0 variables, and must
	// not dangle into the old slab.
	for _, l := range s.trail {
		v := l.Var()
		if r := s.reason[v]; r != CRefUndef {
			if oldData[r]&flagDeleted != 0 {
				s.reason[v] = CRefUndef
			} else {
				s.reason[v] = to.relocate(oldData, r)
			}
		}
	}
	s.clauses = relocList(to, oldData, s.clauses)
	s.learnts = relocList(to, oldData, s.learnts)
	s.ca.data = to.data
	s.ca.wasted = 0
	s.stats.ReclaimedBytes += reclaimed
	if c := s.opts.Counters; c != nil {
		c.Reclaimed.Add(reclaimed)
		c.ArenaBytes.Set(s.ca.LiveBytes())
	}
	return reclaimed
}

// relocList forwards a clause list into the new arena, dropping deleted
// entries.
func relocList(to *Arena, oldData []uint32, list []ClauseRef) []ClauseRef {
	kept := list[:0]
	for _, r := range list {
		if oldData[r]&flagDeleted != 0 {
			continue
		}
		kept = append(kept, to.relocate(oldData, r))
	}
	return kept
}

// maybeGC compacts when at least a fifth of the slab is reclaimable
// (MiniSat's garbage_frac heuristic).
func (s *Solver) maybeGC() {
	if s.ca.wasted*5 >= int64(len(s.ca.data)) && s.ca.wasted > 0 {
		s.garbageCollect()
	}
}

// ArenaBytes returns the exact live clause-database size in bytes. Safe to
// call concurrently with Solve.
func (s *Solver) ArenaBytes() int64 { return s.ca.LiveBytes() }

// clauseAt copies the clause at r out of the arena.
func (s *Solver) clauseAt(r ClauseRef) cnf.Clause {
	n := s.ca.Size(r)
	out := make(cnf.Clause, n)
	for i := 0; i < n; i++ {
		out[i] = s.ca.Lit(r, i)
	}
	return out
}
