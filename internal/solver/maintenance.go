package solver

import (
	"sort"
	"sync/atomic"

	"gridsat/internal/cnf"
)

// simplify removes clauses satisfied by level-0 assignments and strips
// level-0-false literals from the rest — the paper's §3.1 pruning of
// "inconsequential" clauses, which it also backports to the sequential
// baseline. Must be called at decision level 0 with propagation complete.
func (s *Solver) simplify() {
	if s.DecisionLevel() != 0 || s.qhead != len(s.trail) {
		return
	}
	if len(s.trail) == s.lastSimplifyTrail {
		return // nothing new at level 0 since the last pass
	}
	s.lastSimplifyTrail = len(s.trail)
	s.clauses = s.simplifyList(s.clauses)
	s.learnts = s.simplifyList(s.learnts)
}

func (s *Solver) simplifyList(list []*clause) []*clause {
	kept := list[:0]
	for _, c := range list {
		if c.deleted {
			continue
		}
		if s.satisfiedAtLevel0(c) {
			s.detach(c)
			s.stats.Simplified++
			continue
		}
		// Strip false literals from non-watched positions. After full
		// level-0 propagation the two watched literals of an unsatisfied
		// clause are never false, so watches stay valid.
		w := 2
		for r := 2; r < len(c.lits); r++ {
			if s.assigns.LitValue(c.lits[r]) == cnf.False {
				if s.tainted[c.lits[r].Var()] {
					// Strengthening by an assumption-dependent assignment
					// restricts the clause to this guiding path.
					c.local = true
				}
				atomic.AddInt64(&s.litsStored, -1)
				continue
			}
			c.lits[w] = c.lits[r]
			w++
		}
		c.lits = c.lits[:w]
		kept = append(kept, c)
	}
	return kept
}

// satisfiedAtLevel0 reports whether some literal of c is true at level 0.
func (s *Solver) satisfiedAtLevel0(c *clause) bool {
	for _, l := range c.lits {
		if s.assigns.LitValue(l) == cnf.True && s.level[l.Var()] == 0 {
			return true
		}
	}
	return false
}

// reduceDB halves the learned-clause database, keeping high-activity and
// short clauses plus any clause that is currently a reason ("locked").
// Mirrors the paper's observation (§4.2) that antecedent clauses must be
// retained while inactive learned clauses can be discarded under memory
// pressure.
func (s *Solver) reduceDB() {
	live := s.learnts[:0]
	for _, c := range s.learnts {
		if !c.deleted {
			live = append(live, c)
		}
	}
	s.learnts = live
	sort.Slice(s.learnts, func(i, j int) bool {
		return s.learnts[i].act < s.learnts[j].act
	})
	target := len(s.learnts) / 2
	removed := 0
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if removed < target && len(c.lits) > 2 && !s.locked(c) {
			s.detach(c)
			s.stats.Deleted++
			removed++
			continue
		}
		kept = append(kept, c)
	}
	s.learnts = kept
	s.maxLearnts = s.maxLearnts + s.maxLearnts/5
}

// ShedMemory aggressively halves the learned-clause database. GridSAT
// clients call it when the memory budget is hit while waiting for a split,
// mirroring the paper's §4.2 observation that a memory-starved solver must
// discard inactive learned clauses to keep making (degraded) progress.
func (s *Solver) ShedMemory() { s.reduceDB() }

// locked reports whether c is the antecedent of a current assignment.
func (s *Solver) locked(c *clause) bool {
	v := c.lits[0].Var()
	return s.reason[v] == c && s.assigns.LitValue(c.lits[0]) == cnf.True
}
