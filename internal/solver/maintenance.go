package solver

import (
	"sort"

	"gridsat/internal/cnf"
)

// simplify removes clauses satisfied by level-0 assignments and strips
// level-0-false literals from the rest — the paper's §3.1 pruning of
// "inconsequential" clauses, which it also backports to the sequential
// baseline. Must be called at decision level 0 with propagation complete.
// Freed clause space is compacted by the arena GC once enough accumulates.
func (s *Solver) simplify() {
	if s.DecisionLevel() != 0 || s.qhead != len(s.trail) {
		return
	}
	if len(s.trail) == s.lastSimplifyTrail {
		return // nothing new at level 0 since the last pass
	}
	s.lastSimplifyTrail = len(s.trail)
	s.clauses = s.simplifyList(s.clauses)
	s.learnts = s.simplifyList(s.learnts)
	s.maybeGC()
}

func (s *Solver) simplifyList(list []ClauseRef) []ClauseRef {
	ca := s.ca
	kept := list[:0]
	for _, r := range list {
		if ca.Deleted(r) {
			continue
		}
		if s.satisfiedAtLevel0(r) {
			s.detach(r)
			s.stats.Simplified++
			continue
		}
		// Strip false literals from non-watched positions. After full
		// level-0 propagation the two watched literals of an unsatisfied
		// clause are never false, so watches stay valid.
		n := ca.Size(r)
		w := 2
		for k := 2; k < n; k++ {
			l := ca.Lit(r, k)
			if s.assigns.LitValue(l) == cnf.False {
				if s.tainted[l.Var()] {
					// Strengthening by an assumption-dependent assignment
					// restricts the clause to this guiding path.
					ca.SetLocal(r)
				}
				continue
			}
			ca.SetLit(r, w, l)
			w++
		}
		ca.shrinkTo(r, w)
		kept = append(kept, r)
	}
	return kept
}

// satisfiedAtLevel0 reports whether some literal of r is true at level 0.
func (s *Solver) satisfiedAtLevel0(r ClauseRef) bool {
	for i, n := 0, s.ca.Size(r); i < n; i++ {
		l := s.ca.Lit(r, i)
		if s.assigns.LitValue(l) == cnf.True && s.level[l.Var()] == 0 {
			return true
		}
	}
	return false
}

// reduceDB halves the learned-clause database, keeping high-activity and
// short clauses plus any clause that is currently a reason ("locked").
// Mirrors the paper's observation (§4.2) that antecedent clauses must be
// retained while inactive learned clauses can be discarded under memory
// pressure. The arena compacts once a fifth of the slab is reclaimable.
func (s *Solver) reduceDB() {
	ca := s.ca
	live := s.learnts[:0]
	for _, r := range s.learnts {
		if !ca.Deleted(r) {
			live = append(live, r)
		}
	}
	s.learnts = live
	sort.Slice(s.learnts, func(i, j int) bool {
		return ca.Act(s.learnts[i]) < ca.Act(s.learnts[j])
	})
	target := len(s.learnts) / 2
	removed := 0
	kept := s.learnts[:0]
	for _, r := range s.learnts {
		if removed < target && ca.Size(r) > 2 && !s.locked(r) {
			s.detach(r)
			s.stats.Deleted++
			removed++
			continue
		}
		kept = append(kept, r)
	}
	s.learnts = kept
	s.maxLearnts = s.maxLearnts + s.maxLearnts/5
	s.maybeGC()
	if c := s.opts.Counters; c != nil {
		c.ArenaBytes.Set(s.ca.LiveBytes())
	}
}

// ShedMemory aggressively halves the learned-clause database and compacts
// the arena, returning the exact number of bytes freed (dropped clauses
// plus reclaimed fragmentation). GridSAT clients call it when the memory
// budget is hit while waiting for a split, mirroring the paper's §4.2
// observation that a memory-starved solver must discard inactive learned
// clauses to keep making (degraded) progress; the return value feeds the
// client heartbeat so the master's /status shows per-client reclamation.
func (s *Solver) ShedMemory() int64 {
	before := s.ca.LiveBytes() + s.ca.WastedBytes()
	s.reduceDB()
	s.garbageCollect()
	return before - s.ca.LiveBytes()
}

// locked reports whether r is the antecedent of a current assignment.
func (s *Solver) locked(r ClauseRef) bool {
	l0 := s.ca.Lit(r, 0)
	return s.reason[l0.Var()] == r && s.assigns.LitValue(l0) == cnf.True
}
