package solver

import (
	"fmt"
	"sort"

	"gridsat/internal/cnf"
)

// ImportClause queues a clause learned by another GridSAT client for merge
// into this solver's database. Safe to call from any goroutine while Solve
// runs. Per the paper (§3.2), imported clauses are merged in batches only
// when the search is back at the first decision level.
func (s *Solver) ImportClause(c cnf.Clause) error {
	return s.importOne(c, false)
}

// ImportClauses queues a batch of globally valid clauses; see ImportClause.
func (s *Solver) ImportClauses(cs []cnf.Clause) error {
	for _, c := range cs {
		if err := s.importOne(c, false); err != nil {
			return err
		}
	}
	return nil
}

// ImportClausesLocal queues clauses that are valid only under this
// solver's guiding-path assumptions — the learned clauses forwarded inside
// a split payload or restored from a checkpoint. They are merged like
// shared clauses but marked local so they are never re-exported.
func (s *Solver) ImportClausesLocal(cs []cnf.Clause) error {
	for _, c := range cs {
		if err := s.importOne(c, true); err != nil {
			return err
		}
	}
	return nil
}

func (s *Solver) importOne(c cnf.Clause, local bool) error {
	for _, l := range c {
		if int(l.Var()) >= s.nVars {
			return fmt.Errorf("solver: imported literal %v out of range", l)
		}
	}
	s.importMu.Lock()
	s.importBuf = append(s.importBuf, pendingImport{clause: c.Clone(), local: local})
	s.importMu.Unlock()
	return nil
}

// PendingImports returns the number of clauses waiting to be merged.
func (s *Solver) PendingImports() int {
	s.importMu.Lock()
	defer s.importMu.Unlock()
	return len(s.importBuf)
}

func (s *Solver) hasImports() bool { return s.PendingImports() > 0 }

// needMergeRestart reports whether the import buffer has waited long enough
// that the solver should force a restart to merge it (Options.
// ImportMergeConflicts). Without this, a client deep in its search would
// never benefit from clauses its peers share.
func (s *Solver) needMergeRestart() bool {
	return s.opts.ImportMergeConflicts > 0 &&
		s.importWaitConflicts >= s.opts.ImportMergeConflicts &&
		s.hasImports()
}

// mergeImports merges the queued clauses into the database. It implements
// the paper's four cases: a clause that is all-false yields a level-0
// conflict (subproblem UNSAT: returns false); one unknown literal yields an
// implication; two or more unknowns adds the clause; an already-satisfied
// clause is discarded. Must be called at decision level 0.
// pendingImport is one queued clause with its validity scope.
type pendingImport struct {
	clause cnf.Clause
	local  bool
}

func (s *Solver) mergeImports() bool {
	s.importMu.Lock()
	batch := s.importBuf
	s.importBuf = nil
	s.importMu.Unlock()
	if len(batch) == 0 {
		return true
	}
	s.importWaitConflicts = 0
	for _, raw := range batch {
		norm, taut := raw.clause.Normalize()
		if taut {
			continue
		}
		s.stats.Imported++
		if !s.mergeOne(norm, raw.local) {
			return false
		}
	}
	return true
}

// mergeOne merges a single normalized clause at level 0.
func (s *Solver) mergeOne(c cnf.Clause, local bool) bool {
	// Partition: true literals (satisfied => discard), unknown, false.
	nTrue, nUndef := 0, 0
	for _, l := range c {
		switch s.assigns.LitValue(l) {
		case cnf.True:
			nTrue++
		case cnf.Undef:
			nUndef++
		}
	}
	if nTrue > 0 {
		return true // case 4: satisfied at level 0, prunes nothing — discard
	}
	switch nUndef {
	case 0:
		return false // case 3: all false — the subproblem is unsatisfiable
	case 1:
		// Case 1: implication at level 0. The implied assignment depends
		// on the clause's validity and on the falsifying assignments, so
		// taint it when any of those are assumption-dependent.
		taint := local
		if !taint {
			for _, l := range c {
				if s.tainted[l.Var()] {
					taint = true
					break
				}
			}
		}
		for _, l := range c {
			if s.assigns.LitValue(l) == cnf.Undef {
				s.uncheckedEnqueue(l, CRefUndef)
				if taint {
					s.taint(l.Var())
				}
				break
			}
		}
		return true
	}
	// Case 2: add to the learned database. Order unknown literals first so
	// the watched positions are valid.
	sorted := c.Clone()
	sort.SliceStable(sorted, func(i, j int) bool {
		return s.assigns.LitValue(sorted[i]) == cnf.Undef && s.assigns.LitValue(sorted[j]) != cnf.Undef
	})
	r := s.ca.Alloc(sorted, true, local, clauseAct(s.actInc))
	// An import's true glue is unknown here (the exporter's levels are
	// meaningless locally); its length is the standard pessimistic proxy,
	// so imports rank behind same-length native learnts in export order.
	s.ca.SetLBD(r, len(sorted))
	// Tag the peer origin so BCP and conflict analysis can attribute work
	// to imported clauses (the import-usefulness telemetry). The bit lives
	// in the header, so it survives arena GC relocation.
	s.ca.SetImported(r)
	s.learnts = append(s.learnts, r)
	s.attach(r)
	for _, l := range sorted {
		s.bump(l)
	}
	return true
}
