package solver

import "fmt"

// This file is the portfolio diversification recipe (ROADMAP item 3,
// HordeSat's within-host half of the hybrid): given a worker index, derive
// a deterministic per-worker tuning so K workers on one subproblem explore
// it in genuinely different orders. Worker 0 — the "pathfinder" — always
// runs the unmodified base configuration, so splits, checkpoints and
// migration (which serve the pathfinder) behave exactly as a single-solver
// client would.

// Profile is one worker's diversification: the knobs it overrides on the
// client's base solver options. Profiles are pure data, generated
// deterministically from (worker, baseSeed) by ProfileFor, so a restored
// or migrated portfolio rebuilds the identical lineup.
type Profile struct {
	// Worker is the index this profile was generated for; 0 is the
	// pathfinder (identity profile).
	Worker int
	// Seed overrides Options.Seed (0 for the pathfinder, preserving
	// bit-exact single-solver behavior).
	Seed int64
	// Phase overrides Options.Phase.
	Phase PhaseMode
	// PhaseSaving overrides Options.PhaseSaving.
	PhaseSaving bool
	// DecayInterval overrides Options.DecayInterval.
	DecayInterval int
	// RestartPolicy/RestartBase override the restart schedule.
	RestartPolicy RestartPolicy
	RestartBase   int
	// ImportBudget bounds how many pool clauses the worker imports per
	// exchange round (the in-host analogue of the paper's share bound).
	ImportBudget int
	// ExportMaxLen bounds the length of clauses the worker publishes to
	// the in-host pool. Longer than the cluster share bound: intra-host
	// exchange is nearly free, so the pool accepts bulkier clauses.
	ExportMaxLen int
}

// seedMix is the golden-ratio multiplier used to derive per-worker seeds
// (splitmix64's increment), so adjacent workers get unrelated streams.
const seedMix = 0x9E3779B97F4A7C15

// Restart/phase/decay rotations for workers >= 1. The lineup cycles
// through genuinely different schedules rather than perturbing one knob:
// HordeSat's result is that structural diversity beats seed jitter.
var (
	divRestarts = []struct {
		policy RestartPolicy
		base   int
	}{
		{RestartLuby, 512},
		{RestartGeometric, 100},
		{RestartFixed, 1000},
		{RestartNone, 512},
	}
	divPhases = []PhaseMode{PhaseVSIDS, PhaseNeg, PhaseRand, PhasePos}
	divDecays = []int{256, 128, 512}
)

// ProfileFor returns worker w's diversification profile for a host whose
// base seed is baseSeed. Deterministic: same (w, baseSeed), same profile.
// Worker 0 is the identity profile — Apply returns the base options
// unchanged — so the pathfinder is bit-identical to a -threads=1 client.
func ProfileFor(w int, baseSeed int64) Profile {
	if w <= 0 {
		// The pathfinder keeps the base engine options untouched; only the
		// pool-exchange budgets (engine-external) are set.
		return Profile{Worker: 0, ImportBudget: 128, ExportMaxLen: 20}
	}
	seed := baseSeed ^ int64(uint64(w)*seedMix)
	if seed == 0 {
		seed = int64(uint64(w)*seedMix) | 1
	}
	r := divRestarts[(w-1)%len(divRestarts)]
	return Profile{
		Worker:        w,
		Seed:          seed,
		Phase:         divPhases[(w-1)%len(divPhases)],
		PhaseSaving:   w%2 == 0,
		DecayInterval: divDecays[(w-1)%len(divDecays)],
		RestartPolicy: r.policy,
		RestartBase:   r.base,
		ImportBudget:  64 + 32*((w-1)%3),
		ExportMaxLen:  20,
	}
}

// Apply overlays the profile on base and returns the worker's options.
// The pathfinder profile (Worker 0) returns base unchanged.
func (p Profile) Apply(base Options) Options {
	if p.Worker == 0 {
		return base
	}
	o := base
	o.Seed = p.Seed
	o.Phase = p.Phase
	o.PhaseSaving = p.PhaseSaving
	o.DecayInterval = p.DecayInterval
	o.RestartPolicy = p.RestartPolicy
	o.RestartBase = p.RestartBase
	return o
}

// String renders the profile for logs and the DESIGN.md table.
func (p Profile) String() string {
	if p.Worker == 0 {
		return "w0: pathfinder (base options)"
	}
	return fmt.Sprintf("w%d: seed=%#x phase=%s save=%v decay=%d restart=%s/%d import=%d export<=%d",
		p.Worker, uint64(p.Seed), p.Phase, p.PhaseSaving, p.DecayInterval,
		p.RestartPolicy, p.RestartBase, p.ImportBudget, p.ExportMaxLen)
}
