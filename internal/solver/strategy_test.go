package solver

import (
	"fmt"
	"testing"

	"gridsat/internal/brute"
	"gridsat/internal/cnf"
	"gridsat/internal/gen"
)

// strategyUnderTest builds a fresh strategy per run (Dilemma carries no
// state, but pointer strategies should not be shared across donors).
func strategiesUnderTest(t *testing.T) []SplitStrategy {
	t.Helper()
	var out []SplitStrategy
	for _, name := range []string{"first-decision", "dilemma", "dilemma-veto"} {
		st, err := ParseStrategy(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, st)
	}
	return out
}

// oracleFormulas is the cross-generator suite for the partition property:
// one small instance per internal/gen family that brute force can decide.
func oracleFormulas() map[string]*cnf.Formula {
	return map[string]*cnf.Formula{
		"random-sat":    gen.RandomKSAT(10, 38, 3, 3),
		"random-unsat":  gen.RandomKSAT(10, 70, 3, 5),
		"planted":       gen.PlantedKSAT(12, 60, 3, 7),
		"pigeonhole":    gen.Pigeonhole(5),
		"parity-unsat":  gen.ParityChain(9, 3, false, 11),
		"parity-sat":    gen.ParityChain(9, 3, true, 11),
		"xor-system":    gen.XORSystem(10, 8, true, 13),
		"adder-miter":   gen.AdderMiter(3),
		"ph-shuffled":   gen.PigeonholeShuffled(5, 17),
		"random-4sat":   gen.RandomKSAT(9, 80, 4, 19),
		"planted-tight": gen.PlantedKSAT(10, 80, 3, 23),
	}
}

// TestStrategyPartitionProperty is the core soundness property every
// strategy must satisfy: the donor's remaining space plus the shipped
// cofactors partition the pre-split space exactly, so solving all parts and
// OR-ing the verdicts equals a single solver's (brute-forced) verdict —
// on every internal/gen family.
func TestStrategyPartitionProperty(t *testing.T) {
	for name, f := range oracleFormulas() {
		want, _ := brute.Solve(f, 0)
		for _, st := range strategiesUnderTest(t) {
			t.Run(fmt.Sprintf("%s/%s", name, st.Name()), func(t *testing.T) {
				donor := New(f, DefaultOptions())
				if st.Name() == "first-decision" {
					// First-decision needs a decision on the stack; the
					// dilemma strategies can carve up a fresh donor.
					donor.Solve(Limits{MaxConflicts: 4})
					if donor.Status() != StatusUnknown {
						t.Skip("decided before a split was possible")
					}
					if donor.DecisionLevel() == 0 {
						t.Skip("no decision to fork on")
					}
				}
				batch, err := st.Split(donor, 10, 0)
				if err == ErrNothingToSplit {
					t.Skip("nothing to split")
				}
				if err != nil {
					// The dilemma prepass may legitimately refute the donor;
					// then the whole space is the donor's and it must be UNSAT.
					if donor.Status() == StatusUNSAT {
						if want != brute.UNSAT {
							t.Fatalf("split refuted the donor but brute says %v", want)
						}
						return
					}
					t.Fatal(err)
				}
				if len(batch) > st.MaxBatch() {
					t.Fatalf("batch of %d exceeds MaxBatch %d", len(batch), st.MaxBatch())
				}
				gotSAT := false
				if r := donor.Solve(Limits{}); r.Status == StatusSAT {
					gotSAT = true
					if err := f.Verify(r.Model); err != nil {
						t.Fatalf("donor model invalid: %v", err)
					}
				}
				for i, sub := range batch {
					rec, err := NewFromSubproblem(f, sub, DefaultOptions())
					if err != nil {
						t.Fatalf("cofactor %d: %v", i, err)
					}
					if r := rec.Solve(Limits{}); r.Status == StatusSAT {
						gotSAT = true
						if err := f.Verify(r.Model); err != nil {
							t.Fatalf("cofactor %d model invalid: %v", i, err)
						}
					}
				}
				if gotSAT != (want == brute.SAT) {
					t.Fatalf("parts say SAT=%v, brute says %v", gotSAT, want)
				}
			})
		}
	}
}

// TestStrategyPartitionRandomSweep drives the same property over a seed
// sweep of random 3-SAT near the phase transition, where both verdicts and
// both donor-refuted edge cases occur.
func TestStrategyPartitionRandomSweep(t *testing.T) {
	for _, st := range strategiesUnderTest(t) {
		t.Run(st.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 30; seed++ {
				f := gen.RandomKSAT(10, 42, 3, seed)
				want, _ := brute.Solve(f, 0)
				donor := New(f, DefaultOptions())
				donor.Solve(Limits{MaxConflicts: 2})
				if donor.Status() != StatusUnknown {
					continue
				}
				if st.Name() == "first-decision" && donor.DecisionLevel() == 0 {
					continue
				}
				batch, err := st.Split(donor, 10, 0)
				if err != nil {
					if donor.Status() == StatusUNSAT && want == brute.UNSAT {
						continue
					}
					t.Fatalf("seed %d: %v (donor %v, brute %v)", seed, err, donor.Status(), want)
				}
				gotSAT := donor.Solve(Limits{}).Status == StatusSAT
				for _, sub := range batch {
					rec, err := NewFromSubproblem(f, sub, DefaultOptions())
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if rec.Solve(Limits{}).Status == StatusSAT {
						gotSAT = true
					}
				}
				if gotSAT != (want == brute.SAT) {
					t.Fatalf("seed %d: parts say SAT=%v, brute says %v", seed, gotSAT, want)
				}
			}
		})
	}
}

// TestDilemmaDepthBookkeeping pins the strategy depth contract: a k-way
// dilemma split advances the donor's guiding-path depth by exactly k and
// stamps every shipped cofactor with the same new depth, so closing all
// 2^k cofactors at depth d+k accounts for exactly 2^-d of the root space.
func TestDilemmaDepthBookkeeping(t *testing.T) {
	f := gen.Pigeonhole(8)
	donor := New(f, DefaultOptions())
	donor.Solve(Limits{MaxConflicts: 50})
	if donor.Status() != StatusUnknown {
		t.Fatal("instance decided before split")
	}
	depthBefore := donor.PathDepth()
	d := &Dilemma{K: 2}
	batch, err := d.Split(donor, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("k=2 dilemma shipped %d cofactors, want 3", len(batch))
	}
	if donor.PathDepth() != depthBefore+2 {
		t.Fatalf("donor depth %d after split, want %d", donor.PathDepth(), depthBefore+2)
	}
	for i, sub := range batch {
		if sub.Depth != depthBefore+2 {
			t.Fatalf("cofactor %d depth %d, want %d", i, sub.Depth, depthBefore+2)
		}
	}
}

// TestDilemmaCofactorsDisjoint checks no assignment is explored twice: all
// 2^k cofactors (donor's included) assign the same k variables and each
// pair disagrees on at least one of them.
func TestDilemmaCofactorsDisjoint(t *testing.T) {
	f := gen.Pigeonhole(8)
	donor := New(f, DefaultOptions())
	donor.Solve(Limits{MaxConflicts: 50})
	if donor.Status() != StatusUnknown {
		t.Fatal("instance decided before split")
	}
	d := &Dilemma{K: 2}
	batch, err := d.Split(donor, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The split variables are the trailing k assumptions of any cofactor.
	k := 2
	combos := make(map[int]bool)
	var vars []cnf.Var
	for _, sub := range batch {
		tail := sub.Assumptions[len(sub.Assumptions)-k:]
		if vars == nil {
			for _, l := range tail {
				vars = append(vars, l.Var())
			}
		}
		combo := 0
		for i, l := range tail {
			if l.Var() != vars[i] {
				t.Fatalf("cofactors fork different variables: %v vs %v", l.Var(), vars[i])
			}
			if !l.Neg() {
				combo |= 1 << i
			}
		}
		if combos[combo] {
			t.Fatalf("combo %b shipped twice", combo)
		}
		combos[combo] = true
	}
	// The donor holds the one remaining combo, at level 0.
	donorCombo := 0
	for i, v := range vars {
		switch donor.Value(v) {
		case cnf.True:
			donorCombo |= 1 << i
		case cnf.Undef:
			t.Fatalf("donor leaves split variable %d unassigned", v)
		}
		if donor.LevelOf(v) != 0 {
			t.Fatalf("split variable %d not permanent on donor", v)
		}
	}
	if combos[donorCombo] {
		t.Fatal("donor's cofactor was also shipped")
	}
	if len(combos) != (1<<k)-1 {
		t.Fatalf("shipped %d distinct combos, want %d", len(combos), (1<<k)-1)
	}
}

// TestParseStrategy covers the flag vocabulary and fan-out table.
func TestParseStrategy(t *testing.T) {
	cases := []struct {
		flag   string
		name   string
		fanout int
	}{
		{"", "first-decision", 1},
		{"first-decision", "first-decision", 1},
		{"dilemma", "dilemma", 3},
		{"dilemma-veto", "dilemma-veto", 3},
	}
	for _, c := range cases {
		st, err := ParseStrategy(c.flag)
		if err != nil {
			t.Fatalf("%q: %v", c.flag, err)
		}
		if st.Name() != c.name || st.MaxBatch() != c.fanout {
			t.Fatalf("%q -> %s/%d, want %s/%d", c.flag, st.Name(), st.MaxBatch(), c.name, c.fanout)
		}
		if got := StrategyFanout(c.flag); got != c.fanout {
			t.Fatalf("StrategyFanout(%q) = %d, want %d", c.flag, got, c.fanout)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if got := StrategyFanout("bogus"); got != 1 {
		t.Fatalf("unknown strategy fan-out = %d, want the degraded 1", got)
	}
}

// TestVetoFilterDropsUnderconnected pins the Kotthoff & Moore veto: a
// candidate occurring in fewer problem clauses than the pool median is
// removed, while well-connected active candidates survive.
func TestVetoFilterDropsUnderconnected(t *testing.T) {
	// Var 1 appears in every clause; var 5 in exactly one.
	f := cnf.NewFormula(5)
	f.Add(1, 2, 3).Add(1, -2, 4).Add(1, 3, -4).Add(-1, 2, -3).Add(1, -3, 5)
	s := New(f, DefaultOptions())
	cands := []splitCandidate{
		{v: 0, votes: 1, act: 2},
		{v: 1, votes: 1, act: 1},
		{v: 2, votes: 1, act: 1},
		{v: 3, votes: 1, act: 1},
		{v: 4, votes: 1, act: 1},
	}
	kept := vetoFilter(s, cands)
	for _, c := range kept {
		if c.v == 4 {
			t.Fatal("underconnected variable survived the veto")
		}
	}
	if len(kept) == 0 || kept[0].v != 0 {
		t.Fatalf("filter mangled the best-first order: %+v", kept)
	}

	// Untouched candidates (zero votes, zero activity) are vetoed too,
	// even when structurally well-connected.
	cands = []splitCandidate{
		{v: 0, votes: 0, act: 0},
		{v: 1, votes: 2, act: 1},
		{v: 2, votes: 1, act: 1},
	}
	kept = vetoFilter(s, cands)
	if len(kept) == 0 {
		t.Fatal("filter emptied a pool with a keepable candidate")
	}
	for _, c := range kept {
		if c.v == 0 {
			t.Fatal("never-touched variable survived the veto")
		}
	}

	// When everything would be vetoed the unfiltered pool stands.
	cands = []splitCandidate{{v: 4, votes: 0, act: 0}}
	if kept = vetoFilter(s, cands); len(kept) != 1 {
		t.Fatalf("all-vetoed pool did not fall back: %+v", kept)
	}
}

// TestDilemmaOnDecidedProblemFails mirrors the Solver.Split guard.
func TestDilemmaOnDecidedProblemFails(t *testing.T) {
	f := cnf.NewFormula(1)
	f.Add(1)
	s := New(f, DefaultOptions())
	s.Solve(Limits{})
	d := &Dilemma{K: 2}
	if _, err := d.Split(s, 0, 0); err == nil {
		t.Fatal("dilemma split of a decided problem accepted")
	}
}

// TestDilemmaRepeatedSplits runs several dilemma splits off one donor and
// checks the accumulated parts still cover the space, with the donor depth
// advancing k per split.
func TestDilemmaRepeatedSplits(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		f := gen.RandomKSAT(12, 51, 3, seed)
		want, _ := brute.Solve(f, 0)
		donor := New(f, DefaultOptions())
		d := &Dilemma{K: 2}
		var subs []*Subproblem
		refuted := false
		for round := 0; round < 3; round++ {
			donor.Solve(Limits{MaxConflicts: 2})
			if donor.Status() != StatusUnknown {
				break
			}
			wantDepth := donor.PathDepth() + 2
			batch, err := d.Split(donor, 10, 0)
			if err != nil {
				if donor.Status() == StatusUNSAT {
					refuted = true
					break
				}
				if err == ErrNothingToSplit {
					break
				}
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			if donor.PathDepth() != wantDepth {
				t.Fatalf("seed %d round %d: depth %d, want %d", seed, round, donor.PathDepth(), wantDepth)
			}
			subs = append(subs, batch...)
		}
		anySAT := false
		if !refuted && donor.Solve(Limits{}).Status == StatusSAT {
			anySAT = true
		}
		for _, sub := range subs {
			rec, err := NewFromSubproblem(f, sub, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if rec.Solve(Limits{}).Status == StatusSAT {
				anySAT = true
			}
		}
		if anySAT != (want == brute.SAT) {
			t.Fatalf("seed %d: parts say SAT=%v, brute says %v", seed, anySAT, want)
		}
	}
}
