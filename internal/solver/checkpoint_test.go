package solver

import (
	"bytes"
	"strings"
	"testing"

	"gridsat/internal/brute"
	"gridsat/internal/cnf"
	"gridsat/internal/gen"
)

func TestLightCheckpointRoundtrip(t *testing.T) {
	f := gen.Pigeonhole(8)
	s := New(f, DefaultOptions())
	s.Solve(Limits{MaxConflicts: 200})
	cp := s.Checkpoint(LightCheckpoint, 0)
	if cp.Kind != LightCheckpoint || len(cp.Learnts) != 0 {
		t.Fatalf("light checkpoint carries learnts: %d", len(cp.Learnts))
	}
	restored, err := Restore(f, cp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r := restored.Solve(Limits{}); r.Status != StatusUNSAT {
		t.Fatalf("restored run: %v", r.Status)
	}
}

func TestHeavyCheckpointRoundtrip(t *testing.T) {
	f := gen.Pigeonhole(8)
	s := New(f, DefaultOptions())
	s.Solve(Limits{MaxConflicts: 500})
	cp := s.Checkpoint(HeavyCheckpoint, 0)
	if len(cp.Learnts) == 0 {
		t.Fatal("heavy checkpoint carries no learnts after 500 conflicts")
	}
	restored, err := Restore(f, cp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The restored solver starts with the checkpointed clauses pending.
	if restored.PendingImports() != len(cp.Learnts) {
		t.Fatalf("pending imports = %d, want %d", restored.PendingImports(), len(cp.Learnts))
	}
	if r := restored.Solve(Limits{}); r.Status != StatusUNSAT {
		t.Fatalf("restored run: %v", r.Status)
	}
}

func TestHeavyCheckpointCap(t *testing.T) {
	s := New(gen.Pigeonhole(8), DefaultOptions())
	s.Solve(Limits{MaxConflicts: 500})
	cp := s.Checkpoint(HeavyCheckpoint, 5)
	if len(cp.Learnts) > 5 {
		t.Fatalf("cap ignored: %d learnts", len(cp.Learnts))
	}
}

// TestCheckpointPreservesAnswer: restoring from a mid-run checkpoint must
// reach the same SAT/UNSAT verdict as the oracle on the original formula.
func TestCheckpointPreservesAnswer(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := gen.RandomKSAT(10, 43, 3, seed)
		want, _ := brute.Solve(f, 0)
		s := New(f, DefaultOptions())
		s.Solve(Limits{MaxConflicts: 3})
		if s.Status() != StatusUnknown {
			continue
		}
		for _, kind := range []CheckpointKind{LightCheckpoint, HeavyCheckpoint} {
			cp := s.Checkpoint(kind, 0)
			restored, err := Restore(f, cp, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			r := restored.Solve(Limits{})
			if (r.Status == StatusSAT) != (want == brute.SAT) {
				t.Fatalf("seed %d kind %d: restored=%v brute=%v", seed, kind, r.Status, want)
			}
			if r.Status == StatusSAT {
				if err := f.Verify(r.Model); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		}
	}
}

// TestCheckpointAfterSplitPreservesHalf: a checkpoint taken after a split
// must restore the donor's committed half, not the whole problem.
func TestCheckpointAfterSplitRestoresDonorHalf(t *testing.T) {
	f := gen.Pigeonhole(8)
	s := New(f, DefaultOptions())
	s.Solve(Limits{MaxConflicts: 10})
	if s.Status() != StatusUnknown || s.DecisionLevel() == 0 {
		t.Skip("finished before split")
	}
	sub, err := s.Split(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	splitLit := sub.Assumptions[len(sub.Assumptions)-1]
	cp := s.Checkpoint(LightCheckpoint, 0)
	restored, err := Restore(f, cp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Donor committed to the complement of the recipient's split literal.
	if restored.assigns.LitValue(splitLit) != cnf.False {
		t.Fatal("restored donor lost its committed split assignment")
	}
}

func TestRestoreMismatch(t *testing.T) {
	cp := &Checkpoint{NumVars: 3}
	if _, err := Restore(cnf.NewFormula(5), cp, DefaultOptions()); err == nil {
		t.Fatal("mismatched restore accepted")
	}
}

func TestCheckpointSaveLoadRoundtrip(t *testing.T) {
	f := gen.Pigeonhole(8)
	s := New(f, DefaultOptions())
	s.Solve(Limits{MaxConflicts: 300})
	cp := s.Checkpoint(HeavyCheckpoint, 50)

	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVars != cp.NumVars || len(got.Level0) != len(cp.Level0) || len(got.Learnts) != len(cp.Learnts) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, cp)
	}
	restored, err := Restore(f, got, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r := restored.Solve(Limits{}); r.Status != StatusUNSAT {
		t.Fatalf("restored-from-disk run: %v", r.Status)
	}
}

func TestLoadCheckpointGarbage(t *testing.T) {
	if _, err := LoadCheckpoint(strings.NewReader("not a checkpoint")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// checkCheckpointRoundTrip is the property behind FuzzCheckpointRoundTrip:
// a checkpoint taken mid-run must survive Save/LoadCheckpoint bit-exactly
// (same level-0 prefix, same learned-clause set, literal for literal), and
// the restored solver must reach the oracle's verdict on the original
// formula — under the base options and under every portfolio worker
// profile up to width `workers` (a restored portfolio rebuilds all K
// workers from the one pathfinder checkpoint).
func checkCheckpointRoundTrip(t *testing.T, seed int64, conflicts int64, learntCap, workers int) {
	t.Helper()
	f := gen.RandomKSAT(12, 50, 3, seed)
	want, _ := brute.Solve(f, 0)
	s := New(f, DefaultOptions())
	s.Solve(Limits{MaxConflicts: conflicts})
	if s.Status() != StatusUnknown {
		return // solved before the checkpoint; nothing to restore
	}
	cp := s.Checkpoint(HeavyCheckpoint, learntCap)

	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The serialized form must preserve the checkpoint exactly.
	if got.Kind != cp.Kind || got.NumVars != cp.NumVars {
		t.Fatalf("header changed: %+v vs %+v", got, cp)
	}
	if len(got.Level0) != len(cp.Level0) {
		t.Fatalf("level-0 length %d vs %d", len(got.Level0), len(cp.Level0))
	}
	for i, l := range cp.Level0 {
		if got.Level0[i] != l {
			t.Fatalf("level-0[%d]: %v vs %v", i, got.Level0[i], l)
		}
	}
	if len(got.Learnts) != len(cp.Learnts) {
		t.Fatalf("learnt set size %d vs %d", len(got.Learnts), len(cp.Learnts))
	}
	for i, c := range cp.Learnts {
		if len(got.Learnts[i]) != len(c) {
			t.Fatalf("learnt %d length changed", i)
		}
		for j, l := range c {
			if got.Learnts[i][j] != l {
				t.Fatalf("learnt %d literal %d: %v vs %v", i, j, got.Learnts[i][j], l)
			}
		}
	}

	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		opts := ProfileFor(w, DefaultOptions().Seed).Apply(DefaultOptions())
		restored, err := Restore(f, got, opts)
		if err != nil {
			t.Fatal(err)
		}
		r := restored.Solve(Limits{})
		if (r.Status == StatusSAT) != (want == brute.SAT) {
			t.Fatalf("seed %d worker %d: restored verdict %v, oracle %v", seed, w, r.Status, want)
		}
		if r.Status == StatusSAT {
			if err := f.Verify(r.Model); err != nil {
				t.Fatalf("seed %d worker %d: restored model invalid: %v", seed, w, err)
			}
		}
	}
}

// FuzzCheckpointRoundTrip fuzzes the Save/LoadCheckpoint/Restore pipeline
// over random instances, interruption points, learnt caps, and portfolio
// widths (K>1 restores the checkpoint under every diversified worker
// profile). The seed corpus doubles as the deterministic property test
// under plain `go test`.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(int64(0), int64(5), uint8(0), uint8(1))
	f.Add(int64(1), int64(1), uint8(3), uint8(4))
	f.Add(int64(2), int64(40), uint8(0), uint8(2))
	f.Add(int64(3), int64(12), uint8(1), uint8(3))
	f.Add(int64(17), int64(25), uint8(7), uint8(5))
	f.Fuzz(func(t *testing.T, seed, conflicts int64, learntCap, workers uint8) {
		if conflicts < 1 {
			conflicts = 1
		}
		checkCheckpointRoundTrip(t, seed&0xffff, conflicts%128, int(learntCap), int(workers%6))
	})
}
