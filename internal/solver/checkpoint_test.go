package solver

import (
	"bytes"
	"strings"
	"testing"

	"gridsat/internal/brute"
	"gridsat/internal/cnf"
	"gridsat/internal/gen"
)

func TestLightCheckpointRoundtrip(t *testing.T) {
	f := gen.Pigeonhole(8)
	s := New(f, DefaultOptions())
	s.Solve(Limits{MaxConflicts: 200})
	cp := s.Checkpoint(LightCheckpoint, 0)
	if cp.Kind != LightCheckpoint || len(cp.Learnts) != 0 {
		t.Fatalf("light checkpoint carries learnts: %d", len(cp.Learnts))
	}
	restored, err := Restore(f, cp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r := restored.Solve(Limits{}); r.Status != StatusUNSAT {
		t.Fatalf("restored run: %v", r.Status)
	}
}

func TestHeavyCheckpointRoundtrip(t *testing.T) {
	f := gen.Pigeonhole(8)
	s := New(f, DefaultOptions())
	s.Solve(Limits{MaxConflicts: 500})
	cp := s.Checkpoint(HeavyCheckpoint, 0)
	if len(cp.Learnts) == 0 {
		t.Fatal("heavy checkpoint carries no learnts after 500 conflicts")
	}
	restored, err := Restore(f, cp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The restored solver starts with the checkpointed clauses pending.
	if restored.PendingImports() != len(cp.Learnts) {
		t.Fatalf("pending imports = %d, want %d", restored.PendingImports(), len(cp.Learnts))
	}
	if r := restored.Solve(Limits{}); r.Status != StatusUNSAT {
		t.Fatalf("restored run: %v", r.Status)
	}
}

func TestHeavyCheckpointCap(t *testing.T) {
	s := New(gen.Pigeonhole(8), DefaultOptions())
	s.Solve(Limits{MaxConflicts: 500})
	cp := s.Checkpoint(HeavyCheckpoint, 5)
	if len(cp.Learnts) > 5 {
		t.Fatalf("cap ignored: %d learnts", len(cp.Learnts))
	}
}

// TestCheckpointPreservesAnswer: restoring from a mid-run checkpoint must
// reach the same SAT/UNSAT verdict as the oracle on the original formula.
func TestCheckpointPreservesAnswer(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := gen.RandomKSAT(10, 43, 3, seed)
		want, _ := brute.Solve(f, 0)
		s := New(f, DefaultOptions())
		s.Solve(Limits{MaxConflicts: 3})
		if s.Status() != StatusUnknown {
			continue
		}
		for _, kind := range []CheckpointKind{LightCheckpoint, HeavyCheckpoint} {
			cp := s.Checkpoint(kind, 0)
			restored, err := Restore(f, cp, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			r := restored.Solve(Limits{})
			if (r.Status == StatusSAT) != (want == brute.SAT) {
				t.Fatalf("seed %d kind %d: restored=%v brute=%v", seed, kind, r.Status, want)
			}
			if r.Status == StatusSAT {
				if err := f.Verify(r.Model); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		}
	}
}

// TestCheckpointAfterSplitPreservesHalf: a checkpoint taken after a split
// must restore the donor's committed half, not the whole problem.
func TestCheckpointAfterSplitRestoresDonorHalf(t *testing.T) {
	f := gen.Pigeonhole(8)
	s := New(f, DefaultOptions())
	s.Solve(Limits{MaxConflicts: 10})
	if s.Status() != StatusUnknown || s.DecisionLevel() == 0 {
		t.Skip("finished before split")
	}
	sub, err := s.Split(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	splitLit := sub.Assumptions[len(sub.Assumptions)-1]
	cp := s.Checkpoint(LightCheckpoint, 0)
	restored, err := Restore(f, cp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Donor committed to the complement of the recipient's split literal.
	if restored.assigns.LitValue(splitLit) != cnf.False {
		t.Fatal("restored donor lost its committed split assignment")
	}
}

func TestRestoreMismatch(t *testing.T) {
	cp := &Checkpoint{NumVars: 3}
	if _, err := Restore(cnf.NewFormula(5), cp, DefaultOptions()); err == nil {
		t.Fatal("mismatched restore accepted")
	}
}

func TestCheckpointSaveLoadRoundtrip(t *testing.T) {
	f := gen.Pigeonhole(8)
	s := New(f, DefaultOptions())
	s.Solve(Limits{MaxConflicts: 300})
	cp := s.Checkpoint(HeavyCheckpoint, 50)

	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVars != cp.NumVars || len(got.Level0) != len(cp.Level0) || len(got.Learnts) != len(cp.Learnts) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, cp)
	}
	restored, err := Restore(f, got, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r := restored.Solve(Limits{}); r.Status != StatusUNSAT {
		t.Fatalf("restored-from-disk run: %v", r.Status)
	}
}

func TestLoadCheckpointGarbage(t *testing.T) {
	if _, err := LoadCheckpoint(strings.NewReader("not a checkpoint")); err == nil {
		t.Fatal("garbage accepted")
	}
}
