package solver

import (
	"math/rand"
	"testing"

	"gridsat/internal/cnf"
)

func TestHeapBasicOrder(t *testing.T) {
	act := []float64{5, 1, 9, 3}
	h := newLitHeap(&act)
	for l := 0; l < 4; l++ {
		h.push(cnf.Lit(l))
	}
	wantOrder := []cnf.Lit{2, 0, 3, 1}
	for _, want := range wantOrder {
		got, ok := h.popMax()
		if !ok || got != want {
			t.Fatalf("popMax = %v, want %v", got, want)
		}
	}
	if _, ok := h.popMax(); ok {
		t.Fatal("popMax from empty heap succeeded")
	}
}

func TestHeapDuplicatePushIgnored(t *testing.T) {
	act := []float64{1, 2}
	h := newLitHeap(&act)
	h.push(0)
	h.push(0)
	h.push(1)
	if h.size() != 2 {
		t.Fatalf("size = %d, want 2", h.size())
	}
}

func TestHeapUpdateAfterBump(t *testing.T) {
	act := []float64{1, 2, 3}
	h := newLitHeap(&act)
	for l := 0; l < 3; l++ {
		h.push(cnf.Lit(l))
	}
	act[0] = 10
	h.update(0)
	if got, _ := h.popMax(); got != 0 {
		t.Fatalf("after bump popMax = %v, want 0", got)
	}
}

func TestHeapTieBreakDeterministic(t *testing.T) {
	act := []float64{7, 7, 7}
	h := newLitHeap(&act)
	h.push(2)
	h.push(0)
	h.push(1)
	// Equal activity: lower literal index wins.
	if got, _ := h.popMax(); got != 0 {
		t.Fatalf("tie-break popMax = %v, want 0", got)
	}
}

func TestHeapRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(64)
		act := make([]float64, n)
		for i := range act {
			act[i] = float64(rng.Intn(16))
		}
		h := newLitHeap(&act)
		for l := 0; l < n; l++ {
			h.push(cnf.Lit(l))
		}
		// Pop half, re-push some, pop all; verify non-increasing order with
		// the documented tie-break.
		var prev cnf.Lit
		prevSet := false
		var prevAct float64
		for {
			l, ok := h.popMax()
			if !ok {
				break
			}
			if prevSet {
				if act[l] > prevAct || (act[l] == prevAct && l < prev) {
					t.Fatalf("heap order violated: %v(%v) after %v(%v)", l, act[l], prev, prevAct)
				}
			}
			prev, prevAct, prevSet = l, act[l], true
		}
	}
}

func TestHeapPushAfterPop(t *testing.T) {
	act := []float64{4, 8}
	h := newLitHeap(&act)
	h.push(0)
	h.push(1)
	l, _ := h.popMax()
	if l != 1 {
		t.Fatalf("got %v", l)
	}
	h.push(1) // simulate backtrack re-push
	if h.size() != 2 {
		t.Fatalf("size = %d, want 2", h.size())
	}
	if got, _ := h.popMax(); got != 1 {
		t.Fatalf("re-pushed literal lost: %v", got)
	}
}
