package solver

import (
	"testing"

	"gridsat/internal/brute"
	"gridsat/internal/cnf"
	"gridsat/internal/gen"
)

// impliedByBase checks c is a logical consequence of f: f ∧ ¬c is UNSAT.
func impliedByBase(f *cnf.Formula, c cnf.Clause) bool {
	g := f.Clone()
	for _, l := range c {
		g.AddClause(cnf.Clause{l.Not()})
	}
	r, _ := brute.Solve(g, 0)
	return r == brute.UNSAT
}

// TestExportedClausesGloballyValidUnderAssumptions is the paper's §3.2
// soundness requirement: a client solving under guiding-path assumptions
// must only share clauses implied by the base formula — clauses whose
// derivation used the assumptions are "only valid for the current client"
// and must stay local.
func TestExportedClausesGloballyValidUnderAssumptions(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		f := gen.RandomKSAT(14, 60, 3, seed)
		var exported []cnf.Clause
		opts := DefaultOptions()
		opts.ShareMaxLen = 14
		opts.OnLearn = func(c cnf.Clause, _ int) { exported = append(exported, c) }
		s := New(f, opts)
		// Guiding-path assumptions, as a split recipient would get.
		if err := s.Assume(cnf.PosLit(0), cnf.NegLit(1), cnf.PosLit(2)); err != nil {
			t.Fatal(err)
		}
		if s.Status() != StatusUnknown {
			continue
		}
		s.Solve(Limits{})
		for _, c := range exported {
			if !impliedByBase(f, c) {
				t.Fatalf("seed %d: exported clause %v not implied by the base formula", seed, c)
			}
		}
	}
}

// TestExportedClausesGloballyValidAfterSplit covers the donor side: after
// Split promotes the first decision into level 0, subsequent exports must
// still be implied by the base formula.
func TestExportedClausesGloballyValidAfterSplit(t *testing.T) {
	for seed := int64(20); seed < 30; seed++ {
		f := gen.RandomKSAT(14, 60, 3, seed)
		var exported []cnf.Clause
		opts := DefaultOptions()
		opts.ShareMaxLen = 14
		opts.OnLearn = func(c cnf.Clause, _ int) { exported = append(exported, c) }
		s := New(f, opts)
		s.Solve(Limits{MaxConflicts: 3})
		if s.Status() != StatusUnknown || s.DecisionLevel() == 0 {
			continue
		}
		exported = nil // only audit post-split exports
		if _, err := s.Split(0, 0); err != nil {
			t.Fatal(err)
		}
		s.Solve(Limits{})
		for _, c := range exported {
			if !impliedByBase(f, c) {
				t.Fatalf("seed %d: post-split export %v not implied by base formula", seed, c)
			}
		}
	}
}

// TestLocalImportNotReExported: clauses forwarded inside a split payload
// are valid only under the recipient's assumptions and must never be
// re-shared globally, even when short.
func TestLocalImportNotReExported(t *testing.T) {
	f := gen.RandomKSAT(14, 58, 3, 3)
	var exported []cnf.Clause
	opts := DefaultOptions()
	opts.ShareMaxLen = 14
	opts.OnLearn = func(c cnf.Clause, _ int) { exported = append(exported, c) }
	sub := &Subproblem{
		NumVars:     14,
		Assumptions: []cnf.Lit{cnf.PosLit(0)},
		// A clause that is NOT implied by f alone (it encodes part of the
		// guiding path); forwarding it is fine, re-exporting is not.
		Learnts: []cnf.Clause{{cnf.PosLit(0), cnf.PosLit(1)}},
	}
	s, err := NewFromSubproblem(f, sub, opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Solve(Limits{})
	for _, c := range exported {
		if !impliedByBase(f, c) {
			t.Fatalf("re-exported local knowledge: %v", c)
		}
	}
}

// TestTaintClearedOnBacktrack: taint tracks the CURRENT assignment; a var
// implied via assumptions and later unassigned must be taint-free, so the
// sequential engine (no assumptions) never marks anything.
func TestNoTaintWithoutAssumptions(t *testing.T) {
	f := gen.Pigeonhole(7)
	var exported int
	opts := DefaultOptions()
	opts.ShareMaxLen = 20
	opts.OnLearn = func(_ cnf.Clause, _ int) { exported++ }
	s := New(f, opts)
	if r := s.Solve(Limits{}); r.Status != StatusUNSAT {
		t.Fatalf("got %v", r.Status)
	}
	if s.numTainted != 0 {
		t.Fatalf("%d tainted vars on an assumption-free run", s.numTainted)
	}
	if exported == 0 {
		t.Fatal("assumption-free run exported nothing")
	}
	if int64(exported) != s.Stats().Exported {
		t.Fatalf("export count mismatch: %d vs %d", exported, s.Stats().Exported)
	}
}

// TestSubproblemStillSolvesWithLocalClauses: locality must not hurt
// completeness — split halves still reach the right answers.
func TestSubproblemAnswersUnchangedByLocality(t *testing.T) {
	for seed := int64(40); seed < 52; seed++ {
		f := gen.RandomKSAT(12, 51, 3, seed)
		want, _ := brute.Solve(f, 0)
		donor := New(f, DefaultOptions())
		donor.Solve(Limits{MaxConflicts: 2})
		if donor.Status() != StatusUnknown || donor.DecisionLevel() == 0 {
			continue
		}
		sub, err := donor.Split(12, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := NewFromSubproblem(f, sub, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		sat := donor.Solve(Limits{}).Status == StatusSAT || rec.Solve(Limits{}).Status == StatusSAT
		if sat != (want == brute.SAT) {
			t.Fatalf("seed %d: halves say %v, brute %v", seed, sat, want)
		}
	}
}

// TestMinimizationSoundness: with minimization on, answers match the
// oracle and every exported clause is still implied by the base formula
// (including under assumptions, where minimization may chase reasons into
// the guiding path and must surface those as dependencies).
func TestMinimizationSoundness(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := gen.RandomKSAT(14, 60, 3, seed)
		want, _ := brute.Solve(f, 0)

		var exported []cnf.Clause
		opts := DefaultOptions()
		opts.MinimizeLearnts = true
		opts.ShareMaxLen = 14
		opts.OnLearn = func(c cnf.Clause, _ int) { exported = append(exported, c) }
		s := New(f, opts)
		if seed%2 == 0 { // alternate: plain and assumption-carrying runs
			if err := s.Assume(cnf.PosLit(0), cnf.NegLit(1)); err != nil {
				t.Fatal(err)
			}
			if s.Status() != StatusUnknown {
				continue
			}
		}
		r := s.Solve(Limits{})
		if seed%2 != 0 { // unassumed runs must match the oracle
			if (r.Status == StatusSAT) != (want == brute.SAT) {
				t.Fatalf("seed %d: minimized run %v, brute %v", seed, r.Status, want)
			}
			if r.Status == StatusSAT {
				if err := f.Verify(r.Model); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, c := range exported {
			if !impliedByBase(f, c) {
				t.Fatalf("seed %d: minimized export %v not implied by base", seed, c)
			}
		}
	}
}

// TestMinimizationShortensClauses: on a structured instance, minimization
// must strictly reduce total learned literals while preserving the answer.
func TestMinimizationShortensClauses(t *testing.T) {
	f := gen.Pigeonhole(8)
	run := func(min bool) (int64, Status) {
		var total int64
		opts := DefaultOptions()
		opts.MinimizeLearnts = min
		opts.ShareMaxLen = 1 << 20
		opts.OnLearn = func(c cnf.Clause, _ int) { total += int64(len(c)) }
		s := New(f, opts)
		r := s.Solve(Limits{MaxConflicts: 2000})
		return total, r.Status
	}
	plainLits, _ := run(false)
	minLits, _ := run(true)
	if minLits >= plainLits {
		t.Errorf("minimization did not shorten clauses: %d vs %d literals", minLits, plainLits)
	}
	// Both configurations must still decide the instance correctly.
	opts := DefaultOptions()
	opts.MinimizeLearnts = true
	if r := New(f, opts).Solve(Limits{}); r.Status != StatusUNSAT {
		t.Fatalf("minimized solver got %v", r.Status)
	}
}
