package solver

import (
	"testing"
	"time"

	"gridsat/internal/brute"
	"gridsat/internal/cnf"
	"gridsat/internal/gen"
)

func solve(t *testing.T, f *cnf.Formula, opts Options) Result {
	t.Helper()
	s := New(f, opts)
	r := s.Solve(Limits{MaxConflicts: 2_000_000})
	if r.Reason != ReasonSolved {
		t.Fatalf("solver did not finish: %v", r.Reason)
	}
	if r.Status == StatusSAT {
		if err := f.Verify(r.Model); err != nil {
			t.Fatalf("model rejected: %v", err)
		}
	}
	return r
}

func TestEmptyFormula(t *testing.T) {
	r := solve(t, cnf.NewFormula(0), DefaultOptions())
	if r.Status != StatusSAT {
		t.Fatalf("empty formula: %v", r.Status)
	}
}

func TestEmptyClause(t *testing.T) {
	f := cnf.NewFormula(1)
	f.AddClause(cnf.Clause{})
	if r := solve(t, f, DefaultOptions()); r.Status != StatusUNSAT {
		t.Fatalf("empty clause: %v", r.Status)
	}
}

func TestUnitContradiction(t *testing.T) {
	f := cnf.NewFormula(1)
	f.Add(1).Add(-1)
	if r := solve(t, f, DefaultOptions()); r.Status != StatusUNSAT {
		t.Fatalf("x & ~x: %v", r.Status)
	}
}

func TestTautologyDropped(t *testing.T) {
	f := cnf.NewFormula(2)
	f.Add(1, -1).Add(2)
	r := solve(t, f, DefaultOptions())
	if r.Status != StatusSAT {
		t.Fatalf("got %v", r.Status)
	}
	if r.Model.Value(1) != cnf.True {
		t.Fatal("unit clause not honored")
	}
}

func TestUnitChainLevels(t *testing.T) {
	f := cnf.NewFormula(4)
	f.Add(1).Add(-1, 2).Add(-2, 3).Add(-3, 4)
	s := New(f, DefaultOptions())
	r := s.Solve(Limits{})
	if r.Status != StatusSAT {
		t.Fatalf("got %v", r.Status)
	}
	for v := cnf.Var(0); v < 4; v++ {
		if s.Value(v) != cnf.True {
			t.Errorf("var %d = %v", v.DIMACS(), s.Value(v))
		}
		if s.LevelOf(v) != 0 {
			t.Errorf("var %d at level %d, want 0", v.DIMACS(), s.LevelOf(v))
		}
	}
}

func TestBinaryUNSATCore(t *testing.T) {
	f := cnf.NewFormula(2)
	f.Add(1, 2).Add(1, -2).Add(-1, 2).Add(-1, -2)
	if r := solve(t, f, DefaultOptions()); r.Status != StatusUNSAT {
		t.Fatalf("got %v", r.Status)
	}
}

func TestPigeonholeFamily(t *testing.T) {
	for holes := 2; holes <= 7; holes++ {
		if r := solve(t, gen.Pigeonhole(holes), DefaultOptions()); r.Status != StatusUNSAT {
			t.Fatalf("PHP(%d): %v", holes, r.Status)
		}
	}
}

func TestXORFamilies(t *testing.T) {
	if r := solve(t, gen.XORSystem(20, 20, true, 3), DefaultOptions()); r.Status != StatusSAT {
		t.Fatalf("consistent xor: %v", r.Status)
	}
	if r := solve(t, gen.XORSystem(20, 40, false, 3), DefaultOptions()); r.Status != StatusUNSAT {
		t.Fatalf("inconsistent xor: %v", r.Status)
	}
}

func TestMiters(t *testing.T) {
	if r := solve(t, gen.AdderMiter(5), DefaultOptions()); r.Status != StatusUNSAT {
		t.Fatalf("adder miter: %v", r.Status)
	}
	if r := solve(t, gen.AdderMiterBug(5), DefaultOptions()); r.Status != StatusSAT {
		t.Fatalf("buggy miter: %v", r.Status)
	}
}

func TestAgainstBruteForceRandom(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		nv := 6 + int(seed%8)
		nc := int(float64(nv) * 4.3)
		f := gen.RandomKSAT(nv, nc, 3, seed)
		want, _ := brute.Solve(f, 0)
		got := solve(t, f, DefaultOptions())
		if (want == brute.SAT) != (got.Status == StatusSAT) {
			t.Fatalf("seed %d: brute=%v cdcl=%v", seed, want, got.Status)
		}
	}
}

func TestAgainstBruteForceNoRestartsNoPrune(t *testing.T) {
	opts := Options{DecayInterval: 64} // restarts off, pruning off
	for seed := int64(100); seed < 130; seed++ {
		f := gen.RandomKSAT(8, 34, 3, seed)
		want, _ := brute.Solve(f, 0)
		got := solve(t, f, opts)
		if (want == brute.SAT) != (got.Status == StatusSAT) {
			t.Fatalf("seed %d: brute=%v cdcl=%v", seed, want, got.Status)
		}
	}
}

func TestDeterministicSameSeed(t *testing.T) {
	f := gen.RandomKSAT(50, 213, 3, 77)
	s1 := New(f, DefaultOptions())
	s2 := New(f, DefaultOptions())
	r1 := s1.Solve(Limits{})
	r2 := s2.Solve(Limits{})
	if r1.Status != r2.Status {
		t.Fatal("status differs across identical runs")
	}
	if s1.Stats() != s2.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", s1.Stats(), s2.Stats())
	}
}

func TestConflictLimit(t *testing.T) {
	s := New(gen.Pigeonhole(9), DefaultOptions())
	r := s.Solve(Limits{MaxConflicts: 5})
	if r.Reason != ReasonConflictLimit || r.Status != StatusUnknown {
		t.Fatalf("got %v/%v", r.Status, r.Reason)
	}
	if s.Stats().Conflicts < 5 {
		t.Fatalf("only %d conflicts recorded", s.Stats().Conflicts)
	}
	// Resume and finish.
	r = s.Solve(Limits{})
	if r.Status != StatusUNSAT {
		t.Fatalf("resume: %v", r.Status)
	}
}

func TestPropagationLimit(t *testing.T) {
	s := New(gen.Pigeonhole(9), DefaultOptions())
	r := s.Solve(Limits{MaxPropagations: 10})
	if r.Reason != ReasonPropLimit {
		t.Fatalf("got %v", r.Reason)
	}
}

func TestTimeLimit(t *testing.T) {
	s := New(gen.Pigeonhole(11), DefaultOptions())
	start := time.Now()
	r := s.Solve(Limits{MaxTime: 30 * time.Millisecond})
	if r.Reason != ReasonTimeout {
		t.Fatalf("got %v after %v", r.Reason, time.Since(start))
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout far too late")
	}
}

func TestMemoryLimit(t *testing.T) {
	s := New(gen.Pigeonhole(10), DefaultOptions())
	base := s.MemoryBytes()
	r := s.Solve(Limits{MaxMemoryBytes: base + 2048})
	if r.Reason != ReasonMemLimit {
		t.Fatalf("got %v", r.Reason)
	}
}

func TestStopFromOtherGoroutine(t *testing.T) {
	s := New(gen.Pigeonhole(11), DefaultOptions())
	done := make(chan Result, 1)
	go func() { done <- s.Solve(Limits{}) }()
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	select {
	case r := <-done:
		if r.Reason != ReasonStopped {
			t.Fatalf("got %v", r.Reason)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not interrupt Solve")
	}
	// Solver remains usable after a stop.
	r := s.Solve(Limits{MaxConflicts: 10})
	if r.Reason != ReasonConflictLimit && r.Reason != ReasonSolved {
		t.Fatalf("post-stop solve: %v", r.Reason)
	}
}

func TestRestartsHappen(t *testing.T) {
	s := New(gen.Pigeonhole(9), DefaultOptions())
	if r := s.Solve(Limits{}); r.Status != StatusUNSAT {
		t.Fatalf("got %v", r.Status)
	}
	if s.Stats().Restarts == 0 {
		t.Error("no restarts recorded on a multi-thousand-conflict run")
	}
}

func TestNoRestartsWhenDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.RestartBase = 0
	s := New(gen.Pigeonhole(8), opts)
	if r := s.Solve(Limits{}); r.Status != StatusUNSAT {
		t.Fatalf("got %v", r.Status)
	}
	if s.Stats().Restarts != 0 {
		t.Error("restarts recorded despite RestartBase=0")
	}
}

func TestReduceDBTriggers(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxLearnts = 50
	s := New(gen.Pigeonhole(9), opts)
	if r := s.Solve(Limits{}); r.Status != StatusUNSAT {
		t.Fatalf("got %v", r.Status)
	}
	if s.Stats().Deleted == 0 {
		t.Error("no learned clauses deleted despite tiny MaxLearnts")
	}
}

func TestSimplifyPrunesSatisfiedClauses(t *testing.T) {
	// Unit clause 1 satisfies (1,2) at level 0; pruning should remove it.
	f := cnf.NewFormula(3)
	f.Add(1).Add(1, 2).Add(2, 3)
	s := New(f, DefaultOptions())
	if r := s.Solve(Limits{}); r.Status != StatusSAT {
		t.Fatalf("got %v", r.Status)
	}
	if s.Stats().Simplified == 0 {
		t.Error("level-0 pruning removed nothing")
	}
}

func TestLearnedClauseExport(t *testing.T) {
	var exported []cnf.Clause
	opts := DefaultOptions()
	opts.ShareMaxLen = 10
	opts.OnLearn = func(c cnf.Clause, _ int) { exported = append(exported, c) }
	f := gen.Pigeonhole(7)
	s := New(f, opts)
	if r := s.Solve(Limits{}); r.Status != StatusUNSAT {
		t.Fatalf("got %v", r.Status)
	}
	if len(exported) == 0 {
		t.Fatal("nothing exported")
	}
	if int64(len(exported)) != s.Stats().Exported {
		t.Fatalf("exported %d but stats say %d", len(exported), s.Stats().Exported)
	}
	for _, c := range exported {
		if len(c) > 10 {
			t.Fatalf("exported clause longer than ShareMaxLen: %v", c)
		}
	}
	// Soundness: each exported clause is implied by the formula — adding
	// its negation must be unsatisfiable.
	for _, c := range exported[:min(len(exported), 20)] {
		g := f.Clone()
		for _, l := range c {
			g.AddClause(cnf.Clause{l.Not()})
		}
		if r, _ := brute.Solve(g, 0); r != brute.UNSAT {
			t.Fatalf("exported clause %v not implied by formula", c)
		}
	}
}

func TestShareMaxLenZeroExportsNothing(t *testing.T) {
	called := false
	opts := DefaultOptions()
	opts.OnLearn = func(_ cnf.Clause, _ int) { called = true }
	s := New(gen.Pigeonhole(6), opts)
	s.Solve(Limits{})
	if called {
		t.Error("OnLearn fired with ShareMaxLen=0")
	}
}

func TestAssume(t *testing.T) {
	f := cnf.NewFormula(3)
	f.Add(1, 2).Add(-1, 3)
	s := New(f, DefaultOptions())
	if err := s.Assume(cnf.NegLit(1)); err != nil { // var2 = false
		t.Fatal(err)
	}
	r := s.Solve(Limits{})
	if r.Status != StatusSAT {
		t.Fatalf("got %v", r.Status)
	}
	if r.Model.Value(1) != cnf.False {
		t.Fatal("assumption not honored in model")
	}
}

func TestAssumeConflict(t *testing.T) {
	f := cnf.NewFormula(2)
	f.Add(1)
	s := New(f, DefaultOptions())
	if err := s.Assume(cnf.NegLit(0)); err != nil {
		t.Fatal(err)
	}
	if r := s.Solve(Limits{}); r.Status != StatusUNSAT {
		t.Fatalf("conflicting assumption: %v", r.Status)
	}
}

func TestAssumeOutOfRange(t *testing.T) {
	s := New(cnf.NewFormula(2), DefaultOptions())
	if err := s.Assume(cnf.PosLit(5)); err == nil {
		t.Fatal("out-of-range assumption accepted")
	}
}

func TestAssumeAfterDecisionsRejected(t *testing.T) {
	f := gen.RandomKSAT(20, 60, 3, 1)
	s := New(f, DefaultOptions())
	s.Solve(Limits{MaxConflicts: 1})
	if s.DecisionLevel() > 0 {
		if err := s.Assume(cnf.PosLit(0)); err == nil {
			t.Fatal("Assume accepted above level 0")
		}
	}
}

func TestLevel0Lits(t *testing.T) {
	f := cnf.NewFormula(3)
	f.Add(1).Add(-1, 2)
	s := New(f, DefaultOptions())
	s.Solve(Limits{MaxConflicts: 1})
	lits := s.Level0Lits()
	if len(lits) < 2 {
		t.Fatalf("level-0 lits = %v", lits)
	}
	if lits[0] != cnf.PosLit(0) {
		t.Fatalf("first level-0 lit = %v", lits[0])
	}
}

func TestStatsProgress(t *testing.T) {
	s := New(gen.Pigeonhole(7), DefaultOptions())
	s.Solve(Limits{})
	st := s.Stats()
	if st.Decisions == 0 || st.Conflicts == 0 || st.Propagations == 0 ||
		st.Implications == 0 || st.Learned == 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
}

func TestMemoryBytesGrows(t *testing.T) {
	s := New(gen.Pigeonhole(8), DefaultOptions())
	before := s.MemoryBytes()
	s.Solve(Limits{MaxConflicts: 200})
	if s.MemoryBytes() <= before {
		t.Error("memory estimate did not grow with learned clauses")
	}
}

func TestStatusStrings(t *testing.T) {
	if StatusSAT.String() != "SAT" || StatusUNSAT.String() != "UNSAT" || StatusUnknown.String() != "UNKNOWN" {
		t.Error("Status strings wrong")
	}
	for r, want := range map[StopReason]string{
		ReasonSolved: "solved", ReasonConflictLimit: "conflict-limit",
		ReasonPropLimit: "propagation-limit", ReasonTimeout: "timeout",
		ReasonMemLimit: "memory-limit", ReasonStopped: "stopped",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
	if StopReason(99).String() == "" {
		t.Error("unknown reason should render")
	}
}

func TestLuby(t *testing.T) {
	want := []int{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(i + 1); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPhaseSavingCorrectness(t *testing.T) {
	opts := DefaultOptions()
	opts.PhaseSaving = true
	for seed := int64(200); seed < 225; seed++ {
		f := gen.RandomKSAT(10, 43, 3, seed)
		want, _ := brute.Solve(f, 0)
		got := solve(t, f, opts)
		if (want == brute.SAT) != (got.Status == StatusSAT) {
			t.Fatalf("seed %d: phase-saving run %v, brute %v", seed, got.Status, want)
		}
	}
	// And on a structured UNSAT instance.
	if r := solve(t, gen.Pigeonhole(8), opts); r.Status != StatusUNSAT {
		t.Fatalf("php8 with phase saving: %v", r.Status)
	}
}

func TestPhaseSavingChangesTrajectory(t *testing.T) {
	f := gen.RandomKSAT(150, 639, 3, 11)
	base := New(f, DefaultOptions())
	base.Solve(Limits{})
	ps := New(f, func() Options {
		o := DefaultOptions()
		o.PhaseSaving = true
		return o
	}())
	ps.Solve(Limits{})
	if base.Stats() == ps.Stats() {
		t.Skip("identical trajectories; phase saving made no difference here")
	}
}
