package solver_test

import (
	"fmt"

	"gridsat/internal/cnf"
	"gridsat/internal/gen"
	"gridsat/internal/solver"
)

// ExampleSolver demonstrates the basic solve loop on a small formula.
func ExampleSolver() {
	f := cnf.NewFormula(3)
	f.Add(1, 2).Add(-1, 3).Add(-2, -3)

	s := solver.New(f, solver.DefaultOptions())
	res := s.Solve(solver.Limits{})
	fmt.Println(res.Status)
	fmt.Println(f.Verify(res.Model) == nil)
	// Output:
	// SAT
	// true
}

// ExampleSolver_Assume shows guiding-path assumptions: the mechanism a
// GridSAT split recipient uses to adopt its half of the search space.
func ExampleSolver_Assume() {
	f := cnf.NewFormula(2)
	f.Add(1, 2)

	s := solver.New(f, solver.DefaultOptions())
	_ = s.Assume(cnf.NegLit(0)) // x1 = false, permanently
	res := s.Solve(solver.Limits{})
	fmt.Println(res.Status, res.Model.Value(1))
	// Output:
	// SAT true
}

// ExampleSolver_Split demonstrates the paper's Figure-2 transformation:
// the donor commits to its first decision and emits the complementary
// subproblem for another client.
func ExampleSolver_Split() {
	f := gen.Pigeonhole(7) // hard enough to pause mid-search

	donor := solver.New(f, solver.DefaultOptions())
	donor.Solve(solver.Limits{MaxConflicts: 5}) // run briefly
	if donor.Status() != solver.StatusUnknown || donor.DecisionLevel() == 0 {
		fmt.Println("solved before splitting")
		return
	}
	sub, err := donor.Split(10, 100)
	if err != nil {
		fmt.Println(err)
		return
	}
	recipient, _ := solver.NewFromSubproblem(f, sub, solver.DefaultOptions())
	a := donor.Solve(solver.Limits{})
	b := recipient.Solve(solver.Limits{})
	// The halves partition the search space; the pigeonhole principle is
	// unsatisfiable, so both halves are refuted.
	fmt.Println(a.Status, b.Status)
	// Output:
	// UNSAT UNSAT
}
