package solver

import (
	"testing"

	"gridsat/internal/cnf"
)

// figure1Formula reconstructs the paper's Figure-1 worked example: 9
// clauses over 14 variables where clause 9 is the unit (V14), clause 8 is
// (V10 ∨ ¬V13), and a level-6 decision V11 triggers an implication cascade
// whose FirstUIP is V5, yielding the learned clause
// ¬V10 ∨ ¬V7 ∨ V8 ∨ V9 ∨ ¬V5 and a non-chronological backjump to level 4
// (the level of ¬V9), after which V5 is implied false.
func figure1Formula() *cnf.Formula {
	f := cnf.NewFormula(14)
	f.Add(-11, 1)         // c1: V11 → V1
	f.Add(-1, 2)          // c2: V1 → V2
	f.Add(-11, -2, 5)     // c3: V11 ∧ V2 → V5  (all paths join at V5)
	f.Add(-5, -7, -10, 4) // c4: V5 ∧ V7 ∧ V10 → V4
	f.Add(-5, 8, 13)      // c5: V5 ∧ ¬V8 → V13
	f.Add(-4, 9, 3)       // c6: V4 ∧ ¬V9 → V3
	f.Add(-13, -3)        // c7: V13 → ¬V3 (conflict with c6)
	f.Add(10, -13)        // c8: the walkthrough's ¬V10 → ¬V13
	f.Add(14)             // c9: unit clause, V14 at level 0
	return f
}

// TestFigure1Walkthrough replays the start of §2.3: V14 is fixed at level 0
// by unit clause 9, and deciding V10=false at level 1 implies ¬V13 through
// clause 8 at the same level.
func TestFigure1Walkthrough(t *testing.T) {
	var checked bool
	opts := DefaultOptions()
	step := 0
	opts.DecisionOverride = func(s *Solver) cnf.Lit {
		switch step {
		case 0:
			step++
			// Before the first decision: V14 true at level 0.
			if s.Value(13) != cnf.True || s.LevelOf(13) != 0 {
				t.Errorf("V14 = %v at level %d, want true at 0", s.Value(13), s.LevelOf(13))
			}
			return cnf.NegLit(9) // decide V10 = false
		case 1:
			step++
			// After BCP of the level-1 decision: ¬V13 implied at level 1.
			if s.Value(12) != cnf.False || s.LevelOf(12) != 1 {
				t.Errorf("V13 = %v at level %d, want false at 1", s.Value(12), s.LevelOf(12))
			}
			checked = true
			return cnf.NoLit // fall back to VSIDS and finish the instance
		default:
			return cnf.NoLit
		}
	}
	s := New(figure1Formula(), opts)
	r := s.Solve(Limits{})
	if !checked {
		t.Fatal("walkthrough assertions never ran")
	}
	if r.Status != StatusSAT {
		t.Fatalf("figure-1 formula should be satisfiable, got %v", r.Status)
	}
}

// TestFigure1ConflictAnalysis replays the figure's conflict-analysis
// scenario: decisions V10, V7, ¬V8, ¬V9, V6, V11 (levels 1–6). The V11
// decision cascades into the V3 conflict; FirstUIP analysis must learn
// exactly {¬V10, ¬V7, V8, V9, ¬V5}, backjump to level 4, and imply V5=false
// there.
func TestFigure1ConflictAnalysis(t *testing.T) {
	script := []cnf.Lit{
		cnf.PosLit(9),  // L1: V10 = true
		cnf.PosLit(6),  // L2: V7 = true
		cnf.NegLit(7),  // L3: V8 = false
		cnf.NegLit(8),  // L4: V9 = false
		cnf.PosLit(5),  // L5: V6 = true (extra decision, not in the clause)
		cnf.PosLit(10), // L6: V11 = true → cascade → conflict
	}
	i := 0
	opts := DefaultOptions()
	opts.DecisionOverride = func(s *Solver) cnf.Lit {
		if i < len(script) {
			l := script[i]
			i++
			return l
		}
		return cnf.NoLit
	}
	s := New(figure1Formula(), opts)
	r := s.Solve(Limits{MaxConflicts: 1})
	if r.Reason != ReasonConflictLimit {
		t.Fatalf("expected to pause after the scripted conflict, got %v/%v", r.Status, r.Reason)
	}
	if got := s.Stats().Conflicts; got != 1 {
		t.Fatalf("conflicts = %d, want 1", got)
	}

	// The learned clause of the paper: ~V10 + ~V7 + V8 + V9 + ~V5.
	want := map[cnf.Lit]bool{
		cnf.NegLit(9): true, // ¬V10
		cnf.NegLit(6): true, // ¬V7
		cnf.PosLit(7): true, // V8
		cnf.PosLit(8): true, // V9
		cnf.NegLit(4): true, // ¬V5 (the FirstUIP literal)
	}
	learnt := s.LastLearnt()
	if len(learnt) != len(want) {
		t.Fatalf("learned clause %v, want literals %v", learnt, want)
	}
	for _, l := range learnt {
		if !want[l] {
			t.Fatalf("learned clause %v contains unexpected literal %v", learnt, l)
		}
	}
	if learnt[0] != cnf.NegLit(4) {
		t.Errorf("asserting literal = %v, want ¬V5", learnt[0])
	}

	// Non-chronological backjump to level 4 (the level of ¬V9), skipping
	// the V6 decision at level 5.
	if s.DecisionLevel() != 4 {
		t.Fatalf("decision level after backjump = %d, want 4", s.DecisionLevel())
	}
	// The FirstUIP variable V5 is implied false at the backjump level.
	if s.Value(4) != cnf.False {
		t.Fatalf("V5 = %v after backjump, want false", s.Value(4))
	}
	if s.LevelOf(4) != 4 {
		t.Fatalf("V5 implied at level %d, want 4", s.LevelOf(4))
	}
	// The level-5 decision V6 was undone by the backjump.
	if s.Value(5) != cnf.Undef {
		t.Fatalf("V6 = %v, want undef after non-chronological backjump", s.Value(5))
	}
	// Reason-side decisions V10, V7, ¬V8, ¬V9 are still assigned.
	for v, val := range map[cnf.Var]cnf.LBool{9: cnf.True, 6: cnf.True, 7: cnf.False, 8: cnf.False} {
		if s.Value(v) != val {
			t.Errorf("V%d = %v, want %v", v.DIMACS(), s.Value(v), val)
		}
	}
}

// TestFigure1FullSolve confirms the worked-example formula is satisfiable
// when search continues past the analyzed conflict.
func TestFigure1FullSolve(t *testing.T) {
	f := figure1Formula()
	s := New(f, DefaultOptions())
	r := s.Solve(Limits{})
	if r.Status != StatusSAT {
		t.Fatalf("got %v", r.Status)
	}
	if err := f.Verify(r.Model); err != nil {
		t.Fatal(err)
	}
}
