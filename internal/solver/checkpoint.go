package solver

import (
	"encoding/gob"
	"errors"
	"io"

	"gridsat/internal/cnf"
)

// CheckpointKind selects between the paper's two checkpoint flavors (§3.4).
type CheckpointKind int

// Checkpoint kinds.
const (
	// LightCheckpoint records only the level-0 assignments. Small; the
	// paper updates it whenever level 0 grows.
	LightCheckpoint CheckpointKind = iota
	// HeavyCheckpoint additionally records the learned clauses (the paper
	// estimates ~0.5 GB per client at full scale).
	HeavyCheckpoint
)

// Checkpoint is a restartable snapshot of a client's solver progress. The
// initial clauses are not included: they are reconstructed from the problem
// file, exactly as the paper prescribes.
type Checkpoint struct {
	Kind    CheckpointKind
	NumVars int
	// Level0 is the permanent assignment prefix.
	Level0 []cnf.Lit
	// Learnts is populated for heavy checkpoints only.
	Learnts []cnf.Clause
	// Depth is the solver's guiding-path depth at checkpoint time, so a
	// restored subproblem keeps its 2^-d weight in the progress estimate.
	Depth int
}

// Checkpoint captures the solver's current progress. For a heavy
// checkpoint, learntMaxCount caps the clauses saved (0 = all).
func (s *Solver) Checkpoint(kind CheckpointKind, learntMaxCount int) *Checkpoint {
	cp := &Checkpoint{
		Kind:    kind,
		NumVars: s.nVars,
		Level0:  s.Level0Lits(),
		Depth:   s.pathDepth,
	}
	if kind == HeavyCheckpoint {
		for _, r := range s.learnts {
			if s.ca.Deleted(r) {
				continue
			}
			cp.Learnts = append(cp.Learnts, s.clauseAt(r))
			if learntMaxCount > 0 && len(cp.Learnts) >= learntMaxCount {
				break
			}
		}
	}
	return cp
}

// Save writes the checkpoint in a self-describing binary form (gob). The
// paper stores light checkpoints whenever level 0 grows and heavy ones
// periodically; both round-trip through Save/LoadCheckpoint.
func (cp *Checkpoint) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(cp)
}

// LoadCheckpoint reads a checkpoint written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, err
	}
	return &cp, nil
}

// Restore rebuilds a solver from the problem formula and a checkpoint.
func Restore(base *cnf.Formula, cp *Checkpoint, opts Options) (*Solver, error) {
	if base.NumVars != cp.NumVars {
		return nil, errors.New("solver: checkpoint variable count mismatch")
	}
	s := New(base, opts)
	s.pathDepth = cp.Depth
	if s.status != StatusUnknown {
		return s, nil
	}
	if err := s.Assume(cp.Level0...); err != nil {
		return nil, err
	}
	if err := s.ImportClausesLocal(cp.Learnts); err != nil {
		return nil, err
	}
	return s, nil
}
