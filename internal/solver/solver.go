// Package solver implements the zChaff-style CDCL engine at the core of
// GridSAT, exactly as the paper describes it (§2): DPLL search with
// two-watched-literal Boolean constraint propagation, VSIDS decision
// heuristics (per-literal decaying counters), FirstUIP conflict analysis
// with clause learning, and non-chronological backjumping.
//
// On top of the sequential engine the package provides the hooks GridSAT's
// distributed layer needs (§3): level-0 clause pruning, export of short
// learned clauses, batched import of clauses from other clients (merged
// only when the solver is back at the first decision level), the Figure-2
// search-space split, run limits (conflicts, propagations, wall time,
// memory budget), and light/heavy checkpoints (§3.4).
package solver

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gridsat/internal/cnf"
)

// Status is the satisfiability status of a (sub)problem.
type Status int

// Solve statuses.
const (
	StatusUnknown Status = iota // not yet determined
	StatusSAT
	StatusUNSAT
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusSAT:
		return "SAT"
	case StatusUNSAT:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// StopReason explains why Solve returned.
type StopReason int

// Reasons Solve can return.
const (
	ReasonSolved        StopReason = iota // Status is SAT or UNSAT
	ReasonConflictLimit                   // Limits.MaxConflicts reached
	ReasonPropLimit                       // Limits.MaxPropagations reached
	ReasonTimeout                         // Limits.MaxTime elapsed
	ReasonMemLimit                        // Limits.MaxMemoryBytes exceeded
	ReasonStopped                         // Stop() was called
)

// String implements fmt.Stringer.
func (r StopReason) String() string {
	switch r {
	case ReasonSolved:
		return "solved"
	case ReasonConflictLimit:
		return "conflict-limit"
	case ReasonPropLimit:
		return "propagation-limit"
	case ReasonTimeout:
		return "timeout"
	case ReasonMemLimit:
		return "memory-limit"
	case ReasonStopped:
		return "stopped"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// Result is the outcome of a Solve call.
type Result struct {
	Status Status
	Reason StopReason
	// Model holds a satisfying assignment when Status is StatusSAT.
	Model cnf.Assignment
}

// Limits bounds a Solve call. Zero fields mean "unlimited".
type Limits struct {
	MaxConflicts    int64
	MaxPropagations int64
	MaxTime         time.Duration
	// MaxMemoryBytes bounds the solver's estimated clause-database size —
	// the budget a GridSAT client derives from its host's free memory
	// (the paper's 60%-of-free-memory rule).
	MaxMemoryBytes int64
}

// Options configures the engine. The zero value is usable; DefaultOptions
// supplies the tuning the benchmarks use.
type Options struct {
	// DecayInterval is the number of conflicts between VSIDS decays
	// (Chaff divides all literal counters by 2 periodically).
	DecayInterval int
	// RestartBase is the base interval of the restart sequence in
	// conflicts; 0 disables restarts regardless of RestartPolicy.
	RestartBase int
	// RestartPolicy selects how the restart interval evolves between
	// restarts (the portfolio diversification axis HordeSat exploits).
	// The zero value, RestartLuby, reproduces the historical behavior.
	RestartPolicy RestartPolicy
	// ShareMaxLen is the maximum length of learned clauses passed to
	// OnLearn for distribution to other clients (the paper uses 10 and 3).
	// 0 disables sharing.
	ShareMaxLen int
	// OnLearn, when set, receives a copy of every learned clause of length
	// at most ShareMaxLen together with its LBD (glue) at learn time, so
	// share buffers can rank exports by quality. Called on the solving
	// goroutine.
	OnLearn func(c cnf.Clause, lbd int)
	// PruneLevel0 enables removal of clauses satisfied at decision level 0
	// (the paper's "inconsequential clause" pruning, §3.1). The paper also
	// backports this to its sequential baseline; it defaults to on.
	PruneLevel0 bool
	// ImportMergeConflicts forces a restart to merge imported clauses when
	// the import buffer has been non-empty for this many conflicts.
	// 0 means imports merge only when search naturally reaches level 0.
	ImportMergeConflicts int
	// MaxLearnts is the initial learned-clause cap before database
	// reduction; 0 derives it from the problem size.
	MaxLearnts int
	// MinimizeLearnts enables recursive learned-clause minimization, a
	// post-Chaff refinement (the 2003 engine did not minimize). Off by
	// default for fidelity; the ablation benchmark quantifies its effect.
	MinimizeLearnts bool
	// PhaseSaving makes decisions reuse the variable's last assigned
	// polarity (progress saving, another post-Chaff refinement). Off by
	// default for 2003 fidelity.
	PhaseSaving bool
	// Seed diversifies the search deterministically: a non-zero seed
	// randomizes each variable's initial decision polarity (and feeds
	// PhaseRand). Seed 0 is bit-identical to the historical engine —
	// the Figure-1 determinism guard depends on that. Same seed, same run.
	Seed int64
	// Phase selects the decision-polarity policy. The zero value,
	// PhaseVSIDS, keeps the historical behavior (the VSIDS heap's literal
	// polarity, perturbed per-variable when Seed is non-zero).
	Phase PhaseMode
	// DecisionOverride, when non-nil, is consulted before VSIDS on each
	// decision; returning cnf.NoLit falls through to VSIDS. Used by tests
	// to replay the paper's worked examples.
	DecisionOverride func(s *Solver) cnf.Lit
	// Instrument, when non-nil, receives low-level engine events
	// (decisions, conflicts, learned clauses, restarts, splits). The paper
	// ran its experiments with instrumentation disabled, noting it can
	// cost up to 50%; leave nil for production runs.
	Instrument func(Event)
	// Counters, when non-nil, receives cheap always-on metric increments
	// (atomic adds; propagations batched per BCP pass). Safe to leave on
	// in production — see internal/bench's instrumentation ablation.
	Counters *Counters
	// OnLemma, when non-nil, receives every learned clause in derivation
	// order for RUP/DRUP proof logging (see internal/proof). zChaff's
	// companion zVerify checked such traces; the same discipline lets an
	// independent checker certify this engine's UNSAT answers. Sequential
	// runs only: imported clauses from other clients would break the local
	// derivation order.
	OnLemma func(cnf.Clause)
}

// EventKind tags an instrumentation event.
type EventKind int

// Instrumentation event kinds.
const (
	EvDecision EventKind = iota
	EvConflict
	EvLearn
	EvRestart
	EvSplit
	// EvImply fires once per BCP implication — the fine-grained
	// telemetry that made the paper's EveryWare channel cost up to 50%
	// of solver throughput (§4.1). Only emitted when Instrument is set;
	// the cheap Counters path batches the same information instead.
	EvImply
	// EvImportUse fires the first time an imported (peer-origin) clause
	// participates in the search — its first BCP implication or conflict
	// resolution. At most one event per imported clause, so the stream
	// stays control-plane sized even on share-heavy runs.
	EvImportUse

	// EvKindCount is not an event kind: it is the number of kinds, for
	// sizing per-kind tables (e.g. trace.Recorder's counters). Add new
	// kinds ABOVE this sentinel and give them a String case, or the
	// guard tests in internal/trace will fail.
	EvKindCount
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvDecision:
		return "decision"
	case EvConflict:
		return "conflict"
	case EvLearn:
		return "learn"
	case EvRestart:
		return "restart"
	case EvSplit:
		return "split"
	case EvImply:
		return "imply"
	case EvImportUse:
		return "import-use"
	}
	return "unknown"
}

// Event is one instrumentation record.
type Event struct {
	Kind EventKind
	// Lit is the decision or asserting literal, when applicable.
	Lit cnf.Lit
	// Level is the decision level at the event.
	Level int
	// ClauseLen is the learned-clause length for EvLearn.
	ClauseLen int
}

// RestartPolicy selects a restart-interval schedule. Together with
// PhaseMode and Seed it forms the portfolio diversification axes: workers
// on the same subproblem explore it in genuinely different orders.
type RestartPolicy int

// Restart schedules.
const (
	// RestartLuby is the Luby series scaled by RestartBase (the default,
	// and the only schedule the engine had before portfolio clients).
	RestartLuby RestartPolicy = iota
	// RestartNone disables restarts even with a non-zero RestartBase.
	RestartNone
	// RestartFixed restarts every RestartBase conflicts.
	RestartFixed
	// RestartGeometric doubles the interval after every restart,
	// starting from RestartBase.
	RestartGeometric
)

// String implements fmt.Stringer.
func (p RestartPolicy) String() string {
	switch p {
	case RestartLuby:
		return "luby"
	case RestartNone:
		return "none"
	case RestartFixed:
		return "fixed"
	case RestartGeometric:
		return "geometric"
	}
	return fmt.Sprintf("RestartPolicy(%d)", int(p))
}

// PhaseMode selects the polarity given to a VSIDS-chosen decision
// variable (before PhaseSaving, which still wins when enabled).
type PhaseMode int

// Phase policies.
const (
	// PhaseVSIDS keeps the polarity the VSIDS heap produced, flipped
	// per-variable by the Seed-derived mask when Seed is non-zero.
	PhaseVSIDS PhaseMode = iota
	// PhasePos always decides the positive literal.
	PhasePos
	// PhaseNeg always decides the negative literal.
	PhaseNeg
	// PhaseRand fixes each variable's polarity from the Seed-derived
	// mask (deterministic per seed, ~50/50 across variables).
	PhaseRand
)

// String implements fmt.Stringer.
func (m PhaseMode) String() string {
	switch m {
	case PhaseVSIDS:
		return "vsids"
	case PhasePos:
		return "pos"
	case PhaseNeg:
		return "neg"
	case PhaseRand:
		return "rand"
	}
	return fmt.Sprintf("PhaseMode(%d)", int(m))
}

// DefaultOptions returns the tuning used throughout the benchmarks.
func DefaultOptions() Options {
	return Options{
		DecayInterval:        256,
		RestartBase:          512,
		PruneLevel0:          true,
		ImportMergeConflicts: 2048,
	}
}

// Clauses live in a contiguous arena (see arena.go) and are addressed by
// ClauseRef. The per-clause flags (learnt, local — paper §3.2's
// "only valid for the current client" marking — and deleted) are header
// bits; watchers carry a blocker literal so BCP can skip satisfied
// clauses without touching clause memory.
type watcher struct {
	ref ClauseRef
	// blocker is some other literal of the clause; if it is already true
	// the clause is satisfied and need not be inspected.
	blocker cnf.Lit
}

// Solver is a single CDCL engine instance. It is not safe for concurrent
// use except for Stop, ImportClause, ImportClauses, and the read-only
// stats/memory accessors, which may be called from other goroutines.
type Solver struct {
	opts Options

	nVars   int
	ca      *Arena      // all clause storage
	clauses []ClauseRef // problem clauses (and imported non-learnt merges)
	learnts []ClauseRef

	watches [][]watcher // indexed by Lit

	assigns  cnf.Assignment
	level    []int32
	reason   []ClauseRef
	trail    []cnf.Lit
	trailLim []int
	qhead    int

	// VSIDS: per-literal activities with a max-heap (lazy removal).
	activity []float64
	heap     litHeap
	actInc   float64

	maxLearnts  int
	lastLearnt  cnf.Clause
	model       cnf.Assignment
	status      Status
	emptyClause bool // an empty clause was added: trivially UNSAT

	// Shared-clause import buffer (paper §3.2): merged at level 0.
	importMu  sync.Mutex
	importBuf []pendingImport

	stop atomic.Bool

	rng   *rand.Rand
	stats Stats

	conflictsSinceRestart int
	restartCount          int
	importWaitConflicts   int
	lastSimplifyTrail     int
	seen                  []bool // scratch for analyze
	// lbdSeen/lbdTick stamp decision levels during LBD computation, so
	// counting distinct levels among a learned clause's literals costs one
	// pass and no allocation per conflict.
	lbdSeen []int32
	lbdTick int32
	// tainted[v] marks variables whose current assignment depends on the
	// guiding-path assumptions rather than the base formula alone.
	tainted    []bool
	numTainted int
	// pathDepth is this solver's guiding-path depth: the number of split
	// decisions separating its subspace from the root problem. A refuted
	// subproblem at depth d closes 2^-d of the original search space, the
	// unit of the cluster progress estimate. 0 for the root problem;
	// installed by NewFromSubproblem and bumped by Split.
	pathDepth int
	// savedPhase remembers each variable's last polarity for PhaseSaving.
	savedPhase []cnf.LBool
	// phaseFlip is the Seed-derived per-variable polarity mask consulted
	// by decide (nil when Seed is 0 and Phase does not need it, keeping
	// the seedless engine bit-identical to the historical one).
	phaseFlip []bool
}

// New builds a solver over f's clauses with the given options.
// The formula is copied; the solver never mutates f.
func New(f *cnf.Formula, opts Options) *Solver {
	words := hdrWords * len(f.Clauses)
	for _, c := range f.Clauses {
		words += len(c)
	}
	s := &Solver{
		opts:     opts,
		nVars:    f.NumVars,
		ca:       NewArena(words + words/2),
		assigns:  cnf.NewAssignment(f.NumVars),
		level:    make([]int32, f.NumVars),
		reason:   make([]ClauseRef, f.NumVars),
		watches:  make([][]watcher, 2*f.NumVars),
		activity: make([]float64, 2*f.NumVars),
		actInc:   1,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		seen:     make([]bool, f.NumVars),
		tainted:  make([]bool, f.NumVars),
		lbdSeen:  make([]int32, f.NumVars+1),
	}
	for v := range s.reason {
		s.reason[v] = CRefUndef
	}
	if opts.PhaseSaving {
		s.savedPhase = make([]cnf.LBool, f.NumVars)
	}
	if opts.Seed != 0 || opts.Phase == PhaseRand {
		s.phaseFlip = make([]bool, f.NumVars)
		for v := range s.phaseFlip {
			s.phaseFlip[v] = s.rng.Intn(2) == 1
		}
	}
	s.heap = newLitHeap(&s.activity)
	for _, c := range f.Clauses {
		s.addProblemClause(c)
	}
	if opts.MaxLearnts > 0 {
		s.maxLearnts = opts.MaxLearnts
	} else {
		s.maxLearnts = len(s.clauses)/3 + 2000
	}
	// Seed VSIDS: Chaff initializes counters from occurrences in the
	// initial clause database.
	for _, r := range s.clauses {
		for i, n := 0, s.ca.Size(r); i < n; i++ {
			s.activity[s.ca.Lit(r, i)]++
		}
	}
	for l := 0; l < 2*s.nVars; l++ {
		s.heap.push(cnf.Lit(l))
	}
	return s
}

// addProblemClause normalizes and installs an original clause.
func (s *Solver) addProblemClause(c cnf.Clause) {
	norm, taut := c.Clone().Normalize()
	if taut {
		return
	}
	switch len(norm) {
	case 0:
		s.emptyClause = true
		s.status = StatusUNSAT
		return
	case 1:
		// Unit problem clause: a level-0 fact (the paper's example puts
		// V14 from clause 9 at level 0). Conflicts surface in Solve.
		s.pendingUnit(norm[0])
		return
	}
	r := s.ca.Alloc(norm, false, false, 0)
	s.clauses = append(s.clauses, r)
	s.attach(r)
}

// pendingUnit enqueues a level-0 fact; contradictions mark UNSAT.
func (s *Solver) pendingUnit(l cnf.Lit) {
	switch s.assigns.LitValue(l) {
	case cnf.True:
		return
	case cnf.False:
		s.status = StatusUNSAT
		return
	}
	s.uncheckedEnqueue(l, CRefUndef)
}

func (s *Solver) attach(r ClauseRef) {
	l0, l1 := s.ca.Lit(r, 0), s.ca.Lit(r, 1)
	s.watches[l0.Not()] = append(s.watches[l0.Not()], watcher{ref: r, blocker: l1})
	s.watches[l1.Not()] = append(s.watches[l1.Not()], watcher{ref: r, blocker: l0})
}

// detach is lazy: the clause is flagged and watchers drop it when visited;
// the arena reclaims the space at the next compaction.
func (s *Solver) detach(r ClauseRef) {
	s.ca.Free(r)
}

// NumVars returns the variable count.
func (s *Solver) NumVars() int { return s.nVars }

// DecisionLevel returns the current decision level (0 = no decisions).
func (s *Solver) DecisionLevel() int { return len(s.trailLim) }

// Value returns the current value of v.
func (s *Solver) Value(v cnf.Var) cnf.LBool { return s.assigns.Value(v) }

// LevelOf returns the decision level at which v was assigned; meaningless
// for unassigned variables.
func (s *Solver) LevelOf(v cnf.Var) int { return int(s.level[v]) }

// Status returns the determined status, if any.
func (s *Solver) Status() Status { return s.status }

// Model returns the satisfying assignment found by a SAT result.
func (s *Solver) Model() cnf.Assignment { return s.model.Clone() }

// LastLearnt returns a copy of the most recently learned clause.
func (s *Solver) LastLearnt() cnf.Clause { return s.lastLearnt.Clone() }

// NumLearnts returns the live learned-clause count.
func (s *Solver) NumLearnts() int {
	n := 0
	for _, r := range s.learnts {
		if !s.ca.Deleted(r) {
			n++
		}
	}
	return n
}

// MemoryBytes returns the solver's memory footprint in bytes: the exact
// live clause-arena size (see ArenaBytes) plus the fixed per-variable
// overhead of the trail/watch/activity structures. GridSAT clients compare
// it against their host memory budget to decide when to request a split
// (paper §3.3). Safe to call concurrently with Solve.
func (s *Solver) MemoryBytes() int64 {
	return s.ca.LiveBytes() + int64(s.nVars)*40
}

// Stop asynchronously interrupts a running Solve; it returns with
// ReasonStopped at the next decision boundary. Safe from any goroutine.
func (s *Solver) Stop() { s.stop.Store(true) }

// SetOnLearn replaces the learned-clause export callback. Must only be
// called while Solve is not running (e.g. between work slices).
func (s *Solver) SetOnLearn(fn func(c cnf.Clause, lbd int)) { s.opts.OnLearn = fn }

// Assume enqueues assumption literals at decision level 0 — the mechanism
// by which a split recipient adopts its subproblem's guiding assignments.
// It must be called before Solve. A conflicting assumption set marks the
// subproblem UNSAT.
func (s *Solver) Assume(lits ...cnf.Lit) error {
	if s.DecisionLevel() != 0 {
		return errors.New("solver: Assume requires decision level 0")
	}
	for _, l := range lits {
		if int(l.Var()) >= s.nVars {
			return fmt.Errorf("solver: assumption %v out of range", l)
		}
		switch s.assigns.LitValue(l) {
		case cnf.True:
			continue
		case cnf.False:
			s.status = StatusUNSAT
			return nil
		}
		s.taint(l.Var())
		s.uncheckedEnqueue(l, CRefUndef)
	}
	return nil
}

// taint marks v's assignment as assumption-dependent.
func (s *Solver) taint(v cnf.Var) {
	if !s.tainted[v] {
		s.tainted[v] = true
		s.numTainted++
	}
}

// Level0Lits returns the literals currently fixed at decision level 0 —
// the content of a light checkpoint and the assignment prefix shipped in a
// split message.
func (s *Solver) Level0Lits() []cnf.Lit {
	end := len(s.trail)
	if len(s.trailLim) > 0 {
		end = s.trailLim[0]
	}
	out := make([]cnf.Lit, end)
	copy(out, s.trail[:end])
	return out
}

// uncheckedEnqueue records a new assignment with its antecedent clause.
func (s *Solver) uncheckedEnqueue(l cnf.Lit, from ClauseRef) {
	s.assigns.Set(l)
	s.level[l.Var()] = int32(s.DecisionLevel())
	s.reason[l.Var()] = from
	s.trail = append(s.trail, l)
	// Taint flows through implications: an assignment forced by a local
	// clause, or by any clause containing a tainted literal, itself
	// depends on the assumptions. Skipped entirely while no taint exists,
	// so the sequential baseline pays nothing.
	if from != CRefUndef && (s.numTainted > 0 || s.ca.Local(from)) {
		if s.ca.Local(from) {
			s.taint(l.Var())
			return
		}
		for i, n := 0, s.ca.Size(from); i < n; i++ {
			if s.tainted[s.ca.Lit(from, i).Var()] {
				s.taint(l.Var())
				return
			}
		}
	}
}

// propagate runs BCP over the watch lists; it returns the conflicting
// clause's reference or CRefUndef. This is the >90%-of-runtime hot path
// the paper describes; clause headers and literals are read straight from
// the contiguous arena slab, so a clause visit touches one cache line for
// short clauses.
func (s *Solver) propagate() ClauseRef {
	popped := int64(0)
	data := s.ca.data // no allocation happens during propagation
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true; visit watchers of p's complement
		s.qhead++
		s.stats.Propagations++
		popped++
		ws := s.watches[p]
		kept := ws[:0]
		confl := CRefUndef
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			h := data[w.ref]
			if h&flagDeleted != 0 {
				continue // lazily drop watchers of deleted clauses
			}
			if s.assigns.LitValue(w.blocker) == cnf.True {
				kept = append(kept, w)
				continue
			}
			base := int(w.ref) + hdrWords
			n := int(h >> flagBits & sizeMask)
			falseLit := p.Not()
			// Ensure the false literal is at position 1.
			if cnf.Lit(data[base]) == falseLit {
				data[base], data[base+1] = data[base+1], data[base]
			}
			first := cnf.Lit(data[base])
			if first != w.blocker && s.assigns.LitValue(first) == cnf.True {
				kept = append(kept, watcher{ref: w.ref, blocker: first})
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < n; k++ {
				if s.assigns.LitValue(cnf.Lit(data[base+k])) != cnf.False {
					data[base+1], data[base+k] = data[base+k], data[base+1]
					nw := cnf.Lit(data[base+1]).Not()
					s.watches[nw] = append(s.watches[nw], watcher{ref: w.ref, blocker: first})
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting on first.
			kept = append(kept, watcher{ref: w.ref, blocker: first})
			if s.assigns.LitValue(first) == cnf.False {
				// Conflict: keep remaining watchers and bail out.
				for i++; i < len(ws); i++ {
					if data[ws[i].ref]&flagDeleted == 0 {
						kept = append(kept, ws[i])
					}
				}
				confl = w.ref
				s.qhead = len(s.trail)
				break
			}
			s.stats.Implications++
			if h&flagImported != 0 {
				// Import-usefulness: the reason clause came from a peer. The
				// header word h is already loaded, so this is one bit-test on
				// the hot path; first use flips the header bit so the event
				// fires at most once per clause.
				s.stats.ImportedImplications++
				if h&flagImportUsed == 0 {
					data[w.ref] = h | flagImportUsed
					s.stats.ImportedUseful++
					if s.opts.Instrument != nil {
						s.opts.Instrument(Event{Kind: EvImportUse, Lit: first, Level: s.DecisionLevel(), ClauseLen: n})
					}
				}
			}
			if s.opts.Instrument != nil {
				s.opts.Instrument(Event{Kind: EvImply, Lit: first, Level: s.DecisionLevel()})
			}
			s.uncheckedEnqueue(first, w.ref)
		}
		s.watches[p] = kept
		if confl != CRefUndef {
			if c := s.opts.Counters; c != nil {
				c.Propagations.Add(popped)
			}
			return confl
		}
	}
	if c := s.opts.Counters; c != nil {
		c.Propagations.Add(popped)
	}
	return CRefUndef
}

// analyze performs FirstUIP conflict analysis (paper §2.2–2.3): walk the
// implication graph backward from the conflict, resolving on literals of
// the current decision level until a single one — the first unique
// implication point — remains. Returns the learned clause (asserting
// literal first), the backjump level (the maximum level among the other
// literals), the distinct guiding-path (tainted level-0) literals the
// derivation rests on, and whether a local-only clause was used.
//
// The deps list is how clause sharing stays sound under the paper's §3.2
// constraint: the short clause stored locally is valid only under this
// client's assumptions, but appending deps yields a clause implied by the
// base formula alone, which is what gets shared globally.
func (s *Solver) analyze(confl ClauseRef) (learnt cnf.Clause, back int, deps []cnf.Lit, localUsed bool, lbd int) {
	learnt = make(cnf.Clause, 1) // learnt[0] reserved for the UIP literal
	counter := 0
	p := cnf.NoLit
	idx := len(s.trail) - 1
	cur := int32(s.DecisionLevel())

	ca := s.ca
	c := confl
	for {
		if ca.Local(c) {
			localUsed = true // derivation rests on an assumption-only clause
		}
		if ca.Imported(c) {
			// Import-usefulness: a peer-origin clause takes part in this
			// conflict derivation.
			s.stats.ImportedResolutions++
			if !ca.ImportUsed(c) {
				ca.markImportUsed(c)
				s.stats.ImportedUseful++
				if s.opts.Instrument != nil {
					s.opts.Instrument(Event{Kind: EvImportUse, Level: int(cur), ClauseLen: ca.Size(c)})
				}
			}
		}
		for k, n := 0, ca.Size(c); k < n; k++ {
			q := ca.Lit(c, k)
			if q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] {
				continue
			}
			if s.level[v] == 0 {
				if s.tainted[v] {
					// The derivation depends on this guiding-path literal.
					s.seen[v] = true
					deps = append(deps, q)
				}
				continue
			}
			s.seen[v] = true
			s.bump(q)
			if s.level[v] >= cur {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select the next trail literal to resolve on.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[p.Var()]
		idx--
	}
	learnt[0] = p.Not()
	if s.opts.MinimizeLearnts {
		learnt = s.minimize(learnt, &deps)
	}
	for _, q := range learnt[1:] {
		s.seen[q.Var()] = false
	}
	for _, q := range deps {
		s.seen[q.Var()] = false
	}
	// Backjump to the highest level among the non-asserting literals.
	back = 0
	for i := 1; i < len(learnt); i++ {
		if l := int(s.level[learnt[i].Var()]); l > back {
			back = l
		}
	}
	// Chaff's VSIDS also counts the learned clause's literals (it is a new
	// clause entering the database); bump the asserting literal too.
	s.bump(learnt[0])
	// The LBD must be measured here, while every literal of the learned
	// clause is still assigned — the caller backjumps before record.
	lbd = s.computeLBD(learnt)
	return learnt, back, deps, localUsed, lbd
}

// computeLBD counts the distinct decision levels among the clause's
// literals — the literal-blocks distance ("glue"). Lower is better: a
// glue-2 clause links exactly two decision levels and tends to stay useful,
// which is why exports are ranked LBD-first. Only valid while all literals
// are assigned.
func (s *Solver) computeLBD(c cnf.Clause) int {
	s.lbdTick++
	n := 0
	for _, l := range c {
		lv := s.level[l.Var()]
		if s.lbdSeen[lv] != s.lbdTick {
			s.lbdSeen[lv] = s.lbdTick
			n++
		}
	}
	return n
}

// minimize removes redundant literals from a learned clause: a literal is
// redundant when its reason clause's literals are all already in the
// clause (or recursively redundant). Guiding-path dependencies uncovered
// while chasing reasons are added to deps so shared clauses stay globally
// valid. Requires seen[] to be set exactly for learnt[1:] and deps, which
// analyze guarantees; removed literals' seen bits are cleared here.
func (s *Solver) minimize(learnt cnf.Clause, deps *[]cnf.Lit) cnf.Clause {
	w := 1
	var removed []cnf.Var
	for i := 1; i < len(learnt); i++ {
		q := learnt[i]
		if s.reason[q.Var()] == CRefUndef || !s.litRedundant(q, deps) {
			learnt[w] = q
			w++
		} else {
			// Keep the seen bit until every literal is checked: a removed
			// literal is implied by the rest, so later redundancy checks
			// may soundly treat it as still present.
			removed = append(removed, q.Var())
		}
	}
	for _, v := range removed {
		s.seen[v] = false
	}
	return learnt[:w]
}

// litRedundant reports whether q's falsity is implied by the other clause
// literals, walking the implication graph. New tainted level-0 literals
// found on the way are appended to deps (and marked seen).
func (s *Solver) litRedundant(q cnf.Lit, deps *[]cnf.Lit) bool {
	stack := []cnf.Lit{q}
	var marked []cnf.Var // vars temporarily marked during this check
	var pendingDeps []cnf.Lit
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := s.reason[l.Var()]
		if c == CRefUndef {
			// Walked back to a decision: q is not redundant. Roll back.
			for _, v := range marked {
				s.seen[v] = false
			}
			return false
		}
		for k, n := 0, s.ca.Size(c); k < n; k++ {
			r := s.ca.Lit(c, k)
			v := r.Var()
			if v == l.Var() || s.seen[v] {
				continue
			}
			if s.level[v] == 0 {
				if s.tainted[v] {
					s.seen[v] = true
					marked = append(marked, v) // dedup within this check
					pendingDeps = append(pendingDeps, r)
				}
				continue
			}
			if s.reason[v] == CRefUndef {
				for _, mv := range marked {
					s.seen[mv] = false
				}
				return false
			}
			s.seen[v] = true
			marked = append(marked, v)
			stack = append(stack, r)
		}
	}
	// Redundant: keep dep marks (they are real dependencies of the clause)
	// but clear the non-dep interior marks.
	depVars := map[cnf.Var]bool{}
	for _, d := range pendingDeps {
		depVars[d.Var()] = true
	}
	for _, v := range marked {
		if !depVars[v] {
			s.seen[v] = false
		}
	}
	*deps = append(*deps, pendingDeps...)
	return true
}

// backtrackTo undoes all assignments above the given decision level.
func (s *Solver) backtrackTo(level int) {
	if s.DecisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		if s.savedPhase != nil {
			s.savedPhase[v] = s.assigns[v]
		}
		s.assigns.Unset(v)
		s.reason[v] = CRefUndef
		if s.tainted[v] {
			s.tainted[v] = false
			s.numTainted--
		}
		s.heap.push(cnf.PosLit(v))
		s.heap.push(cnf.NegLit(v))
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	if s.qhead > bound {
		s.qhead = bound
	}
}

// record attaches a learned clause and enqueues its asserting literal.
// The caller must already have backjumped to the clause's assertion level.
//
// The stored clause omits the guiding-path dependencies (deps) — locally
// they are permanently false — and is marked local when any exist. The
// version offered for global sharing has deps appended, restoring validity
// under the base formula alone; derivations through local-only clauses
// cannot be repaired that way and are never exported.
func (s *Solver) record(learnt cnf.Clause, deps []cnf.Lit, localUsed bool, lbd int) {
	s.lastLearnt = learnt
	s.stats.Learned++
	if c := s.opts.Counters; c != nil {
		c.Learned.Inc()
	}
	if s.opts.OnLemma != nil {
		lemma := learnt.Clone()
		lemma = append(lemma, deps...)
		s.opts.OnLemma(lemma)
	}
	local := localUsed || len(deps) > 0
	if !localUsed && s.opts.OnLearn != nil && s.opts.ShareMaxLen > 0 &&
		len(learnt)+len(deps) <= s.opts.ShareMaxLen {
		global := learnt.Clone()
		global = append(global, deps...)
		s.opts.OnLearn(global, lbd)
		s.stats.Exported++
	}
	if len(learnt) == 1 {
		s.uncheckedEnqueue(learnt[0], CRefUndef)
		if local {
			s.taint(learnt[0].Var())
		}
		return
	}
	// Watch the asserting literal and the highest-level other literal so
	// backjumping keeps the watches valid.
	best := 1
	for i := 2; i < len(learnt); i++ {
		if s.level[learnt[i].Var()] > s.level[learnt[best].Var()] {
			best = i
		}
	}
	learnt[1], learnt[best] = learnt[best], learnt[1]
	r := s.ca.Alloc(learnt, true, local, clauseAct(s.actInc))
	s.ca.SetLBD(r, lbd)
	s.learnts = append(s.learnts, r)
	s.attach(r)
	if c := s.opts.Counters; c != nil {
		c.ArenaBytes.Set(s.ca.LiveBytes())
	}
	s.uncheckedEnqueue(learnt[0], r)
}

// clauseAct narrows the VSIDS-era activity to the arena's float32 slot.
func clauseAct(a float64) float32 {
	if a > math.MaxFloat32 {
		return math.MaxFloat32
	}
	return float32(a)
}

// bump increases a literal's VSIDS activity.
func (s *Solver) bump(l cnf.Lit) {
	s.activity[l] += s.actInc
	if s.activity[l] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.actInc *= 1e-100
	}
	s.heap.update(l)
}

// decay implements Chaff's periodic divide-all-counters-by-two by scaling
// the increment instead (equivalent ordering, O(1)).
func (s *Solver) decay() { s.actInc *= 2 }

// decide picks the next decision literal via VSIDS (or the test override).
// Returns false when every variable is assigned.
func (s *Solver) decide() bool {
	if s.opts.DecisionOverride != nil {
		if l := s.opts.DecisionOverride(s); l != cnf.NoLit {
			s.newDecisionLevel()
			s.uncheckedEnqueue(l, CRefUndef)
			s.stats.Decisions++
			if c := s.opts.Counters; c != nil {
				c.Decisions.Inc()
			}
			if s.opts.Instrument != nil {
				s.opts.Instrument(Event{Kind: EvDecision, Lit: l, Level: s.DecisionLevel()})
			}
			return true
		}
	}
	for {
		l, ok := s.heap.popMax()
		if !ok {
			return false
		}
		if s.assigns.Value(l.Var()) != cnf.Undef {
			continue
		}
		switch s.opts.Phase {
		case PhasePos:
			l = cnf.MkLit(l.Var(), false)
		case PhaseNeg:
			l = cnf.MkLit(l.Var(), true)
		case PhaseRand:
			l = cnf.MkLit(l.Var(), s.phaseFlip[l.Var()])
		default:
			// PhaseVSIDS: keep the heap's polarity, perturbed by the
			// Seed mask when one was built (Seed 0 leaves it nil, so
			// the seedless engine stays bit-identical).
			if s.phaseFlip != nil && s.phaseFlip[l.Var()] {
				l = l.Not()
			}
		}
		if s.savedPhase != nil {
			// Progress saving: keep the variable choice from VSIDS but
			// reuse the polarity the search last assigned it.
			if ph := s.savedPhase[l.Var()]; ph != cnf.Undef {
				l = cnf.MkLit(l.Var(), ph == cnf.False)
			}
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(l, CRefUndef)
		s.stats.Decisions++
		if c := s.opts.Counters; c != nil {
			c.Decisions.Inc()
		}
		if s.opts.Instrument != nil {
			s.opts.Instrument(Event{Kind: EvDecision, Lit: l, Level: s.DecisionLevel()})
		}
		return true
	}
}

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, len(s.trail))
}

// Solve runs CDCL search until the problem is decided, a limit is hit, or
// Stop is called. It may be called repeatedly with fresh limits to resume.
func (s *Solver) Solve(lim Limits) Result {
	if s.status != StatusUnknown {
		return s.finished()
	}
	start := time.Now()
	startConflicts := s.stats.Conflicts
	startProps := s.stats.Propagations
	restartLimit := s.restartThreshold()

	for {
		if s.stop.Load() {
			s.stop.Store(false)
			return Result{Status: StatusUnknown, Reason: ReasonStopped}
		}
		if lim.MaxConflicts > 0 && s.stats.Conflicts-startConflicts >= lim.MaxConflicts {
			return Result{Status: StatusUnknown, Reason: ReasonConflictLimit}
		}
		if lim.MaxPropagations > 0 && s.stats.Propagations-startProps >= lim.MaxPropagations {
			return Result{Status: StatusUnknown, Reason: ReasonPropLimit}
		}
		if lim.MaxTime > 0 && time.Since(start) >= lim.MaxTime {
			return Result{Status: StatusUnknown, Reason: ReasonTimeout}
		}
		if lim.MaxMemoryBytes > 0 && s.MemoryBytes() > lim.MaxMemoryBytes {
			return Result{Status: StatusUnknown, Reason: ReasonMemLimit}
		}

		confl := s.propagate()
		if confl != CRefUndef {
			s.stats.Conflicts++
			s.conflictsSinceRestart++
			if c := s.opts.Counters; c != nil {
				c.Conflicts.Inc()
			}
			if s.opts.Instrument != nil {
				s.opts.Instrument(Event{Kind: EvConflict, Level: s.DecisionLevel()})
			}
			if s.DecisionLevel() == 0 {
				s.status = StatusUNSAT
				return s.finished()
			}
			learnt, back, deps, localUsed, lbd := s.analyze(confl)
			s.backtrackTo(back)
			s.record(learnt, deps, localUsed, lbd)
			if s.opts.Instrument != nil {
				s.opts.Instrument(Event{Kind: EvLearn, Lit: learnt[0], Level: back, ClauseLen: len(learnt)})
			}
			if s.opts.DecayInterval > 0 && s.stats.Conflicts%int64(s.opts.DecayInterval) == 0 {
				s.decay()
			}
			if s.hasImports() {
				s.importWaitConflicts++
			}
			continue
		}

		// No conflict. Handle level-0 housekeeping and restarts.
		if s.DecisionLevel() == 0 {
			if !s.mergeImports() {
				s.status = StatusUNSAT
				return s.finished()
			}
			if s.qhead != len(s.trail) {
				// Merged imports implied level-0 units; propagate them
				// before deciding, or a conflict among them would surface
				// at a positive decision level and confuse analysis.
				continue
			}
			if s.opts.PruneLevel0 {
				s.simplify()
			}
		} else if s.needMergeRestart() {
			s.backtrackTo(0)
			continue
		}
		if restartLimit > 0 && s.conflictsSinceRestart >= restartLimit {
			s.conflictsSinceRestart = 0
			s.restartCount++
			s.stats.Restarts++
			if c := s.opts.Counters; c != nil {
				c.Restarts.Inc()
			}
			restartLimit = s.restartThreshold()
			s.backtrackTo(0)
			if s.opts.Instrument != nil {
				s.opts.Instrument(Event{Kind: EvRestart})
			}
			continue
		}
		if len(s.learnts) > s.maxLearnts {
			s.reduceDB()
		}
		if !s.decide() {
			s.model = s.assigns.Clone()
			s.status = StatusSAT
			return s.finished()
		}
	}
}

func (s *Solver) finished() Result {
	r := Result{Status: s.status, Reason: ReasonSolved}
	if s.status == StatusSAT {
		r.Model = s.Model()
	}
	return r
}

// restartThreshold returns the next restart interval under the configured
// schedule; 0 means "never restart".
func (s *Solver) restartThreshold() int {
	if s.opts.RestartBase == 0 {
		return 0
	}
	switch s.opts.RestartPolicy {
	case RestartNone:
		return 0
	case RestartFixed:
		return s.opts.RestartBase
	case RestartGeometric:
		// Cap the shift so long runs cannot overflow the interval.
		shift := s.restartCount
		if shift > 20 {
			shift = 20
		}
		return s.opts.RestartBase << shift
	default:
		return s.opts.RestartBase * luby(s.restartCount+1)
	}
}

// luby computes the Luby restart series 1,1,2,1,1,2,4,...
func luby(i int) int {
	for k := 1; ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	Decisions    int64
	Conflicts    int64
	Propagations int64
	Implications int64
	Learned      int64
	Deleted      int64
	Restarts     int64
	Imported     int64
	Exported     int64
	Simplified   int64
	Splits       int64
	// ReclaimedBytes counts bytes the arena's compacting GC has returned
	// to the allocator (deleted clauses + stripped literals).
	ReclaimedBytes int64
	// Import-usefulness telemetry: how much work peer-origin clauses
	// actually do once merged. ImportedImplications counts BCP implications
	// whose reason clause is imported; ImportedResolutions counts
	// resolutions on imported clauses during conflict analysis;
	// ImportedUseful counts distinct imported clauses used at least once
	// (first-use, at most once per clause). Together with Imported these
	// yield the cluster's import-usefulness ratio.
	ImportedImplications int64
	ImportedResolutions  int64
	ImportedUseful       int64
}

// Stats returns a snapshot of the counters.
func (s *Solver) Stats() Stats { return s.stats }

// PathDepth returns the solver's guiding-path depth: the number of split
// decisions between its subspace and the root problem. Refuting this
// subproblem closes 2^-PathDepth of the original search space.
func (s *Solver) PathDepth() int { return s.pathDepth }
