package solver

import "gridsat/internal/obs"

// Counters is the solver's cheap always-on metrics export: registry-backed
// atomic counters updated on the search's hot path. Unlike the
// Options.Instrument hook (per-event callback with a payload — the moral
// equivalent of the paper's EveryWare channel, which cost up to 50% of
// solver throughput, §4.1), these are branch-plus-atomic-add cheap:
// propagations are batched per BCP pass, so a fully counted run stays
// within ~2% of an uncounted one (measured in internal/bench's
// instrumentation ablation).
//
// One Counters may be shared by many solvers (e.g. every client of an
// in-process job) to aggregate cluster-wide totals.
type Counters struct {
	Decisions    *obs.Counter
	Conflicts    *obs.Counter
	Propagations *obs.Counter
	Learned      *obs.Counter
	Restarts     *obs.Counter
	// ArenaBytes is the exact live clause-arena size, refreshed whenever
	// the database grows (record) or shrinks (reduceDB, GC). When one
	// Counters is shared by several solvers the gauge reflects the most
	// recent writer; give each client its own labels for per-client views.
	ArenaBytes *obs.Gauge
	// Reclaimed accumulates bytes reclaimed by the arena's compacting GC.
	Reclaimed *obs.Counter
}

// NewCounters registers the solver counter families in reg (labels apply
// to every series) and returns the handle to install as Options.Counters.
func NewCounters(reg *obs.Registry, labels ...obs.Label) *Counters {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Counters{
		Decisions:    reg.Counter("gridsat_solver_decisions_total", "CDCL decisions", labels...),
		Conflicts:    reg.Counter("gridsat_solver_conflicts_total", "CDCL conflicts", labels...),
		Propagations: reg.Counter("gridsat_solver_propagations_total", "BCP trail pops", labels...),
		Learned:      reg.Counter("gridsat_solver_learned_total", "learned clauses recorded", labels...),
		Restarts:     reg.Counter("gridsat_solver_restarts_total", "search restarts", labels...),
		ArenaBytes:   reg.Gauge("gridsat_solver_arena_bytes", "exact live clause-arena bytes", labels...),
		Reclaimed:    reg.Counter("gridsat_solver_arena_reclaimed_bytes_total", "bytes reclaimed by arena GC", labels...),
	}
}

// StatsDelta returns cur - prev field-by-field; callers use it to turn
// two Stats snapshots into heartbeat deltas.
func StatsDelta(cur, prev Stats) Stats {
	return Stats{
		Decisions:      cur.Decisions - prev.Decisions,
		Conflicts:      cur.Conflicts - prev.Conflicts,
		Propagations:   cur.Propagations - prev.Propagations,
		Implications:   cur.Implications - prev.Implications,
		Learned:        cur.Learned - prev.Learned,
		Deleted:        cur.Deleted - prev.Deleted,
		Restarts:       cur.Restarts - prev.Restarts,
		Imported:       cur.Imported - prev.Imported,
		Exported:       cur.Exported - prev.Exported,
		Simplified:     cur.Simplified - prev.Simplified,
		Splits:         cur.Splits - prev.Splits,
		ReclaimedBytes: cur.ReclaimedBytes - prev.ReclaimedBytes,

		ImportedImplications: cur.ImportedImplications - prev.ImportedImplications,
		ImportedResolutions:  cur.ImportedResolutions - prev.ImportedResolutions,
		ImportedUseful:       cur.ImportedUseful - prev.ImportedUseful,
	}
}
