package solver

import (
	"testing"

	"gridsat/internal/cnf"
	"gridsat/internal/gen"
	"gridsat/internal/obs"
)

// TestArenaAllocAndAccessors exercises the slab encoding round trip:
// literal storage, flags, activity, and the exact live-byte counter.
func TestArenaAllocAndAccessors(t *testing.T) {
	a := NewArena(0)
	c1 := cnf.NewClause(1, -2, 3)
	r1 := a.Alloc(c1, false, false, 0)
	c2 := cnf.NewClause(-4, 5)
	r2 := a.Alloc(c2, true, true, 2.5)

	if a.Size(r1) != 3 || a.Size(r2) != 2 {
		t.Fatalf("sizes %d, %d", a.Size(r1), a.Size(r2))
	}
	for i, l := range c1 {
		if a.Lit(r1, i) != l {
			t.Fatalf("clause 1 literal %d: got %v want %v", i, a.Lit(r1, i), l)
		}
	}
	if a.Learnt(r1) || a.Local(r1) || !a.Learnt(r2) || !a.Local(r2) {
		t.Fatal("flags scrambled across clauses")
	}
	if a.Act(r2) != 2.5 {
		t.Fatalf("activity %v, want 2.5", a.Act(r2))
	}
	if a.Deleted(r1) || a.Deleted(r2) {
		t.Fatal("fresh clauses marked deleted")
	}
	a.SetLit(r1, 1, cnf.LitFromDIMACS(7))
	if a.Lit(r1, 1) != cnf.LitFromDIMACS(7) {
		t.Fatal("SetLit did not stick")
	}
	// 2 headers (2 words each) + 3 + 2 literals = 9 words.
	if got := a.LiveBytes(); got != 9*4 {
		t.Fatalf("live bytes %d, want %d", got, 9*4)
	}
	if a.WastedBytes() != 0 {
		t.Fatalf("fresh arena wasted %d bytes", a.WastedBytes())
	}
}

// TestArenaFreeAndShrinkAccounting checks that Free (idempotent) and
// shrinkTo move words from live to wasted exactly.
func TestArenaFreeAndShrinkAccounting(t *testing.T) {
	a := NewArena(0)
	r1 := a.Alloc(cnf.NewClause(1, 2, 3, 4), false, false, 0)
	r2 := a.Alloc(cnf.NewClause(-1, -2), true, false, 1)

	a.shrinkTo(r1, 2) // drop 2 literal words
	if a.Size(r1) != 2 {
		t.Fatalf("size after shrink %d", a.Size(r1))
	}
	if a.LiveBytes() != (2+2+2+2)*4 || a.WastedBytes() != 2*4 {
		t.Fatalf("after shrink: live %d wasted %d", a.LiveBytes(), a.WastedBytes())
	}
	a.shrinkTo(r1, 3) // growing is a no-op
	if a.Size(r1) != 2 {
		t.Fatal("shrinkTo grew a clause")
	}

	a.Free(r2)
	if !a.Deleted(r2) {
		t.Fatal("Free did not mark deleted")
	}
	a.Free(r2) // idempotent: must not double-count
	if a.LiveBytes() != (2+2)*4 || a.WastedBytes() != (2+2+2)*4 {
		t.Fatalf("after free: live %d wasted %d", a.LiveBytes(), a.WastedBytes())
	}
	if !a.Learnt(r2) {
		t.Fatal("Free clobbered the learnt flag")
	}
}

// TestArenaRelocateForwarding checks that relocating the same clause twice
// yields the same forward reference — the property GC relies on so a
// clause shared by two watchers, a reason, and the clause list lands at
// one address.
func TestArenaRelocateForwarding(t *testing.T) {
	a := NewArena(0)
	c := cnf.NewClause(1, -2, 3)
	r := a.Alloc(c, true, true, 4.25)
	a.Alloc(cnf.NewClause(5, 6), false, false, 0)

	to := NewArena(0)
	n1 := to.relocate(a.data, r)
	n2 := to.relocate(a.data, r)
	if n1 != n2 {
		t.Fatalf("relocate forwarded to %d then %d", n1, n2)
	}
	if to.Size(n1) != 3 || !to.Learnt(n1) || !to.Local(n1) || to.Act(n1) != 4.25 {
		t.Fatal("relocated clause lost its header")
	}
	for i, l := range c {
		if to.Lit(n1, i) != l {
			t.Fatalf("relocated literal %d: got %v want %v", i, to.Lit(n1, i), l)
		}
	}
}

// TestMemoryBytesExact is the accounting acceptance test: after every
// add/learn/reduce cycle, MemoryBytes must equal the arena's live byte
// count (recomputed by walking the clause lists) plus the fixed per-var
// overhead — no estimation anywhere.
func TestMemoryBytesExact(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		f := gen.RandomKSAT(40, 170, 3, seed)
		s := New(f, DefaultOptions())
		check := func(stage string) {
			t.Helper()
			var words int64
			for _, r := range liveClauses(s) {
				words += int64(hdrWords + s.ca.Size(r))
			}
			if got := s.ArenaBytes(); got != words*4 {
				t.Fatalf("seed %d, %s: ArenaBytes %d, clause walk %d", seed, stage, got, words*4)
			}
			if got, want := s.MemoryBytes(), words*4+int64(s.nVars)*40; got != want {
				t.Fatalf("seed %d, %s: MemoryBytes %d, want %d", seed, stage, got, want)
			}
		}
		check("fresh")
		for round := 0; round < 4; round++ {
			s.Solve(Limits{MaxConflicts: 80})
			check("after solve burst")
			if s.Status() != StatusUnknown {
				break
			}
			if err := s.ImportClauses([]cnf.Clause{cnf.NewClause(1, 2, 3)}); err != nil {
				t.Fatal(err)
			}
			s.Solve(Limits{MaxConflicts: 1})
			check("after import merge")
			if s.Status() != StatusUnknown {
				break
			}
			s.reduceDB()
			check("after reduceDB")
			s.garbageCollect()
			check("after GC")
		}
	}
}

// TestShedMemoryReportsReclaimed checks the shedding path end to end: the
// return value is the exact byte count freed, MemoryBytes drops
// accordingly, and the obs counter/gauge see the reclamation.
func TestShedMemoryReportsReclaimed(t *testing.T) {
	reg := obs.NewRegistry()
	opts := DefaultOptions()
	opts.Counters = NewCounters(reg)
	f := gen.Pigeonhole(8)
	s := New(f, opts)
	// Run long enough to accumulate a learned DB worth shedding.
	for round := 0; round < 6 && s.Status() == StatusUnknown && s.NumLearnts() < 64; round++ {
		s.Solve(Limits{MaxConflicts: 200})
	}
	if s.NumLearnts() == 0 {
		t.Fatal("no learned clauses to shed; test setup broken")
	}

	beforeLive := s.ca.LiveBytes()
	beforeWasted := s.ca.WastedBytes()
	freed := s.ShedMemory()
	if freed <= 0 {
		t.Fatalf("ShedMemory freed %d bytes with a populated learned DB", freed)
	}
	if got := beforeLive + beforeWasted - s.ca.LiveBytes(); got != freed {
		t.Fatalf("ShedMemory reported %d, footprint shrank by %d", freed, got)
	}
	if s.ca.WastedBytes() != 0 {
		t.Fatalf("shedding left %d wasted bytes uncompacted", s.ca.WastedBytes())
	}
	if got, want := s.MemoryBytes(), s.ArenaBytes()+int64(s.nVars)*40; got != want {
		t.Fatalf("MemoryBytes %d, want %d after shedding", got, want)
	}

	snap := reg.Snapshot()
	if v := snap.CounterValue("gridsat_solver_arena_reclaimed_bytes_total"); v < freed {
		t.Errorf("reclaimed counter %d < bytes freed %d", v, freed)
	}
	if v := opts.Counters.ArenaBytes.Value(); v != s.ArenaBytes() {
		t.Errorf("arena gauge %d != live arena bytes %d", v, s.ArenaBytes())
	}
}
